#!/usr/bin/env python3
"""Bench smoke gate: compare a fresh `service` micro-benchmark run against
the committed BENCH_recognition.json baseline.

Usage:
    check_service_regression.py BASELINE.json CANDIDATE.json [--tolerance 0.30]

A service row regresses when its queries_per_sec falls more than
`tolerance` (default 30 %) below the committed baseline row with the same
(mode, threads, shards, batch) key. Faster is always fine — CI runners
are beefier than the box that produced the baseline, and the gate only
exists to catch throughput cliffs, not to pin exact numbers.

The candidate must also carry a `pipeline` per-stage breakdown section
with at least one row whose stage times sum to its total (sanity that the
fused-pipeline instrumentation is alive), since a silently-zero breakdown
would make every future "where did the microseconds go" investigation
start from a lie.

Exit status: 0 clean, 1 regression or malformed input.
"""

import argparse
import json
import sys


def service_rows(doc, path):
    section = doc.get("service")
    if not isinstance(section, dict) or "rows" not in section:
        print(f"error: {path} has no service.rows section", file=sys.stderr)
        raise SystemExit(1)
    rows = {}
    for row in section["rows"]:
        key = (row["mode"], row["threads"], row["shards"], row["batch"])
        rows[key] = float(row["queries_per_sec"])
    return rows


def check_pipeline(doc, path):
    section = doc.get("pipeline")
    if not isinstance(section, dict) or not section.get("rows"):
        print(f"error: {path} has no pipeline breakdown rows", file=sys.stderr)
        return False
    ok = True
    for row in section["rows"]:
        stages = row["dac_us"] + row["gemm_us"] + row["wta_us"] + row["assemble_us"]
        total = row["total_us"]
        if total <= 0.0:
            print(f"error: pipeline row b={row['batch']} has non-positive total", file=sys.stderr)
            ok = False
        elif abs(stages - total) > 0.01 * max(total, 1.0):
            print(
                f"error: pipeline row b={row['batch']} stages sum to {stages:.3f} "
                f"but total is {total:.3f}",
                file=sys.stderr,
            )
            ok = False
    return ok


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional drop vs baseline (default 0.30)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.candidate) as f:
        candidate = json.load(f)

    base_rows = service_rows(baseline, args.baseline)
    cand_rows = service_rows(candidate, args.candidate)

    failed = False
    for key, base_qps in sorted(base_rows.items()):
        mode, threads, shards, batch = key
        label = f"{mode} t={threads} shards={shards} b={batch}"
        if key not in cand_rows:
            print(f"FAIL {label}: row missing from candidate run", file=sys.stderr)
            failed = True
            continue
        cand_qps = cand_rows[key]
        floor = (1.0 - args.tolerance) * base_qps
        verdict = "ok"
        if cand_qps < floor:
            verdict = "REGRESSION"
            failed = True
        print(f"{verdict:>10}  {label}: {cand_qps:,.1f} q/s vs baseline "
              f"{base_qps:,.1f} (floor {floor:,.1f})")

    if not check_pipeline(candidate, args.candidate):
        failed = True

    if failed:
        print("bench smoke: service rows regressed beyond tolerance", file=sys.stderr)
        return 1
    print("bench smoke: all service rows within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
