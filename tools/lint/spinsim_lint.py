#!/usr/bin/env python3
"""Project-specific lint for spinsim.

Seven checks, each encoding a repo invariant the compiler cannot see:

  rng-determinism   No ambient/unseeded randomness outside src/core/random*:
                    std::random_device, rand()/srand(), and time()-derived
                    seeds break the bit-reproducibility contract every
                    conformance and baseline test relies on. All randomness
                    must flow through spinsim::Rng with an explicit seed.

  raw-double-energy Energy/power-returning public APIs in src/ headers must
                    use the Quantity types (Energy, Power, EnergyPerQuery,
                    ...), not raw double. A double named *_j / *_w /
                    *energy* / *power* in a signature or struct field is a
                    unit bug waiting to happen — the whole point of
                    core/units.hpp.

  bare-lock         No bare .lock()/.unlock() on mutexes where a
                    std::lock_guard / std::scoped_lock / std::unique_lock
                    belongs; a throw between the pair leaks the mutex.
                    (condition_variable wait protocols use unique_lock and
                    pass the linter by construction.)

  sleep-in-tests    No std::this_thread::sleep_for in tests/: timing-based
                    synchronization is flaky under load. Tests synchronize
                    on futures, condition variables, or drain().

  bare-clock        No bare std::chrono clock reads (steady_clock::now()
                    and friends, or aliasing a chrono clock type) outside
                    src/core/clock* — time must flow through the injected
                    core/clock.hpp Clock so deadlines, breaker cooldowns
                    and scrub scheduling stay testable with a FakeClock.
                    Wall-clock bench pacing earns an explicit lint:allow.

  raw-mutex         No raw std synchronization primitives (std::mutex,
                    std::condition_variable, std::shared_mutex, their
                    guards, or their headers) in src/ outside
                    src/core/sync* — locking flows through the annotated
                    spinsim::Mutex/CondVar wrappers so clang Thread
                    Safety Analysis and the lock-rank registry see every
                    acquisition. A raw mutex is invisible to both.

  atomic-memory-order
                    Every std::atomic operation in src/ must spell out
                    its memory order (.load(std::memory_order_...) etc.).
                    A bare .load()/.store()/.fetch_add() silently means
                    seq_cst, which both hides the intended protocol from
                    reviewers and costs fences the hot paths measured in
                    BENCH_recognition.json cannot afford.

Usage: tools/lint/spinsim_lint.py [--root DIR]
Exit status: 0 clean, 1 violations found.

Suppressing a finding: append  // lint:allow(<check>) <reason>  to the
line. Suppressions are themselves counted and printed, so an audit sees
every grandfathered site.
"""

import argparse
import re
import sys
from pathlib import Path

CPP_GLOBS = ("*.cpp", "*.hpp", "*.h", "*.cc")
SCANNED_DIRS = ("src", "tests", "bench", "examples", "tools")

ALLOW_RE = re.compile(r"//\s*lint:allow\((?P<check>[a-z-]+)\)")


def strip_comments_and_strings(line: str) -> str:
    """Removes // comments and string/char literal bodies (keeps quotes)."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(c)
            i += 1
            while i < n and line[i] != quote:
                if line[i] == "\\":
                    i += 1
                i += 1
            if i < n:
                out.append(quote)
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


class Finding:
    def __init__(self, check, path, lineno, line, message):
        self.check = check
        self.path = path
        self.lineno = lineno
        self.line = line.strip()
        self.message = message

    def __str__(self):
        return (f"{self.path}:{self.lineno}: [{self.check}] {self.message}\n"
                f"    {self.line}")


# --- check: rng-determinism ----------------------------------------------

RNG_PATTERNS = [
    (re.compile(r"\bstd::random_device\b"), "std::random_device is nondeterministic"),
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand() bypass spinsim::Rng"),
    (re.compile(r"(?<![\w:.])time\s*\(\s*(nullptr|NULL|0)?\s*\)"),
     "wall-clock seeding breaks reproducibility"),
]


def check_rng(root, path, rel, lines, findings, suppressed):
    if rel.parts[:2] == ("src", "core") and rel.name.startswith("random"):
        return  # the one sanctioned randomness implementation site
    for lineno, raw in enumerate(lines, 1):
        code = strip_comments_and_strings(raw)
        for pattern, why in RNG_PATTERNS:
            if pattern.search(code):
                record(findings, suppressed, raw, "rng-determinism",
                       Finding("rng-determinism", rel, lineno, raw, why))


# --- check: raw-double-energy --------------------------------------------

# Declaration-ish lines in src/ headers where a raw double carries an
# energy/power quantity: `double energy...`, `double ..._j = `, function
# returns `double ...energy...()` etc.
ENERGY_NAME = r"[A-Za-z_]*(?:energy|power|watt|joule)[A-Za-z_]*|[A-Za-z_]+_[jw]\b"
RAW_DOUBLE_RE = re.compile(
    r"\bdouble\s+(?P<name>" + ENERGY_NAME + r")\s*(?:=|;|\()")


def check_raw_double(root, path, rel, lines, findings, suppressed):
    if rel.parts[0] != "src" or rel.suffix not in (".hpp", ".h"):
        return
    if rel == Path("src/core/units.hpp"):
        return  # the conversion layer itself manipulates raw doubles
    for lineno, raw in enumerate(lines, 1):
        code = strip_comments_and_strings(raw)
        m = RAW_DOUBLE_RE.search(code)
        if m:
            record(findings, suppressed, raw, "raw-double-energy",
                   Finding("raw-double-energy", rel, lineno, raw,
                           f"'{m.group('name')}' should be a Quantity type "
                           "(Energy/Power/EnergyPerQuery from core/units.hpp)"))


# --- check: bare-lock -----------------------------------------------------

BARE_LOCK_RE = re.compile(r"\b(?P<obj>[A-Za-z_][\w.\->]*)\s*\.\s*(?:un)?lock\s*\(\s*\)")
# unique_lock/scoped objects legitimately expose .lock()/.unlock(); only
# direct mutex member access is flagged.
MUTEXISH = re.compile(r"(?:^|_|\b)(?:mutex|mtx|mu)(?:_|\b)", re.IGNORECASE)


def check_bare_lock(root, path, rel, lines, findings, suppressed):
    for lineno, raw in enumerate(lines, 1):
        code = strip_comments_and_strings(raw)
        for m in BARE_LOCK_RE.finditer(code):
            if MUTEXISH.search(m.group("obj")):
                record(findings, suppressed, raw, "bare-lock",
                       Finding("bare-lock", rel, lineno, raw,
                               "use std::lock_guard/std::scoped_lock instead of "
                               "bare mutex lock()/unlock()"))


# --- check: sleep-in-tests ------------------------------------------------

SLEEP_RE = re.compile(r"\bsleep_for\s*\(|\bsleep_until\s*\(")


def check_sleep(root, path, rel, lines, findings, suppressed):
    if rel.parts[0] != "tests":
        return
    for lineno, raw in enumerate(lines, 1):
        code = strip_comments_and_strings(raw)
        if SLEEP_RE.search(code):
            record(findings, suppressed, raw, "sleep-in-tests",
                   Finding("sleep-in-tests", rel, lineno, raw,
                           "tests must synchronize on futures/cv/drain(), "
                           "not wall-clock sleeps"))


# --- check: bare-clock ----------------------------------------------------

CLOCK_NOW_RE = re.compile(
    r"\b(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now\s*\(")
CLOCK_ALIAS_RE = re.compile(
    r"=\s*std::chrono::(?:steady_clock|system_clock|high_resolution_clock)\b")


def check_bare_clock(root, path, rel, lines, findings, suppressed):
    if rel.parts[:2] == ("src", "core") and rel.name.startswith("clock"):
        return  # the one sanctioned raw-clock site (SteadyClock itself)
    for lineno, raw in enumerate(lines, 1):
        code = strip_comments_and_strings(raw)
        if CLOCK_NOW_RE.search(code):
            record(findings, suppressed, raw, "bare-clock",
                   Finding("bare-clock", rel, lineno, raw,
                           "read time through the injected core/clock.hpp "
                           "Clock, not a raw chrono clock"))
        elif CLOCK_ALIAS_RE.search(code):
            record(findings, suppressed, raw, "bare-clock",
                   Finding("bare-clock", rel, lineno, raw,
                           "aliasing a raw chrono clock bypasses the "
                           "core/clock.hpp injection seam"))


# --- check: raw-mutex -----------------------------------------------------

RAW_MUTEX_TYPE_RE = re.compile(
    r"\bstd::(?:mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable(?:_any)?|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock)\b")
RAW_MUTEX_INCLUDE_RE = re.compile(
    r"#\s*include\s*<(?:mutex|shared_mutex|condition_variable)>")


def check_raw_mutex(root, path, rel, lines, findings, suppressed):
    if rel.parts[0] != "src":
        return
    if rel.parts[:2] == ("src", "core") and rel.name.startswith("sync"):
        return  # the one sanctioned wrapper site (spinsim::Mutex itself)
    for lineno, raw in enumerate(lines, 1):
        code = strip_comments_and_strings(raw)
        if RAW_MUTEX_TYPE_RE.search(code) or RAW_MUTEX_INCLUDE_RE.search(code):
            record(findings, suppressed, raw, "raw-mutex",
                   Finding("raw-mutex", rel, lineno, raw,
                           "use the annotated spinsim::Mutex/CondVar wrappers "
                           "from core/sync.hpp, not raw std primitives"))


# --- check: atomic-memory-order -------------------------------------------

ATOMIC_OP_RE = re.compile(
    r"\.\s*(?:load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong)\s*\(")


def check_atomic_order(root, path, rel, lines, findings, suppressed):
    if rel.parts[0] != "src":
        return
    for lineno, raw in enumerate(lines, 1):
        code = strip_comments_and_strings(raw)
        if not ATOMIC_OP_RE.search(code):
            continue
        # The order argument may sit on the continuation line when the
        # call wraps; accept either.
        next_code = (strip_comments_and_strings(lines[lineno])
                     if lineno < len(lines) else "")
        if "memory_order" in code or "memory_order" in next_code:
            continue
        record(findings, suppressed, raw, "atomic-memory-order",
               Finding("atomic-memory-order", rel, lineno, raw,
                       "spell out the memory order — implicit seq_cst hides "
                       "the protocol and costs fences on hot paths"))


# --------------------------------------------------------------------------

def record(findings, suppressed, raw_line, check, finding):
    m = ALLOW_RE.search(raw_line)
    if m and m.group("check") == check:
        suppressed.append(finding)
    else:
        findings.append(finding)


CHECKS = [check_rng, check_raw_double, check_bare_lock, check_sleep,
          check_bare_clock, check_raw_mutex, check_atomic_order]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels above this script)")
    args = parser.parse_args()
    root = Path(args.root) if args.root else Path(__file__).resolve().parents[2]

    findings, suppressed = [], []
    scanned = 0
    for top in SCANNED_DIRS:
        base = root / top
        if not base.is_dir():
            continue
        for glob in CPP_GLOBS:
            for path in sorted(base.rglob(glob)):
                rel = path.relative_to(root)
                lines = path.read_text(encoding="utf-8").splitlines()
                scanned += 1
                for check in CHECKS:
                    check(root, path, rel, lines, findings, suppressed)

    for f in findings:
        print(f)
    for f in suppressed:
        print(f"note: suppressed [{f.check}] at {f.path}:{f.lineno}")
    status = "FAIL" if findings else "OK"
    print(f"spinsim-lint: {status} — {scanned} files, "
          f"{len(findings)} violation(s), {len(suppressed)} suppression(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
