#include "service/recognition_service.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "amm/spin_amm.hpp"
#include "core/error.hpp"

namespace spinsim {

namespace {

/// Leaf-cache engines reachable from `engine`, looking through tiered
/// compositions (e.g. a TieredEngine with a leaf-cache tier 0 built by
/// stacking make_tiered_factory on make_leaf_cache_factory), so stats()
/// surfaces hit/miss/reprogram counters wherever the cache sits.
std::vector<const LeafCacheEngine*> find_leaf_caches(const AssociativeEngine* engine) {
  std::vector<const LeafCacheEngine*> found;
  if (const auto* leaf_cache = dynamic_cast<const LeafCacheEngine*>(engine)) {
    found.push_back(leaf_cache);
  } else if (const auto* tiered = dynamic_cast<const TieredEngine*>(engine)) {
    for (const AssociativeEngine* tier : {&tiered->tier0(), &tiered->tier1()}) {
      const std::vector<const LeafCacheEngine*> below = find_leaf_caches(tier);
      found.insert(found.end(), below.begin(), below.end());
    }
  }
  return found;
}

}  // namespace

RecognitionService::RecognitionService(const RecognitionServiceConfig& config,
                                       EngineFactory factory)
    : config_(config), factory_(std::move(factory)) {
  require(config_.shards >= 1, "RecognitionService: need at least one shard");
  require(config_.max_batch >= 1, "RecognitionService: max_batch must be positive");
  require(static_cast<bool>(factory_), "RecognitionService: empty engine factory");
}

RecognitionService::~RecognitionService() {
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  if (collector_.joinable()) {
    collector_.join();
  }
  for (auto& shard : shards_) {
    {
      std::unique_lock<std::mutex> lock(shard->mutex);
      shard->stop = true;
    }
    shard->cv.notify_all();
    if (shard->worker.joinable()) {
      shard->worker.join();
    }
  }
}

void RecognitionService::store_templates(const std::vector<FeatureVector>& templates) {
  require(!started_, "RecognitionService: store_templates() may run only once");
  require(templates.size() >= 2 * config_.shards,
          "RecognitionService: every shard needs at least two templates");

  // Contiguous split, remainder spread over the leading shards, so
  // global index = shard base + local index.
  const std::size_t per_shard = templates.size() / config_.shards;
  const std::size_t remainder = templates.size() % config_.shards;

  shards_.clear();
  std::size_t base = 0;
  for (std::size_t s = 0; s < config_.shards; ++s) {
    const std::size_t count = per_shard + (s < remainder ? 1 : 0);
    auto shard = std::make_unique<Shard>();
    shard->base = base;
    shard->engine = factory_(s, count);
    require(shard->engine != nullptr, "RecognitionService: factory returned null engine");
    const std::vector<FeatureVector> slice(templates.begin() + static_cast<std::ptrdiff_t>(base),
                                           templates.begin() +
                                               static_cast<std::ptrdiff_t>(base + count));
    shard->engine->store_templates(slice);
    // Checked after storing: backends like HierarchicalAmm only learn
    // their template count from store_templates().
    require(shard->engine->template_count() == count,
            "RecognitionService: factory sized the engine for the wrong column count");
    base += count;
    shards_.push_back(std::move(shard));
  }

  if (config_.dedup_input_stage) {
    // One per-dispatch cache of realised input row currents, shared by
    // every shard: the first shard to see a query computes, the rest hit.
    // Sharing is only sound when every shard's input stage realises the
    // same currents for the same digital codes, so verify the realised
    // sizing — full-scale current and per-row conductances — actually
    // agrees across shards instead of trusting the factory.
    std::vector<SpinAmm*> spins;
    spins.reserve(shards_.size());
    for (auto& shard : shards_) {
      auto* spin = dynamic_cast<SpinAmm*>(shard->engine.get());
      require(spin != nullptr,
              "RecognitionService: dedup_input_stage requires SpinAmm shard engines");
      spins.push_back(spin);
    }
    // The padded row conductance is (target - row_sum) + row_sum, which
    // agrees across shards only to rounding; one part in 1e9 separates
    // that from a genuinely different calibration.
    const auto close = [](double a, double b) {
      return std::abs(a - b) <= 1e-9 * std::max(std::abs(a), std::abs(b));
    };
    // Probing the realised current at the full-scale code exercises the
    // whole input stage — DAC bit cells including any sampled mismatch,
    // not just the row load — so per-shard device seeds that diverge the
    // DAC banks are caught here, where conductance checks alone pass.
    const std::uint32_t top_code = spins[0]->config().features.levels() - 1;
    for (std::size_t s = 1; s < spins.size(); ++s) {
      require(spins[s]->input_full_scale() == spins[0]->input_full_scale(),
              "RecognitionService: dedup_input_stage requires a shared "
              "input_full_scale_override across shards");
      for (std::size_t row = 0; row < spins[0]->config().features.dimension(); ++row) {
        require(close(spins[s]->realised_input_current(row, top_code),
                      spins[0]->realised_input_current(row, top_code)),
                "RecognitionService: dedup_input_stage requires shards whose "
                "input stages realise identical currents (shared "
                "row_target_conductance and device seed, no divergent "
                "sampled mismatch)");
      }
    }
    input_cache_ = std::make_shared<InputStageCache>();
    for (SpinAmm* spin : spins) {
      spin->set_input_stage_cache(input_cache_);
    }
  }

  for (auto& shard : shards_) {
    Shard* raw = shard.get();
    const std::size_t engine_threads = config_.engine_threads;
    shard->worker = std::thread([raw, engine_threads] { shard_loop(raw, engine_threads); });
  }
  started_at_ = std::chrono::steady_clock::now();
  started_ = true;
  collector_ = std::thread([this] { collector_loop(); });
}

void RecognitionService::enqueue(Request&& request) {
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    require(started_, "RecognitionService: store_templates() before submit");
    require(!stopping_, "RecognitionService: service is shutting down");
    queue_.push_back(std::move(request));
  }
  queue_cv_.notify_one();
}

std::future<Recognition> RecognitionService::submit(FeatureVector input) {
  auto promise = std::make_shared<std::promise<Recognition>>();
  std::future<Recognition> future = promise->get_future();
  Request request;
  request.input = std::move(input);
  request.enqueued = std::chrono::steady_clock::now();
  request.deliver = [promise](Recognition&& result, std::exception_ptr error) {
    if (error) {
      promise->set_exception(error);
    } else {
      promise->set_value(std::move(result));
    }
  };
  enqueue(std::move(request));
  return future;
}

std::future<std::vector<Recognition>> RecognitionService::submit_batch(
    std::vector<FeatureVector> inputs) {
  struct Join {
    std::vector<Recognition> results;
    std::size_t remaining = 0;
    bool failed = false;
    std::mutex mutex;
    std::promise<std::vector<Recognition>> promise;
  };
  auto join = std::make_shared<Join>();
  join->results.resize(inputs.size());
  join->remaining = inputs.size();
  std::future<std::vector<Recognition>> future = join->promise.get_future();
  if (inputs.empty()) {
    join->promise.set_value({});
    return future;
  }

  const auto now = std::chrono::steady_clock::now();
  std::vector<Request> requests;
  requests.reserve(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    Request request;
    request.input = std::move(inputs[i]);
    request.enqueued = now;
    request.deliver = [join, i](Recognition&& result, std::exception_ptr error) {
      std::unique_lock<std::mutex> lock(join->mutex);
      if (error) {
        if (!join->failed) {
          join->failed = true;
          join->promise.set_exception(error);
        }
        return;
      }
      join->results[i] = std::move(result);
      if (--join->remaining == 0 && !join->failed) {
        join->promise.set_value(std::move(join->results));
      }
    };
    requests.push_back(std::move(request));
  }

  // One lock round-trip for the whole batch so the admission window sees
  // it at once and coalesces it into ceil(n / max_batch) dispatches.
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    require(started_, "RecognitionService: store_templates() before submit");
    require(!stopping_, "RecognitionService: service is shutting down");
    for (auto& request : requests) {
      queue_.push_back(std::move(request));
    }
  }
  queue_cv_.notify_one();
  return future;
}

void RecognitionService::drain() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
}

const AssociativeEngine& RecognitionService::shard(std::size_t index) const {
  require(index < shards_.size(), "RecognitionService::shard: index out of range");
  return *shards_[index]->engine;
}

std::size_t RecognitionService::shard_base(std::size_t index) const {
  require(index < shards_.size(), "RecognitionService::shard_base: index out of range");
  return shards_[index]->base;
}

RecognitionServiceStats RecognitionService::stats() const {
  RecognitionServiceStats out;
  {
    std::unique_lock<std::mutex> lock(stats_mutex_);
    out.queries = stat_queries_;
    out.failed = stat_failed_;
    out.batches = stat_batches_;
    out.escalated = stat_escalated_;
    out.rejected = stat_rejected_;
    out.mean_batch_size = stat_batches_ == 0 ? 0.0
                                             : static_cast<double>(stat_queries_) /
                                                   static_cast<double>(stat_batches_);
    const std::uint64_t delivered = stat_queries_ - stat_failed_;
    out.mean_latency_us =
        delivered == 0 ? 0.0 : stat_latency_sum_us_ / static_cast<double>(delivered);
    out.max_latency_us = stat_latency_max_us_;
    // The histogram interpolates to bucket edges (~26 % resolution); the
    // exactly-tracked maximum bounds what a quantile can honestly claim.
    out.p50_latency_us = std::min(stat_latency_us_.percentile(0.50), stat_latency_max_us_);
    out.p95_latency_us = std::min(stat_latency_us_.percentile(0.95), stat_latency_max_us_);
    out.p99_latency_us = std::min(stat_latency_us_.percentile(0.99), stat_latency_max_us_);
    out.escalation_rate =
        delivered == 0 ? 0.0 : static_cast<double>(stat_escalated_) / static_cast<double>(delivered);
    out.reject_rate =
        delivered == 0 ? 0.0 : static_cast<double>(stat_rejected_) / static_cast<double>(delivered);
    if (stat_queries_ > 0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - started_at_).count();
      out.queries_per_sec = elapsed > 0.0 ? static_cast<double>(stat_queries_) / elapsed : 0.0;
    }
  }
  // Per-shard engine-time quantiles and the per-query energy estimate.
  // Every query visits every shard, so the energies add; tiered shard
  // engines fold their observed escalation rate in (energy_per_query is
  // documented safe to call concurrently with recognition).
  out.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    RecognitionServiceStats::ShardStats ss;
    {
      std::unique_lock<std::mutex> lock(shard->mutex);
      ss.batches = shard->batches_run;
      ss.p50_batch_us = shard->batch_latency_us.percentile(0.50);
      ss.p95_batch_us = shard->batch_latency_us.percentile(0.95);
      ss.p99_batch_us = shard->batch_latency_us.percentile(0.99);
    }
    out.shards.push_back(ss);
    out.energy_per_query += shard->engine->energy_per_query();
    for (const LeafCacheEngine* leaf_cache : find_leaf_caches(shard->engine.get())) {
      const LeafCacheCounters counters = leaf_cache->counters();
      out.leaf_hits += counters.hits;
      out.leaf_misses += counters.misses;
      out.reprogram_energy += counters.reprogram_energy;
      out.repair_energy += counters.repair_energy;
      out.leaf_device_writes += counters.device_writes;
      out.leaf_device_writes_saved += counters.device_writes_saved;
      out.leaf_faults_detected += counters.faults_detected;
      out.leaf_devices_rewritten += counters.devices_rewritten;
      out.leaf_columns_remapped += counters.columns_remapped;
      out.leaf_unrepairable += counters.unrepairable;
      out.leaf_worn_out_devices += counters.worn_out_devices;
      out.leaf_max_slot_write_cycles =
          std::max(out.leaf_max_slot_write_cycles, counters.max_slot_write_cycles());
    }
  }
  const std::uint64_t leaf_lookups = out.leaf_hits + out.leaf_misses;
  out.leaf_hit_rate = leaf_lookups == 0
                          ? 0.0
                          : static_cast<double>(out.leaf_hits) / static_cast<double>(leaf_lookups);
  if (input_cache_ != nullptr) {
    const InputStageCache::Stats cache_stats = input_cache_->stats();
    out.input_stage_computes = cache_stats.computes;
    out.input_stage_hits = cache_stats.hits;
  }
  return out;
}

void RecognitionService::collector_loop() {
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        // stopping_ and nothing left to do.
        return;
      }
      // Admission window: from the moment work is pending, wait a bounded
      // extra beat for more arrivals so they share one dispatch.
      if (queue_.size() < config_.max_batch && config_.admission_window.count() > 0) {
        const auto deadline = std::chrono::steady_clock::now() + config_.admission_window;
        queue_cv_.wait_until(lock, deadline,
                             [&] { return stopping_ || queue_.size() >= config_.max_batch; });
      }
      const std::size_t count = std::min(queue_.size(), config_.max_batch);
      batch.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      in_flight_ += batch.size();
    }

    dispatch(batch);

    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      in_flight_ -= batch.size();
      if (queue_.empty() && in_flight_ == 0) {
        idle_cv_.notify_all();
      }
    }
  }
}

void RecognitionService::shard_loop(Shard* shard, std::size_t engine_threads) {
  for (;;) {
    const std::vector<FeatureVector>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(shard->mutex);
      shard->cv.wait(lock, [&] { return shard->stop || shard->job != nullptr; });
      if (shard->stop) {
        return;
      }
      job = shard->job;
    }
    std::vector<Recognition> results;
    std::exception_ptr error;
    const auto engine_start = std::chrono::steady_clock::now();
    try {
      results = shard->engine->recognize_batch(*job, engine_threads);
    } catch (...) {
      // Propagate through the collector to the client futures instead of
      // terminating the worker thread.
      error = std::current_exception();
    }
    const double engine_us = std::chrono::duration<double, std::micro>(
                                 std::chrono::steady_clock::now() - engine_start)
                                 .count();
    {
      std::unique_lock<std::mutex> lock(shard->mutex);
      shard->results = std::move(results);
      shard->job_error = error;
      shard->job = nullptr;
      shard->job_done = true;
      shard->batch_latency_us.add(engine_us);
      shard->batches_run += 1;
    }
    shard->cv.notify_all();
  }
}

Recognition RecognitionService::merge(std::vector<Recognition*>& shard_answers) const {
  // Highest score wins; ties resolve toward the lowest global template
  // index — the rule a flat WTA/argmax applies, which is what makes a
  // sharded service winner-for-winner identical to a flat engine when
  // shard scores are comparable (see header).
  std::size_t best_shard = 0;
  for (std::size_t s = 1; s < shard_answers.size(); ++s) {
    if (shard_answers[s]->score > shard_answers[best_shard]->score) {
      best_shard = s;
    }
  }
  Recognition out = *shard_answers[best_shard];
  out.winner += shards_[best_shard]->base;
  for (std::size_t s = 0; s < shard_answers.size(); ++s) {
    if (s != best_shard && shard_answers[s]->score == out.score) {
      out.unique = false;
    }
  }
  if (!out.unique) {
    out.accepted = false;  // accepted implies unique, across shards too
  }
  // The winning shard's margin only measures its *local* runner-up; the
  // global runner-up may live on another shard. Cap it with the relative
  // cross-shard score gap so the merged margin never overstates the
  // confidence a flat engine would have reported. The runner-up starts at
  // -inf and takes the *actual* other-shard scores — backends may score
  // at or below zero, and clamping the runner-up to 0 would mis-cap them.
  if (shard_answers.size() > 1) {
    if (out.score > 0.0) {
      double second = -std::numeric_limits<double>::infinity();
      for (std::size_t s = 0; s < shard_answers.size(); ++s) {
        if (s != best_shard) {
          second = std::max(second, shard_answers[s]->score);
        }
      }
      out.margin = std::min(out.margin, (out.score - second) / out.score);
    } else {
      // Non-positive winner: there is no positive scale to normalise a
      // score gap against, and a best match at or below zero carries no
      // confidence worth reporting — force escalation-grade margin.
      out.margin = 0.0;
    }
  }
  return out;
}

void RecognitionService::dispatch(std::vector<Request>& batch) {
  if (input_cache_ != nullptr) {
    // Per-dispatch semantics: entries never outlive their batch, so the
    // cache footprint is bounded by the admission window.
    input_cache_->clear();
  }
  std::vector<FeatureVector> inputs;
  inputs.reserve(batch.size());
  for (auto& request : batch) {
    inputs.push_back(std::move(request.input));  // dead after dispatch
  }

  // Hand the batch to every shard worker, then collect.
  for (auto& shard : shards_) {
    {
      std::unique_lock<std::mutex> lock(shard->mutex);
      shard->job = &inputs;
      shard->job_done = false;
    }
    shard->cv.notify_all();
  }
  std::vector<std::vector<Recognition>> per_shard(shards_.size());
  std::exception_ptr error;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    std::unique_lock<std::mutex> lock(shards_[s]->mutex);
    shards_[s]->cv.wait(lock, [&] { return shards_[s]->job_done; });
    per_shard[s] = std::move(shards_[s]->results);
    if (shards_[s]->job_error && !error) {
      error = shards_[s]->job_error;
    }
    shards_[s]->job_error = nullptr;
    shards_[s]->job_done = false;
  }
  if (error) {
    for (auto& request : batch) {
      request.deliver(Recognition{}, error);
    }
    // Failed queries still count: every delivered future shows up in
    // `queries` (and in `failed`), so mean_batch_size keeps meaning
    // queries/batches whatever the error rate. Latency stats only track
    // successes — see RecognitionServiceStats.
    std::unique_lock<std::mutex> lock(stats_mutex_);
    stat_queries_ += batch.size();
    stat_failed_ += batch.size();
    stat_batches_ += 1;
    return;
  }

  const auto now = std::chrono::steady_clock::now();
  std::vector<Recognition> merged;
  merged.reserve(batch.size());
  std::vector<double> latencies_us;
  latencies_us.reserve(batch.size());
  std::uint64_t escalated = 0;
  std::uint64_t rejected = 0;
  std::vector<Recognition*> answers(shards_.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      answers[s] = &per_shard[s][i];
    }
    merged.push_back(merge(answers));
    const Recognition& answer = merged.back();
    if (const TieredRecognitionDetail* tiered = answer.tiered()) {
      escalated += tiered->tier == 1 ? 1 : 0;
    }
    rejected += answer.accepted ? 0 : 1;
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(now - batch[i].enqueued).count());
  }

  // Stats first: once a future resolves, a client may read stats() and
  // must see its own query counted.
  {
    std::unique_lock<std::mutex> lock(stats_mutex_);
    stat_queries_ += batch.size();
    stat_batches_ += 1;
    stat_escalated_ += escalated;
    stat_rejected_ += rejected;
    for (const double latency_us : latencies_us) {
      stat_latency_sum_us_ += latency_us;
      stat_latency_max_us_ = std::max(stat_latency_max_us_, latency_us);
      stat_latency_us_.add(latency_us);
    }
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i].deliver(std::move(merged[i]), nullptr);
  }
}

RecognitionService::EngineFactory make_tiered_factory(RecognitionService::EngineFactory tier0,
                                                      RecognitionService::EngineFactory tier1,
                                                      const TieredEngineConfig& config) {
  require(static_cast<bool>(tier0) && static_cast<bool>(tier1),
          "make_tiered_factory: both tier factories must be non-empty");
  return [tier0 = std::move(tier0), tier1 = std::move(tier1),
          config](std::size_t shard, std::size_t columns) -> std::unique_ptr<AssociativeEngine> {
    return std::make_unique<TieredEngine>(tier0(shard, columns), tier1(shard, columns), config);
  };
}

RecognitionService::EngineFactory make_leaf_cache_factory(const LeafCacheEngineConfig& config) {
  return [config](std::size_t shard, std::size_t columns) -> std::unique_ptr<AssociativeEngine> {
    LeafCacheEngineConfig c = config;
    // A shard's slice may be much smaller than the logical set the caller
    // sized the clustering for: keep every leaf non-trivial (>= 2
    // templates on average) and the router meaningful (>= 2 clusters).
    const std::size_t max_clusters = std::max<std::size_t>(columns / 2, 2);
    c.hierarchy.clusters = std::min(c.hierarchy.clusters, max_clusters);
    c.leaf_slots = std::max<std::size_t>(std::min(c.leaf_slots, c.hierarchy.clusters), 1);
    // Distinct device noise per replica, like any sharded deployment.
    c.hierarchy.seed = config.hierarchy.seed + 0x9E37 * (shard + 1);
    return std::make_unique<LeafCacheEngine>(c);
  };
}

}  // namespace spinsim
