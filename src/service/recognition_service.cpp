#include "service/recognition_service.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "amm/fault_injection.hpp"
#include "amm/spin_amm.hpp"
#include "core/error.hpp"

namespace spinsim {

namespace {

/// Leaf-cache engines reachable from `engine`, looking through tiered
/// compositions (e.g. a TieredEngine with a leaf-cache tier 0 built by
/// stacking make_tiered_factory on make_leaf_cache_factory) and through
/// FaultInjectingEngine decorators, so stats() and idle scrubbing find
/// the cache wherever it sits. Mutable: scrubs call verify_and_repair().
std::vector<LeafCacheEngine*> find_leaf_caches(AssociativeEngine* engine) {
  std::vector<LeafCacheEngine*> found;
  if (auto* leaf_cache = dynamic_cast<LeafCacheEngine*>(engine)) {
    found.push_back(leaf_cache);
  } else if (auto* tiered = dynamic_cast<TieredEngine*>(engine)) {
    for (AssociativeEngine* tier : {&tiered->tier0(), &tiered->tier1()}) {
      const std::vector<LeafCacheEngine*> below = find_leaf_caches(tier);
      found.insert(found.end(), below.begin(), below.end());
    }
  } else if (auto* faulty = dynamic_cast<FaultInjectingEngine*>(engine)) {
    const std::vector<LeafCacheEngine*> below = find_leaf_caches(&faulty->inner());
    found.insert(found.end(), below.begin(), below.end());
  }
  return found;
}

/// The TieredEngine a shard serves from, looking through a
/// FaultInjectingEngine decorator — the overload controller's actuator.
TieredEngine* find_tiered(AssociativeEngine* engine) {
  if (auto* tiered = dynamic_cast<TieredEngine*>(engine)) {
    return tiered;
  }
  if (auto* faulty = dynamic_cast<FaultInjectingEngine*>(engine)) {
    return find_tiered(&faulty->inner());
  }
  return nullptr;
}

}  // namespace

RecognitionService::RecognitionService(const RecognitionServiceConfig& config,
                                       EngineFactory factory)
    : config_(config),
      factory_(std::move(factory)),
      clock_(config.clock ? config.clock : SteadyClock::instance()) {
  require(config_.shards >= 1, "RecognitionService: need at least one shard");
  require(config_.max_batch >= 1, "RecognitionService: max_batch must be positive");
  require(static_cast<bool>(factory_), "RecognitionService: empty engine factory");
  require(config_.shard_timeout.count() >= 0,
          "RecognitionService: shard_timeout cannot be negative");
  require(config_.breaker_failure_threshold >= 1,
          "RecognitionService: breaker_failure_threshold must be positive");
  require(config_.breaker_backoff >= 1.0, "RecognitionService: breaker_backoff must be >= 1");
  require(config_.breaker_cooldown.count() >= 0,
          "RecognitionService: breaker_cooldown cannot be negative");
  require(config_.breaker_max_cooldown >= config_.breaker_cooldown,
          "RecognitionService: breaker_max_cooldown must be >= breaker_cooldown");
  if (config_.overload.enabled) {
    const OverloadControlConfig& oc = config_.overload;
    require(oc.target_p99_us > 0.0,
            "RecognitionService: overload control needs a positive target_p99_us");
    require(oc.margin_step > 0.0 && oc.margin_step <= 1.0,
            "RecognitionService: overload margin_step must lie in (0, 1]");
    require(oc.brownout_factor >= 1.0,
            "RecognitionService: overload brownout_factor must be >= 1");
    require(oc.low_watermark >= 0.0 && oc.low_watermark < 1.0,
            "RecognitionService: overload low_watermark must lie in [0, 1)");
    require(oc.min_escalation_margin >= 0.0,
            "RecognitionService: overload min_escalation_margin cannot be negative");
    require(oc.period_queries >= 1,
            "RecognitionService: overload period_queries must be positive");
  }
}

RecognitionService::~RecognitionService() { stop_threads(); }

void RecognitionService::stop_threads() {
  {
    LockGuard lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  // The collector fails everything still queued with ServiceStopped on
  // its way out, so no future is ever silently dropped. A worker wedged
  // *inside* an engine call (FaultSwitch::stick) must be released before
  // this join can finish — the service cannot preempt a hung engine.
  if (collector_.joinable()) {
    collector_.join();
  }
  for (auto& shard : shards_) {
    {
      LockGuard lock(shard->mutex);
      shard->stop = true;
    }
    shard->cv.notify_all();
    if (shard->worker.joinable()) {
      shard->worker.join();
    }
  }
}

void RecognitionService::reset_stats_locked() {
  stat_queries_ = 0;
  stat_failed_ = 0;
  stat_batches_ = 0;
  stat_dispatched_ = 0;
  stat_escalated_ = 0;
  stat_rejected_ = 0;
  stat_shed_deadline_ = 0;
  stat_rejected_overload_ = 0;
  stat_degraded_ = 0;
  stat_best_effort_ = 0;
  stat_coverage_sum_ = 0.0;
  stat_idle_scrubs_ = 0;
  stat_repair_alarms_ = 0;
  stat_controller_adjustments_ = 0;
  stat_brownout_ = false;
  stat_latency_sum_us_ = 0.0;
  stat_latency_max_us_ = 0.0;
  stat_latency_us_ = GeometricHistogram{};
  health_.clear();
}

void RecognitionService::store_templates(const std::vector<FeatureVector>& templates) {
  require(templates.size() >= 2 * config_.shards,
          "RecognitionService: every shard needs at least two templates");

  bool was_started = false;
  {
    LockGuard lock(queue_mutex_);
    was_started = started_;
  }
  if (was_started) {
    // Re-initialisation: tear the running edge down first. The collector
    // fails every queued future with ServiceStopped, then every counter
    // and controller state resets — the new shard set starts clean.
    stop_threads();
    shards_.clear();
    tiered_.clear();
    base_margins_.clear();
    input_cache_.reset();
    {
      LockGuard lock(queue_mutex_);
      stopping_ = false;
      started_ = false;
      in_flight_ = 0;
    }
    brownout_ = false;
    window_latency_us_ = GeometricHistogram{};
    window_max_us_ = 0.0;
    window_count_ = 0;
    queries_since_scrub_ = 0;
    repair_alarm_active_ = false;
    {
      LockGuard lock(stats_mutex_);
      reset_stats_locked();
    }
  }

  // Contiguous split, remainder spread over the leading shards, so
  // global index = shard base + local index.
  const std::size_t per_shard = templates.size() / config_.shards;
  const std::size_t remainder = templates.size() % config_.shards;

  shards_.clear();
  std::size_t base = 0;
  for (std::size_t s = 0; s < config_.shards; ++s) {
    const std::size_t count = per_shard + (s < remainder ? 1 : 0);
    auto shard = std::make_unique<Shard>();
    shard->base = base;
    shard->columns = count;
    shard->engine = factory_(s, count);
    require(shard->engine != nullptr, "RecognitionService: factory returned null engine");
    const std::vector<FeatureVector> slice(templates.begin() + static_cast<std::ptrdiff_t>(base),
                                           templates.begin() +
                                               static_cast<std::ptrdiff_t>(base + count));
    shard->engine->store_templates(slice);
    // Checked after storing: backends like HierarchicalAmm only learn
    // their template count from store_templates().
    require(shard->engine->template_count() == count,
            "RecognitionService: factory sized the engine for the wrong column count");
    shard->leaf_caches = find_leaf_caches(shard->engine.get());
    if (TieredEngine* tiered = find_tiered(shard->engine.get())) {
      tiered_.push_back(tiered);
      base_margins_.push_back(tiered->escalation_margin());
    }
    base += count;
    shards_.push_back(std::move(shard));
  }
  total_columns_ = templates.size();

  if (config_.dedup_input_stage) {
    // One per-dispatch cache of realised input row currents, shared by
    // every shard: the first shard to see a query computes, the rest hit.
    // Sharing is only sound when every shard's input stage realises the
    // same currents for the same digital codes, so verify the realised
    // sizing — full-scale current and per-row conductances — actually
    // agrees across shards instead of trusting the factory.
    std::vector<SpinAmm*> spins;
    spins.reserve(shards_.size());
    for (auto& shard : shards_) {
      auto* spin = dynamic_cast<SpinAmm*>(shard->engine.get());
      require(spin != nullptr,
              "RecognitionService: dedup_input_stage requires SpinAmm shard engines");
      spins.push_back(spin);
    }
    // The padded row conductance is (target - row_sum) + row_sum, which
    // agrees across shards only to rounding; one part in 1e9 separates
    // that from a genuinely different calibration.
    const auto close = [](double a, double b) {
      return std::abs(a - b) <= 1e-9 * std::max(std::abs(a), std::abs(b));
    };
    // Probing the realised current at the full-scale code exercises the
    // whole input stage — DAC bit cells including any sampled mismatch,
    // not just the row load — so per-shard device seeds that diverge the
    // DAC banks are caught here, where conductance checks alone pass.
    const std::uint32_t top_code = spins[0]->config().features.levels() - 1;
    for (std::size_t s = 1; s < spins.size(); ++s) {
      require(spins[s]->input_full_scale() == spins[0]->input_full_scale(),
              "RecognitionService: dedup_input_stage requires a shared "
              "input_full_scale_override across shards");
      for (std::size_t row = 0; row < spins[0]->config().features.dimension(); ++row) {
        require(close(spins[s]->realised_input_current(row, top_code),
                      spins[0]->realised_input_current(row, top_code)),
                "RecognitionService: dedup_input_stage requires shards whose "
                "input stages realise identical currents (shared "
                "row_target_conductance and device seed, no divergent "
                "sampled mismatch)");
      }
    }
    input_cache_ = std::make_shared<InputStageCache>();
    for (SpinAmm* spin : spins) {
      spin->set_input_stage_cache(input_cache_);
    }
  }

  for (auto& shard : shards_) {
    Shard* raw = shard.get();
    shard->worker = std::thread([this, raw] { shard_loop(raw); });
  }
  {
    LockGuard lock(stats_mutex_);
    started_at_ = clock_->now();
    health_.assign(shards_.size(), Health{});
  }
  {
    LockGuard lock(queue_mutex_);
    started_ = true;
  }
  collector_ = std::thread([this] { collector_loop(); });
}

void RecognitionService::enqueue(Request&& request) {
  bool rejected = false;
  {
    LockGuard lock(queue_mutex_);
    require(started_, "RecognitionService: store_templates() before submit");
    require(!stopping_, "RecognitionService: service is shutting down");
    if (config_.max_queue > 0 && queue_.size() >= config_.max_queue) {
      rejected = true;
    } else {
      queue_.push_back(std::move(request));
    }
  }
  if (rejected) {
    {
      LockGuard lock(stats_mutex_);
      stat_rejected_overload_ += 1;
    }
    throw Overloaded("RecognitionService: queue full (max_queue pending requests)");
  }
  queue_cv_.notify_one();
}

std::future<Recognition> RecognitionService::submit(FeatureVector input,
                                                    const SubmitOptions& options) {
  auto promise = std::make_shared<std::promise<Recognition>>();
  std::future<Recognition> future = promise->get_future();
  const Clock::TimePoint now = clock_->now();
  Request request;
  request.input = std::move(input);
  request.enqueued = now;
  request.deadline =
      options.deadline.count() > 0 ? now + options.deadline : Clock::TimePoint::max();
  request.deliver = [promise](Recognition&& result, std::exception_ptr error) {
    if (error) {
      promise->set_exception(error);
    } else {
      promise->set_value(std::move(result));
    }
  };
  enqueue(std::move(request));
  return future;
}

std::future<std::vector<Recognition>> RecognitionService::submit_batch(
    std::vector<FeatureVector> inputs, const SubmitOptions& options) {
  struct Join {
    std::vector<Recognition> results;
    std::size_t remaining = 0;
    bool failed = false;
    // Rank kClientJoin: the deliver callbacks run on the collector thread
    // with no other lock held.
    Mutex mutex{LockRank::kClientJoin};
    std::promise<std::vector<Recognition>> promise;
  };
  auto join = std::make_shared<Join>();
  join->results.resize(inputs.size());
  join->remaining = inputs.size();
  std::future<std::vector<Recognition>> future = join->promise.get_future();
  if (inputs.empty()) {
    join->promise.set_value({});
    return future;
  }

  const Clock::TimePoint now = clock_->now();
  const Clock::TimePoint deadline =
      options.deadline.count() > 0 ? now + options.deadline : Clock::TimePoint::max();
  std::vector<Request> requests;
  requests.reserve(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    Request request;
    request.input = std::move(inputs[i]);
    request.enqueued = now;
    request.deadline = deadline;
    request.deliver = [join, i](Recognition&& result, std::exception_ptr error) {
      LockGuard lock(join->mutex);
      if (error) {
        if (!join->failed) {
          join->failed = true;
          join->promise.set_exception(error);
        }
        return;
      }
      join->results[i] = std::move(result);
      if (--join->remaining == 0 && !join->failed) {
        join->promise.set_value(std::move(join->results));
      }
    };
    requests.push_back(std::move(request));
  }

  // One lock round-trip for the whole batch so the admission window sees
  // it at once and coalesces it into ceil(n / max_batch) dispatches.
  // Queue-cap admission is all-or-nothing: a batch that does not fit
  // leaves the queue untouched.
  bool rejected = false;
  {
    LockGuard lock(queue_mutex_);
    require(started_, "RecognitionService: store_templates() before submit");
    require(!stopping_, "RecognitionService: service is shutting down");
    if (config_.max_queue > 0 && queue_.size() + requests.size() > config_.max_queue) {
      rejected = true;
    } else {
      for (auto& request : requests) {
        queue_.push_back(std::move(request));
      }
    }
  }
  if (rejected) {
    {
      LockGuard lock(stats_mutex_);
      stat_rejected_overload_ += requests.size();
    }
    throw Overloaded("RecognitionService: queue full (batch exceeds max_queue)");
  }
  queue_cv_.notify_one();
  return future;
}

void RecognitionService::drain() {
  UniqueLock lock(queue_mutex_);
  // TSA cannot follow the cv's unlock/relock; the predicate runs with
  // queue_mutex_ held.
  idle_cv_.wait(lock, [&]() SPINSIM_NO_TSA { return queue_.empty() && in_flight_ == 0; });
}

const AssociativeEngine& RecognitionService::shard(std::size_t index) const {
  require(index < shards_.size(), "RecognitionService::shard: index out of range");
  return *shards_[index]->engine;
}

std::size_t RecognitionService::shard_base(std::size_t index) const {
  require(index < shards_.size(), "RecognitionService::shard_base: index out of range");
  return shards_[index]->base;
}

RecognitionServiceStats RecognitionService::stats() const {
  RecognitionServiceStats out;
  std::vector<Health> health(shards_.size());
  {
    LockGuard lock(stats_mutex_);
    out.queries = stat_queries_;
    out.failed = stat_failed_;
    out.batches = stat_batches_;
    out.escalated = stat_escalated_;
    out.rejected = stat_rejected_;
    out.shed_deadline = stat_shed_deadline_;
    out.rejected_overload = stat_rejected_overload_;
    out.degraded = stat_degraded_;
    out.best_effort = stat_best_effort_;
    out.idle_scrubs = stat_idle_scrubs_;
    out.controller_adjustments = stat_controller_adjustments_;
    out.brownout_active = stat_brownout_;
    out.mean_batch_size = stat_batches_ == 0 ? 0.0
                                             : static_cast<double>(stat_dispatched_) /
                                                   static_cast<double>(stat_batches_);
    // "Successes" are answered futures: delivered minus engine failures
    // minus deadline sheds. Latency/coverage/rate stats cover only them.
    const std::uint64_t successes = stat_queries_ - stat_failed_ - stat_shed_deadline_;
    out.mean_latency_us =
        successes == 0 ? 0.0 : stat_latency_sum_us_ / static_cast<double>(successes);
    out.mean_coverage =
        successes == 0 ? 0.0 : stat_coverage_sum_ / static_cast<double>(successes);
    out.max_latency_us = stat_latency_max_us_;
    // The histogram interpolates to bucket edges (~26 % resolution); the
    // exactly-tracked maximum bounds what a quantile can honestly claim.
    out.p50_latency_us = std::min(stat_latency_us_.percentile(0.50), stat_latency_max_us_);
    out.p95_latency_us = std::min(stat_latency_us_.percentile(0.95), stat_latency_max_us_);
    out.p99_latency_us = std::min(stat_latency_us_.percentile(0.99), stat_latency_max_us_);
    out.escalation_rate =
        successes == 0 ? 0.0 : static_cast<double>(stat_escalated_) / static_cast<double>(successes);
    out.reject_rate =
        successes == 0 ? 0.0 : static_cast<double>(stat_rejected_) / static_cast<double>(successes);
    if (stat_queries_ > 0) {
      const double elapsed = std::chrono::duration<double>(clock_->now() - started_at_).count();
      out.queries_per_sec = elapsed > 0.0 ? static_cast<double>(stat_queries_) / elapsed : 0.0;
    }
    // The delivered-query denominator of the repair rate is pinned here,
    // under the same lock that counted the deliveries, so the rate and
    // the alarm counter below never disagree about "how much traffic".
    if (stat_queries_ > 0) {
      out.repair_rate_per_kq = static_cast<double>(repair_events_total()) * 1000.0 /
                               static_cast<double>(stat_queries_);
    }
    out.repair_alarms = stat_repair_alarms_;
    for (std::size_t s = 0; s < shards_.size() && s < health_.size(); ++s) {
      health[s] = health_[s];
    }
  }
  // Live escalation threshold: the servo output, averaged over the
  // tiered shard engines (atomic reads, safe against traffic).
  if (!tiered_.empty()) {
    double margin_sum = 0.0;
    for (const TieredEngine* tiered : tiered_) {
      margin_sum += tiered->escalation_margin();
    }
    out.escalation_margin = margin_sum / static_cast<double>(tiered_.size());
  }
  // Per-shard engine-time quantiles, health, and the per-query energy
  // estimate. Every query visits every (healthy) shard, so the energies
  // add; tiered shard engines fold their observed escalation rate in
  // (energy_per_query is documented safe to call concurrently with
  // recognition).
  out.shards.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const auto& shard = shards_[s];
    RecognitionServiceStats::ShardStats ss;
    bool busy = false;
    {
      LockGuard lock(shard->mutex);
      ss.batches = shard->batches_run;
      ss.p50_batch_us = shard->batch_latency_us.percentile(0.50);
      ss.p95_batch_us = shard->batch_latency_us.percentile(0.95);
      ss.p99_batch_us = shard->batch_latency_us.percentile(0.99);
      busy = shard->busy;
    }
    ss.breaker = health[s].state;
    ss.available = health[s].state != RecognitionServiceStats::BreakerState::kOpen && !busy;
    ss.failures = health[s].failures;
    ss.timeouts = health[s].timeouts;
    ss.retries = health[s].retries;
    ss.ejections = health[s].ejections;
    out.shard_failures += ss.failures;
    out.shard_timeouts += ss.timeouts;
    out.shard_retries += ss.retries;
    out.breaker_ejections += ss.ejections;
    out.shards.push_back(ss);
    out.energy_per_query += shard->engine->energy_per_query();
    for (const LeafCacheEngine* leaf_cache : shard->leaf_caches) {
      const LeafCacheCounters counters = leaf_cache->counters();
      out.leaf_hits += counters.hits;
      out.leaf_misses += counters.misses;
      out.reprogram_energy += counters.reprogram_energy;
      out.repair_energy += counters.repair_energy;
      out.leaf_device_writes += counters.device_writes;
      out.leaf_device_writes_saved += counters.device_writes_saved;
      out.leaf_faults_detected += counters.faults_detected;
      out.leaf_devices_rewritten += counters.devices_rewritten;
      out.leaf_columns_remapped += counters.columns_remapped;
      out.leaf_unrepairable += counters.unrepairable;
      out.leaf_worn_out_devices += counters.worn_out_devices;
      out.leaf_verify_scans += counters.verify_scans;
      out.leaf_max_slot_write_cycles =
          std::max(out.leaf_max_slot_write_cycles, counters.max_slot_write_cycles());
    }
  }
  const std::uint64_t leaf_lookups = out.leaf_hits + out.leaf_misses;
  out.leaf_hit_rate = leaf_lookups == 0
                          ? 0.0
                          : static_cast<double>(out.leaf_hits) / static_cast<double>(leaf_lookups);
  if (input_cache_ != nullptr) {
    const InputStageCache::Stats cache_stats = input_cache_->stats();
    out.input_stage_computes = cache_stats.computes;
    out.input_stage_hits = cache_stats.hits;
  }
  return out;
}

void RecognitionService::fail_stopped(std::vector<Request>& doomed) {
  if (doomed.empty()) {
    return;
  }
  const auto stopped = std::make_exception_ptr(
      ServiceStopped("RecognitionService: service stopped before the query was dispatched"));
  for (auto& request : doomed) {
    request.deliver(Recognition{}, stopped);
  }
  LockGuard lock(stats_mutex_);
  stat_queries_ += doomed.size();
  stat_failed_ += doomed.size();
}

void RecognitionService::collector_loop() {
  for (;;) {
    std::vector<Request> batch;
    std::vector<Request> shed;
    {
      UniqueLock lock(queue_mutex_);
      // The SPINSIM_NO_TSA predicates run with queue_mutex_ held — TSA
      // cannot follow the cv's unlock/relock around them.
      queue_cv_.wait(lock, [&]() SPINSIM_NO_TSA { return stopping_ || !queue_.empty(); });
      if (!stopping_ && queue_.size() < config_.max_batch &&
          config_.admission_window.count() > 0) {
        // Admission window: from the moment work is pending, wait a
        // bounded extra beat for more arrivals so they share one dispatch.
        queue_cv_.wait_for(lock, config_.admission_window, [&]() SPINSIM_NO_TSA {
          return stopping_ || queue_.size() >= config_.max_batch;
        });
      }
      if (stopping_) {
        // Shutdown (or re-init): nothing queued gets dispatched, nothing
        // gets dropped — every future fails with ServiceStopped.
        std::vector<Request> doomed(std::make_move_iterator(queue_.begin()),
                                    std::make_move_iterator(queue_.end()));
        queue_.clear();
        idle_cv_.notify_all();
        lock.unlock();
        fail_stopped(doomed);
        return;
      }
      // Deadline shedding at batch formation: expired queries never reach
      // a shard. (Expired entries deeper in the queue are shed when they
      // surface — order is preserved, so they surface before anything
      // that could still make its deadline behind them.)
      const Clock::TimePoint now = clock_->now();
      while (batch.size() < config_.max_batch && !queue_.empty()) {
        Request request = std::move(queue_.front());
        queue_.pop_front();
        if (request.deadline <= now) {
          shed.push_back(std::move(request));
        } else {
          batch.push_back(std::move(request));
        }
      }
      in_flight_ += batch.size();
      if (batch.empty() && queue_.empty() && in_flight_ == 0) {
        idle_cv_.notify_all();
      }
    }

    if (!shed.empty()) {
      const auto expired = std::make_exception_ptr(
          DeadlineExceeded("RecognitionService: deadline expired before dispatch"));
      for (auto& request : shed) {
        request.deliver(Recognition{}, expired);
      }
      LockGuard lock(stats_mutex_);
      stat_queries_ += shed.size();
      stat_shed_deadline_ += shed.size();
    }
    if (batch.empty()) {
      continue;
    }

    dispatch(batch);
    maybe_raise_repair_alarm();

    bool idle = false;
    {
      LockGuard lock(queue_mutex_);
      in_flight_ -= batch.size();
      idle = queue_.empty() && in_flight_ == 0;
      if (idle) {
        idle_cv_.notify_all();
      }
    }
    queries_since_scrub_ += batch.size();
    if (idle) {
      maybe_post_idle_scrub();
    }
  }
}

std::uint64_t RecognitionService::repair_events_total() const {
  // Relaxed atomic counter reads inside the leaf caches — safe against
  // live worker traffic, no lock taken.
  std::uint64_t events = 0;
  for (const auto& shard : shards_) {
    for (const LeafCacheEngine* leaf_cache : shard->leaf_caches) {
      const LeafCacheCounters counters = leaf_cache->counters();
      events += counters.devices_rewritten + counters.columns_remapped;
    }
  }
  return events;
}

void RecognitionService::maybe_raise_repair_alarm() {
  if (config_.repair_alarm_per_kq <= 0.0) {
    return;
  }
  const std::uint64_t events = repair_events_total();
  double rate = 0.0;
  {
    LockGuard lock(stats_mutex_);
    if (stat_queries_ == 0) {
      return;
    }
    rate = static_cast<double>(events) * 1000.0 / static_cast<double>(stat_queries_);
    // Edge-triggered under the same lock that publishes the counter: one
    // alarm per excursion above the threshold, re-armed once the rate
    // decays back under it (traffic grows the denominator).
    if (rate > config_.repair_alarm_per_kq && !repair_alarm_active_) {
      stat_repair_alarms_ += 1;
    }
  }
  repair_alarm_active_ = rate > config_.repair_alarm_per_kq;
}

void RecognitionService::maybe_post_idle_scrub() {
  if (config_.idle_scrub_interval == 0 || queries_since_scrub_ < config_.idle_scrub_interval) {
    return;
  }
  bool posted = false;
  for (auto& shard : shards_) {
    if (shard->leaf_caches.empty()) {
      continue;
    }
    {
      LockGuard lock(shard->mutex);
      shard->scrub = true;
    }
    shard->cv.notify_all();
    posted = true;
  }
  if (!posted) {
    return;
  }
  queries_since_scrub_ = 0;
  LockGuard lock(stats_mutex_);
  stat_idle_scrubs_ += 1;
}

void RecognitionService::shard_loop(Shard* shard) {
  for (;;) {
    // Shared ownership of the batch: if the watchdog abandons this job
    // the collector's dispatch frame (and its copy of the batch) is long
    // gone by the time a wedged engine call returns — this reference
    // keeps the inputs alive until then.
    std::shared_ptr<const std::vector<FeatureVector>> job;
    std::uint64_t gen = 0;
    bool do_scrub = false;
    {
      UniqueLock lock(shard->mutex);
      shard->cv.wait(lock, [&]() SPINSIM_NO_TSA {
        return shard->stop || shard->job != nullptr || shard->scrub;
      });
      if (shard->stop) {
        return;
      }
      if (shard->job != nullptr) {
        // Serving beats scrubbing: a pending scrub flag survives to the
        // next wake-up.
        job = std::move(shard->job);
        gen = shard->job_gen;
        shard->job = nullptr;
      } else {
        do_scrub = true;
        shard->scrub = false;
      }
    }
    if (do_scrub) {
      // Verify-read scrub out of the serving path (the collector only
      // posts these when the service is idle). This thread is the only
      // one touching the engine, so no lock is held while scanning.
      for (LeafCacheEngine* leaf_cache : shard->leaf_caches) {
        leaf_cache->verify_and_repair();
      }
      continue;
    }
    std::vector<Recognition> results;
    std::exception_ptr error;
    const Clock::TimePoint engine_start = clock_->now();
    try {
      results = shard->engine->recognize_batch(*job, config_.engine_threads);
    } catch (...) {
      // Propagate through the collector to the client futures instead of
      // terminating the worker thread.
      error = std::current_exception();
    }
    const double engine_us =
        std::chrono::duration<double, std::micro>(clock_->now() - engine_start).count();
    {
      LockGuard lock(shard->mutex);
      // A job the watchdog abandoned already got answered without this
      // shard; its late results must not leak into the next batch.
      const bool abandoned = shard->abandoned_gen >= gen;
      if (!abandoned) {
        shard->results = std::move(results);
        shard->job_error = error;
        shard->done_gen = gen;
        shard->batch_latency_us.add(engine_us);
        shard->batches_run += 1;
      }
      shard->busy = false;
    }
    shard->cv.notify_all();
  }
}

void RecognitionService::post_job(Shard& shard,
                                  const std::shared_ptr<const std::vector<FeatureVector>>& inputs) {
  {
    LockGuard lock(shard.mutex);
    shard.busy = true;
    shard.job = inputs;
    shard.job_gen += 1;
  }
  shard.cv.notify_all();
}

bool RecognitionService::await_job(Shard& shard, std::vector<Recognition>& results,
                                   std::exception_ptr& error) {
  UniqueLock lock(shard.mutex);
  const std::uint64_t gen = shard.job_gen;
  // TSA cannot follow the cv's unlock/relock; the predicate runs with
  // shard.mutex held.
  const auto done = [&]() SPINSIM_NO_TSA { return shard.done_gen == gen; };
  if (config_.shard_timeout.count() > 0) {
    if (!shard.cv.wait_for(lock, config_.shard_timeout, done)) {
      // Stuck-shard watchdog: abandon the job. The worker keeps running
      // and discards the stale results; `busy` stays set until then, so
      // later dispatches skip this shard instead of queueing behind it.
      shard.abandoned_gen = gen;
      return false;
    }
  } else {
    shard.cv.wait(lock, done);
  }
  error = shard.job_error;
  shard.job_error = nullptr;
  if (!error) {
    results = std::move(shard.results);
  }
  return true;
}

Recognition RecognitionService::merge(const std::vector<Recognition*>& shard_answers,
                                      const std::vector<std::size_t>& shard_ids) const {
  // Highest score wins; ties resolve toward the lowest global template
  // index — the rule a flat WTA/argmax applies, which is what makes a
  // sharded service winner-for-winner identical to a flat engine when
  // shard scores are comparable (see header). `shard_ids` names the
  // shards that actually answered (all of them in the healthy case).
  std::size_t best = 0;
  for (std::size_t k = 1; k < shard_answers.size(); ++k) {
    if (shard_answers[k]->score > shard_answers[best]->score) {
      best = k;
    }
  }
  Recognition out = *shard_answers[best];
  out.winner += shards_[shard_ids[best]]->base;
  for (std::size_t k = 0; k < shard_answers.size(); ++k) {
    if (k != best && shard_answers[k]->score == out.score) {
      out.unique = false;
    }
  }
  if (!out.unique) {
    out.accepted = false;  // accepted implies unique, across shards too
  }
  // The winning shard's margin only measures its *local* runner-up; the
  // global runner-up may live on another shard. Cap it with the relative
  // cross-shard score gap so the merged margin never overstates the
  // confidence a flat engine would have reported. The runner-up starts at
  // -inf and takes the *actual* other-shard scores — backends may score
  // at or below zero, and clamping the runner-up to 0 would mis-cap them.
  if (shard_answers.size() > 1) {
    if (out.score > 0.0) {
      double second = -std::numeric_limits<double>::infinity();
      for (std::size_t k = 0; k < shard_answers.size(); ++k) {
        if (k != best) {
          second = std::max(second, shard_answers[k]->score);
        }
      }
      out.margin = std::min(out.margin, (out.score - second) / out.score);
    } else {
      // Non-positive winner: there is no positive scale to normalise a
      // score gap against, and a best match at or below zero carries no
      // confidence worth reporting — force escalation-grade margin.
      out.margin = 0.0;
    }
  }
  return out;
}

void RecognitionService::dispatch(std::vector<Request>& batch) {
  if (input_cache_ != nullptr) {
    // Per-dispatch semantics: entries never outlive their batch, so the
    // cache footprint is bounded by the admission window.
    input_cache_->clear();
  }
  // Shared ownership (not a dispatch-frame local): an abandoned worker
  // may still be reading these inputs long after this frame returned.
  auto inputs = std::make_shared<std::vector<FeatureVector>>();
  inputs->reserve(batch.size());
  for (auto& request : batch) {
    inputs->push_back(std::move(request.input));  // dead after dispatch
  }
  const std::shared_ptr<const std::vector<FeatureVector>> shared_inputs = inputs;

  // Shard eligibility: skip workers still wedged in an abandoned job and
  // shards whose breaker is open (an elapsed cooldown admits one
  // half-open probe).
  std::vector<std::size_t> candidates;
  candidates.reserve(shards_.size());
  {
    const Clock::TimePoint now = clock_->now();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      Shard& shard = *shards_[s];
      bool busy = false;
      {
        LockGuard lock(shard.mutex);
        busy = shard.busy;
      }
      if (busy) {
        continue;
      }
      bool admit = true;
      {
        LockGuard lock(stats_mutex_);
        Health& health = health_[s];
        if (health.state == RecognitionServiceStats::BreakerState::kOpen) {
          if (now >= health.open_until) {
            health.state = RecognitionServiceStats::BreakerState::kHalfOpen;
          } else {
            admit = false;
          }
        }
      }
      if (admit) {
        candidates.push_back(s);
      }
    }
  }

  // Breaker bookkeeping, collector-thread-only, under stats_mutex_ so
  // stats() snapshots are consistent.
  const auto note_success = [&](std::size_t s) {
    LockGuard lock(stats_mutex_);
    Health& health = health_[s];
    health.state = RecognitionServiceStats::BreakerState::kClosed;
    health.consecutive_failures = 0;
    health.cooldown = std::chrono::microseconds{0};
  };
  const auto note_exclusion = [&](std::size_t s, bool timeout) {
    LockGuard lock(stats_mutex_);
    Health& health = health_[s];
    if (timeout) {
      health.timeouts += 1;
    }
    health.consecutive_failures += 1;
    // A failed half-open probe re-opens immediately; a closed shard needs
    // the full consecutive-failure run. The cooldown backs off
    // exponentially per consecutive ejection, capped.
    if (health.state == RecognitionServiceStats::BreakerState::kHalfOpen ||
        health.consecutive_failures >= config_.breaker_failure_threshold) {
      health.state = RecognitionServiceStats::BreakerState::kOpen;
      if (health.cooldown.count() == 0) {
        health.cooldown = config_.breaker_cooldown;
      }
      health.open_until = clock_->now() + health.cooldown;
      health.cooldown = std::min(
          std::chrono::microseconds{static_cast<std::int64_t>(
              std::llround(static_cast<double>(health.cooldown.count()) *
                           config_.breaker_backoff))},
          config_.breaker_max_cooldown);
      health.ejections += 1;
    }
  };

  // Fan out to every candidate at once, then collect — retrying a shard
  // whose engine threw, in place, up to shard_retries times.
  for (const std::size_t s : candidates) {
    post_job(*shards_[s], shared_inputs);
  }
  std::vector<std::vector<Recognition>> per_shard(shards_.size());
  std::vector<std::size_t> answered;
  std::exception_ptr first_error;
  for (const std::size_t s : candidates) {
    Shard& shard = *shards_[s];
    std::size_t retries_left = config_.shard_retries;
    for (;;) {
      std::vector<Recognition> results;
      std::exception_ptr error;
      if (!await_job(shard, results, error)) {
        note_exclusion(s, /*timeout=*/true);
        break;
      }
      if (!error) {
        per_shard[s] = std::move(results);
        answered.push_back(s);
        note_success(s);
        break;
      }
      if (!first_error) {
        first_error = error;
      }
      {
        LockGuard lock(stats_mutex_);
        health_[s].failures += 1;
      }
      if (retries_left > 0) {
        --retries_left;
        {
          LockGuard lock(stats_mutex_);
          health_[s].retries += 1;
        }
        post_job(shard, shared_inputs);
        continue;
      }
      note_exclusion(s, /*timeout=*/false);
      break;
    }
  }

  if (answered.empty()) {
    // Nothing served the batch. Propagate the engine's own error when
    // there was one (the single-shard contract); otherwise the refusal
    // is capacity-shaped and retriable.
    std::exception_ptr error = first_error;
    if (!error) {
      error = std::make_exception_ptr(
          Overloaded("RecognitionService: no healthy shard available for the batch"));
    }
    for (auto& request : batch) {
      request.deliver(Recognition{}, error);
    }
    // Failed queries still count: every delivered future shows up in
    // `queries` (and in `failed`), so mean_batch_size keeps meaning
    // dispatched/batches whatever the error rate. Latency stats only
    // track successes — see RecognitionServiceStats.
    LockGuard lock(stats_mutex_);
    stat_queries_ += batch.size();
    stat_failed_ += batch.size();
    stat_dispatched_ += batch.size();
    stat_batches_ += 1;
    return;
  }

  // Best-effort coverage: the fraction of the stored template set the
  // answering shards actually hold (1.0 in the healthy case).
  std::size_t covered = 0;
  for (const std::size_t s : answered) {
    covered += shards_[s]->columns;
  }
  const double coverage =
      total_columns_ == 0 ? 1.0
                          : static_cast<double>(covered) / static_cast<double>(total_columns_);
  const bool degraded_now = brownout_;

  const Clock::TimePoint now = clock_->now();
  std::vector<Recognition> merged;
  merged.reserve(batch.size());
  std::vector<double> latencies_us;
  latencies_us.reserve(batch.size());
  std::uint64_t escalated = 0;
  std::uint64_t rejected = 0;
  std::vector<Recognition*> answers(answered.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    for (std::size_t k = 0; k < answered.size(); ++k) {
      answers[k] = &per_shard[answered[k]][i];
    }
    Recognition answer = merge(answers, answered);
    answer.coverage = coverage;
    if (degraded_now) {
      answer.degraded = true;
    }
    if (const TieredRecognitionDetail* tiered = answer.tiered()) {
      escalated += tiered->tier == 1 ? 1 : 0;
    }
    rejected += answer.accepted ? 0 : 1;
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(now - batch[i].enqueued).count());
    merged.push_back(std::move(answer));
  }

  // Stats first: once a future resolves, a client may read stats() and
  // must see its own query counted.
  {
    LockGuard lock(stats_mutex_);
    stat_queries_ += batch.size();
    stat_dispatched_ += batch.size();
    stat_batches_ += 1;
    stat_escalated_ += escalated;
    stat_rejected_ += rejected;
    if (degraded_now) {
      stat_degraded_ += batch.size();
    }
    if (coverage < 1.0) {
      stat_best_effort_ += batch.size();
    }
    stat_coverage_sum_ += coverage * static_cast<double>(batch.size());
    for (const double latency_us : latencies_us) {
      stat_latency_sum_us_ += latency_us;
      stat_latency_max_us_ = std::max(stat_latency_max_us_, latency_us);
      stat_latency_us_.add(latency_us);
    }
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i].deliver(std::move(merged[i]), nullptr);
  }

  controller_step(latencies_us);
}

void RecognitionService::controller_step(const std::vector<double>& latencies_us) {
  const OverloadControlConfig& oc = config_.overload;
  if (!oc.enabled || tiered_.empty()) {
    return;
  }
  for (const double latency : latencies_us) {
    window_latency_us_.add(latency);
    window_max_us_ = std::max(window_max_us_, latency);
  }
  window_count_ += latencies_us.size();
  if (window_count_ < oc.period_queries) {
    return;
  }
  const double p99 = std::min(window_latency_us_.percentile(0.99), window_max_us_);
  bool changed = false;
  // Multiplicative servo on the live TieredEngine escalation threshold:
  // tighten = escalate less (cheaper, faster), relax = walk back toward
  // the construction-time margin. Tightening from a positive margin never
  // reaches exactly zero, so relaxing (division) always recovers.
  const auto adjust = [&](bool tighten) {
    for (std::size_t i = 0; i < tiered_.size(); ++i) {
      const double margin = tiered_[i]->escalation_margin();
      const double next = tighten
                              ? std::max(oc.min_escalation_margin, margin * oc.margin_step)
                              : std::min(base_margins_[i], margin / oc.margin_step);
      if (next != margin) {
        tiered_[i]->set_escalation_margin(next);
        changed = true;
      }
    }
  };
  if (p99 > oc.brownout_factor * oc.target_p99_us) {
    // Second watermark: brown out — tier 0 answers everything, answers
    // are flagged `degraded` — and keep tightening for the recovery.
    if (!brownout_) {
      brownout_ = true;
      for (TieredEngine* tiered : tiered_) {
        tiered->set_force_tier0(true);
      }
      changed = true;
    }
    adjust(/*tighten=*/true);
  } else if (p99 > oc.target_p99_us) {
    adjust(/*tighten=*/true);
  } else {
    // Back under the SLO: brown-out lifts (hysteresis: it held while p99
    // sat between the target and the brown-out watermark), and a deep
    // margin walks back once p99 clears the low watermark.
    if (brownout_) {
      brownout_ = false;
      for (TieredEngine* tiered : tiered_) {
        tiered->set_force_tier0(false);
      }
      changed = true;
    }
    if (p99 < oc.low_watermark * oc.target_p99_us) {
      adjust(/*tighten=*/false);
    }
  }
  window_latency_us_ = GeometricHistogram{};
  window_max_us_ = 0.0;
  window_count_ = 0;
  LockGuard lock(stats_mutex_);
  stat_brownout_ = brownout_;
  if (changed) {
    stat_controller_adjustments_ += 1;
  }
}

RecognitionService::EngineFactory make_tiered_factory(RecognitionService::EngineFactory tier0,
                                                      RecognitionService::EngineFactory tier1,
                                                      const TieredEngineConfig& config) {
  require(static_cast<bool>(tier0) && static_cast<bool>(tier1),
          "make_tiered_factory: both tier factories must be non-empty");
  return [tier0 = std::move(tier0), tier1 = std::move(tier1),
          config](std::size_t shard, std::size_t columns) -> std::unique_ptr<AssociativeEngine> {
    return std::make_unique<TieredEngine>(tier0(shard, columns), tier1(shard, columns), config);
  };
}

RecognitionService::EngineFactory make_leaf_cache_factory(const LeafCacheEngineConfig& config) {
  return [config](std::size_t shard, std::size_t columns) -> std::unique_ptr<AssociativeEngine> {
    LeafCacheEngineConfig c = config;
    // A shard's slice may be much smaller than the logical set the caller
    // sized the clustering for: keep every leaf non-trivial (>= 2
    // templates on average) and the router meaningful (>= 2 clusters).
    const std::size_t max_clusters = std::max<std::size_t>(columns / 2, 2);
    c.hierarchy.clusters = std::min(c.hierarchy.clusters, max_clusters);
    c.leaf_slots = std::max<std::size_t>(std::min(c.leaf_slots, c.hierarchy.clusters), 1);
    // Distinct device noise per replica, like any sharded deployment.
    c.hierarchy.seed = config.hierarchy.seed + 0x9E37 * (shard + 1);
    return std::make_unique<LeafCacheEngine>(c);
  };
}

}  // namespace spinsim
