#include "service/recognition_service.hpp"

#include <algorithm>
#include <utility>

#include "core/error.hpp"

namespace spinsim {

RecognitionService::RecognitionService(const RecognitionServiceConfig& config,
                                       EngineFactory factory)
    : config_(config), factory_(std::move(factory)) {
  require(config_.shards >= 1, "RecognitionService: need at least one shard");
  require(config_.max_batch >= 1, "RecognitionService: max_batch must be positive");
  require(static_cast<bool>(factory_), "RecognitionService: empty engine factory");
}

RecognitionService::~RecognitionService() {
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  if (collector_.joinable()) {
    collector_.join();
  }
  for (auto& shard : shards_) {
    {
      std::unique_lock<std::mutex> lock(shard->mutex);
      shard->stop = true;
    }
    shard->cv.notify_all();
    if (shard->worker.joinable()) {
      shard->worker.join();
    }
  }
}

void RecognitionService::store_templates(const std::vector<FeatureVector>& templates) {
  require(!started_, "RecognitionService: store_templates() may run only once");
  require(templates.size() >= 2 * config_.shards,
          "RecognitionService: every shard needs at least two templates");

  // Contiguous split, remainder spread over the leading shards, so
  // global index = shard base + local index.
  const std::size_t per_shard = templates.size() / config_.shards;
  const std::size_t remainder = templates.size() % config_.shards;

  shards_.clear();
  std::size_t base = 0;
  for (std::size_t s = 0; s < config_.shards; ++s) {
    const std::size_t count = per_shard + (s < remainder ? 1 : 0);
    auto shard = std::make_unique<Shard>();
    shard->base = base;
    shard->engine = factory_(s, count);
    require(shard->engine != nullptr, "RecognitionService: factory returned null engine");
    const std::vector<FeatureVector> slice(templates.begin() + static_cast<std::ptrdiff_t>(base),
                                           templates.begin() +
                                               static_cast<std::ptrdiff_t>(base + count));
    shard->engine->store_templates(slice);
    // Checked after storing: backends like HierarchicalAmm only learn
    // their template count from store_templates().
    require(shard->engine->template_count() == count,
            "RecognitionService: factory sized the engine for the wrong column count");
    base += count;
    shards_.push_back(std::move(shard));
  }

  for (auto& shard : shards_) {
    Shard* raw = shard.get();
    const std::size_t engine_threads = config_.engine_threads;
    shard->worker = std::thread([raw, engine_threads] { shard_loop(raw, engine_threads); });
  }
  started_at_ = std::chrono::steady_clock::now();
  started_ = true;
  collector_ = std::thread([this] { collector_loop(); });
}

void RecognitionService::enqueue(Request&& request) {
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    require(started_, "RecognitionService: store_templates() before submit");
    require(!stopping_, "RecognitionService: service is shutting down");
    queue_.push_back(std::move(request));
  }
  queue_cv_.notify_one();
}

std::future<Recognition> RecognitionService::submit(FeatureVector input) {
  auto promise = std::make_shared<std::promise<Recognition>>();
  std::future<Recognition> future = promise->get_future();
  Request request;
  request.input = std::move(input);
  request.enqueued = std::chrono::steady_clock::now();
  request.deliver = [promise](Recognition&& result, std::exception_ptr error) {
    if (error) {
      promise->set_exception(error);
    } else {
      promise->set_value(std::move(result));
    }
  };
  enqueue(std::move(request));
  return future;
}

std::future<std::vector<Recognition>> RecognitionService::submit_batch(
    std::vector<FeatureVector> inputs) {
  struct Join {
    std::vector<Recognition> results;
    std::size_t remaining = 0;
    bool failed = false;
    std::mutex mutex;
    std::promise<std::vector<Recognition>> promise;
  };
  auto join = std::make_shared<Join>();
  join->results.resize(inputs.size());
  join->remaining = inputs.size();
  std::future<std::vector<Recognition>> future = join->promise.get_future();
  if (inputs.empty()) {
    join->promise.set_value({});
    return future;
  }

  const auto now = std::chrono::steady_clock::now();
  std::vector<Request> requests;
  requests.reserve(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    Request request;
    request.input = std::move(inputs[i]);
    request.enqueued = now;
    request.deliver = [join, i](Recognition&& result, std::exception_ptr error) {
      std::unique_lock<std::mutex> lock(join->mutex);
      if (error) {
        if (!join->failed) {
          join->failed = true;
          join->promise.set_exception(error);
        }
        return;
      }
      join->results[i] = std::move(result);
      if (--join->remaining == 0 && !join->failed) {
        join->promise.set_value(std::move(join->results));
      }
    };
    requests.push_back(std::move(request));
  }

  // One lock round-trip for the whole batch so the admission window sees
  // it at once and coalesces it into ceil(n / max_batch) dispatches.
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    require(started_, "RecognitionService: store_templates() before submit");
    require(!stopping_, "RecognitionService: service is shutting down");
    for (auto& request : requests) {
      queue_.push_back(std::move(request));
    }
  }
  queue_cv_.notify_one();
  return future;
}

void RecognitionService::drain() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
}

const AssociativeEngine& RecognitionService::shard(std::size_t index) const {
  require(index < shards_.size(), "RecognitionService::shard: index out of range");
  return *shards_[index]->engine;
}

std::size_t RecognitionService::shard_base(std::size_t index) const {
  require(index < shards_.size(), "RecognitionService::shard_base: index out of range");
  return shards_[index]->base;
}

RecognitionServiceStats RecognitionService::stats() const {
  std::unique_lock<std::mutex> lock(stats_mutex_);
  RecognitionServiceStats out;
  out.queries = stat_queries_;
  out.batches = stat_batches_;
  out.mean_batch_size =
      stat_batches_ == 0 ? 0.0 : static_cast<double>(stat_queries_) / static_cast<double>(stat_batches_);
  out.mean_latency_us = stat_queries_ == 0 ? 0.0 : stat_latency_sum_us_ / static_cast<double>(stat_queries_);
  out.max_latency_us = stat_latency_max_us_;
  if (stat_queries_ > 0) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - started_at_).count();
    out.queries_per_sec = elapsed > 0.0 ? static_cast<double>(stat_queries_) / elapsed : 0.0;
  }
  return out;
}

void RecognitionService::collector_loop() {
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        // stopping_ and nothing left to do.
        return;
      }
      // Admission window: from the moment work is pending, wait a bounded
      // extra beat for more arrivals so they share one dispatch.
      if (queue_.size() < config_.max_batch && config_.admission_window.count() > 0) {
        const auto deadline = std::chrono::steady_clock::now() + config_.admission_window;
        queue_cv_.wait_until(lock, deadline,
                             [&] { return stopping_ || queue_.size() >= config_.max_batch; });
      }
      const std::size_t count = std::min(queue_.size(), config_.max_batch);
      batch.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      in_flight_ += batch.size();
    }

    dispatch(batch);

    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      in_flight_ -= batch.size();
      if (queue_.empty() && in_flight_ == 0) {
        idle_cv_.notify_all();
      }
    }
  }
}

void RecognitionService::shard_loop(Shard* shard, std::size_t engine_threads) {
  for (;;) {
    const std::vector<FeatureVector>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(shard->mutex);
      shard->cv.wait(lock, [&] { return shard->stop || shard->job != nullptr; });
      if (shard->stop) {
        return;
      }
      job = shard->job;
    }
    std::vector<Recognition> results;
    std::exception_ptr error;
    try {
      results = shard->engine->recognize_batch(*job, engine_threads);
    } catch (...) {
      // Propagate through the collector to the client futures instead of
      // terminating the worker thread.
      error = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(shard->mutex);
      shard->results = std::move(results);
      shard->job_error = error;
      shard->job = nullptr;
      shard->job_done = true;
    }
    shard->cv.notify_all();
  }
}

Recognition RecognitionService::merge(std::vector<Recognition*>& shard_answers) const {
  // Highest score wins; ties resolve toward the lowest global template
  // index — the rule a flat WTA/argmax applies, which is what makes a
  // sharded service winner-for-winner identical to a flat engine when
  // shard scores are comparable (see header).
  std::size_t best_shard = 0;
  for (std::size_t s = 1; s < shard_answers.size(); ++s) {
    if (shard_answers[s]->score > shard_answers[best_shard]->score) {
      best_shard = s;
    }
  }
  Recognition out = *shard_answers[best_shard];
  out.winner += shards_[best_shard]->base;
  for (std::size_t s = 0; s < shard_answers.size(); ++s) {
    if (s != best_shard && shard_answers[s]->score == out.score) {
      out.unique = false;
    }
  }
  // The winning shard's margin only measures its *local* runner-up; the
  // global runner-up may live on another shard. Cap it with the relative
  // cross-shard score gap so the merged margin never overstates the
  // confidence a flat engine would have reported.
  if (shard_answers.size() > 1 && out.score > 0.0) {
    double second = 0.0;
    for (std::size_t s = 0; s < shard_answers.size(); ++s) {
      if (s != best_shard) {
        second = std::max(second, shard_answers[s]->score);
      }
    }
    out.margin = std::min(out.margin, (out.score - second) / out.score);
  }
  return out;
}

void RecognitionService::dispatch(std::vector<Request>& batch) {
  std::vector<FeatureVector> inputs;
  inputs.reserve(batch.size());
  for (auto& request : batch) {
    inputs.push_back(std::move(request.input));  // dead after dispatch
  }

  // Hand the batch to every shard worker, then collect.
  for (auto& shard : shards_) {
    {
      std::unique_lock<std::mutex> lock(shard->mutex);
      shard->job = &inputs;
      shard->job_done = false;
    }
    shard->cv.notify_all();
  }
  std::vector<std::vector<Recognition>> per_shard(shards_.size());
  std::exception_ptr error;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    std::unique_lock<std::mutex> lock(shards_[s]->mutex);
    shards_[s]->cv.wait(lock, [&] { return shards_[s]->job_done; });
    per_shard[s] = std::move(shards_[s]->results);
    if (shards_[s]->job_error && !error) {
      error = shards_[s]->job_error;
    }
    shards_[s]->job_error = nullptr;
    shards_[s]->job_done = false;
  }
  if (error) {
    for (auto& request : batch) {
      request.deliver(Recognition{}, error);
    }
    std::unique_lock<std::mutex> lock(stats_mutex_);
    stat_batches_ += 1;
    return;
  }

  const auto now = std::chrono::steady_clock::now();
  std::vector<Recognition> merged;
  merged.reserve(batch.size());
  double latency_sum_us = 0.0;
  double latency_max_us = 0.0;
  std::vector<Recognition*> answers(shards_.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      answers[s] = &per_shard[s][i];
    }
    merged.push_back(merge(answers));
    const double latency_us =
        std::chrono::duration<double, std::micro>(now - batch[i].enqueued).count();
    latency_sum_us += latency_us;
    latency_max_us = std::max(latency_max_us, latency_us);
  }

  // Stats first: once a future resolves, a client may read stats() and
  // must see its own query counted.
  {
    std::unique_lock<std::mutex> lock(stats_mutex_);
    stat_queries_ += batch.size();
    stat_batches_ += 1;
    stat_latency_sum_us_ += latency_sum_us;
    stat_latency_max_us_ = std::max(stat_latency_max_us_, latency_max_us);
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i].deliver(std::move(merged[i]), nullptr);
  }
}

}  // namespace spinsim
