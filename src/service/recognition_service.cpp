#include "service/recognition_service.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "amm/fault_injection.hpp"
#include "amm/spin_amm.hpp"
#include "core/error.hpp"

namespace spinsim {

namespace {

/// Leaf-cache engines reachable from `engine`, looking through tiered
/// compositions (e.g. a TieredEngine with a leaf-cache tier 0 built by
/// stacking make_tiered_factory on make_leaf_cache_factory) and through
/// FaultInjectingEngine decorators, so stats() and idle scrubbing find
/// the cache wherever it sits. Mutable: scrubs call verify_and_repair().
std::vector<LeafCacheEngine*> find_leaf_caches(AssociativeEngine* engine) {
  std::vector<LeafCacheEngine*> found;
  if (auto* leaf_cache = dynamic_cast<LeafCacheEngine*>(engine)) {
    found.push_back(leaf_cache);
  } else if (auto* tiered = dynamic_cast<TieredEngine*>(engine)) {
    for (AssociativeEngine* tier : {&tiered->tier0(), &tiered->tier1()}) {
      const std::vector<LeafCacheEngine*> below = find_leaf_caches(tier);
      found.insert(found.end(), below.begin(), below.end());
    }
  } else if (auto* faulty = dynamic_cast<FaultInjectingEngine*>(engine)) {
    const std::vector<LeafCacheEngine*> below = find_leaf_caches(&faulty->inner());
    found.insert(found.end(), below.begin(), below.end());
  }
  return found;
}

/// The TieredEngine a shard serves from, looking through a
/// FaultInjectingEngine decorator — the overload controller's actuator.
TieredEngine* find_tiered(AssociativeEngine* engine) {
  if (auto* tiered = dynamic_cast<TieredEngine*>(engine)) {
    return tiered;
  }
  if (auto* faulty = dynamic_cast<FaultInjectingEngine*>(engine)) {
    return find_tiered(&faulty->inner());
  }
  return nullptr;
}

}  // namespace

RecognitionService::RecognitionService(const RecognitionServiceConfig& config,
                                       EngineFactory factory)
    : config_(config),
      factory_(std::move(factory)),
      clock_(config.clock ? config.clock : SteadyClock::instance()),
      wall_clock_(SteadyClock::instance()) {
  require(config_.shards >= 1, "RecognitionService: need at least one shard");
  require(config_.max_batch >= 1, "RecognitionService: max_batch must be positive");
  require(static_cast<bool>(factory_), "RecognitionService: empty engine factory");
  require(config_.shard_timeout.count() >= 0,
          "RecognitionService: shard_timeout cannot be negative");
  require(config_.breaker_failure_threshold >= 1,
          "RecognitionService: breaker_failure_threshold must be positive");
  require(config_.breaker_backoff >= 1.0, "RecognitionService: breaker_backoff must be >= 1");
  require(config_.breaker_cooldown.count() >= 0,
          "RecognitionService: breaker_cooldown cannot be negative");
  require(config_.breaker_max_cooldown >= config_.breaker_cooldown,
          "RecognitionService: breaker_max_cooldown must be >= breaker_cooldown");
  if (config_.overload.enabled) {
    const OverloadControlConfig& oc = config_.overload;
    require(oc.target_p99_us > 0.0,
            "RecognitionService: overload control needs a positive target_p99_us");
    require(oc.margin_step > 0.0 && oc.margin_step <= 1.0,
            "RecognitionService: overload margin_step must lie in (0, 1]");
    require(oc.brownout_factor >= 1.0,
            "RecognitionService: overload brownout_factor must be >= 1");
    require(oc.low_watermark >= 0.0 && oc.low_watermark < 1.0,
            "RecognitionService: overload low_watermark must lie in [0, 1)");
    require(oc.min_escalation_margin >= 0.0,
            "RecognitionService: overload min_escalation_margin cannot be negative");
    require(oc.period_queries >= 1,
            "RecognitionService: overload period_queries must be positive");
  }
}

RecognitionService::~RecognitionService() { stop_threads(); }

void RecognitionService::stop_threads() {
  {
    LockGuard lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  // The collector fails everything still queued with ServiceStopped on
  // its way out, so no future is ever silently dropped. A worker wedged
  // *inside* an engine call (FaultSwitch::stick) must be released before
  // this join can finish — the service cannot preempt a hung engine.
  if (collector_.joinable()) {
    collector_.join();
  }
  for (auto& shard : shards_) {
    {
      LockGuard lock(shard->mutex);
      shard->stop = true;
    }
    shard->cv.notify_all();
    if (shard->worker.joinable()) {
      shard->worker.join();
    }
  }
}

void RecognitionService::reset_stats_locked() {
  stat_queries_ = 0;
  stat_failed_ = 0;
  stat_batches_ = 0;
  stat_dispatched_ = 0;
  stat_escalated_ = 0;
  stat_rejected_ = 0;
  stat_shed_deadline_ = 0;
  stat_rejected_overload_ = 0;
  stat_degraded_ = 0;
  stat_best_effort_ = 0;
  stat_coverage_sum_ = 0.0;
  stat_idle_scrubs_ = 0;
  stat_repair_alarms_ = 0;
  stat_controller_adjustments_ = 0;
  stat_brownout_ = false;
  stat_latency_sum_us_ = 0.0;
  stat_latency_max_us_ = 0.0;
  stat_latency_us_ = GeometricHistogram{};
  health_.clear();
}

void RecognitionService::store_templates(const std::vector<FeatureVector>& templates) {
  require(templates.size() >= 2 * config_.shards,
          "RecognitionService: every shard needs at least two templates");

  bool was_started = false;
  {
    LockGuard lock(queue_mutex_);
    was_started = started_;
  }
  if (was_started) {
    // Re-initialisation: tear the running edge down first. The collector
    // fails every queued future with ServiceStopped, then every counter
    // and controller state resets — the new shard set starts clean.
    stop_threads();
    shards_.clear();
    tiered_.clear();
    base_margins_.clear();
    input_cache_.reset();
    {
      LockGuard lock(queue_mutex_);
      stopping_ = false;
      started_ = false;
      in_flight_ = 0;
    }
    brownout_ = false;
    window_latency_us_ = GeometricHistogram{};
    window_max_us_ = 0.0;
    window_count_ = 0;
    queries_since_scrub_ = 0;
    repair_alarm_active_ = false;
    {
      // A worker of the old incarnation may have pushed a completion after
      // the old collector drained its in-flight batches (an abandoned job
      // finishing late); generations restart with the new shard set, so a
      // stale entry could alias a fresh one.
      LockGuard lock(done_mutex_);
      completions_.clear();
    }
    {
      LockGuard lock(stats_mutex_);
      reset_stats_locked();
    }
  }

  // Contiguous split, remainder spread over the leading shards, so
  // global index = shard base + local index.
  const std::size_t per_shard = templates.size() / config_.shards;
  const std::size_t remainder = templates.size() % config_.shards;

  shards_.clear();
  std::size_t base = 0;
  for (std::size_t s = 0; s < config_.shards; ++s) {
    const std::size_t count = per_shard + (s < remainder ? 1 : 0);
    auto shard = std::make_unique<Shard>();
    shard->base = base;
    shard->columns = count;
    shard->engine = factory_(s, count);
    require(shard->engine != nullptr, "RecognitionService: factory returned null engine");
    const std::vector<FeatureVector> slice(templates.begin() + static_cast<std::ptrdiff_t>(base),
                                           templates.begin() +
                                               static_cast<std::ptrdiff_t>(base + count));
    shard->engine->store_templates(slice);
    // Checked after storing: backends like HierarchicalAmm only learn
    // their template count from store_templates().
    require(shard->engine->template_count() == count,
            "RecognitionService: factory sized the engine for the wrong column count");
    shard->leaf_caches = find_leaf_caches(shard->engine.get());
    if (TieredEngine* tiered = find_tiered(shard->engine.get())) {
      tiered_.push_back(tiered);
      base_margins_.push_back(tiered->escalation_margin());
    }
    base += count;
    shards_.push_back(std::move(shard));
  }
  total_columns_ = templates.size();

  if (config_.dedup_input_stage) {
    // One per-dispatch cache of realised input row currents, shared by
    // every shard: the first shard to see a query computes, the rest hit.
    // Sharing is only sound when every shard's input stage realises the
    // same currents for the same digital codes, so verify the realised
    // sizing — full-scale current and per-row conductances — actually
    // agrees across shards instead of trusting the factory.
    std::vector<SpinAmm*> spins;
    spins.reserve(shards_.size());
    for (auto& shard : shards_) {
      auto* spin = dynamic_cast<SpinAmm*>(shard->engine.get());
      require(spin != nullptr,
              "RecognitionService: dedup_input_stage requires SpinAmm shard engines");
      spins.push_back(spin);
    }
    // The padded row conductance is (target - row_sum) + row_sum, which
    // agrees across shards only to rounding; one part in 1e9 separates
    // that from a genuinely different calibration.
    const auto close = [](double a, double b) {
      return std::abs(a - b) <= 1e-9 * std::max(std::abs(a), std::abs(b));
    };
    // Probing the realised current at the full-scale code exercises the
    // whole input stage — DAC bit cells including any sampled mismatch,
    // not just the row load — so per-shard device seeds that diverge the
    // DAC banks are caught here, where conductance checks alone pass.
    const std::uint32_t top_code = spins[0]->config().features.levels() - 1;
    for (std::size_t s = 1; s < spins.size(); ++s) {
      require(spins[s]->input_full_scale() == spins[0]->input_full_scale(),
              "RecognitionService: dedup_input_stage requires a shared "
              "input_full_scale_override across shards");
      for (std::size_t row = 0; row < spins[0]->config().features.dimension(); ++row) {
        require(close(spins[s]->realised_input_current(row, top_code),
                      spins[0]->realised_input_current(row, top_code)),
                "RecognitionService: dedup_input_stage requires shards whose "
                "input stages realise identical currents (shared "
                "row_target_conductance and device seed, no divergent "
                "sampled mismatch)");
      }
    }
    input_cache_ = std::make_shared<InputStageCache>();
    for (SpinAmm* spin : spins) {
      spin->set_input_stage_cache(input_cache_);
    }
  }

  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->worker = std::thread([this, s] { shard_loop(s); });
  }
  {
    LockGuard lock(stats_mutex_);
    started_at_ = clock_->now();
    health_.assign(shards_.size(), Health{});
  }
  {
    LockGuard lock(queue_mutex_);
    started_ = true;
  }
  collector_ = std::thread([this] { collector_loop(); });
}

void RecognitionService::enqueue(Request&& request) {
  bool rejected = false;
  {
    LockGuard lock(queue_mutex_);
    require(started_, "RecognitionService: store_templates() before submit");
    require(!stopping_, "RecognitionService: service is shutting down");
    if (config_.max_queue > 0 && queue_.size() >= config_.max_queue) {
      rejected = true;
    } else {
      queue_.push_back(std::move(request));
    }
  }
  if (rejected) {
    {
      LockGuard lock(stats_mutex_);
      stat_rejected_overload_ += 1;
    }
    throw Overloaded("RecognitionService: queue full (max_queue pending requests)");
  }
  queue_cv_.notify_one();
}

std::future<Recognition> RecognitionService::submit(FeatureVector input,
                                                    const SubmitOptions& options) {
  auto promise = std::make_shared<std::promise<Recognition>>();
  std::future<Recognition> future = promise->get_future();
  const Clock::TimePoint now = clock_->now();
  Request request;
  request.input = std::move(input);
  request.enqueued = now;
  request.deadline =
      options.deadline.count() > 0 ? now + options.deadline : Clock::TimePoint::max();
  request.deliver = [promise](Recognition&& result, std::exception_ptr error) {
    if (error) {
      promise->set_exception(error);
    } else {
      promise->set_value(std::move(result));
    }
  };
  enqueue(std::move(request));
  return future;
}

std::future<std::vector<Recognition>> RecognitionService::submit_batch(
    std::vector<FeatureVector> inputs, const SubmitOptions& options) {
  struct Join {
    std::vector<Recognition> results;
    std::size_t remaining = 0;
    bool failed = false;
    // Rank kClientJoin: the deliver callbacks run on the collector thread
    // with no other lock held.
    Mutex mutex{LockRank::kClientJoin};
    std::promise<std::vector<Recognition>> promise;
  };
  auto join = std::make_shared<Join>();
  join->results.resize(inputs.size());
  join->remaining = inputs.size();
  std::future<std::vector<Recognition>> future = join->promise.get_future();
  if (inputs.empty()) {
    join->promise.set_value({});
    return future;
  }

  const Clock::TimePoint now = clock_->now();
  const Clock::TimePoint deadline =
      options.deadline.count() > 0 ? now + options.deadline : Clock::TimePoint::max();
  std::vector<Request> requests;
  requests.reserve(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    Request request;
    request.input = std::move(inputs[i]);
    request.enqueued = now;
    request.deadline = deadline;
    request.deliver = [join, i](Recognition&& result, std::exception_ptr error) {
      LockGuard lock(join->mutex);
      if (error) {
        if (!join->failed) {
          join->failed = true;
          join->promise.set_exception(error);
        }
        return;
      }
      join->results[i] = std::move(result);
      if (--join->remaining == 0 && !join->failed) {
        join->promise.set_value(std::move(join->results));
      }
    };
    requests.push_back(std::move(request));
  }

  // One lock round-trip for the whole batch so the admission window sees
  // it at once and coalesces it into ceil(n / max_batch) dispatches.
  // Queue-cap admission is all-or-nothing: a batch that does not fit
  // leaves the queue untouched.
  bool rejected = false;
  {
    LockGuard lock(queue_mutex_);
    require(started_, "RecognitionService: store_templates() before submit");
    require(!stopping_, "RecognitionService: service is shutting down");
    if (config_.max_queue > 0 && queue_.size() + requests.size() > config_.max_queue) {
      rejected = true;
    } else {
      for (auto& request : requests) {
        queue_.push_back(std::move(request));
      }
    }
  }
  if (rejected) {
    {
      LockGuard lock(stats_mutex_);
      stat_rejected_overload_ += requests.size();
    }
    throw Overloaded("RecognitionService: queue full (batch exceeds max_queue)");
  }
  queue_cv_.notify_one();
  return future;
}

void RecognitionService::drain() {
  UniqueLock lock(queue_mutex_);
  // TSA cannot follow the cv's unlock/relock; the predicate runs with
  // queue_mutex_ held.
  idle_cv_.wait(lock, [&]() SPINSIM_NO_TSA { return queue_.empty() && in_flight_ == 0; });
}

const AssociativeEngine& RecognitionService::shard(std::size_t index) const {
  require(index < shards_.size(), "RecognitionService::shard: index out of range");
  return *shards_[index]->engine;
}

std::size_t RecognitionService::shard_base(std::size_t index) const {
  require(index < shards_.size(), "RecognitionService::shard_base: index out of range");
  return shards_[index]->base;
}

RecognitionServiceStats RecognitionService::stats() const {
  RecognitionServiceStats out;
  std::vector<Health> health(shards_.size());
  {
    LockGuard lock(stats_mutex_);
    out.queries = stat_queries_;
    out.failed = stat_failed_;
    out.batches = stat_batches_;
    out.escalated = stat_escalated_;
    out.rejected = stat_rejected_;
    out.shed_deadline = stat_shed_deadline_;
    out.rejected_overload = stat_rejected_overload_;
    out.degraded = stat_degraded_;
    out.best_effort = stat_best_effort_;
    out.idle_scrubs = stat_idle_scrubs_;
    out.controller_adjustments = stat_controller_adjustments_;
    out.brownout_active = stat_brownout_;
    out.mean_batch_size = stat_batches_ == 0 ? 0.0
                                             : static_cast<double>(stat_dispatched_) /
                                                   static_cast<double>(stat_batches_);
    // "Successes" are answered futures: delivered minus engine failures
    // minus deadline sheds. Latency/coverage/rate stats cover only them.
    const std::uint64_t successes = stat_queries_ - stat_failed_ - stat_shed_deadline_;
    out.mean_latency_us =
        successes == 0 ? 0.0 : stat_latency_sum_us_ / static_cast<double>(successes);
    out.mean_coverage =
        successes == 0 ? 0.0 : stat_coverage_sum_ / static_cast<double>(successes);
    out.max_latency_us = stat_latency_max_us_;
    // The histogram interpolates to bucket edges (~26 % resolution); the
    // exactly-tracked maximum bounds what a quantile can honestly claim.
    out.p50_latency_us = std::min(stat_latency_us_.percentile(0.50), stat_latency_max_us_);
    out.p95_latency_us = std::min(stat_latency_us_.percentile(0.95), stat_latency_max_us_);
    out.p99_latency_us = std::min(stat_latency_us_.percentile(0.99), stat_latency_max_us_);
    out.escalation_rate =
        successes == 0 ? 0.0 : static_cast<double>(stat_escalated_) / static_cast<double>(successes);
    out.reject_rate =
        successes == 0 ? 0.0 : static_cast<double>(stat_rejected_) / static_cast<double>(successes);
    if (stat_queries_ > 0) {
      const double elapsed = std::chrono::duration<double>(clock_->now() - started_at_).count();
      out.queries_per_sec = elapsed > 0.0 ? static_cast<double>(stat_queries_) / elapsed : 0.0;
    }
    // The delivered-query denominator of the repair rate is pinned here,
    // under the same lock that counted the deliveries, so the rate and
    // the alarm counter below never disagree about "how much traffic".
    if (stat_queries_ > 0) {
      out.repair_rate_per_kq = static_cast<double>(repair_events_total()) * 1000.0 /
                               static_cast<double>(stat_queries_);
    }
    out.repair_alarms = stat_repair_alarms_;
    for (std::size_t s = 0; s < shards_.size() && s < health_.size(); ++s) {
      health[s] = health_[s];
    }
  }
  // Live escalation threshold: the servo output, averaged over the
  // tiered shard engines (atomic reads, safe against traffic).
  if (!tiered_.empty()) {
    double margin_sum = 0.0;
    for (const TieredEngine* tiered : tiered_) {
      margin_sum += tiered->escalation_margin();
    }
    out.escalation_margin = margin_sum / static_cast<double>(tiered_.size());
  }
  // Per-shard engine-time quantiles, health, and the per-query energy
  // estimate. Every query visits every (healthy) shard, so the energies
  // add; tiered shard engines fold their observed escalation rate in
  // (energy_per_query is documented safe to call concurrently with
  // recognition).
  out.shards.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const auto& shard = shards_[s];
    RecognitionServiceStats::ShardStats ss;
    bool busy = false;
    {
      LockGuard lock(shard->mutex);
      ss.batches = shard->batches_run;
      ss.p50_batch_us = shard->batch_latency_us.percentile(0.50);
      ss.p95_batch_us = shard->batch_latency_us.percentile(0.95);
      ss.p99_batch_us = shard->batch_latency_us.percentile(0.99);
      busy = shard->busy;
    }
    ss.breaker = health[s].state;
    ss.available = health[s].state != RecognitionServiceStats::BreakerState::kOpen && !busy;
    ss.failures = health[s].failures;
    ss.timeouts = health[s].timeouts;
    ss.retries = health[s].retries;
    ss.ejections = health[s].ejections;
    out.shard_failures += ss.failures;
    out.shard_timeouts += ss.timeouts;
    out.shard_retries += ss.retries;
    out.breaker_ejections += ss.ejections;
    out.shards.push_back(ss);
    out.energy_per_query += shard->engine->energy_per_query();
    for (const LeafCacheEngine* leaf_cache : shard->leaf_caches) {
      const LeafCacheCounters counters = leaf_cache->counters();
      out.leaf_hits += counters.hits;
      out.leaf_misses += counters.misses;
      out.reprogram_energy += counters.reprogram_energy;
      out.repair_energy += counters.repair_energy;
      out.leaf_device_writes += counters.device_writes;
      out.leaf_device_writes_saved += counters.device_writes_saved;
      out.leaf_faults_detected += counters.faults_detected;
      out.leaf_devices_rewritten += counters.devices_rewritten;
      out.leaf_columns_remapped += counters.columns_remapped;
      out.leaf_unrepairable += counters.unrepairable;
      out.leaf_worn_out_devices += counters.worn_out_devices;
      out.leaf_verify_scans += counters.verify_scans;
      out.leaf_max_slot_write_cycles =
          std::max(out.leaf_max_slot_write_cycles, counters.max_slot_write_cycles());
    }
  }
  const std::uint64_t leaf_lookups = out.leaf_hits + out.leaf_misses;
  out.leaf_hit_rate = leaf_lookups == 0
                          ? 0.0
                          : static_cast<double>(out.leaf_hits) / static_cast<double>(leaf_lookups);
  if (input_cache_ != nullptr) {
    const InputStageCache::Stats cache_stats = input_cache_->stats();
    out.input_stage_computes = cache_stats.computes;
    out.input_stage_hits = cache_stats.hits;
  }
  return out;
}

void RecognitionService::fail_stopped(std::vector<Request>& doomed) {
  if (doomed.empty()) {
    return;
  }
  const auto stopped = std::make_exception_ptr(
      ServiceStopped("RecognitionService: service stopped before the query was dispatched"));
  for (auto& request : doomed) {
    request.deliver(Recognition{}, stopped);
  }
  LockGuard lock(stats_mutex_);
  stat_queries_ += doomed.size();
  stat_failed_ += doomed.size();
}

void RecognitionService::collector_loop() {
  // The streaming pipeline: at most two batches are in flight (the one
  // being served plus one double-buffered successor). Per-shard answers
  // fold into the running merge as they land in completions_; batches
  // finalise strictly in formation order.
  std::deque<InFlight> inflight;
  for (;;) {
    // ---- 1. Drain streamed completions and fold them in.
    std::deque<Completion> ready;
    {
      LockGuard lock(done_mutex_);
      ready.swap(completions_);
    }
    for (auto& done : ready) {
      handle_completion(inflight, std::move(done));
    }

    // ---- 2. Abandon posts whose watchdog deadline passed.
    expire_watchdog(inflight);

    // ---- 3. Finalise settled batches, oldest first (delivery keeps
    // formation order, like the barrier design).
    while (!inflight.empty() && inflight.front().outstanding == 0) {
      complete_dispatch(inflight.front());
      inflight.pop_front();
    }

    // ---- 4. Form the next batch when there is room in the pipeline. A
    // successor batch (inflight non-empty) is only worth forming once
    // some shard could start it immediately; until then queued requests
    // keep accumulating into a bigger, better-amortised batch — and the
    // queue-cap/deadline semantics stay those of the barrier design.
    const bool room =
        inflight.size() < 2 && (inflight.empty() || has_idle_candidate());
    bool stopping = false;
    std::vector<Request> batch;
    std::vector<Request> shed;
    {
      UniqueLock lock(queue_mutex_);
      if (inflight.empty()) {
        // Nothing in flight: block until work or shutdown. (The
        // SPINSIM_NO_TSA predicates run with queue_mutex_ held — TSA
        // cannot follow the cv's unlock/relock around them.)
        queue_cv_.wait(lock, [&]() SPINSIM_NO_TSA { return stopping_ || !queue_.empty(); });
      }
      stopping = stopping_;
      if (stopping && inflight.empty()) {
        // Shutdown (or re-init), with every in-flight batch already
        // delivered: nothing still queued gets dispatched, nothing gets
        // dropped — every future fails with ServiceStopped.
        std::vector<Request> doomed(std::make_move_iterator(queue_.begin()),
                                    std::make_move_iterator(queue_.end()));
        queue_.clear();
        idle_cv_.notify_all();
        lock.unlock();
        fail_stopped(doomed);
        return;
      }
      if (!stopping && room && !queue_.empty()) {
        if (queue_.size() < config_.max_batch && config_.admission_window.count() > 0) {
          // Admission window: from the moment work is pending, wait a
          // bounded extra beat for more arrivals so they share one
          // dispatch. With a batch in flight the wait overlaps its
          // compute — workers drain their own job queues meanwhile.
          queue_cv_.wait_for(lock, config_.admission_window, [&]() SPINSIM_NO_TSA {
            return stopping_ || queue_.size() >= config_.max_batch;
          });
          stopping = stopping_;
        }
        if (!stopping) {
          // Deadline shedding at batch formation: expired queries never
          // reach a shard. (Expired entries deeper in the queue are shed
          // when they surface — order is preserved, so they surface
          // before anything that could still make its deadline.)
          const Clock::TimePoint now = clock_->now();
          while (batch.size() < config_.max_batch && !queue_.empty()) {
            Request request = std::move(queue_.front());
            queue_.pop_front();
            if (request.deadline <= now) {
              shed.push_back(std::move(request));
            } else {
              batch.push_back(std::move(request));
            }
          }
          in_flight_ += batch.size();
          if (batch.empty() && queue_.empty() && in_flight_ == 0) {
            idle_cv_.notify_all();
          }
        }
      }
    }

    if (!shed.empty()) {
      const auto expired = std::make_exception_ptr(
          DeadlineExceeded("RecognitionService: deadline expired before dispatch"));
      for (auto& request : shed) {
        request.deliver(Recognition{}, expired);
      }
      LockGuard lock(stats_mutex_);
      stat_queries_ += shed.size();
      stat_shed_deadline_ += shed.size();
    }

    if (!batch.empty()) {
      // ---- 5. Post the new batch into the shard job queues and loop:
      // a zero-candidate post settles immediately and step 3 fails it.
      inflight.emplace_back();
      InFlight& flight = inflight.back();
      flight.requests = std::move(batch);
      auto inputs = std::make_shared<std::vector<FeatureVector>>();
      inputs->reserve(flight.requests.size());
      for (auto& request : flight.requests) {
        inputs->push_back(std::move(request.input));  // dead after dispatch
      }
      flight.inputs = inputs;
      const std::size_t n = flight.requests.size();
      flight.best.resize(n);
      flight.best_shard.assign(n, 0);
      flight.second.assign(n, -std::numeric_limits<double>::infinity());
      flight.has_best.assign(n, false);
      post_dispatch(flight);
      continue;
    }

    // ---- 6. Nothing to form: block until a completion lands, bounded
    // by the nearest watchdog deadline among outstanding posts.
    if (!inflight.empty()) {
      Clock::TimePoint nearest = Clock::TimePoint::max();
      for (const InFlight& flight : inflight) {
        for (const auto& pending : flight.pending) {
          if (pending.posted && !pending.settled) {
            nearest = std::min(nearest, pending.deadline);
          }
        }
      }
      UniqueLock lock(done_mutex_);
      const auto completed = [&]() SPINSIM_NO_TSA { return !completions_.empty(); };
      if (nearest == Clock::TimePoint::max()) {
        done_cv_.wait(lock, completed);
      } else {
        auto remaining = nearest - wall_clock_->now();
        if (remaining.count() < 0) {
          remaining = remaining.zero();
        }
        done_cv_.wait_for(lock, remaining, completed);
      }
    }
  }
}

std::uint64_t RecognitionService::repair_events_total() const {
  // Relaxed atomic counter reads inside the leaf caches — safe against
  // live worker traffic, no lock taken.
  std::uint64_t events = 0;
  for (const auto& shard : shards_) {
    for (const LeafCacheEngine* leaf_cache : shard->leaf_caches) {
      const LeafCacheCounters counters = leaf_cache->counters();
      events += counters.devices_rewritten + counters.columns_remapped;
    }
  }
  return events;
}

void RecognitionService::maybe_raise_repair_alarm() {
  if (config_.repair_alarm_per_kq <= 0.0) {
    return;
  }
  const std::uint64_t events = repair_events_total();
  double rate = 0.0;
  {
    LockGuard lock(stats_mutex_);
    if (stat_queries_ == 0) {
      return;
    }
    rate = static_cast<double>(events) * 1000.0 / static_cast<double>(stat_queries_);
    // Edge-triggered under the same lock that publishes the counter: one
    // alarm per excursion above the threshold, re-armed once the rate
    // decays back under it (traffic grows the denominator).
    if (rate > config_.repair_alarm_per_kq && !repair_alarm_active_) {
      stat_repair_alarms_ += 1;
    }
  }
  repair_alarm_active_ = rate > config_.repair_alarm_per_kq;
}

void RecognitionService::maybe_post_idle_scrub() {
  if (config_.idle_scrub_interval == 0 || queries_since_scrub_ < config_.idle_scrub_interval) {
    return;
  }
  bool posted = false;
  for (auto& shard : shards_) {
    if (shard->leaf_caches.empty()) {
      continue;
    }
    {
      LockGuard lock(shard->mutex);
      shard->scrub = true;
    }
    shard->cv.notify_all();
    posted = true;
  }
  if (!posted) {
    return;
  }
  queries_since_scrub_ = 0;
  LockGuard lock(stats_mutex_);
  stat_idle_scrubs_ += 1;
}

void RecognitionService::shard_loop(std::size_t index) {
  Shard* shard = shards_[index].get();
  for (;;) {
    // Shared ownership of the batch: if the watchdog abandons this job
    // the collector's InFlight record (and its copy of the batch) may be
    // long gone by the time a wedged engine call returns — this
    // reference keeps the inputs alive until then.
    std::shared_ptr<const std::vector<FeatureVector>> job;
    std::uint64_t gen = 0;
    bool do_scrub = false;
    {
      UniqueLock lock(shard->mutex);
      shard->cv.wait(lock, [&]() SPINSIM_NO_TSA {
        return shard->stop || !shard->jobs.empty() || shard->scrub;
      });
      if (shard->stop) {
        return;
      }
      if (!shard->jobs.empty()) {
        // Serving beats scrubbing: a pending scrub flag survives to the
        // next wake-up.
        Shard::Job next = std::move(shard->jobs.front());
        shard->jobs.pop_front();
        if (next.gen <= shard->abandoned_gen) {
          // Abandoned while still queued (e.g. a double-buffered batch
          // behind a wedged probe) — drop it without touching `busy`.
          continue;
        }
        job = std::move(next.inputs);
        gen = next.gen;
        shard->busy = true;
        shard->running_gen = gen;
      } else {
        do_scrub = true;
        shard->scrub = false;
      }
    }
    if (do_scrub) {
      // Verify-read scrub out of the serving path (the collector only
      // posts these when the service is idle). This thread is the only
      // one touching the engine, so no lock is held while scanning.
      for (LeafCacheEngine* leaf_cache : shard->leaf_caches) {
        leaf_cache->verify_and_repair();
      }
      continue;
    }
    Completion done;
    done.shard = index;
    done.gen = gen;
    const Clock::TimePoint engine_start = clock_->now();
    try {
      done.results = shard->engine->recognize_batch(*job, config_.engine_threads);
    } catch (...) {
      // Propagate through the collector to the client futures instead of
      // terminating the worker thread.
      done.error = std::current_exception();
    }
    const double engine_us =
        std::chrono::duration<double, std::micro>(clock_->now() - engine_start).count();
    {
      LockGuard lock(shard->mutex);
      // A job the watchdog abandoned already got answered without this
      // shard; its late results must not leak into the next batch. The
      // abandon check and the push are atomic because kServiceDone ranks
      // above kShard: the watchdog cannot abandon between them.
      if (shard->abandoned_gen < gen) {
        shard->batch_latency_us.add(engine_us);
        shard->batches_run += 1;
        LockGuard done_lock(done_mutex_);
        completions_.push_back(std::move(done));
      }
      shard->busy = false;
    }
    done_cv_.notify_all();
  }
}

void RecognitionService::post_to_shard(std::size_t index, InFlight& flight) {
  Shard& shard = *shards_[index];
  InFlight::PendingShard& pending = flight.pending[index];
  std::uint64_t gen = 0;
  {
    LockGuard lock(shard.mutex);
    gen = ++shard.next_gen;
    shard.jobs.push_back(Shard::Job{flight.inputs, gen});
  }
  shard.cv.notify_all();
  if (!pending.posted) {
    pending.posted = true;
    flight.outstanding += 1;
  }
  pending.gen = gen;
  // Watchdog deadlines run on the always-real wall clock: a FakeClock
  // must not make a healthy shard look instantly wedged (or a wedged one
  // look healthy forever).
  pending.deadline = config_.shard_timeout.count() > 0
                         ? wall_clock_->now() + config_.shard_timeout
                         : Clock::TimePoint::max();
}

void RecognitionService::post_dispatch(InFlight& flight) {
  if (input_cache_ != nullptr) {
    // Per-dispatch semantics: entries never outlive their batch, so the
    // cache footprint stays bounded by the admission window. (With a
    // batch still in flight this also drops its still-warm entries — a
    // hit-rate cost only, never a correctness one.)
    input_cache_->clear();
  }
  flight.pending.assign(shards_.size(), InFlight::PendingShard{});
  // Shard eligibility: skip workers wedged in an abandoned job, skip
  // shards whose pipeline is already full (depth 2: one running, one
  // queued), and skip shards whose breaker is open (an elapsed cooldown
  // admits one half-open probe).
  const Clock::TimePoint now = clock_->now();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    bool full = false;
    {
      LockGuard lock(shard.mutex);
      const bool wedged = shard.busy && shard.running_gen <= shard.abandoned_gen;
      full = wedged || shard.jobs.size() + (shard.busy ? 1u : 0u) >= 2;
    }
    if (full) {
      continue;
    }
    bool admit = true;
    {
      LockGuard lock(stats_mutex_);
      Health& health = health_[s];
      if (health.state == RecognitionServiceStats::BreakerState::kOpen) {
        if (now >= health.open_until) {
          health.state = RecognitionServiceStats::BreakerState::kHalfOpen;
        } else {
          admit = false;
        }
      }
    }
    if (!admit) {
      continue;
    }
    flight.pending[s].retries_left = config_.shard_retries;
    post_to_shard(s, flight);
  }
}

bool RecognitionService::has_idle_candidate() {
  // A successor batch is only worth double-buffering once some shard
  // could start on it immediately: not busy, empty job queue, and a
  // breaker that would admit it. Otherwise queued requests keep
  // accumulating (preserving queue-cap and deadline-shed semantics).
  const Clock::TimePoint now = clock_->now();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    {
      LockGuard lock(shard.mutex);
      if (shard.busy || !shard.jobs.empty()) {
        continue;
      }
    }
    LockGuard lock(stats_mutex_);
    const Health& health = health_[s];
    if (health.state == RecognitionServiceStats::BreakerState::kOpen &&
        now < health.open_until) {
      continue;
    }
    return true;
  }
  return false;
}

void RecognitionService::note_shard_success(std::size_t index) {
  LockGuard lock(stats_mutex_);
  Health& health = health_[index];
  health.state = RecognitionServiceStats::BreakerState::kClosed;
  health.consecutive_failures = 0;
  health.cooldown = std::chrono::microseconds{0};
}

void RecognitionService::note_shard_exclusion(std::size_t index, bool timeout) {
  LockGuard lock(stats_mutex_);
  Health& health = health_[index];
  if (timeout) {
    health.timeouts += 1;
  }
  health.consecutive_failures += 1;
  // A failed half-open probe re-opens immediately; a closed shard needs
  // the full consecutive-failure run. The cooldown backs off
  // exponentially per consecutive ejection, capped.
  if (health.state == RecognitionServiceStats::BreakerState::kHalfOpen ||
      health.consecutive_failures >= config_.breaker_failure_threshold) {
    health.state = RecognitionServiceStats::BreakerState::kOpen;
    if (health.cooldown.count() == 0) {
      health.cooldown = config_.breaker_cooldown;
    }
    health.open_until = clock_->now() + health.cooldown;
    health.cooldown = std::min(
        std::chrono::microseconds{static_cast<std::int64_t>(
            std::llround(static_cast<double>(health.cooldown.count()) *
                         config_.breaker_backoff))},
        config_.breaker_max_cooldown);
    health.ejections += 1;
  }
}

void RecognitionService::fold_shard_results(InFlight& flight, std::size_t shard_index,
                                            std::vector<Recognition>&& results) {
  // Streamed merge: fold this shard's answers into the running best /
  // runner-up per query. Highest score wins; ties resolve toward the
  // lowest shard index (and with it the lowest global template index) —
  // the rule a flat WTA/argmax applies, which is what makes the sharded
  // service winner-for-winner identical to a flat engine when shard
  // scores are comparable (see header). The runner-up takes the *actual*
  // other-shard scores starting from -inf — backends may score at or
  // below zero, and clamping it to 0 would mis-cap the margin.
  for (std::size_t i = 0; i < results.size(); ++i) {
    Recognition& r = results[i];
    if (!flight.has_best[i]) {
      flight.best[i] = std::move(r);
      flight.best_shard[i] = shard_index;
      flight.has_best[i] = true;
      continue;
    }
    Recognition& best = flight.best[i];
    if (r.score > best.score ||
        (r.score == best.score && shard_index < flight.best_shard[i])) {
      flight.second[i] = std::max(flight.second[i], best.score);
      best = std::move(r);
      flight.best_shard[i] = shard_index;
    } else {
      flight.second[i] = std::max(flight.second[i], r.score);
    }
  }
}

void RecognitionService::handle_completion(std::deque<InFlight>& inflight, Completion&& done) {
  // Match the completion against the in-flight batch that posted it;
  // anything unmatched is a late echo of an abandoned or re-initialised
  // post and is dropped.
  InFlight* flight = nullptr;
  for (InFlight& candidate : inflight) {
    const InFlight::PendingShard& pending = candidate.pending[done.shard];
    if (pending.posted && !pending.settled && pending.gen == done.gen) {
      flight = &candidate;
      break;
    }
  }
  if (flight == nullptr) {
    return;
  }
  InFlight::PendingShard& pending = flight->pending[done.shard];
  if (!done.error && done.results.size() != flight->requests.size()) {
    // An engine that answers the wrong number of queries is as broken as
    // one that throws — and not worth retrying.
    done.error = std::make_exception_ptr(InvalidArgument(
        "RecognitionService: shard answered a different number of queries than posted"));
    pending.retries_left = 0;
  }
  if (done.error) {
    if (!flight->first_error) {
      flight->first_error = done.error;
    }
    {
      LockGuard lock(stats_mutex_);
      health_[done.shard].failures += 1;
    }
    if (pending.retries_left > 0) {
      pending.retries_left -= 1;
      {
        LockGuard lock(stats_mutex_);
        health_[done.shard].retries += 1;
      }
      post_to_shard(done.shard, *flight);  // repost in place
      return;
    }
    note_shard_exclusion(done.shard, /*timeout=*/false);
    pending.settled = true;
    flight->outstanding -= 1;
    return;
  }
  note_shard_success(done.shard);
  fold_shard_results(*flight, done.shard, std::move(done.results));
  pending.settled = true;
  flight->outstanding -= 1;
  flight->answered_shards += 1;
  flight->covered_columns += shards_[done.shard]->columns;
}

void RecognitionService::expire_watchdog(std::deque<InFlight>& inflight) {
  if (config_.shard_timeout.count() <= 0) {
    return;
  }
  const Clock::TimePoint now = wall_clock_->now();
  std::vector<std::size_t> timed_out;
  for (InFlight& flight : inflight) {
    for (std::size_t s = 0; s < flight.pending.size(); ++s) {
      InFlight::PendingShard& pending = flight.pending[s];
      if (!pending.posted || pending.settled || now < pending.deadline) {
        continue;
      }
      // Stuck-shard watchdog: abandon the post. Before abandoning,
      // re-scan the completion queue under shard.mutex + done_mutex_ —
      // the worker may have pushed the answer between our drain and this
      // deadline check, and the rank order (kShard < kServiceDone) makes
      // the rescue race-free against the worker's abandon-check+push.
      Shard& shard = *shards_[s];
      bool rescued = false;
      {
        LockGuard lock(shard.mutex);
        LockGuard done_lock(done_mutex_);
        for (const Completion& done : completions_) {
          if (done.shard == s && done.gen == pending.gen) {
            rescued = true;
            break;
          }
        }
        if (!rescued) {
          shard.abandoned_gen = std::max(shard.abandoned_gen, pending.gen);
        }
      }
      if (rescued) {
        continue;  // the drained completion settles it on the next pass
      }
      // The worker keeps running and discards the stale results; `busy`
      // stays set until then, so later dispatches skip this shard
      // instead of queueing behind it.
      pending.settled = true;
      flight.outstanding -= 1;
      timed_out.push_back(s);
    }
  }
  for (const std::size_t s : timed_out) {
    note_shard_exclusion(s, /*timeout=*/true);
  }
}

void RecognitionService::complete_dispatch(InFlight& flight) {
  std::vector<Request>& batch = flight.requests;
  if (flight.answered_shards == 0) {
    // Nothing served the batch. Propagate the engine's own error when
    // there was one (the single-shard contract); otherwise the refusal
    // is capacity-shaped and retriable.
    std::exception_ptr error = flight.first_error;
    if (!error) {
      error = std::make_exception_ptr(
          Overloaded("RecognitionService: no healthy shard available for the batch"));
    }
    for (auto& request : batch) {
      request.deliver(Recognition{}, error);
    }
    // Failed queries still count: every delivered future shows up in
    // `queries` (and in `failed`), so mean_batch_size keeps meaning
    // dispatched/batches whatever the error rate. Latency stats only
    // track successes — see RecognitionServiceStats.
    {
      LockGuard lock(stats_mutex_);
      stat_queries_ += batch.size();
      stat_failed_ += batch.size();
      stat_dispatched_ += batch.size();
      stat_batches_ += 1;
    }
    finish_dispatch(batch.size());
    return;
  }

  // Best-effort coverage: the fraction of the stored template set the
  // answering shards actually hold (1.0 in the healthy case).
  const double coverage = total_columns_ == 0
                              ? 1.0
                              : static_cast<double>(flight.covered_columns) /
                                    static_cast<double>(total_columns_);
  const bool degraded_now = brownout_;

  const Clock::TimePoint now = clock_->now();
  std::vector<Recognition> merged;
  merged.reserve(batch.size());
  std::vector<double> latencies_us;
  latencies_us.reserve(batch.size());
  std::uint64_t escalated = 0;
  std::uint64_t rejected = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Recognition answer = std::move(flight.best[i]);
    answer.winner += shards_[flight.best_shard[i]]->base;
    if (flight.answered_shards > 1) {
      if (flight.second[i] == answer.score) {
        answer.unique = false;
      }
      // The winning shard's margin only measures its *local* runner-up;
      // the global runner-up may live on another shard. Cap it with the
      // relative cross-shard score gap so the merged margin never
      // overstates the confidence a flat engine would have reported.
      if (answer.score > 0.0) {
        answer.margin = std::min(answer.margin, (answer.score - flight.second[i]) / answer.score);
      } else {
        // Non-positive winner: there is no positive scale to normalise a
        // score gap against, and a best match at or below zero carries
        // no confidence worth reporting — force escalation-grade margin.
        answer.margin = 0.0;
      }
    }
    if (!answer.unique) {
      answer.accepted = false;  // accepted implies unique, across shards too
    }
    answer.coverage = coverage;
    if (degraded_now) {
      answer.degraded = true;
    }
    if (const TieredRecognitionDetail* tiered = answer.tiered()) {
      escalated += tiered->tier == 1 ? 1 : 0;
    }
    rejected += answer.accepted ? 0 : 1;
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(now - batch[i].enqueued).count());
    merged.push_back(std::move(answer));
  }

  // Stats first: once a future resolves, a client may read stats() and
  // must see its own query counted.
  {
    LockGuard lock(stats_mutex_);
    stat_queries_ += batch.size();
    stat_dispatched_ += batch.size();
    stat_batches_ += 1;
    stat_escalated_ += escalated;
    stat_rejected_ += rejected;
    if (degraded_now) {
      stat_degraded_ += batch.size();
    }
    if (coverage < 1.0) {
      stat_best_effort_ += batch.size();
    }
    stat_coverage_sum_ += coverage * static_cast<double>(batch.size());
    for (const double latency_us : latencies_us) {
      stat_latency_sum_us_ += latency_us;
      stat_latency_max_us_ = std::max(stat_latency_max_us_, latency_us);
      stat_latency_us_.add(latency_us);
    }
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i].deliver(std::move(merged[i]), nullptr);
  }

  controller_step(latencies_us);
  finish_dispatch(batch.size());
}

void RecognitionService::finish_dispatch(std::size_t delivered) {
  // Post-delivery bookkeeping, once per finalised batch: the repair-rate
  // alarm edge check, the in-flight/idle accounting drain() waits on,
  // and (when the service went idle) an opportunistic scrub post.
  maybe_raise_repair_alarm();
  bool idle = false;
  {
    LockGuard lock(queue_mutex_);
    in_flight_ -= delivered;
    idle = queue_.empty() && in_flight_ == 0;
    if (idle) {
      idle_cv_.notify_all();
    }
  }
  queries_since_scrub_ += delivered;
  if (idle) {
    maybe_post_idle_scrub();
  }
}

void RecognitionService::controller_step(const std::vector<double>& latencies_us) {
  const OverloadControlConfig& oc = config_.overload;
  if (!oc.enabled || tiered_.empty()) {
    return;
  }
  for (const double latency : latencies_us) {
    window_latency_us_.add(latency);
    window_max_us_ = std::max(window_max_us_, latency);
  }
  window_count_ += latencies_us.size();
  if (window_count_ < oc.period_queries) {
    return;
  }
  const double p99 = std::min(window_latency_us_.percentile(0.99), window_max_us_);
  bool changed = false;
  // Multiplicative servo on the live TieredEngine escalation threshold:
  // tighten = escalate less (cheaper, faster), relax = walk back toward
  // the construction-time margin. Tightening from a positive margin never
  // reaches exactly zero, so relaxing (division) always recovers.
  const auto adjust = [&](bool tighten) {
    for (std::size_t i = 0; i < tiered_.size(); ++i) {
      const double margin = tiered_[i]->escalation_margin();
      const double next = tighten
                              ? std::max(oc.min_escalation_margin, margin * oc.margin_step)
                              : std::min(base_margins_[i], margin / oc.margin_step);
      if (next != margin) {
        tiered_[i]->set_escalation_margin(next);
        changed = true;
      }
    }
  };
  if (p99 > oc.brownout_factor * oc.target_p99_us) {
    // Second watermark: brown out — tier 0 answers everything, answers
    // are flagged `degraded` — and keep tightening for the recovery.
    if (!brownout_) {
      brownout_ = true;
      for (TieredEngine* tiered : tiered_) {
        tiered->set_force_tier0(true);
      }
      changed = true;
    }
    adjust(/*tighten=*/true);
  } else if (p99 > oc.target_p99_us) {
    adjust(/*tighten=*/true);
  } else {
    // Back under the SLO: brown-out lifts (hysteresis: it held while p99
    // sat between the target and the brown-out watermark), and a deep
    // margin walks back once p99 clears the low watermark.
    if (brownout_) {
      brownout_ = false;
      for (TieredEngine* tiered : tiered_) {
        tiered->set_force_tier0(false);
      }
      changed = true;
    }
    if (p99 < oc.low_watermark * oc.target_p99_us) {
      adjust(/*tighten=*/false);
    }
  }
  window_latency_us_ = GeometricHistogram{};
  window_max_us_ = 0.0;
  window_count_ = 0;
  LockGuard lock(stats_mutex_);
  stat_brownout_ = brownout_;
  if (changed) {
    stat_controller_adjustments_ += 1;
  }
}

RecognitionService::EngineFactory make_tiered_factory(RecognitionService::EngineFactory tier0,
                                                      RecognitionService::EngineFactory tier1,
                                                      const TieredEngineConfig& config) {
  require(static_cast<bool>(tier0) && static_cast<bool>(tier1),
          "make_tiered_factory: both tier factories must be non-empty");
  return [tier0 = std::move(tier0), tier1 = std::move(tier1),
          config](std::size_t shard, std::size_t columns) -> std::unique_ptr<AssociativeEngine> {
    return std::make_unique<TieredEngine>(tier0(shard, columns), tier1(shard, columns), config);
  };
}

RecognitionService::EngineFactory make_leaf_cache_factory(const LeafCacheEngineConfig& config) {
  return [config](std::size_t shard, std::size_t columns) -> std::unique_ptr<AssociativeEngine> {
    LeafCacheEngineConfig c = config;
    // A shard's slice may be much smaller than the logical set the caller
    // sized the clustering for: keep every leaf non-trivial (>= 2
    // templates on average) and the router meaningful (>= 2 clusters).
    const std::size_t max_clusters = std::max<std::size_t>(columns / 2, 2);
    c.hierarchy.clusters = std::min(c.hierarchy.clusters, max_clusters);
    c.leaf_slots = std::max<std::size_t>(std::min(c.leaf_slots, c.hierarchy.clusters), 1);
    // Distinct device noise per replica, like any sharded deployment.
    c.hierarchy.seed = config.hierarchy.seed + 0x9E37 * (shard + 1);
    return std::make_unique<LeafCacheEngine>(c);
  };
}

}  // namespace spinsim
