/// \file load_gen.hpp
/// Open-loop Poisson/Zipf load driver for the RecognitionService edge.
///
/// Closed-loop benchmarks (submit a batch, wait, repeat) can never drive
/// a service past its knee: the client slows down exactly as fast as the
/// service does, so queues stay short and sheds never happen. This
/// driver is *open-loop*: arrivals follow a Poisson process at a fixed
/// offered rate whatever the service's backlog looks like, which is the
/// regime where deadlines, the bounded queue, brown-out and shedding
/// actually earn their keep. Inputs are drawn Zipf-distributed from a
/// query pool (skewed popularity, like real recognition traffic — and
/// the access pattern leaf caches are designed around).
///
/// Determinism: the arrival schedule and the query choices come from one
/// seeded Rng, so two runs at the same offered load replay the same
/// traffic. Wall-clock pacing is inherently real-time — this is a bench
/// driver, not a unit-test harness; tests that need determinism drive
/// the service directly with a FakeClock instead.

#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "service/recognition_service.hpp"
#include "vision/features.hpp"

namespace spinsim {

/// One open-loop run's traffic model.
struct LoadGenConfig {
  /// Offered arrival rate [queries/s]; the driver holds it whatever the
  /// service's completion rate is.
  double offered_qps = 1000.0;
  /// Total arrivals to offer.
  std::size_t queries = 1000;
  /// Zipf popularity exponent over the query pool (0 = uniform).
  double zipf_s = 1.0;
  /// Seed of the arrival-schedule + query-choice stream.
  std::uint64_t seed = 0x10AD;
  /// Per-query deadline passed to submit() (0 = none).
  std::chrono::microseconds deadline{0};
};

/// What happened to the offered load. Every offered query lands in
/// exactly one of served / shed_deadline / rejected_overload / failed —
/// the driver never drops a future.
struct LoadGenReport {
  std::size_t offered = 0;            ///< arrivals generated
  std::size_t served = 0;             ///< futures that delivered an answer
  std::size_t shed_deadline = 0;      ///< futures failed with DeadlineExceeded
  std::size_t rejected_overload = 0;  ///< submissions refused with Overloaded
  std::size_t failed = 0;             ///< futures failed with anything else
  std::size_t degraded = 0;           ///< served answers flagged degraded (brown-out)
  std::size_t best_effort = 0;        ///< served answers with coverage < 1
  double min_coverage = 1.0;          ///< worst served coverage
  double mean_coverage = 0.0;         ///< mean served coverage
  double achieved_qps = 0.0;          ///< served / wall_seconds
  double wall_seconds = 0.0;          ///< first arrival -> last future settled

  double shed_rate() const {
    return offered == 0 ? 0.0 : static_cast<double>(shed_deadline) / static_cast<double>(offered);
  }
  double reject_rate() const {
    return offered == 0 ? 0.0
                        : static_cast<double>(rejected_overload) / static_cast<double>(offered);
  }
  double degraded_rate() const {
    return served == 0 ? 0.0 : static_cast<double>(degraded) / static_cast<double>(served);
  }
};

/// Drives `service` open-loop with Poisson arrivals at
/// `config.offered_qps`, inputs Zipf-sampled from `pool`, and reaps every
/// future. Blocks until the last future settles.
LoadGenReport run_open_loop(RecognitionService& service, const std::vector<FeatureVector>& pool,
                            const LoadGenConfig& config);

}  // namespace spinsim
