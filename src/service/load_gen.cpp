#include "service/load_gen.hpp"

#include <algorithm>
#include <cmath>
#include <future>
#include <thread>

#include "core/error.hpp"
#include "core/random.hpp"

namespace spinsim {

namespace {

/// Zipf CDF over pool indices: weight(k) = 1 / (k+1)^s, sampled by
/// inverse transform (binary search over the cumulative sum).
std::vector<double> zipf_cdf(std::size_t n, double s) {
  std::vector<double> cdf(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf[k] = total;
  }
  for (double& c : cdf) {
    c /= total;
  }
  return cdf;
}

}  // namespace

LoadGenReport run_open_loop(RecognitionService& service, const std::vector<FeatureVector>& pool,
                            const LoadGenConfig& config) {
  require(!pool.empty(), "run_open_loop: query pool must be non-empty");
  require(config.offered_qps > 0.0, "run_open_loop: offered_qps must be positive");
  require(config.queries >= 1, "run_open_loop: need at least one query");
  require(config.zipf_s >= 0.0, "run_open_loop: zipf_s cannot be negative");

  Rng rng(config.seed);
  const std::vector<double> cdf = zipf_cdf(pool.size(), config.zipf_s);
  SubmitOptions options;
  options.deadline = config.deadline;

  LoadGenReport report;
  std::vector<std::future<Recognition>> futures;
  futures.reserve(config.queries);

  // Open loop: the q-th arrival happens at start + sum of exponential
  // interarrivals, regardless of how far behind the service is. Pacing
  // reads the real clock — this is a wall-clock bench driver, not a
  // simulated-time harness.
  using WallClock = std::chrono::steady_clock;  // lint:allow(bare-clock) open-loop pacing is wall-clock by definition
  const WallClock::time_point start = WallClock::now();
  WallClock::time_point next_arrival = start;
  for (std::size_t q = 0; q < config.queries; ++q) {
    const double interarrival_s = -std::log(1.0 - rng.uniform()) / config.offered_qps;
    next_arrival += std::chrono::duration_cast<WallClock::duration>(
        std::chrono::duration<double>(interarrival_s));
    std::this_thread::sleep_until(next_arrival);

    const double u = rng.uniform();
    const std::size_t pick = static_cast<std::size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    report.offered += 1;
    try {
      futures.push_back(service.submit(pool[std::min(pick, pool.size() - 1)], options));
    } catch (const Overloaded&) {
      report.rejected_overload += 1;
    }
  }

  // Reap every future: each offered query resolves into exactly one
  // outcome bucket, so nothing is silently dropped.
  double coverage_sum = 0.0;
  for (std::future<Recognition>& future : futures) {
    try {
      const Recognition answer = future.get();
      report.served += 1;
      report.degraded += answer.degraded ? 1 : 0;
      report.best_effort += answer.coverage < 1.0 ? 1 : 0;
      report.min_coverage = std::min(report.min_coverage, answer.coverage);
      coverage_sum += answer.coverage;
    } catch (const DeadlineExceeded&) {
      report.shed_deadline += 1;
    } catch (...) {
      report.failed += 1;
    }
  }
  const WallClock::time_point end = WallClock::now();

  report.mean_coverage =
      report.served == 0 ? 0.0 : coverage_sum / static_cast<double>(report.served);
  if (report.served == 0) {
    report.min_coverage = 0.0;
  }
  report.wall_seconds = std::chrono::duration<double>(end - start).count();
  report.achieved_qps =
      report.wall_seconds > 0.0 ? static_cast<double>(report.served) / report.wall_seconds : 0.0;
  return report;
}

}  // namespace spinsim
