/// \file recognition_service.hpp
/// The batch API at the service edge: a thread-pooled request-queue
/// façade over AssociativeEngine replicas.
///
/// One logical template set is split contiguously across `shards` engine
/// replicas (any backend — the factory decides). Clients submit single
/// queries or whole batches and get futures back; a collector thread
/// coalesces whatever is queued inside an *admission window* into one
/// micro-batch, fans it out to the per-shard worker threads (each shard
/// engine is touched by exactly one thread, so engines need no internal
/// locking), merges the per-shard answers by score, and fulfils the
/// futures. This is the layer the ROADMAP's heavy-traffic scenarios plug
/// into: what lives behind the shard workers swaps freely without touching
/// the client surface. Multi-backend *tiered* routing plugs in exactly
/// there: make_tiered_factory() builds one TieredEngine per shard (cheap
/// tier 0, authoritative tier 1), and stats() then surfaces the tier mix
/// (escalation/reject rates), per-shard batch-time quantiles, client
/// latency percentiles and an energy-per-query estimate composed from the
/// shard engines' power models.
///
/// Winner parity: the merge picks the shard with the highest score,
/// breaking ties toward the lowest global template index — the same rule
/// a flat WTA/argmax applies. Scores are comparable across shards when
/// the shard engines are configured identically (for SpinAmm shards that
/// means a shared input_full_scale_override and row_target_conductance,
/// both readable off a flat reference engine; DigitalAmm scores are
/// bit-exact and need no care). Under that contract a sharded service
/// answers winner-for-winner identically to one flat engine holding the
/// whole template set — tested in tests/service/.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "amm/engine.hpp"
#include "amm/leaf_cache_engine.hpp"
#include "amm/tiered_engine.hpp"
#include "core/statistics.hpp"
#include "datapath/input_stage_cache.hpp"
#include "vision/features.hpp"

namespace spinsim {

/// Tuning knobs of one RecognitionService.
struct RecognitionServiceConfig {
  /// Engine replicas the template set splits across (contiguous slices).
  std::size_t shards = 2;
  /// Admission window: max queries one dispatch may coalesce.
  std::size_t max_batch = 64;
  /// Admission window: how long the collector waits (from the first
  /// pending query) for more arrivals before dispatching a short batch.
  std::chrono::microseconds admission_window{200};
  /// Threads each shard engine's recognize_batch may use internally.
  std::size_t engine_threads = 1;
  /// Shard-local input-stage dedup: when true, every shard engine must be
  /// a SpinAmm (store_templates() verifies) and all shards share one
  /// per-dispatch InputStageCache, so the realised input row currents of
  /// each query are computed once per dispatch instead of once per shard.
  /// Only enable with identically configured shards (same seed, shared
  /// input_full_scale_override and row_target_conductance) — the same
  /// contract that makes shard scores comparable.
  bool dedup_input_stage = false;
};

/// Running counters of one service instance.
struct RecognitionServiceStats {
  /// Delivered futures, *failed ones included*: a query whose dispatch
  /// raised counts here and in `failed`, so mean_batch_size stays
  /// queries/batches for every dispatch the collector issued.
  std::uint64_t queries = 0;
  std::uint64_t failed = 0;         ///< futures that carried an exception
  std::uint64_t batches = 0;        ///< dispatches (micro-batches)
  double mean_batch_size = 0.0;     ///< queries / batches
  double mean_latency_us = 0.0;     ///< submit -> future fulfilled (successes)
  double max_latency_us = 0.0;
  /// Client-side latency quantiles (submit -> future fulfilled), for the
  /// per-query SLO story; failed queries are excluded, like the mean.
  double p50_latency_us = 0.0;
  double p95_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double queries_per_sec = 0.0;     ///< since store_templates()

  // Tiered-routing / admission-control accounting. `escalated` counts
  // merged answers whose winning shard served from tier 1 (nonzero only
  // with TieredEngine shard backends); `rejected` counts merged answers
  // with accepted == false, whatever the backend.
  std::uint64_t escalated = 0;
  std::uint64_t rejected = 0;
  double escalation_rate = 0.0;     ///< escalated / successful queries
  double reject_rate = 0.0;         ///< rejected / successful queries
  /// Estimated energy one query costs across the deployed shard engines:
  /// every query visits every shard, so this sums each shard engine's
  /// energy_per_query() — which, for tiered shards, already folds in the
  /// observed tier mix. Typed: read it out with
  /// `.in(units::pJ / units::query)`.
  EnergyPerQuery energy_per_query;

  // Leaf-cache accounting, summed across shards (nonzero only with
  // LeafCacheEngine shard backends — see make_leaf_cache_factory):
  // slot hits/misses, the hit rate, and the total write energy charged
  // for on-demand leaf reprogramming.
  std::uint64_t leaf_hits = 0;
  std::uint64_t leaf_misses = 0;
  double leaf_hit_rate = 0.0;        ///< leaf_hits / (leaf_hits + leaf_misses)
  Energy reprogram_energy;           ///< total leaf write energy
  Energy repair_energy;              ///< subset spent by self-repair rewrites

  // Endurance / self-repair accounting, summed across the same leaf
  // caches (nonzero only when their endurance config is active):
  std::uint64_t leaf_device_writes = 0;        ///< physical device writes
  std::uint64_t leaf_device_writes_saved = 0;  ///< delta-reprogram skips
  std::uint64_t leaf_faults_detected = 0;      ///< verify-reads out of window
  std::uint64_t leaf_devices_rewritten = 0;    ///< in-place repairs
  std::uint64_t leaf_columns_remapped = 0;     ///< columns retired to spares
  std::uint64_t leaf_unrepairable = 0;         ///< faults left in service
  std::uint64_t leaf_worn_out_devices = 0;     ///< devices currently stuck
  std::uint64_t leaf_max_slot_write_cycles = 0;  ///< worst slot wear anywhere

  // Input-stage dedup accounting (nonzero only with dedup_input_stage):
  // how many realised-row-current evaluations ran vs were shared.
  std::uint64_t input_stage_computes = 0;
  std::uint64_t input_stage_hits = 0;

  /// Per-shard engine-time quantiles, one entry per shard: the time that
  /// shard's recognize_batch took per dispatched micro-batch.
  struct ShardStats {
    std::uint64_t batches = 0;
    double p50_batch_us = 0.0;
    double p95_batch_us = 0.0;
    double p99_batch_us = 0.0;
  };
  std::vector<ShardStats> shards;
};

/// Sharded, micro-batching recognition front end.
class RecognitionService {
 public:
  /// Builds the engine for shard `shard` (0-based), sized for `columns`
  /// templates. Called once per shard from store_templates().
  using EngineFactory =
      std::function<std::unique_ptr<AssociativeEngine>(std::size_t shard, std::size_t columns)>;

  RecognitionService(const RecognitionServiceConfig& config, EngineFactory factory);

  /// Drains outstanding requests, then stops the worker threads.
  ~RecognitionService();

  RecognitionService(const RecognitionService&) = delete;
  RecognitionService& operator=(const RecognitionService&) = delete;

  /// Splits `templates` contiguously across the configured shards,
  /// builds one engine per shard through the factory, programs each with
  /// its slice, and starts the collector + shard worker threads. Every
  /// shard must receive at least two templates.
  void store_templates(const std::vector<FeatureVector>& templates);

  /// Enqueues one query. The future's Recognition carries the *global*
  /// template index; its detail is the winning shard's (shard-local
  /// routing indices and all), and its margin is the winning shard's
  /// local margin capped by the relative cross-shard score gap (see
  /// merge()), so it never overstates flat-engine confidence.
  std::future<Recognition> submit(FeatureVector input);

  /// Enqueues a whole batch (one lock round-trip, so the admission
  /// window coalesces it into as few dispatches as max_batch allows).
  /// The future resolves once every query of the batch is answered,
  /// results[i] corresponding to inputs[i].
  std::future<std::vector<Recognition>> submit_batch(std::vector<FeatureVector> inputs);

  /// Blocks until everything submitted so far has been fulfilled.
  void drain();

  std::size_t shard_count() const { return shards_.size(); }

  /// The shard engines (inspection; do not query them concurrently with
  /// live service traffic).
  const AssociativeEngine& shard(std::size_t index) const;

  /// First global template index stored on shard `index`.
  std::size_t shard_base(std::size_t index) const;

  /// Throughput/latency counters since store_templates().
  RecognitionServiceStats stats() const;

 private:
  struct Request {
    FeatureVector input;
    /// Fulfils the client future: a result, or an exception from the
    /// shard engine (never both).
    std::function<void(Recognition&&, std::exception_ptr)> deliver;
    std::chrono::steady_clock::time_point enqueued;
  };

  struct Shard {
    std::unique_ptr<AssociativeEngine> engine;
    std::size_t base = 0;  ///< global index of the shard's first template
    std::thread worker;

    // Collector -> worker handoff: one batch at a time.
    std::mutex mutex;
    std::condition_variable cv;
    const std::vector<FeatureVector>* job = nullptr;
    std::vector<Recognition> results;
    std::exception_ptr job_error;
    bool job_done = false;
    bool stop = false;

    // Engine time per dispatched batch [us], written by the worker under
    // `mutex` while posting results, read by stats().
    GeometricHistogram batch_latency_us;
    std::uint64_t batches_run = 0;
  };

  void collector_loop();
  static void shard_loop(Shard* shard, std::size_t engine_threads);
  void dispatch(std::vector<Request>& batch);
  Recognition merge(std::vector<Recognition*>& shard_answers) const;
  void enqueue(Request&& request);

  RecognitionServiceConfig config_;
  EngineFactory factory_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::shared_ptr<InputStageCache> input_cache_;  // set iff dedup_input_stage

  std::thread collector_;
  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::condition_variable idle_cv_;
  std::deque<Request> queue_;
  std::size_t in_flight_ = 0;  // popped but not yet fulfilled
  bool stopping_ = false;
  bool started_ = false;

  mutable std::mutex stats_mutex_;
  std::uint64_t stat_queries_ = 0;
  std::uint64_t stat_failed_ = 0;
  std::uint64_t stat_batches_ = 0;
  std::uint64_t stat_escalated_ = 0;
  std::uint64_t stat_rejected_ = 0;
  double stat_latency_sum_us_ = 0.0;
  double stat_latency_max_us_ = 0.0;
  GeometricHistogram stat_latency_us_;
  std::chrono::steady_clock::time_point started_at_;
};

/// Composes two engine factories into one that builds a TieredEngine per
/// shard: tier 0 (the cheap stage, typically hierarchical) answers every
/// query, tier 1 (the authoritative flat stage) answers the escalated
/// tail. Both factories are called with the same (shard, columns), so the
/// usual score-comparability contract applies to each tier's replicas.
RecognitionService::EngineFactory make_tiered_factory(RecognitionService::EngineFactory tier0,
                                                      RecognitionService::EngineFactory tier1,
                                                      const TieredEngineConfig& config = {});

/// Builds a LeafCacheEngine per shard, so the sharded path serves
/// template sets several times larger than the programmed crossbar
/// capacity (shard slice >> leaf_slots * leaf size). Each shard clamps
/// the cluster count to its column count (at least two clusters, at most
/// columns / 2 so every leaf can hold two templates) and salts the
/// k-means/module seed by the shard index so replicas don't share device
/// noise. stats() then surfaces the summed hit rate and reprogram energy.
RecognitionService::EngineFactory make_leaf_cache_factory(const LeafCacheEngineConfig& config);

}  // namespace spinsim
