/// \file recognition_service.hpp
/// The batch API at the service edge: a thread-pooled request-queue
/// façade over AssociativeEngine replicas.
///
/// One logical template set is split contiguously across `shards` engine
/// replicas (any backend — the factory decides). Clients submit single
/// queries or whole batches and get futures back; a collector thread
/// coalesces whatever is queued inside an *admission window* into one
/// micro-batch, fans it out to the per-shard worker threads (each shard
/// engine is touched by exactly one thread, so engines need no internal
/// locking), merges the per-shard answers by score, and fulfils the
/// futures. This is the layer the ROADMAP's heavy-traffic scenarios plug
/// into: later scaling PRs (async I/O, multi-backend routing,
/// larger-than-memory leaves) swap what lives behind the shard workers
/// without touching the client surface.
///
/// Winner parity: the merge picks the shard with the highest score,
/// breaking ties toward the lowest global template index — the same rule
/// a flat WTA/argmax applies. Scores are comparable across shards when
/// the shard engines are configured identically (for SpinAmm shards that
/// means a shared input_full_scale_override and row_target_conductance,
/// both readable off a flat reference engine; DigitalAmm scores are
/// bit-exact and need no care). Under that contract a sharded service
/// answers winner-for-winner identically to one flat engine holding the
/// whole template set — tested in tests/service/.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "amm/engine.hpp"
#include "vision/features.hpp"

namespace spinsim {

/// Tuning knobs of one RecognitionService.
struct RecognitionServiceConfig {
  /// Engine replicas the template set splits across (contiguous slices).
  std::size_t shards = 2;
  /// Admission window: max queries one dispatch may coalesce.
  std::size_t max_batch = 64;
  /// Admission window: how long the collector waits (from the first
  /// pending query) for more arrivals before dispatching a short batch.
  std::chrono::microseconds admission_window{200};
  /// Threads each shard engine's recognize_batch may use internally.
  std::size_t engine_threads = 1;
};

/// Running counters of one service instance.
struct RecognitionServiceStats {
  std::uint64_t queries = 0;        ///< fulfilled queries
  std::uint64_t batches = 0;        ///< dispatches (micro-batches)
  double mean_batch_size = 0.0;     ///< queries / batches
  double mean_latency_us = 0.0;     ///< submit -> future fulfilled
  double max_latency_us = 0.0;
  double queries_per_sec = 0.0;     ///< since store_templates()
};

/// Sharded, micro-batching recognition front end.
class RecognitionService {
 public:
  /// Builds the engine for shard `shard` (0-based), sized for `columns`
  /// templates. Called once per shard from store_templates().
  using EngineFactory =
      std::function<std::unique_ptr<AssociativeEngine>(std::size_t shard, std::size_t columns)>;

  RecognitionService(const RecognitionServiceConfig& config, EngineFactory factory);

  /// Drains outstanding requests, then stops the worker threads.
  ~RecognitionService();

  RecognitionService(const RecognitionService&) = delete;
  RecognitionService& operator=(const RecognitionService&) = delete;

  /// Splits `templates` contiguously across the configured shards,
  /// builds one engine per shard through the factory, programs each with
  /// its slice, and starts the collector + shard worker threads. Every
  /// shard must receive at least two templates.
  void store_templates(const std::vector<FeatureVector>& templates);

  /// Enqueues one query. The future's Recognition carries the *global*
  /// template index; its detail is the winning shard's (shard-local
  /// routing indices and all), and its margin is the winning shard's
  /// local margin capped by the relative cross-shard score gap (see
  /// merge()), so it never overstates flat-engine confidence.
  std::future<Recognition> submit(FeatureVector input);

  /// Enqueues a whole batch (one lock round-trip, so the admission
  /// window coalesces it into as few dispatches as max_batch allows).
  /// The future resolves once every query of the batch is answered,
  /// results[i] corresponding to inputs[i].
  std::future<std::vector<Recognition>> submit_batch(std::vector<FeatureVector> inputs);

  /// Blocks until everything submitted so far has been fulfilled.
  void drain();

  std::size_t shard_count() const { return shards_.size(); }

  /// The shard engines (inspection; do not query them concurrently with
  /// live service traffic).
  const AssociativeEngine& shard(std::size_t index) const;

  /// First global template index stored on shard `index`.
  std::size_t shard_base(std::size_t index) const;

  /// Throughput/latency counters since store_templates().
  RecognitionServiceStats stats() const;

 private:
  struct Request {
    FeatureVector input;
    /// Fulfils the client future: a result, or an exception from the
    /// shard engine (never both).
    std::function<void(Recognition&&, std::exception_ptr)> deliver;
    std::chrono::steady_clock::time_point enqueued;
  };

  struct Shard {
    std::unique_ptr<AssociativeEngine> engine;
    std::size_t base = 0;  ///< global index of the shard's first template
    std::thread worker;

    // Collector -> worker handoff: one batch at a time.
    std::mutex mutex;
    std::condition_variable cv;
    const std::vector<FeatureVector>* job = nullptr;
    std::vector<Recognition> results;
    std::exception_ptr job_error;
    bool job_done = false;
    bool stop = false;
  };

  void collector_loop();
  static void shard_loop(Shard* shard, std::size_t engine_threads);
  void dispatch(std::vector<Request>& batch);
  Recognition merge(std::vector<Recognition*>& shard_answers) const;
  void enqueue(Request&& request);

  RecognitionServiceConfig config_;
  EngineFactory factory_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::thread collector_;
  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::condition_variable idle_cv_;
  std::deque<Request> queue_;
  std::size_t in_flight_ = 0;  // popped but not yet fulfilled
  bool stopping_ = false;
  bool started_ = false;

  mutable std::mutex stats_mutex_;
  std::uint64_t stat_queries_ = 0;
  std::uint64_t stat_batches_ = 0;
  double stat_latency_sum_us_ = 0.0;
  double stat_latency_max_us_ = 0.0;
  std::chrono::steady_clock::time_point started_at_;
};

}  // namespace spinsim
