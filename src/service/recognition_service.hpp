/// \file recognition_service.hpp
/// The batch API at the service edge: a thread-pooled request-queue
/// façade over AssociativeEngine replicas.
///
/// One logical template set is split contiguously across `shards` engine
/// replicas (any backend — the factory decides). Clients submit single
/// queries or whole batches and get futures back; a collector thread
/// coalesces whatever is queued inside an *admission window* into one
/// micro-batch and fans it out to the per-shard worker threads (each
/// shard engine is touched by exactly one thread, so engines need no
/// internal locking). Workers *stream* their finished per-shard answers
/// into a completion queue as they land — the collector folds each one
/// into a running per-query merge instead of barriering on the slowest
/// shard — and up to one successor micro-batch is *double-buffered*: as
/// soon as any shard goes idle the collector forms the next batch and
/// posts it into every shard's depth-2 job queue, so workers roll from
/// batch N straight into batch N+1 without a collector round-trip.
/// Client-visible semantics (delivery order, merge rule, stats, fault
/// handling) are unchanged from the barrier design. This is the layer the ROADMAP's heavy-traffic scenarios plug
/// into: what lives behind the shard workers swaps freely without touching
/// the client surface. Multi-backend *tiered* routing plugs in exactly
/// there: make_tiered_factory() builds one TieredEngine per shard (cheap
/// tier 0, authoritative tier 1), and stats() then surfaces the tier mix
/// (escalation/reject rates), per-shard batch-time quantiles, client
/// latency percentiles and an energy-per-query estimate composed from the
/// shard engines' power models.
///
/// Winner parity: the merge picks the shard with the highest score,
/// breaking ties toward the lowest global template index — the same rule
/// a flat WTA/argmax applies. Scores are comparable across shards when
/// the shard engines are configured identically (for SpinAmm shards that
/// means a shared input_full_scale_override and row_target_conductance,
/// both readable off a flat reference engine; DigitalAmm scores are
/// bit-exact and need no care). Under that contract a sharded service
/// answers winner-for-winner identically to one flat engine holding the
/// whole template set — tested in tests/service/.
///
/// Overload & failure hardening (README "Overload & failure handling"):
///
///  * Deadlines — submit()/submit_batch() take a per-query deadline; the
///    collector sheds expired queries at batch formation (the future
///    fails with DeadlineExceeded, counted as `shed_deadline`, never
///    `failed`), so shard time is never spent on answers nobody wants.
///  * Bounded queue — `max_queue` caps the pending-request depth; beyond
///    it submissions throw the retriable Overloaded instead of growing
///    the queue (and the latency tail) without bound.
///  * Shard fault tolerance — a shard whose engine throws is retried up
///    to `shard_retries` times, then skipped for the batch; repeated
///    failures trip a per-shard circuit breaker (cooldown with
///    exponential backoff, half-open probe on expiry). A shard that
///    exceeds `shard_timeout` is *abandoned*: its worker keeps running
///    (it will discard the stale results), the dispatch proceeds without
///    it. Either way the merge returns best-effort answers over the
///    shards that did respond, with `Recognition.coverage` < 1 telling
///    the client which fraction of the template set was searched.
///  * Adaptive overload control — with `overload.enabled`, a controller
///    on the collector thread servos the TieredEngine escalation
///    threshold against a p99-latency SLO; past a second watermark it
///    forces tier-0-only *brown-out* serving (answers flagged
///    `degraded`) until the latency recovers.
///  * Graceful shutdown — destruction and store_templates() re-init fail
///    every queued future with ServiceStopped; a future is never
///    silently dropped. (A worker stuck *inside* an engine call must be
///    unstuck — e.g. FaultSwitch::release() — before destruction, or the
///    join blocks; the service cannot preempt a hung engine.)
///  * Idle scrubbing — with `idle_scrub_interval`, the collector posts
///    LeafCacheEngine verify-read scrubs to the shard workers whenever
///    the service goes idle after enough traffic, so endurance repair
///    runs out of the serving path.
///
/// All time is read through the injected core/clock.hpp Clock, so every
/// one of these policies is testable with a FakeClock and zero sleeps.

#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "amm/engine.hpp"
#include "amm/leaf_cache_engine.hpp"
#include "amm/tiered_engine.hpp"
#include "core/clock.hpp"
#include "core/statistics.hpp"
#include "core/sync.hpp"
#include "datapath/input_stage_cache.hpp"
#include "vision/features.hpp"

namespace spinsim {

/// Collector-thread overload controller: servo the tiered escalation
/// threshold (and, past a second watermark, brown out to tier-0-only
/// serving) against a client-latency SLO. Inert unless the shard engines
/// are TieredEngines (directly or behind a FaultInjectingEngine).
struct OverloadControlConfig {
  bool enabled = false;
  /// The p99 client-latency SLO the controller defends [us].
  double target_p99_us = 0.0;
  /// Brown-out watermark: p99 above `brownout_factor * target_p99_us`
  /// forces tier-0-only serving (answers flagged `degraded`) until p99
  /// falls back under the target.
  double brownout_factor = 2.0;
  /// Relax watermark: p99 below `low_watermark * target_p99_us` walks the
  /// escalation threshold back toward its construction-time value.
  double low_watermark = 0.5;
  /// Floor the servo never tightens the escalation margin below.
  double min_escalation_margin = 0.0;
  /// Multiplicative step per adjustment period: tighten multiplies the
  /// live margin by this (in (0, 1]), relax divides by it.
  double margin_step = 0.5;
  /// Delivered queries per controller decision (the p99 window length).
  std::uint64_t period_queries = 256;
};

/// Tuning knobs of one RecognitionService.
struct RecognitionServiceConfig {
  /// Engine replicas the template set splits across (contiguous slices).
  std::size_t shards = 2;
  /// Admission window: max queries one dispatch may coalesce.
  std::size_t max_batch = 64;
  /// Admission window: how long the collector waits (from the first
  /// pending query) for more arrivals before dispatching a short batch.
  std::chrono::microseconds admission_window{200};
  /// Threads each shard engine's recognize_batch may use internally.
  std::size_t engine_threads = 1;
  /// Shard-local input-stage dedup: when true, every shard engine must be
  /// a SpinAmm (store_templates() verifies) and all shards share one
  /// per-dispatch InputStageCache, so the realised input row currents of
  /// each query are computed once per dispatch instead of once per shard.
  /// Only enable with identically configured shards (same seed, shared
  /// input_full_scale_override and row_target_conductance) — the same
  /// contract that makes shard scores comparable.
  bool dedup_input_stage = false;

  /// Time source for deadlines, latencies and breaker cooldowns. Null
  /// picks the shared SteadyClock; tests inject a FakeClock. (Condition-
  /// variable *waits* still run on the real clock — a FakeClock controls
  /// every time-point comparison, not thread scheduling.)
  std::shared_ptr<Clock> clock;
  /// Queue-depth cap: pending requests beyond this are refused with the
  /// retriable Overloaded (counted as `rejected_overload`; no future is
  /// created). 0 = unbounded, the pre-hardening behaviour.
  std::size_t max_queue = 0;
  /// Stuck-shard watchdog: how long a dispatch waits for one shard's
  /// recognize_batch before abandoning it for this batch (its results are
  /// discarded when they eventually arrive, and the wait counts toward
  /// the shard's circuit breaker). 0 disables the watchdog — a dispatch
  /// then waits forever, the pre-hardening behaviour.
  std::chrono::microseconds shard_timeout{0};
  /// In-dispatch retries after a shard engine throws, before the shard is
  /// skipped for the batch.
  std::size_t shard_retries = 1;
  /// Consecutive failed dispatches (throws after retry, or timeouts) that
  /// trip a shard's circuit breaker open.
  std::size_t breaker_failure_threshold = 3;
  /// Breaker cooldown before the half-open probe; doubles (`breaker_backoff`)
  /// per consecutive ejection, capped at `breaker_max_cooldown`.
  std::chrono::microseconds breaker_cooldown{100000};
  double breaker_backoff = 2.0;
  std::chrono::microseconds breaker_max_cooldown{5000000};
  /// Idle scrubbing: when > 0 and the service goes idle after at least
  /// this many delivered queries since the last round, the collector
  /// posts a verify-read scrub (LeafCacheEngine::verify_and_repair) to
  /// every shard worker holding leaf caches. 0 disables.
  std::uint64_t idle_scrub_interval = 0;
  /// Repair-rate alarm: when > 0, the collector raises an alarm each time
  /// the live self-repair rate — leaf devices rewritten plus columns
  /// remapped per 1000 delivered queries (stats().repair_rate_per_kq) —
  /// crosses this threshold from below. Edge-triggered: one alarm per
  /// excursion, counted in stats().repair_alarms. A rising repair rate
  /// means the substrate is wearing out faster than traffic justifies —
  /// the operator signal to schedule replacement. 0 disables.
  double repair_alarm_per_kq = 0.0;
  /// Adaptive overload control (see OverloadControlConfig).
  OverloadControlConfig overload;
};

/// Per-query submission options.
struct SubmitOptions {
  /// Relative deadline: how long past submission the answer is still
  /// wanted. The collector sheds the query (DeadlineExceeded) if it is
  /// still queued when the deadline passes. 0 = no deadline.
  std::chrono::microseconds deadline{0};
};

/// Running counters of one service instance.
struct RecognitionServiceStats {
  /// Delivered futures — *failed and shed ones included*: every future
  /// the service ever fulfilled shows up here exactly once.
  std::uint64_t queries = 0;
  std::uint64_t failed = 0;         ///< futures that carried an engine/shard error
  std::uint64_t batches = 0;        ///< dispatches (micro-batches)
  double mean_batch_size = 0.0;     ///< dispatched queries / batches
  double mean_latency_us = 0.0;     ///< submit -> future fulfilled (successes)
  double max_latency_us = 0.0;
  /// Client-side latency quantiles (submit -> future fulfilled), for the
  /// per-query SLO story; failed/shed queries are excluded, like the mean.
  double p50_latency_us = 0.0;
  double p95_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double queries_per_sec = 0.0;     ///< since store_templates()

  // Overload / degradation accounting.
  std::uint64_t shed_deadline = 0;     ///< shed before dispatch (DeadlineExceeded)
  std::uint64_t rejected_overload = 0; ///< refused at submit (queue full; no future)
  std::uint64_t degraded = 0;          ///< answers served in brown-out mode
  std::uint64_t best_effort = 0;       ///< answers with coverage < 1
  double mean_coverage = 0.0;          ///< mean Recognition.coverage (successes)
  bool brownout_active = false;        ///< controller currently forcing tier 0
  /// Mean live TieredEngine escalation threshold across shards (the servo
  /// output; equals the construction-time margin when the controller is
  /// off or inactive, 0 with no tiered shards).
  double escalation_margin = 0.0;
  std::uint64_t controller_adjustments = 0;  ///< periods that changed the servo

  // Shard fault accounting, summed across shards.
  std::uint64_t shard_failures = 0;   ///< dispatch attempts that threw
  std::uint64_t shard_timeouts = 0;   ///< dispatches abandoned by the watchdog
  std::uint64_t shard_retries = 0;    ///< in-dispatch retry attempts
  std::uint64_t breaker_ejections = 0;  ///< breaker open transitions

  // Tiered-routing / admission-control accounting. `escalated` counts
  // merged answers whose winning shard served from tier 1 (nonzero only
  // with TieredEngine shard backends); `rejected` counts merged answers
  // with accepted == false, whatever the backend.
  std::uint64_t escalated = 0;
  std::uint64_t rejected = 0;
  double escalation_rate = 0.0;     ///< escalated / successful queries
  double reject_rate = 0.0;         ///< rejected / successful queries
  /// Estimated energy one query costs across the deployed shard engines:
  /// every query visits every shard, so this sums each shard engine's
  /// energy_per_query() — which, for tiered shards, already folds in the
  /// observed tier mix. Typed: read it out with
  /// `.in(units::pJ / units::query)`.
  EnergyPerQuery energy_per_query;

  // Leaf-cache accounting, summed across shards (nonzero only with
  // LeafCacheEngine shard backends — see make_leaf_cache_factory):
  // slot hits/misses, the hit rate, and the total write energy charged
  // for on-demand leaf reprogramming.
  std::uint64_t leaf_hits = 0;
  std::uint64_t leaf_misses = 0;
  double leaf_hit_rate = 0.0;        ///< leaf_hits / (leaf_hits + leaf_misses)
  Energy reprogram_energy;           ///< total leaf write energy
  Energy repair_energy;              ///< subset spent by self-repair rewrites

  // Endurance / self-repair accounting, summed across the same leaf
  // caches (nonzero only when their endurance config is active):
  std::uint64_t leaf_device_writes = 0;        ///< physical device writes
  std::uint64_t leaf_device_writes_saved = 0;  ///< delta-reprogram skips
  std::uint64_t leaf_faults_detected = 0;      ///< verify-reads out of window
  std::uint64_t leaf_devices_rewritten = 0;    ///< in-place repairs
  std::uint64_t leaf_columns_remapped = 0;     ///< columns retired to spares
  std::uint64_t leaf_unrepairable = 0;         ///< faults left in service
  std::uint64_t leaf_worn_out_devices = 0;     ///< devices currently stuck
  std::uint64_t leaf_max_slot_write_cycles = 0;  ///< worst slot wear anywhere
  std::uint64_t leaf_verify_scans = 0;         ///< verify-read passes run
  std::uint64_t idle_scrubs = 0;               ///< idle scrub rounds posted
  /// Live self-repair pressure: (leaf_devices_rewritten +
  /// leaf_columns_remapped) per 1000 delivered queries. 0 until the first
  /// delivery.
  double repair_rate_per_kq = 0.0;
  /// Times the repair rate crossed config.repair_alarm_per_kq from below
  /// (edge-triggered; 0 when the alarm is disabled).
  std::uint64_t repair_alarms = 0;

  // Input-stage dedup accounting (nonzero only with dedup_input_stage):
  // how many realised-row-current evaluations ran vs were shared.
  std::uint64_t input_stage_computes = 0;
  std::uint64_t input_stage_hits = 0;

  /// Circuit-breaker position of one shard in the stats snapshot.
  enum class BreakerState { kClosed, kOpen, kHalfOpen };

  /// Per-shard engine-time quantiles and health, one entry per shard.
  struct ShardStats {
    std::uint64_t batches = 0;
    double p50_batch_us = 0.0;
    double p95_batch_us = 0.0;
    double p99_batch_us = 0.0;
    BreakerState breaker = BreakerState::kClosed;
    bool available = false;   ///< breaker not open and worker not wedged
    std::uint64_t failures = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t retries = 0;
    std::uint64_t ejections = 0;
  };
  std::vector<ShardStats> shards;
};

/// Sharded, micro-batching recognition front end.
class RecognitionService {
 public:
  /// Builds the engine for shard `shard` (0-based), sized for `columns`
  /// templates. Called once per shard from store_templates().
  using EngineFactory =
      std::function<std::unique_ptr<AssociativeEngine>(std::size_t shard, std::size_t columns)>;

  RecognitionService(const RecognitionServiceConfig& config, EngineFactory factory);

  /// Stops the worker threads; every still-queued request's future fails
  /// with ServiceStopped (shutdown never abandons a future).
  ~RecognitionService();

  RecognitionService(const RecognitionService&) = delete;
  RecognitionService& operator=(const RecognitionService&) = delete;

  /// Splits `templates` contiguously across the configured shards,
  /// builds one engine per shard through the factory, programs each with
  /// its slice, and starts the collector + shard worker threads. Every
  /// shard must receive at least two templates. Re-callable: a second
  /// call first shuts the running edge down (queued futures fail with
  /// ServiceStopped, stats reset) and then brings up the new shard set.
  void store_templates(const std::vector<FeatureVector>& templates);

  /// Enqueues one query. The future's Recognition carries the *global*
  /// template index; its detail is the winning shard's (shard-local
  /// routing indices and all), and its margin is the winning shard's
  /// local margin capped by the relative cross-shard score gap (see
  /// merge()), so it never overstates flat-engine confidence. Throws
  /// Overloaded when the queue is at max_queue.
  std::future<Recognition> submit(FeatureVector input, const SubmitOptions& options = {});

  /// Enqueues a whole batch (one lock round-trip, so the admission
  /// window coalesces it into as few dispatches as max_batch allows).
  /// The future resolves once every query of the batch is answered,
  /// results[i] corresponding to inputs[i]. Admission is all-or-nothing:
  /// if the batch does not fit under max_queue, nothing is enqueued and
  /// Overloaded is thrown.
  std::future<std::vector<Recognition>> submit_batch(std::vector<FeatureVector> inputs,
                                                     const SubmitOptions& options = {});

  /// Blocks until everything submitted so far has been fulfilled.
  void drain();

  std::size_t shard_count() const { return shards_.size(); }

  /// The shard engines (inspection; do not query them concurrently with
  /// live service traffic).
  const AssociativeEngine& shard(std::size_t index) const;

  /// First global template index stored on shard `index`.
  std::size_t shard_base(std::size_t index) const;

  /// Throughput/latency counters since store_templates().
  RecognitionServiceStats stats() const;

 private:
  struct Request {
    FeatureVector input;
    /// Fulfils the client future: a result, or an exception from the
    /// shard engine (never both).
    std::function<void(Recognition&&, std::exception_ptr)> deliver;
    Clock::TimePoint enqueued;
    /// Absolute shed deadline (TimePoint::max() = none).
    Clock::TimePoint deadline;
  };

  /// Per-shard serving health, written only by the collector thread.
  /// Lives in `health_` on the service (not in Shard) so the whole vector
  /// can carry one SPINSIM_GUARDED_BY(stats_mutex_) and stats() snapshots
  /// are provably consistent.
  struct Health {
    RecognitionServiceStats::BreakerState state =
        RecognitionServiceStats::BreakerState::kClosed;
    std::size_t consecutive_failures = 0;
    Clock::TimePoint open_until{};
    std::chrono::microseconds cooldown{0};  ///< next open duration (backoff)
    std::uint64_t failures = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t retries = 0;
    std::uint64_t ejections = 0;
  };

  struct Shard {
    std::unique_ptr<AssociativeEngine> engine;
    std::size_t base = 0;     ///< global index of the shard's first template
    std::size_t columns = 0;  ///< templates stored on this shard
    std::thread worker;
    /// Mutable leaf caches inside `engine` (scrub targets), found once at
    /// store_templates() — the worker thread runs the scrubs.
    std::vector<LeafCacheEngine*> leaf_caches;

    /// One posted batch in the shard's job queue. Shared ownership of the
    /// inputs, not a raw pointer: when the watchdog abandons a wedged
    /// shard the collector's dispatch state is long gone by the time the
    /// engine call returns, but the worker is still inside
    /// recognize_batch on these inputs — the shared_ptr keeps them alive
    /// until the worker lets go.
    struct Job {
      std::shared_ptr<const std::vector<FeatureVector>> inputs;
      std::uint64_t gen = 0;  ///< generation tag (see next_gen)
    };

    // Collector -> worker handoff: a depth-2 job queue (the batch being
    // served plus one double-buffered successor), generation-tagged so an
    // abandoned (timed-out) job's late results are discarded instead of
    // being mistaken for a later batch's.
    Mutex mutex{LockRank::kShard};
    CondVar cv;
    std::deque<Job> jobs SPINSIM_GUARDED_BY(mutex);
    /// Last generation the collector posted (monotone; 0 = none yet).
    std::uint64_t next_gen SPINSIM_GUARDED_BY(mutex) = 0;
    /// Generation the worker is currently executing (valid while busy).
    std::uint64_t running_gen SPINSIM_GUARDED_BY(mutex) = 0;
    /// Generations the collector gave up on: the worker discards results
    /// for (and never starts) any job with gen <= abandoned_gen.
    std::uint64_t abandoned_gen SPINSIM_GUARDED_BY(mutex) = 0;
    /// Worker is inside an engine call it has not finished.
    bool busy SPINSIM_GUARDED_BY(mutex) = false;
    bool scrub SPINSIM_GUARDED_BY(mutex) = false;  ///< pending idle scrub
    bool stop SPINSIM_GUARDED_BY(mutex) = false;

    // Engine time per dispatched batch [us], written by the worker under
    // `mutex` while posting its completion, read by stats().
    GeometricHistogram batch_latency_us SPINSIM_GUARDED_BY(mutex);
    std::uint64_t batches_run SPINSIM_GUARDED_BY(mutex) = 0;
  };

  /// One shard's finished batch, streamed from its worker to the
  /// collector through `completions_`. Workers push while still holding
  /// their shard mutex (rank 20 -> 25), so a push can never race the
  /// watchdog's abandon decision for the same generation.
  struct Completion {
    std::size_t shard = 0;
    std::uint64_t gen = 0;
    std::vector<Recognition> results;
    std::exception_ptr error;  ///< set when the engine threw (results empty)
  };

  /// Collector-local state of one dispatched micro-batch whose per-shard
  /// answers are still streaming in. The per-query merge is *folded* one
  /// shard at a time (fold_shard_results), so non-winning shard results
  /// are freed as they arrive instead of being held until every shard has
  /// answered.
  struct InFlight {
    std::vector<Request> requests;
    std::shared_ptr<const std::vector<FeatureVector>> inputs;

    /// Dispatch state of one shard for this batch.
    struct PendingShard {
      bool posted = false;   ///< this shard participates in the batch
      bool settled = false;  ///< answered, timed out, or out of retries
      std::uint64_t gen = 0;  ///< generation of the latest post/repost
      std::size_t retries_left = 0;
      /// Watchdog deadline of the latest post, on the *wall* clock (cv
      /// timed waits cannot run on a FakeClock); max() = no watchdog.
      Clock::TimePoint deadline = Clock::TimePoint::max();
    };
    std::vector<PendingShard> pending;  ///< indexed like shards_
    std::size_t outstanding = 0;        ///< posted && !settled count

    // Running per-query fold: the best answer so far, the shard it came
    // from, and the best score seen on any *other* shard (the cross-shard
    // runner-up the merge caps the margin with).
    std::vector<Recognition> best;
    std::vector<std::size_t> best_shard;
    std::vector<double> second;
    std::vector<bool> has_best;
    std::size_t answered_shards = 0;
    std::size_t covered_columns = 0;
    std::exception_ptr first_error;
  };

  void collector_loop();
  void shard_loop(std::size_t index);
  /// Clears the per-dispatch input cache and posts `flight` to every
  /// eligible shard (not wedged, job queue not full, breaker admits —
  /// an elapsed cooldown admits one half-open probe).
  void post_dispatch(InFlight& flight);
  /// Pushes a generation-tagged job for `flight` onto shard `index`'s
  /// queue and records the post (generation, watchdog deadline) in
  /// flight.pending. Serves both the first post and retry reposts.
  void post_to_shard(std::size_t index, InFlight& flight);
  /// Routes one streamed completion to its in-flight batch: folds a
  /// success into the running merge, retries or excludes on error.
  /// Completions for abandoned/superseded generations are dropped.
  void handle_completion(std::deque<InFlight>& inflight, Completion&& done);
  /// Abandons posts whose watchdog deadline passed. Re-checks the
  /// completion queue under both the shard and completion locks first: a
  /// completion that landed just before the deadline is a late answer,
  /// not a timeout.
  void expire_watchdog(std::deque<InFlight>& inflight);
  /// Folds one shard's answers into `flight`'s running per-query merge
  /// (highest score wins, ties toward the lowest global template index).
  void fold_shard_results(InFlight& flight, std::size_t shard_index,
                          std::vector<Recognition>&& results);
  /// Finalises a fully-settled batch: per-query merge finish (uniqueness,
  /// margin cap, global winner, coverage), stats, delivery, controller.
  void complete_dispatch(InFlight& flight);
  /// Post-delivery bookkeeping shared by both complete_dispatch paths:
  /// repair-alarm edge check, in-flight/idle accounting, idle scrub.
  void finish_dispatch(std::size_t delivered);
  /// True when some shard could start a new batch immediately (idle
  /// worker, empty job queue, breaker not holding it out) — the gate for
  /// forming the double-buffered successor batch.
  bool has_idle_candidate();
  /// Breaker bookkeeping for one shard's dispatch outcome.
  void note_shard_success(std::size_t index);
  void note_shard_exclusion(std::size_t index, bool timeout);
  void enqueue(Request&& request);
  /// Fails every request in `doomed` with ServiceStopped (shutdown path).
  void fail_stopped(std::vector<Request>& doomed);
  void stop_threads();
  void controller_step(const std::vector<double>& latencies_us);
  void maybe_post_idle_scrub();
  /// Resets every stats counter (the store_templates re-init path).
  void reset_stats_locked() SPINSIM_REQUIRES(stats_mutex_);
  /// Sum of self-repair events (devices rewritten + columns remapped)
  /// across every shard leaf cache — relaxed atomic reads, lock-free.
  std::uint64_t repair_events_total() const;
  /// Edge-triggered repair-rate alarm, evaluated by the collector after
  /// each dispatch (see RecognitionServiceConfig::repair_alarm_per_kq).
  void maybe_raise_repair_alarm();

  RecognitionServiceConfig config_;
  EngineFactory factory_;
  std::shared_ptr<Clock> clock_;
  /// Always the real SteadyClock, whatever clock_ is: watchdog deadlines
  /// bound cv timed waits, which a FakeClock cannot wake (see
  /// core/clock.hpp), so they live on the wall clock like the waits do.
  std::shared_ptr<Clock> wall_clock_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t total_columns_ = 0;
  std::shared_ptr<InputStageCache> input_cache_;  // set iff dedup_input_stage
  /// Tiered engines inside the shards (directly or behind a
  /// FaultInjectingEngine) — the overload controller's actuators — and
  /// their construction-time margins (the relax ceiling).
  std::vector<TieredEngine*> tiered_;
  std::vector<double> base_margins_;

  std::thread collector_;
  /// Admission queue + lifecycle. Rank kServiceQueue: acquired before any
  /// shard or stats lock (and never held across either — the collector
  /// releases it before dispatching).
  mutable Mutex queue_mutex_{LockRank::kServiceQueue};
  CondVar queue_cv_;
  CondVar idle_cv_;
  std::deque<Request> queue_ SPINSIM_GUARDED_BY(queue_mutex_);
  /// Popped but not yet fulfilled.
  std::size_t in_flight_ SPINSIM_GUARDED_BY(queue_mutex_) = 0;
  bool stopping_ SPINSIM_GUARDED_BY(queue_mutex_) = false;
  bool started_ SPINSIM_GUARDED_BY(queue_mutex_) = false;

  /// Streamed worker completions. Rank kServiceDone: acquired after a
  /// shard mutex (workers push under both; the watchdog re-checks under
  /// both) and before stats_mutex_.
  mutable Mutex done_mutex_{LockRank::kServiceDone};
  CondVar done_cv_;
  std::deque<Completion> completions_ SPINSIM_GUARDED_BY(done_mutex_);

  // Collector-thread-only overload-controller and alarm state: touched
  // exclusively by the collector thread between store_templates() calls
  // (when no collector runs), so it needs no lock — and must never grow a
  // reader on another thread without growing a capability here.
  bool brownout_ = false;
  GeometricHistogram window_latency_us_;
  double window_max_us_ = 0.0;
  std::uint64_t window_count_ = 0;
  std::uint64_t queries_since_scrub_ = 0;
  bool repair_alarm_active_ = false;

  /// Counters + breaker Health. Rank kServiceStats: may be acquired while
  /// no other lock is held (every holder releases before the next lock).
  mutable Mutex stats_mutex_{LockRank::kServiceStats};
  std::uint64_t stat_queries_ SPINSIM_GUARDED_BY(stats_mutex_) = 0;
  std::uint64_t stat_failed_ SPINSIM_GUARDED_BY(stats_mutex_) = 0;
  std::uint64_t stat_batches_ SPINSIM_GUARDED_BY(stats_mutex_) = 0;
  std::uint64_t stat_dispatched_ SPINSIM_GUARDED_BY(stats_mutex_) = 0;
  std::uint64_t stat_escalated_ SPINSIM_GUARDED_BY(stats_mutex_) = 0;
  std::uint64_t stat_rejected_ SPINSIM_GUARDED_BY(stats_mutex_) = 0;
  std::uint64_t stat_shed_deadline_ SPINSIM_GUARDED_BY(stats_mutex_) = 0;
  std::uint64_t stat_rejected_overload_ SPINSIM_GUARDED_BY(stats_mutex_) = 0;
  std::uint64_t stat_degraded_ SPINSIM_GUARDED_BY(stats_mutex_) = 0;
  std::uint64_t stat_best_effort_ SPINSIM_GUARDED_BY(stats_mutex_) = 0;
  double stat_coverage_sum_ SPINSIM_GUARDED_BY(stats_mutex_) = 0.0;
  std::uint64_t stat_idle_scrubs_ SPINSIM_GUARDED_BY(stats_mutex_) = 0;
  std::uint64_t stat_repair_alarms_ SPINSIM_GUARDED_BY(stats_mutex_) = 0;
  std::uint64_t stat_controller_adjustments_ SPINSIM_GUARDED_BY(stats_mutex_) = 0;
  bool stat_brownout_ SPINSIM_GUARDED_BY(stats_mutex_) = false;
  double stat_latency_sum_us_ SPINSIM_GUARDED_BY(stats_mutex_) = 0.0;
  double stat_latency_max_us_ SPINSIM_GUARDED_BY(stats_mutex_) = 0.0;
  GeometricHistogram stat_latency_us_ SPINSIM_GUARDED_BY(stats_mutex_);
  Clock::TimePoint started_at_ SPINSIM_GUARDED_BY(stats_mutex_);
  /// One Health per shard (indexed like shards_), written by the
  /// collector, snapshotted by stats().
  std::vector<Health> health_ SPINSIM_GUARDED_BY(stats_mutex_);
};

/// Composes two engine factories into one that builds a TieredEngine per
/// shard: tier 0 (the cheap stage, typically hierarchical) answers every
/// query, tier 1 (the authoritative flat stage) answers the escalated
/// tail. Both factories are called with the same (shard, columns), so the
/// usual score-comparability contract applies to each tier's replicas.
RecognitionService::EngineFactory make_tiered_factory(RecognitionService::EngineFactory tier0,
                                                      RecognitionService::EngineFactory tier1,
                                                      const TieredEngineConfig& config = {});

/// Builds a LeafCacheEngine per shard, so the sharded path serves
/// template sets several times larger than the programmed crossbar
/// capacity (shard slice >> leaf_slots * leaf size). Each shard clamps
/// the cluster count to its column count (at least two clusters, at most
/// columns / 2 so every leaf can hold two templates) and salts the
/// k-means/module seed by the shard index so replicas don't share device
/// noise. stats() then surfaces the summed hit rate and reprogram energy.
RecognitionService::EngineFactory make_leaf_cache_factory(const LeafCacheEngineConfig& config);

}  // namespace spinsim
