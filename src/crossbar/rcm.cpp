#include "crossbar/rcm.hpp"

#include <algorithm>
#include <memory>

#include "core/error.hpp"
#include "core/matrix.hpp"

namespace spinsim {

RcmArray::RcmArray(const RcmConfig& config, Rng rng) : config_(config), rng_(rng) {
  require(config.rows > 0 && config.cols > 0, "RcmArray: dimensions must be positive");
  cells_.reserve(config.rows * config.cols);
  for (std::size_t i = 0; i < config.rows * config.cols; ++i) {
    cells_.emplace_back(config.memristor, rng_);
  }
  dummy_g_.assign(config.rows, 0.0);
}

void RcmArray::attach_substrate(std::shared_ptr<CrossbarSubstrate> substrate,
                                std::vector<std::size_t> column_map, bool delta_writes) {
  require(substrate != nullptr, "RcmArray::attach_substrate: null substrate");
  require(!programmed_, "RcmArray::attach_substrate: attach before programming");
  require(substrate->rows() == config_.rows,
          "RcmArray::attach_substrate: substrate row count mismatch");
  require(column_map.size() == config_.cols,
          "RcmArray::attach_substrate: need one physical column per array column");
  std::vector<bool> used(substrate->columns(), false);
  for (const std::size_t phys : column_map) {
    require(phys < substrate->columns(),
            "RcmArray::attach_substrate: physical column out of range");
    require(!used[phys], "RcmArray::attach_substrate: physical column mapped twice");
    used[phys] = true;
  }
  substrate_ = std::move(substrate);
  column_map_ = std::move(column_map);
  delta_writes_ = delta_writes;

  // Restore each model cell from its physical device: wear, endurance
  // limit, d2d skew, recorded faults, and (for programmed healthy
  // devices) the realised conductance of the last write.
  for (std::size_t row = 0; row < config_.rows; ++row) {
    for (std::size_t col = 0; col < config_.cols; ++col) {
      const CrossbarSubstrate::Device& dev = substrate_->device(row, column_map_[col]);
      Memristor& cell = cells_[row * config_.cols + col];
      cell.set_range_scale(substrate_->range_scale(row, column_map_[col]));
      if (dev.programmed && dev.wear.health == MemristorHealth::kHealthy) {
        cell.restore(dev.level, dev.conductance);
      }
      cell.set_wear(dev.wear);
    }
  }
  row_sums_dirty_ = true;
  invalidate_parasitic_cache();
}

void RcmArray::program_cell_unchecked(std::size_t row, std::size_t col, std::size_t level) {
  Memristor& cell = cells_[row * config_.cols + col];
  if (substrate_ == nullptr) {
    cell.program(level, rng_);
    ++device_writes_;
    return;
  }
  CrossbarSubstrate::Device& dev = substrate_->device(row, column_map_[col]);
  const std::uint64_t cycle =
      config_.memristor.wear_enabled() ? dev.wear.write_cycles : 0;
  Rng stream = substrate_->write_stream(row, column_map_[col], level, cycle);
  cell.program(level, stream);
  ++device_writes_;
  // Write the aged state back. A device recorded failed behind a healthy
  // model cell means field damage replaced the cell model (inject_fault):
  // the pulses are spent but the physical damage persists.
  if (dev.wear.health != MemristorHealth::kHealthy &&
      cell.health() == MemristorHealth::kHealthy) {
    ++dev.wear.write_cycles;
    return;
  }
  dev.wear = cell.wear();
  dev.level = static_cast<std::uint32_t>(level);
  dev.conductance = cell.conductance();
  dev.programmed = true;
}

void RcmArray::program_column(std::size_t col, const std::vector<double>& weights) {
  require(col < config_.cols, "RcmArray::program_column: column out of range");
  require(weights.size() == config_.rows,
          "RcmArray::program_column: weight count must equal rows");
  bool touched = false;
  for (std::size_t row = 0; row < config_.rows; ++row) {
    const std::size_t level = config_.memristor.weight_to_level(weights[row]);
    if (substrate_ != nullptr && delta_writes_) {
      const CrossbarSubstrate::Device& dev = substrate_->device(row, column_map_[col]);
      if (dev.programmed && dev.level == level &&
          dev.wear.health == MemristorHealth::kHealthy) {
        cells_[row * config_.cols + col].restore(level, dev.conductance);
        ++device_write_skips_;
        continue;
      }
    }
    program_cell_unchecked(row, col, level);
    touched = true;
  }
  if (touched) {
    ++columns_touched_;
  }
  row_sums_dirty_ = true;
  invalidate_parasitic_cache();
}

void RcmArray::program_cell(std::size_t row, std::size_t col, double weight) {
  require(row < config_.rows && col < config_.cols, "RcmArray::program_cell: out of range");
  program_cell_unchecked(row, col, config_.memristor.weight_to_level(weight));
  ++columns_touched_;
  row_sums_dirty_ = true;
  invalidate_parasitic_cache();
}

void RcmArray::program(const std::vector<std::vector<double>>& columns) {
  require(columns.size() == config_.cols, "RcmArray::program: column count mismatch");
  for (std::size_t col = 0; col < config_.cols; ++col) {
    program_column(col, columns[col]);
  }
  programmed_ = true;
  equalize_rows();
}

void RcmArray::ensure_row_sums() const {
  if (!row_sums_dirty_) {
    return;
  }
  row_sums_.assign(config_.rows, 0.0);
  for (std::size_t row = 0; row < config_.rows; ++row) {
    double sum = 0.0;
    const Memristor* row_cells = &cells_[row * config_.cols];
    for (std::size_t col = 0; col < config_.cols; ++col) {
      sum += row_cells[col].conductance();
    }
    row_sums_[row] = sum;
  }
  row_sums_dirty_ = false;
}

void RcmArray::equalize_rows() {
  if (!config_.dummy_column) {
    dummy_g_.assign(config_.rows, 0.0);
    return;
  }
  // Pad every row to the largest row sum (plus one LSB of conductance so
  // no dummy is exactly zero, which would make the pad unprogrammable).
  // One pass over the cached row sums: find the target, then pad.
  ensure_row_sums();
  double target = 0.0;
  for (std::size_t row = 0; row < config_.rows; ++row) {
    target = std::max(target, row_sums_[row]);
  }
  target += config_.memristor.g_min();
  if (config_.row_target_conductance > 0.0) {
    require(config_.row_target_conductance >= target,
            "RcmArray::equalize_rows: row_target_conductance below the realised row sums");
    target = config_.row_target_conductance;
  }
  for (std::size_t row = 0; row < config_.rows; ++row) {
    dummy_g_[row] = target - row_sums_[row];
    SPINSIM_ASSERT(dummy_g_[row] > 0.0, "RcmArray::equalize_rows: negative dummy conductance");
  }
  invalidate_parasitic_cache();
}

void RcmArray::inject_fault(std::size_t row, std::size_t col, StuckFault fault) {
  require(row < config_.rows && col < config_.cols, "RcmArray::inject_fault: out of range");
  // Faults happen in the field, after programming and row equalisation,
  // so the dummy pads are deliberately *not* recomputed: the damaged
  // row's G_TS shifts, which is part of the fault's signature.
  MemristorSpec fault_spec = config_.memristor;
  if (fault == StuckFault::kOpen) {
    // Filament lost: ~100x the highest programmable resistance.
    fault_spec.r_min = config_.memristor.r_max * 99.0;
    fault_spec.r_max = config_.memristor.r_max * 100.0;
  } else {
    // Over-formed filament: stuck well below the lowest resistance.
    fault_spec.r_min = config_.memristor.r_min * 0.25;
    fault_spec.r_max = config_.memristor.r_min * 0.5;
  }
  Memristor& cell = cells_[row * config_.cols + col];
  cell = Memristor(fault_spec);
  cell.program_ideal(fault == StuckFault::kOpen ? 0 : fault_spec.levels - 1);
  if (substrate_ != nullptr) {
    // Field damage outlives this array model: record it on the physical
    // device so the fault survives eviction and reprogramming.
    substrate_->mark_failed(row, column_map_[col],
                            fault == StuckFault::kOpen ? MemristorHealth::kStuckOpen
                                                       : MemristorHealth::kStuckShort);
  }
  row_sums_dirty_ = true;
  invalidate_parasitic_cache();
}

double RcmArray::conductance(std::size_t row, std::size_t col) const {
  require(row < config_.rows && col < config_.cols, "RcmArray::conductance: out of range");
  return cells_[row * config_.cols + col].conductance();
}

double RcmArray::row_conductance(std::size_t row) const {
  require(row < config_.rows, "RcmArray::row_conductance: out of range");
  ensure_row_sums();
  return dummy_g_[row] + row_sums_[row];
}

std::vector<double> RcmArray::column_currents_ideal(
    const std::vector<double>& input_currents) const {
  require(input_currents.size() == config_.rows,
          "RcmArray::column_currents_ideal: need one input current per row");
  std::vector<double> out(config_.cols, 0.0);
  for (std::size_t row = 0; row < config_.rows; ++row) {
    const double g_total = row_conductance(row);
    SPINSIM_ASSERT(g_total > 0.0, "RcmArray: row with zero conductance");
    const double scale = input_currents[row] / g_total;
    const Memristor* row_cells = &cells_[row * config_.cols];
    for (std::size_t col = 0; col < config_.cols; ++col) {
      out[col] += scale * row_cells[col].conductance();
    }
  }
  return out;
}

void RcmArray::prepare_ideal() {
  ensure_row_sums();
  for (std::size_t row = 0; row < config_.rows; ++row) {
    SPINSIM_ASSERT(dummy_g_[row] + row_sums_[row] > 0.0, "RcmArray: row with zero conductance");
  }
  if (ideal_built_) {
    return;
  }
  ideal_op_.assign(config_.cols * config_.rows, 0.0);
  for (std::size_t row = 0; row < config_.rows; ++row) {
    const Memristor* row_cells = &cells_[row * config_.cols];
    for (std::size_t col = 0; col < config_.cols; ++col) {
      ideal_op_[col * config_.rows + row] = row_cells[col].conductance();
    }
  }
  ideal_built_ = true;
}

void RcmArray::column_currents_ideal_batch(const double* inputs, std::size_t batch,
                                           double* out) const {
  require(ideal_built_, "RcmArray::column_currents_ideal_batch: call prepare_ideal() first");
  const std::size_t rows = config_.rows;
  // Same current division as column_currents_ideal(): scale each input by
  // its row's total conductance, then the operator entries are the raw
  // crosspoint conductances. The scaled copy keeps the division identical
  // (one divide per (query, row), same operands, same order).
  std::vector<double> scaled(batch * rows);
  for (std::size_t q = 0; q < batch; ++q) {
    const double* in = inputs + q * rows;
    double* s = scaled.data() + q * rows;
    for (std::size_t row = 0; row < rows; ++row) {
      s[row] = in[row] / (dummy_g_[row] + row_sums_[row]);
    }
  }
  gemm_operator_batch(ideal_op_.data(), nullptr, scaled.data(), rows, config_.cols, batch, out);
}

void RcmArray::build_parasitic_network(double v_bias) {
  net_ = std::make_unique<ResistiveNetwork>();
  transfer_built_ = false;
  const std::size_t rows = config_.rows;
  const std::size_t cols = config_.cols;
  const double g_seg = 1.0 / config_.segment_resistance();

  // Node layout: row-bar junctions then column-bar junctions, then the
  // per-column terminations and the shared dummy bar.
  const RNode row_base = net_->add_nodes(rows * cols);
  const RNode col_base = net_->add_nodes(rows * cols);
  const auto row_node = [&](std::size_t i, std::size_t j) { return row_base + i * cols + j; };
  const auto col_node = [&](std::size_t i, std::size_t j) { return col_base + i * cols + j; };

  col_term_nodes_.clear();
  col_last_nodes_.clear();
  row_input_nodes_.clear();

  // Row bars: input at the left edge (j = 0), segments along the bar.
  for (std::size_t i = 0; i < rows; ++i) {
    row_input_nodes_.push_back(row_node(i, 0));
    for (std::size_t j = 0; j + 1 < cols; ++j) {
      net_->add_conductance(row_node(i, j), row_node(i, j + 1), g_seg);
    }
  }

  // Column bars: segments down the bar, termination pinned at v_bias.
  for (std::size_t j = 0; j < cols; ++j) {
    for (std::size_t i = 0; i + 1 < rows; ++i) {
      net_->add_conductance(col_node(i, j), col_node(i + 1, j), g_seg);
    }
    const RNode term = net_->add_node();
    net_->fix_voltage(term, v_bias);
    net_->add_conductance(col_node(rows - 1, j), term, g_seg);
    col_term_nodes_.push_back(term);
    col_last_nodes_.push_back(col_node(rows - 1, j));
  }

  // Crosspoint memristors.
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      net_->add_conductance(row_node(i, j), col_node(i, j),
                            cells_[i * cols + j].conductance());
    }
  }

  // Dummy devices: from the far end of each row bar to a shared wide bar
  // held at the same bias (its own wire resistance is negligible).
  if (config_.dummy_column) {
    const RNode dummy_bar = net_->add_node();
    net_->fix_voltage(dummy_bar, v_bias);
    for (std::size_t i = 0; i < rows; ++i) {
      if (dummy_g_[i] > 0.0) {
        net_->add_conductance(row_node(i, cols - 1), dummy_bar, dummy_g_[i]);
      }
    }
  }
  net_v_bias_ = v_bias;
}

void RcmArray::ensure_network(double v_bias) {
  if (!net_ || net_v_bias_ != v_bias) {
    build_parasitic_network(v_bias);
  }
}

void RcmArray::ensure_transfer(double v_bias) {
  ensure_network(v_bias);
  if (transfer_built_) {
    return;
  }
  const std::size_t rows = config_.rows;
  const std::size_t cols = config_.cols;
  const double g_seg = 1.0 / config_.segment_resistance();

  // Baseline: column currents with no injections (exactly zero for a
  // uniform bias, but computed so a future non-uniform clamp stays
  // correct).
  net_->clear_injections();
  net_->solve_factored();
  transfer_offset_ = extract_column_currents(v_bias);

  // By reciprocity one factored solve per *output* column suffices:
  // T[j][r] = g_seg * dv(col_last_j)/dI(row_input_r). cols solves instead
  // of rows solves, and cols <= rows for every paper configuration.
  transfer_.assign(cols * rows, 0.0);
  for (std::size_t j = 0; j < cols; ++j) {
    const std::vector<double> w = net_->influence(col_last_nodes_[j]);
    double* t_row = &transfer_[j * rows];
    for (std::size_t r = 0; r < rows; ++r) {
      t_row[r] = g_seg * w[row_input_nodes_[r]];
    }
  }
  transfer_built_ = true;
}

std::vector<double> RcmArray::extract_column_currents(double v_bias) const {
  // The termination pin hangs off a single wire segment, so the column
  // current is just that segment's current.
  const double g_seg = 1.0 / config_.segment_resistance();
  std::vector<double> out(config_.cols, 0.0);
  for (std::size_t j = 0; j < config_.cols; ++j) {
    out[j] = (net_->voltage(col_last_nodes_[j]) - v_bias) * g_seg;
  }
  return out;
}

void RcmArray::prepare_parasitic(double v_bias) { ensure_transfer(v_bias); }

bool RcmArray::transfer_ready(double v_bias) const {
  return net_ != nullptr && transfer_built_ && net_v_bias_ == v_bias;
}

std::vector<double> RcmArray::column_currents_transfer(const std::vector<double>& input_currents,
                                                       double v_bias) const {
  require(input_currents.size() == config_.rows,
          "RcmArray::column_currents_transfer: need one input current per row");
  require(transfer_ready(v_bias),
          "RcmArray::column_currents_transfer: call prepare_parasitic() first");
  const std::size_t rows = config_.rows;
  std::vector<double> out(config_.cols, 0.0);
  for (std::size_t j = 0; j < config_.cols; ++j) {
    const double* t_row = &transfer_[j * rows];
    double acc = transfer_offset_[j];
    for (std::size_t r = 0; r < rows; ++r) {
      acc += t_row[r] * input_currents[r];
    }
    out[j] = acc;
  }
  return out;
}

void RcmArray::column_currents_transfer_batch(const double* inputs, std::size_t batch,
                                              double* out, double v_bias) const {
  require(transfer_ready(v_bias),
          "RcmArray::column_currents_transfer_batch: call prepare_parasitic() first");
  gemm_operator_batch(transfer_.data(), transfer_offset_.data(), inputs, config_.rows,
                      config_.cols, batch, out);
}

std::vector<double> RcmArray::column_currents_parasitic(
    const std::vector<double>& input_currents, double v_bias) {
  require(input_currents.size() == config_.rows,
          "RcmArray::column_currents_parasitic: need one input current per row");

  if (solver_ == CrossbarSolver::kTransfer) {
    ensure_transfer(v_bias);
    return column_currents_transfer(input_currents, v_bias);
  }

  ensure_network(v_bias);
  for (std::size_t i = 0; i < config_.rows; ++i) {
    net_->set_injection(row_input_nodes_[i], input_currents[i]);
  }
  if (solver_ == CrossbarSolver::kFactored) {
    net_->solve_factored();
  } else {
    net_->solve_cg();
  }
  return extract_column_currents(v_bias);
}

void RcmArray::invalidate_parasitic_cache() {
  net_.reset();
  transfer_built_ = false;
  transfer_.clear();
  transfer_offset_.clear();
  ideal_built_ = false;
  ideal_op_.clear();
}

}  // namespace spinsim
