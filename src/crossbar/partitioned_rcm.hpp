/// \file partitioned_rcm.hpp
/// Modular crossbar: a large pattern dimension split across RCM blocks.
///
/// Paper Section 5: "Individual patterns of larger dimensions can also be
/// partitioned and stored in modular RCM-blocks." Each block holds a
/// contiguous slice of every template's rows; the per-column currents of
/// all blocks are summed on a shared rail (current-mode addition is free
/// in this architecture). Shorter bars mean smaller cumulative IR drops,
/// which is the engineering payoff this class lets you quantify against
/// the monolithic array.

#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "crossbar/rcm.hpp"

namespace spinsim {

/// Configuration of a partitioned crossbar.
struct PartitionedRcmConfig {
  std::size_t rows = 128;    ///< total pattern dimension
  std::size_t cols = 40;     ///< stored templates
  std::size_t blocks = 4;    ///< number of RCM blocks (must divide rows)
  MemristorSpec memristor;
  double wire_res_per_um = 1.0;
  double cell_pitch_um = 0.1;

  std::size_t rows_per_block() const { return rows / blocks; }
};

/// A bank of RCM blocks acting as one logical crossbar.
class PartitionedRcm {
 public:
  /// Builds the (unprogrammed) blocks; throws InvalidArgument unless
  /// `blocks` divides `rows`.
  PartitionedRcm(const PartitionedRcmConfig& config, Rng rng);

  const PartitionedRcmConfig& config() const { return config_; }
  std::size_t blocks() const { return blocks_.size(); }

  /// Programs all templates; `columns[j]` holds template j's `rows`
  /// weights, sliced row-wise across the blocks.
  void program(const std::vector<std::vector<double>>& columns);

  /// Selects the parasitic evaluation algorithm on every block.
  void set_parasitic_solver(CrossbarSolver solver);

  /// Total conductance on logical input bar `row` (within its block).
  double row_conductance(std::size_t row) const;

  /// Ideal column currents: per-block current division, summed.
  std::vector<double> column_currents_ideal(const std::vector<double>& input_currents) const;

  /// Parasitic column currents: per-block nodal solves, summed. The
  /// blocks' shorter bars are where the IR-drop advantage appears.
  std::vector<double> column_currents_parasitic(const std::vector<double>& input_currents,
                                                double v_bias = 0.0);

  /// Access to an individual block (inspection, tests).
  const RcmArray& block(std::size_t index) const;

 private:
  PartitionedRcmConfig config_;
  std::vector<std::unique_ptr<RcmArray>> blocks_;
  bool programmed_ = false;
};

}  // namespace spinsim
