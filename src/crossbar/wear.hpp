/// \file wear.hpp
/// Persistent physical state of one crossbar slot.
///
/// LeafCacheEngine rebuilds its leaf modules (and their RcmArray models)
/// on every miss, but the *physical* devices of a slot persist: their
/// accumulated write cycles, their sampled endurance limits, any stuck
/// faults, and the conductance they realised at the last write. A
/// CrossbarSubstrate carries that state across model re-creations — an
/// RcmArray with a substrate attached restores each cell's wear before
/// programming, writes the aged state back after, and can skip devices
/// whose target level already matches the recorded state (delta
/// reprogramming).
///
/// Write noise with a substrate attached comes from keyed per-device
/// streams instead of the array's sequential draw order: the conductance
/// a device realises at a level is a property of the device (`noise_seed`,
/// row, column, level — plus the cycle count once wear is enabled), not
/// of the programming schedule. That keeps delta reprogramming and batch
/// vs. sequential serving answer-for-answer identical: skipping a write
/// restores exactly the value a fresh write would have realised.
/// LeafCacheEngine gives every slot the same `noise_seed`, so answers are
/// also independent of which slot a cluster lands in; `wear_seed` stays
/// per-slot so endurance limits differ per physical device.
///
/// The substrate can hold more columns than a leaf uses: the spare
/// columns are the self-repair budget. When verify-reads find a device
/// that rewrites cannot bring back into its level window, the engine
/// retires that physical column and reloads the leaf on the remaining
/// healthy columns.
///
/// Threading: a substrate is plain (unsynchronized) state touched only
/// by its slot's serving thread — programming, verify scans, repair and
/// retirement all happen on the shard worker that owns the engine.
/// Cross-thread visibility (e.g. a test injecting faults before serving
/// resumes) is inherited from the shard job handoff, which synchronizes
/// through spinsim::Mutex/CondVar (see service/recognition_service.hpp).

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/random.hpp"
#include "core/units.hpp"
#include "device/memristor.hpp"
#include "energy/write_cost.hpp"

namespace spinsim {

/// Persistent per-device state of one physical crossbar slot.
class CrossbarSubstrate {
 public:
  /// One physical device's record.
  struct Device {
    MemristorWear wear;
    std::uint32_t level = 0;    ///< target level of the last write
    double conductance = 0.0;   ///< realised conductance at the last write [S]
    bool programmed = false;    ///< level/conductance are valid
  };

  /// `noise_seed` keys the per-device write-noise streams; `wear_seed`
  /// keys the per-device endurance-limit sampling (when the spec enables
  /// wear). See the file comment for why the two are separate.
  CrossbarSubstrate(const MemristorSpec& spec, std::size_t rows, std::size_t columns,
                    std::uint64_t noise_seed, std::uint64_t wear_seed);

  const MemristorSpec& spec() const { return spec_; }
  std::size_t rows() const { return rows_; }
  std::size_t columns() const { return columns_; }

  Device& device(std::size_t row, std::size_t column);
  const Device& device(std::size_t row, std::size_t column) const;

  /// Deterministic write-noise stream of one (device, level) pair;
  /// `cycle` folds the device's write count in once wear is enabled (a
  /// worn device draws fresh noise per write) and must be 0 otherwise.
  Rng write_stream(std::size_t row, std::size_t column, std::size_t level,
                   std::uint64_t cycle) const;

  /// Device-to-device range skew of one physical device (1.0 when the
  /// spec has no d2d variation). Pure function of (noise_seed, row,
  /// column), so it survives array re-creations.
  double range_scale(std::size_t row, std::size_t column) const;

  // --- Column retirement (self-repair remap bookkeeping) ---
  void retire_column(std::size_t column);
  bool column_retired(std::size_t column) const;
  std::size_t retired_columns() const { return retired_count_; }
  std::size_t healthy_columns() const { return columns_ - retired_count_; }

  /// Picks `count` physical columns for a residency: non-retired columns
  /// in ascending order first, topped up with retired ones when the
  /// spare budget is exhausted (the caller counts those as unrepairable).
  /// Throws when the substrate has fewer than `count` columns total.
  std::vector<std::size_t> allocate_columns(std::size_t count) const;

  /// Records permanent field damage (stuck fault) on one device; the
  /// recorded conductance pins the fault's electrical signature.
  void mark_failed(std::size_t row, std::size_t column, MemristorHealth health);

  // --- Wear roll-ups ---
  std::uint64_t total_write_cycles() const;
  std::uint64_t max_device_write_cycles() const;
  std::size_t worn_out_devices() const;

  /// Total write energy this slot's physical devices have absorbed over
  /// their lifetime, priced by `cost` — the substrate-level wear-energy
  /// counter (every programming cycle ages the device, whoever issued
  /// it: miss reprogramming and repair rewrites alike).
  Energy lifetime_write_energy(const CrossbarWriteCost& cost) const;

 private:
  MemristorSpec spec_;
  std::size_t rows_;
  std::size_t columns_;
  std::uint64_t noise_seed_;
  std::vector<Device> devices_;  // row-major rows x columns
  std::vector<bool> retired_;
  std::size_t retired_count_ = 0;
};

}  // namespace spinsim
