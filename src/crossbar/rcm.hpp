/// \file rcm.hpp
/// Resistive crossbar memory (RCM) array model.
///
/// `rows` horizontal input bars cross `cols` in-plane output bars with an
/// Ag-Si memristor at every junction (paper Fig. 1). One analog template
/// is programmed per column; driving the rows with input currents makes
/// each column collect a current proportional to the input-template dot
/// product.
///
/// Two evaluation paths:
///  * ideal: current division I(i,j) = I_in(i) g_ij / G_TS(i) summed per
///    column — the closed form the paper's Section 4A derives, exact when
///    wire parasitics vanish and all column ends sit at the same bias.
///  * parasitic: a full nodal solve over the 2 * rows * cols wire-junction
///    network with per-segment Cu bar resistance (Table 2: 1 Ohm/um),
///    which produces the IR-drop margin degradation of Fig. 9.
///
/// A per-row *dummy memristor* pads every row's total conductance G_TS to
/// a common value so the DTCS-DAC sees a data-independent load (Section
/// 4A).

#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "circuit/resistive_network.hpp"
#include "core/random.hpp"
#include "crossbar/wear.hpp"
#include "device/memristor.hpp"

namespace spinsim {

/// Geometry and technology of one RCM array.
struct RcmConfig {
  std::size_t rows = 128;        ///< input bars (feature dimension)
  std::size_t cols = 40;         ///< output bars (stored templates)
  MemristorSpec memristor;       ///< crosspoint device spec
  bool dummy_column = true;      ///< equalise G_TS with a dummy device per row

  /// Explicit per-row G_TS pad target [S]; <= 0 pads to the array's own
  /// largest row sum (the default). Setting the same target on several
  /// arrays makes their rows electrically identical regardless of how
  /// many columns each holds — what the service layer uses to keep
  /// sharded column currents equal to a flat array's. Must exceed every
  /// realised row sum.
  double row_target_conductance = 0.0;

  // Cu bar parasitics (paper Table 2: 1 Ohm/um, 0.4 fF/um). The pitch is
  // the high-density nano-crossbar assumption (~2F at F = 50 nm); at
  // coarser pitches the cumulative column IR drop overtakes the
  // per-memristor signal drop and the Fig. 9a optimum shifts to higher
  // resistances.
  double wire_res_per_um = 1.0;  ///< [Ohm/um]
  double cell_pitch_um = 0.1;    ///< junction pitch [um]

  /// Wire resistance of one cell-to-cell segment [Ohm].
  double segment_resistance() const { return wire_res_per_um * cell_pitch_um; }
};

/// Which algorithm evaluates the parasitic network.
enum class CrossbarSolver {
  kCg,        ///< iterative CG per query (reference path)
  kFactored,  ///< LDL^T factored once, two triangular solves per query
  kTransfer,  ///< precomputed rows x cols transfer operator, dense matvec
};

/// One programmed crossbar.
class RcmArray {
 public:
  /// Builds an unprogrammed array; `rng` seeds the write-noise stream.
  RcmArray(const RcmConfig& config, Rng rng);

  const RcmConfig& config() const { return config_; }
  std::size_t rows() const { return config_.rows; }
  std::size_t cols() const { return config_.cols; }

  /// Attaches persistent physical-device state: array column `j` models
  /// the substrate's physical column `column_map[j]`. Cell wear, sampled
  /// endurance limits, d2d skew, and recorded faults are restored from
  /// the substrate immediately; every subsequent program writes the aged
  /// state back, drawing write noise from the substrate's keyed
  /// per-device streams instead of this array's sequential rng. With
  /// `delta_writes`, programming skips (and restores) devices whose
  /// recorded target level already matches. Attach before programming.
  void attach_substrate(std::shared_ptr<CrossbarSubstrate> substrate,
                        std::vector<std::size_t> column_map, bool delta_writes);

  bool substrate_attached() const { return substrate_ != nullptr; }

  /// Physical substrate column behind array column `col` (identity
  /// mapping is the common case; repair remaps break it).
  const std::vector<std::size_t>& column_map() const { return column_map_; }

  /// Programs column `col` with `weights` (one value in [0, 1] per row).
  /// Weights are quantised to the memristor level grid; realised
  /// conductances include write noise per the spec.
  void program_column(std::size_t col, const std::vector<double>& weights);

  /// Reprograms the single junction (row, col) to `weight` — the
  /// self-repair rewrite path. Always writes (no delta skip). The caller
  /// re-equalises rows once per repair pass.
  void program_cell(std::size_t row, std::size_t col, double weight);

  /// Programs all columns; `columns[j]` holds column j's weights.
  void program(const std::vector<std::vector<double>>& columns);

  /// Re-pads the per-row dummy conductances so every row's total
  /// conductance equals the largest row sum. Called automatically by
  /// program(); exposed for incremental programming.
  void equalize_rows();

  /// Fault types for yield studies: a stuck-open device loses its
  /// filament (conductance collapses to ~0), a stuck-short device is
  /// pinned at an over-formed low resistance.
  enum class StuckFault { kOpen, kShort };

  /// Injects a permanent device fault at (row, col) and re-equalises the
  /// rows; recognition continues with the damaged array.
  void inject_fault(std::size_t row, std::size_t col, StuckFault fault);

  /// Realised conductance of junction (row, col) [S].
  double conductance(std::size_t row, std::size_t col) const;

  /// Total conductance hanging off input bar `row`, including the dummy
  /// device [S] — the G_TS the DTCS-DAC model needs.
  double row_conductance(std::size_t row) const;

  /// Ideal column dot-product currents for the given per-row input
  /// currents [A]: I_j = sum_i I_in(i) g_ij / G_TS(i).
  std::vector<double> column_currents_ideal(const std::vector<double>& input_currents) const;

  /// Builds (or reuses) the cols x rows ideal operator (the crosspoint
  /// conductances transposed into GEMM layout) and warms the row-sum
  /// cache, so column_currents_ideal_batch() becomes callable from const
  /// contexts (thread-parallel batch dispatch).
  void prepare_ideal();

  /// True once prepare_ideal() has run (and no reprogramming invalidated
  /// the operator since).
  bool ideal_ready() const { return ideal_built_; }

  /// Batched ideal evaluation: `inputs` holds `batch` per-row input
  /// current vectors back to back (batch x rows), `out` receives batch x
  /// cols column currents. One cache-blocked GEMM against the cached
  /// ideal operator; each query's result is bit-identical to
  /// column_currents_ideal() on the same inputs. Requires ideal_ready();
  /// const and thread-safe (callers may partition the batch across
  /// threads via pointer offsets).
  void column_currents_ideal_batch(const double* inputs, std::size_t batch, double* out) const;

  /// Selects the parasitic evaluation algorithm. All three paths agree to
  /// solver tolerance; kTransfer (the default) amortizes one factorization
  /// plus `cols` triangular solves across every subsequent query, which
  /// then costs a dense rows x cols matvec.
  void set_parasitic_solver(CrossbarSolver solver) { solver_ = solver; }
  CrossbarSolver parasitic_solver() const { return solver_; }

  /// Full parasitic nodal solve. Input currents are injected at the left
  /// edge of each row bar; every column bar terminates at `v_bias` (the
  /// DWN clamp) at the bottom edge. Returns the current delivered into
  /// each column termination [A]. Cost depends on the selected solver:
  /// one CG solve over ~2*rows*cols nodes (kCg, warm-started across
  /// calls), two sparse triangular solves (kFactored), or a dense
  /// rows x cols matvec (kTransfer).
  std::vector<double> column_currents_parasitic(const std::vector<double>& input_currents,
                                                double v_bias = 0.0);

  /// Builds (or reuses) the parasitic network, its factorization and the
  /// transfer operator for `v_bias`, so subsequent kTransfer queries are
  /// pure matvecs — and column_currents_transfer() becomes callable from
  /// const contexts (e.g. thread-parallel batch dispatch).
  void prepare_parasitic(double v_bias = 0.0);

  /// True once prepare_parasitic(v_bias) has run (and nothing invalidated
  /// the cache since).
  bool transfer_ready(double v_bias = 0.0) const;

  /// Applies the cached transfer operator: out = I0 + T * in. Requires
  /// transfer_ready(v_bias); const and thread-safe.
  std::vector<double> column_currents_transfer(const std::vector<double>& input_currents,
                                               double v_bias = 0.0) const;

  /// Batched transfer evaluation: `inputs` holds `batch` per-row input
  /// current vectors back to back (batch x rows), `out` receives batch x
  /// cols column currents. One cache-blocked GEMM against the cached
  /// transfer operator; each query's result is bit-identical to
  /// column_currents_transfer() on the same inputs. Requires
  /// transfer_ready(v_bias); const and thread-safe.
  void column_currents_transfer_batch(const double* inputs, std::size_t batch, double* out,
                                      double v_bias = 0.0) const;

  /// Drops the cached parasitic network (after reprogramming).
  void invalidate_parasitic_cache();

  // Device-write accounting since construction: physical writes
  // performed, writes avoided by delta reprogramming, and columns that
  // saw at least one write (the unit the serial write path's latency
  // scales with).
  std::uint64_t device_writes() const { return device_writes_; }
  std::uint64_t device_write_skips() const { return device_write_skips_; }
  std::uint64_t columns_touched() const { return columns_touched_; }

 private:
  void program_cell_unchecked(std::size_t row, std::size_t col, std::size_t level);
  void build_parasitic_network(double v_bias);
  void ensure_network(double v_bias);
  void ensure_transfer(double v_bias);
  void ensure_row_sums() const;
  std::vector<double> extract_column_currents(double v_bias) const;

  RcmConfig config_;
  Rng rng_;
  std::vector<Memristor> cells_;       // row-major rows x cols
  std::vector<double> dummy_g_;        // per-row pad conductance
  bool programmed_ = false;

  // Persistent physical-device state (leaf-cache endurance mode).
  std::shared_ptr<CrossbarSubstrate> substrate_;
  std::vector<std::size_t> column_map_;
  bool delta_writes_ = false;
  std::uint64_t device_writes_ = 0;
  std::uint64_t device_write_skips_ = 0;
  std::uint64_t columns_touched_ = 0;

  // Per-row sum of crosspoint conductances (dummy pad excluded), kept so
  // row_conductance() and equalize_rows() stop rescanning the cell array.
  mutable std::vector<double> row_sums_;
  mutable bool row_sums_dirty_ = true;

  // Cached parasitic network (topology fixed after programming).
  CrossbarSolver solver_ = CrossbarSolver::kTransfer;
  std::unique_ptr<ResistiveNetwork> net_;
  double net_v_bias_ = 0.0;
  std::vector<RNode> row_input_nodes_;
  std::vector<RNode> col_term_nodes_;
  std::vector<RNode> col_last_nodes_;

  // Transfer operator: column currents = transfer_offset_ + T * inputs,
  // with T stored column-major per output (transfer_[j * rows + r]).
  bool transfer_built_ = false;
  std::vector<double> transfer_;
  std::vector<double> transfer_offset_;

  // Ideal operator in the same GEMM layout (ideal_op_[j * rows + r] =
  // g_rj), built by prepare_ideal() and dropped on any reprogramming.
  bool ideal_built_ = false;
  std::vector<double> ideal_op_;
};

}  // namespace spinsim
