#include "crossbar/partitioned_rcm.hpp"

#include "core/error.hpp"

namespace spinsim {

PartitionedRcm::PartitionedRcm(const PartitionedRcmConfig& config, Rng rng) : config_(config) {
  require(config.blocks >= 1, "PartitionedRcm: need at least one block");
  require(config.rows % config.blocks == 0,
          "PartitionedRcm: block count must divide the row count");
  RcmConfig block_config;
  block_config.rows = config.rows_per_block();
  block_config.cols = config.cols;
  block_config.memristor = config.memristor;
  block_config.wire_res_per_um = config.wire_res_per_um;
  block_config.cell_pitch_um = config.cell_pitch_um;
  for (std::size_t b = 0; b < config.blocks; ++b) {
    blocks_.push_back(std::make_unique<RcmArray>(block_config, rng.fork()));
  }
}

void PartitionedRcm::program(const std::vector<std::vector<double>>& columns) {
  require(columns.size() == config_.cols, "PartitionedRcm::program: column count mismatch");
  const std::size_t rpb = config_.rows_per_block();
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    std::vector<std::vector<double>> slice(config_.cols, std::vector<double>(rpb));
    for (std::size_t j = 0; j < config_.cols; ++j) {
      require(columns[j].size() == config_.rows,
              "PartitionedRcm::program: template dimension mismatch");
      for (std::size_t r = 0; r < rpb; ++r) {
        slice[j][r] = columns[j][b * rpb + r];
      }
    }
    blocks_[b]->program(slice);
  }
  programmed_ = true;
}

void PartitionedRcm::set_parasitic_solver(CrossbarSolver solver) {
  for (auto& block : blocks_) {
    block->set_parasitic_solver(solver);
  }
}

double PartitionedRcm::row_conductance(std::size_t row) const {
  require(row < config_.rows, "PartitionedRcm::row_conductance: out of range");
  const std::size_t rpb = config_.rows_per_block();
  return blocks_[row / rpb]->row_conductance(row % rpb);
}

std::vector<double> PartitionedRcm::column_currents_ideal(
    const std::vector<double>& input_currents) const {
  require(programmed_, "PartitionedRcm: program() before evaluation");
  require(input_currents.size() == config_.rows,
          "PartitionedRcm::column_currents_ideal: need one current per row");
  const std::size_t rpb = config_.rows_per_block();
  std::vector<double> totals(config_.cols, 0.0);
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    const std::vector<double> slice(input_currents.begin() + static_cast<std::ptrdiff_t>(b * rpb),
                                    input_currents.begin() +
                                        static_cast<std::ptrdiff_t>((b + 1) * rpb));
    const std::vector<double> partial = blocks_[b]->column_currents_ideal(slice);
    for (std::size_t j = 0; j < config_.cols; ++j) {
      totals[j] += partial[j];
    }
  }
  return totals;
}

std::vector<double> PartitionedRcm::column_currents_parasitic(
    const std::vector<double>& input_currents, double v_bias) {
  require(programmed_, "PartitionedRcm: program() before evaluation");
  require(input_currents.size() == config_.rows,
          "PartitionedRcm::column_currents_parasitic: need one current per row");
  const std::size_t rpb = config_.rows_per_block();
  std::vector<double> totals(config_.cols, 0.0);
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    const std::vector<double> slice(input_currents.begin() + static_cast<std::ptrdiff_t>(b * rpb),
                                    input_currents.begin() +
                                        static_cast<std::ptrdiff_t>((b + 1) * rpb));
    const std::vector<double> partial = blocks_[b]->column_currents_parasitic(slice, v_bias);
    for (std::size_t j = 0; j < config_.cols; ++j) {
      totals[j] += partial[j];
    }
  }
  return totals;
}

const RcmArray& PartitionedRcm::block(std::size_t index) const {
  require(index < blocks_.size(), "PartitionedRcm::block: out of range");
  return *blocks_[index];
}

}  // namespace spinsim
