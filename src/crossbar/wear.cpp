#include "crossbar/wear.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace spinsim {

namespace {

/// splitmix64 finalizer — the same expansion idiom the WTA uses for its
/// per-query thermal substreams.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t combine(std::uint64_t seed, std::uint64_t value) {
  return mix64(seed + 0x9E3779B97F4A7C15ULL * (value + 1));
}

}  // namespace

CrossbarSubstrate::CrossbarSubstrate(const MemristorSpec& spec, std::size_t rows,
                                     std::size_t columns, std::uint64_t noise_seed,
                                     std::uint64_t wear_seed)
    : spec_(spec), rows_(rows), columns_(columns), noise_seed_(noise_seed) {
  require(rows > 0 && columns > 0, "CrossbarSubstrate: dimensions must be positive");
  devices_.resize(rows * columns);
  retired_.assign(columns, false);
  if (spec.wear_enabled()) {
    // Endurance limits are a property of each physical device, sampled
    // once here so they survive the model arrays that come and go.
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < columns; ++c) {
        Rng rng(combine(combine(wear_seed, r), c));
        devices_[r * columns + c].wear.endurance_limit =
            spec.endurance_sigma > 0.0
                ? rng.lognormal_rel(spec.endurance_cycles, spec.endurance_sigma)
                : spec.endurance_cycles;
      }
    }
  }
}

CrossbarSubstrate::Device& CrossbarSubstrate::device(std::size_t row, std::size_t column) {
  require(row < rows_ && column < columns_, "CrossbarSubstrate::device: out of range");
  return devices_[row * columns_ + column];
}

const CrossbarSubstrate::Device& CrossbarSubstrate::device(std::size_t row,
                                                           std::size_t column) const {
  require(row < rows_ && column < columns_, "CrossbarSubstrate::device: out of range");
  return devices_[row * columns_ + column];
}

Rng CrossbarSubstrate::write_stream(std::size_t row, std::size_t column, std::size_t level,
                                    std::uint64_t cycle) const {
  std::uint64_t z = combine(noise_seed_, row);
  z = combine(z, column);
  z = combine(z, level);
  z = combine(z, cycle);
  return Rng(z);
}

double CrossbarSubstrate::range_scale(std::size_t row, std::size_t column) const {
  if (spec_.d2d_sigma <= 0.0) {
    return 1.0;
  }
  Rng rng(combine(combine(combine(noise_seed_, 0xD2DULL), row), column));
  return rng.lognormal_rel(1.0, spec_.d2d_sigma);
}

void CrossbarSubstrate::retire_column(std::size_t column) {
  require(column < columns_, "CrossbarSubstrate::retire_column: out of range");
  if (!retired_[column]) {
    retired_[column] = true;
    ++retired_count_;
  }
}

bool CrossbarSubstrate::column_retired(std::size_t column) const {
  require(column < columns_, "CrossbarSubstrate::column_retired: out of range");
  return retired_[column];
}

std::vector<std::size_t> CrossbarSubstrate::allocate_columns(std::size_t count) const {
  require(count <= columns_,
          "CrossbarSubstrate::allocate_columns: more columns requested than exist");
  std::vector<std::size_t> out;
  out.reserve(count);
  for (std::size_t c = 0; c < columns_ && out.size() < count; ++c) {
    if (!retired_[c]) {
      out.push_back(c);
    }
  }
  // Spares exhausted: serve degraded on retired columns rather than not
  // at all. The engine counts these as unrepairable.
  for (std::size_t c = 0; c < columns_ && out.size() < count; ++c) {
    if (retired_[c]) {
      out.push_back(c);
    }
  }
  return out;
}

void CrossbarSubstrate::mark_failed(std::size_t row, std::size_t column,
                                    MemristorHealth health) {
  require(health != MemristorHealth::kHealthy,
          "CrossbarSubstrate::mark_failed: pass a failure state");
  Device& dev = device(row, column);
  dev.wear.health = health;
  dev.conductance = health == MemristorHealth::kStuckOpen ? spec_.stuck_open_conductance()
                                                          : spec_.stuck_short_conductance();
  dev.programmed = true;
}

std::uint64_t CrossbarSubstrate::total_write_cycles() const {
  std::uint64_t total = 0;
  for (const Device& dev : devices_) {
    total += dev.wear.write_cycles;
  }
  return total;
}

std::uint64_t CrossbarSubstrate::max_device_write_cycles() const {
  std::uint64_t worst = 0;
  for (const Device& dev : devices_) {
    worst = std::max(worst, dev.wear.write_cycles);
  }
  return worst;
}

std::size_t CrossbarSubstrate::worn_out_devices() const {
  std::size_t count = 0;
  for (const Device& dev : devices_) {
    count += dev.wear.health != MemristorHealth::kHealthy ? 1 : 0;
  }
  return count;
}

Energy CrossbarSubstrate::lifetime_write_energy(const CrossbarWriteCost& cost) const {
  return cost.device_write_energy(spec_) * static_cast<double>(total_write_cycles());
}

}  // namespace spinsim
