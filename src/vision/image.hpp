/// \file image.hpp
/// Grayscale image container and the reduction operations of the paper's
/// front end: normalisation, box down-sizing, uniform quantisation.
///
/// Pixels are doubles in [0, 1]; quantisation to b bits maps onto the
/// 2^b uniform levels used to program the crossbar.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/error.hpp"

namespace spinsim {

/// Row-major grayscale image with pixel values in [0, 1].
class Image {
 public:
  Image() = default;

  /// Creates a `height` x `width` image filled with `fill`.
  Image(std::size_t height, std::size_t width, double fill = 0.0);

  std::size_t height() const { return height_; }
  std::size_t width() const { return width_; }
  std::size_t pixel_count() const { return data_.size(); }

  double& at(std::size_t row, std::size_t col) {
    SPINSIM_ASSERT(row < height_ && col < width_, "Image::at: index out of range");
    return data_[row * width_ + col];
  }
  double at(std::size_t row, std::size_t col) const {
    SPINSIM_ASSERT(row < height_ && col < width_, "Image::at: index out of range");
    return data_[row * width_ + col];
  }

  const std::vector<double>& pixels() const { return data_; }
  std::vector<double>& pixels() { return data_; }

  /// Clamps every pixel to [0, 1].
  void clamp();

  /// Min-max normalisation to span [0, 1]. A constant image maps to 0.5.
  Image normalized() const;

  /// Photometric standardisation: shifts/scales pixels to the target mean
  /// and standard deviation, then clamps to [0, 1]. This is the
  /// "normalisation" step of the paper's feature extraction (Fig. 2):
  /// without it, raw dot-product matching is dominated by global
  /// brightness instead of facial structure. The defaults put ~1/3 of the
  /// dot product's dynamic range into the correlation term, which is what
  /// gives the crossbar the >4 % detection margins a 5-bit WTA needs.
  Image standardized(double target_mean = 0.36, double target_std = 0.32) const;

  /// Box-filter down-sizing to `new_height` x `new_width`; the source
  /// dimensions must be integer multiples of the target's.
  Image downsized(std::size_t new_height, std::size_t new_width) const;

  /// Uniform quantisation to 2^bits levels; returns the quantised image
  /// (values snapped to level centres k / (2^bits - 1)).
  Image quantized(unsigned bits) const;

  /// Digital pixel levels (0 .. 2^bits - 1) in row-major order.
  std::vector<std::uint32_t> levels(unsigned bits) const;

  /// Pixel-wise arithmetic mean of several equally sized images.
  static Image average(const std::vector<Image>& images);

  /// Mean pixel value.
  double mean() const;

  /// Root-mean-square difference against another image of equal size.
  double rms_difference(const Image& other) const;

 private:
  std::size_t height_ = 0;
  std::size_t width_ = 0;
  std::vector<double> data_;
};

}  // namespace spinsim
