/// \file features.hpp
/// Feature reduction: image -> analog feature vector -> stored template.
///
/// The paper's pipeline (Fig. 2): normalise, down-size 128x96 -> 16x8 by
/// box averaging, quantise to 5 bits. Templates are the pixel-wise average
/// of an individual's 10 reduced images, re-quantised to the memristor's
/// level grid.

#pragma once

#include <cstdint>
#include <vector>

#include "vision/dataset.hpp"
#include "vision/image.hpp"

namespace spinsim {

/// Feature-space geometry: target size and precision.
struct FeatureSpec {
  std::size_t height = 16;  ///< paper: 16 x 8 = 128 elements
  std::size_t width = 8;
  unsigned bits = 5;        ///< paper: 5-bit pixels

  std::size_t dimension() const { return height * width; }
  std::uint32_t levels() const { return 1u << bits; }
};

/// A reduced, quantised feature vector.
struct FeatureVector {
  FeatureSpec spec;
  std::vector<double> analog;          ///< values in [0, 1] on the level grid
  std::vector<std::uint32_t> digital;  ///< 0 .. 2^bits - 1

  std::size_t dimension() const { return analog.size(); }
};

/// Applies the paper's reduction to one image.
FeatureVector extract_features(const Image& image, const FeatureSpec& spec);

/// Knobs of the template-conditioning pipeline; defaults reproduce the
/// paper's operating point. The ablation benches switch the stages off
/// one by one to show what each buys (see bench/ablation_design_choices).
struct TemplateOptions {
  /// Photometric standardisation of the averaged template.
  bool standardize = true;
  /// Contrast rescale to a common analog L2 norm.
  bool norm_equalize = true;
  /// Post-quantisation write-verify trims (exact level sum and level
  /// norm) that remove correlated rounding bias.
  bool level_trim = true;
};

/// Builds one stored template per individual: average of all that
/// individual's reduced images, conditioned per `options`, quantised to
/// the feature grid.
std::vector<FeatureVector> build_templates(const FaceDataset& dataset, const FeatureSpec& spec,
                                           const TemplateOptions& options = {});

/// Ideal (software) correlation between a feature vector and a template:
/// the dot product of their analog values. This is the quantity the RCM
/// evaluates in the current domain.
double correlation(const FeatureVector& a, const FeatureVector& b);

/// Classifies `input` against `templates` by the highest ideal
/// correlation; returns the winning template index.
std::size_t classify_ideal(const FeatureVector& input, const std::vector<FeatureVector>& templates);

}  // namespace spinsim
