#include "vision/features.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "core/matrix.hpp"

namespace spinsim {

namespace {

/// Rescales pixel contrast around the mid-level so the vector's L2 norm
/// hits `target_norm` exactly (a few fixed-point iterations absorb the
/// clamping non-linearity). Equal-norm templates make the crossbar's dot
/// product rank patterns by correlation rather than by stored energy —
/// the hardware analogue is a per-column conductance scaling applied
/// while programming.
void equalize_norm(std::vector<double>& pixels, double target_mean, double target_norm) {
  const double base = target_mean;
  for (int iteration = 0; iteration < 6; ++iteration) {
    double mean = 0.0;
    for (double p : pixels) {
      mean += p;
    }
    mean /= static_cast<double>(pixels.size());
    double common = 0.0;
    double diff2 = 0.0;
    for (double p : pixels) {
      const double d = p - mean;
      diff2 += d * d;
    }
    common = static_cast<double>(pixels.size()) * mean * mean;
    if (diff2 <= 0.0) {
      return;  // constant image: nothing to scale
    }
    const double need = target_norm * target_norm - common;
    if (need <= 0.0) {
      return;  // target unreachable without breaking the mean
    }
    const double s = std::sqrt(need / diff2);
    for (double& p : pixels) {
      // Recentre on mid-level and scale the contrast.
      p = std::clamp(base + (p - mean) * s, 0.0, 1.0);
    }
    double norm2_now = 0.0;
    for (double p : pixels) {
      norm2_now += p * p;
    }
    if (std::abs(std::sqrt(norm2_now) - target_norm) < 1e-4 * target_norm) {
      return;
    }
  }
}

/// Post-quantisation trim: nudges individual pixels by one level so the
/// template's total digital level sum hits `target_sum` exactly. Facial
/// images are bimodal, so per-pixel rounding errors correlate and can
/// shift a template's mean by ~1 % — enough to bias the crossbar's
/// common-mode dot-product term. The hardware analogue is the standard
/// write-verify trim loop of multi-level memristor programming. Pixels
/// whose pre-quantisation residual already leaned the right way are
/// nudged first, so the trim *reduces* total quantisation error.
void trim_level_sum(std::vector<std::uint32_t>& levels, const std::vector<double>& analog_target,
                    std::uint32_t top, long target_sum) {
  long sum = 0;
  for (auto v : levels) {
    sum += v;
  }
  long diff = target_sum - sum;  // +: need increments, -: decrements
  if (diff == 0) {
    return;
  }
  const int step = diff > 0 ? 1 : -1;
  // Residual = desired analog value minus realised level (in level units);
  // adjust the pixels with the largest residual in the needed direction.
  std::vector<std::pair<double, std::size_t>> order;
  order.reserve(levels.size());
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const double residual =
        analog_target[i] * static_cast<double>(top) - static_cast<double>(levels[i]);
    order.emplace_back(static_cast<double>(step) * residual, i);
  }
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [score, idx] : order) {
    if (diff == 0) {
      break;
    }
    const long next = static_cast<long>(levels[idx]) + step;
    if (next < 0 || next > static_cast<long>(top)) {
      continue;
    }
    levels[idx] = static_cast<std::uint32_t>(next);
    diff -= step;
  }
}

/// Second trim pass: sum-preserving level swaps (+1 on one pixel, -1 on
/// another) steer the template's squared level norm to `target_norm2`.
/// A swap raising pixel at level a and lowering one at level b changes
/// sum(l^2) by 2(a - b) + 2 while leaving sum(l) unchanged, so both the
/// common-mode and the stored-energy terms of the crossbar dot product
/// end up identical across templates.
void trim_level_norm(std::vector<std::uint32_t>& levels, std::uint32_t top, long target_norm2) {
  // Bucket the pixels by level once; every swap moves one pixel between
  // buckets, so the per-iteration search is O(levels^2), independent of
  // the vector length.
  std::vector<std::vector<std::size_t>> bucket(top + 1);
  long norm2 = 0;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    bucket[levels[i]].push_back(i);
    norm2 += static_cast<long>(levels[i]) * static_cast<long>(levels[i]);
  }

  const long max_iterations = static_cast<long>(levels.size()) * 4 + 64;
  for (long iteration = 0; iteration < max_iterations; ++iteration) {
    const long diff = target_norm2 - norm2;
    if (std::abs(diff) <= 2) {
      return;
    }
    // Find the level pair (a raised, b lowered) whose delta
    // 2(a - b) + 2 best approaches diff without overshooting.
    long best_delta = 0;
    int best_a = -1;
    int best_b = -1;
    for (std::uint32_t a = 0; a < top; ++a) {
      if (bucket[a].empty()) {
        continue;
      }
      for (std::uint32_t b = 1; b <= top; ++b) {
        if (bucket[b].empty() || (a == b && bucket[a].size() < 2)) {
          continue;
        }
        const long delta = 2 * (static_cast<long>(a) - static_cast<long>(b)) + 2;
        if (delta == 0 || ((delta > 0) != (diff > 0))) {
          continue;
        }
        if (std::abs(delta) <= std::abs(diff) + 2 &&
            std::abs(diff - delta) < std::abs(diff - best_delta)) {
          best_delta = delta;
          best_a = static_cast<int>(a);
          best_b = static_cast<int>(b);
        }
      }
    }
    if (best_a < 0 || best_delta == 0) {
      return;  // no productive swap available
    }
    // Raise one pixel from level best_a, lower one from level best_b.
    const std::size_t p = bucket[static_cast<std::size_t>(best_a)].back();
    bucket[static_cast<std::size_t>(best_a)].pop_back();
    ++levels[p];
    bucket[levels[p]].push_back(p);
    const std::size_t q = bucket[static_cast<std::size_t>(best_b)].back();
    bucket[static_cast<std::size_t>(best_b)].pop_back();
    --levels[q];
    bucket[levels[q]].push_back(q);
    norm2 += best_delta;
  }
}

}  // namespace

FeatureVector extract_features(const Image& image, const FeatureSpec& spec) {
  require(spec.height > 0 && spec.width > 0, "extract_features: bad feature spec");
  // Normalise (photometric standardisation), down-size, quantise — the
  // paper's Fig. 2 pipeline. Standardisation keeps the dot-product
  // correlation sensitive to facial structure, not global brightness.
  const Image reduced =
      image.downsized(spec.height, spec.width).standardized().quantized(spec.bits);
  FeatureVector out;
  out.spec = spec;
  out.analog = reduced.pixels();
  out.digital = reduced.levels(spec.bits);
  return out;
}

std::vector<FeatureVector> build_templates(const FaceDataset& dataset, const FeatureSpec& spec,
                                           const TemplateOptions& options) {
  std::vector<FeatureVector> templates;
  templates.reserve(dataset.individuals());
  for (std::size_t person = 0; person < dataset.individuals(); ++person) {
    // Reduce each variant first, then average in feature space — matches
    // the paper's "pixel wise average of the 10 reduced images".
    std::vector<Image> reduced;
    reduced.reserve(dataset.variants_per_individual());
    for (std::size_t v = 0; v < dataset.variants_per_individual(); ++v) {
      const Image down = dataset.image(person, v).downsized(spec.height, spec.width);
      reduced.push_back(options.standardize ? down.standardized() : down.normalized());
    }
    // Re-standardise the average (averaging shrinks contrast) and pin the
    // stored energy exactly: with equal-norm templates the crossbar's dot
    // product ranks patterns by correlation, not by stored brightness.
    // Statistics targets must match Image::standardized's defaults.
    constexpr double kMean = 0.36;
    constexpr double kStd = 0.32;
    Image mean_image = Image::average(reduced);
    if (options.standardize) {
      mean_image = mean_image.standardized();
    }
    const double n = static_cast<double>(spec.dimension());
    if (options.norm_equalize) {
      const double target_norm = std::sqrt(n * (kMean * kMean + kStd * kStd));
      equalize_norm(mean_image.pixels(), kMean, target_norm);
    }

    FeatureVector t;
    t.spec = spec;
    t.digital = mean_image.levels(spec.bits);
    const std::uint32_t top = (1u << spec.bits) - 1;
    const double top_d = static_cast<double>(top);
    if (options.level_trim) {
      const long target_sum = std::lround(kMean * top_d * n);
      trim_level_sum(t.digital, mean_image.pixels(), top, target_sum);
      const long target_norm2 =
          std::lround(n * (kMean * kMean + kStd * kStd) * top_d * top_d);
      trim_level_norm(t.digital, top, target_norm2);
    }
    t.analog.resize(t.digital.size());
    for (std::size_t i = 0; i < t.digital.size(); ++i) {
      t.analog[i] = static_cast<double>(t.digital[i]) / static_cast<double>(top);
    }
    templates.push_back(std::move(t));
  }
  return templates;
}

double correlation(const FeatureVector& a, const FeatureVector& b) {
  require(a.dimension() == b.dimension(), "correlation: dimension mismatch");
  return dot(a.analog, b.analog);
}

std::size_t classify_ideal(const FeatureVector& input,
                           const std::vector<FeatureVector>& templates) {
  require(!templates.empty(), "classify_ideal: no templates");
  std::vector<double> scores;
  scores.reserve(templates.size());
  for (const auto& t : templates) {
    scores.push_back(correlation(input, t));
  }
  return argmax(scores);
}

}  // namespace spinsim
