/// \file dataset.hpp
/// The 40-individual / 10-variant face dataset used by every experiment.

#pragma once

#include <cstddef>
#include <vector>

#include "vision/face_generator.hpp"
#include "vision/image.hpp"

namespace spinsim {

/// A labelled face image.
struct LabelledImage {
  std::size_t individual = 0;
  std::size_t variant = 0;
  Image image;
};

/// Materialised dataset: `individuals` x `variants_per_individual` images.
class FaceDataset {
 public:
  /// Generates the full dataset (paper: 40 x 10 = 400 images).
  FaceDataset(std::size_t individuals, std::size_t variants_per_individual,
              const FaceGeneratorConfig& config = {});

  std::size_t individuals() const { return individuals_; }
  std::size_t variants_per_individual() const { return variants_; }
  std::size_t size() const { return images_.size(); }

  /// Image of (individual, variant).
  const Image& image(std::size_t individual, std::size_t variant) const;

  /// All images of one individual, in variant order.
  std::vector<Image> images_of(std::size_t individual) const;

  /// Flat view of all labelled images (individual-major order).
  const std::vector<LabelledImage>& all() const { return images_; }

  /// The paper's standard dataset: 40 individuals, 10 variants, 128x96.
  static FaceDataset paper_dataset();

 private:
  std::size_t individuals_;
  std::size_t variants_;
  std::vector<LabelledImage> images_;
};

}  // namespace spinsim
