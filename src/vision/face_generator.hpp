/// \file face_generator.hpp
/// Deterministic synthetic face-image generator.
///
/// Substitute for the ATT (ORL) Cambridge face database the paper uses
/// (40 individuals x 10 images; see DESIGN.md for the substitution
/// rationale). Each *individual* is a parametric face — head oval, hair
/// line, eyes, brows, nose, mouth, skin tone — drawn from an
/// individual-seeded RNG; each *variant* perturbs pose (translation),
/// illumination (level + gradient), expression (mouth/eye jitter) and adds
/// sensor noise, mimicking the intra-class spread of real capture
/// sessions. Everything is a pure function of (seed, individual, variant).

#pragma once

#include <cstdint>

#include "core/random.hpp"
#include "vision/image.hpp"

namespace spinsim {

/// Tunables of the synthetic face distribution.
struct FaceGeneratorConfig {
  std::size_t image_height = 128;  ///< paper: 128 x 96, 8-bit
  std::size_t image_width = 96;
  std::uint64_t seed = 2013;       ///< dataset master seed

  // Intra-class (variant) spreads. Raising these makes recognition harder;
  // defaults are tuned so the accuracy-vs-downsizing knee sits at the
  // paper's operating point (16x8, 5-bit) — see DESIGN.md.
  double max_shift_fraction = 0.02;      ///< translation, fraction of size
  double illumination_spread = 0.10;     ///< +/- relative brightness
  double gradient_spread = 0.08;         ///< lighting gradient amplitude
  double expression_jitter = 0.012;      ///< feature-position jitter
  double pixel_noise_sigma = 0.015;      ///< additive Gaussian noise
};

/// Generates synthetic face images.
class FaceGenerator {
 public:
  explicit FaceGenerator(const FaceGeneratorConfig& config = {});

  const FaceGeneratorConfig& config() const { return config_; }

  /// Renders variant `variant` of individual `individual`. Deterministic:
  /// the same triple (config.seed, individual, variant) always yields the
  /// same image.
  Image generate(std::size_t individual, std::size_t variant) const;

 private:
  /// Identity-defining parameters (drawn once per individual). The wide
  /// ranges and discrete attributes (beard, glasses, hair style) keep the
  /// 40 classes mutually decorrelated enough that best-vs-second-best
  /// detection margins exceed the paper's 4 % WTA resolution requirement.
  struct FaceIdentity {
    double head_cx, head_cy;     // head centre (normalised coords)
    double head_rx, head_ry;     // head half-axes
    double skin_tone;            // base brightness of the face
    double hair_line;            // top-of-forehead y
    double hair_tone;            // hair darkness
    double hair_side;            // asymmetry of the hair line (-1..1)
    double eye_y, eye_dx;        // eye row and half-separation
    double eye_size, eye_tone;
    double brow_offset, brow_tone;
    double nose_len, nose_width, nose_tone;
    double mouth_y, mouth_w, mouth_tone;
    double jaw_taper;            // lower-face narrowing
    bool beard;                  // dark lower-face region
    double beard_tone;
    bool glasses;                // dark rings + bridge around the eyes
    double cheek_shade;          // lateral shading strength

    // Identity-stable low-frequency relief: random signed Gaussian blobs
    // modulating the face region. This is what decorrelates different
    // individuals the way skin texture / bone structure does in real
    // photographs.
    static constexpr std::size_t kTextureBlobs = 8;
    double tex_x[kTextureBlobs];
    double tex_y[kTextureBlobs];
    double tex_amp[kTextureBlobs];
    double tex_size[kTextureBlobs];
  };

  FaceIdentity identity_for(std::size_t individual) const;

  FaceGeneratorConfig config_;
};

}  // namespace spinsim
