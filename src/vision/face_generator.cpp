#include "vision/face_generator.hpp"

#include <algorithm>
#include <cmath>

namespace spinsim {

namespace {

/// Smooth bump: 1 inside, falls off over `soft` beyond the unit radius.
double soft_ellipse(double x, double y, double cx, double cy, double rx, double ry, double soft) {
  const double dx = (x - cx) / rx;
  const double dy = (y - cy) / ry;
  const double r = std::sqrt(dx * dx + dy * dy);
  if (r <= 1.0) {
    return 1.0;
  }
  const double t = (r - 1.0) / soft;
  return t >= 1.0 ? 0.0 : 0.5 * (1.0 + std::cos(3.14159265358979323846 * t));
}

/// Anisotropic Gaussian blob.
double blob(double x, double y, double cx, double cy, double sx, double sy) {
  const double dx = (x - cx) / sx;
  const double dy = (y - cy) / sy;
  return std::exp(-0.5 * (dx * dx + dy * dy));
}

}  // namespace

FaceGenerator::FaceGenerator(const FaceGeneratorConfig& config) : config_(config) {
  require(config.image_height >= 16 && config.image_width >= 8,
          "FaceGenerator: image too small for the face model");
}

FaceGenerator::FaceIdentity FaceGenerator::identity_for(std::size_t individual) const {
  // One fork per individual, independent of variant draws.
  Rng rng(config_.seed * 0x9E3779B97F4A7C15ULL + individual * 0xD1B54A32D192ED03ULL + 1);

  FaceIdentity id{};
  id.head_cx = rng.uniform(0.44, 0.56);
  id.head_cy = rng.uniform(0.44, 0.56);
  id.head_rx = rng.uniform(0.26, 0.42);
  id.head_ry = rng.uniform(0.34, 0.50);
  id.skin_tone = rng.uniform(0.50, 0.90);
  id.hair_line = rng.uniform(0.12, 0.36);
  id.hair_tone = rng.uniform(0.02, 0.40);
  id.hair_side = rng.uniform(-1.0, 1.0);
  id.eye_y = rng.uniform(0.36, 0.48);
  id.eye_dx = rng.uniform(0.09, 0.19);
  id.eye_size = rng.uniform(0.018, 0.048);
  id.eye_tone = rng.uniform(0.02, 0.28);
  id.brow_offset = rng.uniform(0.04, 0.10);
  id.brow_tone = rng.uniform(0.05, 0.45);
  id.nose_len = rng.uniform(0.08, 0.20);
  id.nose_width = rng.uniform(0.012, 0.042);
  id.nose_tone = rng.uniform(-0.22, 0.15);  // relative to skin
  id.mouth_y = rng.uniform(0.64, 0.78);
  id.mouth_w = rng.uniform(0.06, 0.15);
  id.mouth_tone = rng.uniform(0.05, 0.40);
  id.jaw_taper = rng.uniform(0.0, 0.45);
  id.beard = rng.bernoulli(0.35);
  id.beard_tone = rng.uniform(0.10, 0.35);
  id.glasses = rng.bernoulli(0.3);
  id.cheek_shade = rng.uniform(0.0, 0.25);
  for (std::size_t k = 0; k < FaceIdentity::kTextureBlobs; ++k) {
    id.tex_x[k] = rng.uniform(0.2, 0.8);
    id.tex_y[k] = rng.uniform(0.2, 0.85);
    id.tex_amp[k] = rng.uniform(-0.22, 0.22);
    id.tex_size[k] = rng.uniform(0.05, 0.16);
  }
  return id;
}

Image FaceGenerator::generate(std::size_t individual, std::size_t variant) const {
  const FaceIdentity id = identity_for(individual);

  // Variant stream: seeded by (dataset, individual, variant).
  Rng rng(config_.seed * 0x2545F4914F6CDD1DULL + individual * 0x9E3779B97F4A7C15ULL +
          variant * 0xBF58476D1CE4E5B9ULL + 7);

  const double shift_x = rng.uniform(-config_.max_shift_fraction, config_.max_shift_fraction);
  const double shift_y = rng.uniform(-config_.max_shift_fraction, config_.max_shift_fraction);
  const double illum = 1.0 + rng.uniform(-config_.illumination_spread, config_.illumination_spread);
  const double grad_x = rng.uniform(-config_.gradient_spread, config_.gradient_spread);
  const double grad_y = rng.uniform(-config_.gradient_spread, config_.gradient_spread);
  const double jitter_eye = rng.normal(0.0, config_.expression_jitter);
  const double jitter_mouth = rng.normal(0.0, config_.expression_jitter);
  const double mouth_open = rng.uniform(0.8, 1.6);  // expression: mouth thickness

  const std::size_t h = config_.image_height;
  const std::size_t w = config_.image_width;
  Image img(h, w);

  for (std::size_t r = 0; r < h; ++r) {
    for (std::size_t c = 0; c < w; ++c) {
      // Normalised canvas coordinates with the pose shift applied.
      const double y = static_cast<double>(r) / static_cast<double>(h - 1) - shift_y;
      const double x = static_cast<double>(c) / static_cast<double>(w - 1) - shift_x;

      double v = 0.18;  // background

      // Head with a taper toward the jaw.
      const double taper = 1.0 - id.jaw_taper * std::max(0.0, y - id.head_cy);
      const double head = soft_ellipse(x, y, id.head_cx, id.head_cy, id.head_rx * taper,
                                       id.head_ry, 0.10);
      v = v * (1.0 - head) + id.skin_tone * head;

      if (head > 0.0) {
        // Hair: everything above the (slanted) hair line inside the head.
        const double hair_line_here = id.hair_line + 0.08 * id.hair_side * (x - id.head_cx);
        if (y < hair_line_here) {
          const double hair_mix = std::min(1.0, (hair_line_here - y) / 0.05);
          v = v * (1.0 - hair_mix * head) + id.hair_tone * hair_mix * head;
        }

        // Lateral cheek shading (face relief).
        v -= id.cheek_shade * head * std::abs(x - id.head_cx) / id.head_rx * 0.5;

        // Identity-stable texture relief.
        for (std::size_t k = 0; k < FaceIdentity::kTextureBlobs; ++k) {
          v += id.tex_amp[k] * head *
               blob(x, y, id.tex_x[k], id.tex_y[k], id.tex_size[k], id.tex_size[k]);
        }

        const double eye_y = id.eye_y + jitter_eye;
        // Eyes (dark blobs) and brows (dark bars above them).
        for (const double sgn : {-1.0, 1.0}) {
          const double ex = id.head_cx + sgn * id.eye_dx;
          const double e = blob(x, y, ex, eye_y, id.eye_size, id.eye_size * 0.7);
          v = v * (1.0 - e) + id.eye_tone * e;
          const double b =
              blob(x, y, ex, eye_y - id.brow_offset, id.eye_size * 1.7, id.eye_size * 0.35);
          v = v * (1.0 - 0.8 * b) + id.brow_tone * 0.8 * b;

          if (id.glasses) {
            // Dark ring around each eye.
            const double rim = std::sqrt((x - ex) * (x - ex) + (y - eye_y) * (y - eye_y));
            const double ring = std::exp(-0.5 * std::pow((rim - 2.2 * id.eye_size) /
                                                         (0.5 * id.eye_size), 2.0));
            v = v * (1.0 - 0.6 * ring) + 0.1 * 0.6 * ring;
          }
        }
        if (id.glasses) {
          // Bridge between the lenses.
          const double bridge = blob(x, y, id.head_cx, eye_y, id.eye_dx * 0.6, 0.006);
          v = v * (1.0 - 0.5 * bridge) + 0.1 * 0.5 * bridge;
        }

        // Nose: vertical ridge from between the eyes.
        const double nose_cy = eye_y + 0.5 * id.nose_len;
        const double n = blob(x, y, id.head_cx, nose_cy, id.nose_width, 0.5 * id.nose_len);
        const double nose_v = std::clamp(id.skin_tone + id.nose_tone, 0.0, 1.0);
        v = v * (1.0 - 0.7 * n) + nose_v * 0.7 * n;

        // Mouth: horizontal bar, thickness modulated by expression.
        const double mouth_y = id.mouth_y + jitter_mouth;
        const double m = blob(x, y, id.head_cx, mouth_y, id.mouth_w, 0.012 * mouth_open);
        v = v * (1.0 - m) + id.mouth_tone * m;

        if (id.beard) {
          // Beard: darkens the lower face below the mouth line.
          const double beard_mix =
              head * std::clamp((y - (mouth_y - 0.02)) / 0.06, 0.0, 1.0);
          v = v * (1.0 - 0.7 * beard_mix) + id.beard_tone * 0.7 * beard_mix;
        }
      }

      // Illumination: global level + linear gradient.
      v *= illum * (1.0 + grad_x * (x - 0.5) + grad_y * (y - 0.5));

      // Sensor noise.
      v += rng.normal(0.0, config_.pixel_noise_sigma);

      img.at(r, c) = v;
    }
  }
  img.clamp();
  return img;
}

}  // namespace spinsim
