#include "vision/image.hpp"

#include <algorithm>
#include <cmath>

namespace spinsim {

Image::Image(std::size_t height, std::size_t width, double fill)
    : height_(height), width_(width), data_(height * width, fill) {
  require(height > 0 && width > 0, "Image: dimensions must be positive");
}

void Image::clamp() {
  for (auto& p : data_) {
    p = std::clamp(p, 0.0, 1.0);
  }
}

Image Image::normalized() const {
  require(!data_.empty(), "Image::normalized: empty image");
  const auto [lo_it, hi_it] = std::minmax_element(data_.begin(), data_.end());
  const double lo = *lo_it;
  const double hi = *hi_it;
  Image out(height_, width_);
  if (hi <= lo) {
    std::fill(out.data_.begin(), out.data_.end(), 0.5);
    return out;
  }
  const double inv = 1.0 / (hi - lo);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = (data_[i] - lo) * inv;
  }
  return out;
}

Image Image::standardized(double target_mean, double target_std) const {
  require(!data_.empty(), "Image::standardized: empty image");
  require(target_std >= 0.0, "Image::standardized: target std must be non-negative");
  const double m = mean();
  double var = 0.0;
  for (double p : data_) {
    var += (p - m) * (p - m);
  }
  const double sd = std::sqrt(var / static_cast<double>(data_.size()));
  Image out(height_, width_);
  const double scale = sd > 1e-12 ? target_std / sd : 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = std::clamp(target_mean + (data_[i] - m) * scale, 0.0, 1.0);
  }
  return out;
}

Image Image::downsized(std::size_t new_height, std::size_t new_width) const {
  require(new_height > 0 && new_width > 0, "Image::downsized: target dimensions must be positive");
  require(height_ % new_height == 0 && width_ % new_width == 0,
          "Image::downsized: source must be an integer multiple of the target");
  const std::size_t block_h = height_ / new_height;
  const std::size_t block_w = width_ / new_width;
  const double inv_count = 1.0 / static_cast<double>(block_h * block_w);

  Image out(new_height, new_width);
  for (std::size_t r = 0; r < new_height; ++r) {
    for (std::size_t c = 0; c < new_width; ++c) {
      double acc = 0.0;
      for (std::size_t dr = 0; dr < block_h; ++dr) {
        for (std::size_t dc = 0; dc < block_w; ++dc) {
          acc += at(r * block_h + dr, c * block_w + dc);
        }
      }
      out.at(r, c) = acc * inv_count;
    }
  }
  return out;
}

Image Image::quantized(unsigned bits) const {
  require(bits >= 1 && bits <= 16, "Image::quantized: bits must be in [1, 16]");
  const double top = static_cast<double>((1u << bits) - 1);
  Image out(height_, width_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const double clamped = std::clamp(data_[i], 0.0, 1.0);
    out.data_[i] = std::round(clamped * top) / top;
  }
  return out;
}

std::vector<std::uint32_t> Image::levels(unsigned bits) const {
  require(bits >= 1 && bits <= 16, "Image::levels: bits must be in [1, 16]");
  const double top = static_cast<double>((1u << bits) - 1);
  std::vector<std::uint32_t> out(data_.size());
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const double clamped = std::clamp(data_[i], 0.0, 1.0);
    out[i] = static_cast<std::uint32_t>(std::lround(clamped * top));
  }
  return out;
}

Image Image::average(const std::vector<Image>& images) {
  require(!images.empty(), "Image::average: need at least one image");
  const std::size_t h = images.front().height();
  const std::size_t w = images.front().width();
  Image out(h, w);
  for (const auto& img : images) {
    require(img.height() == h && img.width() == w, "Image::average: size mismatch");
    for (std::size_t i = 0; i < out.data_.size(); ++i) {
      out.data_[i] += img.data_[i];
    }
  }
  const double inv = 1.0 / static_cast<double>(images.size());
  for (auto& p : out.data_) {
    p *= inv;
  }
  return out;
}

double Image::mean() const {
  require(!data_.empty(), "Image::mean: empty image");
  double acc = 0.0;
  for (double p : data_) {
    acc += p;
  }
  return acc / static_cast<double>(data_.size());
}

double Image::rms_difference(const Image& other) const {
  require(height_ == other.height_ && width_ == other.width_,
          "Image::rms_difference: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const double d = data_[i] - other.data_[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(data_.size()));
}

}  // namespace spinsim
