#include "vision/pgm_io.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>

#include "core/error.hpp"

namespace spinsim {

void write_pgm(const Image& image, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw ModelError("write_pgm: cannot open '" + path + "' for writing");
  }
  out << "P5\n" << image.width() << " " << image.height() << "\n255\n";
  for (std::size_t r = 0; r < image.height(); ++r) {
    for (std::size_t c = 0; c < image.width(); ++c) {
      const double v = std::clamp(image.at(r, c), 0.0, 1.0);
      const auto byte = static_cast<unsigned char>(std::lround(v * 255.0));
      out.put(static_cast<char>(byte));
    }
  }
  if (!out) {
    throw ModelError("write_pgm: write to '" + path + "' failed");
  }
}

namespace {

/// Reads the next whitespace-delimited token, skipping '#' comments.
std::string next_token(std::istream& in) {
  std::string token;
  while (in) {
    const int ch = in.peek();
    if (ch == '#') {
      std::string comment;
      std::getline(in, comment);
      continue;
    }
    if (std::isspace(ch)) {
      in.get();
      continue;
    }
    break;
  }
  in >> token;
  return token;
}

}  // namespace

Image read_pgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw ModelError("read_pgm: cannot open '" + path + "'");
  }
  if (next_token(in) != "P5") {
    throw ModelError("read_pgm: '" + path + "' is not a binary PGM (P5)");
  }
  std::size_t width = 0;
  std::size_t height = 0;
  int maxval = 0;
  try {
    width = std::stoul(next_token(in));
    height = std::stoul(next_token(in));
    maxval = std::stoi(next_token(in));
  } catch (const std::exception&) {
    throw ModelError("read_pgm: malformed header in '" + path + "'");
  }
  if (width == 0 || height == 0 || maxval <= 0 || maxval > 255) {
    throw ModelError("read_pgm: unsupported geometry/depth in '" + path + "'");
  }
  in.get();  // single whitespace after maxval

  Image image(height, width);
  std::vector<char> row(width);
  for (std::size_t r = 0; r < height; ++r) {
    in.read(row.data(), static_cast<std::streamsize>(width));
    if (!in) {
      throw ModelError("read_pgm: truncated pixel data in '" + path + "'");
    }
    for (std::size_t c = 0; c < width; ++c) {
      image.at(r, c) =
          static_cast<double>(static_cast<unsigned char>(row[c])) / static_cast<double>(maxval);
    }
  }
  return image;
}

}  // namespace spinsim
