/// \file pgm_io.hpp
/// Binary PGM (P5) image input/output.
///
/// Lets users export the synthetic faces for inspection and, more
/// importantly, feed *real* grayscale datasets (e.g. the actual ATT/ORL
/// files, which ship as PGM) through the exact pipeline of this
/// reproduction.

#pragma once

#include <string>

#include "vision/image.hpp"

namespace spinsim {

/// Writes `image` as an 8-bit binary PGM (P5). Throws ModelError on I/O
/// failure.
void write_pgm(const Image& image, const std::string& path);

/// Reads an 8-bit binary PGM (P5) into an Image with pixels in [0, 1].
/// Throws ModelError on malformed input or I/O failure.
Image read_pgm(const std::string& path);

}  // namespace spinsim
