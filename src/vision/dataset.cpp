#include "vision/dataset.hpp"

#include "core/error.hpp"

namespace spinsim {

FaceDataset::FaceDataset(std::size_t individuals, std::size_t variants_per_individual,
                         const FaceGeneratorConfig& config)
    : individuals_(individuals), variants_(variants_per_individual) {
  require(individuals > 0 && variants_per_individual > 0,
          "FaceDataset: need at least one individual and one variant");
  const FaceGenerator generator(config);
  images_.reserve(individuals * variants_per_individual);
  for (std::size_t person = 0; person < individuals; ++person) {
    for (std::size_t variant = 0; variant < variants_per_individual; ++variant) {
      images_.push_back({person, variant, generator.generate(person, variant)});
    }
  }
}

const Image& FaceDataset::image(std::size_t individual, std::size_t variant) const {
  require(individual < individuals_ && variant < variants_, "FaceDataset::image: out of range");
  return images_[individual * variants_ + variant].image;
}

std::vector<Image> FaceDataset::images_of(std::size_t individual) const {
  require(individual < individuals_, "FaceDataset::images_of: out of range");
  std::vector<Image> out;
  out.reserve(variants_);
  for (std::size_t v = 0; v < variants_; ++v) {
    out.push_back(image(individual, v));
  }
  return out;
}

FaceDataset FaceDataset::paper_dataset() { return FaceDataset(40, 10, FaceGeneratorConfig{}); }

}  // namespace spinsim
