/// \file engine.hpp
/// The unified associative-memory API.
///
/// The paper's pitch is one associative-memory *function* realised by
/// interchangeable substrates: the spin-neuron RCM (SpinAmm), the
/// MS-CMOS RCM baseline (MsCmosAmm), the digital ASIC baseline
/// (DigitalAmm), and the hierarchically clustered extension
/// (HierarchicalAmm). `AssociativeEngine` is that function as a C++
/// interface: store a template set, recognise inputs one at a time or in
/// batches, and report the design point's power. Every backend fills the
/// same `Recognition` result; substrate-specific extras (column currents,
/// integer score vectors, routing decisions) travel in a tagged detail
/// variant so generic callers never pay for fields they do not use.
///
/// The service layer (src/service/) builds exclusively on this interface,
/// which is what lets one `RecognitionService` shard a template set
/// across replicas of *any* backend.

#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "energy/power_report.hpp"
#include "vision/features.hpp"
#include "wta/spin_sar_wta.hpp"

namespace spinsim {

/// Spin-CMOS extras: the analog front end's column currents and the full
/// WTA outcome (all DOM codes, tracking state, activity counters).
struct SpinRecognitionDetail {
  std::vector<double> column_currents;
  SpinWtaOutcome wta;
};

/// MS-CMOS extras: the (mismatch-corrupted) current the tree root saw.
struct MsCmosRecognitionDetail {
  double winning_current = 0.0;  ///< corrupted winner current at the root [A]
};

/// Digital extras: the bit-exact integer dot products.
struct DigitalRecognitionDetail {
  std::uint64_t score = 0;            ///< integer dot product of the winner
  std::vector<std::uint64_t> scores;  ///< all integer dot products
};

/// Hierarchical extras: the routing decision.
struct HierarchicalRecognitionDetail {
  std::size_t cluster = 0;       ///< router decision (engine-local index)
  std::uint32_t router_dom = 0;  ///< centroid degree of match
  /// Best centroid DOM outside the chosen cluster; the router score gap
  /// (router_dom - router_runner_up_dom) / router_dom caps the reported
  /// margin, because the global runner-up template may live in another
  /// cluster than the one the leaf search visited.
  std::uint32_t router_runner_up_dom = 0;
};

/// Tiered extras: which tier served the answer and what the cheap tier
/// reported before any escalation decision.
struct TieredRecognitionDetail {
  std::size_t tier = 0;        ///< 0 = cheap tier answered, 1 = escalated
  double tier0_margin = 0.0;   ///< margin the tier-0 engine reported
  std::uint32_t tier0_dom = 0;
  bool tier0_accepted = true;
};

/// Backend-specific payload of one recognition.
using RecognitionDetail =
    std::variant<std::monostate, SpinRecognitionDetail, MsCmosRecognitionDetail,
                 DigitalRecognitionDetail, HierarchicalRecognitionDetail,
                 TieredRecognitionDetail>;

/// The unified result of one recognition, produced by every backend.
struct Recognition {
  std::size_t winner = 0;  ///< stored-template index of the best match
  bool unique = true;      ///< winner decided without a tie
  /// Backend-native match score: the quantised DOM for the spin designs,
  /// the integer dot product for the digital ASIC, the root current (as a
  /// fraction of full scale) for the MS-CMOS tree. Scores are comparable
  /// *across identically configured engines* — the contract the service's
  /// shard merge relies on — not across different backends.
  double score = 0.0;
  std::uint32_t dom = 0;  ///< degree of match where the backend has one
  /// (best - runner-up) / full scale at the analog stage. Contract (the
  /// randomized conformance suite asserts it for every backend): never
  /// negative, and exactly zero when the winning score is non-positive.
  double margin = 0.0;
  /// dom >= the engine's accept threshold *and* the winner was unique —
  /// accepted implies unique, so escalation/merge can trust it.
  bool accepted = true;
  /// Fraction of the stored template set this answer actually searched.
  /// 1.0 everywhere except a RecognitionService merge that had to skip
  /// ejected/stuck shards: a best-effort answer over the surviving
  /// shards reports the surviving fraction, so the client knows the
  /// winner was only best among `coverage` of the templates.
  double coverage = 1.0;
  /// True when the answer was served in brown-out mode (the overload
  /// controller forced tier-0-only serving to protect the latency SLO):
  /// a valid answer, but from the cheap tier regardless of confidence.
  bool degraded = false;
  RecognitionDetail detail;

  /// Typed accessors: non-null when the detail holds that backend's extras.
  const SpinRecognitionDetail* spin() const { return std::get_if<SpinRecognitionDetail>(&detail); }
  const MsCmosRecognitionDetail* mscmos() const {
    return std::get_if<MsCmosRecognitionDetail>(&detail);
  }
  const DigitalRecognitionDetail* digital() const {
    return std::get_if<DigitalRecognitionDetail>(&detail);
  }
  const HierarchicalRecognitionDetail* hierarchical() const {
    return std::get_if<HierarchicalRecognitionDetail>(&detail);
  }
  const TieredRecognitionDetail* tiered() const {
    return std::get_if<TieredRecognitionDetail>(&detail);
  }
};

/// One associative-memory module, whatever its substrate.
///
/// Lifecycle: construct -> store_templates() once -> recognise. Engines
/// are NOT thread-safe; concurrent queries belong either to an engine's
/// own recognize_batch() (which parallelises internally where the physics
/// allows) or to a RecognitionService, which serialises access per shard.
class AssociativeEngine {
 public:
  virtual ~AssociativeEngine();

  /// Human-readable backend identifier ("spin", "mscmos", ...).
  virtual std::string name() const = 0;

  /// Stored patterns this engine was sized for.
  virtual std::size_t template_count() const = 0;

  /// Programs the stored templates. Must be called before recognition.
  virtual void store_templates(const std::vector<FeatureVector>& templates) = 0;

  /// Recognises one input.
  virtual Recognition recognize(const FeatureVector& input) = 0;

  /// Batched recognition: results[i] corresponds to inputs[i] and is
  /// winner-for-winner identical to calling recognize() on each input in
  /// order. `threads` == 0 picks hardware concurrency; backends fall back
  /// to a serial schedule where shared state forbids fan-out.
  virtual std::vector<Recognition> recognize_batch(const std::vector<FeatureVector>& inputs,
                                                   std::size_t threads = 0) = 0;

  /// Analytic power of this design point.
  virtual PowerReport power() const = 0;

  /// Estimated energy one recognition costs on this design point:
  /// power() over the design's recognition rate (an M-cycle WTA search for
  /// the spin designs, `templates` MAC cycles for the digital ASIC, one
  /// settling clock for the MS-CMOS tree). This is the figure the tiered
  /// router and the service's per-query energy accounting compose, so it
  /// must stay safe to call concurrently with recognition (pure function
  /// of the configuration, or of atomically maintained counters).
  /// Dimensionally typed: extract raw numbers with
  /// `energy_per_query().in(units::pJ / units::query)` or compose with
  /// `Queries` counts — a J-vs-W mixup no longer compiles.
  virtual EnergyPerQuery energy_per_query() const = 0;
};

}  // namespace spinsim
