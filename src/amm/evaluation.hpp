/// \file evaluation.hpp
/// Shared experiment harness: accuracy sweeps and margin statistics over
/// the face dataset. Every bench binary builds on these helpers so the
/// paper's figures are produced through one code path.

#pragma once

#include <functional>
#include <vector>

#include "amm/engine.hpp"
#include "core/statistics.hpp"
#include "vision/dataset.hpp"
#include "vision/features.hpp"

namespace spinsim {

/// A classifier maps a reduced input to a stored-template index.
using Classifier = std::function<std::size_t(const FeatureVector&)>;

/// Accuracy of a classifier over a dataset.
struct AccuracyResult {
  std::size_t correct = 0;
  std::size_t total = 0;
  double accuracy() const {
    return total == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(total);
  }
};

/// Runs every image of `dataset` (reduced per `spec`) through
/// `classifier`; an answer is correct when it names the image's
/// individual (template index == individual index).
AccuracyResult evaluate_classifier(const FaceDataset& dataset, const FeatureSpec& spec,
                                   const Classifier& classifier);

/// Same protocol through the unified engine interface: every image goes
/// through `engine.recognize_batch` in chunks of `batch_size` (0 = one
/// batch over the whole dataset), with `threads` handed to the engine.
/// Works for any backend, which is how the figure harnesses compare the
/// four designs through one code path.
AccuracyResult evaluate_engine(const FaceDataset& dataset, const FeatureSpec& spec,
                               AssociativeEngine& engine, std::size_t batch_size = 0,
                               std::size_t threads = 0);

/// Detection margin of a current vector: (best - runner-up) / full_scale.
double detection_margin(const std::vector<double>& currents, double full_scale);

/// Margin statistics of a front end (column currents per input) over the
/// dataset. `front_end` returns the column currents for a reduced input.
RunningStats margin_statistics(const FaceDataset& dataset, const FeatureSpec& spec,
                               const std::function<std::vector<double>(const FeatureVector&)>& front_end,
                               double full_scale, std::size_t max_inputs = 0);

}  // namespace spinsim
