/// \file hierarchical_amm.hpp
/// Hierarchical associative memory: the paper's Section-5 extension.
///
/// "Very large number of images can be grouped into smaller clusters
/// [25], that can be hierarchically stored in the multiple RCM modules."
///
/// Templates are k-means-clustered in feature space. A *router* AMM
/// stores the cluster centroids; one *leaf* AMM per cluster stores its
/// member templates. Recognition first routes the input to the best
/// cluster, then searches only that leaf — so instead of one huge WTA
/// across N templates, each lookup activates a k-column router plus one
/// ~N/k-column leaf. Power follows the active path, which is how the
/// scheme scales the energy story to thousands of patterns.

#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "amm/spin_amm.hpp"
#include "core/kmeans.hpp"

namespace spinsim {

/// Knobs of the hierarchical AMM.
struct HierarchicalAmmConfig {
  FeatureSpec features;
  std::size_t clusters = 8;       ///< router fan-out (k)
  unsigned wta_bits = 5;
  DwnParams dwn;
  MemristorSpec memristor;
  double delta_v = 30e-3;
  double clock = 100e6;
  bool sample_mismatch = true;
  std::size_t kmeans_iterations = 50;
  std::uint64_t seed = 2013;
};

/// Result of a hierarchical recognition.
struct HierarchicalRecognition {
  std::size_t winner = 0;        ///< global template index
  std::size_t cluster = 0;       ///< router decision
  std::uint32_t router_dom = 0;  ///< centroid degree of match
  std::uint32_t leaf_dom = 0;    ///< winning template's degree of match
  bool unique = true;            ///< leaf winner uniqueness
};

/// Two-level AMM built from router + leaf SpinAmm modules.
class HierarchicalAmm {
 public:
  explicit HierarchicalAmm(const HierarchicalAmmConfig& config);

  const HierarchicalAmmConfig& config() const { return config_; }

  /// Clusters the templates and programs the router + leaves. Must be
  /// called before recognize().
  void store_templates(const std::vector<FeatureVector>& templates);

  /// Routed recognition.
  HierarchicalRecognition recognize(const FeatureVector& input);

  /// Batched routed recognition: results[i] corresponds to inputs[i] and
  /// matches per-query recognize() winner-for-winner. All inputs are
  /// routed through the router's batch API first, then grouped by cluster
  /// so each leaf answers its queries in one batch — which lets every
  /// module amortize its crossbar setup once per batch instead of once
  /// per query.
  std::vector<HierarchicalRecognition> recognize_batch(const std::vector<FeatureVector>& inputs,
                                                       std::size_t threads = 0);

  /// Number of leaf modules actually built (== clusters).
  std::size_t leaf_count() const { return leaves_.size(); }

  /// Global template indices stored in leaf `cluster`.
  const std::vector<std::size_t>& leaf_members(std::size_t cluster) const;

  /// Power of the active path: router + the largest leaf (worst case).
  PowerReport active_path_power() const;

  /// Power a *flat* AMM holding all templates would burn, for comparison.
  PowerReport flat_equivalent_power() const;

 private:
  SpinAmmConfig module_config(std::size_t columns, std::uint64_t salt) const;

  HierarchicalAmmConfig config_;
  std::unique_ptr<SpinAmm> router_;
  std::vector<std::unique_ptr<SpinAmm>> leaves_;
  std::vector<std::vector<std::size_t>> members_;  // cluster -> global indices
  std::size_t total_templates_ = 0;
};

}  // namespace spinsim
