/// \file hierarchical_amm.hpp
/// Hierarchical associative memory: the paper's Section-5 extension.
///
/// "Very large number of images can be grouped into smaller clusters
/// [25], that can be hierarchically stored in the multiple RCM modules."
///
/// Templates are k-means-clustered in feature space. A *router* AMM
/// stores the cluster centroids; one *leaf* AMM per cluster stores its
/// member templates. Recognition first routes the input to the best
/// cluster, then searches only that leaf — so instead of one huge WTA
/// across N templates, each lookup activates a k-column router plus one
/// ~N/k-column leaf. Power follows the active path, which is how the
/// scheme scales the energy story to thousands of patterns.
///
/// Implements AssociativeEngine: the unified result's dom is the winning
/// leaf's degree of match, and the routing decision travels in the
/// HierarchicalRecognitionDetail.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "amm/engine.hpp"
#include "amm/spin_amm.hpp"
#include "core/kmeans.hpp"

namespace spinsim {

/// Knobs of the hierarchical AMM.
struct HierarchicalAmmConfig {
  FeatureSpec features;
  std::size_t clusters = 8;       ///< router fan-out (k)
  unsigned wta_bits = 5;
  DwnParams dwn;
  MemristorSpec memristor;
  double delta_v = 30e-3;
  double clock = 100e6;
  bool sample_mismatch = true;
  /// Leaf DOM below this rejects the match (same semantics as
  /// SpinAmmConfig::accept_threshold; singleton clusters are judged on
  /// the router DOM, the only degree of match their path produces).
  std::uint32_t accept_threshold = 0;
  std::size_t kmeans_iterations = 50;
  std::uint64_t seed = 2013;
};

/// Quantises a raw k-means centroid onto the feature grid so it can be
/// programmed like any template.
FeatureVector centroid_to_template(const std::vector<double>& centroid, const FeatureSpec& spec);

/// SpinAmm configuration of one module (router or leaf) of a two-level
/// hierarchy. Every engine that routes through the same clustering must
/// derive its modules through this one function — same columns, same
/// salt, same realised device noise — which is what makes the on-demand
/// LeafCacheEngine bit-identical to a fully resident HierarchicalAmm.
SpinAmmConfig hierarchical_module_config(const HierarchicalAmmConfig& config, std::size_t columns,
                                         std::uint64_t salt);

/// Power-model design point of one module of the hierarchy (router when
/// `columns` == clusters, leaf otherwise) — the single mapping both
/// HierarchicalAmm and LeafCacheEngine price their active paths through.
SpinAmmDesign hierarchical_module_design(const HierarchicalAmmConfig& config, std::size_t columns);

/// Runs the hierarchy's clustering step: k-means over the templates'
/// analog vectors with the config's seed/iteration schedule. Returns the
/// per-cluster global template indices and fills `router_templates` with
/// one quantised centroid per cluster, ready for the router module. Both
/// HierarchicalAmm and LeafCacheEngine build from this one schedule,
/// which is what keeps their routing — and therefore their answers — in
/// lockstep.
std::vector<std::vector<std::size_t>> cluster_templates(
    const HierarchicalAmmConfig& config, const std::vector<FeatureVector>& templates,
    std::vector<FeatureVector>& router_templates);

/// Folds a leaf answer and its routing decision into the global result
/// shared by HierarchicalAmm and LeafCacheEngine: winner becomes the
/// global template index, the leaf-local margin is capped by the router's
/// relative score gap (the global runner-up may live in another cluster),
/// a zero-DOM answer carries zero margin, and `accepted` requires a
/// unique winner at or above `accept_threshold`.
Recognition finish_routed(const Recognition& leaf, const Recognition& routed, std::size_t cluster,
                          std::size_t global_winner, std::uint32_t accept_threshold);

/// Two-level AMM built from router + leaf SpinAmm modules.
class HierarchicalAmm : public AssociativeEngine {
 public:
  explicit HierarchicalAmm(const HierarchicalAmmConfig& config);

  const HierarchicalAmmConfig& config() const { return config_; }

  std::string name() const override { return "hierarchical"; }
  std::size_t template_count() const override { return total_templates_; }

  /// Clusters the templates and programs the router + leaves. Must be
  /// called before recognize().
  void store_templates(const std::vector<FeatureVector>& templates) override;

  /// Routed recognition: winner is the *global* template index; dom is
  /// the winning leaf's degree of match; the detail holds the routing
  /// decision (cluster, router dom, router runner-up dom). The margin is
  /// the leaf-local margin capped by the router's relative score gap, so
  /// it never overstates confidence against templates the visited leaf
  /// could not see (the rule escalation policies key on).
  Recognition recognize(const FeatureVector& input) override;

  /// Batched routed recognition: results[i] corresponds to inputs[i] and
  /// matches per-query recognize() winner-for-winner. All inputs are
  /// routed through the router's batch API first, then grouped by cluster
  /// so each leaf answers its queries in one batch — which lets every
  /// module amortize its crossbar setup once per batch instead of once
  /// per query.
  std::vector<Recognition> recognize_batch(const std::vector<FeatureVector>& inputs,
                                           std::size_t threads = 0) override;

  /// Number of leaf modules actually built (== clusters).
  std::size_t leaf_count() const { return leaves_.size(); }

  /// Global template indices stored in leaf `cluster`.
  const std::vector<std::size_t>& leaf_members(std::size_t cluster) const;

  /// Power of the active path (== power() of the unified interface).
  PowerReport active_path_power() const;
  PowerReport power() const override { return active_path_power(); }

  /// Energy of one routed recognition: router search + worst-case leaf
  /// search, each an M-cycle WTA conversion [J].
  EnergyPerQuery energy_per_query() const override;

  /// Power a *flat* AMM holding all templates would burn, for comparison.
  PowerReport flat_equivalent_power() const;

 private:
  Recognition finish(const Recognition& leaf, const Recognition& routed, std::size_t cluster,
                     std::size_t global_winner) const;

  HierarchicalAmmConfig config_;
  std::unique_ptr<SpinAmm> router_;
  std::vector<std::unique_ptr<SpinAmm>> leaves_;
  std::vector<std::vector<std::size_t>> members_;  // cluster -> global indices
  std::size_t total_templates_ = 0;
};

}  // namespace spinsim
