#include "amm/spin_amm.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "core/clock.hpp"
#include "core/error.hpp"
#include "core/parallel.hpp"

namespace spinsim {

double SpinAmmConfig::full_scale_current() const {
  return std::ldexp(dwn.i_threshold, static_cast<int>(wta_bits));
}

double SpinAmmConfig::input_full_scale_current() const {
  // See SpinAmmDesign::max_input_current: the best column collects about
  // 1/templates of every input current, so per-input peak =
  // full_scale * templates / dimension.
  return full_scale_current() * static_cast<double>(templates) /
         static_cast<double>(features.dimension());
}

SpinAmm::SpinAmm(const SpinAmmConfig& config) : config_(config), rng_(config.seed) {
  require(config.templates >= 2, "SpinAmm: need at least two templates");
  require(config.features.dimension() >= 1, "SpinAmm: empty feature space");

  RcmConfig rcm_config;
  rcm_config.rows = config.features.dimension();
  rcm_config.cols = config.templates;
  rcm_config.memristor = config.memristor;
  rcm_config.dummy_column = config.dummy_column;
  rcm_config.row_target_conductance = config.row_target_conductance;
  rcm_ = std::make_unique<RcmArray>(rcm_config, rng_.fork());
  rcm_->set_parasitic_solver(config.parasitic_solver);

  DtcsDacDesign dac_design;
  dac_design.bits = config.features.bits;
  dac_design.full_scale_current = config.input_full_scale_current();
  dac_design.delta_v = config.delta_v;
  input_full_scale_ = dac_design.full_scale_current;

  Rng dac_rng = rng_.fork();
  input_dacs_.reserve(rcm_config.rows);
  for (std::size_t row = 0; row < rcm_config.rows; ++row) {
    if (config.sample_mismatch) {
      input_dacs_.emplace_back(dac_design, dac_rng);
    } else {
      input_dacs_.emplace_back(dac_design);
    }
  }

  SpinWtaConfig wta_config;
  wta_config.columns = config.templates;
  wta_config.bits = config.wta_bits;
  wta_config.dwn = config.dwn;
  wta_config.latch = config.latch;
  wta_config.delta_v = config.delta_v;
  wta_config.cycle_time = 1.0 / config.clock;
  wta_config.thermal_noise = config.thermal_noise;
  wta_config.sample_mismatch = config.sample_mismatch;
  wta_config.seed = rng_.next_u64();
  wta_ = std::make_unique<SpinSarWta>(wta_config);
}

void SpinAmm::store_templates(const std::vector<FeatureVector>& templates) {
  require(templates.size() == config_.templates,
          "SpinAmm::store_templates: template count mismatch");
  std::vector<std::vector<double>> columns;
  columns.reserve(templates.size());
  for (const auto& t : templates) {
    require(t.dimension() == config_.features.dimension(),
            "SpinAmm::store_templates: template dimension mismatch");
    columns.push_back(t.analog);
  }
  rcm_->program(columns);
  templates_stored_ = true;
  if (config_.input_full_scale_override > 0.0) {
    // Shared sizing across shards of one logical template set: skip the
    // per-array calibration so every shard quantises on the same scale.
    rebuild_input_dacs(config_.input_full_scale_override);
  } else {
    calibrate_input_gain(templates);
  }
}

void SpinAmm::rebuild_input_dacs(double full_scale) {
  DtcsDacDesign dac_design;
  dac_design.bits = config_.features.bits;
  dac_design.full_scale_current = full_scale;
  dac_design.delta_v = config_.delta_v;
  input_full_scale_ = full_scale;
  Rng dac_rng = rng_.fork();
  input_dacs_.clear();
  for (std::size_t row = 0; row < config_.features.dimension(); ++row) {
    if (config_.sample_mismatch) {
      input_dacs_.emplace_back(dac_design, dac_rng);
    } else {
      input_dacs_.emplace_back(dac_design);
    }
  }
}

void SpinAmm::calibrate_input_gain(const std::vector<FeatureVector>& templates) {
  // Feed each stored pattern through the real front end and find the
  // strongest self-match; then rebuild the input DACs so that current
  // sits at ~90 % of the WTA full scale (headroom against clipping).
  double best = 0.0;
  for (std::size_t j = 0; j < templates.size(); ++j) {
    const std::vector<double> currents = column_currents(templates[j]);
    best = std::max(best, currents[j]);
  }
  if (best <= 0.0) {
    return;  // degenerate (all-zero templates); keep the analytic sizing
  }
  const double scale = 0.95 * config_.full_scale_current() / best;
  rebuild_input_dacs(config_.input_full_scale_current() * scale);
}

std::vector<double> SpinAmm::input_row_currents(const FeatureVector& input) const {
  std::vector<double> input_currents(input.dimension(), 0.0);
  input_row_currents_into(input, input_currents.data());
  return input_currents;
}

void SpinAmm::input_row_currents_into(const FeatureVector& input, double* out) const {
  // Per-row DTCS DACs: the realised current depends on the row's total
  // conductance (series division, Fig. 8b).
  const std::size_t dim = input.dimension();
  const auto evaluate_into = [&](double* dst) {
    for (std::size_t row = 0; row < dim; ++row) {
      dst[row] = input_dacs_[row].output_current(input.digital[row], rcm_->row_conductance(row));
    }
  };
  if (input_cache_ != nullptr) {
    // Sibling shards with identical input stages share the evaluation:
    // the first engine to see these digital codes computes, the rest hit.
    input_cache_->lookup_or_compute_into(input.digital, evaluate_into, out, dim);
    return;
  }
  evaluate_into(out);
}

std::vector<double> SpinAmm::column_currents(const FeatureVector& input) {
  require(templates_stored_, "SpinAmm: store_templates() before recognition");
  require(input.dimension() == config_.features.dimension(),
          "SpinAmm::column_currents: input dimension mismatch");

  const std::vector<double> input_currents = input_row_currents(input);
  if (config_.model == CrossbarModel::kIdeal) {
    return rcm_->column_currents_ideal(input_currents);
  }
  return rcm_->column_currents_parasitic(input_currents, /*v_bias=*/0.0);
}

Recognition SpinAmm::assemble(std::vector<double>&& currents, SpinWtaOutcome&& wta) const {
  Recognition out;
  out.winner = wta.winner;
  out.unique = wta.unique;
  out.dom = wta.winner_dom;
  out.score = static_cast<double>(out.dom);
  // A tied winner is never an acceptable match (the conformance contract
  // downstream escalation and merge rely on: accepted implies unique).
  out.accepted = out.unique && out.dom >= config_.accept_threshold;

  // Analog detection margin: best minus runner-up over full scale. A
  // zero-DOM winner carries no confidence whatever the raw analog gap
  // says — non-positive winners must report zero margin. One max/runner-up
  // scan: the same two values nth_element used to produce, without the
  // per-query copy and partial sort.
  if (currents.size() >= 2 && out.dom > 0) {
    double best = -std::numeric_limits<double>::infinity();
    double second = best;
    for (const double v : currents) {
      if (v > best) {
        second = best;
        best = v;
      } else if (v > second) {
        second = v;
      }
    }
    out.margin = (best - second) / config_.full_scale_current();
  }
  out.detail = SpinRecognitionDetail{std::move(currents), std::move(wta)};
  return out;
}

Recognition SpinAmm::recognize(const FeatureVector& input) {
  std::vector<double> currents = column_currents(input);
  SpinWtaOutcome wta = wta_->run(currents);
  return assemble(std::move(currents), std::move(wta));
}

std::vector<Recognition> SpinAmm::recognize_batch(const std::vector<FeatureVector>& inputs,
                                                  std::size_t threads) {
  require(templates_stored_, "SpinAmm: store_templates() before recognition");
  std::vector<Recognition> results(inputs.size());
  if (inputs.empty()) {
    return results;
  }
  const std::size_t dim = config_.features.dimension();
  for (const auto& input : inputs) {
    require(input.dimension() == dim, "SpinAmm::recognize_batch: input dimension mismatch");
  }

  const std::size_t batch = inputs.size();
  const std::size_t cols = config_.templates;
  const std::shared_ptr<Clock> clock = SteadyClock::instance();
  const auto elapsed_us = [](Clock::TimePoint a, Clock::TimePoint b) {
    return std::chrono::duration<double, std::micro>(b - a).count();
  };

  // The front end is shareable when evaluating a query never mutates the
  // crossbar: the ideal closed form is const once its operator is built,
  // and the transfer operator is const once prepared. CG/factored solves
  // mutate solver state, so they stay on the calling thread.
  const bool parasitic = config_.model == CrossbarModel::kParasitic;
  bool shareable = !parasitic;
  if (parasitic && config_.parasitic_solver == CrossbarSolver::kTransfer) {
    rcm_->prepare_parasitic(/*v_bias=*/0.0);
    shareable = true;
  }
  if (!parasitic) {
    rcm_->prepare_ideal();
  }
  if (shareable) {
    // Warm the lazy row-conductance cache before the workers fan out.
    (void)rcm_->row_conductance(0);
  }

  // Workers are sized against the query count; the dispatch below then
  // hands each worker whole chunks of kMinItemsPerThread queries, so one
  // chunk is one DAC -> GEMM -> WTA -> assemble pipeline pass over a
  // cache-resident slice of the flat buffers.
  threads = resolve_threads(threads, batch);
  const std::size_t chunk_size = kMinItemsPerThread;
  const std::size_t num_chunks = (batch + chunk_size - 1) / chunk_size;

  // Flat column-current buffer C (batch x cols): query q's currents live
  // at C[q * cols .. (q + 1) * cols).
  std::vector<double> currents_flat(batch * cols);

  // Per-chunk stage timings, summed into batch_timing_ after the join
  // (disjoint slots, so no synchronisation needed).
  std::vector<double> dac_us(num_chunks, 0.0);
  std::vector<double> gemm_us(num_chunks, 0.0);
  std::vector<double> wta_us(num_chunks, 0.0);
  std::vector<double> assemble_us(num_chunks, 0.0);

  // Reserve the batch's WTA noise slots up front: chunk workers then
  // consume exactly the slots a sequential recognize() loop would.
  const std::uint64_t base = wta_->reserve_query_slots(batch);

  if (!shareable) {
    // CG/factored parasitic solves mutate the network; run the front end
    // serially on this thread (counted as the DAC stage — there is no
    // separate GEMM on this path), then let WTA + assemble fan out below.
    const auto t0 = clock->now();
    for (std::size_t i = 0; i < batch; ++i) {
      const std::vector<double> c = column_currents(inputs[i]);
      std::copy(c.begin(), c.end(), currents_flat.begin() + static_cast<std::ptrdiff_t>(i * cols));
    }
    dac_us[0] = elapsed_us(t0, clock->now());
  }

  parallel_for_resolved(num_chunks, threads, [&](std::size_t c) {
    const std::size_t q0 = c * chunk_size;
    const std::size_t qn = std::min(chunk_size, batch - q0);
    double* chunk_currents = currents_flat.data() + q0 * cols;

    if (shareable) {
      // Stage 1 — DAC front end into thread-local scratch (no per-query
      // heap allocation).
      thread_local std::vector<double> input_scratch;
      input_scratch.resize(chunk_size * dim);
      const auto t0 = clock->now();
      for (std::size_t qi = 0; qi < qn; ++qi) {
        input_row_currents_into(inputs[q0 + qi], input_scratch.data() + qi * dim);
      }
      const auto t1 = clock->now();

      // Stage 2 — one blocked GEMM against the cached crossbar operator.
      if (parasitic) {
        rcm_->column_currents_transfer_batch(input_scratch.data(), qn, chunk_currents,
                                             /*v_bias=*/0.0);
      } else {
        rcm_->column_currents_ideal_batch(input_scratch.data(), qn, chunk_currents);
      }
      const auto t2 = clock->now();
      dac_us[c] = elapsed_us(t0, t1);
      gemm_us[c] = elapsed_us(t1, t2);
    }

    // Stage 3 — WTA winner search per query slot.
    const auto t2 = clock->now();
    thread_local std::vector<SpinWtaOutcome> outcomes;
    outcomes.resize(qn);
    for (std::size_t qi = 0; qi < qn; ++qi) {
      outcomes[qi] = wta_->run_query_span(chunk_currents + qi * cols, base + q0 + qi);
    }
    const auto t3 = clock->now();

    // Stage 4 — assemble Recognitions (the detail keeps a per-query copy
    // of the currents, as the sequential path does).
    for (std::size_t qi = 0; qi < qn; ++qi) {
      const double* q_currents = chunk_currents + qi * cols;
      results[q0 + qi] = assemble(std::vector<double>(q_currents, q_currents + cols),
                                  std::move(outcomes[qi]));
    }
    const auto t4 = clock->now();
    wta_us[c] = elapsed_us(t2, t3);
    assemble_us[c] = elapsed_us(t3, t4);
  });

  SpinBatchTiming timing;
  timing.queries = static_cast<std::uint64_t>(batch);
  for (std::size_t c = 0; c < num_chunks; ++c) {
    timing.dac_us += dac_us[c];
    timing.gemm_us += gemm_us[c];
    timing.wta_us += wta_us[c];
    timing.assemble_us += assemble_us[c];
  }
  batch_timing_ = timing;
  return results;
}

double SpinAmm::realised_input_current(std::size_t row, std::uint32_t code) const {
  require(rcm_ != nullptr, "SpinAmm: store_templates() before probing the input stage");
  require(row < input_dacs_.size(), "SpinAmm::realised_input_current: row out of range");
  return input_dacs_[row].output_current(code, rcm_->row_conductance(row));
}

void SpinAmm::attach_substrate(std::shared_ptr<CrossbarSubstrate> substrate,
                               std::vector<std::size_t> column_map, bool delta_writes) {
  require(!templates_stored_, "SpinAmm::attach_substrate: attach before store_templates()");
  rcm_->attach_substrate(std::move(substrate), std::move(column_map), delta_writes);
}

const RcmArray& SpinAmm::crossbar() const {
  require(rcm_ != nullptr, "SpinAmm: no crossbar");
  return *rcm_;
}

RcmArray& SpinAmm::mutable_crossbar() {
  require(rcm_ != nullptr, "SpinAmm: no crossbar");
  return *rcm_;
}

SpinAmmDesign SpinAmm::power_design() const {
  SpinAmmDesign d;
  d.dimension = config_.features.dimension();
  d.templates = config_.templates;
  d.resolution_bits = config_.wta_bits;
  d.dwn_threshold = config_.dwn.i_threshold;
  d.delta_v = config_.delta_v;
  d.clock = config_.clock;
  return d;
}

PowerReport SpinAmm::power() const { return spin_amm_power(power_design()); }

EnergyPerQuery SpinAmm::energy_per_query() const {
  // One recognition is an M-cycle WTA search: total power held for
  // M / f_clock seconds, charged to a single query.
  const Energy search =
      power().total() * static_cast<double>(config_.wta_bits) / (config_.clock * units::Hz);
  return search / units::query;
}

}  // namespace spinsim
