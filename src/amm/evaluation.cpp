#include "amm/evaluation.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace spinsim {

AccuracyResult evaluate_classifier(const FaceDataset& dataset, const FeatureSpec& spec,
                                   const Classifier& classifier) {
  require(static_cast<bool>(classifier), "evaluate_classifier: empty classifier");
  AccuracyResult out;
  for (const auto& sample : dataset.all()) {
    const FeatureVector input = extract_features(sample.image, spec);
    const std::size_t answer = classifier(input);
    if (answer == sample.individual) {
      ++out.correct;
    }
    ++out.total;
  }
  return out;
}

AccuracyResult evaluate_engine(const FaceDataset& dataset, const FeatureSpec& spec,
                               AssociativeEngine& engine, std::size_t batch_size,
                               std::size_t threads) {
  const auto& samples = dataset.all();
  std::vector<FeatureVector> inputs;
  inputs.reserve(samples.size());
  for (const auto& sample : samples) {
    inputs.push_back(extract_features(sample.image, spec));
  }
  if (batch_size == 0) {
    batch_size = inputs.size();
  }

  AccuracyResult out;
  for (std::size_t start = 0; start < inputs.size(); start += batch_size) {
    const std::size_t count = std::min(batch_size, inputs.size() - start);
    const std::vector<FeatureVector> chunk(inputs.begin() + static_cast<std::ptrdiff_t>(start),
                                           inputs.begin() + static_cast<std::ptrdiff_t>(start + count));
    const std::vector<Recognition> results = engine.recognize_batch(chunk, threads);
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (results[i].winner == samples[start + i].individual) {
        ++out.correct;
      }
      ++out.total;
    }
  }
  return out;
}

double detection_margin(const std::vector<double>& currents, double full_scale) {
  require(currents.size() >= 2, "detection_margin: need at least two currents");
  require(full_scale > 0.0, "detection_margin: full scale must be positive");
  std::vector<double> sorted = currents;
  std::nth_element(sorted.begin(), sorted.begin() + 1, sorted.end(), std::greater<>());
  return (sorted[0] - sorted[1]) / full_scale;
}

RunningStats margin_statistics(
    const FaceDataset& dataset, const FeatureSpec& spec,
    const std::function<std::vector<double>(const FeatureVector&)>& front_end, double full_scale,
    std::size_t max_inputs) {
  require(static_cast<bool>(front_end), "margin_statistics: empty front end");
  RunningStats stats;
  std::size_t used = 0;
  for (const auto& sample : dataset.all()) {
    if (max_inputs != 0 && used >= max_inputs) {
      break;
    }
    const FeatureVector input = extract_features(sample.image, spec);
    stats.add(detection_margin(front_end(input), full_scale));
    ++used;
  }
  return stats;
}

}  // namespace spinsim
