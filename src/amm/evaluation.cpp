#include "amm/evaluation.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace spinsim {

AccuracyResult evaluate_classifier(const FaceDataset& dataset, const FeatureSpec& spec,
                                   const Classifier& classifier) {
  require(static_cast<bool>(classifier), "evaluate_classifier: empty classifier");
  AccuracyResult out;
  for (const auto& sample : dataset.all()) {
    const FeatureVector input = extract_features(sample.image, spec);
    const std::size_t answer = classifier(input);
    if (answer == sample.individual) {
      ++out.correct;
    }
    ++out.total;
  }
  return out;
}

double detection_margin(const std::vector<double>& currents, double full_scale) {
  require(currents.size() >= 2, "detection_margin: need at least two currents");
  require(full_scale > 0.0, "detection_margin: full scale must be positive");
  std::vector<double> sorted = currents;
  std::nth_element(sorted.begin(), sorted.begin() + 1, sorted.end(), std::greater<>());
  return (sorted[0] - sorted[1]) / full_scale;
}

RunningStats margin_statistics(
    const FaceDataset& dataset, const FeatureSpec& spec,
    const std::function<std::vector<double>(const FeatureVector&)>& front_end, double full_scale,
    std::size_t max_inputs) {
  require(static_cast<bool>(front_end), "margin_statistics: empty front end");
  RunningStats stats;
  std::size_t used = 0;
  for (const auto& sample : dataset.all()) {
    if (max_inputs != 0 && used >= max_inputs) {
      break;
    }
    const FeatureVector input = extract_features(sample.image, spec);
    stats.add(detection_margin(front_end(input), full_scale));
    ++used;
  }
  return stats;
}

}  // namespace spinsim
