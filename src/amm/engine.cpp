#include "amm/engine.hpp"

namespace spinsim {

// Out-of-line key-function destructor: anchors the vtable in one
// translation unit instead of every includer.
AssociativeEngine::~AssociativeEngine() = default;

}  // namespace spinsim
