/// \file digital_amm.hpp
/// Baseline AMM: 45 nm digital CMOS multiply-accumulate ASIC.
///
/// Bit-exact integer correlation of the 5-bit input against every stored
/// template, followed by an argmax — functionally the reference the
/// analog designs approximate. Energy/performance figures come from the
/// digital_asic_power model (Table 1's last column).

#pragma once

#include <cstdint>
#include <vector>

#include "energy/digital_asic.hpp"
#include "vision/features.hpp"

namespace spinsim {

/// Knobs of the digital baseline.
struct DigitalAmmConfig {
  FeatureSpec features;
  std::size_t templates = 40;
  double clock = 100e6;  ///< datapath clock [Hz]
};

/// Result of a digital recognition.
struct DigitalRecognition {
  std::size_t winner = 0;
  std::uint64_t score = 0;              ///< integer dot product of the winner
  std::vector<std::uint64_t> scores;    ///< all integer dot products
};

/// The digital baseline AMM.
class DigitalAmm {
 public:
  explicit DigitalAmm(const DigitalAmmConfig& config);

  const DigitalAmmConfig& config() const { return config_; }

  void store_templates(const std::vector<FeatureVector>& templates);

  /// Bit-exact recognition.
  DigitalRecognition recognize(const FeatureVector& input) const;

  /// Energy/performance evaluation of this design point.
  DigitalAsicEvaluation evaluation() const;

 private:
  DigitalAmmConfig config_;
  std::vector<std::vector<std::uint32_t>> template_levels_;
};

}  // namespace spinsim
