/// \file digital_amm.hpp
/// Baseline AMM: 45 nm digital CMOS multiply-accumulate ASIC.
///
/// Bit-exact integer correlation of the 5-bit input against every stored
/// template, followed by an argmax — functionally the reference the
/// analog designs approximate. Energy/performance figures come from the
/// digital_asic_power model (Table 1's last column).
///
/// Implements AssociativeEngine; because recognition is a pure function
/// of the stored templates, recognize_batch() fans out embarrassingly.

#pragma once

#include <cstdint>
#include <vector>

#include "amm/engine.hpp"
#include "energy/digital_asic.hpp"
#include "vision/features.hpp"

namespace spinsim {

/// Knobs of the digital baseline.
struct DigitalAmmConfig {
  FeatureSpec features;
  std::size_t templates = 40;
  double clock = 100e6;  ///< datapath clock [Hz]
};

/// The digital baseline AMM.
class DigitalAmm : public AssociativeEngine {
 public:
  explicit DigitalAmm(const DigitalAmmConfig& config);

  const DigitalAmmConfig& config() const { return config_; }

  std::string name() const override { return "digital"; }
  std::size_t template_count() const override { return config_.templates; }

  void store_templates(const std::vector<FeatureVector>& templates) override;

  /// Bit-exact recognition. The result's score is the winner's integer
  /// dot product; the detail carries the exact per-template scores.
  Recognition recognize(const FeatureVector& input) override;

  /// Batched bit-exact recognition, dispatched across `threads` workers
  /// (0 = hardware concurrency). Exactly equal to per-query recognize().
  std::vector<Recognition> recognize_batch(const std::vector<FeatureVector>& inputs,
                                           std::size_t threads = 0) override;

  /// Power of this design point (Table-1 style ASIC model).
  PowerReport power() const override;

  /// The ASIC model's per-recognition energy (`templates` MAC cycles) [J].
  EnergyPerQuery energy_per_query() const override;

  /// Energy/performance evaluation of this design point.
  DigitalAsicEvaluation evaluation() const;

 private:
  Recognition recognize_one(const FeatureVector& input) const;

  DigitalAmmConfig config_;
  std::vector<std::vector<std::uint32_t>> template_levels_;
};

}  // namespace spinsim
