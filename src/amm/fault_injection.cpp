#include "amm/fault_injection.hpp"

#include <thread>
#include <utility>

#include "core/error.hpp"

namespace spinsim {

void FaultSwitch::stick() {
  LockGuard lock(mutex_);
  stick_requested_ = true;
}

void FaultSwitch::release() {
  {
    LockGuard lock(mutex_);
    stick_requested_ = false;
  }
  cv_.notify_all();
}

void FaultSwitch::set_throwing(bool throwing) {
  throwing_.store(throwing, std::memory_order_release);
}

std::size_t FaultSwitch::stuck_calls() const {
  LockGuard lock(mutex_);
  return stuck_calls_;
}

bool FaultSwitch::wait_if_stuck() {
  UniqueLock lock(mutex_);
  if (!stick_requested_) {
    return false;
  }
  ++stuck_calls_;
  // TSA cannot follow the cv's unlock/relock around the predicate; the
  // lambda runs with mutex_ held by construction.
  cv_.wait(lock, [this]() SPINSIM_NO_TSA { return !stick_requested_; });
  --stuck_calls_;
  return true;
}

FaultInjectingEngine::FaultInjectingEngine(std::unique_ptr<AssociativeEngine> inner,
                                           const FaultInjectionConfig& config,
                                           std::shared_ptr<FaultSwitch> control)
    : config_(config), inner_(std::move(inner)), control_(std::move(control)), rng_(config.seed) {
  require(inner_ != nullptr, "FaultInjectingEngine: inner engine must be non-null");
  require(config_.throw_rate >= 0.0 && config_.throw_rate <= 1.0,
          "FaultInjectingEngine: throw_rate must lie in [0, 1]");
  require(config_.spike_rate >= 0.0 && config_.spike_rate <= 1.0,
          "FaultInjectingEngine: spike_rate must lie in [0, 1]");
  require(config_.spike.count() >= 0, "FaultInjectingEngine: spike duration cannot be negative");
}

std::string FaultInjectingEngine::name() const { return "faulty(" + inner_->name() + ")"; }

void FaultInjectingEngine::store_templates(const std::vector<FeatureVector>& templates) {
  // Serving-path decorator: programming passes through clean by design.
  inner_->store_templates(templates);
}

void FaultInjectingEngine::maybe_fault() {
  calls_.fetch_add(1, std::memory_order_relaxed);
  if (control_ && control_->wait_if_stuck()) {
    stuck_waits_.fetch_add(1, std::memory_order_relaxed);
  }
  // The seeded decision stream is two draws per call — fixed order, so
  // the schedule is a pure function of the seed and the call index.
  const bool spike = rng_.bernoulli(config_.spike_rate);
  const bool seeded_throw = rng_.bernoulli(config_.throw_rate);
  if (spike && config_.spike.count() > 0) {
    spikes_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(config_.spike);
  }
  if ((control_ && control_->throwing()) || seeded_throw) {
    throws_.fetch_add(1, std::memory_order_relaxed);
    throw ModelError("FaultInjectingEngine: injected fault in " + inner_->name());
  }
}

Recognition FaultInjectingEngine::recognize(const FeatureVector& input) {
  maybe_fault();
  return inner_->recognize(input);
}

std::vector<Recognition> FaultInjectingEngine::recognize_batch(
    const std::vector<FeatureVector>& inputs, std::size_t threads) {
  maybe_fault();
  return inner_->recognize_batch(inputs, threads);
}

FaultInjectionCounters FaultInjectingEngine::counters() const {
  FaultInjectionCounters out;
  out.calls = calls_.load(std::memory_order_relaxed);
  out.throws = throws_.load(std::memory_order_relaxed);
  out.spikes = spikes_.load(std::memory_order_relaxed);
  out.stuck_waits = stuck_waits_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace spinsim
