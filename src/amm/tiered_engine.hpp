/// \file tiered_engine.hpp
/// Accuracy/energy tiering: a cheap tier-0 engine answers every query, an
/// authoritative tier-1 engine answers only the queries tier 0 was not
/// confident about.
///
/// This is the production expression of the paper's hierarchical energy
/// trade (Section 5 / the HTM-on-spin-neurons follow-up): most queries
/// terminate in a small router-stage design, and only the low-margin or
/// rejected tail pays for the full flat search. The escalation decision
/// keys on the unified `Recognition` confidence fields — `margin`
/// (capped so it never overstates global confidence, see
/// HierarchicalAmm::finish and RecognitionService::merge), `accepted`
/// and `unique` — which is why the margin-semantics fixes and this layer
/// ship together.
///
/// TieredEngine is itself an AssociativeEngine, so it composes anywhere a
/// backend does: directly, or as a shard backend behind RecognitionService
/// (see make_tiered_factory in service/recognition_service.hpp). Counters
/// are atomics, safe to snapshot while traffic is in flight.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "amm/engine.hpp"

namespace spinsim {

/// Escalation policy of one TieredEngine.
struct TieredEngineConfig {
  /// Escalate when tier 0's margin falls below this (same relative units
  /// as Recognition.margin; 0 disables margin-based escalation, >= 1
  /// escalates everything — the conformance-test configuration).
  double escalation_margin = 0.05;
  bool escalate_rejected = true;  ///< escalate tier-0 accepted == false
  bool escalate_ties = true;      ///< escalate tier-0 unique == false
};

/// Running totals of one TieredEngine (snapshot of atomic counters).
struct TieredCounters {
  std::uint64_t queries = 0;    ///< recognitions served
  std::uint64_t escalated = 0;  ///< answered by tier 1
  std::uint64_t rejected = 0;   ///< final answer had accepted == false

  double escalation_rate() const {
    return queries == 0 ? 0.0 : static_cast<double>(escalated) / static_cast<double>(queries);
  }
  double reject_rate() const {
    return queries == 0 ? 0.0 : static_cast<double>(rejected) / static_cast<double>(queries);
  }
};

/// Two-tier engine: tier 0 cheap (typically HierarchicalAmm), tier 1
/// authoritative (a flat spin or digital engine over the same templates).
class TieredEngine : public AssociativeEngine {
 public:
  /// Both tiers must be sized for the same template set; store_templates()
  /// programs them from one slice and verifies the counts agree.
  TieredEngine(std::unique_ptr<AssociativeEngine> tier0, std::unique_ptr<AssociativeEngine> tier1,
               const TieredEngineConfig& config = {});

  /// The construction-time policy. `config().escalation_margin` is the
  /// *initial* threshold; the live one is escalation_margin() (the
  /// service's overload controller servos it at runtime).
  const TieredEngineConfig& config() const { return config_; }

  /// Live escalation threshold (atomic: safe against in-flight traffic).
  double escalation_margin() const { return margin_.load(std::memory_order_relaxed); }

  /// Adjusts the live escalation threshold. Raising it escalates more
  /// (more accuracy, more energy/latency); lowering it keeps more
  /// traffic in the cheap tier. The service-edge overload controller
  /// calls this against the p99-latency SLO. Thread-safe.
  void set_escalation_margin(double margin);

  /// Brown-out: while forced, no query escalates — every answer comes
  /// from tier 0 whatever its confidence. The overload controller's
  /// second watermark; answers served this way are flagged `degraded`
  /// by the service merge. Thread-safe.
  void set_force_tier0(bool force) { force_tier0_.store(force, std::memory_order_relaxed); }
  bool force_tier0() const { return force_tier0_.load(std::memory_order_relaxed); }

  std::string name() const override;
  std::size_t template_count() const override { return tier1_->template_count(); }

  void store_templates(const std::vector<FeatureVector>& templates) override;

  /// Tier-0 recognition, escalated to tier 1 when the policy fires. The
  /// result is the serving tier's (winner/score/dom/margin/accepted), and
  /// its detail is a TieredRecognitionDetail recording the tier plus what
  /// tier 0 reported before the decision.
  Recognition recognize(const FeatureVector& input) override;

  /// Batched tiered recognition: one tier-0 batch, then one tier-1 batch
  /// over the escalated subset. Winner-for-winner identical to per-query
  /// recognize() whenever the tier engines are deterministic (thermal
  /// noise off) — with per-query noise streams the escalated subset
  /// occupies different query slots than sequential calls would.
  std::vector<Recognition> recognize_batch(const std::vector<FeatureVector>& inputs,
                                           std::size_t threads = 0) override;

  /// Power of the deployed hardware: both tiers, prefixed per stage.
  PowerReport power() const override;

  /// Estimated energy of one query under the *observed* tier mix:
  /// tier0 energy + escalation_rate * tier1 energy. Before any traffic it
  /// assumes every query escalates (the conservative upper bound).
  EnergyPerQuery energy_per_query() const override;

  /// Counter snapshot (safe while traffic is in flight).
  TieredCounters counters() const;

  const AssociativeEngine& tier0() const { return *tier0_; }
  const AssociativeEngine& tier1() const { return *tier1_; }
  /// Mutable tier access, for owners only: the service walks through
  /// here to reach scrub-able leaf caches inside a tier.
  AssociativeEngine& tier0() { return *tier0_; }
  AssociativeEngine& tier1() { return *tier1_; }

 private:
  bool should_escalate(const Recognition& first) const;
  void account(const Recognition& final_answer, bool escalated);

  TieredEngineConfig config_;
  std::unique_ptr<AssociativeEngine> tier0_;
  std::unique_ptr<AssociativeEngine> tier1_;

  // Threading: a TieredEngine is served by one shard worker; the tiers
  // themselves are never shared. The atomics below exist so *other*
  // threads (counters()/stats snapshots, live policy pokes) can read and
  // write concurrently with serving. All relaxed: the knobs are
  // independent policy samples with no publication protocol (each query
  // reads whatever value is current), and the counters are monotonic
  // tallies with no cross-counter invariant a snapshot must observe.
  std::atomic<double> margin_;  // live knob (config_ keeps the ctor value)
  std::atomic<bool> force_tier0_{false};

  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> escalated_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

}  // namespace spinsim
