#include "amm/mscmos_amm.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "core/parallel.hpp"
#include "device/variation.hpp"

namespace spinsim {

MsCmosAmm::MsCmosAmm(const MsCmosAmmConfig& config) : config_(config), rng_(config.seed) {
  require(config.templates >= 2, "MsCmosAmm: need at least two templates");

  RcmConfig rcm_config;
  rcm_config.rows = config.features.dimension();
  rcm_config.cols = config.templates;
  rcm_config.memristor = config.memristor;
  rcm_ = std::make_unique<RcmArray>(rcm_config, rng_.fork());

  // Size the detection unit for the requested resolution/process corner.
  MsCmosDesign design;
  design.topology = config.topology;
  design.inputs = config.templates;
  design.resolution_bits = config.resolution_bits;
  design.sigma_vt_min_size = config.sigma_vt_min_size;
  evaluation_ = mscmos_wta_power(design);

  // Input regulated mirrors: one sampled copy error per column, at the
  // per-stage sigma the sizing realised.
  input_mirror_gain_.reserve(config.templates);
  for (std::size_t j = 0; j < config.templates; ++j) {
    input_mirror_gain_.push_back(1.0 + rng_.normal(0.0, evaluation_.stage_rel_sigma));
  }

  AnalogWtaConfig wta_config;
  wta_config.inputs = config.templates;
  wta_config.stage_rel_sigma = evaluation_.stage_rel_sigma;
  wta_config.seed = rng_.next_u64();
  wta_ = std::make_unique<AnalogBtWta>(wta_config);

  // The analog front end uses the same current scale as the spin design
  // would at 1 uA threshold, for a like-for-like margin definition.
  input_full_scale_ = std::ldexp(1e-6, static_cast<int>(config.resolution_bits));
}

void MsCmosAmm::store_templates(const std::vector<FeatureVector>& templates) {
  require(templates.size() == config_.templates,
          "MsCmosAmm::store_templates: template count mismatch");
  std::vector<std::vector<double>> columns;
  columns.reserve(templates.size());
  for (const auto& t : templates) {
    columns.push_back(t.analog);
  }
  rcm_->program(columns);
  templates_stored_ = true;
}

Recognition MsCmosAmm::recognize_one(const FeatureVector& input) const {
  require(templates_stored_, "MsCmosAmm: store_templates() before recognition");
  require(input.dimension() == config_.features.dimension(),
          "MsCmosAmm::recognize: input dimension mismatch");

  // Ideal current-mode front end (the regulated mirrors clamp the RCM
  // outputs); per-input peak current chosen as in the spin design.
  const double i_in_max = input_full_scale_ * static_cast<double>(config_.templates) /
                          static_cast<double>(config_.features.dimension());
  std::vector<double> input_currents(input.dimension(), 0.0);
  for (std::size_t row = 0; row < input.dimension(); ++row) {
    input_currents[row] = i_in_max * input.analog[row];
  }
  std::vector<double> columns = rcm_->column_currents_ideal(input_currents);

  Recognition out;
  if (columns.size() >= 2) {
    std::vector<double> sorted = columns;
    std::nth_element(sorted.begin(), sorted.begin() + 1, sorted.end(), std::greater<>());
    out.margin = (sorted[0] - sorted[1]) / input_full_scale_;
  }

  // Input mirror copy errors, then the mismatched tree.
  for (std::size_t j = 0; j < columns.size(); ++j) {
    columns[j] *= input_mirror_gain_[j];
  }
  const AnalogWtaResult selected = wta_->select(columns);
  out.winner = selected.winner;
  out.score = selected.winning_current / input_full_scale_;
  if (out.score <= 0.0) {
    out.margin = 0.0;  // non-positive winners carry no confidence
  }
  out.detail = MsCmosRecognitionDetail{selected.winning_current};
  return out;
}

Recognition MsCmosAmm::recognize(const FeatureVector& input) { return recognize_one(input); }

std::vector<Recognition> MsCmosAmm::recognize_batch(const std::vector<FeatureVector>& inputs,
                                                    std::size_t threads) {
  require(templates_stored_, "MsCmosAmm: store_templates() before recognition");
  for (const auto& input : inputs) {
    require(input.dimension() == config_.features.dimension(),
            "MsCmosAmm::recognize_batch: input dimension mismatch");
  }
  std::vector<Recognition> results(inputs.size());
  if (inputs.empty()) {
    return results;
  }
  // Warm the lazy row-conductance cache before the workers fan out.
  (void)rcm_->row_conductance(0);
  parallel_for_strided(inputs.size(), threads,
                       [&](std::size_t i) { results[i] = recognize_one(inputs[i]); });
  return results;
}

}  // namespace spinsim
