/// \file mscmos_amm.hpp
/// Baseline AMM: the same RCM front end detected by mixed-signal CMOS
/// (regulated input mirrors + analog binary-tree WTA, paper Fig. 4).
///
/// Shares the crossbar model with SpinAmm; only the detection unit
/// differs. The functional path corrupts each column current with the
/// input mirror's sampled error and runs the mismatched tree of
/// AnalogBtWta; the power/performance numbers come from the
/// mscmos_wta_power sizing model.
///
/// Implements AssociativeEngine; all mismatch is sampled at construction
/// (a static property of the die), so recognition is a const function of
/// the programmed array and recognize_batch() fans out embarrassingly.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "amm/engine.hpp"
#include "crossbar/rcm.hpp"
#include "energy/mscmos_power.hpp"
#include "vision/features.hpp"
#include "wta/analog_wta.hpp"

namespace spinsim {

/// Knobs of the MS-CMOS baseline.
struct MsCmosAmmConfig {
  FeatureSpec features;
  std::size_t templates = 40;
  MemristorSpec memristor;
  MsCmosTopology topology = MsCmosTopology::kStandardBt;
  unsigned resolution_bits = 5;
  double sigma_vt_min_size = 5e-3;  ///< process mismatch (Fig. 13b sweep)
  std::uint64_t seed = 11;
};

/// The MS-CMOS baseline AMM.
class MsCmosAmm : public AssociativeEngine {
 public:
  explicit MsCmosAmm(const MsCmosAmmConfig& config);

  const MsCmosAmmConfig& config() const { return config_; }

  std::string name() const override { return "mscmos"; }
  std::size_t template_count() const override { return config_.templates; }

  /// Programs the stored templates.
  void store_templates(const std::vector<FeatureVector>& templates) override;

  /// Full recognition through the mismatched analog detection unit. The
  /// result's score is the (corrupted) root current as a fraction of the
  /// input full scale; the design has no DOM readout (Section 2), so dom
  /// stays 0 and accepted true.
  Recognition recognize(const FeatureVector& input) override;

  /// Batched recognition across `threads` workers (0 = hardware
  /// concurrency). Exactly equal to per-query recognize().
  std::vector<Recognition> recognize_batch(const std::vector<FeatureVector>& inputs,
                                           std::size_t threads = 0) override;

  /// Power of this sized design point.
  PowerReport power() const override { return evaluation_.power; }

  /// Energy of one recognition: one settling period of the analog tree at
  /// the clock its sizing achieves.
  EnergyPerQuery energy_per_query() const override {
    return evaluation_.power.total() / (evaluation_.max_clock * units::Hz) / units::query;
  }

  /// The sizing/power evaluation of this design point.
  const MsCmosEvaluation& evaluation() const { return evaluation_; }

 private:
  Recognition recognize_one(const FeatureVector& input) const;

  MsCmosAmmConfig config_;
  Rng rng_;
  std::unique_ptr<RcmArray> rcm_;
  std::vector<double> input_mirror_gain_;  // per-column sampled copy error
  std::unique_ptr<AnalogBtWta> wta_;
  MsCmosEvaluation evaluation_;
  double input_full_scale_;
  bool templates_stored_ = false;
};

}  // namespace spinsim
