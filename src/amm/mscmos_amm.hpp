/// \file mscmos_amm.hpp
/// Baseline AMM: the same RCM front end detected by mixed-signal CMOS
/// (regulated input mirrors + analog binary-tree WTA, paper Fig. 4).
///
/// Shares the crossbar model with SpinAmm; only the detection unit
/// differs. The functional path corrupts each column current with the
/// input mirror's sampled error and runs the mismatched tree of
/// AnalogBtWta; the power/performance numbers come from the
/// mscmos_wta_power sizing model.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "amm/spin_amm.hpp"
#include "energy/mscmos_power.hpp"
#include "wta/analog_wta.hpp"

namespace spinsim {

/// Knobs of the MS-CMOS baseline.
struct MsCmosAmmConfig {
  FeatureSpec features;
  std::size_t templates = 40;
  MemristorSpec memristor;
  MsCmosTopology topology = MsCmosTopology::kStandardBt;
  unsigned resolution_bits = 5;
  double sigma_vt_min_size = 5e-3;  ///< process mismatch (Fig. 13b sweep)
  std::uint64_t seed = 11;
};

/// Result of a baseline recognition.
struct MsCmosRecognition {
  std::size_t winner = 0;
  double margin = 0.0;  ///< analog margin before the detection unit
};

/// The MS-CMOS baseline AMM.
class MsCmosAmm {
 public:
  explicit MsCmosAmm(const MsCmosAmmConfig& config);

  const MsCmosAmmConfig& config() const { return config_; }

  /// Programs the stored templates.
  void store_templates(const std::vector<FeatureVector>& templates);

  /// Full recognition through the mismatched analog detection unit.
  MsCmosRecognition recognize(const FeatureVector& input);

  /// The sizing/power evaluation of this design point.
  const MsCmosEvaluation& evaluation() const { return evaluation_; }

 private:
  MsCmosAmmConfig config_;
  Rng rng_;
  std::unique_ptr<RcmArray> rcm_;
  std::vector<double> input_mirror_gain_;  // per-column sampled copy error
  std::unique_ptr<AnalogBtWta> wta_;
  MsCmosEvaluation evaluation_;
  double input_full_scale_;
  bool templates_stored_ = false;
};

}  // namespace spinsim
