#include "amm/tiered_engine.hpp"

#include <utility>

#include "core/error.hpp"

namespace spinsim {

TieredEngine::TieredEngine(std::unique_ptr<AssociativeEngine> tier0,
                           std::unique_ptr<AssociativeEngine> tier1,
                           const TieredEngineConfig& config)
    : config_(config),
      tier0_(std::move(tier0)),
      tier1_(std::move(tier1)),
      margin_(config.escalation_margin) {
  require(tier0_ != nullptr && tier1_ != nullptr, "TieredEngine: both tiers must be non-null");
}

void TieredEngine::set_escalation_margin(double margin) {
  require(margin >= 0.0, "TieredEngine: escalation margin cannot be negative");
  margin_.store(margin, std::memory_order_relaxed);
}

std::string TieredEngine::name() const {
  return "tiered(" + tier0_->name() + "->" + tier1_->name() + ")";
}

void TieredEngine::store_templates(const std::vector<FeatureVector>& templates) {
  tier0_->store_templates(templates);
  tier1_->store_templates(templates);
  // Checked after storing: backends like HierarchicalAmm only learn their
  // template count from store_templates().
  require(tier0_->template_count() == tier1_->template_count(),
          "TieredEngine: tiers disagree on the template count");
}

bool TieredEngine::should_escalate(const Recognition& first) const {
  if (force_tier0_.load(std::memory_order_relaxed)) {
    return false;  // brown-out: the cheap tier answers everything
  }
  if (config_.escalate_rejected && !first.accepted) {
    return true;
  }
  if (config_.escalate_ties && !first.unique) {
    return true;
  }
  return first.margin < margin_.load(std::memory_order_relaxed);
}

void TieredEngine::account(const Recognition& final_answer, bool escalated) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (escalated) {
    escalated_.fetch_add(1, std::memory_order_relaxed);
  }
  if (!final_answer.accepted) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
  }
}

Recognition TieredEngine::recognize(const FeatureVector& input) {
  Recognition first = tier0_->recognize(input);
  const TieredRecognitionDetail tier0_view{0, first.margin, first.dom, first.accepted};
  if (!should_escalate(first)) {
    first.detail = tier0_view;
    account(first, /*escalated=*/false);
    return first;
  }
  Recognition out = tier1_->recognize(input);
  out.detail = TieredRecognitionDetail{1, tier0_view.tier0_margin, tier0_view.tier0_dom,
                                       tier0_view.tier0_accepted};
  account(out, /*escalated=*/true);
  return out;
}

std::vector<Recognition> TieredEngine::recognize_batch(const std::vector<FeatureVector>& inputs,
                                                       std::size_t threads) {
  std::vector<Recognition> results = tier0_->recognize_batch(inputs, threads);

  std::vector<std::size_t> escalate;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (should_escalate(results[i])) {
      escalate.push_back(i);
    }
  }

  if (!escalate.empty()) {
    std::vector<FeatureVector> tail;
    tail.reserve(escalate.size());
    for (const std::size_t i : escalate) {
      tail.push_back(inputs[i]);
    }
    std::vector<Recognition> authoritative = tier1_->recognize_batch(tail, threads);
    for (std::size_t k = 0; k < escalate.size(); ++k) {
      const std::size_t i = escalate[k];
      authoritative[k].detail =
          TieredRecognitionDetail{1, results[i].margin, results[i].dom, results[i].accepted};
      results[i] = std::move(authoritative[k]);
    }
  }

  std::size_t k = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const bool escalated = k < escalate.size() && escalate[k] == i;
    if (escalated) {
      ++k;
    } else {
      results[i].detail = TieredRecognitionDetail{0, results[i].margin, results[i].dom,
                                                  results[i].accepted};
    }
    account(results[i], escalated);
  }
  return results;
}

PowerReport TieredEngine::power() const {
  PowerReport combined;
  combined.add_all_prefixed("tier0: ", tier0_->power());
  combined.add_all_prefixed("tier1: ", tier1_->power());
  return combined;
}

EnergyPerQuery TieredEngine::energy_per_query() const {
  // account() bumps queries_ before escalated_, so reading escalated_
  // first keeps a mid-traffic snapshot at escalated <= queries (a rate
  // above 1 would overstate the documented tier0+tier1 upper bound).
  const std::uint64_t escalated = escalated_.load(std::memory_order_relaxed);
  const std::uint64_t queries = queries_.load(std::memory_order_relaxed);
  const double rate =
      queries == 0 ? 1.0 : static_cast<double>(escalated) / static_cast<double>(queries);
  return tier0_->energy_per_query() + rate * tier1_->energy_per_query();
}

TieredCounters TieredEngine::counters() const {
  // Same read order as energy_per_query(): per-query counters before the
  // total, so escalated/rejected never exceed queries in the snapshot.
  TieredCounters out;
  out.escalated = escalated_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.queries = queries_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace spinsim
