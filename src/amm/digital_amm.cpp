#include "amm/digital_amm.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "core/parallel.hpp"

namespace spinsim {

DigitalAmm::DigitalAmm(const DigitalAmmConfig& config) : config_(config) {
  require(config.templates >= 2, "DigitalAmm: need at least two templates");
}

void DigitalAmm::store_templates(const std::vector<FeatureVector>& templates) {
  require(templates.size() == config_.templates,
          "DigitalAmm::store_templates: template count mismatch");
  template_levels_.clear();
  template_levels_.reserve(templates.size());
  for (const auto& t : templates) {
    require(t.dimension() == config_.features.dimension(),
            "DigitalAmm::store_templates: dimension mismatch");
    template_levels_.push_back(t.digital);
  }
}

Recognition DigitalAmm::recognize_one(const FeatureVector& input) const {
  require(!template_levels_.empty(), "DigitalAmm: store_templates() before recognition");
  require(input.dimension() == config_.features.dimension(),
          "DigitalAmm::recognize: input dimension mismatch");

  DigitalRecognitionDetail detail;
  detail.scores.reserve(template_levels_.size());
  std::uint64_t best = 0;
  std::size_t winner = 0;
  std::size_t best_count = 0;
  for (std::size_t j = 0; j < template_levels_.size(); ++j) {
    std::uint64_t acc = 0;
    const auto& tmpl = template_levels_[j];
    for (std::size_t i = 0; i < tmpl.size(); ++i) {
      acc += static_cast<std::uint64_t>(input.digital[i]) * tmpl[i];
    }
    detail.scores.push_back(acc);
    if (acc > best || best_count == 0) {
      best = acc;
      winner = j;
      best_count = 1;
    } else if (acc == best) {
      ++best_count;
    }
  }
  detail.score = best;

  Recognition out;
  out.winner = winner;
  out.unique = best_count == 1;
  out.score = static_cast<double>(best);
  // No accept threshold on the bit-exact path, but a tied winner is
  // still not an acceptable match (accepted implies unique).
  out.accepted = out.unique;
  out.detail = std::move(detail);
  return out;
}

Recognition DigitalAmm::recognize(const FeatureVector& input) { return recognize_one(input); }

std::vector<Recognition> DigitalAmm::recognize_batch(const std::vector<FeatureVector>& inputs,
                                                     std::size_t threads) {
  require(!template_levels_.empty(), "DigitalAmm: store_templates() before recognition");
  for (const auto& input : inputs) {
    require(input.dimension() == config_.features.dimension(),
            "DigitalAmm::recognize_batch: input dimension mismatch");
  }
  std::vector<Recognition> results(inputs.size());
  parallel_for_strided(inputs.size(), threads,
                       [&](std::size_t i) { results[i] = recognize_one(inputs[i]); });
  return results;
}

PowerReport DigitalAmm::power() const { return evaluation().power; }

EnergyPerQuery DigitalAmm::energy_per_query() const {
  return evaluation().energy_per_recognition / units::query;
}

DigitalAsicEvaluation DigitalAmm::evaluation() const {
  DigitalAsicDesign design;
  design.dimension = config_.features.dimension();
  design.templates = config_.templates;
  design.bits = config_.features.bits;
  design.clock = config_.clock;
  return digital_asic_power(design);
}

}  // namespace spinsim
