#include "amm/digital_amm.hpp"

#include "core/error.hpp"

namespace spinsim {

DigitalAmm::DigitalAmm(const DigitalAmmConfig& config) : config_(config) {
  require(config.templates >= 2, "DigitalAmm: need at least two templates");
}

void DigitalAmm::store_templates(const std::vector<FeatureVector>& templates) {
  require(templates.size() == config_.templates,
          "DigitalAmm::store_templates: template count mismatch");
  template_levels_.clear();
  template_levels_.reserve(templates.size());
  for (const auto& t : templates) {
    require(t.dimension() == config_.features.dimension(),
            "DigitalAmm::store_templates: dimension mismatch");
    template_levels_.push_back(t.digital);
  }
}

DigitalRecognition DigitalAmm::recognize(const FeatureVector& input) const {
  require(!template_levels_.empty(), "DigitalAmm: store_templates() before recognition");
  require(input.dimension() == config_.features.dimension(),
          "DigitalAmm::recognize: input dimension mismatch");

  DigitalRecognition out;
  out.scores.reserve(template_levels_.size());
  std::uint64_t best = 0;
  for (std::size_t j = 0; j < template_levels_.size(); ++j) {
    std::uint64_t acc = 0;
    const auto& tmpl = template_levels_[j];
    for (std::size_t i = 0; i < tmpl.size(); ++i) {
      acc += static_cast<std::uint64_t>(input.digital[i]) * tmpl[i];
    }
    out.scores.push_back(acc);
    if (acc > best) {
      best = acc;
      out.winner = j;
    }
  }
  out.score = best;
  return out;
}

DigitalAsicEvaluation DigitalAmm::evaluation() const {
  DigitalAsicDesign design;
  design.dimension = config_.features.dimension();
  design.templates = config_.templates;
  design.bits = config_.features.bits;
  design.clock = config_.clock;
  return digital_asic_power(design);
}

}  // namespace spinsim
