#include "amm/leaf_cache_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/error.hpp"
#include "energy/spin_power.hpp"

namespace spinsim {

namespace {

/// splitmix64 finalizer (seed derivation for the slot substrates).
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

LeafCacheEngine::LeafCacheEngine(const LeafCacheEngineConfig& config) : config_(config) {
  require(config.hierarchy.clusters >= 2, "LeafCacheEngine: need at least two clusters");
  require(config.leaf_slots >= 1, "LeafCacheEngine: need at least one leaf slot");
  require(config.endurance.verify_tolerance > 0.0,
          "LeafCacheEngine: verify_tolerance must be positive");
  require(config.endurance.rewrite_attempts >= 1,
          "LeafCacheEngine: need at least one rewrite attempt");
}

void LeafCacheEngine::store_templates(const std::vector<FeatureVector>& templates) {
  const HierarchicalAmmConfig& h = config_.hierarchy;
  total_templates_ = templates.size();

  // 1. Cluster the template vectors and build the router — the identical
  //    shared schedule a HierarchicalAmm with this config runs, which is
  //    what keeps the two engines' routing in lockstep.
  std::vector<FeatureVector> router_templates;
  members_ = cluster_templates(h, templates, router_templates);
  router_ = std::make_unique<SpinAmm>(hierarchical_module_config(h, h.clusters, 0));
  router_->store_templates(router_templates);

  // 2. Record the per-cluster template slices; leaves materialise on
  //    first touch instead of being programmed here.
  leaf_sets_.assign(h.clusters, {});
  largest_leaf_ = 0;
  for (std::size_t c = 0; c < h.clusters; ++c) {
    largest_leaf_ = std::max(largest_leaf_, members_[c].size());
    if (members_[c].size() < 2) {
      continue;  // singleton: the router answers it, no leaf needed
    }
    leaf_sets_[c].reserve(members_[c].size());
    for (std::size_t global : members_[c]) {
      leaf_sets_[c].push_back(templates[global]);
    }
  }

  pinned_.assign(h.clusters, false);
  slot_of_.assign(h.clusters, -1);
  slots_.clear();
  lru_clock_ = 0;
  queries_since_verify_ = 0;

  // 3. Endurance mode: any endurance feature (or device wear on the
  //    spec) backs every slot with a persistent physical substrate. All
  //    substrates share one write-noise key so answers are independent
  //    of which slot a cluster lands in (keeps batch and sequential
  //    serving in lockstep); wear sampling stays per-slot.
  endurance_active_ = config_.endurance.enabled() || h.memristor.wear_enabled();
  substrates_.clear();
  if (endurance_active_) {
    const std::size_t physical_columns =
        std::max<std::size_t>(largest_leaf_, 2) + config_.endurance.spare_columns;
    const std::uint64_t noise_seed = mix64(h.seed + 0xEA51D00DULL);
    substrates_.reserve(config_.leaf_slots);
    for (std::size_t s = 0; s < config_.leaf_slots; ++s) {
      substrates_.push_back(std::make_shared<CrossbarSubstrate>(
          h.memristor, h.features.dimension(), physical_columns, noise_seed,
          mix64(noise_seed + s + 1)));
    }
  }
  slot_writes_ = std::make_unique<std::atomic<std::uint64_t>[]>(config_.leaf_slots);
  for (std::size_t s = 0; s < config_.leaf_slots; ++s) {
    slot_writes_[s].store(0, std::memory_order_relaxed);
  }

  // A re-store serves a new template set: the traffic counters must not
  // blend the old workload into the new hit rate / amortized energy.
  queries_.store(0, std::memory_order_relaxed);
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  devices_written_.store(0, std::memory_order_relaxed);
  columns_written_.store(0, std::memory_order_relaxed);
  writes_saved_.store(0, std::memory_order_relaxed);
  repair_writes_.store(0, std::memory_order_relaxed);
  verify_scans_.store(0, std::memory_order_relaxed);
  devices_checked_.store(0, std::memory_order_relaxed);
  faults_detected_.store(0, std::memory_order_relaxed);
  devices_rewritten_.store(0, std::memory_order_relaxed);
  columns_remapped_.store(0, std::memory_order_relaxed);
  repair_reloads_.store(0, std::memory_order_relaxed);
  unrepairable_.store(0, std::memory_order_relaxed);
  worn_out_devices_.store(0, std::memory_order_relaxed);
}

SpinAmm* LeafCacheEngine::ensure_resident(std::size_t cluster) {
  if (leaf_sets_[cluster].empty()) {
    return nullptr;  // singleton cluster, served by the router
  }
  ++lru_clock_;
  const std::ptrdiff_t have = slot_of_[cluster];
  if (have >= 0) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    slots_[static_cast<std::size_t>(have)].last_used = lru_clock_;
    return slots_[static_cast<std::size_t>(have)].engine.get();
  }

  const std::size_t victim = pick_victim();
  load_slot(victim, cluster, /*repair_reload=*/false);
  misses_.fetch_add(1, std::memory_order_relaxed);
  return slots_[victim].engine.get();
}

std::size_t LeafCacheEngine::pick_victim() {
  // Free slot first.
  if (slots_.size() < config_.leaf_slots) {
    slots_.emplace_back();
    return slots_.size() - 1;
  }

  // LRU among the unpinned slots.
  std::size_t victim = slots_.size();
  std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    if (!pinned_[slots_[s].cluster] && slots_[s].last_used < oldest) {
      oldest = slots_[s].last_used;
      victim = s;
    }
  }
  require(victim < slots_.size(),
          "LeafCacheEngine: every leaf slot is pinned; cannot serve a miss");

  if (config_.endurance.policy == LeafSlotPolicy::kWearLeveled) {
    // Static wear leveling, flash-FTL style: while pool wear is balanced
    // the victim stays the LRU choice (best hit rate); once the gap
    // between the most- and least-written slots reaches wear_delta, the
    // incoming writes land on the least-worn unpinned slot instead,
    // capping the pool's maximum device wear.
    std::uint64_t lowest = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t highest = 0;
    std::size_t least_worn = slots_.size();
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      const std::uint64_t writes = slot_writes_[s].load(std::memory_order_relaxed);
      highest = std::max(highest, writes);
      if (!pinned_[slots_[s].cluster] && writes < lowest) {
        lowest = writes;
        least_worn = s;
      }
    }
    if (least_worn < slots_.size() && highest - lowest >= config_.endurance.wear_delta) {
      victim = least_worn;
    }
  }

  slot_of_[slots_[victim].cluster] = -1;
  evictions_.fetch_add(1, std::memory_order_relaxed);
  return victim;
}

void LeafCacheEngine::load_slot(std::size_t slot_index, std::size_t cluster,
                                bool repair_reload) {
  // Program the cluster's templates into the slot. The module derives
  // through hierarchical_module_config with the same salt a resident
  // HierarchicalAmm leaf would use, so absent endurance mode the
  // realised device noise — and therefore every answer — is
  // bit-identical across reprogram cycles.
  Slot& slot = slots_[slot_index];
  slot.cluster = cluster;
  slot.last_used = lru_clock_;
  slot.engine = std::make_unique<SpinAmm>(
      hierarchical_module_config(config_.hierarchy, leaf_sets_[cluster].size(), cluster + 1));
  slot.charged_writes = 0;
  slot.charged_skips = 0;
  slot.charged_columns = 0;
  slot.col_map.clear();
  if (endurance_active_) {
    slot.col_map = substrates_[slot_index]->allocate_columns(leaf_sets_[cluster].size());
    slot.engine->attach_substrate(substrates_[slot_index], slot.col_map,
                                  config_.endurance.delta_writes);
  }
  slot.engine->store_templates(leaf_sets_[cluster]);
  slot_of_[cluster] = static_cast<std::ptrdiff_t>(slot_index);
  charge_slot(slot_index, repair_reload);
  if (endurance_active_) {
    refresh_worn_count();
  }
}

void LeafCacheEngine::charge_slot(std::size_t slot_index, bool repair) {
  Slot& slot = slots_[slot_index];
  const RcmArray& rcm = slot.engine->crossbar();
  const std::uint64_t writes = rcm.device_writes() - slot.charged_writes;
  const std::uint64_t skips = rcm.device_write_skips() - slot.charged_skips;
  const std::uint64_t columns = rcm.columns_touched() - slot.charged_columns;
  slot.charged_writes += writes;
  slot.charged_skips += skips;
  slot.charged_columns += columns;
  devices_written_.fetch_add(writes, std::memory_order_relaxed);
  columns_written_.fetch_add(columns, std::memory_order_relaxed);
  writes_saved_.fetch_add(skips, std::memory_order_relaxed);
  if (repair) {
    repair_writes_.fetch_add(writes, std::memory_order_relaxed);
  }
  slot_writes_[slot_index].fetch_add(writes, std::memory_order_relaxed);
}

void LeafCacheEngine::maybe_verify(std::uint64_t served) {
  if (config_.endurance.verify_interval == 0 || !endurance_active_) {
    return;
  }
  queries_since_verify_ += served;
  if (queries_since_verify_ >= config_.endurance.verify_interval) {
    queries_since_verify_ = 0;
    verify_and_repair();
  }
}

bool LeafCacheEngine::verify_ok(double weight, double realised) const {
  const MemristorSpec& spec = config_.hierarchy.memristor;
  const double target = spec.level_conductance(spec.weight_to_level(weight));
  // The window is sized against full scale, not the target: the column
  // dot product weighs *absolute* conductance error, so a low-level
  // device drifted by a multiple of g_min is harmless while the same
  // relative error at g_max is not. A stuck-short (4x g_max) trips the
  // window for any target; a stuck-open only trips targets large enough
  // to actually move the dot product.
  return std::abs(realised - target) <= config_.endurance.verify_tolerance * spec.g_max();
}

void LeafCacheEngine::refresh_worn_count() {
  std::uint64_t worn = 0;
  for (const auto& substrate : substrates_) {
    worn += substrate->worn_out_devices();
  }
  worn_out_devices_.store(worn, std::memory_order_relaxed);
}

LeafRepairReport LeafCacheEngine::verify_and_repair() {
  require(router_ != nullptr, "LeafCacheEngine: store_templates() first");
  LeafRepairReport report;
  if (!endurance_active_) {
    return report;  // plain mode: no substrates, nothing to verify against
  }
  verify_scans_.fetch_add(1, std::memory_order_relaxed);

  const std::size_t dimension = config_.hierarchy.features.dimension();
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    if (slots_[s].engine == nullptr) {
      continue;
    }
    const std::size_t cluster = slots_[s].cluster;
    const std::vector<FeatureVector>& templates = leaf_sets_[cluster];
    RcmArray& rcm = slots_[s].engine->mutable_crossbar();

    // Verify-read every device against its programmed level window;
    // rewrite out-of-window devices in place, collect the columns whose
    // devices would not come back.
    std::vector<std::size_t> dead_columns;
    bool rewrote = false;
    for (std::size_t j = 0; j < templates.size(); ++j) {
      bool column_dead = false;
      for (std::size_t r = 0; r < dimension; ++r) {
        ++report.devices_checked;
        const double weight = templates[j].analog[r];
        if (verify_ok(weight, rcm.conductance(r, j))) {
          continue;
        }
        ++report.faults_detected;
        if (!config_.endurance.repair) {
          continue;  // detect-only control arm
        }
        bool fixed = false;
        for (std::size_t attempt = 0;
             attempt < config_.endurance.rewrite_attempts && !fixed; ++attempt) {
          rcm.program_cell(r, j, weight);
          rewrote = true;
          fixed = verify_ok(weight, rcm.conductance(r, j));
        }
        if (fixed) {
          ++report.devices_rewritten;
        } else {
          column_dead = true;
        }
      }
      if (column_dead) {
        dead_columns.push_back(j);
      }
    }
    if (rewrote) {
      rcm.equalize_rows();
    }
    charge_slot(s, /*repair=*/true);

    if (!dead_columns.empty() && config_.endurance.repair) {
      // Spare-column remap: retire the physical columns behind the dead
      // devices and reload the leaf on the remaining healthy columns
      // (delta reprogramming keeps the reload cheap — only the moved
      // columns rewrite). When the spare budget is gone the leaf keeps
      // serving degraded on retired columns.
      CrossbarSubstrate& substrate = *substrates_[s];
      for (const std::size_t j : dead_columns) {
        const std::size_t physical = slots_[s].col_map[j];
        if (!substrate.column_retired(physical)) {
          substrate.retire_column(physical);
          ++report.columns_remapped;
        }
      }
      if (substrate.healthy_columns() < templates.size()) {
        report.unrepairable +=
            static_cast<std::uint64_t>(templates.size() - substrate.healthy_columns());
      }
      slot_of_[cluster] = -1;
      load_slot(s, cluster, /*repair_reload=*/true);
      ++report.repair_reloads;
    }
  }

  devices_checked_.fetch_add(report.devices_checked, std::memory_order_relaxed);
  faults_detected_.fetch_add(report.faults_detected, std::memory_order_relaxed);
  devices_rewritten_.fetch_add(report.devices_rewritten, std::memory_order_relaxed);
  columns_remapped_.fetch_add(report.columns_remapped, std::memory_order_relaxed);
  repair_reloads_.fetch_add(report.repair_reloads, std::memory_order_relaxed);
  unrepairable_.fetch_add(report.unrepairable, std::memory_order_relaxed);
  refresh_worn_count();
  return report;
}

void LeafCacheEngine::inject_slot_fault(std::size_t slot, std::size_t row, std::size_t column,
                                        RcmArray::StuckFault fault) {
  require(router_ != nullptr, "LeafCacheEngine: store_templates() first");
  require(endurance_active_,
          "LeafCacheEngine::inject_slot_fault: requires endurance mode (substrate slots)");
  require(slot < config_.leaf_slots, "LeafCacheEngine::inject_slot_fault: slot out of range");
  CrossbarSubstrate& substrate = *substrates_[slot];
  if (slot < slots_.size() && slots_[slot].engine != nullptr) {
    const std::vector<std::size_t>& map = slots_[slot].col_map;
    for (std::size_t j = 0; j < map.size(); ++j) {
      if (map[j] == column) {
        // Resident and mapped: damage the live array, which writes the
        // failure through to the substrate itself.
        slots_[slot].engine->mutable_crossbar().inject_fault(row, j, fault);
        refresh_worn_count();
        return;
      }
    }
  }
  substrate.mark_failed(row, column,
                        fault == RcmArray::StuckFault::kOpen ? MemristorHealth::kStuckOpen
                                                             : MemristorHealth::kStuckShort);
  refresh_worn_count();
}

const CrossbarSubstrate& LeafCacheEngine::slot_substrate(std::size_t slot) const {
  require(endurance_active_, "LeafCacheEngine::slot_substrate: requires endurance mode");
  require(slot < substrates_.size(), "LeafCacheEngine::slot_substrate: slot out of range");
  return *substrates_[slot];
}

Recognition LeafCacheEngine::recognize(const FeatureVector& input) {
  require(router_ != nullptr, "LeafCacheEngine: store_templates() before recognition");

  const Recognition routed = router_->recognize(input);
  const std::size_t cluster = routed.winner;
  queries_.fetch_add(1, std::memory_order_relaxed);
  maybe_verify(1);

  const auto& member_list = members_[cluster];
  SPINSIM_ASSERT(!member_list.empty(), "LeafCacheEngine: routed to an empty cluster");
  SpinAmm* leaf = ensure_resident(cluster);
  if (leaf == nullptr) {
    // Singleton cluster: the router answered it; no slot was consulted,
    // so neither hit nor miss is charged.
    Recognition single = routed;
    single.unique = true;
    return finish_routed(single, routed, cluster, member_list.front(),
                         config_.hierarchy.accept_threshold);
  }

  const Recognition answer = leaf->recognize(input);
  return finish_routed(answer, routed, cluster, member_list[answer.winner],
                       config_.hierarchy.accept_threshold);
}

std::vector<Recognition> LeafCacheEngine::recognize_batch(const std::vector<FeatureVector>& inputs,
                                                          std::size_t threads) {
  require(router_ != nullptr, "LeafCacheEngine: store_templates() before recognition");

  std::vector<Recognition> results(inputs.size());
  if (inputs.empty()) {
    return results;
  }

  // Stage 1: route every input in one router batch.
  const std::vector<Recognition> routed = router_->recognize_batch(inputs, threads);
  queries_.fetch_add(inputs.size(), std::memory_order_relaxed);

  // Stage 2: group queries per cluster (input order preserved within each
  // group) — the whole group shares at most one reprogram. Groups whose
  // leaf is already resident are served first (pure hits, touching no
  // slot contents), then the misses, each partition in ascending cluster
  // order: a miss can then only evict a leaf whose group was already
  // served, so extra slots actually raise the hit rate instead of being
  // scanned over, and the order derives purely from the (deterministic)
  // cache state at batch start, keeping the eviction schedule identical
  // under any thread count.
  std::vector<std::vector<std::size_t>> by_cluster(members_.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    by_cluster[routed[i].winner].push_back(i);
  }
  std::vector<std::size_t> serve_order;
  serve_order.reserve(members_.size());
  for (std::size_t c = 0; c < members_.size(); ++c) {
    if (!by_cluster[c].empty() && slot_of_[c] >= 0) {
      serve_order.push_back(c);
    }
  }
  for (std::size_t c = 0; c < members_.size(); ++c) {
    if (!by_cluster[c].empty() && slot_of_[c] < 0) {
      serve_order.push_back(c);
    }
  }

  for (const std::size_t c : serve_order) {
    const auto& member_list = members_[c];
    SPINSIM_ASSERT(!member_list.empty(), "LeafCacheEngine: routed to an empty cluster");
    SpinAmm* leaf = ensure_resident(c);
    if (leaf == nullptr) {
      for (const std::size_t i : by_cluster[c]) {
        Recognition single = routed[i];
        single.unique = true;
        results[i] = finish_routed(single, routed[i], c, member_list.front(),
                                   config_.hierarchy.accept_threshold);
      }
      continue;
    }
    // The whole group rides the one residency check above: count the
    // queries beyond the first as hits so hit_rate reflects miss-cost
    // sharing the same way sequential recognize() accounting would see
    // repeated visits to a resident leaf.
    hits_.fetch_add(by_cluster[c].size() - 1, std::memory_order_relaxed);
    std::vector<FeatureVector> leaf_inputs;
    leaf_inputs.reserve(by_cluster[c].size());
    for (const std::size_t i : by_cluster[c]) {
      leaf_inputs.push_back(inputs[i]);
    }
    const std::vector<Recognition> leaf_results = leaf->recognize_batch(leaf_inputs, threads);
    for (std::size_t k = 0; k < by_cluster[c].size(); ++k) {
      const std::size_t i = by_cluster[c][k];
      results[i] = finish_routed(leaf_results[k], routed[i], c, member_list[leaf_results[k].winner],
                                 config_.hierarchy.accept_threshold);
    }
  }
  maybe_verify(inputs.size());
  return results;
}

void LeafCacheEngine::pin(std::size_t cluster) {
  require(cluster < pinned_.size(), "LeafCacheEngine::pin: cluster out of range");
  if (pinned_[cluster] || leaf_sets_[cluster].empty()) {
    // Singleton clusters are answered by the router and never occupy a
    // slot, so pinning one is a no-op — and must not eat the pin budget.
    return;
  }
  std::size_t already_pinned = 0;
  std::size_t eligible = 0;  // clusters that can ever occupy a slot
  for (std::size_t c = 0; c < pinned_.size(); ++c) {
    already_pinned += (pinned_[c] && !leaf_sets_[c].empty()) ? 1 : 0;
    eligible += leaf_sets_[c].empty() ? 0 : 1;
  }
  // Pinning must leave a slot serviceable for misses — unless every
  // slot-eligible cluster fits in the pool at once, in which case no
  // miss can ever need an eviction and any pin mix is safe.
  require(already_pinned + 1 < config_.leaf_slots || config_.leaf_slots >= eligible,
          "LeafCacheEngine::pin: at least one slot must stay unpinned");
  pinned_[cluster] = true;
}

void LeafCacheEngine::unpin(std::size_t cluster) {
  require(cluster < pinned_.size(), "LeafCacheEngine::unpin: cluster out of range");
  pinned_[cluster] = false;
}

bool LeafCacheEngine::pinned(std::size_t cluster) const {
  require(cluster < pinned_.size(), "LeafCacheEngine::pinned: cluster out of range");
  return pinned_[cluster];
}

bool LeafCacheEngine::resident(std::size_t cluster) const {
  require(cluster < slot_of_.size(), "LeafCacheEngine::resident: cluster out of range");
  return slot_of_[cluster] >= 0;
}

const std::vector<std::size_t>& LeafCacheEngine::leaf_members(std::size_t cluster) const {
  require(cluster < members_.size(), "LeafCacheEngine::leaf_members: out of range");
  return members_[cluster];
}

LeafCacheCounters LeafCacheEngine::counters() const {
  LeafCacheCounters out;
  // Per-event counters before the total, so a mid-traffic snapshot never
  // shows more hits+misses than queries admitted.
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.queries = queries_.load(std::memory_order_relaxed);
  out.reprograms = out.misses;
  out.device_writes = devices_written_.load(std::memory_order_relaxed);
  out.device_writes_saved = writes_saved_.load(std::memory_order_relaxed);
  out.repair_device_writes = repair_writes_.load(std::memory_order_relaxed);
  out.verify_scans = verify_scans_.load(std::memory_order_relaxed);
  out.devices_checked = devices_checked_.load(std::memory_order_relaxed);
  out.faults_detected = faults_detected_.load(std::memory_order_relaxed);
  out.devices_rewritten = devices_rewritten_.load(std::memory_order_relaxed);
  out.columns_remapped = columns_remapped_.load(std::memory_order_relaxed);
  out.repair_reloads = repair_reloads_.load(std::memory_order_relaxed);
  out.unrepairable = unrepairable_.load(std::memory_order_relaxed);
  out.worn_out_devices = worn_out_devices_.load(std::memory_order_relaxed);
  if (slot_writes_ != nullptr) {
    out.slot_write_cycles.reserve(config_.leaf_slots);
    for (std::size_t s = 0; s < config_.leaf_slots; ++s) {
      out.slot_write_cycles.push_back(slot_writes_[s].load(std::memory_order_relaxed));
    }
  }
  out.reprogram_energy =
      config_.write_cost.device_write_energy(config_.hierarchy.memristor) *
      static_cast<double>(out.device_writes);
  out.repair_energy =
      config_.write_cost.device_write_energy(config_.hierarchy.memristor) *
      static_cast<double>(out.repair_device_writes);
  out.reprogram_latency = config_.write_cost.array_write_latency(
      static_cast<std::size_t>(columns_written_.load(std::memory_order_relaxed)));
  return out;
}

EnergyPerQuery LeafCacheEngine::search_energy_per_query() const {
  // Router search followed by one leaf search, each an M-cycle SAR/WTA
  // conversion — the same active path a fully resident hierarchy prices.
  const HierarchicalAmmConfig& h = config_.hierarchy;
  const Power search_power =
      spin_amm_power(hierarchical_module_design(h, h.clusters)).total() +
      spin_amm_power(hierarchical_module_design(h, largest_leaf_)).total();
  return search_power * static_cast<double>(h.wta_bits) / (h.clock * units::Hz) / units::query;
}

EnergyPerQuery LeafCacheEngine::energy_per_query() const {
  require(router_ != nullptr, "LeafCacheEngine: store_templates() first");
  const EnergyPerQuery search = search_energy_per_query();
  const std::uint64_t devices = devices_written_.load(std::memory_order_relaxed);
  const std::uint64_t queries = queries_.load(std::memory_order_relaxed);
  const Energy device_energy = config_.write_cost.device_write_energy(config_.hierarchy.memristor);
  if (queries == 0) {
    // No traffic yet: assume every query misses the largest leaf — the
    // conservative upper bound, mirroring TieredEngine's convention.
    const Energy all_miss = device_energy *
                            static_cast<double>(config_.hierarchy.features.dimension()) *
                            static_cast<double>(std::max<std::size_t>(largest_leaf_, 2));
    return search + all_miss / units::query;
  }
  return search + device_energy * static_cast<double>(devices) /
                      Queries{static_cast<double>(queries)};
}

PowerReport LeafCacheEngine::power() const {
  require(router_ != nullptr, "LeafCacheEngine: store_templates() first");
  const HierarchicalAmmConfig& h = config_.hierarchy;
  PowerReport combined;
  combined.add_all_prefixed("router: ",
                            spin_amm_power(hierarchical_module_design(h, h.clusters)));
  combined.add_all_prefixed("leaf: ",
                            spin_amm_power(hierarchical_module_design(h, largest_leaf_)));
  // Amortized write power at the observed miss mix: reprogram energy per
  // query times the design's query rate (one M-cycle search per query).
  const EnergyPerQuery write_energy_per_query = energy_per_query() - search_energy_per_query();
  const auto query_rate = (h.clock * units::Hz) / static_cast<double>(h.wta_bits) * units::query;
  combined.add("write: reprogram (amortized)", PowerKind::kDynamic,
               write_energy_per_query * query_rate);
  return combined;
}

}  // namespace spinsim
