#include "amm/leaf_cache_engine.hpp"

#include <algorithm>
#include <limits>

#include "core/error.hpp"
#include "energy/spin_power.hpp"

namespace spinsim {

LeafCacheEngine::LeafCacheEngine(const LeafCacheEngineConfig& config) : config_(config) {
  require(config.hierarchy.clusters >= 2, "LeafCacheEngine: need at least two clusters");
  require(config.leaf_slots >= 1, "LeafCacheEngine: need at least one leaf slot");
}

void LeafCacheEngine::store_templates(const std::vector<FeatureVector>& templates) {
  const HierarchicalAmmConfig& h = config_.hierarchy;
  total_templates_ = templates.size();

  // 1. Cluster the template vectors and build the router — the identical
  //    shared schedule a HierarchicalAmm with this config runs, which is
  //    what keeps the two engines' routing in lockstep.
  std::vector<FeatureVector> router_templates;
  members_ = cluster_templates(h, templates, router_templates);
  router_ = std::make_unique<SpinAmm>(hierarchical_module_config(h, h.clusters, 0));
  router_->store_templates(router_templates);

  // 2. Record the per-cluster template slices; leaves materialise on
  //    first touch instead of being programmed here.
  leaf_sets_.assign(h.clusters, {});
  largest_leaf_ = 0;
  for (std::size_t c = 0; c < h.clusters; ++c) {
    largest_leaf_ = std::max(largest_leaf_, members_[c].size());
    if (members_[c].size() < 2) {
      continue;  // singleton: the router answers it, no leaf needed
    }
    leaf_sets_[c].reserve(members_[c].size());
    for (std::size_t global : members_[c]) {
      leaf_sets_[c].push_back(templates[global]);
    }
  }

  pinned_.assign(h.clusters, false);
  slot_of_.assign(h.clusters, -1);
  slots_.clear();
  lru_clock_ = 0;

  // A re-store serves a new template set: the traffic counters must not
  // blend the old workload into the new hit rate / amortized energy.
  queries_.store(0, std::memory_order_relaxed);
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  devices_written_.store(0, std::memory_order_relaxed);
  columns_written_.store(0, std::memory_order_relaxed);
}

SpinAmm* LeafCacheEngine::ensure_resident(std::size_t cluster) {
  if (leaf_sets_[cluster].empty()) {
    return nullptr;  // singleton cluster, served by the router
  }
  ++lru_clock_;
  const std::ptrdiff_t have = slot_of_[cluster];
  if (have >= 0) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    slots_[static_cast<std::size_t>(have)].last_used = lru_clock_;
    return slots_[static_cast<std::size_t>(have)].engine.get();
  }

  // Miss: take a free slot, or evict the least-recently-used unpinned one.
  std::size_t victim = slots_.size();
  if (slots_.size() < config_.leaf_slots) {
    slots_.emplace_back();
  } else {
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      if (!pinned_[slots_[s].cluster] && slots_[s].last_used < oldest) {
        oldest = slots_[s].last_used;
        victim = s;
      }
    }
    require(victim < slots_.size(),
            "LeafCacheEngine: every leaf slot is pinned; cannot serve a miss");
    slot_of_[slots_[victim].cluster] = -1;
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }

  // Program the cluster's templates into the slot. The module derives
  // through hierarchical_module_config with the same salt a resident
  // HierarchicalAmm leaf would use, so the realised device noise — and
  // therefore every answer — is bit-identical across reprogram cycles.
  Slot& slot = slots_[victim];
  slot.cluster = cluster;
  slot.last_used = lru_clock_;
  slot.engine = std::make_unique<SpinAmm>(
      hierarchical_module_config(config_.hierarchy, leaf_sets_[cluster].size(), cluster + 1));
  slot.engine->store_templates(leaf_sets_[cluster]);
  slot_of_[cluster] = static_cast<std::ptrdiff_t>(victim);

  misses_.fetch_add(1, std::memory_order_relaxed);
  charge_reprogram(leaf_sets_[cluster].size());
  return slot.engine.get();
}

void LeafCacheEngine::charge_reprogram(std::size_t columns) {
  devices_written_.fetch_add(
      static_cast<std::uint64_t>(config_.hierarchy.features.dimension()) * columns,
      std::memory_order_relaxed);
  columns_written_.fetch_add(columns, std::memory_order_relaxed);
}

Recognition LeafCacheEngine::recognize(const FeatureVector& input) {
  require(router_ != nullptr, "LeafCacheEngine: store_templates() before recognition");

  const Recognition routed = router_->recognize(input);
  const std::size_t cluster = routed.winner;
  queries_.fetch_add(1, std::memory_order_relaxed);

  const auto& member_list = members_[cluster];
  SPINSIM_ASSERT(!member_list.empty(), "LeafCacheEngine: routed to an empty cluster");
  SpinAmm* leaf = ensure_resident(cluster);
  if (leaf == nullptr) {
    // Singleton cluster: the router answered it; no slot was consulted,
    // so neither hit nor miss is charged.
    Recognition single = routed;
    single.unique = true;
    return finish_routed(single, routed, cluster, member_list.front(),
                         config_.hierarchy.accept_threshold);
  }

  const Recognition answer = leaf->recognize(input);
  return finish_routed(answer, routed, cluster, member_list[answer.winner],
                       config_.hierarchy.accept_threshold);
}

std::vector<Recognition> LeafCacheEngine::recognize_batch(const std::vector<FeatureVector>& inputs,
                                                          std::size_t threads) {
  require(router_ != nullptr, "LeafCacheEngine: store_templates() before recognition");

  std::vector<Recognition> results(inputs.size());
  if (inputs.empty()) {
    return results;
  }

  // Stage 1: route every input in one router batch.
  const std::vector<Recognition> routed = router_->recognize_batch(inputs, threads);
  queries_.fetch_add(inputs.size(), std::memory_order_relaxed);

  // Stage 2: group queries per cluster (input order preserved within each
  // group) — the whole group shares at most one reprogram. Groups whose
  // leaf is already resident are served first (pure hits, touching no
  // slot contents), then the misses, each partition in ascending cluster
  // order: a miss can then only evict a leaf whose group was already
  // served, so extra slots actually raise the hit rate instead of being
  // scanned over, and the order derives purely from the (deterministic)
  // cache state at batch start, keeping the eviction schedule identical
  // under any thread count.
  std::vector<std::vector<std::size_t>> by_cluster(members_.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    by_cluster[routed[i].winner].push_back(i);
  }
  std::vector<std::size_t> serve_order;
  serve_order.reserve(members_.size());
  for (std::size_t c = 0; c < members_.size(); ++c) {
    if (!by_cluster[c].empty() && slot_of_[c] >= 0) {
      serve_order.push_back(c);
    }
  }
  for (std::size_t c = 0; c < members_.size(); ++c) {
    if (!by_cluster[c].empty() && slot_of_[c] < 0) {
      serve_order.push_back(c);
    }
  }

  for (const std::size_t c : serve_order) {
    const auto& member_list = members_[c];
    SPINSIM_ASSERT(!member_list.empty(), "LeafCacheEngine: routed to an empty cluster");
    SpinAmm* leaf = ensure_resident(c);
    if (leaf == nullptr) {
      for (const std::size_t i : by_cluster[c]) {
        Recognition single = routed[i];
        single.unique = true;
        results[i] = finish_routed(single, routed[i], c, member_list.front(),
                                   config_.hierarchy.accept_threshold);
      }
      continue;
    }
    // The whole group rides the one residency check above: count the
    // queries beyond the first as hits so hit_rate reflects miss-cost
    // sharing the same way sequential recognize() accounting would see
    // repeated visits to a resident leaf.
    hits_.fetch_add(by_cluster[c].size() - 1, std::memory_order_relaxed);
    std::vector<FeatureVector> leaf_inputs;
    leaf_inputs.reserve(by_cluster[c].size());
    for (const std::size_t i : by_cluster[c]) {
      leaf_inputs.push_back(inputs[i]);
    }
    const std::vector<Recognition> leaf_results = leaf->recognize_batch(leaf_inputs, threads);
    for (std::size_t k = 0; k < by_cluster[c].size(); ++k) {
      const std::size_t i = by_cluster[c][k];
      results[i] = finish_routed(leaf_results[k], routed[i], c, member_list[leaf_results[k].winner],
                                 config_.hierarchy.accept_threshold);
    }
  }
  return results;
}

void LeafCacheEngine::pin(std::size_t cluster) {
  require(cluster < pinned_.size(), "LeafCacheEngine::pin: cluster out of range");
  if (pinned_[cluster] || leaf_sets_[cluster].empty()) {
    // Singleton clusters are answered by the router and never occupy a
    // slot, so pinning one is a no-op — and must not eat the pin budget.
    return;
  }
  std::size_t already_pinned = 0;
  std::size_t eligible = 0;  // clusters that can ever occupy a slot
  for (std::size_t c = 0; c < pinned_.size(); ++c) {
    already_pinned += (pinned_[c] && !leaf_sets_[c].empty()) ? 1 : 0;
    eligible += leaf_sets_[c].empty() ? 0 : 1;
  }
  // Pinning must leave a slot serviceable for misses — unless every
  // slot-eligible cluster fits in the pool at once, in which case no
  // miss can ever need an eviction and any pin mix is safe.
  require(already_pinned + 1 < config_.leaf_slots || config_.leaf_slots >= eligible,
          "LeafCacheEngine::pin: at least one slot must stay unpinned");
  pinned_[cluster] = true;
}

void LeafCacheEngine::unpin(std::size_t cluster) {
  require(cluster < pinned_.size(), "LeafCacheEngine::unpin: cluster out of range");
  pinned_[cluster] = false;
}

bool LeafCacheEngine::pinned(std::size_t cluster) const {
  require(cluster < pinned_.size(), "LeafCacheEngine::pinned: cluster out of range");
  return pinned_[cluster];
}

bool LeafCacheEngine::resident(std::size_t cluster) const {
  require(cluster < slot_of_.size(), "LeafCacheEngine::resident: cluster out of range");
  return slot_of_[cluster] >= 0;
}

const std::vector<std::size_t>& LeafCacheEngine::leaf_members(std::size_t cluster) const {
  require(cluster < members_.size(), "LeafCacheEngine::leaf_members: out of range");
  return members_[cluster];
}

LeafCacheCounters LeafCacheEngine::counters() const {
  LeafCacheCounters out;
  // Per-event counters before the total, so a mid-traffic snapshot never
  // shows more hits+misses than queries admitted.
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.queries = queries_.load(std::memory_order_relaxed);
  out.reprograms = out.misses;
  out.reprogram_energy_j =
      config_.write_cost.device_write_energy(config_.hierarchy.memristor) *
      static_cast<double>(devices_written_.load(std::memory_order_relaxed));
  out.reprogram_latency_s = config_.write_cost.array_write_latency(
      static_cast<std::size_t>(columns_written_.load(std::memory_order_relaxed)));
  return out;
}

double LeafCacheEngine::search_energy_per_query() const {
  // Router search followed by one leaf search, each an M-cycle SAR/WTA
  // conversion — the same active path a fully resident hierarchy prices.
  const HierarchicalAmmConfig& h = config_.hierarchy;
  const double search_power =
      spin_amm_power(hierarchical_module_design(h, h.clusters)).total() +
      spin_amm_power(hierarchical_module_design(h, largest_leaf_)).total();
  return search_power * static_cast<double>(h.wta_bits) / h.clock;
}

double LeafCacheEngine::energy_per_query() const {
  require(router_ != nullptr, "LeafCacheEngine: store_templates() first");
  const double search = search_energy_per_query();
  const std::uint64_t devices = devices_written_.load(std::memory_order_relaxed);
  const std::uint64_t queries = queries_.load(std::memory_order_relaxed);
  const double device_energy = config_.write_cost.device_write_energy(config_.hierarchy.memristor);
  if (queries == 0) {
    // No traffic yet: assume every query misses the largest leaf — the
    // conservative upper bound, mirroring TieredEngine's convention.
    return search + device_energy * static_cast<double>(config_.hierarchy.features.dimension()) *
                        static_cast<double>(std::max<std::size_t>(largest_leaf_, 2));
  }
  return search +
         device_energy * static_cast<double>(devices) / static_cast<double>(queries);
}

PowerReport LeafCacheEngine::power() const {
  require(router_ != nullptr, "LeafCacheEngine: store_templates() first");
  const HierarchicalAmmConfig& h = config_.hierarchy;
  PowerReport combined;
  combined.add_all_prefixed("router: ",
                            spin_amm_power(hierarchical_module_design(h, h.clusters)));
  combined.add_all_prefixed("leaf: ",
                            spin_amm_power(hierarchical_module_design(h, largest_leaf_)));
  // Amortized write power at the observed miss mix: reprogram energy per
  // query times the design's query rate (one M-cycle search per query).
  const double write_energy_per_query = energy_per_query() - search_energy_per_query();
  const double query_rate = h.clock / static_cast<double>(h.wta_bits);
  combined.add("write: reprogram (amortized)", PowerKind::kDynamic,
               write_energy_per_query * query_rate);
  return combined;
}

}  // namespace spinsim
