/// \file leaf_cache_engine.hpp
/// Larger-than-memory template sets: a hierarchical engine whose leaves
/// are programmed into a bounded pool of crossbar slots on demand.
///
/// The paper keeps every template resident in programmed arrays; the HTM
/// follow-on (Fan et al., arXiv:1402.2902) routes queries through a
/// hierarchy where only a small active subset of pattern memory is
/// touched per query — exactly the access pattern a leaf cache exploits.
/// LeafCacheEngine clusters the template set with the same k-means router
/// as HierarchicalAmm, but instead of building one leaf module per
/// cluster it owns `leaf_slots` programmable crossbar slots. The router
/// picks the candidate cluster; if that cluster's templates are resident
/// in a slot the query is a *hit* and costs one leaf search, otherwise
/// the engine evicts the least-recently-used unpinned slot, programs the
/// cluster's templates into it (a *miss*), and charges the write path —
/// priced by CrossbarWriteCost — into its counters, power() and
/// energy_per_query().
///
/// Answers are bit-identical to a fully resident HierarchicalAmm built
/// from the same HierarchicalAmmConfig, whatever the pool size: modules
/// derive through hierarchical_module_config(), so a reprogrammed leaf
/// realises the same device noise as the leaf it replaces. Pool size
/// only moves the hit rate, i.e. the energy/latency story.
///
/// recognize_batch() reorders queries by target cluster (the same
/// grouping HierarchicalAmm uses for batching) so one reprogram serves
/// every query of the batch headed to that cluster — miss-cost sharing.
/// Resident clusters are served before misses (each partition in
/// ascending index order), so a miss only ever evicts a leaf whose group
/// was already served; the order derives purely from the cache state at
/// batch start, keeping the eviction schedule deterministic under any
/// thread count.

#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "amm/engine.hpp"
#include "amm/hierarchical_amm.hpp"
#include "amm/spin_amm.hpp"
#include "crossbar/wear.hpp"
#include "energy/write_cost.hpp"

namespace spinsim {

/// Eviction policy of the slot pool.
enum class LeafSlotPolicy {
  kLru,          ///< evict the least-recently-used unpinned slot
  kWearLeveled,  ///< LRU until pool wear skews, then least-worn (FTL-style)
};

/// Endurance / self-repair knobs. Everything defaults off, and the
/// engine then behaves exactly like the plain leaf cache (answers
/// bit-identical to a resident HierarchicalAmm). Enabling any feature —
/// or enabling wear on the hierarchy's MemristorSpec — switches the pool
/// to substrate-backed slots: each slot's physical devices keep wear,
/// realised state, and fault history across reprograms, and write noise
/// comes from per-device keyed streams (see wear.hpp). Batch and
/// sequential serving still agree answer-for-answer, but answers are no
/// longer bit-identical to the resident hierarchy: the device noise is
/// statistically identical, drawn differently.
struct LeafCacheEnduranceConfig {
  /// Delta reprogramming: on a miss into a previously used slot, write
  /// only devices whose target level differs from the recorded state.
  bool delta_writes = false;
  LeafSlotPolicy policy = LeafSlotPolicy::kLru;
  /// Wear-leveling trigger: once the gap between the most- and
  /// least-written unpinned slots reaches this many device writes, the
  /// next victim is the least-worn slot instead of the LRU one.
  std::uint64_t wear_delta = 4096;
  /// Spare physical columns per slot — the self-repair remap budget.
  std::size_t spare_columns = 0;
  /// Run a verify-read scan every this many queries (0 disables).
  std::uint64_t verify_interval = 0;
  /// Repair what a scan finds (in-place rewrite, then spare-column
  /// remap). False leaves the scan detect-only — the unrepaired control
  /// arm of the endurance harness.
  bool repair = true;
  /// Half-width of the conductance window a verify-read accepts around
  /// the programmed level's target, as a fraction of the full-scale
  /// (top-level) conductance — absolute error is what the column dot
  /// product sees, so a drifted low-level device with negligible
  /// absolute error is not flagged.
  double verify_tolerance = 0.25;
  /// In-place rewrites attempted before a device is declared dead and
  /// its column remapped.
  std::size_t rewrite_attempts = 2;

  bool enabled() const {
    return delta_writes || policy != LeafSlotPolicy::kLru || spare_columns > 0 ||
           verify_interval > 0;
  }
};

/// Knobs of the leaf-cache engine.
struct LeafCacheEngineConfig {
  /// Clustering + module configuration, shared verbatim with
  /// HierarchicalAmm (which is what makes the answers bit-identical).
  HierarchicalAmmConfig hierarchy;
  /// Programmed crossbar slots available for leaves. With
  /// leaf_slots >= hierarchy.clusters nothing is ever evicted and the
  /// engine behaves exactly like a fully resident HierarchicalAmm.
  std::size_t leaf_slots = 4;
  /// Write-path pricing charged on every miss.
  CrossbarWriteCost write_cost;
  /// Endurance, wear-leveling and self-repair (default: all off).
  LeafCacheEnduranceConfig endurance;
};

/// Running totals of one LeafCacheEngine (snapshot of atomic counters).
struct LeafCacheCounters {
  std::uint64_t queries = 0;      ///< recognitions served
  /// Slot lookups that found the leaf resident. Singleton clusters are
  /// answered by the router without consulting a slot and count neither
  /// as hit nor as miss.
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;       ///< leaf had to be programmed
  std::uint64_t evictions = 0;    ///< a resident leaf was displaced
  std::uint64_t reprograms = 0;   ///< arrays programmed (== misses)
  Energy reprogram_energy;        ///< total write energy charged
  /// Subset of reprogram_energy spent by self-repair rewrites (priced at
  /// the same per-device write cost as the miss path).
  Energy repair_energy;
  Time reprogram_latency;         ///< total write wall-clock charged

  // Endurance / self-repair accounting:
  std::uint64_t device_writes = 0;        ///< physical device writes performed
  std::uint64_t device_writes_saved = 0;  ///< writes avoided by delta reprogramming
  std::uint64_t repair_device_writes = 0; ///< subset of device_writes from repair rewrites
  std::uint64_t verify_scans = 0;         ///< verify-read passes run
  std::uint64_t devices_checked = 0;      ///< verify-reads performed
  std::uint64_t faults_detected = 0;      ///< verify-reads out of window
  std::uint64_t devices_rewritten = 0;    ///< in-place repairs that restored the window
  std::uint64_t columns_remapped = 0;     ///< physical columns retired to spares
  std::uint64_t repair_reloads = 0;       ///< slot reloads forced by remaps
  std::uint64_t unrepairable = 0;         ///< faults left in service (spares exhausted)
  std::uint64_t worn_out_devices = 0;     ///< devices currently stuck (wear or field faults)
  /// Per-slot cumulative device writes — the pool's wear histogram.
  std::vector<std::uint64_t> slot_write_cycles;

  std::uint64_t max_slot_write_cycles() const {
    std::uint64_t worst = 0;
    for (const std::uint64_t w : slot_write_cycles) {
      worst = std::max(worst, w);
    }
    return worst;
  }

  double hit_rate() const {
    const std::uint64_t looked = hits + misses;
    return looked == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(looked);
  }
};

/// Outcome of one verify-and-repair pass over the resident slots.
struct LeafRepairReport {
  std::uint64_t devices_checked = 0;
  std::uint64_t faults_detected = 0;
  std::uint64_t devices_rewritten = 0;
  std::uint64_t columns_remapped = 0;
  std::uint64_t repair_reloads = 0;
  std::uint64_t unrepairable = 0;
};

/// Hierarchical AMM over a bounded pool of on-demand-programmed leaves.
class LeafCacheEngine : public AssociativeEngine {
 public:
  explicit LeafCacheEngine(const LeafCacheEngineConfig& config);

  const LeafCacheEngineConfig& config() const { return config_; }

  std::string name() const override { return "leaf-cache"; }
  std::size_t template_count() const override { return total_templates_; }

  /// Clusters the templates (same seed and schedule as HierarchicalAmm),
  /// programs the router, and records the per-cluster template slices —
  /// but programs no leaf: leaves are materialised on first touch.
  void store_templates(const std::vector<FeatureVector>& templates) override;

  /// Routed recognition through the slot pool: router -> ensure the
  /// winning cluster's leaf is resident (programming on a miss) -> leaf
  /// search. Result semantics match HierarchicalAmm::recognize exactly.
  Recognition recognize(const FeatureVector& input) override;

  /// Batched routed recognition with miss-cost sharing: all inputs are
  /// routed in one router batch, grouped by cluster, and each group is
  /// served by at most one reprogram. Winner-for-winner identical to a
  /// sequential loop of recognize() (leaves are deterministic modules),
  /// whatever `threads` resolves to.
  std::vector<Recognition> recognize_batch(const std::vector<FeatureVector>& inputs,
                                           std::size_t threads = 0) override;

  /// Pins `cluster`: once resident its slot is never evicted. At least
  /// one slot must stay unpinned so misses remain serviceable — unless
  /// the pool holds every slot-eligible cluster at once, in which case
  /// any pin mix is safe. Pinning does not itself load the cluster.
  void pin(std::size_t cluster);

  /// Unpins `cluster` (no-op when not pinned).
  void unpin(std::size_t cluster);

  bool pinned(std::size_t cluster) const;

  /// True when `cluster`'s leaf currently occupies a slot. Singleton
  /// clusters never occupy one (the router answers them outright).
  bool resident(std::size_t cluster) const;

  std::size_t cluster_count() const { return members_.size(); }

  /// Global template indices stored in cluster `cluster`.
  const std::vector<std::size_t>& leaf_members(std::size_t cluster) const;

  /// Counter snapshot (safe while traffic is in flight).
  LeafCacheCounters counters() const;

  /// Verify-reads every resident device against its programmed level
  /// window and (with `endurance.repair`) fixes what it finds: stuck,
  /// worn-out, or drifted devices get up to `rewrite_attempts` in-place
  /// rewrites; a device that stays out of window retires its physical
  /// column and the leaf reloads on the remaining healthy columns (spare
  /// remap). Runs automatically every `verify_interval` queries; callable
  /// directly from the serving thread. No-op without endurance mode.
  LeafRepairReport verify_and_repair();

  /// Injects a permanent stuck fault into physical device (row, column)
  /// of slot `slot` — `column` indexes the substrate, not the leaf. The
  /// damage persists across reprograms; when the slot currently maps
  /// that column, the live array is damaged immediately. Requires
  /// endurance mode (substrate-backed slots).
  void inject_slot_fault(std::size_t slot, std::size_t row, std::size_t column,
                         RcmArray::StuckFault fault);

  /// Physical substrate of slot `slot` (inspection; endurance mode only).
  const CrossbarSubstrate& slot_substrate(std::size_t slot) const;

  /// Search power of the active path (router + worst-case leaf) plus an
  /// amortized "write: reprogram" item at the observed miss rate.
  PowerReport power() const override;

  /// Energy of one query: router + worst-case leaf search, plus the
  /// observed reprogram energy amortized over the queries served. Before
  /// any traffic it conservatively assumes every query misses the
  /// largest leaf. Safe to call concurrently with recognition.
  EnergyPerQuery energy_per_query() const override;

 private:
  struct Slot {
    std::size_t cluster = 0;
    std::unique_ptr<SpinAmm> engine;
    std::uint64_t last_used = 0;
    std::vector<std::size_t> col_map;  // leaf column -> physical column
    // Per-engine-instance write counters already charged (the RcmArray
    // counters are cumulative per instance; repairs keep writing into a
    // live instance, so charges are taken as deltas against these).
    std::uint64_t charged_writes = 0;
    std::uint64_t charged_skips = 0;
    std::uint64_t charged_columns = 0;
  };

  /// Returns the resident leaf for `cluster`, programming it into a slot
  /// first when absent. nullptr for singleton clusters.
  SpinAmm* ensure_resident(std::size_t cluster);
  /// Frees a slot for an incoming leaf (grow, LRU, or wear-leveled pick).
  std::size_t pick_victim();
  /// (Re)programs `cluster` into slot `slot` and charges the write path.
  void load_slot(std::size_t slot, std::size_t cluster, bool repair_reload);
  /// Charges the slot engine's un-charged writes into the counters.
  void charge_slot(std::size_t slot, bool repair);
  /// Triggers verify_and_repair() every endurance.verify_interval queries.
  void maybe_verify(std::uint64_t served);
  bool verify_ok(double weight, double realised) const;
  void refresh_worn_count();
  EnergyPerQuery search_energy_per_query() const;

  LeafCacheEngineConfig config_;
  std::unique_ptr<SpinAmm> router_;
  std::vector<std::vector<std::size_t>> members_;       // cluster -> global indices
  std::vector<std::vector<FeatureVector>> leaf_sets_;   // cluster -> template slice
  std::vector<bool> pinned_;
  std::size_t total_templates_ = 0;
  std::size_t largest_leaf_ = 0;

  // Threading: all cache state below (slots, residency map, LRU clock,
  // substrates, verify cadence) is owned by the single serving thread —
  // one LeafCacheEngine belongs to one shard worker, and the service's
  // scrub calls arrive on that same worker. The std::atomic counters
  // further down are the one cross-thread surface: counters() snapshots
  // them from the stats/repair-alarm path while serving is in flight.
  // Relaxed everywhere — independent monotonic tallies, no snapshot
  // invariant spans two counters.
  std::vector<Slot> slots_;
  std::vector<std::ptrdiff_t> slot_of_;  // cluster -> slot index, -1 if absent
  std::uint64_t lru_clock_ = 0;

  // Endurance mode (set in store_templates): substrate-backed slots.
  bool endurance_active_ = false;
  std::vector<std::shared_ptr<CrossbarSubstrate>> substrates_;  // per slot
  std::uint64_t queries_since_verify_ = 0;  // serving thread only

  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  // Write-path charges in integer device/column units so the atomics stay
  // lock-free; energies are priced at read time from the write-cost model.
  std::atomic<std::uint64_t> devices_written_{0};
  std::atomic<std::uint64_t> columns_written_{0};
  std::atomic<std::uint64_t> writes_saved_{0};
  std::atomic<std::uint64_t> repair_writes_{0};
  std::atomic<std::uint64_t> verify_scans_{0};
  std::atomic<std::uint64_t> devices_checked_{0};
  std::atomic<std::uint64_t> faults_detected_{0};
  std::atomic<std::uint64_t> devices_rewritten_{0};
  std::atomic<std::uint64_t> columns_remapped_{0};
  std::atomic<std::uint64_t> repair_reloads_{0};
  std::atomic<std::uint64_t> unrepairable_{0};
  std::atomic<std::uint64_t> worn_out_devices_{0};
  // Per-slot cumulative device writes (the wear histogram); allocated at
  // store_templates (atomics are not movable, so a fixed array instead
  // of a vector) so concurrent counters() reads stay race-free against
  // serving-thread updates.
  std::unique_ptr<std::atomic<std::uint64_t>[]> slot_writes_;
};

}  // namespace spinsim
