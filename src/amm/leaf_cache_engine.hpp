/// \file leaf_cache_engine.hpp
/// Larger-than-memory template sets: a hierarchical engine whose leaves
/// are programmed into a bounded pool of crossbar slots on demand.
///
/// The paper keeps every template resident in programmed arrays; the HTM
/// follow-on (Fan et al., arXiv:1402.2902) routes queries through a
/// hierarchy where only a small active subset of pattern memory is
/// touched per query — exactly the access pattern a leaf cache exploits.
/// LeafCacheEngine clusters the template set with the same k-means router
/// as HierarchicalAmm, but instead of building one leaf module per
/// cluster it owns `leaf_slots` programmable crossbar slots. The router
/// picks the candidate cluster; if that cluster's templates are resident
/// in a slot the query is a *hit* and costs one leaf search, otherwise
/// the engine evicts the least-recently-used unpinned slot, programs the
/// cluster's templates into it (a *miss*), and charges the write path —
/// priced by CrossbarWriteCost — into its counters, power() and
/// energy_per_query().
///
/// Answers are bit-identical to a fully resident HierarchicalAmm built
/// from the same HierarchicalAmmConfig, whatever the pool size: modules
/// derive through hierarchical_module_config(), so a reprogrammed leaf
/// realises the same device noise as the leaf it replaces. Pool size
/// only moves the hit rate, i.e. the energy/latency story.
///
/// recognize_batch() reorders queries by target cluster (the same
/// grouping HierarchicalAmm uses for batching) so one reprogram serves
/// every query of the batch headed to that cluster — miss-cost sharing.
/// Resident clusters are served before misses (each partition in
/// ascending index order), so a miss only ever evicts a leaf whose group
/// was already served; the order derives purely from the cache state at
/// batch start, keeping the eviction schedule deterministic under any
/// thread count.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "amm/engine.hpp"
#include "amm/hierarchical_amm.hpp"
#include "amm/spin_amm.hpp"
#include "energy/write_cost.hpp"

namespace spinsim {

/// Knobs of the leaf-cache engine.
struct LeafCacheEngineConfig {
  /// Clustering + module configuration, shared verbatim with
  /// HierarchicalAmm (which is what makes the answers bit-identical).
  HierarchicalAmmConfig hierarchy;
  /// Programmed crossbar slots available for leaves. With
  /// leaf_slots >= hierarchy.clusters nothing is ever evicted and the
  /// engine behaves exactly like a fully resident HierarchicalAmm.
  std::size_t leaf_slots = 4;
  /// Write-path pricing charged on every miss.
  CrossbarWriteCost write_cost;
};

/// Running totals of one LeafCacheEngine (snapshot of atomic counters).
struct LeafCacheCounters {
  std::uint64_t queries = 0;      ///< recognitions served
  /// Slot lookups that found the leaf resident. Singleton clusters are
  /// answered by the router without consulting a slot and count neither
  /// as hit nor as miss.
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;       ///< leaf had to be programmed
  std::uint64_t evictions = 0;    ///< a resident leaf was displaced
  std::uint64_t reprograms = 0;   ///< arrays programmed (== misses)
  double reprogram_energy_j = 0.0;   ///< total write energy charged [J]
  double reprogram_latency_s = 0.0;  ///< total write wall-clock charged [s]

  double hit_rate() const {
    const std::uint64_t looked = hits + misses;
    return looked == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(looked);
  }
};

/// Hierarchical AMM over a bounded pool of on-demand-programmed leaves.
class LeafCacheEngine : public AssociativeEngine {
 public:
  explicit LeafCacheEngine(const LeafCacheEngineConfig& config);

  const LeafCacheEngineConfig& config() const { return config_; }

  std::string name() const override { return "leaf-cache"; }
  std::size_t template_count() const override { return total_templates_; }

  /// Clusters the templates (same seed and schedule as HierarchicalAmm),
  /// programs the router, and records the per-cluster template slices —
  /// but programs no leaf: leaves are materialised on first touch.
  void store_templates(const std::vector<FeatureVector>& templates) override;

  /// Routed recognition through the slot pool: router -> ensure the
  /// winning cluster's leaf is resident (programming on a miss) -> leaf
  /// search. Result semantics match HierarchicalAmm::recognize exactly.
  Recognition recognize(const FeatureVector& input) override;

  /// Batched routed recognition with miss-cost sharing: all inputs are
  /// routed in one router batch, grouped by cluster, and each group is
  /// served by at most one reprogram. Winner-for-winner identical to a
  /// sequential loop of recognize() (leaves are deterministic modules),
  /// whatever `threads` resolves to.
  std::vector<Recognition> recognize_batch(const std::vector<FeatureVector>& inputs,
                                           std::size_t threads = 0) override;

  /// Pins `cluster`: once resident its slot is never evicted. At least
  /// one slot must stay unpinned so misses remain serviceable — unless
  /// the pool holds every slot-eligible cluster at once, in which case
  /// any pin mix is safe. Pinning does not itself load the cluster.
  void pin(std::size_t cluster);

  /// Unpins `cluster` (no-op when not pinned).
  void unpin(std::size_t cluster);

  bool pinned(std::size_t cluster) const;

  /// True when `cluster`'s leaf currently occupies a slot. Singleton
  /// clusters never occupy one (the router answers them outright).
  bool resident(std::size_t cluster) const;

  std::size_t cluster_count() const { return members_.size(); }

  /// Global template indices stored in cluster `cluster`.
  const std::vector<std::size_t>& leaf_members(std::size_t cluster) const;

  /// Counter snapshot (safe while traffic is in flight).
  LeafCacheCounters counters() const;

  /// Search power of the active path (router + worst-case leaf) plus an
  /// amortized "write: reprogram" item at the observed miss rate.
  PowerReport power() const override;

  /// Energy of one query: router + worst-case leaf search, plus the
  /// observed reprogram energy amortized over the queries served. Before
  /// any traffic it conservatively assumes every query misses the
  /// largest leaf. Safe to call concurrently with recognition.
  double energy_per_query() const override;

 private:
  struct Slot {
    std::size_t cluster = 0;
    std::unique_ptr<SpinAmm> engine;
    std::uint64_t last_used = 0;
  };

  /// Returns the resident leaf for `cluster`, programming it into a slot
  /// first when absent. nullptr for singleton clusters.
  SpinAmm* ensure_resident(std::size_t cluster);
  double search_energy_per_query() const;
  void charge_reprogram(std::size_t columns);

  LeafCacheEngineConfig config_;
  std::unique_ptr<SpinAmm> router_;
  std::vector<std::vector<std::size_t>> members_;       // cluster -> global indices
  std::vector<std::vector<FeatureVector>> leaf_sets_;   // cluster -> template slice
  std::vector<bool> pinned_;
  std::size_t total_templates_ = 0;
  std::size_t largest_leaf_ = 0;

  std::vector<Slot> slots_;
  std::vector<std::ptrdiff_t> slot_of_;  // cluster -> slot index, -1 if absent
  std::uint64_t lru_clock_ = 0;

  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  // Write-path charges in integer device/column units so the atomics stay
  // lock-free; energies are priced at read time from the write-cost model.
  std::atomic<std::uint64_t> devices_written_{0};
  std::atomic<std::uint64_t> columns_written_{0};
};

}  // namespace spinsim
