/// \file fault_injection.hpp
/// Deterministic shard chaos: an AssociativeEngine decorator that throws,
/// stalls, or hangs on a seeded schedule.
///
/// The service edge claims to survive failing shards — retry, eject via
/// circuit breaker, merge best-effort over the survivors — and those
/// claims are only testable if shards can be made to fail *on demand and
/// reproducibly*. FaultInjectingEngine wraps any backend and injects
/// three failure modes at the recognize/recognize_batch boundary (the
/// exact surface a RecognitionService shard worker drives):
///
///   * throws      — ModelError at `throw_rate`, drawn from a seeded Rng,
///                   so the same seed yields the same failure schedule
///                   whatever the wall clock does;
///   * latency     — a real sleep of `spike` at `spike_rate`, for
///     spikes      driving stuck-shard *timeouts* in benches;
///   * hangs       — a FaultSwitch the test holds: stick() blocks the
///                   next call on a condition variable until release(),
///                   which is how a "stuck shard" is simulated without
///                   any racy timing. set_throwing() forces every call to
///                   throw until cleared — the deterministic lever the
///                   circuit-breaker tests script against.
///
/// store_templates is deliberately passed through clean: programming
/// failures are a different layer (see the endurance harness); this
/// decorator models *serving-path* faults.
///
/// The decorator is transparent to the service's stats plumbing:
/// RecognitionService looks through it (like it looks through
/// TieredEngine) when hunting for leaf caches and tiered engines.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "amm/engine.hpp"
#include "core/random.hpp"
#include "core/sync.hpp"

namespace spinsim {

/// Seeded fault schedule of one FaultInjectingEngine.
struct FaultInjectionConfig {
  /// Probability that a recognize()/recognize_batch() call throws
  /// ModelError before touching the inner engine.
  double throw_rate = 0.0;
  /// Probability that a call is delayed by `spike` (a real sleep on the
  /// calling — i.e. shard worker — thread) before serving.
  double spike_rate = 0.0;
  std::chrono::microseconds spike{0};
  /// Seed of the decision stream: one draw per fault mode per call, so
  /// identical seeds yield identical fault schedules.
  std::uint64_t seed = 0xFA017;
};

/// Manual fault lever a test (or bench) holds alongside the engine.
/// Thread-safe: the engine blocks/reads on the shard worker thread while
/// the test flips the switch from its own.
class FaultSwitch {
 public:
  /// Subsequent calls block inside the engine until release().
  void stick();

  /// Unblocks all stuck calls and clears the stick request.
  void release();

  /// Force (or stop forcing) every call to throw ModelError,
  /// independent of the seeded throw_rate.
  void set_throwing(bool throwing);

  bool throwing() const { return throwing_.load(std::memory_order_acquire); }

  /// Calls currently blocked inside stuck engines (for test sync:
  /// wait_until_stuck spins on it without sleeping).
  std::size_t stuck_calls() const;

  /// Engine side: blocks while a stick is requested. Returns true when
  /// the call actually blocked (the engine counts those as stuck_waits).
  bool wait_if_stuck();

 private:
  mutable Mutex mutex_{LockRank::kFaultSwitch};
  CondVar cv_;
  bool stick_requested_ SPINSIM_GUARDED_BY(mutex_) = false;
  std::size_t stuck_calls_ SPINSIM_GUARDED_BY(mutex_) = 0;
  /// Release/acquire pair: set_throwing() publishes, the shard worker's
  /// throwing() read observes — no lock on the serving path.
  std::atomic<bool> throwing_{false};
};

/// Per-engine totals of injected failures (snapshot of atomics).
struct FaultInjectionCounters {
  std::uint64_t calls = 0;        ///< recognize/recognize_batch entries
  std::uint64_t throws = 0;       ///< injected ModelErrors (seeded + forced)
  std::uint64_t spikes = 0;       ///< injected latency spikes
  std::uint64_t stuck_waits = 0;  ///< calls that blocked on the switch
};

/// Decorator: any backend, plus a seeded fault schedule at the serving
/// boundary. Not thread-safe beyond the AssociativeEngine contract (one
/// serving thread), like every engine.
class FaultInjectingEngine : public AssociativeEngine {
 public:
  FaultInjectingEngine(std::unique_ptr<AssociativeEngine> inner, const FaultInjectionConfig& config,
                       std::shared_ptr<FaultSwitch> control = nullptr);

  std::string name() const override;
  std::size_t template_count() const override { return inner_->template_count(); }

  void store_templates(const std::vector<FeatureVector>& templates) override;
  Recognition recognize(const FeatureVector& input) override;
  std::vector<Recognition> recognize_batch(const std::vector<FeatureVector>& inputs,
                                           std::size_t threads = 0) override;

  PowerReport power() const override { return inner_->power(); }
  EnergyPerQuery energy_per_query() const override { return inner_->energy_per_query(); }

  /// The wrapped engine (the service looks through the decorator for
  /// leaf caches / tiered engines; scrubs need the mutable view).
  const AssociativeEngine& inner() const { return *inner_; }
  AssociativeEngine& inner() { return *inner_; }

  FaultInjectionCounters counters() const;

 private:
  /// One fault decision point: stuck wait, then spike, then throw.
  void maybe_fault();

  FaultInjectionConfig config_;
  std::unique_ptr<AssociativeEngine> inner_;
  std::shared_ptr<FaultSwitch> control_;
  Rng rng_;

  std::atomic<std::uint64_t> calls_{0};
  std::atomic<std::uint64_t> throws_{0};
  std::atomic<std::uint64_t> spikes_{0};
  std::atomic<std::uint64_t> stuck_waits_{0};
};

}  // namespace spinsim
