/// \file spin_amm.hpp
/// The proposed associative memory module (AMM): RCM + spin neurons.
///
/// End-to-end pipeline of paper Section 4: per-row DTCS input DACs drive
/// the crossbar with the reduced 5-bit input image; each column's dot-
/// product current feeds a spin PE; the SAR + winner-tracking WTA returns
/// the best-matching stored template and its degree of match. This class
/// wires the substrates together and owns the experiment knobs (ideal vs
/// parasitic crossbar, thermal noise, mismatch, dV, DWN threshold).

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "crossbar/rcm.hpp"
#include "datapath/dtcs_dac.hpp"
#include "energy/power_report.hpp"
#include "energy/spin_power.hpp"
#include "vision/features.hpp"
#include "wta/spin_sar_wta.hpp"

namespace spinsim {

/// Which crossbar evaluation path to use.
enum class CrossbarModel {
  kIdeal,      ///< closed-form current division (fast; no wire parasitics)
  kParasitic,  ///< full nodal solve with Cu bar resistance
};

/// Design/simulation knobs of one SpinAmm instance.
struct SpinAmmConfig {
  FeatureSpec features;          ///< input/template geometry (16x8, 5-bit)
  std::size_t templates = 40;    ///< stored patterns
  MemristorSpec memristor;       ///< crosspoint devices
  unsigned wta_bits = 5;         ///< WTA resolution M
  DwnParams dwn;                 ///< spin neuron (threshold 1 uA @ 20 kT)
  ReadLatchDesign latch;
  double delta_v = 30e-3;        ///< crossbar bias dV [V]
  double clock = 100e6;          ///< conversion clock [Hz]
  CrossbarModel model = CrossbarModel::kIdeal;
  /// Algorithm behind kParasitic (kTransfer amortizes one factorization
  /// across all queries; kCg is the iterative reference path).
  CrossbarSolver parasitic_solver = CrossbarSolver::kTransfer;
  bool thermal_noise = false;
  bool sample_mismatch = true;
  bool dummy_column = true;  ///< per-row G_TS equalisation (Section 4A)
  std::uint32_t accept_threshold = 0;  ///< DOM below this rejects the match
  std::uint64_t seed = 1;

  /// Full-scale column current 2^M I_th [A].
  double full_scale_current() const;

  /// Peak input-DAC current so the best match reaches full scale [A]
  /// (paper: ~10 uA for the 128x40, 5-bit design).
  double input_full_scale_current() const;
};

/// Result of one recognition.
struct RecognitionResult {
  std::size_t winner = 0;
  bool unique = true;
  std::uint32_t dom = 0;            ///< winner's degree of match
  bool accepted = true;             ///< dom >= accept_threshold
  double margin = 0.0;              ///< (best - runner-up) / full scale, analog
  std::vector<double> column_currents;
  SpinWtaOutcome wta;
};

/// The proposed spin-CMOS associative memory module.
class SpinAmm {
 public:
  explicit SpinAmm(const SpinAmmConfig& config);

  const SpinAmmConfig& config() const { return config_; }

  /// Programs the stored templates (one per column) and calibrates the
  /// input-DAC gain so the best match lands just under the WTA's full
  /// scale — the paper's "required range of DAC output current was found
  /// to be ~10 uA" sizing step, done against the realised row conductance
  /// (dummy padding included). Must be called before recognize().
  void store_templates(const std::vector<FeatureVector>& templates);

  /// Analog front end only: per-column dot-product currents for an input.
  std::vector<double> column_currents(const FeatureVector& input);

  /// Full recognition: front end + spin WTA.
  RecognitionResult recognize(const FeatureVector& input);

  /// Batched recognition: results[i] corresponds to inputs[i], and is
  /// winner-for-winner identical to calling recognize() on each input in
  /// order. The analog front end is dispatched across `threads` worker
  /// threads when the crossbar path is safely shareable (ideal model, or
  /// parasitic with the transfer-operator solver); the stateful WTA stage
  /// always runs serially in input order so noise/mismatch draws match
  /// the sequential schedule. threads == 0 picks hardware concurrency.
  std::vector<RecognitionResult> recognize_batch(const std::vector<FeatureVector>& inputs,
                                                 std::size_t threads = 0);

  /// The programmed crossbar (inspection / experiments).
  const RcmArray& crossbar() const;

  /// Mutable crossbar access for in-field experiments (fault injection,
  /// drift studies). The AMM keeps functioning with the altered array.
  RcmArray& mutable_crossbar();

  /// Analytic power breakdown of this design point.
  PowerReport power() const;

  /// The design-point parameters fed to the power model.
  SpinAmmDesign power_design() const;

 private:
  void calibrate_input_gain(const std::vector<FeatureVector>& templates);
  std::vector<double> input_row_currents(const FeatureVector& input) const;
  std::vector<double> front_end_const(const FeatureVector& input) const;
  void finish_recognition(RecognitionResult& result);

  SpinAmmConfig config_;
  Rng rng_;
  std::unique_ptr<RcmArray> rcm_;
  std::vector<DtcsDac> input_dacs_;  // one per row
  std::unique_ptr<SpinSarWta> wta_;
  bool templates_stored_ = false;
};

}  // namespace spinsim
