/// \file spin_amm.hpp
/// The proposed associative memory module (AMM): RCM + spin neurons.
///
/// End-to-end pipeline of paper Section 4: per-row DTCS input DACs drive
/// the crossbar with the reduced 5-bit input image; each column's dot-
/// product current feeds a spin PE; the SAR + winner-tracking WTA returns
/// the best-matching stored template and its degree of match. This class
/// wires the substrates together and owns the experiment knobs (ideal vs
/// parasitic crossbar, thermal noise, mismatch, dV, DWN threshold).
///
/// SpinAmm implements the unified AssociativeEngine interface (the
/// polymorphic surface the service layer consumes) while keeping its
/// substrate-specific raw API: column_currents(), crossbar access, the
/// power design point.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "amm/engine.hpp"
#include "crossbar/rcm.hpp"
#include "datapath/dtcs_dac.hpp"
#include "datapath/input_stage_cache.hpp"
#include "energy/power_report.hpp"
#include "energy/spin_power.hpp"
#include "vision/features.hpp"
#include "wta/spin_sar_wta.hpp"

namespace spinsim {

/// Which crossbar evaluation path to use.
enum class CrossbarModel {
  kIdeal,      ///< closed-form current division (fast; no wire parasitics)
  kParasitic,  ///< full nodal solve with Cu bar resistance
};

/// Design/simulation knobs of one SpinAmm instance.
struct SpinAmmConfig {
  FeatureSpec features;          ///< input/template geometry (16x8, 5-bit)
  std::size_t templates = 40;    ///< stored patterns
  MemristorSpec memristor;       ///< crosspoint devices
  unsigned wta_bits = 5;         ///< WTA resolution M
  DwnParams dwn;                 ///< spin neuron (threshold 1 uA @ 20 kT)
  ReadLatchDesign latch;
  double delta_v = 30e-3;        ///< crossbar bias dV [V]
  double clock = 100e6;          ///< conversion clock [Hz]
  CrossbarModel model = CrossbarModel::kIdeal;
  /// Algorithm behind kParasitic (kTransfer amortizes one factorization
  /// across all queries; kCg is the iterative reference path).
  CrossbarSolver parasitic_solver = CrossbarSolver::kTransfer;
  bool thermal_noise = false;
  bool sample_mismatch = true;
  bool dummy_column = true;  ///< per-row G_TS equalisation (Section 4A)
  std::uint32_t accept_threshold = 0;  ///< DOM below this rejects the match

  /// Explicit input-DAC full-scale current [A]; <= 0 self-calibrates
  /// against the stored templates (the default). Shards of one logical
  /// template set must share an explicit value (together with
  /// row_target_conductance) so their DOM codes stay comparable.
  double input_full_scale_override = 0.0;
  /// Explicit per-row G_TS pad target [S]; <= 0 pads to this array's own
  /// largest row sum. See RcmConfig::row_target_conductance.
  double row_target_conductance = 0.0;

  std::uint64_t seed = 1;

  /// Full-scale column current 2^M I_th [A].
  double full_scale_current() const;

  /// Peak input-DAC current so the best match reaches full scale [A]
  /// (paper: ~10 uA for the 128x40, 5-bit design).
  double input_full_scale_current() const;
};

/// Wall-clock breakdown of the last SpinAmm::recognize_batch() call,
/// split by pipeline stage and summed across worker chunks [µs]. What
/// the bench's `pipeline` section reports.
struct SpinBatchTiming {
  double dac_us = 0.0;       ///< input-DAC front end (incl. dedup cache)
  double gemm_us = 0.0;      ///< blocked operator product (crossbar)
  double wta_us = 0.0;       ///< SAR + winner-tracking search
  double assemble_us = 0.0;  ///< Recognition assembly (margin, detail)
  std::uint64_t queries = 0;
};

/// The proposed spin-CMOS associative memory module.
class SpinAmm : public AssociativeEngine {
 public:
  explicit SpinAmm(const SpinAmmConfig& config);

  const SpinAmmConfig& config() const { return config_; }

  std::string name() const override { return "spin"; }
  std::size_t template_count() const override { return config_.templates; }

  /// Programs the stored templates (one per column) and calibrates the
  /// input-DAC gain so the best match lands just under the WTA's full
  /// scale — the paper's "required range of DAC output current was found
  /// to be ~10 uA" sizing step, done against the realised row conductance
  /// (dummy padding included). Must be called before recognize().
  void store_templates(const std::vector<FeatureVector>& templates) override;

  /// Analog front end only: per-column dot-product currents for an input.
  std::vector<double> column_currents(const FeatureVector& input);

  /// Full recognition: front end + spin WTA. The result's detail holds
  /// the column currents and the complete WTA outcome.
  Recognition recognize(const FeatureVector& input) override;

  /// Batched recognition: results[i] corresponds to inputs[i], and is
  /// winner-for-winner identical to calling recognize() on each input in
  /// order. The batch flows through flat rows x batch buffers in chunks
  /// of kMinItemsPerThread queries, each chunk a DAC -> blocked-GEMM ->
  /// WTA -> assemble pipeline on one worker: when the crossbar path is
  /// safely shareable (ideal model, or parasitic with the
  /// transfer-operator solver) the crossbar stage is one cache-blocked
  /// matrix product per chunk against the cached operator, and the WTA
  /// stage always fans out because its thermal noise comes from
  /// counter-based per-query streams (SpinSarWta::run_query_span) rather
  /// than one shared sequential draw order. threads == 0 picks hardware
  /// concurrency; last_batch_timing() reports the per-stage wall clock.
  std::vector<Recognition> recognize_batch(const std::vector<FeatureVector>& inputs,
                                           std::size_t threads = 0) override;

  /// Per-stage wall-clock breakdown of the most recent recognize_batch()
  /// call (zeroed queries if none ran yet). Written by recognize_batch on
  /// the calling thread — read it from that thread, not concurrently.
  const SpinBatchTiming& last_batch_timing() const { return batch_timing_; }

  /// The realised input-DAC full-scale current [A] (after calibration or
  /// the configured override). Feed this to sibling shards so one logical
  /// template set scores identically wherever its columns live.
  double input_full_scale() const { return input_full_scale_; }

  /// Shares an input-stage dedup cache with sibling engines: realised
  /// input row currents are then looked up by the query's digital codes
  /// instead of re-evaluating the DACs per engine. Only engines whose
  /// input stages realise identical currents for identical codes (same
  /// seed, shared input_full_scale_override and row_target_conductance)
  /// may share one cache — the RecognitionService wiring guarantees this
  /// when `dedup_input_stage` is enabled. Pass nullptr to detach.
  void set_input_stage_cache(std::shared_ptr<InputStageCache> cache) {
    input_cache_ = std::move(cache);
  }

  /// Realised input-stage current of `row` at digital `code`, exactly as
  /// the query path evaluates it — DAC (including any sampled mismatch)
  /// against the row's programmed load. Inspection / cross-engine
  /// verification: two engines may share an InputStageCache only if this
  /// agrees for every row.
  double realised_input_current(std::size_t row, std::uint32_t code) const;

  /// Attaches persistent physical-device state to the crossbar (see
  /// RcmArray::attach_substrate) — how LeafCacheEngine makes reprograms
  /// age real devices and skip unchanged ones. Must be called before
  /// store_templates().
  void attach_substrate(std::shared_ptr<CrossbarSubstrate> substrate,
                        std::vector<std::size_t> column_map, bool delta_writes);

  /// The programmed crossbar (inspection / experiments).
  const RcmArray& crossbar() const;

  /// Mutable crossbar access for in-field experiments (fault injection,
  /// drift studies). The AMM keeps functioning with the altered array.
  RcmArray& mutable_crossbar();

  /// Analytic power breakdown of this design point.
  PowerReport power() const override;

  /// Energy of one recognition: the design's power over one M-cycle WTA
  /// search (the SAR conversion is what paces a recognition) [J].
  EnergyPerQuery energy_per_query() const override;

  /// The design-point parameters fed to the power model.
  SpinAmmDesign power_design() const;

 private:
  void calibrate_input_gain(const std::vector<FeatureVector>& templates);
  void rebuild_input_dacs(double full_scale);
  std::vector<double> input_row_currents(const FeatureVector& input) const;
  /// Allocation-free front end for the batch path: writes the realised
  /// per-row input currents into `out[0 .. dimension)`, going through the
  /// shared dedup cache when one is attached. Values are bit-identical to
  /// input_row_currents().
  void input_row_currents_into(const FeatureVector& input, double* out) const;
  Recognition assemble(std::vector<double>&& currents, SpinWtaOutcome&& wta) const;

  SpinAmmConfig config_;
  Rng rng_;
  std::unique_ptr<RcmArray> rcm_;
  std::vector<DtcsDac> input_dacs_;  // one per row
  std::shared_ptr<InputStageCache> input_cache_;
  double input_full_scale_ = 0.0;
  std::unique_ptr<SpinSarWta> wta_;
  bool templates_stored_ = false;
  SpinBatchTiming batch_timing_;
};

}  // namespace spinsim
