#include "amm/hierarchical_amm.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "energy/spin_power.hpp"

namespace spinsim {

namespace {

/// Quantises a raw centroid onto the feature grid so it can be programmed
/// like any template.
FeatureVector centroid_to_template(const std::vector<double>& centroid, const FeatureSpec& spec) {
  FeatureVector t;
  t.spec = spec;
  const double top = static_cast<double>((1u << spec.bits) - 1);
  t.analog.resize(centroid.size());
  t.digital.resize(centroid.size());
  for (std::size_t i = 0; i < centroid.size(); ++i) {
    const double clamped = std::clamp(centroid[i], 0.0, 1.0);
    const auto level = static_cast<std::uint32_t>(std::lround(clamped * top));
    t.digital[i] = level;
    t.analog[i] = static_cast<double>(level) / top;
  }
  return t;
}

}  // namespace

HierarchicalAmm::HierarchicalAmm(const HierarchicalAmmConfig& config) : config_(config) {
  require(config.clusters >= 2, "HierarchicalAmm: need at least two clusters");
}

SpinAmmConfig HierarchicalAmm::module_config(std::size_t columns, std::uint64_t salt) const {
  SpinAmmConfig c;
  c.features = config_.features;
  c.templates = columns;
  c.memristor = config_.memristor;
  c.wta_bits = config_.wta_bits;
  c.dwn = config_.dwn;
  c.delta_v = config_.delta_v;
  c.clock = config_.clock;
  c.sample_mismatch = config_.sample_mismatch;
  // The hierarchy applies the threshold to whichever DOM ends the active
  // path (leaf, or router for singleton clusters), so the modules
  // themselves judge every local match accepted; see recognize().
  c.accept_threshold = 0;
  c.seed = config_.seed ^ (salt * 0x9E3779B97F4A7C15ULL + 0x1234);
  return c;
}

void HierarchicalAmm::store_templates(const std::vector<FeatureVector>& templates) {
  require(templates.size() >= config_.clusters,
          "HierarchicalAmm::store_templates: fewer templates than clusters");
  total_templates_ = templates.size();

  // 1. Cluster the template vectors.
  std::vector<std::vector<double>> points;
  points.reserve(templates.size());
  for (const auto& t : templates) {
    require(t.dimension() == config_.features.dimension(),
            "HierarchicalAmm::store_templates: template dimension mismatch");
    points.push_back(t.analog);
  }
  Rng rng(config_.seed);
  const KMeansResult clustering = kmeans(points, config_.clusters, rng,
                                         config_.kmeans_iterations);

  members_.assign(config_.clusters, {});
  for (std::size_t i = 0; i < templates.size(); ++i) {
    members_[clustering.assignment[i]].push_back(i);
  }

  // 2. Router module: one column per centroid.
  std::vector<FeatureVector> router_templates;
  router_templates.reserve(config_.clusters);
  for (const auto& centroid : clustering.centroids) {
    router_templates.push_back(centroid_to_template(centroid, config_.features));
  }
  router_ = std::make_unique<SpinAmm>(module_config(config_.clusters, 0));
  router_->store_templates(router_templates);

  // 3. Leaf modules: one per non-trivial cluster. A singleton cluster
  //    needs no second-level search.
  leaves_.clear();
  leaves_.resize(config_.clusters);
  for (std::size_t c = 0; c < config_.clusters; ++c) {
    if (members_[c].size() < 2) {
      continue;
    }
    std::vector<FeatureVector> leaf_templates;
    leaf_templates.reserve(members_[c].size());
    for (std::size_t global : members_[c]) {
      leaf_templates.push_back(templates[global]);
    }
    leaves_[c] = std::make_unique<SpinAmm>(module_config(members_[c].size(), c + 1));
    leaves_[c]->store_templates(leaf_templates);
  }
}

Recognition HierarchicalAmm::finish(const Recognition& leaf, const Recognition& routed,
                                    std::size_t cluster, std::size_t global_winner) const {
  // The leaf margin only measures the winning cluster's local runner-up;
  // the *global* runner-up may live in another cluster the leaf search
  // never visited. Cap with the router's relative score gap (the same
  // rule RecognitionService::merge applies across shards) so downstream
  // escalation keyed on margin never sees overstated confidence. The
  // singleton-cluster path gets the identical treatment: its router-level
  // margin is a gap between *centroids*, not stored templates, so it too
  // must not outrank what the router gap supports.
  std::uint32_t router_second = 0;
  if (const SpinRecognitionDetail* rd = routed.spin()) {
    for (std::size_t c = 0; c < rd->wta.dom_codes.size(); ++c) {
      if (c != routed.winner) {
        router_second = std::max(router_second, rd->wta.dom_codes[c]);
      }
    }
  }
  Recognition out;
  out.winner = global_winner;
  out.unique = leaf.unique;
  out.dom = leaf.dom;
  out.score = static_cast<double>(out.dom);
  if (routed.dom == 0) {
    // Nothing matched at the router: no confidence to report.
    out.margin = 0.0;
  } else {
    const double router_gap = static_cast<double>(routed.dom - router_second) /
                              static_cast<double>(routed.dom);
    out.margin = std::min(leaf.margin, router_gap);
  }
  out.accepted = out.dom >= config_.accept_threshold;
  out.detail = HierarchicalRecognitionDetail{cluster, routed.dom, router_second};
  return out;
}

Recognition HierarchicalAmm::recognize(const FeatureVector& input) {
  require(router_ != nullptr, "HierarchicalAmm: store_templates() before recognition");

  const Recognition routed = router_->recognize(input);
  const std::size_t cluster = routed.winner;

  const auto& member_list = members_[cluster];
  SPINSIM_ASSERT(!member_list.empty(), "HierarchicalAmm: routed to an empty cluster");
  if (member_list.size() == 1 || leaves_[cluster] == nullptr) {
    // Singleton cluster: the router DOM is the only degree of match the
    // active path produced; the accept threshold applies to it.
    Recognition single = routed;
    single.unique = true;
    return finish(single, routed, cluster, member_list.front());
  }

  const Recognition leaf = leaves_[cluster]->recognize(input);
  return finish(leaf, routed, cluster, member_list[leaf.winner]);
}

std::vector<Recognition> HierarchicalAmm::recognize_batch(const std::vector<FeatureVector>& inputs,
                                                          std::size_t threads) {
  require(router_ != nullptr, "HierarchicalAmm: store_templates() before recognition");

  std::vector<Recognition> results(inputs.size());
  if (inputs.empty()) {
    return results;
  }

  // Stage 1: route every input in one router batch.
  const std::vector<Recognition> routed = router_->recognize_batch(inputs, threads);

  // Stage 2: group queries per cluster, preserving input order within
  // each group (leaf noise draws then match the sequential schedule),
  // and fan each group out as one leaf batch.
  std::vector<std::vector<std::size_t>> by_cluster(config_.clusters);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    by_cluster[routed[i].winner].push_back(i);
  }

  for (std::size_t c = 0; c < config_.clusters; ++c) {
    if (by_cluster[c].empty()) {
      continue;
    }
    const auto& member_list = members_[c];
    SPINSIM_ASSERT(!member_list.empty(), "HierarchicalAmm: routed to an empty cluster");
    if (member_list.size() == 1 || leaves_[c] == nullptr) {
      for (const std::size_t i : by_cluster[c]) {
        Recognition single = routed[i];
        single.unique = true;
        results[i] = finish(single, routed[i], c, member_list.front());
      }
      continue;
    }
    std::vector<FeatureVector> leaf_inputs;
    leaf_inputs.reserve(by_cluster[c].size());
    for (const std::size_t i : by_cluster[c]) {
      leaf_inputs.push_back(inputs[i]);
    }
    const std::vector<Recognition> leaf_results = leaves_[c]->recognize_batch(leaf_inputs, threads);
    for (std::size_t k = 0; k < by_cluster[c].size(); ++k) {
      const std::size_t i = by_cluster[c][k];
      results[i] = finish(leaf_results[k], routed[i], c, member_list[leaf_results[k].winner]);
    }
  }
  return results;
}

const std::vector<std::size_t>& HierarchicalAmm::leaf_members(std::size_t cluster) const {
  require(cluster < members_.size(), "HierarchicalAmm::leaf_members: out of range");
  return members_[cluster];
}

PowerReport HierarchicalAmm::active_path_power() const {
  require(router_ != nullptr, "HierarchicalAmm: store_templates() first");
  std::size_t largest_leaf = 0;
  for (const auto& m : members_) {
    largest_leaf = std::max(largest_leaf, m.size());
  }
  // Router + worst-case leaf, evaluated through the same power model.
  SpinAmmDesign router_design;
  router_design.dimension = config_.features.dimension();
  router_design.templates = config_.clusters;
  router_design.resolution_bits = config_.wta_bits;
  router_design.dwn_threshold = config_.dwn.i_threshold;
  router_design.delta_v = config_.delta_v;
  router_design.clock = config_.clock;

  SpinAmmDesign leaf_design = router_design;
  leaf_design.templates = std::max<std::size_t>(largest_leaf, 2);

  PowerReport combined;
  combined.add_all_prefixed("router: ", spin_amm_power(router_design));
  combined.add_all_prefixed("leaf: ", spin_amm_power(leaf_design));
  return combined;
}

double HierarchicalAmm::energy_per_query() const {
  // Router search followed by one leaf search, each an M-cycle SAR/WTA
  // conversion of the active path's modules.
  return active_path_power().total() * static_cast<double>(config_.wta_bits) / config_.clock;
}

PowerReport HierarchicalAmm::flat_equivalent_power() const {
  SpinAmmDesign flat;
  flat.dimension = config_.features.dimension();
  flat.templates = std::max<std::size_t>(total_templates_, 2);
  flat.resolution_bits = config_.wta_bits;
  flat.dwn_threshold = config_.dwn.i_threshold;
  flat.delta_v = config_.delta_v;
  flat.clock = config_.clock;
  return spin_amm_power(flat);
}

}  // namespace spinsim
