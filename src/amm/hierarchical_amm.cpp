#include "amm/hierarchical_amm.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "energy/spin_power.hpp"

namespace spinsim {

FeatureVector centroid_to_template(const std::vector<double>& centroid, const FeatureSpec& spec) {
  FeatureVector t;
  t.spec = spec;
  const double top = static_cast<double>((1u << spec.bits) - 1);
  t.analog.resize(centroid.size());
  t.digital.resize(centroid.size());
  for (std::size_t i = 0; i < centroid.size(); ++i) {
    const double clamped = std::clamp(centroid[i], 0.0, 1.0);
    const auto level = static_cast<std::uint32_t>(std::lround(clamped * top));
    t.digital[i] = level;
    t.analog[i] = static_cast<double>(level) / top;
  }
  return t;
}

SpinAmmConfig hierarchical_module_config(const HierarchicalAmmConfig& config, std::size_t columns,
                                         std::uint64_t salt) {
  SpinAmmConfig c;
  c.features = config.features;
  c.templates = columns;
  c.memristor = config.memristor;
  c.wta_bits = config.wta_bits;
  c.dwn = config.dwn;
  c.delta_v = config.delta_v;
  c.clock = config.clock;
  c.sample_mismatch = config.sample_mismatch;
  // The hierarchy applies the threshold to whichever DOM ends the active
  // path (leaf, or router for singleton clusters), so the modules
  // themselves judge every local match accepted; see recognize().
  c.accept_threshold = 0;
  c.seed = config.seed ^ (salt * 0x9E3779B97F4A7C15ULL + 0x1234);
  return c;
}

SpinAmmDesign hierarchical_module_design(const HierarchicalAmmConfig& config,
                                         std::size_t columns) {
  SpinAmmDesign d;
  d.dimension = config.features.dimension();
  d.templates = std::max<std::size_t>(columns, 2);
  d.resolution_bits = config.wta_bits;
  d.dwn_threshold = config.dwn.i_threshold;
  d.delta_v = config.delta_v;
  d.clock = config.clock;
  return d;
}

std::vector<std::vector<std::size_t>> cluster_templates(
    const HierarchicalAmmConfig& config, const std::vector<FeatureVector>& templates,
    std::vector<FeatureVector>& router_templates) {
  require(templates.size() >= config.clusters,
          "cluster_templates: fewer templates than clusters");
  std::vector<std::vector<double>> points;
  points.reserve(templates.size());
  for (const auto& t : templates) {
    require(t.dimension() == config.features.dimension(),
            "cluster_templates: template dimension mismatch");
    points.push_back(t.analog);
  }
  Rng rng(config.seed);
  const KMeansResult clustering =
      kmeans(points, config.clusters, rng, config.kmeans_iterations);

  std::vector<std::vector<std::size_t>> members(config.clusters);
  for (std::size_t i = 0; i < templates.size(); ++i) {
    members[clustering.assignment[i]].push_back(i);
  }

  router_templates.clear();
  router_templates.reserve(config.clusters);
  for (const auto& centroid : clustering.centroids) {
    router_templates.push_back(centroid_to_template(centroid, config.features));
  }
  return members;
}

Recognition finish_routed(const Recognition& leaf, const Recognition& routed, std::size_t cluster,
                          std::size_t global_winner, std::uint32_t accept_threshold) {
  // The leaf margin only measures the winning cluster's local runner-up;
  // the *global* runner-up may live in another cluster the leaf search
  // never visited. Cap with the router's relative score gap (the same
  // rule RecognitionService::merge applies across shards) so downstream
  // escalation keyed on margin never sees overstated confidence. The
  // singleton-cluster path gets the identical treatment: its router-level
  // margin is a gap between *centroids*, not stored templates, so it too
  // must not outrank what the router gap supports.
  std::uint32_t router_second = 0;
  if (const SpinRecognitionDetail* rd = routed.spin()) {
    for (std::size_t c = 0; c < rd->wta.dom_codes.size(); ++c) {
      if (c != routed.winner) {
        router_second = std::max(router_second, rd->wta.dom_codes[c]);
      }
    }
  }
  Recognition out;
  out.winner = global_winner;
  out.unique = leaf.unique;
  out.dom = leaf.dom;
  out.score = static_cast<double>(out.dom);
  if (routed.dom == 0 || out.dom == 0) {
    // Nothing matched at the router, or the active path ended on a zero
    // degree of match: a non-positive winner carries no confidence.
    out.margin = 0.0;
  } else {
    const double router_gap = static_cast<double>(routed.dom - router_second) /
                              static_cast<double>(routed.dom);
    out.margin = std::min(leaf.margin, router_gap);
  }
  out.accepted = out.unique && out.dom >= accept_threshold;
  out.detail = HierarchicalRecognitionDetail{cluster, routed.dom, router_second};
  return out;
}

HierarchicalAmm::HierarchicalAmm(const HierarchicalAmmConfig& config) : config_(config) {
  require(config.clusters >= 2, "HierarchicalAmm: need at least two clusters");
}

void HierarchicalAmm::store_templates(const std::vector<FeatureVector>& templates) {
  total_templates_ = templates.size();

  // 1. Cluster the template vectors; 2. router module: one column per
  //    centroid (the schedule shared with LeafCacheEngine).
  std::vector<FeatureVector> router_templates;
  members_ = cluster_templates(config_, templates, router_templates);
  router_ = std::make_unique<SpinAmm>(hierarchical_module_config(config_, config_.clusters, 0));
  router_->store_templates(router_templates);

  // 3. Leaf modules: one per non-trivial cluster. A singleton cluster
  //    needs no second-level search.
  leaves_.clear();
  leaves_.resize(config_.clusters);
  for (std::size_t c = 0; c < config_.clusters; ++c) {
    if (members_[c].size() < 2) {
      continue;
    }
    std::vector<FeatureVector> leaf_templates;
    leaf_templates.reserve(members_[c].size());
    for (std::size_t global : members_[c]) {
      leaf_templates.push_back(templates[global]);
    }
    leaves_[c] =
        std::make_unique<SpinAmm>(hierarchical_module_config(config_, members_[c].size(), c + 1));
    leaves_[c]->store_templates(leaf_templates);
  }
}

Recognition HierarchicalAmm::finish(const Recognition& leaf, const Recognition& routed,
                                    std::size_t cluster, std::size_t global_winner) const {
  return finish_routed(leaf, routed, cluster, global_winner, config_.accept_threshold);
}

Recognition HierarchicalAmm::recognize(const FeatureVector& input) {
  require(router_ != nullptr, "HierarchicalAmm: store_templates() before recognition");

  const Recognition routed = router_->recognize(input);
  const std::size_t cluster = routed.winner;

  const auto& member_list = members_[cluster];
  SPINSIM_ASSERT(!member_list.empty(), "HierarchicalAmm: routed to an empty cluster");
  if (member_list.size() == 1 || leaves_[cluster] == nullptr) {
    // Singleton cluster: the router DOM is the only degree of match the
    // active path produced; the accept threshold applies to it.
    Recognition single = routed;
    single.unique = true;
    return finish(single, routed, cluster, member_list.front());
  }

  const Recognition leaf = leaves_[cluster]->recognize(input);
  return finish(leaf, routed, cluster, member_list[leaf.winner]);
}

std::vector<Recognition> HierarchicalAmm::recognize_batch(const std::vector<FeatureVector>& inputs,
                                                          std::size_t threads) {
  require(router_ != nullptr, "HierarchicalAmm: store_templates() before recognition");

  std::vector<Recognition> results(inputs.size());
  if (inputs.empty()) {
    return results;
  }

  // Stage 1: route every input in one router batch.
  const std::vector<Recognition> routed = router_->recognize_batch(inputs, threads);

  // Stage 2: group queries per cluster, preserving input order within
  // each group (leaf noise draws then match the sequential schedule),
  // and fan each group out as one leaf batch.
  std::vector<std::vector<std::size_t>> by_cluster(config_.clusters);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    by_cluster[routed[i].winner].push_back(i);
  }

  for (std::size_t c = 0; c < config_.clusters; ++c) {
    if (by_cluster[c].empty()) {
      continue;
    }
    const auto& member_list = members_[c];
    SPINSIM_ASSERT(!member_list.empty(), "HierarchicalAmm: routed to an empty cluster");
    if (member_list.size() == 1 || leaves_[c] == nullptr) {
      for (const std::size_t i : by_cluster[c]) {
        Recognition single = routed[i];
        single.unique = true;
        results[i] = finish(single, routed[i], c, member_list.front());
      }
      continue;
    }
    std::vector<FeatureVector> leaf_inputs;
    leaf_inputs.reserve(by_cluster[c].size());
    for (const std::size_t i : by_cluster[c]) {
      leaf_inputs.push_back(inputs[i]);
    }
    const std::vector<Recognition> leaf_results = leaves_[c]->recognize_batch(leaf_inputs, threads);
    for (std::size_t k = 0; k < by_cluster[c].size(); ++k) {
      const std::size_t i = by_cluster[c][k];
      results[i] = finish(leaf_results[k], routed[i], c, member_list[leaf_results[k].winner]);
    }
  }
  return results;
}

const std::vector<std::size_t>& HierarchicalAmm::leaf_members(std::size_t cluster) const {
  require(cluster < members_.size(), "HierarchicalAmm::leaf_members: out of range");
  return members_[cluster];
}

PowerReport HierarchicalAmm::active_path_power() const {
  require(router_ != nullptr, "HierarchicalAmm: store_templates() first");
  std::size_t largest_leaf = 0;
  for (const auto& m : members_) {
    largest_leaf = std::max(largest_leaf, m.size());
  }
  // Router + worst-case leaf, evaluated through the same power model.
  PowerReport combined;
  combined.add_all_prefixed("router: ",
                            spin_amm_power(hierarchical_module_design(config_, config_.clusters)));
  combined.add_all_prefixed("leaf: ",
                            spin_amm_power(hierarchical_module_design(config_, largest_leaf)));
  return combined;
}

EnergyPerQuery HierarchicalAmm::energy_per_query() const {
  // Router search followed by one leaf search, each an M-cycle SAR/WTA
  // conversion of the active path's modules.
  const Energy search = active_path_power().total() * static_cast<double>(config_.wta_bits) /
                        (config_.clock * units::Hz);
  return search / units::query;
}

PowerReport HierarchicalAmm::flat_equivalent_power() const {
  return spin_amm_power(hierarchical_module_design(config_, total_templates_));
}

}  // namespace spinsim
