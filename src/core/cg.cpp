#include "core/cg.hpp"

#include <cmath>

#include "core/error.hpp"
#include "core/matrix.hpp"

namespace spinsim {

CgResult conjugate_gradient(const CsrMatrix& a, const std::vector<double>& b,
                            const CgOptions& options, const std::vector<double>* x0) {
  const std::size_t n = a.rows();
  require(a.cols() == n, "conjugate_gradient: matrix must be square");
  require(b.size() == n, "conjugate_gradient: rhs dimension mismatch");

  CgResult result;
  result.x.assign(n, 0.0);
  if (x0 != nullptr) {
    require(x0->size() == n, "conjugate_gradient: x0 dimension mismatch");
    result.x = *x0;
  }

  const double b_norm = norm2(b);
  if (b_norm == 0.0) {
    result.x.assign(n, 0.0);
    result.converged = true;
    return result;
  }

  // Jacobi preconditioner M = diag(A); fall back to identity if a zero
  // diagonal shows up (shouldn't for a grounded resistive network).
  std::vector<double> inv_diag(n, 1.0);
  if (options.jacobi_preconditioner) {
    const std::vector<double> d = a.diagonal();
    for (std::size_t i = 0; i < n; ++i) {
      inv_diag[i] = (d[i] > 0.0) ? 1.0 / d[i] : 1.0;
    }
  }

  std::vector<double> r(n);     // residual b - A x
  std::vector<double> z(n);     // preconditioned residual
  std::vector<double> p(n);     // search direction
  std::vector<double> ap(n);    // A * p

  a.multiply_into(result.x, ap);
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = b[i] - ap[i];
    z[i] = inv_diag[i] * r[i];
  }
  p = z;
  double rz = dot(r, z);

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    const double res = norm2(r) / b_norm;
    if (res <= options.tolerance) {
      result.residual = res;
      result.iterations = iter;
      result.converged = true;
      return result;
    }

    a.multiply_into(p, ap);
    const double p_ap = dot(p, ap);
    if (p_ap <= 0.0) {
      throw NumericalError("conjugate_gradient: matrix is not positive definite");
    }
    const double alpha = rz / p_ap;
    axpy(alpha, p, result.x);
    axpy(-alpha, ap, r);
    for (std::size_t i = 0; i < n; ++i) {
      z[i] = inv_diag[i] * r[i];
    }
    const double rz_next = dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = z[i] + beta * p[i];
    }
  }

  result.residual = norm2(r) / b_norm;
  result.iterations = options.max_iterations;
  result.converged = false;
  return result;
}

}  // namespace spinsim
