/// \file error.hpp
/// Error handling primitives for spinsim.
///
/// Policy (per C++ Core Guidelines E.*): throw exceptions for API misuse and
/// unrecoverable environment failures; use SPINSIM_ASSERT for internal
/// invariants that indicate a bug in spinsim itself.

#pragma once

#include <stdexcept>
#include <string>

namespace spinsim {

/// Thrown when a caller passes arguments that violate a documented
/// precondition (bad dimensions, out-of-range parameters, ...).
class InvalidArgument : public std::invalid_argument {
 public:
  explicit InvalidArgument(const std::string& what) : std::invalid_argument(what) {}
};

/// Thrown when a numerical routine fails to converge or encounters a
/// singular / indefinite system it cannot handle.
class NumericalError : public std::runtime_error {
 public:
  explicit NumericalError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a simulation is driven into a state the model does not
/// support (e.g. programming a memristor outside its conductance range).
class ModelError : public std::runtime_error {
 public:
  explicit ModelError(const std::string& what) : std::runtime_error(what) {}
};

// -- Service-edge failure taxonomy (see README "Overload & failure
// handling"). These three are *expected* production outcomes, not bugs:
// clients are meant to catch them and decide whether to retry.

/// Retriable: the service refused new work because a capacity limit
/// (queue depth, no healthy shard) is currently exceeded. Back off and
/// resubmit; nothing about the request itself was wrong.
class Overloaded : public std::runtime_error {
 public:
  explicit Overloaded(const std::string& what) : std::runtime_error(what) {}
};

/// The query's deadline expired while it waited for dispatch, so the
/// collector shed it instead of spending shard time on an answer the
/// client no longer wants. Counted as `shed_deadline`, never `failed`.
class DeadlineExceeded : public std::runtime_error {
 public:
  explicit DeadlineExceeded(const std::string& what) : std::runtime_error(what) {}
};

/// The service was destroyed or re-initialised (store_templates) while
/// this query was in flight. Every pending future is failed with this —
/// shutdown never abandons a future.
class ServiceStopped : public std::runtime_error {
 public:
  explicit ServiceStopped(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
/// Aborts with a diagnostic; used by SPINSIM_ASSERT. Never returns.
[[noreturn]] void assert_fail(const char* expr, const char* file, int line, const char* msg);
}  // namespace detail

/// Validates a documented precondition of a public API and throws
/// InvalidArgument with the given message if it does not hold.
inline void require(bool condition, const std::string& message) {
  if (!condition) {
    throw InvalidArgument(message);
  }
}

}  // namespace spinsim

/// Internal invariant check. Active in all build types: the simulator is a
/// measurement instrument, so silent state corruption is worse than an abort.
#define SPINSIM_ASSERT(expr, msg)                                       \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::spinsim::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                   \
  } while (false)
