/// \file error.hpp
/// Error handling primitives for spinsim.
///
/// Policy (per C++ Core Guidelines E.*): throw exceptions for API misuse and
/// unrecoverable environment failures; use SPINSIM_ASSERT for internal
/// invariants that indicate a bug in spinsim itself.

#pragma once

#include <stdexcept>
#include <string>

namespace spinsim {

/// Thrown when a caller passes arguments that violate a documented
/// precondition (bad dimensions, out-of-range parameters, ...).
class InvalidArgument : public std::invalid_argument {
 public:
  explicit InvalidArgument(const std::string& what) : std::invalid_argument(what) {}
};

/// Thrown when a numerical routine fails to converge or encounters a
/// singular / indefinite system it cannot handle.
class NumericalError : public std::runtime_error {
 public:
  explicit NumericalError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a simulation is driven into a state the model does not
/// support (e.g. programming a memristor outside its conductance range).
class ModelError : public std::runtime_error {
 public:
  explicit ModelError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
/// Aborts with a diagnostic; used by SPINSIM_ASSERT. Never returns.
[[noreturn]] void assert_fail(const char* expr, const char* file, int line, const char* msg);
}  // namespace detail

/// Validates a documented precondition of a public API and throws
/// InvalidArgument with the given message if it does not hold.
inline void require(bool condition, const std::string& message) {
  if (!condition) {
    throw InvalidArgument(message);
  }
}

}  // namespace spinsim

/// Internal invariant check. Active in all build types: the simulator is a
/// measurement instrument, so silent state corruption is worse than an abort.
#define SPINSIM_ASSERT(expr, msg)                                       \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::spinsim::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                   \
  } while (false)
