#include "core/error.hpp"

#include <cstdio>
#include <cstdlib>

namespace spinsim::detail {

void assert_fail(const char* expr, const char* file, int line, const char* msg) {
  std::fprintf(stderr, "spinsim internal assertion failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg);
  std::abort();
}

}  // namespace spinsim::detail
