/// \file log.hpp
/// Minimal leveled logging to stderr. Experiment harnesses narrate with
/// info(); library code stays quiet below `warn` by default.

#pragma once

#include <string>

namespace spinsim {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

void log(LogLevel level, const std::string& message);

inline void log_debug(const std::string& m) { log(LogLevel::kDebug, m); }
inline void log_info(const std::string& m) { log(LogLevel::kInfo, m); }
inline void log_warn(const std::string& m) { log(LogLevel::kWarn, m); }
inline void log_error(const std::string& m) { log(LogLevel::kError, m); }

}  // namespace spinsim
