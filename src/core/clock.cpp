#include "core/clock.hpp"

#include "core/error.hpp"

namespace spinsim {

Clock::~Clock() = default;

Clock::TimePoint SteadyClock::now() const {
  // The one sanctioned raw clock read; everything else injects a Clock.
  return std::chrono::steady_clock::now();
}

std::shared_ptr<SteadyClock> SteadyClock::instance() {
  static const std::shared_ptr<SteadyClock> shared = std::make_shared<SteadyClock>();
  return shared;
}

Clock::TimePoint FakeClock::now() const {
  // A fixed epoch keeps fake time points comparable across FakeClock
  // instances and independent of when the test process started.
  return TimePoint(Duration(offset_.load(std::memory_order_acquire)));
}

void FakeClock::advance(Duration by) {
  require(by.count() >= 0, "FakeClock::advance: time cannot move backwards");
  offset_.fetch_add(by.count(), std::memory_order_acq_rel);
}

}  // namespace spinsim
