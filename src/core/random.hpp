/// \file random.hpp
/// Deterministic random-number generation for reproducible simulations.
///
/// Every stochastic model in spinsim (device variation, thermal noise,
/// dataset synthesis) draws from an explicitly seeded Rng so that a whole
/// experiment is a pure function of its seed. Rng instances can be forked
/// into independent substreams so that adding a new consumer does not
/// perturb the draws seen by existing ones.

#pragma once

#include <cstdint>
#include <vector>

#include "core/error.hpp"

namespace spinsim {

/// Deterministic pseudo-random generator (xoshiro256** core).
///
/// Not copy-hostile: copying an Rng duplicates its stream, which is
/// occasionally useful in tests; fork() is the intended way to derive
/// independent streams.
class Rng {
 public:
  /// Seeds the generator. Identical seeds yield identical streams on all
  /// platforms (no std:: distribution objects are used internally).
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL);

  /// Next raw 64-bit draw.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal draw (Box-Muller with cached spare).
  double normal();

  /// Normal draw with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Log-normal draw such that the *multiplicative* sigma of the result is
  /// approximately `sigma_rel` around `median` (used for device variation).
  double lognormal_rel(double median, double sigma_rel);

  /// Derives an independent substream; the parent stream advances by one.
  Rng fork();

  /// Fisher-Yates shuffle of `v` in place.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t state_[4];
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace spinsim
