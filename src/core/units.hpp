/// \file units.hpp
/// Compile-time dimensional analysis plus the SI unit vocabulary of
/// spinsim.
///
/// Every headline number of this reproduction — pJ/query recognition
/// energy, the tiered router's energy ratio, the leaf cache's reprogram
/// pricing — used to flow through plain `double`s, where a J-vs-W mixup
/// compiles silently. `Quantity<Dim>` makes the dimension part of the
/// type: adding an Energy to a Power, or assigning one to the other, is
/// a compile error, while the generated code is a bare `double` (the
/// wrapper is trivially copyable and every operation is constexpr).
///
/// Dimensions are tracked as integer exponents over six bases: metre,
/// kilogram, second, ampere, kelvin — and `query`, the bookkeeping base
/// that distinguishes a Joule from a Joule-per-recognition. Products and
/// quotients combine exponents at compile time:
///
///     Power  * Time        -> Energy
///     Voltage * Conductance -> Current
///     Energy / Queries      -> EnergyPerQuery
///
/// Values are stored in SI base units. Construct quantities from typed
/// unit constants, and extract raw numbers explicitly:
///
///     Energy e = 3.2 * units::pJ;
///     double picojoules = e.in(units::pJ);     // 3.2
///     double joules     = e.si();              // 3.2e-12
///
/// A quantity divided by a same-dimensioned quantity collapses to plain
/// `double` (that is what `.in()` is), as does any product or quotient
/// whose exponents all cancel.
///
/// The plain-`double` multipliers (`units::nm`, `units::uA`, ...) remain
/// for the dimensions the device/circuit layers still carry as raw SI
/// doubles:
///
///     double strip_length = 60.0 * units::nm;
///     double threshold    = 1.0 * units::uA;
///
/// The energy/power/frequency constants, in contrast, are fully typed —
/// that layer has been migrated and its public APIs accept and return
/// `Quantity` types only. Migrating another layer means replacing its
/// double multipliers here with typed constants and following the
/// compile errors.

#pragma once

#include <ostream>
#include <type_traits>

namespace spinsim {

/// Integer dimension exponents over spinsim's base dimensions.
template <int MetreExp, int KilogramExp, int SecondExp, int AmpereExp, int KelvinExp, int QueryExp>
struct Dimension {
  static constexpr int metre = MetreExp;
  static constexpr int kilogram = KilogramExp;
  static constexpr int second = SecondExp;
  static constexpr int ampere = AmpereExp;
  static constexpr int kelvin = KelvinExp;
  static constexpr int query = QueryExp;
};

using Dimensionless = Dimension<0, 0, 0, 0, 0, 0>;

/// Exponent arithmetic: the compile-time engine behind `*` and `/`.
template <class A, class B>
using DimProduct =
    Dimension<A::metre + B::metre, A::kilogram + B::kilogram, A::second + B::second,
              A::ampere + B::ampere, A::kelvin + B::kelvin, A::query + B::query>;

template <class A, class B>
using DimQuotient =
    Dimension<A::metre - B::metre, A::kilogram - B::kilogram, A::second - B::second,
              A::ampere - B::ampere, A::kelvin - B::kelvin, A::query - B::query>;

/// A physical value of dimension `D`, stored in SI base units.
///
/// Zero overhead: the only member is the double, every operation is a
/// constexpr inline wrapper around the same double arithmetic, and the
/// type is trivially copyable — a `Quantity` in an API is the same
/// machine word the raw double was, with the dimension moved into the
/// type system.
template <class D>
class Quantity {
 public:
  using Dim = D;

  constexpr Quantity() = default;
  /// Constructs from a raw SI value. Explicit on purpose: a bare double
  /// never silently becomes a typed quantity — multiply by a unit
  /// constant (`3.2 * units::pJ`) or name the conversion (`Energy{x}`).
  constexpr explicit Quantity(double raw_si) : value_(raw_si) {}

  /// Raw value in SI base units (J, W, Hz, ...).
  constexpr double si() const { return value_; }

  /// Value expressed in `unit`: `energy.in(units::pJ)` reads "energy in
  /// picojoules". The dimensions must match — that is the signature.
  constexpr double in(Quantity unit) const { return value_ / unit.value_; }

  // --- same-dimension arithmetic ---
  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity{a.value_ + b.value_};
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity{a.value_ - b.value_};
  }
  constexpr Quantity operator-() const { return Quantity{-value_}; }
  constexpr Quantity& operator+=(Quantity other) {
    value_ += other.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity other) {
    value_ -= other.value_;
    return *this;
  }

  // --- dimensionless scaling ---
  friend constexpr Quantity operator*(Quantity a, double s) { return Quantity{a.value_ * s}; }
  friend constexpr Quantity operator*(double s, Quantity a) { return Quantity{s * a.value_}; }
  friend constexpr Quantity operator/(Quantity a, double s) { return Quantity{a.value_ / s}; }
  constexpr Quantity& operator*=(double s) {
    value_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s) {
    value_ /= s;
    return *this;
  }

  // --- comparisons (same dimension only) ---
  friend constexpr bool operator==(Quantity a, Quantity b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Quantity a, Quantity b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Quantity a, Quantity b) { return a.value_ < b.value_; }
  friend constexpr bool operator<=(Quantity a, Quantity b) { return a.value_ <= b.value_; }
  friend constexpr bool operator>(Quantity a, Quantity b) { return a.value_ > b.value_; }
  friend constexpr bool operator>=(Quantity a, Quantity b) { return a.value_ >= b.value_; }

 private:
  double value_ = 0.0;
};

/// Dimension-crossing product: exponents add. A product whose exponents
/// all cancel collapses to plain double.
template <class DA, class DB>
constexpr auto operator*(Quantity<DA> a, Quantity<DB> b) {
  if constexpr (std::is_same_v<DimProduct<DA, DB>, Dimensionless>) {
    return a.si() * b.si();
  } else {
    return Quantity<DimProduct<DA, DB>>{a.si() * b.si()};
  }
}

/// Dimension-crossing quotient: exponents subtract. A same-dimension
/// ratio is a plain double — `energy / unit` IS `.in(unit)`.
template <class DA, class DB>
constexpr auto operator/(Quantity<DA> a, Quantity<DB> b) {
  if constexpr (std::is_same_v<DimQuotient<DA, DB>, Dimensionless>) {
    return a.si() / b.si();
  } else {
    return Quantity<DimQuotient<DA, DB>>{a.si() / b.si()};
  }
}

/// Reciprocal of a quantity: `1.0 / Time` is a Frequency.
template <class D>
constexpr auto operator/(double s, Quantity<D> q) {
  return Quantity<DimQuotient<Dimensionless, D>>{s / q.si()};
}

/// Streams the raw SI value (gtest failure messages, logs). Deliberately
/// without a unit suffix: the dimension lives in the type, and pretty
/// printing belongs to the table/report layers.
template <class D>
std::ostream& operator<<(std::ostream& out, Quantity<D> q) {
  return out << q.si();
}

// --- the named dimensions spinsim works in ---
using Length = Quantity<Dimension<1, 0, 0, 0, 0, 0>>;
using Mass = Quantity<Dimension<0, 1, 0, 0, 0, 0>>;
using Time = Quantity<Dimension<0, 0, 1, 0, 0, 0>>;
using Frequency = Quantity<Dimension<0, 0, -1, 0, 0, 0>>;
using Current = Quantity<Dimension<0, 0, 0, 1, 0, 0>>;
using Temperature = Quantity<Dimension<0, 0, 0, 0, 1, 0>>;
/// Recognitions served — the bookkeeping base dimension that keeps
/// per-query figures from masquerading as plain energies.
using Queries = Quantity<Dimension<0, 0, 0, 0, 0, 1>>;
using Charge = Quantity<Dimension<0, 0, 1, 1, 0, 0>>;
using Voltage = Quantity<Dimension<2, 1, -3, -1, 0, 0>>;
using Resistance = Quantity<Dimension<2, 1, -3, -2, 0, 0>>;
using Conductance = Quantity<Dimension<-2, -1, 3, 2, 0, 0>>;
using Capacitance = Quantity<Dimension<-2, -1, 4, 2, 0, 0>>;
using Energy = Quantity<Dimension<2, 1, -2, 0, 0, 0>>;
using Power = Quantity<Dimension<2, 1, -3, 0, 0, 0>>;
using EnergyPerQuery = Quantity<Dimension<2, 1, -2, 0, 0, -1>>;

// The dimension algebra holds by construction; spell out the identities
// the energy layer leans on so a broken exponent table cannot compile.
static_assert(std::is_same_v<decltype(Power{} * Time{}), Energy>, "P * t = E");
static_assert(std::is_same_v<decltype(Voltage{} * Current{}), Power>, "V * I = P");
static_assert(std::is_same_v<decltype(Voltage{} * Conductance{}), Current>, "V * G = I");
static_assert(std::is_same_v<decltype(Energy{} / Queries{}), EnergyPerQuery>, "E / q");
static_assert(std::is_same_v<decltype(Energy{} / Time{}), Power>, "E / t = P");
static_assert(sizeof(Energy) == sizeof(double), "Quantity is zero-overhead");
static_assert(std::is_trivially_copyable_v<Energy>, "Quantity is a plain value");

namespace units {

// --- length (legacy double multipliers; device layer unmigrated) ---
inline constexpr double m = 1.0;
inline constexpr double cm = 1e-2;
inline constexpr double mm = 1e-3;
inline constexpr double um = 1e-6;
inline constexpr double nm = 1e-9;

// --- time (legacy double multipliers; device layer unmigrated) ---
inline constexpr double s = 1.0;
inline constexpr double ms = 1e-3;
inline constexpr double us = 1e-6;
inline constexpr double ns = 1e-9;
inline constexpr double ps = 1e-12;

// --- frequency (typed) ---
inline constexpr Frequency Hz{1.0};
inline constexpr Frequency kHz{1e3};
inline constexpr Frequency MHz{1e6};
inline constexpr Frequency GHz{1e9};

// --- electrical (legacy double multipliers; circuit layer unmigrated) ---
inline constexpr double A = 1.0;
inline constexpr double mA = 1e-3;
inline constexpr double uA = 1e-6;
inline constexpr double nA = 1e-9;
inline constexpr double V = 1.0;
inline constexpr double mV = 1e-3;
inline constexpr double uV = 1e-6;
inline constexpr double Ohm = 1.0;
inline constexpr double kOhm = 1e3;
inline constexpr double MOhm = 1e6;
inline constexpr double S = 1.0;   // siemens
inline constexpr double mS = 1e-3;
inline constexpr double uS = 1e-6;
inline constexpr double F = 1.0;
inline constexpr double pF = 1e-12;
inline constexpr double fF = 1e-15;

// --- typed canonical units, for quantity-typed arithmetic across the
// --- not-yet-migrated dimensions (full names so the legacy multipliers
// --- above keep their short ones until their layers migrate) ---
inline constexpr Length metre{1.0};
inline constexpr Mass kilogram{1.0};
inline constexpr Time second{1.0};
inline constexpr Current ampere{1.0};
inline constexpr Temperature kelvin{1.0};
inline constexpr Voltage volt{1.0};
inline constexpr Resistance ohm{1.0};
inline constexpr Conductance siemens{1.0};
inline constexpr Capacitance farad{1.0};
inline constexpr Charge coulomb{1.0};

// --- energy / power (typed: the migrated layer) ---
inline constexpr Energy J{1.0};
inline constexpr Energy mJ{1e-3};
inline constexpr Energy uJ{1e-6};
inline constexpr Energy nJ{1e-9};
inline constexpr Energy pJ{1e-12};
inline constexpr Energy fJ{1e-15};
inline constexpr Energy aJ{1e-18};
inline constexpr Power W{1.0};
inline constexpr Power mW{1e-3};
inline constexpr Power uW{1e-6};
inline constexpr Power nW{1e-9};

// --- queries (typed) ---
inline constexpr Queries query{1.0};

// --- magnetics ---
/// emu/cm^3 expressed in A/m (CGS magnetisation unit used in the paper:
/// Ms = 800 emu/cm^3 for NiFe).
inline constexpr double emu_per_cm3 = 1e3;
inline constexpr double tesla = 1.0;
inline constexpr double oersted = 1e-4 / (4e-7 * 3.14159265358979323846);  // A/m -> T uses mu0

// --- temperature ---
inline constexpr double K = 1.0;

}  // namespace units
}  // namespace spinsim

namespace spinsim::constants {

/// Elementary charge [C].
inline constexpr double q_e = 1.602176634e-19;
/// Boltzmann constant [J/K].
inline constexpr double k_B = 1.380649e-23;
/// Reduced Planck constant [J s].
inline constexpr double hbar = 1.054571817e-34;
/// Bohr magneton [J/T].
inline constexpr double mu_B = 9.2740100783e-24;
/// Vacuum permeability [T m / A].
inline constexpr double mu_0 = 1.25663706212e-6;
/// Electron gyromagnetic ratio [rad / (s T)] (gamma = g * mu_B / hbar).
inline constexpr double gamma_e = 1.760859630e11;
/// Room temperature used throughout the paper [K].
inline constexpr double T_room = 300.0;
/// Thermal energy at room temperature [J].
inline constexpr double kT_room = k_B * T_room;

}  // namespace spinsim::constants
