/// \file units.hpp
/// SI unit multipliers and physical constants used throughout spinsim.
///
/// All spinsim quantities are stored in plain SI base units (metre, second,
/// ampere, volt, ohm, farad, joule, kelvin). The constants below make the
/// intent of literals explicit at the point of use:
///
///     double strip_length = 60.0 * units::nm;
///     double threshold    = 1.0 * units::uA;

#pragma once

namespace spinsim::units {

// --- length ---
inline constexpr double m = 1.0;
inline constexpr double cm = 1e-2;
inline constexpr double mm = 1e-3;
inline constexpr double um = 1e-6;
inline constexpr double nm = 1e-9;

// --- time ---
inline constexpr double s = 1.0;
inline constexpr double ms = 1e-3;
inline constexpr double us = 1e-6;
inline constexpr double ns = 1e-9;
inline constexpr double ps = 1e-12;

// --- frequency ---
inline constexpr double Hz = 1.0;
inline constexpr double kHz = 1e3;
inline constexpr double MHz = 1e6;
inline constexpr double GHz = 1e9;

// --- electrical ---
inline constexpr double A = 1.0;
inline constexpr double mA = 1e-3;
inline constexpr double uA = 1e-6;
inline constexpr double nA = 1e-9;
inline constexpr double V = 1.0;
inline constexpr double mV = 1e-3;
inline constexpr double uV = 1e-6;
inline constexpr double Ohm = 1.0;
inline constexpr double kOhm = 1e3;
inline constexpr double MOhm = 1e6;
inline constexpr double S = 1.0;   // siemens
inline constexpr double mS = 1e-3;
inline constexpr double uS = 1e-6;
inline constexpr double F = 1.0;
inline constexpr double pF = 1e-12;
inline constexpr double fF = 1e-15;

// --- energy / power ---
inline constexpr double J = 1.0;
inline constexpr double mJ = 1e-3;
inline constexpr double uJ = 1e-6;
inline constexpr double nJ = 1e-9;
inline constexpr double pJ = 1e-12;
inline constexpr double fJ = 1e-15;
inline constexpr double aJ = 1e-18;
inline constexpr double W = 1.0;
inline constexpr double mW = 1e-3;
inline constexpr double uW = 1e-6;
inline constexpr double nW = 1e-9;

// --- magnetics ---
/// emu/cm^3 expressed in A/m (CGS magnetisation unit used in the paper:
/// Ms = 800 emu/cm^3 for NiFe).
inline constexpr double emu_per_cm3 = 1e3;
inline constexpr double tesla = 1.0;
inline constexpr double oersted = 1e-4 / (4e-7 * 3.14159265358979323846);  // A/m -> T uses mu0

// --- temperature ---
inline constexpr double K = 1.0;

}  // namespace spinsim::units

namespace spinsim::constants {

/// Elementary charge [C].
inline constexpr double q_e = 1.602176634e-19;
/// Boltzmann constant [J/K].
inline constexpr double k_B = 1.380649e-23;
/// Reduced Planck constant [J s].
inline constexpr double hbar = 1.054571817e-34;
/// Bohr magneton [J/T].
inline constexpr double mu_B = 9.2740100783e-24;
/// Vacuum permeability [T m / A].
inline constexpr double mu_0 = 1.25663706212e-6;
/// Electron gyromagnetic ratio [rad / (s T)] (gamma = g * mu_B / hbar).
inline constexpr double gamma_e = 1.760859630e11;
/// Room temperature used throughout the paper [K].
inline constexpr double T_room = 300.0;
/// Thermal energy at room temperature [J].
inline constexpr double kT_room = k_B * T_room;

}  // namespace spinsim::constants
