/// \file matrix.hpp
/// Dense row-major matrix and vector helpers.
///
/// spinsim's dense needs are modest (MNA systems up to a few thousand
/// unknowns, image-sized data), so this is a deliberately small, owning,
/// bounds-checked container rather than a full BLAS wrapper.

#pragma once

#include <cstddef>
#include <vector>

#include "core/error.hpp"

namespace spinsim {

/// Dense row-major matrix of double.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Creates a matrix from nested initializer lists (row by row).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    SPINSIM_ASSERT(r < rows_ && c < cols_, "Matrix index out of range");
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    SPINSIM_ASSERT(r < rows_ && c < cols_, "Matrix index out of range");
    return data_[r * cols_ + c];
  }

  /// Raw storage (row-major); useful for tight loops.
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// y = this * x.
  std::vector<double> multiply(const std::vector<double>& x) const;

  /// C = this * B.
  Matrix multiply(const Matrix& b) const;

  Matrix transposed() const;

  /// Elementwise operations; dimensions must match.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scale);

  /// Frobenius norm.
  double norm() const;

  /// Largest absolute element.
  double max_abs() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

Matrix operator+(Matrix a, const Matrix& b);
Matrix operator-(Matrix a, const Matrix& b);
Matrix operator*(Matrix a, double s);
Matrix operator*(double s, Matrix a);

// --- free vector helpers (std::vector<double> is the vector type) ---

/// Dot product; sizes must match.
double dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean norm.
double norm2(const std::vector<double>& v);

/// Largest absolute element (0 for empty).
double max_abs(const std::vector<double>& v);

/// y += alpha * x.
void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y);

/// Elementwise a - b.
std::vector<double> subtract(const std::vector<double>& a, const std::vector<double>& b);

/// Index of the largest element (first on ties). Requires non-empty input.
std::size_t argmax(const std::vector<double>& v);

/// Index of the smallest element (first on ties). Requires non-empty input.
std::size_t argmin(const std::vector<double>& v);

// --- batched operator application (the recognition hot path) ---

/// Applies a cols x rows row-major operator to a micro-batch of inputs:
///
///     c[q * cols + j] = offset[j] + sum_r op[j * rows + r] * x[q * rows + r]
///
/// `x` holds `batch` input vectors of length `rows` back to back; `c`
/// holds `batch` output vectors of length `cols`. `offset` may be null
/// (treated as all zeros).
///
/// Register-blocked over (q, j) tiles so each operator row and each input
/// vector is streamed once per tile, but the reduction over r is kept
/// strictly sequential per (q, j) accumulator — the result is
/// bit-identical to the naive per-query loop
/// `acc = offset[j]; for r: acc += op[j][r] * x[q][r]`, which is what
/// lets batched recognition reproduce the sequential recognize() path
/// exactly (no floating-point reassociation).
void gemm_operator_batch(const double* op, const double* offset, const double* x,
                         std::size_t rows, std::size_t cols, std::size_t batch, double* c);

}  // namespace spinsim
