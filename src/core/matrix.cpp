#include "core/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace spinsim {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    require(row.size() == cols_, "Matrix: ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix eye(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    eye(i, i) = 1.0;
  }
  return eye;
}

std::vector<double> Matrix::multiply(const std::vector<double>& x) const {
  require(x.size() == cols_, "Matrix::multiply: dimension mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) {
      acc += row[c] * x[c];
    }
    y[r] = acc;
  }
  return y;
}

Matrix Matrix::multiply(const Matrix& b) const {
  require(cols_ == b.rows_, "Matrix::multiply: dimension mismatch");
  Matrix out(rows_, b.cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a_rk = (*this)(r, k);
      if (a_rk == 0.0) {
        continue;
      }
      for (std::size_t c = 0; c < b.cols_; ++c) {
        out(r, c) += a_rk * b(k, c);
      }
    }
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out(c, r) = (*this)(r, c);
    }
  }
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  require(rows_ == other.rows_ && cols_ == other.cols_, "Matrix::+=: dimension mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += other.data_[i];
  }
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  require(rows_ == other.rows_ && cols_ == other.cols_, "Matrix::-=: dimension mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] -= other.data_[i];
  }
  return *this;
}

Matrix& Matrix::operator*=(double scale) {
  for (auto& v : data_) {
    v *= scale;
  }
  return *this;
}

double Matrix::norm() const {
  double acc = 0.0;
  for (double v : data_) {
    acc += v * v;
  }
  return std::sqrt(acc);
}

double Matrix::max_abs() const {
  double best = 0.0;
  for (double v : data_) {
    best = std::max(best, std::abs(v));
  }
  return best;
}

Matrix operator+(Matrix a, const Matrix& b) {
  a += b;
  return a;
}
Matrix operator-(Matrix a, const Matrix& b) {
  a -= b;
  return a;
}
Matrix operator*(Matrix a, double s) {
  a *= s;
  return a;
}
Matrix operator*(double s, Matrix a) {
  a *= s;
  return a;
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  require(a.size() == b.size(), "dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += a[i] * b[i];
  }
  return acc;
}

double norm2(const std::vector<double>& v) { return std::sqrt(dot(v, v)); }

double max_abs(const std::vector<double>& v) {
  double best = 0.0;
  for (double x : v) {
    best = std::max(best, std::abs(x));
  }
  return best;
}

void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  require(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] += alpha * x[i];
  }
}

std::vector<double> subtract(const std::vector<double>& a, const std::vector<double>& b) {
  require(a.size() == b.size(), "subtract: size mismatch");
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = a[i] - b[i];
  }
  return out;
}

std::size_t argmax(const std::vector<double>& v) {
  require(!v.empty(), "argmax: empty vector");
  return static_cast<std::size_t>(std::max_element(v.begin(), v.end()) - v.begin());
}

std::size_t argmin(const std::vector<double>& v) {
  require(!v.empty(), "argmin: empty vector");
  return static_cast<std::size_t>(std::min_element(v.begin(), v.end()) - v.begin());
}

namespace {

// Register-tile size for gemm_operator_batch: 4 queries x 4 operator rows
// gives 16 live accumulators plus 8 streamed operands, comfortably inside
// the 16 callee-visible vector registers on x86-64 and well inside
// aarch64's 32.
constexpr std::size_t kGemmTile = 4;

}  // namespace

void gemm_operator_batch(const double* op, const double* offset, const double* x,
                         std::size_t rows, std::size_t cols, std::size_t batch, double* c) {
  if (batch == 0 || cols == 0) {
    return;
  }
  for (std::size_t q0 = 0; q0 < batch; q0 += kGemmTile) {
    const std::size_t qn = std::min(kGemmTile, batch - q0);
    for (std::size_t j0 = 0; j0 < cols; j0 += kGemmTile) {
      const std::size_t jn = std::min(kGemmTile, cols - j0);
      double acc[kGemmTile][kGemmTile];
      for (std::size_t qi = 0; qi < qn; ++qi) {
        for (std::size_t ji = 0; ji < jn; ++ji) {
          acc[qi][ji] = offset != nullptr ? offset[j0 + ji] : 0.0;
        }
      }
      // The k-loop (over r) stays outermost within the tile and strictly
      // sequential: every accumulator sees offset, then r = 0, 1, ... in
      // order — the exact addition sequence of the scalar matvec.
      for (std::size_t r = 0; r < rows; ++r) {
        double a_jr[kGemmTile];
        for (std::size_t ji = 0; ji < jn; ++ji) {
          a_jr[ji] = op[(j0 + ji) * rows + r];
        }
        for (std::size_t qi = 0; qi < qn; ++qi) {
          const double x_qr = x[(q0 + qi) * rows + r];
          for (std::size_t ji = 0; ji < jn; ++ji) {
            acc[qi][ji] += a_jr[ji] * x_qr;
          }
        }
      }
      for (std::size_t qi = 0; qi < qn; ++qi) {
        for (std::size_t ji = 0; ji < jn; ++ji) {
          c[(q0 + qi) * cols + (j0 + ji)] = acc[qi][ji];
        }
      }
    }
  }
}

}  // namespace spinsim
