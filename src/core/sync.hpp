/// Annotated synchronization layer: every mutex and condition variable in
/// spinsim flows through these wrappers so the locking discipline is
/// checkable twice —
///
///   1. At compile time, under clang's Thread Safety Analysis
///      (-Wthread-safety -Wthread-safety-beta -Werror in CI): shared
///      fields carry SPINSIM_GUARDED_BY, internal helpers carry
///      SPINSIM_REQUIRES, and the analysis proves every access happens
///      under the right capability. The attribute macros below expand to
///      nothing on GCC, so the annotations cost zero outside the clang
///      static-analysis job.
///
///   2. At run time, through the lock-rank registry: every Mutex is
///      constructed with a documented LockRank and a thread-local rank
///      stack asserts that locks are only ever acquired in strictly
///      increasing rank order. A violation is a deadlock waiting for the
///      right schedule, so it aborts immediately with both ranks printed.
///      The checks are compiled in everywhere (an unconditional push/pop
///      on a fixed-size thread-local array, far cheaper than the lock
///      operation itself) and the *assertion* is gated on a runtime flag
///      that defaults on in debug builds — so Release tier-1 binaries can
///      still opt in from tests via set_lock_rank_checks(true).
///
/// The lock-rank table (lower rank = acquired first / outermost). Keep
/// this in sync with README.md "Thread safety":
///
///   rank  name            protects
///   ----  --------------  ------------------------------------------------
///    10   kServiceQueue   RecognitionService admission queue + lifecycle
///    20   kShard          one shard's job queue + worker state (never two at once)
///    25   kServiceDone    RecognitionService streamed completion queue
///    30   kServiceStats   service counters, breaker Health, histograms
///    40   kClientJoin     client-side join/wait state in tests & harnesses
///    50   kFaultSwitch    fault-injection stick/throw toggles
///    60   kInputStage     input-stage memo cache map + stats
///    70   kSubstrate      reserved: future shared crossbar substrate state
///    90   kParallelError  first-exception capture inside parallel_for
///
/// Suppression policy: code that clang's analysis cannot follow (notably
/// condition-variable predicate lambdas, which TSA analyzes as separate
/// functions) is marked SPINSIM_NO_TSA with a comment saying why. There
/// is no blanket opt-out — a new suppression needs a reason a reviewer
/// can check.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>  // lint:allow(raw-mutex) the one sanctioned wrapper site
#include <shared_mutex>

// ---------------------------------------------------------------- macros
//
// Clang understands the capability attributes; GCC (and MSVC) do not, so
// everything collapses to nothing there. SWIG and friends never see this
// header.
#if defined(__clang__)
#define SPINSIM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SPINSIM_THREAD_ANNOTATION(x)
#endif

#define SPINSIM_CAPABILITY(x) SPINSIM_THREAD_ANNOTATION(capability(x))
#define SPINSIM_SCOPED_CAPABILITY SPINSIM_THREAD_ANNOTATION(scoped_lockable)
#define SPINSIM_GUARDED_BY(x) SPINSIM_THREAD_ANNOTATION(guarded_by(x))
#define SPINSIM_PT_GUARDED_BY(x) SPINSIM_THREAD_ANNOTATION(pt_guarded_by(x))
#define SPINSIM_REQUIRES(...) \
  SPINSIM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SPINSIM_REQUIRES_SHARED(...) \
  SPINSIM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define SPINSIM_ACQUIRE(...) \
  SPINSIM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SPINSIM_ACQUIRE_SHARED(...) \
  SPINSIM_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define SPINSIM_RELEASE(...) \
  SPINSIM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SPINSIM_RELEASE_SHARED(...) \
  SPINSIM_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define SPINSIM_TRY_ACQUIRE(...) \
  SPINSIM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define SPINSIM_EXCLUDES(...) SPINSIM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define SPINSIM_ASSERT_CAPABILITY(x) \
  SPINSIM_THREAD_ANNOTATION(assert_capability(x))
#define SPINSIM_RETURN_CAPABILITY(x) SPINSIM_THREAD_ANNOTATION(lock_returned(x))
#define SPINSIM_ACQUIRED_BEFORE(...) \
  SPINSIM_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define SPINSIM_ACQUIRED_AFTER(...) \
  SPINSIM_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
// Escape hatch for code TSA cannot follow (cv-predicate lambdas, test
// scaffolding). Every use carries a justifying comment — see the
// suppression policy above.
#define SPINSIM_NO_TSA SPINSIM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace spinsim {

// ------------------------------------------------------------- lock ranks

/// Documented acquisition order; see the table in the header comment.
/// Values are spaced so a future layer can slot between two existing
/// ranks without renumbering the world.
enum class LockRank : int {
  kServiceQueue = 10,
  kShard = 20,
  /// Sits between kShard and kServiceStats on purpose: a shard worker
  /// pushes its completion while still holding its shard mutex (20 -> 25,
  /// ascending), which makes the abandoned-generation check and the push
  /// one atomic step — the watchdog can never abandon a generation whose
  /// results are concurrently landing in the completion queue.
  kServiceDone = 25,
  kServiceStats = 30,
  kClientJoin = 40,
  kFaultSwitch = 50,
  kInputStage = 60,
  kSubstrate = 70,
  kParallelError = 90,
};

/// Toggles the runtime rank-order assertion. Defaults on when NDEBUG is
/// not defined. The bookkeeping (push/pop) always runs so the stack stays
/// consistent across toggles; only the abort-on-violation is gated.
void set_lock_rank_checks(bool enabled) noexcept;
bool lock_rank_checks_enabled() noexcept;

namespace sync_detail {

/// Pushes `rank` on the calling thread's rank stack; aborts (when checks
/// are enabled) if `rank` is not strictly greater than the current top —
/// i.e. the caller is acquiring out of documented order, which is a
/// deadlock waiting for the right schedule.
void rank_acquire(int rank);

/// Removes the most recent occurrence of `rank` from the calling
/// thread's stack (locks are not required to be released LIFO); aborts
/// when checks are enabled and the rank is not on the stack.
void rank_release(int rank) noexcept;

/// True when `rank` is somewhere on the calling thread's stack. Used by
/// Mutex::assert_held and the test suite.
bool rank_held(int rank) noexcept;

/// Current depth of the calling thread's rank stack (test hook).
int rank_depth() noexcept;

}  // namespace sync_detail

// ----------------------------------------------------------------- Mutex

/// std::mutex with a capability annotation and a mandatory LockRank.
/// Everything in src/ outside this header locks through Mutex (the
/// raw-mutex lint enforces it), so the rank table above is the complete
/// lock-order story for the codebase.
class SPINSIM_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank) noexcept : rank_(static_cast<int>(rank)) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SPINSIM_ACQUIRE() {
    sync_detail::rank_acquire(rank_);
    native_.lock();
  }
  void unlock() SPINSIM_RELEASE() {
    native_.unlock();
    sync_detail::rank_release(rank_);
  }
  bool try_lock() SPINSIM_TRY_ACQUIRE(true) {
    if (!native_.try_lock()) {
      return false;
    }
    sync_detail::rank_acquire(rank_);
    return true;
  }

  /// Runtime claim that the calling thread holds this mutex, for code
  /// paths where the capability cannot be threaded through the types.
  /// Checked against the rank stack when rank checks are enabled.
  void assert_held() const SPINSIM_ASSERT_CAPABILITY(this);

  int rank() const noexcept { return rank_; }

  /// The wrapped mutex, for CondVar only.
  std::mutex& native() noexcept { return native_; }

 private:
  std::mutex native_;
  const int rank_;
};

// ----------------------------------------------------------- SharedMutex

/// Reader/writer capability with the same rank discipline; shared
/// acquisition participates in the rank order exactly like exclusive
/// acquisition (a reader can deadlock a writer just as well).
class SPINSIM_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(LockRank rank) noexcept : rank_(static_cast<int>(rank)) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() SPINSIM_ACQUIRE() {
    sync_detail::rank_acquire(rank_);
    native_.lock();
  }
  void unlock() SPINSIM_RELEASE() {
    native_.unlock();
    sync_detail::rank_release(rank_);
  }
  void lock_shared() SPINSIM_ACQUIRE_SHARED() {
    sync_detail::rank_acquire(rank_);
    native_.lock_shared();
  }
  void unlock_shared() SPINSIM_RELEASE_SHARED() {
    native_.unlock_shared();
    sync_detail::rank_release(rank_);
  }

  int rank() const noexcept { return rank_; }

 private:
  std::shared_mutex native_;
  const int rank_;
};

// ------------------------------------------------------------- LockGuard

/// Scoped exclusive hold; the annotated analogue of std::lock_guard.
class SPINSIM_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mutex) SPINSIM_ACQUIRE(mutex) : mutex_(mutex) {
    mutex.lock();  // lint:allow(bare-lock) this IS the guard implementation
  }
  ~LockGuard() SPINSIM_RELEASE() {
    mutex_.unlock();  // lint:allow(bare-lock) this IS the guard implementation
  }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mutex_;
};

/// Scoped shared (reader) hold on a SharedMutex.
class SPINSIM_SCOPED_CAPABILITY SharedLockGuard {
 public:
  explicit SharedLockGuard(SharedMutex& mutex) SPINSIM_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex.lock_shared();
  }
  ~SharedLockGuard() SPINSIM_RELEASE() { mutex_.unlock_shared(); }

  SharedLockGuard(const SharedLockGuard&) = delete;
  SharedLockGuard& operator=(const SharedLockGuard&) = delete;

 private:
  SharedMutex& mutex_;
};

// ------------------------------------------------------------ UniqueLock

/// Movable scoped hold that can be released and reacquired, and is the
/// handle CondVar waits on. Internally wraps std::unique_lock on the
/// Mutex's native handle so the condition variable can do its atomic
/// unlock-and-sleep, with the rank bookkeeping layered on the explicit
/// lock()/unlock() transitions. (During a CondVar wait the rank stays on
/// the thread's stack even while the OS briefly releases the mutex: the
/// thread still logically occupies that level of the order, and will hold
/// the lock again before the wait returns.)
class SPINSIM_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mutex) SPINSIM_ACQUIRE(mutex)
      : mutex_(&mutex), inner_(mutex.native(), std::defer_lock) {
    sync_detail::rank_acquire(mutex_->rank());
    inner_.lock();
  }
  ~UniqueLock() SPINSIM_RELEASE() {
    if (inner_.owns_lock()) {
      inner_.unlock();
      sync_detail::rank_release(mutex_->rank());
    }
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() SPINSIM_ACQUIRE() {
    sync_detail::rank_acquire(mutex_->rank());
    inner_.lock();
  }
  void unlock() SPINSIM_RELEASE() {
    inner_.unlock();
    sync_detail::rank_release(mutex_->rank());
  }
  bool owns_lock() const noexcept { return inner_.owns_lock(); }

  /// For CondVar only: the std lock the native condition variable needs.
  std::unique_lock<std::mutex>& native_lock() noexcept { return inner_; }
  Mutex& mutex() noexcept { return *mutex_; }

 private:
  Mutex* mutex_;
  std::unique_lock<std::mutex> inner_;
};

// --------------------------------------------------------------- CondVar

/// Condition variable over a spinsim::Mutex via UniqueLock. Only the
/// predicate forms are exposed: every wait in this codebase is a
/// predicate wait (bare waits invite lost-wakeup bugs). The wait bodies
/// are SPINSIM_NO_TSA because clang cannot see that std::condition_
/// variable reacquires the lock before evaluating the predicate; callers
/// still hold the capability across the wait from the analysis's point
/// of view, which matches the semantics.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { native_.notify_one(); }
  void notify_all() noexcept { native_.notify_all(); }

  template <typename Predicate>
  void wait(UniqueLock& lock, Predicate pred) SPINSIM_NO_TSA {
    native_.wait(lock.native_lock(), std::move(pred));
  }

  template <typename Rep, typename Period, typename Predicate>
  bool wait_for(UniqueLock& lock, const std::chrono::duration<Rep, Period>& d,
                Predicate pred) SPINSIM_NO_TSA {
    return native_.wait_for(lock.native_lock(), d, std::move(pred));
  }

 private:
  std::condition_variable native_;  // lint:allow(raw-mutex) wrapper site
};

}  // namespace spinsim
