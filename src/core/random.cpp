#include "core/random.hpp"

#include <cmath>

#include "core/error.hpp"

namespace spinsim {

namespace {

/// splitmix64 — used only to expand the user seed into xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) {
    s = splitmix64(sm);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 significant bits, uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  require(lo <= hi, "Rng::uniform: lo must be <= hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  require(lo <= hi, "Rng::uniform_int: lo must be <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range requested
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t draw = next_u64();
  while (draw >= limit) {
    draw = next_u64();
  }
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  // Box-Muller; u1 is kept away from 0 so log() stays finite.
  double u1 = uniform();
  while (u1 <= 1e-300) {
    u1 = uniform();
  }
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * 3.14159265358979323846 * u2;
  spare_normal_ = radius * std::sin(angle);
  has_spare_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  require(stddev >= 0.0, "Rng::normal: stddev must be non-negative");
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return uniform() < p;
}

double Rng::lognormal_rel(double median, double sigma_rel) {
  require(median > 0.0, "Rng::lognormal_rel: median must be positive");
  require(sigma_rel >= 0.0, "Rng::lognormal_rel: sigma_rel must be non-negative");
  // For small sigma_rel, exp(N(0, s)) has multiplicative spread ~ s.
  const double s = std::log1p(sigma_rel);
  return median * std::exp(normal(0.0, s));
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace spinsim
