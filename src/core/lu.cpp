#include "core/lu.hpp"

#include <cmath>
#include <utility>

#include "core/error.hpp"

namespace spinsim {

LuDecomposition::LuDecomposition(Matrix a) : lu_(std::move(a)) {
  require(lu_.rows() == lu_.cols(), "LuDecomposition: matrix must be square");
  const std::size_t n = lu_.rows();
  piv_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    piv_[i] = i;
  }

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting: bring the largest remaining |entry| of this column
    // to the diagonal.
    std::size_t pivot_row = col;
    double pivot_mag = std::abs(lu_(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::abs(lu_(r, col));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    if (pivot_mag < 1e-300) {
      throw NumericalError("LuDecomposition: matrix is singular");
    }
    if (pivot_row != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu_(pivot_row, c), lu_(col, c));
      }
      std::swap(piv_[pivot_row], piv_[col]);
      pivot_sign_ = -pivot_sign_;
    }

    const double inv_pivot = 1.0 / lu_(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = lu_(r, col) * inv_pivot;
      lu_(r, col) = factor;
      if (factor == 0.0) {
        continue;
      }
      for (std::size_t c = col + 1; c < n; ++c) {
        lu_(r, c) -= factor * lu_(col, c);
      }
    }
  }
}

std::vector<double> LuDecomposition::solve(const std::vector<double>& b) const {
  const std::size_t n = size();
  require(b.size() == n, "LuDecomposition::solve: dimension mismatch");

  // Apply the permutation, then forward/backward substitution.
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = b[piv_[i]];
  }
  for (std::size_t i = 1; i < n; ++i) {
    double acc = x[i];
    for (std::size_t j = 0; j < i; ++j) {
      acc -= lu_(i, j) * x[j];
    }
    x[i] = acc;
  }
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double acc = x[i];
    for (std::size_t j = i + 1; j < n; ++j) {
      acc -= lu_(i, j) * x[j];
    }
    x[i] = acc / lu_(i, i);
  }
  return x;
}

double LuDecomposition::determinant() const {
  double det = pivot_sign_;
  for (std::size_t i = 0; i < size(); ++i) {
    det *= lu_(i, i);
  }
  return det;
}

std::vector<double> solve_dense(const Matrix& a, const std::vector<double>& b) {
  return LuDecomposition(a).solve(b);
}

}  // namespace spinsim
