/// \file lu.hpp
/// Dense LU factorisation with partial pivoting.
///
/// This is the workhorse behind the general MNA operating-point solve
/// (circuits with voltage sources produce indefinite, non-symmetric
/// systems). Factor once, then solve repeatedly against new right-hand
/// sides — the SAR WTA re-solves the same crossbar topology every cycle.

#pragma once

#include <vector>

#include "core/matrix.hpp"

namespace spinsim {

/// LU decomposition P*A = L*U of a square matrix.
class LuDecomposition {
 public:
  /// Factors `a`. Throws NumericalError if the matrix is singular to
  /// working precision.
  explicit LuDecomposition(Matrix a);

  std::size_t size() const { return lu_.rows(); }

  /// Solves A x = b.
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Determinant of A (product of U's diagonal with pivot sign).
  double determinant() const;

 private:
  Matrix lu_;                     // packed L (unit diagonal) and U
  std::vector<std::size_t> piv_;  // row permutation
  int pivot_sign_ = 1;
};

/// One-shot convenience: solves A x = b by LU.
std::vector<double> solve_dense(const Matrix& a, const std::vector<double>& b);

}  // namespace spinsim
