/// \file cholesky.hpp
/// Sparse LDL^T (Cholesky) factorization for SPD conductance systems.
///
/// The parasitic crossbar produces one fixed SPD matrix per programming
/// state; only the right-hand side (the injection vector) changes between
/// recognitions. Factoring once and back-substituting per query replaces
/// the per-query CG iteration loop with two sparse triangular solves —
/// the numerical core of the direct-solver recognition path.
///
/// The factorization is the classic up-looking LDL^T: an elimination-tree
/// symbolic pass sizes L exactly, then a numeric pass fills it column by
/// column with a sparse triangular solve per row. A reverse Cuthill-McKee
/// pre-ordering keeps fill low on the grid-like crossbar graphs (the
/// natural node order of a rows x cols array already has bandwidth
/// ~min(rows, cols); RCM makes the factor size robust to arbitrary
/// grounded networks as well).

#pragma once

#include <cstddef>
#include <vector>

#include "core/sparse.hpp"

namespace spinsim {

/// Fill-reducing ordering computed from the symmetric pattern of `a`:
/// breadth-first levels from a low-degree start node, neighbours visited
/// in degree order, then reversed. Returns `perm` with perm[k] = original
/// index of the k-th node in the new ordering. Handles disconnected
/// patterns (each component is ordered in turn).
std::vector<std::size_t> reverse_cuthill_mckee(const CsrMatrix& a);

/// Options for SparseLdlt::factorize().
struct LdltOptions {
  bool use_rcm_ordering = true;  ///< permute with reverse_cuthill_mckee()
};

/// Sparse LDL^T factorization P A P^T = L D L^T of an SPD matrix.
class SparseLdlt {
 public:
  /// Factors `a` (symmetric positive definite, full pattern stored, as
  /// produced by CooBuilder::compress). Throws NumericalError if a
  /// non-positive pivot appears (matrix not SPD / singular).
  void factorize(const CsrMatrix& a, const LdltOptions& options = {});

  /// False until factorize() completes successfully (a throwing
  /// factorize() leaves the object unusable until the next success).
  bool factorized() const { return factorized_; }

  std::size_t dimension() const { return n_; }

  /// Nonzeros in L (strictly lower triangle), a proxy for solve cost.
  std::size_t factor_nnz() const { return l_values_.size(); }

  /// The fill-reducing permutation used (perm[k] = original index).
  const std::vector<std::size_t>& permutation() const { return perm_; }

  /// Solves A x = b via forward/backward substitution. Throws
  /// InvalidArgument if not factorized or b has the wrong length.
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Allocation-free variant; x is resized as needed.
  void solve_into(const std::vector<double>& b, std::vector<double>& x) const;

 private:
  std::size_t n_ = 0;
  bool factorized_ = false;
  std::vector<std::size_t> perm_;      // new -> old
  std::vector<std::size_t> inv_perm_;  // old -> new
  // L in compressed-column form (strictly lower triangle), D diagonal.
  std::vector<std::size_t> l_col_ptr_;
  std::vector<std::size_t> l_row_idx_;
  std::vector<double> l_values_;
  std::vector<double> d_;
  mutable std::vector<double> work_;  // permuted rhs / solution scratch
};

}  // namespace spinsim
