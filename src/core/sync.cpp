#include "core/sync.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace spinsim {
namespace {

/// One relaxed load per lock operation — noise next to the lock itself.
/// Defaults on in debug builds so every debug test run doubles as a
/// lock-order audit; Release binaries (the tier-1 build) can opt in per
/// test via set_lock_rank_checks(true).
std::atomic<bool>& checks_flag() noexcept {
  static std::atomic<bool> enabled{
#ifdef NDEBUG
      false
#else
      true
#endif
  };
  return enabled;
}

/// Fixed-capacity per-thread stack: no heap traffic on the lock path and
/// no destructor-order hazards at thread exit. Depth 32 is an order of
/// magnitude beyond anything the rank table permits (8 distinct ranks).
constexpr int kMaxDepth = 32;
thread_local int g_rank_stack[kMaxDepth];
thread_local int g_rank_depth = 0;

[[noreturn]] void rank_violation(const char* what, int held, int acquiring) {
  std::fprintf(stderr,
               "spinsim lock-rank violation: %s (held rank %d, acquiring "
               "rank %d) — see the lock-rank table in src/core/sync.hpp\n",
               what, held, acquiring);
  std::abort();
}

}  // namespace

void set_lock_rank_checks(bool enabled) noexcept {
  checks_flag().store(enabled, std::memory_order_relaxed);
}

bool lock_rank_checks_enabled() noexcept {
  return checks_flag().load(std::memory_order_relaxed);
}

namespace sync_detail {

void rank_acquire(int rank) {
  if (g_rank_depth > 0 && lock_rank_checks_enabled()) {
    const int top = g_rank_stack[g_rank_depth - 1];
    if (rank <= top) {
      rank_violation("locks must be acquired in strictly increasing rank "
                     "order",
                     top, rank);
    }
  }
  if (g_rank_depth >= kMaxDepth) {
    rank_violation("lock depth exceeded the rank-stack capacity",
                   g_rank_stack[kMaxDepth - 1], rank);
  }
  g_rank_stack[g_rank_depth++] = rank;
}

void rank_release(int rank) noexcept {
  // Locks may be released in any order (std::unique_lock allows it), so
  // remove the most recent occurrence rather than insisting on LIFO.
  for (int i = g_rank_depth - 1; i >= 0; --i) {
    if (g_rank_stack[i] == rank) {
      for (int j = i; j + 1 < g_rank_depth; ++j) {
        g_rank_stack[j] = g_rank_stack[j + 1];
      }
      --g_rank_depth;
      return;
    }
  }
  if (lock_rank_checks_enabled()) {
    rank_violation("released a rank this thread does not hold", -1, rank);
  }
}

bool rank_held(int rank) noexcept {
  for (int i = 0; i < g_rank_depth; ++i) {
    if (g_rank_stack[i] == rank) {
      return true;
    }
  }
  return false;
}

int rank_depth() noexcept { return g_rank_depth; }

}  // namespace sync_detail

void Mutex::assert_held() const {
  if (lock_rank_checks_enabled() && !sync_detail::rank_held(rank_)) {
    rank_violation("assert_held: calling thread does not hold this rank", -1,
                   rank_);
  }
}

}  // namespace spinsim
