/// \file sparse.hpp
/// Sparse matrix support for large resistive networks.
///
/// The parasitic crossbar model produces symmetric positive-definite
/// conductance matrices with ~10k unknowns and a handful of nonzeros per
/// row. A COO triplet builder accumulates stamps; compress() produces an
/// immutable CSR matrix consumed by the iterative solver.

#pragma once

#include <cstddef>
#include <vector>

#include "core/error.hpp"

namespace spinsim {

/// Immutable compressed-sparse-row matrix.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  std::size_t rows() const { return row_ptr_.empty() ? 0 : row_ptr_.size() - 1; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  /// y = A * x.
  std::vector<double> multiply(const std::vector<double>& x) const;

  /// y = A * x without allocating (y is resized as needed).
  void multiply_into(const std::vector<double>& x, std::vector<double>& y) const;

  /// Diagonal entries (0.0 where the diagonal is structurally absent).
  std::vector<double> diagonal() const;

  /// Dense element access (O(log nnz_row)); intended for tests.
  double at(std::size_t r, std::size_t c) const;

  const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::size_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

 private:
  friend class CooBuilder;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

/// Accumulating triplet (COO) builder. Duplicate (r, c) entries are summed
/// on compress(), which matches circuit-stamping semantics.
class CooBuilder {
 public:
  CooBuilder(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Adds `value` at (r, c).
  void add(std::size_t r, std::size_t c, double value);

  /// Sums duplicates and returns the CSR form with sorted column indices.
  CsrMatrix compress() const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::size_t> r_;
  std::vector<std::size_t> c_;
  std::vector<double> v_;
};

}  // namespace spinsim
