#include "core/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "core/error.hpp"

namespace spinsim {

void AsciiTable::set_header(std::vector<std::string> header) { header_ = std::move(header); }

void AsciiTable::add_row(std::vector<std::string> row) {
  require(header_.empty() || row.size() == header_.size(),
          "AsciiTable::add_row: column count mismatch");
  require(!row.empty(), "AsciiTable::add_row: empty row");
  rows_.push_back(std::move(row));
}

void AsciiTable::add_separator() { rows_.emplace_back(); }

void AsciiTable::add_note(std::string note) { notes_.push_back(std::move(note)); }

std::string AsciiTable::str() const {
  // Column widths over header + all rows.
  std::size_t ncols = header_.size();
  for (const auto& row : rows_) {
    ncols = std::max(ncols, row.size());
  }
  std::vector<std::size_t> width(ncols, 0);
  const auto measure = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  };
  if (!header_.empty()) {
    measure(header_);
  }
  for (const auto& row : rows_) {
    measure(row);
  }

  std::size_t total = 1;  // leading '|'
  for (std::size_t w : width) {
    total += w + 3;  // " cell |"
  }

  std::ostringstream out;
  const std::string rule(total, '-');
  out << title_ << "\n" << rule << "\n";

  const auto emit = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out << " " << cell << std::string(width[c] - cell.size(), ' ') << " |";
    }
    out << "\n";
  };

  if (!header_.empty()) {
    emit(header_);
    out << rule << "\n";
  }
  for (const auto& row : rows_) {
    if (row.empty()) {
      out << rule << "\n";
    } else {
      emit(row);
    }
  }
  out << rule << "\n";
  for (const auto& note : notes_) {
    out << "  * " << note << "\n";
  }
  return out.str();
}

void AsciiTable::print() const { std::fputs(str().c_str(), stdout); }

std::string AsciiTable::num(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", digits, value);
  return buf;
}

std::string AsciiTable::eng(double value, const std::string& unit, int digits) {
  struct Prefix {
    double scale;
    const char* name;
  };
  static constexpr Prefix prefixes[] = {
      {1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"},  {1.0, ""},    {1e-3, "m"},
      {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"}, {1e-18, "a"},
  };
  if (value == 0.0) {
    return "0 " + unit;
  }
  const double mag = std::abs(value);
  for (const auto& p : prefixes) {
    if (mag >= p.scale) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.*g %s%s", digits, value / p.scale, p.name, unit.c_str());
      return buf;
    }
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g a%s", digits, value / 1e-18, unit.c_str());
  return buf;
}

}  // namespace spinsim
