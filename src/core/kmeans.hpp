/// \file kmeans.hpp
/// Small k-means implementation (k-means++ seeding, Lloyd iterations).
///
/// Substrate for the paper's Section-5 extension: "very large number of
/// images can be grouped into smaller clusters [25] that can be
/// hierarchically stored in the multiple RCM modules". The hierarchical
/// AMM clusters stored templates with this routine.

#pragma once

#include <cstddef>
#include <vector>

#include "core/random.hpp"

namespace spinsim {

/// Result of a k-means run.
struct KMeansResult {
  std::vector<std::vector<double>> centroids;  ///< k centroids
  std::vector<std::size_t> assignment;         ///< point -> centroid index
  double inertia = 0.0;                        ///< sum of squared distances
  std::size_t iterations = 0;                  ///< Lloyd iterations executed
};

/// Clusters `points` (all of equal dimension) into `k` groups.
/// k-means++ seeding from `rng`, then Lloyd iterations until assignments
/// stop changing or `max_iterations` is reached. Empty clusters are
/// reseeded with the point farthest from its centroid.
/// Throws InvalidArgument for k == 0 or k > points.size().
KMeansResult kmeans(const std::vector<std::vector<double>>& points, std::size_t k, Rng& rng,
                    std::size_t max_iterations = 50);

/// Squared Euclidean distance between two equal-length vectors.
double squared_distance(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace spinsim
