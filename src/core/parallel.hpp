/// \file parallel.hpp
/// Shared strided parallel-for used by every recognize_batch fan-out.
///
/// One place for the thread-count resolution (0 = hardware concurrency,
/// clamped to the item count), the serial fast path, and — unlike a
/// hand-rolled worker loop — exception safety: a throw inside a worker
/// is captured and rethrown on the calling thread after the join,
/// instead of calling std::terminate.

#pragma once

#include <cstddef>
#include <exception>
#include <thread>
#include <vector>

#include "core/sync.hpp"

namespace spinsim {

/// Minimum items a strided worker must receive before a fan-out is worth
/// its thread-spawn cost. Below this floor the per-item work (a few µs of
/// DAC/WTA arithmetic) is dwarfed by thread creation + join, which is how
/// `direct t=4 b=16` used to come out *slower* than `t=1`.
inline constexpr std::size_t kMinItemsPerThread = 16;

/// Resolves a user-facing thread-count knob: 0 picks the hardware
/// concurrency. The result is capped three ways: never more workers than
/// `items` (no idle workers), never more than the hardware concurrency
/// (oversubscribing a compute-bound strided loop only adds scheduler
/// overhead), and never so many that a worker would see fewer than
/// kMinItemsPerThread items (tiny batches run serial). Monotone in
/// `threads`, and always >= 1.
inline std::size_t resolve_threads(std::size_t threads, std::size_t items) {
  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) {
    hw = 1;
  }
  if (threads == 0 || threads > hw) {
    threads = hw;
  }
  const std::size_t by_work = items / kMinItemsPerThread;
  if (threads > by_work) {
    threads = by_work;
  }
  if (threads > items) {
    threads = items;
  }
  return threads == 0 ? 1 : threads;
}

/// Runs fn(i) for i in [0, items) across exactly min(threads, items)
/// workers — no work-size floor. For callers that already resolved the
/// worker count against a finer-grained measure than the loop's items
/// (e.g. a chunked dispatch resolving against the query count); everyone
/// else wants parallel_for_strided. Serial when one worker suffices; the
/// first exception thrown by any worker is rethrown here once all
/// workers have joined.
template <typename Fn>
void parallel_for_resolved(std::size_t items, std::size_t threads, Fn&& fn) {
  if (items == 0) {
    return;
  }
  if (threads > items) {
    threads = items;
  }
  if (threads <= 1) {
    for (std::size_t i = 0; i < items; ++i) {
      fn(i);
    }
    return;
  }

  std::exception_ptr error;
  Mutex error_mutex(LockRank::kParallelError);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      try {
        for (std::size_t i = t; i < items; i += threads) {
          fn(i);
        }
      } catch (...) {
        LockGuard lock(error_mutex);
        if (!error) {
          error = std::current_exception();
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

/// Runs fn(i) for i in [0, items), striding the index space across
/// `threads` workers (resolved per resolve_threads, including the
/// work-size floor). Serial when one worker suffices.
template <typename Fn>
void parallel_for_strided(std::size_t items, std::size_t threads, Fn&& fn) {
  parallel_for_resolved(items, resolve_threads(threads, items), std::forward<Fn>(fn));
}

}  // namespace spinsim
