/// \file parallel.hpp
/// Shared strided parallel-for used by every recognize_batch fan-out.
///
/// One place for the thread-count resolution (0 = hardware concurrency,
/// clamped to the item count), the serial fast path, and — unlike a
/// hand-rolled worker loop — exception safety: a throw inside a worker
/// is captured and rethrown on the calling thread after the join,
/// instead of calling std::terminate.

#pragma once

#include <cstddef>
#include <exception>
#include <thread>
#include <vector>

#include "core/sync.hpp"

namespace spinsim {

/// Resolves a user-facing thread-count knob: 0 picks the hardware
/// concurrency; the result never exceeds `items` (no idle workers).
inline std::size_t resolve_threads(std::size_t threads, std::size_t items) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) {
      threads = 1;
    }
  }
  return threads < items ? threads : (items == 0 ? 1 : items);
}

/// Runs fn(i) for i in [0, items), striding the index space across
/// `threads` workers (resolved per resolve_threads). Serial when one
/// worker suffices. The first exception thrown by any worker is
/// rethrown here once all workers have joined.
template <typename Fn>
void parallel_for_strided(std::size_t items, std::size_t threads, Fn&& fn) {
  if (items == 0) {
    return;
  }
  threads = resolve_threads(threads, items);
  if (threads <= 1) {
    for (std::size_t i = 0; i < items; ++i) {
      fn(i);
    }
    return;
  }

  std::exception_ptr error;
  Mutex error_mutex(LockRank::kParallelError);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      try {
        for (std::size_t i = t; i < items; i += threads) {
          fn(i);
        }
      } catch (...) {
        LockGuard lock(error_mutex);
        if (!error) {
          error = std::current_exception();
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

}  // namespace spinsim
