/// \file statistics.hpp
/// Small statistics helpers used by experiment harnesses and variation
/// studies (Monte-Carlo margins, accuracy summaries).

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace spinsim {

/// Running mean / variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for n < 2.
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of `v`; requires non-empty input.
double mean(const std::vector<double>& v);

/// Sample standard deviation of `v` (0 for size < 2).
double stddev(const std::vector<double>& v);

/// Linear-interpolation percentile, p in [0, 100]. Sorts a copy.
double percentile(std::vector<double> v, double p);

/// Pearson correlation coefficient of two equal-length series.
double pearson(const std::vector<double>& a, const std::vector<double>& b);

/// Fixed-footprint geometric histogram for positive magnitudes (the
/// service edge feeds it latencies in microseconds). 96 buckets at ~26 %
/// resolution span [0, ~3e9]; larger values clamp to the last bucket.
/// O(1) add, O(buckets) percentile — the shape admission control wants:
/// no per-sample allocation under traffic, quantiles on demand.
class GeometricHistogram {
 public:
  void add(double value);

  std::uint64_t count() const { return count_; }

  /// Quantile q in [0, 1] by linear interpolation inside the winning
  /// bucket; 0 when empty.
  double percentile(double q) const;

 private:
  static constexpr std::size_t kBuckets = 96;
  static constexpr double kGrowth = 1.26;  // bucket upper-edge ratio

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
};

/// Simple equal-width histogram.
struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<std::size_t> counts;

  /// Builds a histogram of `v` with `bins` equal-width bins spanning
  /// [min, max] of the data (or [lo, hi] if provided).
  static Histogram build(const std::vector<double>& v, std::size_t bins);
  static Histogram build(const std::vector<double>& v, std::size_t bins, double lo, double hi);
};

}  // namespace spinsim
