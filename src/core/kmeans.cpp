#include "core/kmeans.hpp"

#include <algorithm>
#include <limits>

#include "core/error.hpp"

namespace spinsim {

double squared_distance(const std::vector<double>& a, const std::vector<double>& b) {
  require(a.size() == b.size(), "squared_distance: dimension mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

namespace {

/// k-means++ seeding: first centroid uniform, then each subsequent one
/// drawn proportionally to the squared distance from the nearest chosen.
std::vector<std::vector<double>> seed_centroids(const std::vector<std::vector<double>>& points,
                                                std::size_t k, Rng& rng) {
  std::vector<std::vector<double>> centroids;
  centroids.reserve(k);
  centroids.push_back(
      points[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(points.size()) - 1))]);

  std::vector<double> best_d2(points.size(), std::numeric_limits<double>::max());
  while (centroids.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      best_d2[i] = std::min(best_d2[i], squared_distance(points[i], centroids.back()));
      total += best_d2[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with centroids; duplicate one.
      centroids.push_back(points[centroids.size() % points.size()]);
      continue;
    }
    double draw = rng.uniform() * total;
    std::size_t chosen = points.size() - 1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      draw -= best_d2[i];
      if (draw <= 0.0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

}  // namespace

KMeansResult kmeans(const std::vector<std::vector<double>>& points, std::size_t k, Rng& rng,
                    std::size_t max_iterations) {
  require(!points.empty(), "kmeans: no points");
  require(k >= 1 && k <= points.size(), "kmeans: k must be in [1, #points]");
  const std::size_t dim = points.front().size();
  for (const auto& p : points) {
    require(p.size() == dim, "kmeans: ragged points");
  }

  KMeansResult result;
  result.centroids = seed_centroids(points, k, rng);
  result.assignment.assign(points.size(), 0);

  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    // Assignment step.
    bool changed = false;
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::size_t best = 0;
      double best_d2 = std::numeric_limits<double>::max();
      for (std::size_t c = 0; c < k; ++c) {
        const double d2 = squared_distance(points[i], result.centroids[c]);
        if (d2 < best_d2) {
          best_d2 = d2;
          best = c;
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        changed = true;
      }
    }
    result.iterations = iter + 1;

    // Update step.
    std::vector<std::vector<double>> sums(k, std::vector<double>(dim, 0.0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const std::size_t c = result.assignment[i];
      for (std::size_t d = 0; d < dim; ++d) {
        sums[c][d] += points[i][d];
      }
      ++counts[c];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster with the overall farthest point.
        std::size_t farthest = 0;
        double far_d2 = -1.0;
        for (std::size_t i = 0; i < points.size(); ++i) {
          const double d2 =
              squared_distance(points[i], result.centroids[result.assignment[i]]);
          if (d2 > far_d2) {
            far_d2 = d2;
            farthest = i;
          }
        }
        result.centroids[c] = points[farthest];
        changed = true;
        continue;
      }
      for (std::size_t d = 0; d < dim; ++d) {
        result.centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
    if (!changed) {
      break;
    }
  }

  result.inertia = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    result.inertia += squared_distance(points[i], result.centroids[result.assignment[i]]);
  }
  return result;
}

}  // namespace spinsim
