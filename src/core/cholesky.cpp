#include "core/cholesky.hpp"

#include <algorithm>
#include <string>

#include "core/error.hpp"

namespace spinsim {

std::vector<std::size_t> reverse_cuthill_mckee(const CsrMatrix& a) {
  require(a.rows() == a.cols(), "reverse_cuthill_mckee: matrix must be square");
  const std::size_t n = a.rows();
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();

  // Off-diagonal degree of each node.
  std::vector<std::size_t> degree(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      if (col_idx[p] != i) {
        ++degree[i];
      }
    }
  }

  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<char> visited(n, 0);
  std::vector<std::size_t> neighbours;

  for (std::size_t seed = 0; seed < n; ++seed) {
    if (visited[seed]) {
      continue;
    }
    // Start each component from its lowest-degree unvisited node: a cheap
    // stand-in for a pseudo-peripheral vertex.
    std::size_t start = seed;
    for (std::size_t i = seed; i < n; ++i) {
      if (!visited[i] && degree[i] < degree[start]) {
        start = i;
      }
    }
    const std::size_t head = order.size();
    order.push_back(start);
    visited[start] = 1;
    for (std::size_t q = head; q < order.size(); ++q) {
      const std::size_t u = order[q];
      neighbours.clear();
      for (std::size_t p = row_ptr[u]; p < row_ptr[u + 1]; ++p) {
        const std::size_t v = col_idx[p];
        if (v != u && !visited[v]) {
          neighbours.push_back(v);
          visited[v] = 1;
        }
      }
      std::sort(neighbours.begin(), neighbours.end(),
                [&](std::size_t x, std::size_t y) { return degree[x] < degree[y]; });
      order.insert(order.end(), neighbours.begin(), neighbours.end());
    }
  }

  std::reverse(order.begin(), order.end());
  return order;
}

void SparseLdlt::factorize(const CsrMatrix& a, const LdltOptions& options) {
  require(a.rows() == a.cols(), "SparseLdlt::factorize: matrix must be square");
  const std::size_t n = a.rows();
  n_ = n;
  factorized_ = false;  // stays false if a non-SPD pivot aborts below
  if (n == 0) {
    perm_.clear();
    inv_perm_.clear();
    l_col_ptr_.assign(1, 0);
    l_row_idx_.clear();
    l_values_.clear();
    d_.clear();
    factorized_ = true;
    return;
  }

  if (options.use_rcm_ordering) {
    perm_ = reverse_cuthill_mckee(a);
  } else {
    perm_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      perm_[i] = i;
    }
  }
  inv_perm_.assign(n, 0);
  for (std::size_t k = 0; k < n; ++k) {
    inv_perm_[perm_[k]] = k;
  }

  // Permuted upper triangle in compressed-column form: column k holds the
  // entries (i, k) with i <= k of P A P^T. By symmetry these are exactly
  // the entries of row perm[k] of A whose permuted column index is <= k.
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();
  std::vector<std::size_t> up_ptr(n + 1, 0);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t old_row = perm_[k];
    for (std::size_t p = row_ptr[old_row]; p < row_ptr[old_row + 1]; ++p) {
      if (inv_perm_[col_idx[p]] <= k) {
        ++up_ptr[k + 1];
      }
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    up_ptr[k + 1] += up_ptr[k];
  }
  std::vector<std::size_t> up_idx(up_ptr[n]);
  std::vector<double> up_val(up_ptr[n]);
  {
    std::vector<std::size_t> fill = up_ptr;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t old_row = perm_[k];
      for (std::size_t p = row_ptr[old_row]; p < row_ptr[old_row + 1]; ++p) {
        const std::size_t i = inv_perm_[col_idx[p]];
        if (i <= k) {
          up_idx[fill[k]] = i;
          up_val[fill[k]] = values[p];
          ++fill[k];
        }
      }
    }
  }

  // Symbolic pass: elimination tree + exact per-column counts of L.
  std::vector<std::ptrdiff_t> parent(n, -1);
  std::vector<std::size_t> flag(n, n);  // n == "unmarked"
  std::vector<std::size_t> l_count(n, 0);
  for (std::size_t k = 0; k < n; ++k) {
    flag[k] = k;
    for (std::size_t p = up_ptr[k]; p < up_ptr[k + 1]; ++p) {
      std::size_t i = up_idx[p];
      if (i >= k) {
        continue;
      }
      while (flag[i] != k) {
        if (parent[i] < 0) {
          parent[i] = static_cast<std::ptrdiff_t>(k);
        }
        ++l_count[i];  // L(k, i) is structurally nonzero
        flag[i] = k;
        i = static_cast<std::size_t>(parent[i]);
      }
    }
  }

  l_col_ptr_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    l_col_ptr_[i + 1] = l_col_ptr_[i] + l_count[i];
  }
  l_row_idx_.assign(l_col_ptr_[n], 0);
  l_values_.assign(l_col_ptr_[n], 0.0);
  d_.assign(n, 0.0);

  // Numeric pass: up-looking factorization, one sparse triangular solve
  // per row k against the already-computed columns of L.
  std::vector<double> y(n, 0.0);
  std::vector<std::size_t> pattern(n);
  std::vector<std::size_t> l_next(l_col_ptr_.begin(), l_col_ptr_.end() - 1);
  flag.assign(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t top = n;
    flag[k] = k;
    for (std::size_t p = up_ptr[k]; p < up_ptr[k + 1]; ++p) {
      std::size_t i = up_idx[p];
      if (i > k) {
        continue;
      }
      y[i] += up_val[p];
      std::size_t len = 0;
      while (flag[i] != k) {
        pattern[len++] = i;
        flag[i] = k;
        i = static_cast<std::size_t>(parent[i]);
      }
      while (len > 0) {
        pattern[--top] = pattern[--len];
      }
    }
    d_[k] = y[k];
    y[k] = 0.0;
    for (; top < n; ++top) {
      const std::size_t i = pattern[top];
      const double yi = y[i];
      y[i] = 0.0;
      for (std::size_t p = l_col_ptr_[i]; p < l_next[i]; ++p) {
        y[l_row_idx_[p]] -= l_values_[p] * yi;
      }
      const double l_ki = yi / d_[i];
      d_[k] -= l_ki * yi;
      l_row_idx_[l_next[i]] = k;
      l_values_[l_next[i]] = l_ki;
      ++l_next[i];
    }
    if (!(d_[k] > 0.0)) {
      throw NumericalError("SparseLdlt::factorize: non-positive pivot at column " +
                           std::to_string(k) + " (matrix not SPD)");
    }
  }
  factorized_ = true;
}

void SparseLdlt::solve_into(const std::vector<double>& b, std::vector<double>& x) const {
  require(factorized(), "SparseLdlt::solve: factorize() first");
  require(b.size() == n_, "SparseLdlt::solve: rhs length mismatch");
  work_.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    work_[k] = b[perm_[k]];
  }
  // L z = Pb (unit lower triangle).
  for (std::size_t j = 0; j < n_; ++j) {
    const double zj = work_[j];
    for (std::size_t p = l_col_ptr_[j]; p < l_col_ptr_[j + 1]; ++p) {
      work_[l_row_idx_[p]] -= l_values_[p] * zj;
    }
  }
  // D w = z.
  for (std::size_t j = 0; j < n_; ++j) {
    work_[j] /= d_[j];
  }
  // L^T y = w.
  for (std::size_t j = n_; j-- > 0;) {
    double yj = work_[j];
    for (std::size_t p = l_col_ptr_[j]; p < l_col_ptr_[j + 1]; ++p) {
      yj -= l_values_[p] * work_[l_row_idx_[p]];
    }
    work_[j] = yj;
  }
  x.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    x[perm_[k]] = work_[k];
  }
}

std::vector<double> SparseLdlt::solve(const std::vector<double>& b) const {
  std::vector<double> x;
  solve_into(b, x);
  return x;
}

}  // namespace spinsim
