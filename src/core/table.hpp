/// \file table.hpp
/// ASCII table formatting for experiment harnesses.
///
/// Every bench/* binary prints "paper vs measured" rows through this class
/// so that the reproduction output is uniform and diffable.

#pragma once

#include <string>
#include <vector>

namespace spinsim {

/// Column-aligned ASCII table with a title and optional footnotes.
class AsciiTable {
 public:
  explicit AsciiTable(std::string title) : title_(std::move(title)) {}

  /// Sets the column headers (fixes the column count).
  void set_header(std::vector<std::string> header);

  /// Appends a row; must match the header's column count if one is set.
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal separator row.
  void add_separator();

  /// Appends a footnote printed under the table.
  void add_note(std::string note);

  /// Renders the table.
  std::string str() const;

  /// Renders and writes to stdout.
  void print() const;

  /// Formats a double with `digits` significant digits (helper for rows).
  static std::string num(double value, int digits = 4);

  /// Formats a value in engineering notation with a unit suffix, e.g.
  /// eng(6.5e-05, "W") -> "65 uW".
  static std::string eng(double value, const std::string& unit, int digits = 3);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector = separator
  std::vector<std::string> notes_;
};

}  // namespace spinsim
