#include "core/statistics.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace spinsim {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  require(n_ > 0, "RunningStats::mean: no samples");
  return mean_;
}

double RunningStats::stddev() const {
  if (n_ < 2) {
    return 0.0;
  }
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

double RunningStats::min() const {
  require(n_ > 0, "RunningStats::min: no samples");
  return min_;
}

double RunningStats::max() const {
  require(n_ > 0, "RunningStats::max: no samples");
  return max_;
}

void GeometricHistogram::add(double value) {
  std::size_t index = 0;
  if (value > 1.0) {
    index = static_cast<std::size_t>(std::log(value) / std::log(kGrowth)) + 1;
    index = std::min(index, kBuckets - 1);
  }
  ++buckets_[index];
  ++count_;
}

double GeometricHistogram::percentile(double q) const {
  require(q >= 0.0 && q <= 1.0, "GeometricHistogram::percentile: q must be in [0, 1]");
  if (count_ == 0) {
    return 0.0;
  }
  // Rank of the requested quantile (nearest-rank, 1-based).
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  const std::uint64_t target = std::max<std::uint64_t>(rank, 1);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    if (seen + buckets_[i] >= target) {
      const double hi = std::pow(kGrowth, static_cast<double>(i));
      const double lo = i == 0 ? 0.0 : hi / kGrowth;
      const double frac =
          static_cast<double>(target - seen) / static_cast<double>(buckets_[i]);
      return lo + frac * (hi - lo);
    }
    seen += buckets_[i];
  }
  return std::pow(kGrowth, static_cast<double>(kBuckets - 1));
}

double mean(const std::vector<double>& v) {
  require(!v.empty(), "mean: empty input");
  double acc = 0.0;
  for (double x : v) {
    acc += x;
  }
  return acc / static_cast<double>(v.size());
}

double stddev(const std::vector<double>& v) {
  if (v.size() < 2) {
    return 0.0;
  }
  const double m = mean(v);
  double acc = 0.0;
  for (double x : v) {
    acc += (x - m) * (x - m);
  }
  return std::sqrt(acc / static_cast<double>(v.size() - 1));
}

double percentile(std::vector<double> v, double p) {
  require(!v.empty(), "percentile: empty input");
  require(p >= 0.0 && p <= 100.0, "percentile: p must be in [0, 100]");
  std::sort(v.begin(), v.end());
  const double pos = (p / 100.0) * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  require(a.size() == b.size(), "pearson: size mismatch");
  require(a.size() >= 2, "pearson: need at least 2 samples");
  const double ma = mean(a);
  const double mb = mean(b);
  double num = 0.0;
  double da = 0.0;
  double db = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  if (da == 0.0 || db == 0.0) {
    return 0.0;
  }
  return num / std::sqrt(da * db);
}

Histogram Histogram::build(const std::vector<double>& v, std::size_t bins) {
  require(!v.empty(), "Histogram::build: empty input");
  const auto [lo_it, hi_it] = std::minmax_element(v.begin(), v.end());
  return build(v, bins, *lo_it, *hi_it);
}

Histogram Histogram::build(const std::vector<double>& v, std::size_t bins, double lo, double hi) {
  require(bins > 0, "Histogram::build: bins must be positive");
  require(hi >= lo, "Histogram::build: hi must be >= lo");
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(bins, 0);
  const double width = (hi > lo) ? (hi - lo) / static_cast<double>(bins) : 1.0;
  for (double x : v) {
    if (x < lo || x > hi) {
      continue;
    }
    auto bin = static_cast<std::size_t>((x - lo) / width);
    bin = std::min(bin, bins - 1);
    ++h.counts[bin];
  }
  return h;
}

}  // namespace spinsim
