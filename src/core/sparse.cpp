#include "core/sparse.hpp"

#include <algorithm>
#include <numeric>

namespace spinsim {

std::vector<double> CsrMatrix::multiply(const std::vector<double>& x) const {
  std::vector<double> y;
  multiply_into(x, y);
  return y;
}

void CsrMatrix::multiply_into(const std::vector<double>& x, std::vector<double>& y) const {
  require(x.size() == cols_, "CsrMatrix::multiply: dimension mismatch");
  y.assign(rows(), 0.0);
  for (std::size_t r = 0; r < rows(); ++r) {
    double acc = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      acc += values_[k] * x[col_idx_[k]];
    }
    y[r] = acc;
  }
}

std::vector<double> CsrMatrix::diagonal() const {
  std::vector<double> d(rows(), 0.0);
  for (std::size_t r = 0; r < rows(); ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      if (col_idx_[k] == r) {
        d[r] = values_[k];
        break;
      }
    }
  }
  return d;
}

double CsrMatrix::at(std::size_t r, std::size_t c) const {
  require(r < rows() && c < cols_, "CsrMatrix::at: index out of range");
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
  const auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) {
    return 0.0;
  }
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

void CooBuilder::add(std::size_t r, std::size_t c, double value) {
  SPINSIM_ASSERT(r < rows_ && c < cols_, "CooBuilder::add: index out of range");
  if (value == 0.0) {
    return;
  }
  r_.push_back(r);
  c_.push_back(c);
  v_.push_back(value);
}

CsrMatrix CooBuilder::compress() const {
  // Sort triplets by (row, col) via an index permutation, then merge
  // duplicates while emitting CSR arrays.
  std::vector<std::size_t> order(v_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    if (r_[a] != r_[b]) {
      return r_[a] < r_[b];
    }
    return c_[a] < c_[b];
  });

  CsrMatrix out;
  out.cols_ = cols_;
  out.row_ptr_.assign(rows_ + 1, 0);
  out.col_idx_.reserve(v_.size());
  out.values_.reserve(v_.size());

  std::size_t current_row = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::size_t k = order[i];
    while (current_row < r_[k]) {
      out.row_ptr_[++current_row] = out.values_.size();
    }
    const bool row_has_entries = out.values_.size() > out.row_ptr_[current_row];
    if (row_has_entries && out.col_idx_.back() == c_[k]) {
      // Same (row, col) as the previous emitted entry: accumulate the stamp.
      out.values_.back() += v_[k];
    } else {
      out.col_idx_.push_back(c_[k]);
      out.values_.push_back(v_[k]);
    }
  }
  while (current_row < rows_) {
    out.row_ptr_[++current_row] = out.values_.size();
  }
  return out;
}

}  // namespace spinsim
