/// \file cg.hpp
/// Preconditioned conjugate-gradient solver for sparse SPD systems.
///
/// The grounded resistive network of a crossbar (voltage-source nodes
/// eliminated) yields a symmetric positive-definite conductance matrix;
/// Jacobi-preconditioned CG solves the 10k-node 128x40 array in a few
/// hundred iterations.

#pragma once

#include <cstddef>
#include <vector>

#include "core/sparse.hpp"

namespace spinsim {

/// Options for conjugate_gradient().
struct CgOptions {
  double tolerance = 1e-10;      ///< relative residual ||r|| / ||b|| target
  std::size_t max_iterations = 20000;
  bool jacobi_preconditioner = true;
};

/// Result of conjugate_gradient().
struct CgResult {
  std::vector<double> x;      ///< solution
  double residual = 0.0;      ///< final relative residual
  std::size_t iterations = 0; ///< iterations consumed
  bool converged = false;
};

/// Solves A x = b for SPD A. `x0` (optional) seeds the iteration — passing
/// the previous operating point cuts iterations dramatically during sweeps.
/// Throws NumericalError on dimension mismatch or a breakdown (non-SPD A).
CgResult conjugate_gradient(const CsrMatrix& a, const std::vector<double>& b,
                            const CgOptions& options = {},
                            const std::vector<double>* x0 = nullptr);

}  // namespace spinsim
