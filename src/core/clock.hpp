/// \file clock.hpp
/// Injectable time source for everything above the physics layer.
///
/// The service edge keys several behaviours off wall-clock time —
/// admission windows, per-query deadlines, circuit-breaker cooldowns,
/// idle-scrub scheduling — and every one of them is miserable to test
/// against a real clock: the test either sleeps (flaky under load, and
/// banned by tools/lint/spinsim_lint.py) or asserts nothing about timing
/// at all. Clock is the seam: production code asks an injected Clock for
/// `now()`, tests inject a FakeClock and advance it by hand, and the
/// deadline/backoff arithmetic becomes a pure function of the test
/// script.
///
/// The project lint enforces the seam: a bare `steady_clock::now()`
/// outside src/core/clock* is a violation (check `bare-clock`), so time
/// reads cannot quietly bypass the injection point.
///
/// FakeClock is thread-safe (an atomic tick counter), so a test may
/// advance time while service worker threads read it. Note the limits of
/// the seam: condition-variable *timed waits* still run on the real
/// clock — a FakeClock cannot wake a `wait_for` early — so tests that
/// use a FakeClock drive code paths that compare time points
/// (deadlines, breaker cooldowns), not ones that sleep.

#pragma once

#include <atomic>
#include <chrono>
#include <memory>

namespace spinsim {

/// Abstract monotonic time source.
class Clock {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;
  using Duration = std::chrono::steady_clock::duration;

  virtual ~Clock();

  /// Current monotonic time. Must never decrease.
  virtual TimePoint now() const = 0;
};

/// The production clock: std::chrono::steady_clock.
class SteadyClock : public Clock {
 public:
  TimePoint now() const override;

  /// Shared default instance (the clock services use unless injected).
  static std::shared_ptr<SteadyClock> instance();
};

/// Deterministic manual clock for tests: starts at a fixed epoch and
/// only moves when advanced. Safe to advance from one thread while
/// others read now().
class FakeClock : public Clock {
 public:
  FakeClock() = default;

  TimePoint now() const override;

  /// Moves the clock forward (negative durations are rejected).
  void advance(Duration by);

 private:
  // Offset from the fixed epoch, in steady_clock ticks. advance() is
  // acq_rel and now() is acquire: a thread that observes the new time
  // also observes every write the advancing test made before advancing —
  // so "set up state, then advance past the deadline" publishes the
  // state to whichever worker wakes on the deadline.
  std::atomic<Duration::rep> offset_{0};
};

}  // namespace spinsim
