/// \file dtcs_dac.hpp
/// Deep-triode current-source (DTCS) digital-to-analog converter.
///
/// A bank of binary-weighted PMOS devices biased in deep triode
/// (|VDS| = dV ~ 30 mV) behaves as a digitally programmable conductance
/// G_T(code) = code * g_unit. Driving the crossbar row (total conductance
/// G_TS) from a dV supply yields
///
///     I(code) = dV * G_T G_TS / (G_T + G_TS)
///
/// which is linear in `code` only while G_T << G_TS — the compressive
/// non-linearity of paper Fig. 8b. Per-bit transistors carry sampled VT
/// mismatch, the paper's "variations in input source".

#pragma once

#include <cstdint>
#include <vector>

#include "core/random.hpp"
#include "device/mosfet.hpp"

namespace spinsim {

/// Electrical design of one DTCS DAC instance.
struct DtcsDacDesign {
  unsigned bits = 5;
  double full_scale_current = 10e-6;  ///< target I at top code into an ideal load [A]
  double delta_v = 30e-3;             ///< drain-source drop [V]
  double gate_drive = 0.53;           ///< |VGS| of an enabled device [V]
  double sigma_vt_override = -1.0;    ///< <= 0: use the Pelgrom default
  /// Channel length. Matching-driven (Kinget): at 0.5 um the MSB device's
  /// Pelgrom sigma keeps the DAC's total error near 0.15 LSB, so the
  /// "single analog step" the paper credits the DTCS with stays a
  /// fraction of the DWN threshold.
  double unit_length = 0.5e-6;

  std::uint32_t max_code() const { return (1u << bits) - 1; }

  /// Unit (LSB) conductance needed to hit full scale into an ideal load.
  double unit_conductance() const;
};

/// One DAC instance with per-bit sampled mismatch.
class DtcsDac {
 public:
  /// Mismatch-free DAC.
  explicit DtcsDac(const DtcsDacDesign& design, const Tech45& tech = Tech45::nominal());

  /// DAC with sampled per-bit VT mismatch.
  DtcsDac(const DtcsDacDesign& design, Rng& rng, const Tech45& tech = Tech45::nominal());

  const DtcsDacDesign& design() const { return design_; }

  /// Realised source conductance G_T for a digital code [S]. Table
  /// lookup: the per-bit devices are fixed at construction, so all
  /// 2^bits code conductances are precomputed once — this sits on the
  /// per-cycle WTA path and the per-row input path of every recognition.
  double conductance(std::uint32_t code) const;

  /// Output current into a load of total conductance `g_load` [A]:
  /// the series-division expression above. Pass g_load <= 0 for an ideal
  /// (infinite-conductance) load.
  double output_current(std::uint32_t code, double g_load) const;

  /// Ideal straight-line current for the code (for non-linearity plots).
  double ideal_current(std::uint32_t code) const;

  /// Integral non-linearity over all codes for the given load, as a
  /// fraction of full scale (max |I - I_ideal_fit| / I_fs). The ideal fit
  /// is the end-point line through code 0 and the top code.
  double integral_nonlinearity(double g_load) const;

 private:
  void build_code_table();

  DtcsDacDesign design_;
  std::vector<Mosfet> bit_devices_;  // index k drives 2^k units
  std::vector<double> code_conductance_;  // realised G_T per code
};

}  // namespace spinsim
