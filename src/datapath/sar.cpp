#include "datapath/sar.hpp"

namespace spinsim {

SarRegister::SarRegister(unsigned bits) : bits_(bits) {
  require(bits >= 1 && bits <= 16, "SarRegister: bits must be 1..16");
}

void SarRegister::begin() {
  bit_index_ = static_cast<int>(bits_) - 1;
  code_ = 1u << bit_index_;
  last_decided_bit_ = -1;
  last_decision_ = false;
}

bool SarRegister::feed(bool input_above_dac) {
  require(converting(), "SarRegister::feed: no conversion in progress (call begin())");
  last_decided_bit_ = bit_index_;
  last_decision_ = input_above_dac;
  if (!input_above_dac) {
    code_ &= ~(1u << bit_index_);  // clear the bit under test
  }
  --bit_index_;
  if (bit_index_ >= 0) {
    code_ |= 1u << bit_index_;  // set the next lower bit for testing
    return true;
  }
  return false;
}

}  // namespace spinsim
