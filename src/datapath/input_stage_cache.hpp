/// \file input_stage_cache.hpp
/// Shard-local input-stage dedup: a per-dispatch cache of realised input
/// row currents, shared by sibling spin shards.
///
/// Every spin shard of a RecognitionService re-evaluates its input DTCS
/// DACs for every query of a dispatched batch. When the shards share a
/// row pad target (RcmConfig::row_target_conductance), an input full
/// scale (SpinAmmConfig::input_full_scale_override) and a seed, the
/// realised per-row currents are *identical* across shards — the only
/// duplicated work left in the sharded path. This cache lets the first
/// shard to see a query compute the currents and every sibling reuse
/// them.
///
/// Correctness contract: only engines whose input stages realise the
/// same currents for the same digital codes may share one cache (the
/// RecognitionService wiring enforces identical SpinAmm shard configs by
/// construction when `dedup_input_stage` is on). The compute callback
/// runs under the cache mutex, so each distinct key is computed exactly
/// once however many shard threads race on it.

#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/sync.hpp"

namespace spinsim {

/// Mutex-protected memo of input row currents keyed on a query's digital
/// codes. The service clears it at every dispatch, so entries never
/// outlive the batch that produced them.
class InputStageCache {
 public:
  struct Stats {
    std::uint64_t lookups = 0;   ///< total lookup_or_compute calls
    std::uint64_t computes = 0;  ///< callbacks actually run
    std::uint64_t hits = 0;      ///< lookups served from the cache
  };

  /// Returns the row currents for `key` (a query's digital codes),
  /// running `compute` exactly once per distinct key between clears.
  std::vector<double> lookup_or_compute(
      const std::vector<std::uint32_t>& key,
      const std::function<std::vector<double>()>& compute);

  /// Allocation-free variant for the batch hot path: copies the `count`
  /// cached row currents into `out` instead of returning a fresh vector.
  /// On a miss, `compute(dst)` fills the cache entry in place (dst is
  /// pre-sized to `count`) and the entry is then copied out. One copy on
  /// a hit instead of the by-value return's allocate-and-copy.
  void lookup_or_compute_into(const std::vector<std::uint32_t>& key,
                              const std::function<void(double*)>& compute, double* out,
                              std::size_t count);

  /// Drops every entry (the per-dispatch reset); counters survive.
  void clear();

  Stats stats() const;

 private:
  static std::uint64_t hash_key(const std::vector<std::uint32_t>& key);

  struct Entry {
    std::vector<std::uint32_t> key;  // stored to disambiguate hash collisions
    std::vector<double> currents;
  };

  mutable Mutex mutex_{LockRank::kInputStage};
  std::unordered_map<std::uint64_t, std::vector<Entry>> entries_
      SPINSIM_GUARDED_BY(mutex_);
  Stats stats_ SPINSIM_GUARDED_BY(mutex_);
};

}  // namespace spinsim
