#include "datapath/dtcs_dac.hpp"

#include <cmath>

#include "core/error.hpp"

namespace spinsim {

double DtcsDacDesign::unit_conductance() const {
  require(bits >= 1 && bits <= 10, "DtcsDacDesign: bits must be 1..10");
  require(delta_v > 0.0 && full_scale_current > 0.0, "DtcsDacDesign: bad electrical targets");
  return full_scale_current / (delta_v * static_cast<double>(max_code()));
}

namespace {

/// Sizes the bit-k device so its triode conductance is 2^k unit
/// conductances at the design gate drive. Small conductances that would
/// need a sub-minimum width are realised with a longer channel instead
/// (the W/L ratio, not W alone, sets the conductance).
MosGeometry bit_geometry(const DtcsDacDesign& design, unsigned bit, const Tech45& tech) {
  const double g_target = design.unit_conductance() * std::ldexp(1.0, static_cast<int>(bit));
  const double vov = design.gate_drive - tech.vt_p;
  require(vov > 0.05, "DtcsDac: gate drive leaves no overdrive");
  const double ratio = g_target / (tech.kp_p * vov);  // required W/L
  MosGeometry g;
  g.type = MosType::kPmos;
  if (ratio * design.unit_length >= tech.w_min) {
    g.l = design.unit_length;
    g.w = ratio * design.unit_length;
  } else {
    g.w = tech.w_min;
    g.l = tech.w_min / ratio;
  }
  return g;
}

}  // namespace

DtcsDac::DtcsDac(const DtcsDacDesign& design, const Tech45& tech) : design_(design) {
  for (unsigned k = 0; k < design.bits; ++k) {
    bit_devices_.emplace_back(bit_geometry(design, k, tech), tech);
  }
  build_code_table();
}

DtcsDac::DtcsDac(const DtcsDacDesign& design, Rng& rng, const Tech45& tech) : design_(design) {
  for (unsigned k = 0; k < design.bits; ++k) {
    bit_devices_.emplace_back(bit_geometry(design, k, tech), rng, tech,
                              design.sigma_vt_override);
  }
  build_code_table();
}

void DtcsDac::build_code_table() {
  // Realised per-bit conductances are frozen once the devices exist, so
  // every code's G_T is a sum known now. code k+1 reuses code k's prefix
  // via the binary decomposition: g(code) = sum of set bits.
  code_conductance_.assign(design_.max_code() + 1u, 0.0);
  for (std::uint32_t code = 1; code <= design_.max_code(); ++code) {
    double g = 0.0;
    for (unsigned k = 0; k < design_.bits; ++k) {
      if ((code >> k) & 1u) {
        g += bit_devices_[k].triode_conductance(design_.gate_drive);
      }
    }
    code_conductance_[code] = g;
  }
}

double DtcsDac::conductance(std::uint32_t code) const {
  require(code <= design_.max_code(), "DtcsDac::conductance: code out of range");
  return code_conductance_[code];
}

double DtcsDac::output_current(std::uint32_t code, double g_load) const {
  const double g_t = conductance(code);
  if (g_t == 0.0) {
    return 0.0;
  }
  if (g_load <= 0.0) {
    return design_.delta_v * g_t;  // ideal load
  }
  return design_.delta_v * g_t * g_load / (g_t + g_load);
}

double DtcsDac::ideal_current(std::uint32_t code) const {
  require(code <= design_.max_code(), "DtcsDac::ideal_current: code out of range");
  return design_.full_scale_current * static_cast<double>(code) /
         static_cast<double>(design_.max_code());
}

double DtcsDac::integral_nonlinearity(double g_load) const {
  const std::uint32_t top = design_.max_code();
  const double i_zero = output_current(0, g_load);
  const double i_top = output_current(top, g_load);
  const double span = i_top - i_zero;
  if (span <= 0.0) {
    return 0.0;
  }
  double worst = 0.0;
  for (std::uint32_t code = 0; code <= top; ++code) {
    const double fit = i_zero + span * static_cast<double>(code) / static_cast<double>(top);
    worst = std::max(worst, std::abs(output_current(code, g_load) - fit));
  }
  return worst / span;
}

}  // namespace spinsim
