#include "datapath/input_stage_cache.hpp"

#include <algorithm>

namespace spinsim {

std::uint64_t InputStageCache::hash_key(const std::vector<std::uint32_t>& key) {
  // FNV-1a over the digital codes.
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::uint32_t code : key) {
    h ^= code;
    h *= 1099511628211ULL;
  }
  return h;
}

std::vector<double> InputStageCache::lookup_or_compute(
    const std::vector<std::uint32_t>& key,
    const std::function<std::vector<double>()>& compute) {
  const std::uint64_t h = hash_key(key);
  LockGuard lock(mutex_);
  ++stats_.lookups;
  auto& bucket = entries_[h];
  for (const Entry& entry : bucket) {
    if (entry.key == key) {
      ++stats_.hits;
      return entry.currents;
    }
  }
  // Computing under the mutex serialises sibling shards for the duration
  // of one DAC evaluation — the point: the work happens once, and the
  // expensive crossbar solve downstream still runs fully parallel.
  ++stats_.computes;
  Entry entry;
  entry.key = key;
  entry.currents = compute();
  bucket.push_back(std::move(entry));
  return bucket.back().currents;
}

void InputStageCache::lookup_or_compute_into(const std::vector<std::uint32_t>& key,
                                             const std::function<void(double*)>& compute,
                                             double* out, std::size_t count) {
  const std::uint64_t h = hash_key(key);
  LockGuard lock(mutex_);
  ++stats_.lookups;
  auto& bucket = entries_[h];
  for (const Entry& entry : bucket) {
    if (entry.key == key) {
      ++stats_.hits;
      std::copy(entry.currents.begin(), entry.currents.end(), out);
      return;
    }
  }
  ++stats_.computes;
  Entry entry;
  entry.key = key;
  entry.currents.resize(count);
  compute(entry.currents.data());
  bucket.push_back(std::move(entry));
  std::copy(bucket.back().currents.begin(), bucket.back().currents.end(), out);
}

void InputStageCache::clear() {
  LockGuard lock(mutex_);
  entries_.clear();
}

InputStageCache::Stats InputStageCache::stats() const {
  LockGuard lock(mutex_);
  return stats_;
}

}  // namespace spinsim
