#include "datapath/read_latch.hpp"

#include <cmath>

#include "core/error.hpp"

namespace spinsim {

ReadLatch::ReadLatch(const ReadLatchDesign& design) : design_(design) {
  require(design.sense_cap > 0.0 && design.sense_time > 0.0, "ReadLatch: bad design");
}

ReadLatch::ReadLatch(const ReadLatchDesign& design, Rng& rng) : ReadLatch(design) {
  offset_ = rng.normal(0.0, design.offset_sigma);
}

bool ReadLatch::decide(double r_mtj, double r_reference) const {
  require(r_mtj > 0.0 && r_reference > 0.0, "ReadLatch::decide: resistances must be positive");
  // The offset shifts the effective comparison point, the dominant
  // non-ideality of a dynamic latch.
  return r_mtj < r_reference * (1.0 + offset_);
}

LatchTransient ReadLatch::simulate(double r_mtj, double r_reference, const Tech45& tech) const {
  require(r_mtj > 0.0 && r_reference > 0.0, "ReadLatch::simulate: resistances must be positive");

  // Discharge phase only: each branch is a precharged sense cap
  // discharging to ground through its MTJ. Node 1 = DWN branch,
  // node 2 = reference branch.
  Netlist net;
  const NodeId n_dwn = net.add_node("sense_dwn");
  const NodeId n_ref = net.add_node("sense_ref");
  net.add_capacitor(n_dwn, kGround, design_.sense_cap, tech.vdd, "C_dwn");
  net.add_capacitor(n_ref, kGround, design_.sense_cap, tech.vdd, "C_ref");
  net.add_resistor(n_dwn, kGround, r_mtj * (1.0 + offset_), "R_mtj");
  net.add_resistor(n_ref, kGround, r_reference, "R_ref");

  const double dt = design_.sense_time / 200.0;
  TransientSimulator sim(std::move(net), dt);
  LatchTransient out;
  out.trace = sim.run(design_.sense_time);

  const std::size_t last = out.trace.steps() - 1;
  const double v_dwn = out.trace.at(last, n_dwn);
  const double v_ref = out.trace.at(last, n_ref);
  // Lower branch voltage = faster discharge = smaller resistance.
  out.decided_parallel = v_dwn < v_ref;
  out.branch_separation = std::abs(v_dwn - v_ref);
  return out;
}

}  // namespace spinsim
