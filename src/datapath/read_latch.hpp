/// \file read_latch.hpp
/// Dynamic CMOS latch that senses the DWN's MTJ state (paper Fig. 7b).
///
/// Both load branches are precharged to VDD and then discharged, one
/// through the DWN MTJ and one through a reference MTJ whose resistance
/// sits midway between R_parallel and R_antiparallel. The branch with the
/// smaller resistance discharges faster; the cross-coupled pair
/// regenerates the difference to full swing. Because the read current is
/// a short transient, it does not disturb the DWN state.
///
/// Two models are provided:
///  * a behavioral decision (`decide`) with an input-referred offset
///    sampled at construction, used inside the WTA loop, and
///  * a transient-circuit simulation (`simulate`) built on the RC engine,
///    used by integration tests to validate the behavioral model.

#pragma once

#include "circuit/transient.hpp"
#include "core/random.hpp"
#include "core/units.hpp"
#include "device/tech45.hpp"

namespace spinsim {

/// Electrical design of the read latch.
struct ReadLatchDesign {
  double sense_cap = 2e-15;      ///< per-branch sense capacitance [F]
  double offset_sigma = 0.01;    ///< relative resistance offset spread
  double sense_time = 200e-12;   ///< discharge window before regeneration [s]

  /// Energy of one decision: both branches swing VDD.
  Energy decision_energy(const Tech45& tech = Tech45::nominal()) const {
    return (2.0 * sense_cap * tech.vdd * tech.vdd) * units::J;
  }
};

/// Result of a circuit-level latch simulation.
struct LatchTransient {
  bool decided_parallel = false;  ///< true if the DWN branch discharged faster
  double branch_separation = 0.0; ///< |v_dwn - v_ref| at the sense instant [V]
  TransientTrace trace;           ///< full waveform (nodes: see read_latch.cpp)
};

/// One latch instance with sampled offset.
class ReadLatch {
 public:
  explicit ReadLatch(const ReadLatchDesign& design);
  ReadLatch(const ReadLatchDesign& design, Rng& rng);

  const ReadLatchDesign& design() const { return design_; }

  /// Behavioral decision: true when `r_mtj` reads below the reference
  /// (i.e. the MTJ is in the parallel state), with the sampled offset
  /// applied. This is what the SAR loop consumes each cycle.
  bool decide(double r_mtj, double r_reference) const;

  /// Circuit-level RC simulation of the two discharge branches.
  LatchTransient simulate(double r_mtj, double r_reference,
                          const Tech45& tech = Tech45::nominal()) const;

 private:
  ReadLatchDesign design_;
  double offset_ = 0.0;  // relative resistance offset
};

}  // namespace spinsim
