/// \file sar.hpp
/// Successive-approximation register (paper Fig. 10, first half).
///
/// Standard SAR control: start at mid-scale (MSB set), and on each cycle
/// keep or clear the bit under test depending on the comparator verdict,
/// then set the next lower bit. After `bits` cycles the register holds
/// the digitised input.

#pragma once

#include <cstdint>

#include "core/error.hpp"

namespace spinsim {

/// One SAR instance.
class SarRegister {
 public:
  explicit SarRegister(unsigned bits);

  unsigned bits() const { return bits_; }

  /// Restarts a conversion: code = MSB only, bit under test = MSB.
  void begin();

  /// True while a conversion is in progress.
  bool converting() const { return bit_index_ >= 0; }

  /// Code currently driving the DAC.
  std::uint32_t code() const { return code_; }

  /// Index of the bit decided in the *previous* feed() call (MSB =
  /// bits-1); used by the winner-tracking logic. Valid after first feed.
  int last_decided_bit() const { return last_decided_bit_; }

  /// Value the last feed() assigned to that bit.
  bool last_decision() const { return last_decision_; }

  /// Applies one comparator verdict: `input_above_dac` = true keeps the
  /// bit under test. Returns true if the conversion continues.
  bool feed(bool input_above_dac);

  /// Digitised result; only meaningful once converting() is false.
  std::uint32_t result() const { return code_; }

 private:
  unsigned bits_;
  std::uint32_t code_ = 0;
  int bit_index_ = -1;         // bit currently under test; -1 = idle
  int last_decided_bit_ = -1;
  bool last_decision_ = false;
};

}  // namespace spinsim
