#include "wta/ideal_wta.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "core/matrix.hpp"

namespace spinsim {

IdealWtaResult ideal_wta(const std::vector<double>& currents, unsigned bits, double full_scale) {
  require(!currents.empty(), "ideal_wta: no inputs");
  require(bits >= 1 && bits <= 16, "ideal_wta: bits must be 1..16");
  require(full_scale > 0.0, "ideal_wta: full scale must be positive");

  const double lsb = full_scale / std::ldexp(1.0, static_cast<int>(bits));
  const std::uint32_t top = (1u << bits) - 1;

  IdealWtaResult out;
  out.codes.reserve(currents.size());
  for (double i : currents) {
    const double clamped = std::clamp(i, 0.0, full_scale);
    out.codes.push_back(std::min<std::uint32_t>(
        static_cast<std::uint32_t>(clamped / lsb), top));
  }
  out.winner = static_cast<std::size_t>(
      std::max_element(out.codes.begin(), out.codes.end()) - out.codes.begin());
  out.winner_code = out.codes[out.winner];
  out.unique =
      std::count(out.codes.begin(), out.codes.end(), out.winner_code) == 1;
  return out;
}

std::size_t exact_winner(const std::vector<double>& currents) { return argmax(currents); }

}  // namespace spinsim
