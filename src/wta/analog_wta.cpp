#include "wta/analog_wta.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace spinsim {

AnalogBtWta::AnalogBtWta(const AnalogWtaConfig& config) : config_(config) {
  require(config.inputs >= 2, "AnalogBtWta: need at least two inputs");
  require(config.stage_rel_sigma >= 0.0, "AnalogBtWta: sigma must be non-negative");

  padded_size_ = 1;
  while (padded_size_ < config.inputs) {
    padded_size_ <<= 1;
  }

  Rng rng(config.seed);
  std::size_t level_size = padded_size_;
  while (level_size >= 1) {
    std::vector<double> level(level_size);
    for (auto& g : level) {
      g = 1.0 + rng.normal(0.0, config.stage_rel_sigma);
    }
    gains_.push_back(std::move(level));
    if (level_size == 1) {
      break;
    }
    level_size >>= 1;
  }
}

AnalogWtaResult AnalogBtWta::select(const std::vector<double>& currents) const {
  require(currents.size() == config_.inputs, "AnalogBtWta::select: input count mismatch");

  // Leaf level: input mirrors copy each current once.
  std::vector<double> value(padded_size_, 0.0);
  std::vector<std::size_t> index(padded_size_);
  for (std::size_t i = 0; i < padded_size_; ++i) {
    index[i] = i < currents.size() ? i : 0;
    value[i] = i < currents.size() ? currents[i] * gains_[0][i] : 0.0;
  }

  // Tournament: each stage propagates the larger (corrupted) current.
  std::size_t level = 1;
  std::size_t width = padded_size_ >> 1;
  while (width >= 1) {
    for (std::size_t k = 0; k < width; ++k) {
      const std::size_t a = 2 * k;
      const std::size_t b = 2 * k + 1;
      const bool a_wins = value[a] >= value[b];
      const std::size_t src = a_wins ? a : b;
      value[k] = value[src] * gains_[level][k];
      index[k] = index[src];
    }
    if (width == 1) {
      break;
    }
    width >>= 1;
    ++level;
  }

  AnalogWtaResult out;
  out.winner = index[0];
  out.winning_current = value[0];
  return out;
}

AnalogCcWta::AnalogCcWta(const AnalogWtaConfig& config) : config_(config) {
  require(config.inputs >= 2, "AnalogCcWta: need at least two inputs");
  require(config.stage_rel_sigma >= 0.0, "AnalogCcWta: sigma must be non-negative");
  Rng rng(config.seed);
  cell_gain_.reserve(config.inputs);
  for (std::size_t i = 0; i < config.inputs; ++i) {
    cell_gain_.push_back(1.0 + rng.normal(0.0, config.stage_rel_sigma));
  }
}

double AnalogCcWta::discrimination_floor() const {
  // The shared line's loop gain divides among the competing cells, so
  // the margin needed to fully steer the bias grows with fan-in.
  return config_.stage_rel_sigma *
         std::sqrt(std::log2(static_cast<double>(config_.inputs)));
}

AnalogWtaResult AnalogCcWta::select(const std::vector<double>& currents) const {
  require(currents.size() == config_.inputs, "AnalogCcWta::select: input count mismatch");
  AnalogWtaResult out;
  double best = -1.0;
  for (std::size_t i = 0; i < currents.size(); ++i) {
    const double seen = currents[i] * cell_gain_[i];
    if (seen > best) {
      best = seen;
      out.winner = i;
    }
  }
  out.winning_current = best;
  return out;
}

double AnalogBtWta::effective_resolution_bits() const {
  // A margin m (relative to the signal) survives the tree when it exceeds
  // the worst accumulated path gain error. Estimate that error from the
  // sampled gains: for each leaf, multiply the gains along its path to
  // the root, and take the worst-case spread between any two leaves.
  std::vector<double> path_gain(padded_size_, 1.0);
  for (std::size_t leaf = 0; leaf < padded_size_; ++leaf) {
    std::size_t pos = leaf;
    for (std::size_t level = 0; level < gains_.size(); ++level) {
      path_gain[leaf] *= gains_[level][pos];
      pos >>= 1;
    }
  }
  const auto [lo, hi] = std::minmax_element(path_gain.begin(), path_gain.end());
  const double spread = (*hi - *lo) / *hi;
  if (spread <= 0.0) {
    return 16.0;
  }
  return std::min(16.0, -std::log2(spread));
}

}  // namespace spinsim
