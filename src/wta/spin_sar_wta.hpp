/// \file spin_sar_wta.hpp
/// The paper's contribution: spin-CMOS hybrid WTA (Figs. 10-12).
///
/// Each crossbar column owns a *processing element* (PE): a DWN current
/// comparator, a DTCS SAR-DAC, a dynamic read latch and a SAR register.
/// All PEs digitise their column current in parallel (M cycles), while a
/// fully digital winner-tracking network runs alongside:
///
///   The tracking registers TR(j) are preset high. Every cycle the
///   detection line DL is precharged; any column whose TR is high *and*
///   whose new bit resolved to 1 pulls DL low through its discharge
///   register DR. If DL fell, all TRs are rewritten to TR(j) & bit(j);
///   if nobody pulled, the TRs are left untouched (all survivors had a
///   0 in this bit). With at least one MSB = 1 this reduces exactly to
///   the paper's Fig. 12 sequence; presetting high also keeps the search
///   alive when every column's MSB is 0 (inputs below half scale), which
///   the paper's sizing rule normally prevents but a library must handle.
///
/// After M cycles exactly the columns holding the maximum code keep
/// TR = 1; a unique survivor is the winner and its SAR code is the degree
/// of match (DOM). The logic is static-power-free and scales with column
/// count — the heart of the paper's energy claim.

#pragma once

#include <cstdint>
#include <vector>

#include "core/random.hpp"
#include "datapath/dtcs_dac.hpp"
#include "datapath/read_latch.hpp"
#include "datapath/sar.hpp"
#include "device/dwn.hpp"

namespace spinsim {

/// Configuration of the spin WTA bank.
struct SpinWtaConfig {
  std::size_t columns = 40;
  unsigned bits = 5;
  DwnParams dwn;                   ///< spin-neuron parameters
  ReadLatchDesign latch;           ///< read-latch parameters
  double delta_v = 30e-3;          ///< SAR-DAC terminal drop [V]
  double cycle_time = 10e-9;       ///< conversion clock period [s]
  bool thermal_noise = false;      ///< sample DWN thermal flips
  bool sample_mismatch = true;     ///< sample DAC/latch mismatch
  /// Seeds both the construction-time mismatch sampling and the
  /// counter-based per-query thermal streams (see run_query()).
  std::uint64_t seed = 99;

  /// Full-scale column current 2^M * I_th [A].
  double full_scale_current() const;
};

/// Outcome of one winner search.
struct SpinWtaOutcome {
  std::size_t winner = 0;                 ///< surviving column (first if tied)
  bool unique = true;                     ///< exactly one survivor
  std::uint32_t winner_dom = 0;           ///< winner's degree of match
  std::vector<std::uint32_t> dom_codes;   ///< all SAR results
  std::vector<bool> tracking;             ///< final TR values
  std::size_t cycles = 0;

  // Activity counters for the energy model.
  std::size_t latch_decisions = 0;
  std::size_t dl_discharges = 0;
  std::size_t tr_writes = 0;
};

/// A bank of spin PEs plus the tracking network.
///
/// Thermal noise is drawn from a *counter-based* stream: each query slot
/// `q` owns an independent substream keyed on (seed, q), so the outcome
/// of slot q is a pure function of (configuration, currents, q) — not of
/// how many other queries ran before it on which thread. That is what
/// lets run_batch() fan the stateful WTA search out across threads while
/// staying bit-identical to a sequential loop of run() calls.
class SpinSarWta {
 public:
  explicit SpinSarWta(const SpinWtaConfig& config);

  const SpinWtaConfig& config() const { return config_; }

  /// Runs a full M-cycle winner search over static column currents,
  /// consuming the next query slot of the noise stream.
  SpinWtaOutcome run(const std::vector<double>& column_currents);

  /// Winner search for an explicit query slot. Const and thread-safe:
  /// the mutable PE state (neurons, SAR registers) lives on the caller's
  /// stack, and thermal draws come from the slot's own substream.
  SpinWtaOutcome run_query(const std::vector<double>& column_currents,
                           std::uint64_t query_index) const;

  /// Same winner search over a raw column-current slice
  /// (`column_currents[0 .. columns)`) — the zero-copy entry the GEMM'd
  /// batch path uses. Const and thread-safe; per-query mutable state is
  /// reused from thread-local scratch, so the hot path pays no heap
  /// allocation per query.
  SpinWtaOutcome run_query_span(const double* column_currents, std::uint64_t query_index) const;

  /// Reserves `count` consecutive query slots of the noise stream and
  /// returns the first. A caller orchestrating its own fan-out (fused
  /// GEMM + WTA chunks) consumes exactly the slots a sequential
  /// run()/run_batch() sequence would, keeping outcomes bit-identical.
  std::uint64_t reserve_query_slots(std::uint64_t count) {
    const std::uint64_t base = query_counter_;
    query_counter_ += count;
    return base;
  }

  /// Batched winner search over `batch.size()` query slots, dispatched
  /// across `threads` workers (0 = hardware concurrency). outcome[i] is
  /// bit-identical to what run() would have returned for batch[i] in a
  /// sequential loop.
  std::vector<SpinWtaOutcome> run_batch(const std::vector<std::vector<double>>& batch,
                                        std::size_t threads = 0);

  /// Query slots consumed so far (the counter behind run()/run_batch()).
  std::uint64_t queries_issued() const { return query_counter_; }

  /// The per-column SAR DAC (exposed for calibration/ablation studies).
  const DtcsDac& dac(std::size_t column) const;

 private:
  SpinWtaConfig config_;
  Rng rng_;  // construction-time mismatch sampling only
  std::vector<DtcsDac> dacs_;
  std::vector<ReadLatch> latches_;
  double r_reference_;
  std::uint64_t query_counter_ = 0;

  // Precomputed per-column latch verdicts for the two possible DWN read
  // states. With thermal noise off, a cycle's analog step is a pure
  // function of the net current (the neuron is reset each cycle and the
  // MTJ has exactly two resistances), so the noiseless fast path replays
  // decide() from these tables instead of constructing a neuron bank per
  // query. 0/1 in unsigned char (vector<bool> is bit-packed and slower).
  std::vector<unsigned char> latch_above_one_;
  std::vector<unsigned char> latch_above_zero_;
};

}  // namespace spinsim
