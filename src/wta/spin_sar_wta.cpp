#include "wta/spin_sar_wta.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "core/parallel.hpp"

namespace spinsim {

namespace {

/// Expands (seed, query index) into an independent thermal substream.
/// splitmix-style finalizer so adjacent indices land far apart; the Rng
/// constructor scrambles further through its own splitmix expansion.
Rng query_stream(std::uint64_t seed, std::uint64_t query_index) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (query_index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return Rng(z ^ (z >> 31));
}

}  // namespace

double SpinWtaConfig::full_scale_current() const {
  return std::ldexp(dwn.i_threshold, static_cast<int>(bits));
}

SpinSarWta::SpinSarWta(const SpinWtaConfig& config)
    : config_(config), rng_(config.seed), r_reference_(config.dwn.mtj.reference_resistance()) {
  require(config.columns >= 1, "SpinSarWta: need at least one column");
  require(config.bits >= 1 && config.bits <= 10, "SpinSarWta: bits must be 1..10");
  require(config.cycle_time > 0.0, "SpinSarWta: cycle time must be positive");

  DtcsDacDesign dac_design;
  dac_design.bits = config.bits;
  // Top code = (2^M - 1) * I_th so every DAC level lands on an integer
  // multiple of the DWN threshold: the comparator then quantises the
  // column current with LSB = I_th, as the paper's sizing rule requires
  // ("max dot product > 32 uA for 5-bit resolution at I_th = 1 uA").
  dac_design.full_scale_current =
      config.dwn.i_threshold * (std::ldexp(1.0, static_cast<int>(config.bits)) - 1.0);
  dac_design.delta_v = config.delta_v;

  dacs_.reserve(config.columns);
  latches_.reserve(config.columns);
  for (std::size_t j = 0; j < config.columns; ++j) {
    if (config.sample_mismatch) {
      dacs_.emplace_back(dac_design, rng_);
      latches_.emplace_back(config.latch, rng_);
    } else {
      dacs_.emplace_back(dac_design);
      latches_.emplace_back(config.latch);
    }
  }

  // The DWN carries no sampled mismatch, so one probe device yields the
  // two MTJ read resistances every column's neuron can present; the
  // per-column spread lives entirely in the latch offsets sampled above.
  DomainWallNeuron probe(config.dwn);
  probe.reset(true);
  const double r_one = probe.mtj_resistance();
  probe.reset(false);
  const double r_zero = probe.mtj_resistance();
  latch_above_one_.reserve(config.columns);
  latch_above_zero_.reserve(config.columns);
  for (std::size_t j = 0; j < config.columns; ++j) {
    latch_above_one_.push_back(latches_[j].decide(r_one, r_reference_) ? 1 : 0);
    latch_above_zero_.push_back(latches_[j].decide(r_zero, r_reference_) ? 1 : 0);
  }
}

const DtcsDac& SpinSarWta::dac(std::size_t column) const {
  require(column < dacs_.size(), "SpinSarWta::dac: column out of range");
  return dacs_[column];
}

SpinWtaOutcome SpinSarWta::run(const std::vector<double>& column_currents) {
  return run_query(column_currents, query_counter_++);
}

SpinWtaOutcome SpinSarWta::run_query(const std::vector<double>& column_currents,
                                     std::uint64_t query_index) const {
  require(column_currents.size() == config_.columns,
          "SpinSarWta::run: need one current per column");
  return run_query_span(column_currents.data(), query_index);
}

SpinWtaOutcome SpinSarWta::run_query_span(const double* column_currents,
                                          std::uint64_t query_index) const {
  const std::size_t n = config_.columns;
  SpinWtaOutcome out;
  out.tracking.assign(n, true);  // TRs preset high (see header)
  out.dom_codes.assign(n, 0);

  // Mutable PE state is per-query; the SAR registers and bit latches are
  // reused from thread-local scratch so the batch hot path pays no heap
  // allocation per query (each worker thread owns its own copies).
  thread_local std::vector<SarRegister> sars;
  thread_local std::vector<unsigned char> bit_decision;
  sars.assign(n, SarRegister(config_.bits));
  for (auto& sar : sars) {
    sar.begin();
  }
  bit_decision.assign(n, 0);

  Rng thermal_rng = query_stream(config_.seed, query_index);
  Rng* thermal = config_.thermal_noise ? &thermal_rng : nullptr;

  // Neuron objects are only needed when thermal flips are sampled: the
  // noiseless step is replayed from the precomputed latch tables. The
  // neurons carry no sampled mismatch (their spread enters through the
  // latch offsets), so fresh copies are exact, and the SARs restart
  // every conversion anyway.
  std::vector<DomainWallNeuron> neurons;
  if (thermal != nullptr) {
    neurons.assign(n, DomainWallNeuron(config_.dwn));
  }
  const double i_threshold = config_.dwn.i_threshold;

  for (unsigned cycle = 0; cycle < config_.bits; ++cycle) {
    // --- analog compare + digitise step (all PEs in parallel) ---
    if (thermal == nullptr) {
      for (std::size_t j = 0; j < n; ++j) {
        const double i_dac = dacs_[j].output_current(sars[j].code(), /*g_load=*/0.0);
        const double i_net = column_currents[j] - i_dac;
        // Replays reset(false) + apply_current(i_net, cycle_time): from
        // state 0 the neuron ends at 1 iff the drive points toward 1,
        // exceeds I_th, and completes the wall transit within the cycle.
        bool state = false;
        if (i_net > 0.0 && std::abs(i_net) > i_threshold) {
          state = config_.cycle_time / config_.dwn.switching_delay(std::abs(i_net)) >= 1.0;
        }
        const bool above = (state ? latch_above_one_[j] : latch_above_zero_[j]) != 0;
        ++out.latch_decisions;

        bit_decision[j] = above ? 1 : 0;
        sars[j].feed(above);
      }
    } else {
      for (std::size_t j = 0; j < n; ++j) {
        // The DWN is preset to 0 each cycle; the net current (column minus
        // SAR-DAC sink) must exceed +I_th to write a 1.
        neurons[j].reset(false);
        const double i_dac = dacs_[j].output_current(sars[j].code(), /*g_load=*/0.0);
        const double i_net = column_currents[j] - i_dac;
        neurons[j].apply_current(i_net, config_.cycle_time, thermal);

        // Latch senses the DWN MTJ against the reference junction.
        const bool above = latches_[j].decide(neurons[j].mtj_resistance(), r_reference_);
        ++out.latch_decisions;

        bit_decision[j] = above ? 1 : 0;
        sars[j].feed(above);
      }
    }

    // --- digital winner tracking (Fig. 12) ---
    // DL precharged; DR(j) = TR(j) & bit(j) can pull it low.
    bool dl_discharged = false;
    for (std::size_t j = 0; j < n; ++j) {
      if (out.tracking[j] && bit_decision[j]) {
        dl_discharged = true;
        break;
      }
    }
    if (dl_discharged) {
      ++out.dl_discharges;
      for (std::size_t j = 0; j < n; ++j) {
        const bool next = out.tracking[j] && bit_decision[j];
        if (next != out.tracking[j]) {
          ++out.tr_writes;
        }
        out.tracking[j] = next;
      }
    }
    // If nobody pulled DL, every surviving column had a 0 in this bit:
    // the TRs stay as they are.
    ++out.cycles;
  }

  // Collect SAR results and the survivor.
  std::size_t survivor_count = 0;
  for (std::size_t j = 0; j < n; ++j) {
    out.dom_codes[j] = sars[j].result();
    if (out.tracking[j]) {
      if (survivor_count == 0) {
        out.winner = j;
      }
      ++survivor_count;
    }
  }
  out.unique = survivor_count == 1;
  if (survivor_count == 0) {
    // All-zero MSBs and no later discharge: fall back to the largest DOM.
    std::uint32_t best = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (out.dom_codes[j] > best) {
        best = out.dom_codes[j];
        out.winner = j;
      }
    }
    out.unique = false;
  }
  out.winner_dom = out.dom_codes[out.winner];
  return out;
}

std::vector<SpinWtaOutcome> SpinSarWta::run_batch(const std::vector<std::vector<double>>& batch,
                                                  std::size_t threads) {
  // Validate before fanning out: a require() thrown on a worker thread
  // would terminate instead of propagating.
  for (const auto& currents : batch) {
    require(currents.size() == config_.columns,
            "SpinSarWta::run_batch: need one current per column");
  }
  std::vector<SpinWtaOutcome> outcomes(batch.size());
  if (batch.empty()) {
    return outcomes;
  }
  const std::uint64_t base = query_counter_;
  query_counter_ += batch.size();

  parallel_for_strided(batch.size(), threads,
                       [&](std::size_t i) { outcomes[i] = run_query(batch[i], base + i); });
  return outcomes;
}

}  // namespace spinsim
