#include "wta/spin_sar_wta.hpp"

#include <cmath>

#include "core/error.hpp"

namespace spinsim {

double SpinWtaConfig::full_scale_current() const {
  return std::ldexp(dwn.i_threshold, static_cast<int>(bits));
}

SpinSarWta::SpinSarWta(const SpinWtaConfig& config)
    : config_(config), rng_(config.seed), r_reference_(config.dwn.mtj.reference_resistance()) {
  require(config.columns >= 1, "SpinSarWta: need at least one column");
  require(config.bits >= 1 && config.bits <= 10, "SpinSarWta: bits must be 1..10");
  require(config.cycle_time > 0.0, "SpinSarWta: cycle time must be positive");

  DtcsDacDesign dac_design;
  dac_design.bits = config.bits;
  // Top code = (2^M - 1) * I_th so every DAC level lands on an integer
  // multiple of the DWN threshold: the comparator then quantises the
  // column current with LSB = I_th, as the paper's sizing rule requires
  // ("max dot product > 32 uA for 5-bit resolution at I_th = 1 uA").
  dac_design.full_scale_current =
      config.dwn.i_threshold * (std::ldexp(1.0, static_cast<int>(config.bits)) - 1.0);
  dac_design.delta_v = config.delta_v;

  neurons_.reserve(config.columns);
  dacs_.reserve(config.columns);
  latches_.reserve(config.columns);
  sars_.reserve(config.columns);
  for (std::size_t j = 0; j < config.columns; ++j) {
    neurons_.emplace_back(config.dwn);
    if (config.sample_mismatch) {
      dacs_.emplace_back(dac_design, rng_);
      latches_.emplace_back(config.latch, rng_);
    } else {
      dacs_.emplace_back(dac_design);
      latches_.emplace_back(config.latch);
    }
    sars_.emplace_back(config.bits);
  }
}

const DtcsDac& SpinSarWta::dac(std::size_t column) const {
  require(column < dacs_.size(), "SpinSarWta::dac: column out of range");
  return dacs_[column];
}

SpinWtaOutcome SpinSarWta::run(const std::vector<double>& column_currents) {
  require(column_currents.size() == config_.columns,
          "SpinSarWta::run: need one current per column");

  const std::size_t n = config_.columns;
  SpinWtaOutcome out;
  out.tracking.assign(n, true);  // TRs preset high (see header)
  out.dom_codes.assign(n, 0);

  for (auto& sar : sars_) {
    sar.begin();
  }

  std::vector<bool> bit_decision(n, false);
  Rng* thermal = config_.thermal_noise ? &rng_ : nullptr;

  for (unsigned cycle = 0; cycle < config_.bits; ++cycle) {
    // --- analog compare + digitise step (all PEs in parallel) ---
    for (std::size_t j = 0; j < n; ++j) {
      // The DWN is preset to 0 each cycle; the net current (column minus
      // SAR-DAC sink) must exceed +I_th to write a 1.
      neurons_[j].reset(false);
      const double i_dac = dacs_[j].output_current(sars_[j].code(), /*g_load=*/0.0);
      const double i_net = column_currents[j] - i_dac;
      neurons_[j].apply_current(i_net, config_.cycle_time, thermal);

      // Latch senses the DWN MTJ against the reference junction.
      const bool above = latches_[j].decide(neurons_[j].mtj_resistance(), r_reference_);
      ++out.latch_decisions;

      bit_decision[j] = above;
      sars_[j].feed(above);
    }

    // --- digital winner tracking (Fig. 12) ---
    // DL precharged; DR(j) = TR(j) & bit(j) can pull it low.
    bool dl_discharged = false;
    for (std::size_t j = 0; j < n; ++j) {
      if (out.tracking[j] && bit_decision[j]) {
        dl_discharged = true;
        break;
      }
    }
    if (dl_discharged) {
      ++out.dl_discharges;
      for (std::size_t j = 0; j < n; ++j) {
        const bool next = out.tracking[j] && bit_decision[j];
        if (next != out.tracking[j]) {
          ++out.tr_writes;
        }
        out.tracking[j] = next;
      }
    }
    // If nobody pulled DL, every surviving column had a 0 in this bit:
    // the TRs stay as they are.
    ++out.cycles;
  }

  // Collect SAR results and the survivor.
  std::size_t survivor_count = 0;
  for (std::size_t j = 0; j < n; ++j) {
    out.dom_codes[j] = sars_[j].result();
    if (out.tracking[j]) {
      if (survivor_count == 0) {
        out.winner = j;
      }
      ++survivor_count;
    }
  }
  out.unique = survivor_count == 1;
  if (survivor_count == 0) {
    // All-zero MSBs and no later discharge: fall back to the largest DOM.
    std::uint32_t best = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (out.dom_codes[j] > best) {
        best = out.dom_codes[j];
        out.winner = j;
      }
    }
    out.unique = false;
  }
  out.winner_dom = out.dom_codes[out.winner];
  return out;
}

}  // namespace spinsim
