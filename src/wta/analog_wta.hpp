/// \file analog_wta.hpp
/// Functional model of the mixed-signal CMOS binary-tree WTA baselines.
///
/// A binary tree of 2-input current comparison stages: each stage copies
/// its inputs through current mirrors (incurring a sampled relative gain
/// error), picks the larger, and propagates the *corrupted* winning
/// current upward (paper Fig. 4, refs [17],[18]). Mismatch therefore
/// accumulates along the propagation path — the mechanism that limits
/// MS-CMOS resolution in Section 2 and Fig. 13b. Mismatch is sampled once
/// at construction (it is a static property of the die).

#pragma once

#include <cstdint>
#include <vector>

#include "core/random.hpp"

namespace spinsim {

/// Configuration of one analog WTA instance.
struct AnalogWtaConfig {
  std::size_t inputs = 40;
  double stage_rel_sigma = 0.005;  ///< per-mirror relative gain error (sigma)
  std::uint64_t seed = 7;
};

/// Result of an analog winner search.
struct AnalogWtaResult {
  std::size_t winner = 0;
  double winning_current = 0.0;  ///< corrupted current seen at the root
};

/// One sampled-die instance of the binary-tree WTA.
class AnalogBtWta {
 public:
  explicit AnalogBtWta(const AnalogWtaConfig& config);

  const AnalogWtaConfig& config() const { return config_; }

  /// Selects the winner of `currents` through the mismatched tree.
  AnalogWtaResult select(const std::vector<double>& currents) const;

  /// Effective resolution of this die in bits: the largest M such that a
  /// full-scale-relative margin of 2^-M is still resolved for all input
  /// pairs, estimated from the sampled path errors.
  double effective_resolution_bits() const;

 private:
  AnalogWtaConfig config_;
  // gain_[level][k] is the mirror gain applied to the k-th propagated
  // current at that tree level.
  std::vector<std::vector<double>> gains_;
  std::size_t padded_size_;
};

/// The paper's *other* analog WTA category (Section 2): the
/// current-conveyor WTA (Lazzaro-style). All cells share one common
/// line; each cell's input transistor competes for the shared bias, and
/// the cell with the largest input current wins. Mismatch enters once
/// per cell (no tree accumulation), but the shared-line competition has
/// poorer discrimination for large fan-in: the common-line gain divides
/// among cells, so the usable resolution degrades ~log2(N) faster than a
/// per-pair comparison. Modelled as a single sampled offset per cell
/// plus a fan-in-dependent discrimination floor below which near-ties
/// resolve by the sampled offsets alone.
class AnalogCcWta {
 public:
  explicit AnalogCcWta(const AnalogWtaConfig& config);

  const AnalogWtaConfig& config() const { return config_; }

  /// Selects the winner through the shared-line competition.
  AnalogWtaResult select(const std::vector<double>& currents) const;

  /// Smallest relative margin this die reliably resolves.
  double discrimination_floor() const;

 private:
  AnalogWtaConfig config_;
  std::vector<double> cell_gain_;  // per-cell sampled input-stage gain
};

}  // namespace spinsim
