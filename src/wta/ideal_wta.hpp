/// \file ideal_wta.hpp
/// Reference winner-take-all: an ideal M-bit flash quantiser + argmax.
///
/// Every hardware WTA in this library is benchmarked against this model:
/// it quantises the column currents to the same LSB the hardware would
/// (full_scale / 2^M) and picks the largest code. Fig. 3b sweeps M here.

#pragma once

#include <cstdint>
#include <vector>

namespace spinsim {

/// Result of a quantised winner search.
struct IdealWtaResult {
  std::size_t winner = 0;               ///< first index with the top code
  bool unique = true;                   ///< false if several columns tie
  std::uint32_t winner_code = 0;        ///< degree of match (DOM)
  std::vector<std::uint32_t> codes;     ///< all quantised DOMs
};

/// Quantises `currents` to `bits` with the given full-scale and returns
/// the winner. Currents above full scale clip to the top code; negative
/// currents clip to zero.
IdealWtaResult ideal_wta(const std::vector<double>& currents, unsigned bits, double full_scale);

/// Unquantised argmax winner (infinite resolution reference).
std::size_t exact_winner(const std::vector<double>& currents);

}  // namespace spinsim
