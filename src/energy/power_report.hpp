/// \file power_report.hpp
/// Named power accounting shared by all design-point models.

#pragma once

#include <string>
#include <vector>

#include "core/error.hpp"

namespace spinsim {

/// Whether a contribution burns power continuously or per clock edge.
enum class PowerKind { kStatic, kDynamic };

/// One named power contribution [W].
struct PowerItem {
  std::string name;
  PowerKind kind = PowerKind::kStatic;
  double watts = 0.0;
};

/// A named collection of power contributions for one design point.
class PowerReport {
 public:
  /// Adds a contribution; negative values are rejected.
  void add(std::string name, PowerKind kind, double watts);

  /// Adds every item of `other` under "<prefix><its name>" — how composite
  /// designs (hierarchical router+leaf, tiered router+authority) fold
  /// their stages into one breakdown.
  void add_all_prefixed(const std::string& prefix, const PowerReport& other);

  double static_total() const;
  double dynamic_total() const;
  double total() const { return static_total() + dynamic_total(); }

  const std::vector<PowerItem>& items() const { return items_; }

  /// Energy per operation at the given operation rate [J].
  double energy_per_op(double op_rate_hz) const;

  /// Multi-line human-readable breakdown.
  std::string str() const;

 private:
  std::vector<PowerItem> items_;
};

}  // namespace spinsim
