/// \file power_report.hpp
/// Named power accounting shared by all design-point models.
///
/// Every figure in a report is a typed `Power`; totals are `Power` and
/// per-operation figures are `Energy`. Callers extract raw numbers
/// explicitly (`total().in(units::uW)`), so a W-vs-J mixup is a compile
/// error, not a bench regression.

#pragma once

#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/units.hpp"

namespace spinsim {

/// Whether a contribution burns power continuously or per clock edge.
enum class PowerKind { kStatic, kDynamic };

/// One named power contribution.
struct PowerItem {
  std::string name;
  PowerKind kind = PowerKind::kStatic;
  Power power;
};

/// A named collection of power contributions for one design point.
class PowerReport {
 public:
  /// Adds a contribution; negative values are rejected.
  void add(std::string name, PowerKind kind, Power power);

  /// Adds every item of `other` under "<prefix><its name>" — how composite
  /// designs (hierarchical router+leaf, tiered router+authority) fold
  /// their stages into one breakdown.
  void add_all_prefixed(const std::string& prefix, const PowerReport& other);

  Power static_total() const;
  Power dynamic_total() const;
  Power total() const { return static_total() + dynamic_total(); }

  const std::vector<PowerItem>& items() const { return items_; }

  /// Energy per operation at the given operation rate.
  Energy energy_per_op(Frequency op_rate) const;

  /// Multi-line human-readable breakdown.
  std::string str() const;

 private:
  std::vector<PowerItem> items_;
};

}  // namespace spinsim
