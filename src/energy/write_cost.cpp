#include "energy/write_cost.hpp"

namespace spinsim {

double CrossbarWriteCost::device_write_energy(const MemristorSpec& spec) const {
  const double g_mid = 0.5 * (spec.g_min() + spec.g_max());
  const double pulse_energy =
      write_voltage * write_voltage * g_mid * pulse_duration + driver_energy_per_pulse;
  return verify_pulses * pulse_energy;
}

double CrossbarWriteCost::array_write_energy(const MemristorSpec& spec, std::size_t rows,
                                             std::size_t cols) const {
  return device_write_energy(spec) * static_cast<double>(rows) * static_cast<double>(cols);
}

double CrossbarWriteCost::array_write_latency(std::size_t cols) const {
  return static_cast<double>(cols) * verify_pulses * pulse_duration;
}

}  // namespace spinsim
