#include "energy/write_cost.hpp"

namespace spinsim {

Energy CrossbarWriteCost::device_write_energy(const MemristorSpec& spec) const {
  const Voltage v_write = write_voltage * units::volt;
  const Conductance g_mid = 0.5 * (spec.g_min() + spec.g_max()) * units::siemens;
  const Energy pulse_energy = v_write * v_write * g_mid * (pulse_duration * units::second) +
                              driver_energy_per_pulse;
  return verify_pulses * pulse_energy;
}

Energy CrossbarWriteCost::array_write_energy(const MemristorSpec& spec, std::size_t rows,
                                             std::size_t cols) const {
  return device_write_energy(spec) * static_cast<double>(rows) * static_cast<double>(cols);
}

Time CrossbarWriteCost::array_write_latency(std::size_t cols) const {
  return static_cast<double>(cols) * verify_pulses * (pulse_duration * units::second);
}

}  // namespace spinsim
