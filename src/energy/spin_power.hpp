/// \file spin_power.hpp
/// Power model of the proposed spin-CMOS associative memory module.
///
/// Two physical facts drive the numbers (paper Section 4/5):
///
///  * Static power: every current in the design flows across at most
///    2 * dV ~ 60 mV. RCM input currents (DTCS-DAC into the crossbar held
///    at V) burn I * dV; the SAR-DAC component sunk at V - dV burns
///    I * 2 dV. All currents scale with the DWN threshold, because the
///    full-scale column current must be 2^M * I_th for an M-bit WTA.
///
///  * Dynamic power: the read latch, SAR registers, multiplexers and the
///    digital winner-tracking logic switch every conversion cycle at
///    full CMOS swing; this CV^2 f component is independent of I_th,
///    which is why Fig. 13a flattens at low thresholds.

#pragma once

#include <cstddef>

#include "device/tech45.hpp"
#include "energy/power_report.hpp"

namespace spinsim {

/// Design-point parameters of the proposed AMM.
struct SpinAmmDesign {
  std::size_t dimension = 128;   ///< feature elements (crossbar rows)
  std::size_t templates = 40;    ///< stored patterns (crossbar columns)
  unsigned resolution_bits = 5;  ///< WTA / SAR resolution M
  double dwn_threshold = 1e-6;   ///< DWN critical current I_th [A]
  double delta_v = 30e-3;        ///< crossbar bias dV [V]
  double clock = 100e6;          ///< conversion clock = input data rate [Hz]

  // Activity factors (averaged over the dataset).
  double input_activity = 0.5;    ///< mean input code / full scale
  double sar_dac_activity = 0.25; ///< mean SAR-DAC current / full scale

  // Dynamic-energy coefficients at the 45 nm node.
  double latch_cap = 2e-15;              ///< read-latch switched cap [F]
  Energy sar_logic_energy = 2.5e-15 * units::J;      ///< SAR logic per column per cycle
  Energy tracking_logic_energy = 1.0e-15 * units::J; ///< TR/DR/DL per column per cycle
  Energy dac_driver_energy = 1.0e-15 * units::J;     ///< DTCS gate drivers per column per cycle

  /// Full-scale column current 2^M * I_th [A].
  double full_scale_current() const;

  /// Peak DTCS-DAC output current per input such that the max dot product
  /// reaches full scale [A].
  double max_input_current() const;
};

/// Evaluates the power breakdown of the design point.
PowerReport spin_amm_power(const SpinAmmDesign& design, const Tech45& tech = Tech45::nominal());

}  // namespace spinsim
