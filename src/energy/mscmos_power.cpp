#include "energy/mscmos_power.hpp"

#include <cmath>

#include "core/error.hpp"

namespace spinsim {

namespace {

/// Per-topology circuit constants (see header for the model).
struct TopologyConstants {
  double mirror_factor;   ///< total tree current / (N * unit current)
  double bias_current;    ///< fixed regulated-mirror bias per input [A]
  double wiring_cap;      ///< fixed interconnect + diffusion cap per stage [F]
  double devices_per_stage;
  double min_analog_area; ///< layout floor for matched analog devices [m^2]
};

TopologyConstants constants_for(MsCmosTopology topology) {
  switch (topology) {
    case MsCmosTopology::kStandardBt:
      // [17]: full binary tree, every stage copies and propagates the
      // winning current; regulated cascode input mirrors.
      return {3.5, 25e-6, 8e-15, 4.0, 0.30e-12};
    case MsCmosTopology::kAsyncMinMax:
      // [18]: asynchronous Min/Max tree, fewer mirror branches per
      // comparison and lighter input stage.
      return {2.2, 18e-6, 6e-15, 4.0, 0.30e-12};
  }
  throw InvalidArgument("mscmos: unknown topology");
}

}  // namespace

MsCmosEvaluation mscmos_wta_power(const MsCmosDesign& d, const Tech45& tech) {
  require(d.inputs >= 2, "mscmos_wta_power: need at least two inputs");
  require(d.resolution_bits >= 1 && d.resolution_bits <= 10,
          "mscmos_wta_power: resolution must be 1..10 bits");
  require(d.sigma_vt_min_size > 0.0, "mscmos_wta_power: sigma_vt must be positive");
  require(d.overdrive > 0.0 && d.target_clock > 0.0,
          "mscmos_wta_power: overdrive and clock must be positive");

  const TopologyConstants topo = constants_for(d.topology);
  MsCmosEvaluation eval;

  // 1. Mismatch -> area. A path crosses the input mirror plus the tree
  //    depth; independent stage errors add in quadrature.
  const double depth = std::ceil(std::log2(static_cast<double>(d.inputs)));
  const double path_stages = depth + 1.0;
  const double lsb = std::ldexp(1.0, -static_cast<int>(d.resolution_bits));
  const double sigma_path_target = 0.5 * lsb;
  const double sigma_stage_target = sigma_path_target / std::sqrt(path_stages);

  // Stage error = 2 sigma_VT / V_ov; sigma_VT improves with sqrt(area)
  // from the quoted minimum-size value.
  const double sigma_vt_required = 0.5 * d.overdrive * sigma_stage_target;
  const double area_min_size = tech.w_min * tech.l_min;
  const double area_required =
      area_min_size * (d.sigma_vt_min_size / sigma_vt_required) *
      (d.sigma_vt_min_size / sigma_vt_required);
  eval.mirror_area = std::max(area_required, topo.min_analog_area);

  const double sigma_vt_realised =
      d.sigma_vt_min_size * std::sqrt(area_min_size / eval.mirror_area);
  eval.stage_rel_sigma = 2.0 * sigma_vt_realised / d.overdrive;
  eval.path_rel_sigma = eval.stage_rel_sigma * std::sqrt(path_stages);
  eval.meets_resolution = eval.path_rel_sigma <= sigma_path_target * 1.0001;

  // 2. Area -> capacitance per comparison stage.
  const double device_w = std::sqrt(eval.mirror_area * 5.0);  // W/L = 5 aspect
  const double c_gate = tech.c_gate_per_area * eval.mirror_area + tech.c_overlap_per_w * device_w;
  eval.stage_capacitance = topo.devices_per_stage * c_gate + topo.wiring_cap;

  // 3. Clock -> full-scale current. The binding constraint is the
  //    worst-case decision: a 1/2-LSB difference current must slew the
  //    stage capacitance through ~V_ov at every level of the tree within
  //    the clock period: I_fs = f * C * V_ov * depth * 2^(M+1).
  eval.unit_current = d.target_clock * eval.stage_capacitance * d.overdrive * depth *
                      std::ldexp(1.0, static_cast<int>(d.resolution_bits) + 1);
  eval.max_clock = d.target_clock;  // sized exactly for the target

  // 4. Currents -> power at full VDD.
  const double n = static_cast<double>(d.inputs);
  const Voltage vdd = tech.vdd * units::volt;
  const Current i_tree = topo.mirror_factor * n * eval.unit_current * units::ampere;
  eval.power.add("tree mirrors (winner propagation)", PowerKind::kStatic, i_tree * vdd);
  const Current i_bias = topo.bias_current * n * units::ampere;
  eval.power.add("regulated input-mirror bias", PowerKind::kStatic, i_bias * vdd);
  return eval;
}

}  // namespace spinsim
