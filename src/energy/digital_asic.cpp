#include "energy/digital_asic.hpp"

#include <cmath>

#include "core/error.hpp"

namespace spinsim {

DigitalAsicEvaluation digital_asic_power(const DigitalAsicDesign& d, const Tech45& tech) {
  require(d.dimension > 0 && d.templates > 0, "digital_asic_power: empty design");
  require(d.bits >= 1 && d.bits <= 16, "digital_asic_power: bits must be 1..16");
  require(d.clock > 0.0, "digital_asic_power: clock must be positive");

  DigitalAsicEvaluation eval;
  const double b = static_cast<double>(d.bits);
  const double n_mac = static_cast<double>(d.dimension) * static_cast<double>(d.templates);

  // One b x b multiply is ~b^2 full-adder cells; the accumulator adds a
  // (2b + log2(templates))-bit addition per MAC.
  const double acc_bits = 2.0 * b + std::ceil(std::log2(static_cast<double>(d.templates)));
  const Energy e_multiply = b * b * tech.full_adder_energy;
  const Energy e_accumulate = acc_bits * tech.full_adder_energy;
  const Energy e_register = acc_bits * tech.flop_energy;

  eval.energy_per_mac =
      d.activity * d.overhead_factor * (e_multiply + e_accumulate) + e_register;

  // Winner search: a comparator pass over the scores.
  const Energy e_compare = static_cast<double>(d.templates) * acc_bits * tech.full_adder_energy *
                           d.overhead_factor * d.activity;

  eval.energy_per_recognition = n_mac * eval.energy_per_mac + e_compare;

  Energy e_memory;
  if (d.include_memory_read) {
    e_memory = n_mac * b * tech.sram_read_energy_per_bit;
    eval.energy_per_recognition += e_memory;
  }

  // `dimension` parallel lanes: one template per cycle.
  eval.recognition_rate = (d.clock * units::Hz) / static_cast<double>(d.templates);

  eval.power.add("MAC datapath", PowerKind::kDynamic,
                 n_mac * eval.energy_per_mac * eval.recognition_rate);
  eval.power.add("winner comparator", PowerKind::kDynamic, e_compare * eval.recognition_rate);
  if (d.include_memory_read) {
    eval.power.add("template SRAM read", PowerKind::kDynamic, e_memory * eval.recognition_rate);
  }
  // Leakage of the ~dimension * bits^2 gate-equivalents.
  const double gate_count = static_cast<double>(d.dimension) * b * b * 3.0;
  eval.power.add("leakage", PowerKind::kStatic, gate_count * tech.gate_leakage);

  return eval;
}

}  // namespace spinsim
