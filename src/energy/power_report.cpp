#include "energy/power_report.hpp"

#include <sstream>

#include "core/error.hpp"
#include "core/table.hpp"

namespace spinsim {

void PowerReport::add(std::string name, PowerKind kind, double watts) {
  require(watts >= 0.0, "PowerReport::add: negative power for '" + name + "'");
  items_.push_back({std::move(name), kind, watts});
}

void PowerReport::add_all_prefixed(const std::string& prefix, const PowerReport& other) {
  for (const auto& item : other.items_) {
    add(prefix + item.name, item.kind, item.watts);
  }
}

double PowerReport::static_total() const {
  double acc = 0.0;
  for (const auto& item : items_) {
    if (item.kind == PowerKind::kStatic) {
      acc += item.watts;
    }
  }
  return acc;
}

double PowerReport::dynamic_total() const {
  double acc = 0.0;
  for (const auto& item : items_) {
    if (item.kind == PowerKind::kDynamic) {
      acc += item.watts;
    }
  }
  return acc;
}

double PowerReport::energy_per_op(double op_rate_hz) const {
  require(op_rate_hz > 0.0, "PowerReport::energy_per_op: rate must be positive");
  return total() / op_rate_hz;
}

std::string PowerReport::str() const {
  std::ostringstream out;
  for (const auto& item : items_) {
    out << "  " << (item.kind == PowerKind::kStatic ? "[static]  " : "[dynamic] ") << item.name
        << ": " << AsciiTable::eng(item.watts, "W") << "\n";
  }
  out << "  static total:  " << AsciiTable::eng(static_total(), "W") << "\n";
  out << "  dynamic total: " << AsciiTable::eng(dynamic_total(), "W") << "\n";
  out << "  total:         " << AsciiTable::eng(total(), "W") << "\n";
  return out.str();
}

}  // namespace spinsim
