#include "energy/power_report.hpp"

#include <sstream>

#include "core/error.hpp"
#include "core/table.hpp"

namespace spinsim {

void PowerReport::add(std::string name, PowerKind kind, Power power) {
  require(power >= Power{}, "PowerReport::add: negative power for '" + name + "'");
  items_.push_back({std::move(name), kind, power});
}

void PowerReport::add_all_prefixed(const std::string& prefix, const PowerReport& other) {
  for (const auto& item : other.items_) {
    add(prefix + item.name, item.kind, item.power);
  }
}

Power PowerReport::static_total() const {
  Power acc;
  for (const auto& item : items_) {
    if (item.kind == PowerKind::kStatic) {
      acc += item.power;
    }
  }
  return acc;
}

Power PowerReport::dynamic_total() const {
  Power acc;
  for (const auto& item : items_) {
    if (item.kind == PowerKind::kDynamic) {
      acc += item.power;
    }
  }
  return acc;
}

Energy PowerReport::energy_per_op(Frequency op_rate) const {
  require(op_rate > Frequency{}, "PowerReport::energy_per_op: rate must be positive");
  return total() / op_rate;
}

std::string PowerReport::str() const {
  std::ostringstream out;
  for (const auto& item : items_) {
    out << "  " << (item.kind == PowerKind::kStatic ? "[static]  " : "[dynamic] ") << item.name
        << ": " << AsciiTable::eng(item.power.in(units::W), "W") << "\n";
  }
  out << "  static total:  " << AsciiTable::eng(static_total().in(units::W), "W") << "\n";
  out << "  dynamic total: " << AsciiTable::eng(dynamic_total().in(units::W), "W") << "\n";
  out << "  total:         " << AsciiTable::eng(total().in(units::W), "W") << "\n";
  return out.str();
}

}  // namespace spinsim
