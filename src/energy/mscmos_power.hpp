/// \file mscmos_power.hpp
/// Power/performance model of the mixed-signal CMOS baseline WTAs.
///
/// Both baselines are binary trees of current-mirror comparison stages
/// fed by regulated input mirrors (paper Fig. 4, refs [17] and [18]).
/// The model derives the design from first principles:
///
///  1. Resolution sets the device area. A path through the tree crosses
///     ~log2(N) mirror stages whose random errors add in quadrature; each
///     stage's relative error is 2 sigma_VT(W,L) / V_ov, and Pelgrom gives
///     sigma_VT = A_VT / sqrt(WL). Meeting sigma_path < 1/2 LSB fixes WL.
///  2. Area sets capacitance, and the target clock then sets the branch
///     current through the mirror pole: f ~ gm / (2 pi C kappa) with
///     gm = 2 I / V_ov and kappa the number of cascaded poles.
///  3. Power is the propagated branch currents at full VDD: the tree
///     carries roughly (input stage + winner propagation) ~ 3.5 N I.
///
/// Larger sigma_VT (Fig. 13b) inflates the area, hence C, hence the
/// current needed to keep speed — power grows ~ sigma_VT^2 while the spin
/// design is untouched (its only analog step is the single DTCS-DAC).

#pragma once

#include <cstddef>

#include "device/tech45.hpp"
#include "energy/power_report.hpp"

namespace spinsim {

/// Which published design the constants follow.
enum class MsCmosTopology {
  kStandardBt,   ///< [17] Andreou-style binary-tree WTA
  kAsyncMinMax,  ///< [18] Dlugosz current-mode asynchronous Min/Max tree
};

/// Design-point parameters of an MS-CMOS WTA front end.
struct MsCmosDesign {
  MsCmosTopology topology = MsCmosTopology::kStandardBt;
  std::size_t inputs = 40;       ///< WTA fan-in (stored templates)
  unsigned resolution_bits = 5;  ///< required current resolution
  double sigma_vt_min_size = 5e-3;  ///< process sigma_VT for a min-size device [V]
  double overdrive = 0.15;       ///< mirror overdrive V_ov [V]
  double target_clock = 50e6;    ///< throughput target [Hz]
};

/// Evaluated design.
struct MsCmosEvaluation {
  double mirror_area = 0.0;      ///< per-device W*L [m^2]
  double stage_capacitance = 0.0;///< switched capacitance per stage [F]
  double unit_current = 0.0;     ///< branch current per input [A]
  double max_clock = 0.0;        ///< achievable clock at that current [Hz]
  double stage_rel_sigma = 0.0;  ///< realised per-stage relative mismatch
  double path_rel_sigma = 0.0;   ///< accumulated path mismatch
  bool meets_resolution = false; ///< path sigma < 1/2 LSB
  PowerReport power;
};

/// Sizes and evaluates the baseline WTA for the given design point.
MsCmosEvaluation mscmos_wta_power(const MsCmosDesign& design,
                                  const Tech45& tech = Tech45::nominal());

}  // namespace spinsim
