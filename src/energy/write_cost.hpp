/// \file write_cost.hpp
/// Write-path cost model of the resistive crossbar: what programming (or
/// reprogramming) an array of memristors costs in energy and time.
///
/// The original spin-neuron design (Sharad et al., arXiv:1304.2281)
/// prices the memristor write path: programming pulses of ~1-2 V are
/// applied across the selected device for tens of nanoseconds, repeated
/// by a program-and-verify loop until the conductance lands inside the
/// target level's window. Queries, by contrast, ride on ~30 mV reads —
/// which is why a leaf-cache engine that reprograms crossbars on demand
/// must charge the write path explicitly: once queries are cheap matvecs,
/// reprogramming is the dominant energy term of a cache miss.
///
/// The model is intentionally simple and analytic, like the read-path
/// power models in this directory: per-device energy is the resistive
/// dissipation of the verify loop's pulses across the device's mid-range
/// conductance plus a CV^2 driver/decoder term, and a whole-array write
/// is column-serial with all rows of a column written in parallel (the
/// usual one-transistor-per-column write scheme).

#pragma once

#include <cstddef>

#include "core/units.hpp"
#include "device/memristor.hpp"

namespace spinsim {

/// Knobs of the crossbar write path.
struct CrossbarWriteCost {
  double write_voltage = 1.5;     ///< programming pulse amplitude [V]
  double pulse_duration = 20e-9;  ///< one programming pulse [s]
  /// Mean program-and-verify iterations until the conductance lands in
  /// its level window (multi-level cells need several trims).
  double verify_pulses = 4.0;
  /// CV^2 energy of the write driver + row/column decode per pulse.
  Energy driver_energy_per_pulse = 5e-15 * units::J;

  /// Mean energy to program one device to an arbitrary level:
  /// verify_pulses * (V^2 * g_mid * t_pulse + driver), with g_mid the
  /// midpoint of the spec's conductance range.
  Energy device_write_energy(const MemristorSpec& spec) const;

  /// Energy to program a full rows x cols array.
  Energy array_write_energy(const MemristorSpec& spec, std::size_t rows, std::size_t cols) const;

  /// Wall-clock time to program a rows x cols array: columns are
  /// written serially, each column's rows in parallel.
  Time array_write_latency(std::size_t cols) const;
};

}  // namespace spinsim
