#include "energy/spin_power.hpp"

#include <cmath>

#include "core/error.hpp"

namespace spinsim {

double SpinAmmDesign::full_scale_current() const {
  return std::ldexp(dwn_threshold, static_cast<int>(resolution_bits));  // 2^M * I_th
}

double SpinAmmDesign::max_input_current() const {
  // The best-matching column collects ~1/templates of every input current
  // (dummy memristors keep the row conductance G_TS equal across rows), so
  // reaching full scale 2^M * I_th on that column requires a per-input
  // peak of full_scale * templates / dimension. For the paper's point
  // (32 uA, 40 columns, 128 inputs) this is the quoted ~10 uA.
  require(dimension > 0, "SpinAmmDesign: dimension must be positive");
  return full_scale_current() * static_cast<double>(templates) / static_cast<double>(dimension);
}

PowerReport spin_amm_power(const SpinAmmDesign& d, const Tech45& tech) {
  require(d.resolution_bits >= 1 && d.resolution_bits <= 10,
          "spin_amm_power: resolution must be 1..10 bits");
  require(d.dwn_threshold > 0.0, "spin_amm_power: threshold must be positive");
  require(d.delta_v > 0.0, "spin_amm_power: delta_v must be positive");

  PowerReport report;

  // --- static: current x small terminal voltage ---
  const double n_in = static_cast<double>(d.dimension);
  const double n_col = static_cast<double>(d.templates);

  // DTCS-DAC input currents flow from V + dV into the crossbar held at V.
  const double p_rcm = n_in * d.max_input_current() * d.input_activity * d.delta_v;
  report.add("RCM input currents (I_in x dV)", PowerKind::kStatic, p_rcm);

  // SAR-DAC currents sink the column current at V - dV: a 2 dV drop.
  const double p_sar_dac =
      n_col * d.full_scale_current() * d.sar_dac_activity * 2.0 * d.delta_v;
  report.add("SAR-DAC sink currents (I_dac x 2dV)", PowerKind::kStatic, p_sar_dac);

  // --- dynamic: full-swing CMOS switching at the conversion clock ---
  const double vdd2 = tech.vdd * tech.vdd;
  const double bit_scale = static_cast<double>(d.resolution_bits) / 5.0;  // coefficients @5-bit

  const double p_latch = n_col * d.latch_cap * vdd2 * d.clock;
  report.add("dynamic read latches", PowerKind::kDynamic, p_latch);

  const double p_sar_logic = n_col * d.sar_logic_energy * bit_scale * d.clock;
  report.add("SAR registers + mux", PowerKind::kDynamic, p_sar_logic);

  const double p_tracking = n_col * d.tracking_logic_energy * bit_scale * d.clock;
  report.add("winner tracking (TR/DR/DL)", PowerKind::kDynamic, p_tracking);

  const double p_dac_drive = n_col * d.dac_driver_energy * bit_scale * d.clock;
  report.add("DTCS gate drivers", PowerKind::kDynamic, p_dac_drive);

  return report;
}

}  // namespace spinsim
