#include "energy/spin_power.hpp"

#include <cmath>

#include "core/error.hpp"

namespace spinsim {

double SpinAmmDesign::full_scale_current() const {
  return std::ldexp(dwn_threshold, static_cast<int>(resolution_bits));  // 2^M * I_th
}

double SpinAmmDesign::max_input_current() const {
  // The best-matching column collects ~1/templates of every input current
  // (dummy memristors keep the row conductance G_TS equal across rows), so
  // reaching full scale 2^M * I_th on that column requires a per-input
  // peak of full_scale * templates / dimension. For the paper's point
  // (32 uA, 40 columns, 128 inputs) this is the quoted ~10 uA.
  require(dimension > 0, "SpinAmmDesign: dimension must be positive");
  return full_scale_current() * static_cast<double>(templates) / static_cast<double>(dimension);
}

PowerReport spin_amm_power(const SpinAmmDesign& d, const Tech45& tech) {
  require(d.resolution_bits >= 1 && d.resolution_bits <= 10,
          "spin_amm_power: resolution must be 1..10 bits");
  require(d.dwn_threshold > 0.0, "spin_amm_power: threshold must be positive");
  require(d.delta_v > 0.0, "spin_amm_power: delta_v must be positive");

  PowerReport report;

  // --- static: current x small terminal voltage ---
  const double n_in = static_cast<double>(d.dimension);
  const double n_col = static_cast<double>(d.templates);
  const Voltage delta_v = d.delta_v * units::volt;

  // DTCS-DAC input currents flow from V + dV into the crossbar held at V.
  const Current i_in = n_in * d.max_input_current() * d.input_activity * units::ampere;
  report.add("RCM input currents (I_in x dV)", PowerKind::kStatic, i_in * delta_v);

  // SAR-DAC currents sink the column current at V - dV: a 2 dV drop.
  const Current i_dac = n_col * d.full_scale_current() * d.sar_dac_activity * units::ampere;
  report.add("SAR-DAC sink currents (I_dac x 2dV)", PowerKind::kStatic, i_dac * (2.0 * delta_v));

  // --- dynamic: full-swing CMOS switching at the conversion clock ---
  const double vdd2 = tech.vdd * tech.vdd;
  const double bit_scale = static_cast<double>(d.resolution_bits) / 5.0;  // coefficients @5-bit
  const Frequency clock = d.clock * units::Hz;

  const Energy e_latch = n_col * d.latch_cap * vdd2 * units::J;
  report.add("dynamic read latches", PowerKind::kDynamic, e_latch * clock);

  const Energy e_sar_logic = n_col * d.sar_logic_energy * bit_scale;
  report.add("SAR registers + mux", PowerKind::kDynamic, e_sar_logic * clock);

  const Energy e_tracking = n_col * d.tracking_logic_energy * bit_scale;
  report.add("winner tracking (TR/DR/DL)", PowerKind::kDynamic, e_tracking * clock);

  const Energy e_dac_drive = n_col * d.dac_driver_energy * bit_scale;
  report.add("DTCS gate drivers", PowerKind::kDynamic, e_dac_drive * clock);

  return report;
}

}  // namespace spinsim
