/// \file digital_asic.hpp
/// Energy model of the 45 nm digital CMOS baseline.
///
/// The paper's digital comparison point is a multiply-and-accumulate
/// datapath correlating the 5-bit, 128-element input against 40 stored
/// templates, followed by a max search. We model `dimension` parallel MAC
/// lanes clocked at `clock`; one template is accumulated per cycle, so a
/// recognition takes `templates` cycles and the recognition rate is
/// clock / templates (paper: 2.5 MHz). Energy constants come from
/// Tech45; a routing/control overhead multiplier (calibrated once,
/// documented in DESIGN.md) covers clock tree, muxing and wiring that a
/// gate-level count misses. Memory-read energy is reported separately and
/// *excluded* from the headline number, matching the paper's note.

#pragma once

#include <cstddef>

#include "core/units.hpp"
#include "device/tech45.hpp"
#include "energy/power_report.hpp"

namespace spinsim {

/// Design point of the digital MAC ASIC.
struct DigitalAsicDesign {
  std::size_t dimension = 128;   ///< MAC lanes (feature elements)
  std::size_t templates = 40;    ///< patterns correlated per recognition
  unsigned bits = 5;             ///< operand precision
  double clock = 100e6;          ///< datapath clock [Hz]
  double activity = 0.5;         ///< datapath switching activity
  double overhead_factor = 14.0; ///< routing/control/clock multiplier
  bool include_memory_read = false;  ///< add template SRAM read energy
};

/// Evaluated digital design.
struct DigitalAsicEvaluation {
  Frequency recognition_rate;       ///< recognitions per second
  Energy energy_per_recognition;
  Energy energy_per_mac;
  PowerReport power;
};

/// Evaluates the digital baseline.
DigitalAsicEvaluation digital_asic_power(const DigitalAsicDesign& design,
                                         const Tech45& tech = Tech45::nominal());

}  // namespace spinsim
