/// \file memristor.hpp
/// Behavioral Ag-Si memristor model.
///
/// The paper treats the memristor as a multi-level programmable
/// conductance: targets are quantised to `levels` values across the
/// [g_min, g_max] range and each write lands within a multiplicative
/// `write_sigma` of the target (3 % ~= 5-bit accuracy, after [8]).
///
/// Real Ag-Si RRAM endurance is finite: filaments degrade as write
/// cycles accumulate, the programmable window drifts shut, and devices
/// eventually fail stuck (filament lost -> stuck-open, over-formed ->
/// stuck-short). The optional wear model captures that lifecycle so the
/// write-heavy serving layers (the leaf cache reprograms crossbars on
/// every miss) can spread wear and self-repair instead of silently
/// losing accuracy. `endurance_cycles == 0` (the default) disables the
/// model entirely and keeps the device ideal and bit-stable.

#pragma once

#include <cstddef>
#include <cstdint>

#include "core/random.hpp"

namespace spinsim {

/// Lifecycle state of one device.
enum class MemristorHealth : std::uint8_t {
  kHealthy = 0,
  kStuckOpen = 1,   ///< filament lost: conductance collapsed far below g_min
  kStuckShort = 2,  ///< over-formed filament: pinned far above g_max
};

/// Programming/rating parameters shared by all devices in an array.
struct MemristorSpec {
  double r_min = 1e3;        ///< lowest programmable resistance [Ohm] (paper: 1 kOhm)
  double r_max = 32e3;       ///< highest programmable resistance [Ohm] (paper: 32 kOhm)
  std::size_t levels = 32;   ///< programmable levels (5-bit)
  double write_sigma = 0.03; ///< multiplicative write error (3 %)
  double d2d_sigma = 0.0;    ///< device-to-device range variation (multiplicative)

  // --- Endurance / wear model (endurance_cycles == 0 disables it) ---
  double endurance_cycles = 0.0;   ///< median write endurance; 0 = ideal device
  double endurance_sigma = 0.3;    ///< lognormal spread of per-device endurance
  double wear_drift = 0.5;         ///< target pull toward mid-conductance at full wear
  double wear_sigma_growth = 2.0;  ///< extra write-noise factor at full wear
  double wear_fail_open = 0.5;     ///< P(wear-out fails stuck-open vs stuck-short)

  double g_min() const { return 1.0 / r_max; }
  double g_max() const { return 1.0 / r_min; }

  bool wear_enabled() const { return endurance_cycles > 0.0; }

  /// Conductance signature of a stuck-open device (~100x the highest
  /// programmable resistance — the same window RcmArray::inject_fault
  /// realises, so repair logic detects field faults and wear-out alike).
  double stuck_open_conductance() const { return 0.01 * g_min(); }

  /// Conductance signature of a stuck-short device (over-formed filament
  /// well below the lowest programmable resistance).
  double stuck_short_conductance() const { return 4.0 * g_max(); }

  /// Ideal conductance of `level` (0 .. levels-1), linear in conductance:
  /// level 0 -> g_min, top level -> g_max.
  double level_conductance(std::size_t level) const;

  /// Nearest programmable level for a normalised weight in [0, 1].
  std::size_t weight_to_level(double weight) const;
};

/// Persistent wear record of one device, detachable from the Memristor
/// object so a physical device outlives the (re-created) array models
/// that program it — what CrossbarSubstrate snapshots per cache slot.
struct MemristorWear {
  std::uint64_t write_cycles = 0;
  double endurance_limit = 0.0;  ///< sampled per device; 0 = wear disabled
  MemristorHealth health = MemristorHealth::kHealthy;
};

/// One crosspoint device.
class Memristor {
 public:
  /// Unprogrammed device starts at g_min (high resistance). The
  /// endurance limit (when the spec enables wear) is the spec's median.
  explicit Memristor(const MemristorSpec& spec);

  /// Device with sampled device-to-device variation and (when wear is
  /// enabled) a lognormal-sampled per-device endurance limit.
  Memristor(const MemristorSpec& spec, Rng& rng);

  const MemristorSpec& spec() const { return spec_; }

  /// Programs the device to `level`; the realised conductance includes
  /// write noise drawn from `rng`. Throws InvalidArgument for a level
  /// outside the spec. With wear enabled, every call ages the device:
  /// the realised target drifts toward mid-conductance and the write
  /// noise grows as cycles approach the endurance limit, past which the
  /// device fails stuck (open or short, drawn from `rng`) and ignores
  /// all further programming.
  void program(std::size_t level, Rng& rng);

  /// Programs without write noise (ideal write, used in ablations).
  /// Still counts a write cycle but applies no wear effects.
  void program_ideal(std::size_t level);

  /// Programs to the level nearest `weight` in [0, 1].
  void program_weight(double weight, Rng& rng);

  /// Restores a previously realised state without a physical write (the
  /// delta-reprogramming skip path): no cycle is charged, no noise drawn.
  void restore(std::size_t level, double conductance);

  /// Realised conductance [S].
  double conductance() const { return g_; }

  /// Realised resistance [Ohm].
  double resistance() const { return 1.0 / g_; }

  /// Last programmed level.
  std::size_t level() const { return level_; }

  // --- Wear state ---
  std::uint64_t write_cycles() const { return wear_.write_cycles; }
  MemristorHealth health() const { return wear_.health; }
  bool worn_out() const { return wear_.health != MemristorHealth::kHealthy; }

  /// Consumed lifetime in [0, 1]; 0 when the wear model is disabled.
  double wear_fraction() const;

  /// Persistent wear snapshot (see MemristorWear).
  MemristorWear wear() const { return wear_; }

  /// Restores a wear snapshot; a failed record pins the stuck
  /// conductance signature immediately.
  void set_wear(const MemristorWear& wear);

  /// Device-to-device range skew (persisted by CrossbarSubstrate so a
  /// physical device keeps its skew across array re-creations).
  double range_scale() const { return range_scale_; }
  void set_range_scale(double scale) { range_scale_ = scale; }

 private:
  void fail(Rng& rng);

  MemristorSpec spec_;
  double range_scale_ = 1.0;  // device-to-device multiplicative skew
  double g_;
  std::size_t level_ = 0;
  MemristorWear wear_;
};

}  // namespace spinsim
