/// \file memristor.hpp
/// Behavioral Ag-Si memristor model.
///
/// The paper treats the memristor as a multi-level programmable
/// conductance: targets are quantised to `levels` values across the
/// [g_min, g_max] range and each write lands within a multiplicative
/// `write_sigma` of the target (3 % ~= 5-bit accuracy, after [8]).

#pragma once

#include <cstddef>

#include "core/random.hpp"

namespace spinsim {

/// Programming/rating parameters shared by all devices in an array.
struct MemristorSpec {
  double r_min = 1e3;        ///< lowest programmable resistance [Ohm] (paper: 1 kOhm)
  double r_max = 32e3;       ///< highest programmable resistance [Ohm] (paper: 32 kOhm)
  std::size_t levels = 32;   ///< programmable levels (5-bit)
  double write_sigma = 0.03; ///< multiplicative write error (3 %)
  double d2d_sigma = 0.0;    ///< device-to-device range variation (multiplicative)

  double g_min() const { return 1.0 / r_max; }
  double g_max() const { return 1.0 / r_min; }

  /// Ideal conductance of `level` (0 .. levels-1), linear in conductance:
  /// level 0 -> g_min, top level -> g_max.
  double level_conductance(std::size_t level) const;

  /// Nearest programmable level for a normalised weight in [0, 1].
  std::size_t weight_to_level(double weight) const;
};

/// One crosspoint device.
class Memristor {
 public:
  /// Unprogrammed device starts at g_min (high resistance).
  explicit Memristor(const MemristorSpec& spec);

  /// Device with sampled device-to-device variation.
  Memristor(const MemristorSpec& spec, Rng& rng);

  const MemristorSpec& spec() const { return spec_; }

  /// Programs the device to `level`; the realised conductance includes
  /// write noise drawn from `rng`. Throws InvalidArgument for a level
  /// outside the spec.
  void program(std::size_t level, Rng& rng);

  /// Programs without write noise (ideal write, used in ablations).
  void program_ideal(std::size_t level);

  /// Programs to the level nearest `weight` in [0, 1].
  void program_weight(double weight, Rng& rng);

  /// Realised conductance [S].
  double conductance() const { return g_; }

  /// Realised resistance [Ohm].
  double resistance() const { return 1.0 / g_; }

  /// Last programmed level.
  std::size_t level() const { return level_; }

 private:
  MemristorSpec spec_;
  double range_scale_ = 1.0;  // device-to-device multiplicative skew
  double g_;
  std::size_t level_ = 0;
};

}  // namespace spinsim
