/// \file llg.hpp
/// 1-D collective-coordinate LLG model of a domain-wall magnet (DWM).
///
/// This is the reproduction's stand-in for the paper's micromagnetic
/// simulation. The wall is described by its position q along the strip and
/// its tilt angle psi (the q-psi model of Thiaville/Mougin), driven by
/// adiabatic + non-adiabatic spin-transfer torque and an easy-axis
/// effective field that includes a periodic pinning potential:
///
///   (1 + a^2) psi_dot = A - a * B
///   (1 + a^2) q_dot   = Delta * (B + a * A)
///   A = gamma * B_eff + beta * u / Delta
///   B = gamma * B_hard * sin(2 psi) / 2 + u / Delta
///
/// with u the spin drift velocity eta * P * mu_B * J / (e * Ms). Below the
/// Walker limit the terminal velocity is (beta/alpha) u; the pinning field
/// B_p0 sin(2 pi q / lambda_p) produces the finite critical current
/// I_c ~ beta * u_c / (gamma * Delta * B_p0^-1) observed in experiments.
///
/// Calibration (see DESIGN.md): eta and B_p0 are chosen so that the paper's
/// 3x20x60 nm^3 NiFe device reaches I_c ~ 1 uA and switches in ~1.5 ns at
/// 2 I_c (Table 2). Thermal agitation of the *computing-scale* device is
/// handled statistically in the behavioral DWN model (dwn.hpp), matching
/// the paper's own simulation framework (Fig. 14).

#pragma once

#include <optional>

#include "core/random.hpp"

namespace spinsim {

/// Material, geometry and calibration parameters of a DWM strip.
struct DwmParams {
  // --- geometry [m] ---
  double thickness = 3e-9;
  double width = 20e-9;
  double length = 60e-9;   ///< free-domain length the wall traverses

  // --- material (NiFe-like) ---
  double ms = 8e5;          ///< saturation magnetisation [A/m] (800 emu/cm^3)
  double alpha = 0.02;      ///< Gilbert damping
  double beta = 0.04;       ///< non-adiabatic STT parameter
  double wall_width = 15e-9;///< wall width Delta [m]
  double b_hard = 0.05;     ///< hard-axis anisotropy field mu0*H_K [T]
  double polarization = 0.7;///< current spin polarisation P

  // --- calibrated parameters ---
  double eta_stt = 11.8;         ///< drift-velocity efficiency factor
  double pinning_field = 1.5e-4; ///< B_p0 [T]
  double pinning_period = 20e-9; ///< lambda_p [m]

  double temperature = 0.0;      ///< [K]; 0 disables the stochastic field

  /// Cross-section area [m^2].
  double cross_section() const { return thickness * width; }

  /// Spin drift velocity u for a terminal current [m/s].
  double drift_velocity(double current) const;

  /// Walker-breakdown drift velocity [m/s].
  double walker_velocity() const;

  /// Analytic depinning estimate u_c = gamma * B_p0 * Delta / beta,
  /// expressed as a terminal current [A]. The ODE threshold lands close
  /// to this; tests pin the agreement.
  double analytic_critical_current() const;

  /// The paper's Table-2 device: 3x20x60 nm^3, calibrated so I_c ~ 1 uA
  /// and t_switch ~ 1.5 ns at 2 I_c. The calibration is numeric (see
  /// calibrate_numeric) and cached process-wide.
  static DwmParams paper_device();

  /// Recomputes eta_stt and pinning_field from the quasi-static force
  /// balance so this geometry/material meets the given targets (critical
  /// current, switching time measured at 2 * critical current). The
  /// realised ODE threshold sits *below* the static estimate because the
  /// wall depins kinetically (the tilt angle psi stores inertia); use
  /// calibrate_numeric when the absolute threshold matters.
  void calibrate(double critical_current, double switch_time_at_2ic);

  /// Analytic calibration followed by a fixed-point correction of the
  /// pinning field against the simulated (bisection) threshold, so the
  /// realised I_c matches `critical_current` to a few percent.
  void calibrate_numeric(double critical_current, double switch_time_at_2ic);
};

/// Integrates the q-psi equations for one strip.
class DwmStripe {
 public:
  explicit DwmStripe(const DwmParams& params);

  const DwmParams& params() const { return params_; }

  /// Wall position [m], clamped to [0, length].
  double position() const { return q_; }

  /// Wall tilt angle [rad].
  double tilt() const { return psi_; }

  /// Resets the wall to `position` with zero tilt.
  void reset(double position = 0.0);

  /// Advances one step of `dt` seconds under the given terminal current.
  /// Positive current drives the wall toward +q. Uses RK4 for the drift
  /// and an Euler-Maruyama thermal kick when temperature > 0.
  void step(double current, double dt, Rng* rng = nullptr);

  /// Runs at constant current until the wall reaches the far end
  /// (q >= length) or `t_max` elapses; returns the crossing time if it
  /// switched. dt defaults to 1 ps.
  std::optional<double> run_until_switched(double current, double t_max, double dt = 1e-12,
                                           Rng* rng = nullptr);

  /// Numerical critical current via bisection of run_until_switched over
  /// [0, i_max]; `t_max` bounds each trial. Deterministic (T = 0 path).
  double critical_current(double i_max = 10e-6, double t_max = 50e-9,
                          double tolerance = 0.01e-6) const;

 private:
  void derivatives(double q, double psi, double u, double b_thermal, double& dq,
                   double& dpsi) const;

  DwmParams params_;
  double q_ = 0.0;
  double psi_ = 0.0;
};

}  // namespace spinsim
