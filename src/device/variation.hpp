/// \file variation.hpp
/// Mismatch budgeting utilities shared by the analog models.
///
/// Analog current-mode circuits accumulate random mismatch along the
/// signal path; resolution studies (paper Fig. 13b, Section 2) need the
/// total rms error of a path and the device sizing required to keep that
/// error below a target LSB. These helpers centralise the arithmetic so
/// the DTCS-DAC model and the MS-CMOS WTA baselines agree on it.

#pragma once

#include <cstddef>
#include <vector>

#include "device/tech45.hpp"

namespace spinsim {

/// Relative drain-current mismatch (sigma_I / I) of a *saturated* device
/// at overdrive `vov` with threshold spread `sigma_vt`:
/// delta_I / I = gm / I * sigma_vt = 2 sigma_vt / vov.
double saturation_current_mismatch(double vov, double sigma_vt);

/// Relative conductance mismatch of a *deep-triode* device:
/// delta_g / g = sigma_vt / vov.
double triode_conductance_mismatch(double vov, double sigma_vt);

/// Accumulates independent relative error contributions in quadrature.
class MismatchBudget {
 public:
  /// Adds an independent relative-sigma contribution.
  void add(double relative_sigma);

  /// Adds `count` identical independent contributions.
  void add_stages(double relative_sigma, std::size_t count);

  /// Root-sum-square of all contributions.
  double total() const;

  /// Number of contributions recorded.
  std::size_t count() const { return contributions_.size(); }

 private:
  std::vector<double> contributions_;
};

/// Minimum gate area (W*L) for which Pelgrom mismatch keeps a saturated
/// mirror's relative error below `target_rel_sigma` at overdrive `vov`:
/// area = (2 A_VT / (vov * target))^2.
double min_area_for_mirror_accuracy(double vov, double target_rel_sigma, const Tech45& tech);

}  // namespace spinsim
