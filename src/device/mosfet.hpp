/// \file mosfet.hpp
/// Square-law MOSFET model with Pelgrom mismatch.
///
/// The paper's DTCS-DAC uses PMOS devices in *deep triode* (|VDS| ~ 30 mV),
/// where the transistor is an almost-linear conductance
/// g = k' (W/L)(|VGS| - |VT|). The same model, in saturation, underpins
/// the current-mirror stages of the MS-CMOS baseline WTAs. All voltages in
/// the API are magnitudes (source-referred), so NMOS and PMOS share code.

#pragma once

#include "core/random.hpp"
#include "device/tech45.hpp"

namespace spinsim {

enum class MosType { kNmos, kPmos };

/// Geometry + type of one transistor instance.
struct MosGeometry {
  MosType type = MosType::kNmos;
  double w = 1e-6;  ///< channel width [m]
  double l = 45e-9; ///< channel length [m]
};

/// One MOSFET instance. Construction samples its local VT and current-
/// factor mismatch from the technology's Pelgrom model, so two instances
/// built from the same geometry differ the way two adjacent devices on a
/// die would.
class Mosfet {
 public:
  /// Nominal (mismatch-free) device.
  Mosfet(const MosGeometry& geometry, const Tech45& tech = Tech45::nominal());

  /// Device with sampled mismatch. `sigma_vt_override`, if positive,
  /// replaces the Pelgrom sigma (used for the Fig. 13b sigma_VT sweep).
  Mosfet(const MosGeometry& geometry, Rng& rng, const Tech45& tech = Tech45::nominal(),
         double sigma_vt_override = -1.0);

  const MosGeometry& geometry() const { return geometry_; }

  /// Effective threshold magnitude including sampled mismatch [V].
  double vt() const { return vt_; }

  /// Drain current magnitude for source-referred |VGS|, |VDS| >= 0 [A].
  /// Piecewise square law: cutoff / triode / saturation, with channel-
  /// length modulation in saturation.
  double drain_current(double vgs, double vds) const;

  /// Small-signal output conductance dId/dVds at the given bias [S].
  double output_conductance(double vgs, double vds) const;

  /// Deep-triode channel conductance k'(W/L)(|VGS| - |VT|) [S]; the
  /// linearisation the DTCS-DAC design relies on. 0 when cut off.
  double triode_conductance(double vgs) const;

  /// Saturation current at the given |VGS| with VDS = VGS (diode) [A].
  double saturation_current(double vgs) const;

  /// Gate capacitance [F].
  double gate_cap() const;

 private:
  MosGeometry geometry_;
  const Tech45* tech_;
  double vt_;          // sampled threshold magnitude
  double kp_factor_;   // sampled multiplicative current-factor error
};

}  // namespace spinsim
