/// \file tech45.hpp
/// 45 nm CMOS technology constants used by all transistor-level models.
///
/// Values are representative of a 45 nm low-power process (PTM-like) and
/// are the single source of truth for both the MS-CMOS baseline models and
/// the digital-ASIC energy model, so that every comparison in the paper's
/// Table 1 / Fig. 13 uses the same technology assumptions.

#pragma once

#include "core/units.hpp"

namespace spinsim {

/// 45 nm process corner used throughout the reproduction.
struct Tech45 {
  // --- supplies ---
  double vdd = 1.0;               ///< nominal supply [V]

  // --- square-law transistor parameters ---
  double kp_n = 300e-6;           ///< NMOS transconductance factor k' = mu Cox [A/V^2]
  double kp_p = 120e-6;           ///< PMOS transconductance factor [A/V^2]
  double vt_n = 0.35;             ///< NMOS threshold magnitude [V]
  double vt_p = 0.35;             ///< PMOS threshold magnitude [V]
  double lambda_n = 0.15;         ///< NMOS channel-length modulation at L_min [1/V]
  double lambda_p = 0.20;         ///< PMOS channel-length modulation at L_min [1/V]

  // --- geometry ---
  double l_min = 45e-9;           ///< minimum channel length [m]
  double w_min = 90e-9;           ///< minimum width [m]

  // --- mismatch (Pelgrom) ---
  double a_vt = 3.5e-3 * 1e-6;    ///< A_VT [V * m] (3.5 mV*um)
  double a_beta = 0.01 * 1e-6;    ///< current-factor mismatch coefficient [m]

  // --- capacitance ---
  double c_gate_per_area = 0.009; ///< gate capacitance [F/m^2] (~9 fF/um^2)
  double c_overlap_per_w = 0.3e-9;///< overlap + fringe capacitance [F/m] // lint:allow(raw-double-energy) per unit channel width, not watts
  double c_wire_per_len = 0.2e-9; ///< local interconnect capacitance [F/m] (0.2 fF/um)

  // --- digital energy model ---
  /// Switching energy of a minimum-size inverter-equivalent gate output
  /// (C V^2, full swing). ~0.1 fJ at 45 nm / 1 V.
  Energy gate_switch_energy = 0.10e-15 * units::J;
  /// Leakage power of a minimum-size gate.
  Power gate_leakage = 1.0e-9 * units::W;
  /// Energy of a single-bit full-adder operation.
  Energy full_adder_energy = 0.8e-15 * units::J;
  /// Energy of reading one bit from a local SRAM array.
  Energy sram_read_energy_per_bit = 2.0e-15 * units::J;
  /// Energy of a flip-flop toggle.
  Energy flop_energy = 0.5e-15 * units::J;

  /// Pelgrom sigma_VT for a device of the given geometry [V].
  double sigma_vt(double w, double l) const;

  /// Gate capacitance of a W x L device [F].
  double gate_cap(double w, double l) const;

  /// Returns the process-default instance.
  static const Tech45& nominal();
};

}  // namespace spinsim
