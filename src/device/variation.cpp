#include "device/variation.hpp"

#include <cmath>

#include "core/error.hpp"

namespace spinsim {

double saturation_current_mismatch(double vov, double sigma_vt) {
  require(vov > 0.0, "saturation_current_mismatch: overdrive must be positive");
  require(sigma_vt >= 0.0, "saturation_current_mismatch: sigma must be non-negative");
  return 2.0 * sigma_vt / vov;
}

double triode_conductance_mismatch(double vov, double sigma_vt) {
  require(vov > 0.0, "triode_conductance_mismatch: overdrive must be positive");
  require(sigma_vt >= 0.0, "triode_conductance_mismatch: sigma must be non-negative");
  return sigma_vt / vov;
}

void MismatchBudget::add(double relative_sigma) {
  require(relative_sigma >= 0.0, "MismatchBudget::add: sigma must be non-negative");
  contributions_.push_back(relative_sigma);
}

void MismatchBudget::add_stages(double relative_sigma, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    add(relative_sigma);
  }
}

double MismatchBudget::total() const {
  double acc = 0.0;
  for (double s : contributions_) {
    acc += s * s;
  }
  return std::sqrt(acc);
}

double min_area_for_mirror_accuracy(double vov, double target_rel_sigma, const Tech45& tech) {
  require(vov > 0.0, "min_area_for_mirror_accuracy: overdrive must be positive");
  require(target_rel_sigma > 0.0, "min_area_for_mirror_accuracy: target must be positive");
  const double ratio = 2.0 * tech.a_vt / (vov * target_rel_sigma);
  return ratio * ratio;
}

}  // namespace spinsim
