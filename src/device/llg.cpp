#include "device/llg.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/error.hpp"
#include "core/units.hpp"

namespace spinsim {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

double DwmParams::drift_velocity(double current) const {
  const double j = current / cross_section();
  return eta_stt * polarization * constants::mu_B * j / (constants::q_e * ms);
}

double DwmParams::walker_velocity() const {
  const double denom = 2.0 * std::abs(beta - alpha);
  if (denom == 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return alpha * constants::gamma_e * b_hard * wall_width / denom;
}

double DwmParams::analytic_critical_current() const {
  const double u_c = constants::gamma_e * pinning_field * wall_width / beta;
  // Invert drift_velocity(I) = u_c.
  const double u_per_amp = drift_velocity(1.0);
  require(u_per_amp > 0.0, "DwmParams: drift velocity must increase with current");
  return u_c / u_per_amp;
}

DwmParams DwmParams::paper_device() {
  static const DwmParams calibrated = [] {
    DwmParams p;
    p.calibrate_numeric(1.0 * units::uA, 1.5 * units::ns);
    return p;
  }();
  return calibrated;
}

void DwmParams::calibrate(double critical_current, double switch_time_at_2ic) {
  require(critical_current > 0.0, "DwmParams::calibrate: critical current must be positive");
  require(switch_time_at_2ic > 0.0, "DwmParams::calibrate: switch time must be positive");

  // Terminal velocity needed at I = 2 Ic: the wall crosses `length` in the
  // target time while fighting the pinning landscape. Below the Walker
  // limit v = (beta/alpha) * sqrt(u^2 - u_c^2) averaged over a period; at
  // u = 2 u_c that average is sqrt(3) u_c (beta/alpha).
  const double v_needed = length / switch_time_at_2ic;
  const double u_c = v_needed * (alpha / beta) / std::sqrt(3.0);

  // u(I) = eta * P * mu_B * I / (e * Ms * A): solve for eta at I = Ic.
  const double u_per_amp_unit_eta =
      polarization * constants::mu_B / (constants::q_e * ms * cross_section());
  eta_stt = u_c / (u_per_amp_unit_eta * critical_current);

  // Depinning condition u_c = gamma * B_p0 * Delta / beta -> B_p0.
  pinning_field = beta * u_c / (constants::gamma_e * wall_width);
}

void DwmParams::calibrate_numeric(double critical_current, double switch_time_at_2ic) {
  calibrate(critical_current, switch_time_at_2ic);
  // Kinetic depinning puts the simulated threshold below the static
  // estimate; threshold scales ~linearly with pinning strength, so a
  // couple of proportional corrections converge.
  DwmParams cold = *this;
  cold.temperature = 0.0;
  for (int iteration = 0; iteration < 3; ++iteration) {
    const double ic_sim =
        DwmStripe(cold).critical_current(8.0 * critical_current, 60e-9, 0.01 * critical_current);
    const double ratio = critical_current / ic_sim;
    if (std::abs(ratio - 1.0) < 0.03) {
      break;
    }
    cold.pinning_field *= ratio;
  }
  pinning_field = cold.pinning_field;
}

DwmStripe::DwmStripe(const DwmParams& params) : params_(params) {
  require(params.length > 0.0 && params.cross_section() > 0.0,
          "DwmStripe: geometry must be positive");
  require(params.wall_width > 0.0, "DwmStripe: wall width must be positive");
  require(params.alpha > 0.0, "DwmStripe: damping must be positive");
}

void DwmStripe::reset(double position) {
  require(position >= 0.0 && position <= params_.length, "DwmStripe::reset: position outside strip");
  q_ = position;
  psi_ = 0.0;
}

void DwmStripe::derivatives(double q, double psi, double u, double b_thermal, double& dq,
                            double& dpsi) const {
  const double gamma = constants::gamma_e;
  const double delta = params_.wall_width;
  const double alpha = params_.alpha;

  const double b_pin = -params_.pinning_field * std::sin(2.0 * kPi * q / params_.pinning_period);
  const double b_eff = b_pin + b_thermal;

  const double a_term = gamma * b_eff + params_.beta * u / delta;
  const double b_term = 0.5 * gamma * params_.b_hard * std::sin(2.0 * psi) + u / delta;
  const double inv = 1.0 / (1.0 + alpha * alpha);

  dpsi = (a_term - alpha * b_term) * inv;
  dq = delta * (b_term + alpha * a_term) * inv;
}

void DwmStripe::step(double current, double dt, Rng* rng) {
  require(dt > 0.0, "DwmStripe::step: dt must be positive");
  const double u = params_.drift_velocity(current);

  // Thermal easy-axis field, constant across the step (Euler-Maruyama in
  // the noise, RK4 in the drift). Fluctuation-dissipation for the wall
  // volume V_w = A_cs * Delta.
  double b_thermal = 0.0;
  if (params_.temperature > 0.0 && rng != nullptr) {
    const double v_wall = params_.cross_section() * params_.wall_width;
    const double var = 2.0 * params_.alpha * constants::k_B * params_.temperature /
                       (constants::gamma_e * params_.ms * v_wall * dt);
    b_thermal = rng->normal(0.0, std::sqrt(var));
  }

  double k1q;
  double k1p;
  derivatives(q_, psi_, u, b_thermal, k1q, k1p);
  double k2q;
  double k2p;
  derivatives(q_ + 0.5 * dt * k1q, psi_ + 0.5 * dt * k1p, u, b_thermal, k2q, k2p);
  double k3q;
  double k3p;
  derivatives(q_ + 0.5 * dt * k2q, psi_ + 0.5 * dt * k2p, u, b_thermal, k3q, k3p);
  double k4q;
  double k4p;
  derivatives(q_ + dt * k3q, psi_ + dt * k3p, u, b_thermal, k4q, k4p);

  q_ += dt / 6.0 * (k1q + 2.0 * k2q + 2.0 * k3q + k4q);
  psi_ += dt / 6.0 * (k1p + 2.0 * k2p + 2.0 * k3p + k4p);

  // The fixed domains d1/d3 bound the wall inside the free segment.
  q_ = std::clamp(q_, 0.0, params_.length);
}

std::optional<double> DwmStripe::run_until_switched(double current, double t_max, double dt,
                                                    Rng* rng) {
  require(t_max > 0.0, "DwmStripe::run_until_switched: t_max must be positive");
  double t = 0.0;
  while (t < t_max) {
    step(current, dt, rng);
    t += dt;
    if (q_ >= params_.length) {
      return t;
    }
  }
  return std::nullopt;
}

double DwmStripe::critical_current(double i_max, double t_max, double tolerance) const {
  require(i_max > 0.0 && tolerance > 0.0, "DwmStripe::critical_current: bad search bounds");
  double lo = 0.0;
  double hi = i_max;

  const auto switches = [&](double current) {
    DwmStripe trial(params_);
    DwmParams cold = params_;
    cold.temperature = 0.0;
    trial = DwmStripe(cold);
    trial.reset(0.0);
    return trial.run_until_switched(current, t_max).has_value();
  };

  if (!switches(hi)) {
    throw NumericalError("DwmStripe::critical_current: no switching up to i_max");
  }
  while (hi - lo > tolerance) {
    const double mid = 0.5 * (lo + hi);
    if (switches(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace spinsim
