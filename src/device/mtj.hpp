/// \file mtj.hpp
/// Magnetic tunnel junction read-stack model.
///
/// The DWN's free domain d2 is read through an MTJ formed with the fixed
/// magnet m1 (paper Fig. 6): R_parallel ~ 5 kOhm, R_antiparallel ~ 15 kOhm.
/// The reference junction of the read latch sits midway between the two.

#pragma once

#include "core/random.hpp"

namespace spinsim {

/// MTJ resistance parameters.
struct MtjSpec {
  double r_parallel = 5e3;        ///< [Ohm]
  double r_antiparallel = 15e3;   ///< [Ohm]
  double resistance_sigma = 0.0;  ///< device-to-device multiplicative spread

  /// Tunnelling magnetoresistance ratio (Rap - Rp) / Rp.
  double tmr() const { return (r_antiparallel - r_parallel) / r_parallel; }

  /// Midway reference resistance used by the read latch [Ohm].
  double reference_resistance() const { return 0.5 * (r_parallel + r_antiparallel); }
};

/// One MTJ instance with sampled variation.
class Mtj {
 public:
  explicit Mtj(const MtjSpec& spec);
  Mtj(const MtjSpec& spec, Rng& rng);

  const MtjSpec& spec() const { return spec_; }

  /// Resistance for the given free-layer alignment [Ohm].
  double resistance(bool parallel) const;

  /// Read-margin |R_state - R_ref| / R_ref for the given alignment.
  double read_margin(bool parallel) const;

 private:
  MtjSpec spec_;
  double scale_ = 1.0;
};

}  // namespace spinsim
