#include "device/tech45.hpp"

#include <cmath>

#include "core/error.hpp"

namespace spinsim {

double Tech45::sigma_vt(double w, double l) const {
  require(w > 0.0 && l > 0.0, "Tech45::sigma_vt: geometry must be positive");
  return a_vt / std::sqrt(w * l);
}

double Tech45::gate_cap(double w, double l) const {
  require(w > 0.0 && l > 0.0, "Tech45::gate_cap: geometry must be positive");
  return c_gate_per_area * w * l + c_overlap_per_w * w;
}

const Tech45& Tech45::nominal() {
  static const Tech45 instance{};
  return instance;
}

}  // namespace spinsim
