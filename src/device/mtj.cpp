#include "device/mtj.hpp"

#include <cmath>

#include "core/error.hpp"

namespace spinsim {

Mtj::Mtj(const MtjSpec& spec) : spec_(spec) {
  require(spec.r_parallel > 0.0 && spec.r_antiparallel > spec.r_parallel,
          "Mtj: need 0 < r_parallel < r_antiparallel");
}

Mtj::Mtj(const MtjSpec& spec, Rng& rng) : Mtj(spec) {
  if (spec.resistance_sigma > 0.0) {
    scale_ = rng.lognormal_rel(1.0, spec.resistance_sigma);
  }
}

double Mtj::resistance(bool parallel) const {
  return scale_ * (parallel ? spec_.r_parallel : spec_.r_antiparallel);
}

double Mtj::read_margin(bool parallel) const {
  const double r_ref = spec_.reference_resistance();
  return std::abs(resistance(parallel) - r_ref) / r_ref;
}

}  // namespace spinsim
