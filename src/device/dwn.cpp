#include "device/dwn.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "core/units.hpp"

namespace spinsim {

DwnParams DwnParams::from_barrier(double barrier) {
  require(barrier > 0.0, "DwnParams::from_barrier: barrier must be positive");
  DwnParams p;
  p.barrier_kt = barrier;
  // Macrospin STT proportionality I_c ~ alpha E_b / P, anchored at the
  // paper's calibration point: 20 kT -> 1 uA.
  p.i_threshold = 1.0 * units::uA * (barrier / 20.0);
  return p;
}

double DwnParams::switching_delay(double current_magnitude) const {
  require(current_magnitude > i_threshold,
          "DwnParams::switching_delay: current must exceed the threshold");
  return t_switch_ref * i_threshold / (current_magnitude - i_threshold);
}

double DwnParams::thermal_flip_rate(double current_magnitude, double temperature) const {
  (void)temperature;  // barrier_kt is already expressed in units of kT
  const double drive = std::min(current_magnitude / i_threshold, 1.0);
  const double eff_barrier = barrier_kt * (1.0 - drive) * (1.0 - drive);
  return attempt_rate * std::exp(-eff_barrier);
}

DomainWallNeuron::DomainWallNeuron(const DwnParams& params)
    : params_(params), mtj_(params.mtj) {
  require(params.i_threshold > 0.0, "DomainWallNeuron: threshold must be positive");
  require(params.t_switch_ref > 0.0, "DomainWallNeuron: switching time must be positive");
}

void DomainWallNeuron::reset(bool state) {
  state_ = state;
  transit_ = 0.0;
}

bool DomainWallNeuron::apply_current(double current, double dt, Rng* rng) {
  require(dt > 0.0, "DomainWallNeuron::apply_current: dt must be positive");

  const bool toward_one = current > 0.0;
  const double magnitude = std::abs(current);

  if (magnitude > params_.i_threshold) {
    if (toward_one == state_) {
      // Drive reinforces the present state; any partial transit relaxes.
      transit_ = 0.0;
    } else {
      // Wall advances toward the opposite end; switching completes when
      // the accumulated transit reaches 1.
      const double delay = params_.switching_delay(magnitude);
      transit_ += dt / delay;
      if (transit_ >= 1.0) {
        state_ = toward_one;
        transit_ = 0.0;
      }
    }
  } else {
    // Sub-threshold: hysteresis holds the state, except for thermal flips.
    if (rng != nullptr) {
      // The drive lowers the barrier in its own direction only.
      const double assisted =
          (toward_one != state_) ? magnitude : 0.0;
      const double rate = params_.thermal_flip_rate(assisted);
      const double p_flip = -std::expm1(-rate * dt);
      if (rng->bernoulli(p_flip)) {
        state_ = !state_;
        transit_ = 0.0;
      }
    }
  }
  return state_;
}

bool DomainWallNeuron::evaluate(double current) {
  if (current > params_.i_threshold) {
    state_ = true;
    transit_ = 0.0;
  } else if (current < -params_.i_threshold) {
    state_ = false;
    transit_ = 0.0;
  }
  return state_;
}

double DomainWallNeuron::mtj_resistance() const { return mtj_.resistance(state_); }

}  // namespace spinsim
