/// \file dwn.hpp
/// Behavioral domain-wall-neuron model — the "spin neuron".
///
/// This is the statistical device model the paper plugs into its SPICE
/// framework (Fig. 14): terminal behaviour distilled from the LLG physics
/// in llg.hpp. The DWN is a current comparator:
///
///  * net input current > +I_c held for the switching delay  -> state 1
///  * net input current < -I_c held for the switching delay  -> state 0
///  * |I| below threshold: the state is retained (the Fig. 7a hysteresis)
///    except for rare thermally activated flips (Neel-Brown statistics
///    with barrier E_b (1 - I/I_c)^2, E_b = 20 kT for the paper device).
///
/// The threshold scales linearly with the anisotropy barrier
/// (I_c = 1 uA at E_b = 20 kT), which is the knob Fig. 13a sweeps.

#pragma once

#include "core/random.hpp"
#include "device/mtj.hpp"

namespace spinsim {

/// Statistical parameters of one DWN.
struct DwnParams {
  double i_threshold = 1e-6;     ///< critical switching current I_c [A]
  double t_switch_ref = 1.5e-9;  ///< switching delay at I = 2 I_c [s]
  double barrier_kt = 20.0;      ///< E_b / kT of the free domain
  double attempt_rate = 1e9;     ///< Neel-Brown attempt frequency f_0 [1/s]
  double device_resistance = 200.0;  ///< d1 -> d3 metallic path [Ohm]
  MtjSpec mtj;                   ///< read stack

  /// Builds parameters for a device engineered to a given barrier; the
  /// threshold follows the macrospin STT proportionality I_c ~ E_b,
  /// anchored at the paper's point (20 kT -> 1 uA).
  static DwnParams from_barrier(double barrier_kt);

  /// Switching delay for a super-threshold drive |i| > I_c [s]:
  /// t = t_ref * I_c / (|i| - I_c), the wall-transit scaling of the LLG
  /// model (v ~ u - u_c near threshold).
  double switching_delay(double current_magnitude) const;

  /// Thermally activated flip rate at sub-threshold drive [1/s].
  double thermal_flip_rate(double current_magnitude, double temperature = 300.0) const;
};

/// One spin neuron.
class DomainWallNeuron {
 public:
  explicit DomainWallNeuron(const DwnParams& params);

  const DwnParams& params() const { return params_; }

  /// Current logical state: true = free domain parallel to d1 ("1").
  bool state() const { return state_; }

  /// Forces the state (preset/reset between SAR cycles).
  void reset(bool state);

  /// Applies `current` (positive = into d1, toward "1") for `dt` seconds.
  /// Deterministic threshold + delay dynamics; if `rng` is given, thermal
  /// flips and thermally assisted switching are sampled. Returns the state
  /// after the window.
  bool apply_current(double current, double dt, Rng* rng = nullptr);

  /// Quasi-static evaluation used for transfer-curve sweeps: the current
  /// is held long enough that any super-threshold drive completes.
  bool evaluate(double current);

  /// MTJ read resistance in the present state [Ohm]. The free domain is
  /// parallel to the sensing magnet m1 when the state is `1`.
  double mtj_resistance() const;

  /// Fraction of wall transit completed for a partial drive (diagnostics).
  double transit_fraction() const { return transit_; }

 private:
  DwnParams params_;
  Mtj mtj_;
  bool state_ = false;
  double transit_ = 0.0;  // 0 = at the `state_` end; 1 = switched
};

}  // namespace spinsim
