#include "device/mosfet.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace spinsim {

namespace {
double nominal_vt(const MosGeometry& g, const Tech45& tech) {
  return g.type == MosType::kNmos ? tech.vt_n : tech.vt_p;
}
double kprime(const MosGeometry& g, const Tech45& tech) {
  return g.type == MosType::kNmos ? tech.kp_n : tech.kp_p;
}
double lambda(const MosGeometry& g, const Tech45& tech) {
  // Channel-length modulation weakens with longer channels.
  const double base = g.type == MosType::kNmos ? tech.lambda_n : tech.lambda_p;
  return base * (tech.l_min / g.l);
}
}  // namespace

Mosfet::Mosfet(const MosGeometry& geometry, const Tech45& tech)
    : geometry_(geometry), tech_(&tech), vt_(nominal_vt(geometry, tech)), kp_factor_(1.0) {
  require(geometry.w > 0.0 && geometry.l > 0.0, "Mosfet: geometry must be positive");
}

Mosfet::Mosfet(const MosGeometry& geometry, Rng& rng, const Tech45& tech,
               double sigma_vt_override)
    : Mosfet(geometry, tech) {
  const double area_sigma = tech.sigma_vt(geometry.w, geometry.l);
  // An override models a *process* whose min-size sigma_VT is the given
  // value; it still improves with sqrt(area).
  double sigma = area_sigma;
  if (sigma_vt_override > 0.0) {
    const double min_area = tech.w_min * tech.l_min;
    sigma = sigma_vt_override * std::sqrt(min_area / (geometry.w * geometry.l));
  }
  vt_ += rng.normal(0.0, sigma);
  const double sigma_beta = tech.a_beta / std::sqrt(geometry.w * geometry.l);
  kp_factor_ = std::max(0.1, 1.0 + rng.normal(0.0, sigma_beta));
}

double Mosfet::drain_current(double vgs, double vds) const {
  require(vgs >= 0.0 && vds >= 0.0, "Mosfet::drain_current: use magnitudes (>= 0)");
  const double vov = vgs - vt_;
  if (vov <= 0.0) {
    return 0.0;  // subthreshold leakage is accounted for in the energy model
  }
  const double kwl = kp_factor_ * kprime(geometry_, *tech_) * geometry_.w / geometry_.l;
  if (vds < vov) {
    return kwl * (vov * vds - 0.5 * vds * vds);
  }
  return 0.5 * kwl * vov * vov * (1.0 + lambda(geometry_, *tech_) * (vds - vov));
}

double Mosfet::output_conductance(double vgs, double vds) const {
  const double vov = vgs - vt_;
  if (vov <= 0.0) {
    return 0.0;
  }
  const double kwl = kp_factor_ * kprime(geometry_, *tech_) * geometry_.w / geometry_.l;
  if (vds < vov) {
    return kwl * (vov - vds);
  }
  return 0.5 * kwl * vov * vov * lambda(geometry_, *tech_);
}

double Mosfet::triode_conductance(double vgs) const {
  const double vov = vgs - vt_;
  if (vov <= 0.0) {
    return 0.0;
  }
  return kp_factor_ * kprime(geometry_, *tech_) * (geometry_.w / geometry_.l) * vov;
}

double Mosfet::saturation_current(double vgs) const {
  return drain_current(vgs, std::max(vgs, 0.0));
}

double Mosfet::gate_cap() const { return tech_->gate_cap(geometry_.w, geometry_.l); }

}  // namespace spinsim
