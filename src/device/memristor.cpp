#include "device/memristor.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace spinsim {

double MemristorSpec::level_conductance(std::size_t level) const {
  require(level < levels, "MemristorSpec::level_conductance: level out of range");
  require(r_min > 0.0 && r_max > r_min, "MemristorSpec: invalid resistance range");
  require(levels >= 2, "MemristorSpec: need at least 2 levels");
  const double t = static_cast<double>(level) / static_cast<double>(levels - 1);
  return g_min() + t * (g_max() - g_min());
}

std::size_t MemristorSpec::weight_to_level(double weight) const {
  const double clamped = std::clamp(weight, 0.0, 1.0);
  const auto level = static_cast<std::size_t>(
      std::lround(clamped * static_cast<double>(levels - 1)));
  return std::min(level, levels - 1);
}

Memristor::Memristor(const MemristorSpec& spec) : spec_(spec), g_(spec.g_min()) {
  require(spec.r_min > 0.0 && spec.r_max > spec.r_min, "Memristor: invalid resistance range");
  if (spec.wear_enabled()) {
    wear_.endurance_limit = spec.endurance_cycles;
  }
}

Memristor::Memristor(const MemristorSpec& spec, Rng& rng) : Memristor(spec) {
  if (spec.d2d_sigma > 0.0) {
    range_scale_ = rng.lognormal_rel(1.0, spec.d2d_sigma);
  }
  if (spec.wear_enabled() && spec.endurance_sigma > 0.0) {
    wear_.endurance_limit = rng.lognormal_rel(spec.endurance_cycles, spec.endurance_sigma);
  }
}

double Memristor::wear_fraction() const {
  if (wear_.endurance_limit <= 0.0) {
    return 0.0;
  }
  return std::min(1.0, static_cast<double>(wear_.write_cycles) / wear_.endurance_limit);
}

void Memristor::fail(Rng& rng) {
  const bool open = rng.bernoulli(spec_.wear_fail_open);
  wear_.health = open ? MemristorHealth::kStuckOpen : MemristorHealth::kStuckShort;
  g_ = open ? spec_.stuck_open_conductance() : spec_.stuck_short_conductance();
}

void Memristor::program(std::size_t level, Rng& rng) {
  // A stuck device still receives the write pulses (the controller
  // cannot tell without a verify-read), but its conductance no longer
  // responds.
  spec_.level_conductance(level);  // validate even when stuck
  level_ = level;
  ++wear_.write_cycles;
  if (worn_out()) {
    return;
  }
  if (spec_.wear_enabled() &&
      static_cast<double>(wear_.write_cycles) > wear_.endurance_limit) {
    fail(rng);
    return;
  }

  double target = spec_.level_conductance(level) * range_scale_;
  double sigma = spec_.write_sigma;
  if (spec_.wear_enabled()) {
    // Filament degradation: the realised target drifts toward the middle
    // of the conductance window (the programmable range closes up) and
    // writes land less precisely as cycles accumulate.
    const double w = wear_fraction();
    const double g_mid = 0.5 * (spec_.g_min() + spec_.g_max()) * range_scale_;
    target += spec_.wear_drift * w * (g_mid - target);
    sigma *= 1.0 + spec_.wear_sigma_growth * w;
  }
  double realised = target;
  if (sigma > 0.0) {
    realised = rng.lognormal_rel(target, sigma);
  }
  // A real write loop verifies against the programmable window.
  g_ = std::clamp(realised, 0.25 * spec_.g_min(), 4.0 * spec_.g_max());
}

void Memristor::program_ideal(std::size_t level) {
  spec_.level_conductance(level);  // validate even when stuck
  level_ = level;
  ++wear_.write_cycles;
  if (worn_out()) {
    return;
  }
  g_ = spec_.level_conductance(level) * range_scale_;
}

void Memristor::program_weight(double weight, Rng& rng) {
  program(spec_.weight_to_level(weight), rng);
}

void Memristor::restore(std::size_t level, double conductance) {
  require(conductance > 0.0, "Memristor::restore: conductance must be positive");
  spec_.level_conductance(level);  // validate
  if (worn_out()) {
    return;  // the stuck signature wins over any recorded state
  }
  level_ = level;
  g_ = conductance;
}

void Memristor::set_wear(const MemristorWear& wear) {
  wear_ = wear;
  if (wear_.health == MemristorHealth::kStuckOpen) {
    g_ = spec_.stuck_open_conductance();
  } else if (wear_.health == MemristorHealth::kStuckShort) {
    g_ = spec_.stuck_short_conductance();
  }
}

}  // namespace spinsim
