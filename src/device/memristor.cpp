#include "device/memristor.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace spinsim {

double MemristorSpec::level_conductance(std::size_t level) const {
  require(level < levels, "MemristorSpec::level_conductance: level out of range");
  require(r_min > 0.0 && r_max > r_min, "MemristorSpec: invalid resistance range");
  require(levels >= 2, "MemristorSpec: need at least 2 levels");
  const double t = static_cast<double>(level) / static_cast<double>(levels - 1);
  return g_min() + t * (g_max() - g_min());
}

std::size_t MemristorSpec::weight_to_level(double weight) const {
  const double clamped = std::clamp(weight, 0.0, 1.0);
  const auto level = static_cast<std::size_t>(
      std::lround(clamped * static_cast<double>(levels - 1)));
  return std::min(level, levels - 1);
}

Memristor::Memristor(const MemristorSpec& spec) : spec_(spec), g_(spec.g_min()) {
  require(spec.r_min > 0.0 && spec.r_max > spec.r_min, "Memristor: invalid resistance range");
}

Memristor::Memristor(const MemristorSpec& spec, Rng& rng) : Memristor(spec) {
  if (spec.d2d_sigma > 0.0) {
    range_scale_ = rng.lognormal_rel(1.0, spec.d2d_sigma);
  }
}

void Memristor::program(std::size_t level, Rng& rng) {
  const double target = spec_.level_conductance(level) * range_scale_;
  double realised = target;
  if (spec_.write_sigma > 0.0) {
    realised = rng.lognormal_rel(target, spec_.write_sigma);
  }
  // A real write loop verifies against the programmable window.
  g_ = std::clamp(realised, 0.25 * spec_.g_min(), 4.0 * spec_.g_max());
  level_ = level;
}

void Memristor::program_ideal(std::size_t level) {
  g_ = spec_.level_conductance(level) * range_scale_;
  level_ = level;
}

void Memristor::program_weight(double weight, Rng& rng) {
  program(spec_.weight_to_level(weight), rng);
}

}  // namespace spinsim
