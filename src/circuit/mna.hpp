/// \file mna.hpp
/// DC operating point by modified nodal analysis (dense LU).
///
/// Unknowns are the non-ground node voltages followed by the branch
/// currents of the voltage sources. Capacitors are open in DC. Suitable
/// for circuits up to a few thousand nodes; the parasitic crossbar uses
/// the sparse ResistiveNetwork fast path instead.

#pragma once

#include <vector>

#include "circuit/netlist.hpp"
#include "core/matrix.hpp"

namespace spinsim {

/// Result of a DC operating-point analysis.
class DcSolution {
 public:
  DcSolution(std::vector<double> node_voltages, std::vector<double> source_currents)
      : node_voltages_(std::move(node_voltages)), source_currents_(std::move(source_currents)) {}

  /// Voltage of node `n` relative to ground.
  double voltage(NodeId n) const;

  /// Voltage difference v(a) - v(b).
  double voltage(NodeId a, NodeId b) const { return voltage(a) - voltage(b); }

  /// Current through voltage source `index` (positive flowing p -> n
  /// inside the source, i.e. the current delivered out of the p terminal
  /// is -value by passive sign convention).
  double source_current(std::size_t index) const;

  /// Current through a resistor, positive from a to b.
  double resistor_current(const Resistor& r) const {
    return voltage(r.a, r.b) / r.resistance;
  }

  std::size_t node_count() const { return node_voltages_.size(); }

 private:
  std::vector<double> node_voltages_;   // [0] = ground = 0
  std::vector<double> source_currents_;
};

/// Solves the DC operating point of `netlist`. Throws NumericalError when
/// the MNA matrix is singular (floating nodes, voltage-source loops).
DcSolution solve_dc(const Netlist& netlist);

/// Assembles the dense MNA matrix and right-hand side (exposed for tests).
void assemble_mna(const Netlist& netlist, Matrix& a, std::vector<double>& rhs);

}  // namespace spinsim
