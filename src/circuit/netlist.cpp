#include "circuit/netlist.hpp"

namespace spinsim {

NodeId Netlist::add_node(const std::string& label) {
  labels_.push_back(label);
  return labels_.size();  // node ids start at 1; 0 is ground
}

std::string Netlist::node_label(NodeId n) const {
  if (n == kGround) {
    return "gnd";
  }
  require(n < node_count(), "Netlist::node_label: unknown node");
  return labels_[n - 1];
}

void Netlist::check_node(NodeId n, const char* context) const {
  require(n < node_count(), std::string(context) + ": node id out of range");
}

void Netlist::add_resistor(NodeId a, NodeId b, double resistance, std::string name) {
  check_node(a, "add_resistor");
  check_node(b, "add_resistor");
  require(resistance > 0.0, "add_resistor: resistance must be positive");
  require(a != b, "add_resistor: both terminals on the same node");
  resistors_.push_back({a, b, resistance, std::move(name)});
}

void Netlist::add_capacitor(NodeId a, NodeId b, double capacitance, double initial_voltage,
                            std::string name) {
  check_node(a, "add_capacitor");
  check_node(b, "add_capacitor");
  require(capacitance > 0.0, "add_capacitor: capacitance must be positive");
  require(a != b, "add_capacitor: both terminals on the same node");
  capacitors_.push_back({a, b, capacitance, initial_voltage, std::move(name)});
}

void Netlist::add_current_source(NodeId from, NodeId to, double amps, std::string name) {
  check_node(from, "add_current_source");
  check_node(to, "add_current_source");
  current_sources_.push_back({from, to, amps, std::move(name)});
}

std::size_t Netlist::add_voltage_source(NodeId p, NodeId n, double volts, std::string name) {
  check_node(p, "add_voltage_source");
  check_node(n, "add_voltage_source");
  voltage_sources_.push_back({p, n, volts, std::move(name)});
  return voltage_sources_.size() - 1;
}

void Netlist::add_vccs(NodeId a, NodeId b, NodeId cp, NodeId cn, double gm, std::string name) {
  check_node(a, "add_vccs");
  check_node(b, "add_vccs");
  check_node(cp, "add_vccs");
  check_node(cn, "add_vccs");
  vccs_.push_back({a, b, cp, cn, gm, std::move(name)});
}

}  // namespace spinsim
