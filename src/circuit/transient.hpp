/// \file transient.hpp
/// Linear transient analysis (backward Euler) for RC circuits.
///
/// Used to simulate the dynamic CMOS read latch at circuit level: two
/// capacitive branches discharging through the DWN MTJ and the reference
/// MTJ. Capacitors become a conductance C/dt in parallel with a history
/// current (companion model); the constant system matrix is factored once.

#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "circuit/netlist.hpp"
#include "core/lu.hpp"

namespace spinsim {

/// Waveform of a single node across a transient run.
struct TransientTrace {
  std::vector<double> time;                    ///< [s]
  std::vector<std::vector<double>> voltages;   ///< voltages[k][node]

  double at(std::size_t step, NodeId node) const { return voltages[step][node]; }
  std::size_t steps() const { return time.size(); }
};

/// Hook invoked before every step; may rewrite source values (piecewise-
/// constant waveforms). Signature: (time, netlist).
using SourceUpdate = std::function<void(double, Netlist&)>;

/// Backward-Euler transient simulator over a linear netlist.
class TransientSimulator {
 public:
  /// `dt` is the fixed timestep. Source values may change between steps
  /// via the update hook, but topology (R/C placement) is fixed.
  TransientSimulator(Netlist netlist, double dt);

  /// Runs until `t_end`, recording every node voltage at every step.
  /// The initial state honours the capacitors' `initial_voltage`.
  TransientTrace run(double t_end, const SourceUpdate& update = nullptr);

 private:
  void factorize();

  Netlist netlist_;
  double dt_;
  std::size_t n_nodes_ = 0;  // excluding ground
  std::size_t n_vsrc_ = 0;
  std::unique_ptr<LuDecomposition> lu_;
};

}  // namespace spinsim
