/// \file resistive_network.hpp
/// Fast path for large grounded resistive networks (the parasitic crossbar).
///
/// Compared to the general MNA, ideal voltage sources are handled as
/// *Dirichlet nodes*: their voltage is known, so they are eliminated from
/// the unknown set. What remains is a symmetric positive-definite
/// conductance system solved by Jacobi-preconditioned CG. The 128x40
/// crossbar (10k+ unknowns) solves in milliseconds, and consecutive solves
/// of the same topology warm-start from the previous operating point.

#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/cg.hpp"
#include "core/cholesky.hpp"
#include "core/sparse.hpp"

namespace spinsim {

/// A node in a ResistiveNetwork (dense index space, no ground node; use a
/// fixed node at 0 V instead).
using RNode = std::size_t;

/// How solve() computes node voltages.
enum class SolverStrategy {
  kCg,        ///< Jacobi-preconditioned CG (reference iterative path)
  kFactored,  ///< sparse LDL^T factored once, two triangular solves per call
};

/// Large resistive network with known-voltage (Dirichlet) nodes.
class ResistiveNetwork {
 public:
  /// Adds a floating node; returns its id.
  RNode add_node();

  /// Adds `count` floating nodes; returns the id of the first.
  RNode add_nodes(std::size_t count);

  std::size_t node_count() const { return fixed_voltage_.size(); }

  /// Pins node `n` to `volts` (an ideal voltage source to ground).
  void fix_voltage(RNode n, double volts);

  /// True if the node is pinned.
  bool is_fixed(RNode n) const;

  /// Adds a conductance `g` (= 1/R) between nodes a and b.
  void add_conductance(RNode a, RNode b, double g);

  /// Injects `amps` into node n (from an ideal current source to ground).
  void inject_current(RNode n, double amps);

  /// Replaces the injection at node n.
  void set_injection(RNode n, double amps);

  /// Clears all current injections (conductances and pins stay).
  void clear_injections();

  /// Selects the algorithm solve() dispatches to. Switching strategy
  /// never changes the answer beyond solver tolerance; kFactored pays a
  /// one-time factorization, then each solve is two triangular solves.
  void set_solver(SolverStrategy strategy) { strategy_ = strategy; }
  SolverStrategy solver() const { return strategy_; }

  /// Solves for all node voltages using the selected strategy. Results
  /// are cached; re-solving after only injection changes reuses the
  /// factorised structure (and, for CG, the last solution as warm start).
  const std::vector<double>& solve(const CgOptions& options = {});

  /// Forces the CG path regardless of the selected strategy.
  const std::vector<double>& solve_cg(const CgOptions& options = {});

  /// Forces the direct path: factorizes lazily, then back-substitutes.
  const std::vector<double>& solve_factored();

  /// Eagerly computes the LDL^T factor of the reduced system (no-op if
  /// already current). Called lazily by solve_factored().
  void factorize();

  /// Nonzeros in the cached LDL^T factor (0 before factorize()).
  std::size_t factor_nnz() const { return ldlt_.factor_nnz(); }

  /// Reciprocity vector of node `observe`: w[n] = d v(observe) / d I(n)
  /// for every free node n (zero at pinned nodes; the whole vector is
  /// zero if `observe` itself is pinned). One factored solve; this is
  /// what lets a crossbar build its transfer operator with one solve per
  /// *output* instead of one per input.
  std::vector<double> influence(RNode observe);

  /// Voltage of node n after solve().
  double voltage(RNode n) const;

  /// Current flowing a -> b through the conductance element `index`
  /// (in insertion order) after solve().
  double element_current(std::size_t index) const;

  /// Total current delivered by the pin on node n (positive out of the
  /// source into the network) after solve().
  double pin_current(RNode n) const;

  /// Number of conductance elements.
  std::size_t element_count() const { return elements_.size(); }

  /// Statistics from the last solve.
  const CgResult& last_result() const { return last_result_; }

 private:
  struct Element {
    RNode a;
    RNode b;
    double g;
  };

  void build_system();
  std::vector<double> assemble_rhs() const;
  void scatter_solution(const std::vector<double>& reduced);

  std::vector<std::optional<double>> fixed_voltage_;
  std::vector<Element> elements_;
  std::vector<double> injections_;

  // Cached reduced system.
  bool structure_dirty_ = true;
  std::vector<std::ptrdiff_t> reduced_index_;  // node -> unknown index or -1
  CsrMatrix reduced_a_;
  std::vector<double> dirichlet_rhs_;  // contribution of pinned nodes
  std::vector<double> solution_;       // full node voltages
  std::vector<double> warm_start_;     // previous reduced solution
  CgResult last_result_;
  bool solved_ = false;

  // Per-node incident-element index (CSR over nodes), built with the
  // system so pin_current() stops scanning every element.
  std::vector<std::size_t> node_elem_ptr_;
  std::vector<std::size_t> node_elem_idx_;

  // Direct-solver state.
  SolverStrategy strategy_ = SolverStrategy::kCg;
  SparseLdlt ldlt_;
  bool factor_dirty_ = true;
};

}  // namespace spinsim
