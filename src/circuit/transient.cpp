#include "circuit/transient.hpp"

#include <memory>

#include "circuit/mna.hpp"

namespace spinsim {

TransientSimulator::TransientSimulator(Netlist netlist, double dt)
    : netlist_(std::move(netlist)), dt_(dt) {
  require(dt_ > 0.0, "TransientSimulator: dt must be positive");
  n_nodes_ = netlist_.node_count() - 1;
  n_vsrc_ = netlist_.voltage_sources().size();
  factorize();
}

void TransientSimulator::factorize() {
  // Assemble the DC MNA matrix, then add the capacitor companion
  // conductances (C/dt between the capacitor terminals).
  Matrix a;
  std::vector<double> rhs_unused;
  assemble_mna(netlist_, a, rhs_unused);

  const auto row_of = [](NodeId n) { return n - 1; };
  for (const auto& c : netlist_.capacitors()) {
    const double g = c.capacitance / dt_;
    if (c.a != kGround) {
      a(row_of(c.a), row_of(c.a)) += g;
    }
    if (c.b != kGround) {
      a(row_of(c.b), row_of(c.b)) += g;
    }
    if (c.a != kGround && c.b != kGround) {
      a(row_of(c.a), row_of(c.b)) -= g;
      a(row_of(c.b), row_of(c.a)) -= g;
    }
  }
  lu_ = std::make_unique<LuDecomposition>(std::move(a));
}

TransientTrace TransientSimulator::run(double t_end, const SourceUpdate& update) {
  require(t_end > 0.0, "TransientSimulator::run: t_end must be positive");

  const auto row_of = [](NodeId n) { return n - 1; };
  const std::size_t dim = n_nodes_ + n_vsrc_;

  // State: capacitor voltages v(a)-v(b) from the previous step.
  std::vector<double> cap_voltage;
  cap_voltage.reserve(netlist_.capacitors().size());
  for (const auto& c : netlist_.capacitors()) {
    cap_voltage.push_back(c.initial_voltage);
  }

  TransientTrace trace;
  const auto n_steps = static_cast<std::size_t>(t_end / dt_ + 0.5);
  trace.time.reserve(n_steps + 1);
  trace.voltages.reserve(n_steps + 1);

  // Record t = 0 state as seen through the capacitors' initial condition;
  // node voltages at t=0 are approximated by the first solve below, so we
  // start the trace at the first step.
  std::vector<double> rhs(dim, 0.0);

  for (std::size_t step = 1; step <= n_steps; ++step) {
    const double t = static_cast<double>(step) * dt_;
    if (update) {
      update(t, netlist_);
    }

    // Rebuild only the RHS: current sources, voltage sources, capacitor
    // history currents.
    rhs.assign(dim, 0.0);
    for (const auto& s : netlist_.current_sources()) {
      if (s.a != kGround) {
        rhs[row_of(s.a)] -= s.value;
      }
      if (s.b != kGround) {
        rhs[row_of(s.b)] += s.value;
      }
    }
    for (std::size_t k = 0; k < n_vsrc_; ++k) {
      rhs[n_nodes_ + k] = netlist_.voltage_sources()[k].value;
    }
    for (std::size_t k = 0; k < netlist_.capacitors().size(); ++k) {
      const auto& c = netlist_.capacitors()[k];
      const double hist = (c.capacitance / dt_) * cap_voltage[k];
      if (c.a != kGround) {
        rhs[row_of(c.a)] += hist;
      }
      if (c.b != kGround) {
        rhs[row_of(c.b)] -= hist;
      }
    }

    const std::vector<double> x = lu_->solve(rhs);

    std::vector<double> node_v(netlist_.node_count(), 0.0);
    for (std::size_t i = 0; i < n_nodes_; ++i) {
      node_v[i + 1] = x[i];
    }
    for (std::size_t k = 0; k < netlist_.capacitors().size(); ++k) {
      const auto& c = netlist_.capacitors()[k];
      cap_voltage[k] = node_v[c.a] - node_v[c.b];
    }

    trace.time.push_back(t);
    trace.voltages.push_back(std::move(node_v));
  }
  return trace;
}

}  // namespace spinsim
