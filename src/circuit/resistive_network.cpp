#include "circuit/resistive_network.hpp"

#include "core/error.hpp"

namespace spinsim {

RNode ResistiveNetwork::add_node() {
  fixed_voltage_.emplace_back(std::nullopt);
  injections_.push_back(0.0);
  structure_dirty_ = true;
  solved_ = false;
  return fixed_voltage_.size() - 1;
}

RNode ResistiveNetwork::add_nodes(std::size_t count) {
  require(count > 0, "ResistiveNetwork::add_nodes: count must be positive");
  const RNode first = fixed_voltage_.size();
  fixed_voltage_.resize(fixed_voltage_.size() + count, std::nullopt);
  injections_.resize(injections_.size() + count, 0.0);
  structure_dirty_ = true;
  solved_ = false;
  return first;
}

void ResistiveNetwork::fix_voltage(RNode n, double volts) {
  require(n < node_count(), "ResistiveNetwork::fix_voltage: unknown node");
  fixed_voltage_[n] = volts;
  structure_dirty_ = true;
  solved_ = false;
}

bool ResistiveNetwork::is_fixed(RNode n) const {
  require(n < node_count(), "ResistiveNetwork::is_fixed: unknown node");
  return fixed_voltage_[n].has_value();
}

void ResistiveNetwork::add_conductance(RNode a, RNode b, double g) {
  require(a < node_count() && b < node_count(), "ResistiveNetwork::add_conductance: unknown node");
  require(a != b, "ResistiveNetwork::add_conductance: self-loop");
  require(g > 0.0, "ResistiveNetwork::add_conductance: conductance must be positive");
  elements_.push_back({a, b, g});
  structure_dirty_ = true;
  solved_ = false;
}

void ResistiveNetwork::inject_current(RNode n, double amps) {
  require(n < node_count(), "ResistiveNetwork::inject_current: unknown node");
  injections_[n] += amps;
  solved_ = false;
}

void ResistiveNetwork::set_injection(RNode n, double amps) {
  require(n < node_count(), "ResistiveNetwork::set_injection: unknown node");
  injections_[n] = amps;
  solved_ = false;
}

void ResistiveNetwork::clear_injections() {
  injections_.assign(injections_.size(), 0.0);
  solved_ = false;
}

void ResistiveNetwork::build_system() {
  const std::size_t n = node_count();

  // Unknowns = nodes without a pinned voltage.
  reduced_index_.assign(n, -1);
  std::size_t n_unknown = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!fixed_voltage_[i].has_value()) {
      reduced_index_[i] = static_cast<std::ptrdiff_t>(n_unknown++);
    }
  }
  require(n_unknown < n || n == 0,
          "ResistiveNetwork::solve: at least one node must be pinned (no ground reference)");

  CooBuilder builder(n_unknown, n_unknown);
  dirichlet_rhs_.assign(n_unknown, 0.0);

  for (const auto& e : elements_) {
    const std::ptrdiff_t ia = reduced_index_[e.a];
    const std::ptrdiff_t ib = reduced_index_[e.b];
    if (ia >= 0) {
      builder.add(static_cast<std::size_t>(ia), static_cast<std::size_t>(ia), e.g);
    }
    if (ib >= 0) {
      builder.add(static_cast<std::size_t>(ib), static_cast<std::size_t>(ib), e.g);
    }
    if (ia >= 0 && ib >= 0) {
      builder.add(static_cast<std::size_t>(ia), static_cast<std::size_t>(ib), -e.g);
      builder.add(static_cast<std::size_t>(ib), static_cast<std::size_t>(ia), -e.g);
    } else if (ia >= 0) {
      // b pinned: conductance to a known voltage becomes a RHS term.
      dirichlet_rhs_[static_cast<std::size_t>(ia)] += e.g * *fixed_voltage_[e.b];
    } else if (ib >= 0) {
      dirichlet_rhs_[static_cast<std::size_t>(ib)] += e.g * *fixed_voltage_[e.a];
    }
  }

  reduced_a_ = builder.compress();
  warm_start_.assign(n_unknown, 0.0);

  // Per-node incident-element index (counting sort over endpoints).
  node_elem_ptr_.assign(n + 1, 0);
  for (const auto& e : elements_) {
    ++node_elem_ptr_[e.a + 1];
    ++node_elem_ptr_[e.b + 1];
  }
  for (std::size_t i = 0; i < n; ++i) {
    node_elem_ptr_[i + 1] += node_elem_ptr_[i];
  }
  node_elem_idx_.assign(node_elem_ptr_[n], 0);
  {
    std::vector<std::size_t> fill = node_elem_ptr_;
    for (std::size_t k = 0; k < elements_.size(); ++k) {
      node_elem_idx_[fill[elements_[k].a]++] = k;
      node_elem_idx_[fill[elements_[k].b]++] = k;
    }
  }

  structure_dirty_ = false;
  factor_dirty_ = true;
}

std::vector<double> ResistiveNetwork::assemble_rhs() const {
  std::vector<double> rhs = dirichlet_rhs_;
  for (std::size_t i = 0; i < node_count(); ++i) {
    const std::ptrdiff_t ri = reduced_index_[i];
    if (ri >= 0) {
      rhs[static_cast<std::size_t>(ri)] += injections_[i];
    }
  }
  return rhs;
}

void ResistiveNetwork::scatter_solution(const std::vector<double>& reduced) {
  solution_.assign(node_count(), 0.0);
  for (std::size_t i = 0; i < node_count(); ++i) {
    const std::ptrdiff_t ri = reduced_index_[i];
    solution_[i] = (ri >= 0) ? reduced[static_cast<std::size_t>(ri)] : *fixed_voltage_[i];
  }
  solved_ = true;
}

const std::vector<double>& ResistiveNetwork::solve(const CgOptions& options) {
  if (strategy_ == SolverStrategy::kFactored) {
    return solve_factored();
  }
  return solve_cg(options);
}

const std::vector<double>& ResistiveNetwork::solve_cg(const CgOptions& options) {
  if (structure_dirty_) {
    build_system();
  }

  std::vector<double> rhs = assemble_rhs();
  CgResult result =
      conjugate_gradient(reduced_a_, rhs, options, warm_start_.empty() ? nullptr : &warm_start_);
  if (!result.converged) {
    throw NumericalError("ResistiveNetwork::solve: CG failed to converge (residual " +
                         std::to_string(result.residual) + ")");
  }
  warm_start_ = result.x;

  scatter_solution(result.x);
  last_result_ = std::move(result);
  last_result_.x.clear();  // full solution lives in solution_
  return solution_;
}

void ResistiveNetwork::factorize() {
  if (structure_dirty_) {
    build_system();
  }
  if (!factor_dirty_) {
    return;
  }
  ldlt_.factorize(reduced_a_);
  factor_dirty_ = false;
}

const std::vector<double>& ResistiveNetwork::solve_factored() {
  factorize();
  const std::vector<double> rhs = assemble_rhs();
  std::vector<double> x;
  ldlt_.solve_into(rhs, x);

  scatter_solution(x);
  last_result_ = CgResult{};
  last_result_.converged = true;
  last_result_.iterations = 0;
  return solution_;
}

std::vector<double> ResistiveNetwork::influence(RNode observe) {
  require(observe < node_count(), "ResistiveNetwork::influence: unknown node");
  factorize();
  std::vector<double> out(node_count(), 0.0);
  const std::ptrdiff_t ro = reduced_index_[observe];
  if (ro < 0) {
    return out;  // pinned node: voltage is insensitive to any injection
  }
  std::vector<double> e(reduced_a_.rows(), 0.0);
  e[static_cast<std::size_t>(ro)] = 1.0;
  std::vector<double> w;
  ldlt_.solve_into(e, w);
  // A is symmetric, so (A^-1 e_obs)[n] = dv(observe)/dI(n).
  for (std::size_t i = 0; i < node_count(); ++i) {
    const std::ptrdiff_t ri = reduced_index_[i];
    if (ri >= 0) {
      out[i] = w[static_cast<std::size_t>(ri)];
    }
  }
  return out;
}

double ResistiveNetwork::voltage(RNode n) const {
  require(solved_, "ResistiveNetwork::voltage: call solve() first");
  require(n < node_count(), "ResistiveNetwork::voltage: unknown node");
  return solution_[n];
}

double ResistiveNetwork::element_current(std::size_t index) const {
  require(solved_, "ResistiveNetwork::element_current: call solve() first");
  require(index < elements_.size(), "ResistiveNetwork::element_current: unknown element");
  const auto& e = elements_[index];
  return (solution_[e.a] - solution_[e.b]) * e.g;
}

double ResistiveNetwork::pin_current(RNode n) const {
  require(solved_, "ResistiveNetwork::pin_current: call solve() first");
  require(n < node_count(), "ResistiveNetwork::pin_current: unknown node");
  require(fixed_voltage_[n].has_value(), "ResistiveNetwork::pin_current: node is not pinned");
  // Sum of currents leaving the pinned node through its incident
  // conductances, minus any injection, equals the source current.
  double out = 0.0;
  for (std::size_t p = node_elem_ptr_[n]; p < node_elem_ptr_[n + 1]; ++p) {
    const auto& e = elements_[node_elem_idx_[p]];
    const RNode other = (e.a == n) ? e.b : e.a;
    out += (solution_[n] - solution_[other]) * e.g;
  }
  return out - injections_[n];
}

}  // namespace spinsim
