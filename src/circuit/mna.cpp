#include "circuit/mna.hpp"

#include "core/lu.hpp"

namespace spinsim {

double DcSolution::voltage(NodeId n) const {
  require(n < node_voltages_.size(), "DcSolution::voltage: unknown node");
  return node_voltages_[n];
}

double DcSolution::source_current(std::size_t index) const {
  require(index < source_currents_.size(), "DcSolution::source_current: unknown source");
  return source_currents_[index];
}

void assemble_mna(const Netlist& netlist, Matrix& a, std::vector<double>& rhs) {
  const std::size_t n_nodes = netlist.node_count() - 1;  // excluding ground
  const std::size_t n_vsrc = netlist.voltage_sources().size();
  const std::size_t dim = n_nodes + n_vsrc;

  a = Matrix(dim, dim, 0.0);
  rhs.assign(dim, 0.0);

  // Map a NodeId to its matrix row (ground contributes nothing).
  const auto row_of = [](NodeId n) { return n - 1; };

  for (const auto& r : netlist.resistors()) {
    const double g = 1.0 / r.resistance;
    if (r.a != kGround) {
      a(row_of(r.a), row_of(r.a)) += g;
    }
    if (r.b != kGround) {
      a(row_of(r.b), row_of(r.b)) += g;
    }
    if (r.a != kGround && r.b != kGround) {
      a(row_of(r.a), row_of(r.b)) -= g;
      a(row_of(r.b), row_of(r.a)) -= g;
    }
  }

  for (const auto& s : netlist.current_sources()) {
    // Current flows from a to b through the source: it leaves node a and
    // enters node b.
    if (s.a != kGround) {
      rhs[row_of(s.a)] -= s.value;
    }
    if (s.b != kGround) {
      rhs[row_of(s.b)] += s.value;
    }
  }

  for (const auto& g : netlist.vccs()) {
    // i(a->b) = gm * (v(cp) - v(cn))
    const auto stamp = [&](NodeId node, NodeId ctrl, double sign) {
      if (node != kGround && ctrl != kGround) {
        a(row_of(node), row_of(ctrl)) += sign * g.gm;
      }
    };
    stamp(g.a, g.cp, +1.0);
    stamp(g.a, g.cn, -1.0);
    stamp(g.b, g.cp, -1.0);
    stamp(g.b, g.cn, +1.0);
  }

  for (std::size_t k = 0; k < n_vsrc; ++k) {
    const auto& v = netlist.voltage_sources()[k];
    const std::size_t cur_row = n_nodes + k;
    if (v.p != kGround) {
      a(row_of(v.p), cur_row) += 1.0;
      a(cur_row, row_of(v.p)) += 1.0;
    }
    if (v.n != kGround) {
      a(row_of(v.n), cur_row) -= 1.0;
      a(cur_row, row_of(v.n)) -= 1.0;
    }
    rhs[cur_row] = v.value;
  }
}

DcSolution solve_dc(const Netlist& netlist) {
  Matrix a;
  std::vector<double> rhs;
  assemble_mna(netlist, a, rhs);

  const std::vector<double> x = solve_dense(a, rhs);

  const std::size_t n_nodes = netlist.node_count() - 1;
  std::vector<double> node_voltages(netlist.node_count(), 0.0);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    node_voltages[i + 1] = x[i];
  }
  std::vector<double> source_currents(netlist.voltage_sources().size(), 0.0);
  for (std::size_t k = 0; k < source_currents.size(); ++k) {
    source_currents[k] = x[n_nodes + k];
  }
  return DcSolution(std::move(node_voltages), std::move(source_currents));
}

}  // namespace spinsim
