/// \file netlist.hpp
/// Linear circuit netlist: the input format of spinsim's SPICE-lite.
///
/// Node 0 is ground. Elements are linear (R, C, independent I and V
/// sources, VCCS); non-linear devices (MOSFETs, memristors, DWNs) are
/// linearised by their owning models before stamping, which is all the
/// crossbar/latch analyses in this project require.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/error.hpp"

namespace spinsim {

/// Index of a circuit node. Node 0 is always ground.
using NodeId = std::size_t;
inline constexpr NodeId kGround = 0;

/// Two-terminal resistor.
struct Resistor {
  NodeId a = kGround;
  NodeId b = kGround;
  double resistance = 0.0;  ///< [Ohm], must be > 0
  std::string name;
};

/// Two-terminal capacitor (used by transient analysis only; open in DC).
struct Capacitor {
  NodeId a = kGround;
  NodeId b = kGround;
  double capacitance = 0.0;  ///< [F], must be > 0
  double initial_voltage = 0.0;  ///< v(a) - v(b) at t = 0
  std::string name;
};

/// Independent current source driving `value` amps from node a into node b
/// (current flows a -> b through the source).
struct CurrentSource {
  NodeId a = kGround;
  NodeId b = kGround;
  double value = 0.0;  ///< [A]
  std::string name;
};

/// Independent voltage source; v(p) - v(n) = value.
struct VoltageSource {
  NodeId p = kGround;
  NodeId n = kGround;
  double value = 0.0;  ///< [V]
  std::string name;
};

/// Voltage-controlled current source: i(a->b) = gm * (v(cp) - v(cn)).
/// Used for small-signal MOSFET models.
struct Vccs {
  NodeId a = kGround;
  NodeId b = kGround;
  NodeId cp = kGround;
  NodeId cn = kGround;
  double gm = 0.0;  ///< [S]
  std::string name;
};

/// A linear circuit description.
class Netlist {
 public:
  /// Creates a netlist with a ground node only.
  Netlist() = default;

  /// Allocates and returns a fresh node id.
  NodeId add_node(const std::string& label = {});

  /// Number of nodes including ground.
  std::size_t node_count() const { return labels_.size() + 1; }

  /// Label of node `n` (empty if never labelled; "gnd" for ground).
  std::string node_label(NodeId n) const;

  void add_resistor(NodeId a, NodeId b, double resistance, std::string name = {});
  void add_capacitor(NodeId a, NodeId b, double capacitance, double initial_voltage = 0.0,
                     std::string name = {});
  void add_current_source(NodeId from, NodeId to, double amps, std::string name = {});
  /// Returns the index of the created source (for current readback).
  std::size_t add_voltage_source(NodeId p, NodeId n, double volts, std::string name = {});
  void add_vccs(NodeId a, NodeId b, NodeId cp, NodeId cn, double gm, std::string name = {});

  const std::vector<Resistor>& resistors() const { return resistors_; }
  const std::vector<Capacitor>& capacitors() const { return capacitors_; }
  const std::vector<CurrentSource>& current_sources() const { return current_sources_; }
  const std::vector<VoltageSource>& voltage_sources() const { return voltage_sources_; }
  const std::vector<Vccs>& vccs() const { return vccs_; }

  /// Mutable access used by sweeps that update source values in place.
  std::vector<CurrentSource>& mutable_current_sources() { return current_sources_; }
  std::vector<VoltageSource>& mutable_voltage_sources() { return voltage_sources_; }

 private:
  void check_node(NodeId n, const char* context) const;

  std::vector<std::string> labels_;  // labels_[i] is node i+1
  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<CurrentSource> current_sources_;
  std::vector<VoltageSource> voltage_sources_;
  std::vector<Vccs> vccs_;
};

}  // namespace spinsim
