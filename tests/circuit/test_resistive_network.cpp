#include <gtest/gtest.h>

#include "circuit/mna.hpp"
#include "circuit/resistive_network.hpp"
#include "core/random.hpp"

namespace spinsim {
namespace {

TEST(ResistiveNetwork, SimpleDivider) {
  ResistiveNetwork net;
  const RNode top = net.add_node();
  const RNode mid = net.add_node();
  const RNode bot = net.add_node();
  net.fix_voltage(top, 1.0);
  net.fix_voltage(bot, 0.0);
  net.add_conductance(top, mid, 1.0 / 1e3);
  net.add_conductance(mid, bot, 1.0 / 3e3);
  net.solve();
  EXPECT_NEAR(net.voltage(mid), 0.75, 1e-9);
}

TEST(ResistiveNetwork, CurrentInjection) {
  ResistiveNetwork net;
  const RNode n = net.add_node();
  const RNode gnd = net.add_node();
  net.fix_voltage(gnd, 0.0);
  net.add_conductance(n, gnd, 1.0 / 500.0);
  net.inject_current(n, 2e-3);
  net.solve();
  EXPECT_NEAR(net.voltage(n), 1.0, 1e-9);
}

TEST(ResistiveNetwork, PinCurrentBalancesInjection) {
  ResistiveNetwork net;
  const RNode n = net.add_node();
  const RNode gnd = net.add_node();
  net.fix_voltage(gnd, 0.0);
  net.add_conductance(n, gnd, 1e-3);
  net.inject_current(n, 1e-3);
  net.solve();
  // Everything injected must exit through the pin.
  EXPECT_NEAR(net.pin_current(gnd), -1e-3, 1e-12);
}

TEST(ResistiveNetwork, ElementCurrentSign) {
  ResistiveNetwork net;
  const RNode a = net.add_node();
  const RNode b = net.add_node();
  net.fix_voltage(a, 1.0);
  net.fix_voltage(b, 0.0);
  net.add_conductance(a, b, 0.01);
  net.solve();
  EXPECT_NEAR(net.element_current(0), 0.01, 1e-12);  // flows a -> b
}

TEST(ResistiveNetwork, RequiresAPin) {
  ResistiveNetwork net;
  const RNode a = net.add_node();
  const RNode b = net.add_node();
  net.add_conductance(a, b, 1.0);
  EXPECT_THROW(net.solve(), InvalidArgument);
}

TEST(ResistiveNetwork, InjectionUpdatesWithoutRebuild) {
  ResistiveNetwork net;
  const RNode n = net.add_node();
  const RNode gnd = net.add_node();
  net.fix_voltage(gnd, 0.0);
  net.add_conductance(n, gnd, 1e-3);
  net.set_injection(n, 1e-3);
  net.solve();
  EXPECT_NEAR(net.voltage(n), 1.0, 1e-9);
  net.set_injection(n, 3e-3);
  net.solve();
  EXPECT_NEAR(net.voltage(n), 3.0, 1e-9);
  net.clear_injections();
  net.solve();
  EXPECT_NEAR(net.voltage(n), 0.0, 1e-9);
}

TEST(ResistiveNetwork, MultipleDirichletLevels) {
  // Node between 2 V and 1 V rails through equal conductances sits at 1.5 V.
  ResistiveNetwork net;
  const RNode hi = net.add_node();
  const RNode lo = net.add_node();
  const RNode mid = net.add_node();
  net.fix_voltage(hi, 2.0);
  net.fix_voltage(lo, 1.0);
  net.add_conductance(hi, mid, 1e-3);
  net.add_conductance(lo, mid, 1e-3);
  net.solve();
  EXPECT_NEAR(net.voltage(mid), 1.5, 1e-9);
}

/// Property: the reduced-system solve agrees with the dense MNA on random
/// grounded resistor networks.
class ResistiveVsMna : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ResistiveVsMna, VoltagesAgree) {
  const std::size_t n = GetParam();
  Rng rng(500 + n);

  Netlist mna;
  ResistiveNetwork fast;
  std::vector<NodeId> mna_nodes;
  std::vector<RNode> fast_nodes;
  for (std::size_t i = 0; i < n; ++i) {
    mna_nodes.push_back(mna.add_node());
    fast_nodes.push_back(fast.add_node());
  }
  const RNode fast_gnd = fast.add_node();
  fast.fix_voltage(fast_gnd, 0.0);

  // Random connected-ish topology: chain + random chords + ground leaks.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double r = rng.uniform(100.0, 10e3);
    mna.add_resistor(mna_nodes[i], mna_nodes[i + 1], r);
    fast.add_conductance(fast_nodes[i], fast_nodes[i + 1], 1.0 / r);
  }
  for (std::size_t k = 0; k < n; ++k) {
    const auto i = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    const auto j = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    if (i == j) {
      continue;
    }
    const double r = rng.uniform(100.0, 10e3);
    mna.add_resistor(mna_nodes[i], mna_nodes[j], r);
    fast.add_conductance(fast_nodes[i], fast_nodes[j], 1.0 / r);
  }
  for (std::size_t i = 0; i < n; i += 3) {
    const double r = rng.uniform(1e3, 50e3);
    mna.add_resistor(mna_nodes[i], kGround, r);
    fast.add_conductance(fast_nodes[i], fast_gnd, 1.0 / r);
  }
  // Random current injections.
  for (std::size_t i = 0; i < n; i += 2) {
    const double amps = rng.uniform(-1e-3, 1e-3);
    mna.add_current_source(kGround, mna_nodes[i], amps);
    fast.inject_current(fast_nodes[i], amps);
  }

  const DcSolution ref = solve_dc(mna);
  fast.solve();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(fast.voltage(fast_nodes[i]), ref.voltage(mna_nodes[i]), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ResistiveVsMna, ::testing::Values(3, 10, 40, 120));

/// Builds a random grounded resistor network with injections; returns the
/// free node ids (same construction as ResistiveVsMna, without the MNA).
ResistiveNetwork random_grounded_network(std::size_t n, std::uint64_t seed,
                                         std::vector<RNode>* nodes_out) {
  Rng rng(seed);
  ResistiveNetwork net;
  std::vector<RNode> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(net.add_node());
  }
  const RNode gnd = net.add_node();
  net.fix_voltage(gnd, 0.0);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    net.add_conductance(nodes[i], nodes[i + 1], 1.0 / rng.uniform(100.0, 10e3));
  }
  for (std::size_t k = 0; k < n; ++k) {
    const auto i = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    const auto j = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    if (i != j) {
      net.add_conductance(nodes[i], nodes[j], 1.0 / rng.uniform(100.0, 10e3));
    }
  }
  for (std::size_t i = 0; i < n; i += 3) {
    net.add_conductance(nodes[i], gnd, 1.0 / rng.uniform(1e3, 50e3));
  }
  for (std::size_t i = 0; i < n; i += 2) {
    net.inject_current(nodes[i], rng.uniform(-1e-3, 1e-3));
  }
  if (nodes_out != nullptr) {
    *nodes_out = nodes;
  }
  return net;
}

/// Property: the direct LDL^T path agrees with tight-tolerance CG on
/// random grounded networks.
class FactoredVsCg : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FactoredVsCg, VoltagesAgree) {
  const std::size_t n = GetParam();
  std::vector<RNode> nodes;
  ResistiveNetwork net = random_grounded_network(n, 900 + n, &nodes);

  CgOptions tight;
  tight.tolerance = 1e-13;
  net.solve_cg(tight);
  std::vector<double> v_cg(n);
  double scale = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    v_cg[i] = net.voltage(nodes[i]);
    scale = std::max(scale, std::abs(v_cg[i]));
  }

  net.solve_factored();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(net.voltage(nodes[i]), v_cg[i], 1e-9 * scale);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FactoredVsCg, ::testing::Values(3, 10, 40, 120, 400));

TEST(ResistiveNetwork, SolverStrategyDispatch) {
  std::vector<RNode> nodes;
  ResistiveNetwork net = random_grounded_network(50, 42, &nodes);
  net.solve();  // default CG
  std::vector<double> v_cg(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    v_cg[i] = net.voltage(nodes[i]);
  }
  net.set_solver(SolverStrategy::kFactored);
  EXPECT_EQ(net.solver(), SolverStrategy::kFactored);
  net.solve();
  EXPECT_GT(net.factor_nnz(), 0u);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_NEAR(net.voltage(nodes[i]), v_cg[i], 1e-9);
  }
}

TEST(ResistiveNetwork, FactoredSolveTracksInjectionChanges) {
  ResistiveNetwork net;
  const RNode n = net.add_node();
  const RNode gnd = net.add_node();
  net.fix_voltage(gnd, 0.0);
  net.add_conductance(n, gnd, 1e-3);
  net.set_injection(n, 1e-3);
  net.solve_factored();
  EXPECT_NEAR(net.voltage(n), 1.0, 1e-12);
  net.set_injection(n, 3e-3);
  net.solve_factored();
  EXPECT_NEAR(net.voltage(n), 3.0, 1e-12);
}

TEST(ResistiveNetwork, FactoredSolveTracksStructureChanges) {
  ResistiveNetwork net;
  const RNode n = net.add_node();
  const RNode gnd = net.add_node();
  net.fix_voltage(gnd, 0.0);
  net.add_conductance(n, gnd, 1e-3);
  net.inject_current(n, 1e-3);
  net.solve_factored();
  EXPECT_NEAR(net.voltage(n), 1.0, 1e-12);
  net.add_conductance(n, gnd, 1e-3);  // refactorizes on the next solve
  net.solve_factored();
  EXPECT_NEAR(net.voltage(n), 0.5, 1e-12);
}

TEST(ResistiveNetwork, InfluenceMatchesFiniteDifference) {
  // dv(observe)/dI(n) from influence() must equal the voltage change per
  // unit injected current measured by two solves.
  std::vector<RNode> nodes;
  ResistiveNetwork net = random_grounded_network(30, 77, &nodes);
  const RNode observe = nodes[7];
  const RNode poke = nodes[19];
  const std::vector<double> w = net.influence(observe);

  net.solve_factored();
  const double v0 = net.voltage(observe);
  const double delta = 1e-6;
  net.inject_current(poke, delta);
  net.solve_factored();
  const double v1 = net.voltage(observe);
  EXPECT_NEAR(w[poke], (v1 - v0) / delta, 1e-6 * std::abs(w[poke]) + 1e-15);
}

TEST(ResistiveNetwork, InfluenceOfPinnedNodeIsZero) {
  ResistiveNetwork net;
  const RNode n = net.add_node();
  const RNode gnd = net.add_node();
  net.fix_voltage(gnd, 0.0);
  net.add_conductance(n, gnd, 1e-3);
  const std::vector<double> w = net.influence(gnd);
  EXPECT_EQ(w[n], 0.0);
  EXPECT_EQ(w[gnd], 0.0);
}

TEST(ResistiveNetwork, StructureChangeInvalidatesSolution) {
  // Querying voltages/currents after a mutation must force a re-solve
  // (the stale per-node element index would otherwise be read out of
  // bounds for a node added after the last solve).
  ResistiveNetwork net;
  const RNode n = net.add_node();
  const RNode gnd = net.add_node();
  net.fix_voltage(gnd, 0.0);
  net.add_conductance(n, gnd, 1e-3);
  net.solve();
  const RNode late = net.add_node();
  net.fix_voltage(late, 1.0);
  EXPECT_THROW(net.pin_current(late), InvalidArgument);
  EXPECT_THROW(net.voltage(late), InvalidArgument);
  net.add_conductance(late, n, 1e-3);
  net.solve();
  EXPECT_NO_THROW(net.pin_current(late));
}

TEST(ResistiveNetwork, PinCurrentWithManyPins) {
  // Two pins share the delivered current; the incident-element index must
  // attribute each branch to the right pin.
  ResistiveNetwork net;
  const RNode mid = net.add_node();
  const RNode hi = net.add_node();
  const RNode lo = net.add_node();
  net.fix_voltage(hi, 1.0);
  net.fix_voltage(lo, 0.0);
  net.add_conductance(hi, mid, 1e-3);
  net.add_conductance(mid, lo, 1e-3);
  net.solve();
  EXPECT_NEAR(net.pin_current(hi), 0.5e-3, 1e-12);
  EXPECT_NEAR(net.pin_current(lo), -0.5e-3, 1e-12);
}

TEST(ResistiveNetwork, LargeGridSolves) {
  // 50x50 resistor grid, edges pinned: a smoke test of CG at scale.
  ResistiveNetwork net;
  const std::size_t n = 50;
  const RNode base = net.add_nodes(n * n);
  const auto node = [&](std::size_t r, std::size_t c) { return base + r * n + c; };
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      if (c + 1 < n) {
        net.add_conductance(node(r, c), node(r, c + 1), 1e-3);
      }
      if (r + 1 < n) {
        net.add_conductance(node(r, c), node(r + 1, c), 1e-3);
      }
    }
  }
  net.fix_voltage(node(0, 0), 1.0);
  net.fix_voltage(node(n - 1, n - 1), 0.0);
  net.solve();
  // Interior voltages must lie strictly between the rails (maximum principle).
  const double v_mid = net.voltage(node(n / 2, n / 2));
  EXPECT_GT(v_mid, 0.0);
  EXPECT_LT(v_mid, 1.0);
  EXPECT_NEAR(v_mid, 0.5, 0.05);  // symmetric grid
}

}  // namespace
}  // namespace spinsim
