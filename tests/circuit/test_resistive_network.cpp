#include <gtest/gtest.h>

#include "circuit/mna.hpp"
#include "circuit/resistive_network.hpp"
#include "core/random.hpp"

namespace spinsim {
namespace {

TEST(ResistiveNetwork, SimpleDivider) {
  ResistiveNetwork net;
  const RNode top = net.add_node();
  const RNode mid = net.add_node();
  const RNode bot = net.add_node();
  net.fix_voltage(top, 1.0);
  net.fix_voltage(bot, 0.0);
  net.add_conductance(top, mid, 1.0 / 1e3);
  net.add_conductance(mid, bot, 1.0 / 3e3);
  net.solve();
  EXPECT_NEAR(net.voltage(mid), 0.75, 1e-9);
}

TEST(ResistiveNetwork, CurrentInjection) {
  ResistiveNetwork net;
  const RNode n = net.add_node();
  const RNode gnd = net.add_node();
  net.fix_voltage(gnd, 0.0);
  net.add_conductance(n, gnd, 1.0 / 500.0);
  net.inject_current(n, 2e-3);
  net.solve();
  EXPECT_NEAR(net.voltage(n), 1.0, 1e-9);
}

TEST(ResistiveNetwork, PinCurrentBalancesInjection) {
  ResistiveNetwork net;
  const RNode n = net.add_node();
  const RNode gnd = net.add_node();
  net.fix_voltage(gnd, 0.0);
  net.add_conductance(n, gnd, 1e-3);
  net.inject_current(n, 1e-3);
  net.solve();
  // Everything injected must exit through the pin.
  EXPECT_NEAR(net.pin_current(gnd), -1e-3, 1e-12);
}

TEST(ResistiveNetwork, ElementCurrentSign) {
  ResistiveNetwork net;
  const RNode a = net.add_node();
  const RNode b = net.add_node();
  net.fix_voltage(a, 1.0);
  net.fix_voltage(b, 0.0);
  net.add_conductance(a, b, 0.01);
  net.solve();
  EXPECT_NEAR(net.element_current(0), 0.01, 1e-12);  // flows a -> b
}

TEST(ResistiveNetwork, RequiresAPin) {
  ResistiveNetwork net;
  const RNode a = net.add_node();
  const RNode b = net.add_node();
  net.add_conductance(a, b, 1.0);
  EXPECT_THROW(net.solve(), InvalidArgument);
}

TEST(ResistiveNetwork, InjectionUpdatesWithoutRebuild) {
  ResistiveNetwork net;
  const RNode n = net.add_node();
  const RNode gnd = net.add_node();
  net.fix_voltage(gnd, 0.0);
  net.add_conductance(n, gnd, 1e-3);
  net.set_injection(n, 1e-3);
  net.solve();
  EXPECT_NEAR(net.voltage(n), 1.0, 1e-9);
  net.set_injection(n, 3e-3);
  net.solve();
  EXPECT_NEAR(net.voltage(n), 3.0, 1e-9);
  net.clear_injections();
  net.solve();
  EXPECT_NEAR(net.voltage(n), 0.0, 1e-9);
}

TEST(ResistiveNetwork, MultipleDirichletLevels) {
  // Node between 2 V and 1 V rails through equal conductances sits at 1.5 V.
  ResistiveNetwork net;
  const RNode hi = net.add_node();
  const RNode lo = net.add_node();
  const RNode mid = net.add_node();
  net.fix_voltage(hi, 2.0);
  net.fix_voltage(lo, 1.0);
  net.add_conductance(hi, mid, 1e-3);
  net.add_conductance(lo, mid, 1e-3);
  net.solve();
  EXPECT_NEAR(net.voltage(mid), 1.5, 1e-9);
}

/// Property: the reduced-system solve agrees with the dense MNA on random
/// grounded resistor networks.
class ResistiveVsMna : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ResistiveVsMna, VoltagesAgree) {
  const std::size_t n = GetParam();
  Rng rng(500 + n);

  Netlist mna;
  ResistiveNetwork fast;
  std::vector<NodeId> mna_nodes;
  std::vector<RNode> fast_nodes;
  for (std::size_t i = 0; i < n; ++i) {
    mna_nodes.push_back(mna.add_node());
    fast_nodes.push_back(fast.add_node());
  }
  const RNode fast_gnd = fast.add_node();
  fast.fix_voltage(fast_gnd, 0.0);

  // Random connected-ish topology: chain + random chords + ground leaks.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double r = rng.uniform(100.0, 10e3);
    mna.add_resistor(mna_nodes[i], mna_nodes[i + 1], r);
    fast.add_conductance(fast_nodes[i], fast_nodes[i + 1], 1.0 / r);
  }
  for (std::size_t k = 0; k < n; ++k) {
    const auto i = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    const auto j = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    if (i == j) {
      continue;
    }
    const double r = rng.uniform(100.0, 10e3);
    mna.add_resistor(mna_nodes[i], mna_nodes[j], r);
    fast.add_conductance(fast_nodes[i], fast_nodes[j], 1.0 / r);
  }
  for (std::size_t i = 0; i < n; i += 3) {
    const double r = rng.uniform(1e3, 50e3);
    mna.add_resistor(mna_nodes[i], kGround, r);
    fast.add_conductance(fast_nodes[i], fast_gnd, 1.0 / r);
  }
  // Random current injections.
  for (std::size_t i = 0; i < n; i += 2) {
    const double amps = rng.uniform(-1e-3, 1e-3);
    mna.add_current_source(kGround, mna_nodes[i], amps);
    fast.inject_current(fast_nodes[i], amps);
  }

  const DcSolution ref = solve_dc(mna);
  fast.solve();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(fast.voltage(fast_nodes[i]), ref.voltage(mna_nodes[i]), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ResistiveVsMna, ::testing::Values(3, 10, 40, 120));

TEST(ResistiveNetwork, LargeGridSolves) {
  // 50x50 resistor grid, edges pinned: a smoke test of CG at scale.
  ResistiveNetwork net;
  const std::size_t n = 50;
  const RNode base = net.add_nodes(n * n);
  const auto node = [&](std::size_t r, std::size_t c) { return base + r * n + c; };
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      if (c + 1 < n) {
        net.add_conductance(node(r, c), node(r, c + 1), 1e-3);
      }
      if (r + 1 < n) {
        net.add_conductance(node(r, c), node(r + 1, c), 1e-3);
      }
    }
  }
  net.fix_voltage(node(0, 0), 1.0);
  net.fix_voltage(node(n - 1, n - 1), 0.0);
  net.solve();
  // Interior voltages must lie strictly between the rails (maximum principle).
  const double v_mid = net.voltage(node(n / 2, n / 2));
  EXPECT_GT(v_mid, 0.0);
  EXPECT_LT(v_mid, 1.0);
  EXPECT_NEAR(v_mid, 0.5, 0.05);  // symmetric grid
}

}  // namespace
}  // namespace spinsim
