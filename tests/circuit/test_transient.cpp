#include <gtest/gtest.h>

#include <cmath>

#include "circuit/transient.hpp"
#include "core/units.hpp"

namespace spinsim {
namespace {

TEST(Transient, RcDischargeMatchesAnalytic) {
  // 1 pF precharged to 1 V discharging through 10 kOhm: tau = 10 ns.
  Netlist net;
  const NodeId n = net.add_node();
  net.add_capacitor(n, kGround, 1e-12, 1.0);
  net.add_resistor(n, kGround, 10e3);
  const double tau = 10e-9;

  TransientSimulator sim(std::move(net), tau / 1000.0);
  const TransientTrace trace = sim.run(3.0 * tau);
  for (std::size_t k = 99; k < trace.steps(); k += 250) {
    const double expected = std::exp(-trace.time[k] / tau);
    EXPECT_NEAR(trace.at(k, n), expected, 5e-3);
  }
}

TEST(Transient, RcChargeThroughSource) {
  Netlist net;
  const NodeId in = net.add_node();
  const NodeId out = net.add_node();
  net.add_voltage_source(in, kGround, 1.0);
  net.add_resistor(in, out, 1e3);
  net.add_capacitor(out, kGround, 1e-12, 0.0);
  const double tau = 1e-9;

  TransientSimulator sim(std::move(net), tau / 500.0);
  const TransientTrace trace = sim.run(5.0 * tau);
  const double v_end = trace.at(trace.steps() - 1, out);
  EXPECT_NEAR(v_end, 1.0 - std::exp(-5.0), 5e-3);
}

TEST(Transient, FasterBranchDischargesFirst) {
  // The read-latch race: two identical caps, different resistances.
  Netlist net;
  const NodeId fast = net.add_node();
  const NodeId slow = net.add_node();
  net.add_capacitor(fast, kGround, 2e-15, 1.0);
  net.add_capacitor(slow, kGround, 2e-15, 1.0);
  net.add_resistor(fast, kGround, 5e3);    // R_parallel
  net.add_resistor(slow, kGround, 15e3);   // R_antiparallel

  TransientSimulator sim(std::move(net), 1e-12);
  const TransientTrace trace = sim.run(100e-12);
  const std::size_t last = trace.steps() - 1;
  EXPECT_LT(trace.at(last, fast), trace.at(last, slow));
}

TEST(Transient, StepSizeConvergence) {
  // Halving dt should roughly halve backward-Euler's first-order error.
  const auto run_with_dt = [](double dt) {
    Netlist net;
    const NodeId n = net.add_node();
    net.add_capacitor(n, kGround, 1e-12, 1.0);
    net.add_resistor(n, kGround, 1e3);
    TransientSimulator sim(std::move(net), dt);
    const TransientTrace trace = sim.run(1e-9);  // one tau
    return trace.at(trace.steps() - 1, 1);
  };
  const double exact = std::exp(-1.0);
  const double err_coarse = std::abs(run_with_dt(1e-11) - exact);
  const double err_fine = std::abs(run_with_dt(5e-12) - exact);
  EXPECT_LT(err_fine, err_coarse);
  EXPECT_NEAR(err_coarse / err_fine, 2.0, 0.5);
}

TEST(Transient, SourceUpdateHookDrivesWaveform) {
  // Square-wave current source into an RC; check the node follows.
  Netlist net;
  const NodeId n = net.add_node();
  net.add_resistor(n, kGround, 1e3);
  net.add_capacitor(n, kGround, 1e-15, 0.0);
  net.add_current_source(kGround, n, 0.0, "drive");

  TransientSimulator sim(std::move(net), 1e-12);
  const TransientTrace trace =
      sim.run(20e-9, [](double t, Netlist& nl) {
        nl.mutable_current_sources()[0].value = (t < 10e-9) ? 1e-3 : 0.0;
      });
  // Settled high phase ~ 1 V, settled low phase ~ 0 V.
  const std::size_t steps = trace.steps();
  EXPECT_NEAR(trace.at(steps / 2 - 5, n), 1.0, 0.05);
  EXPECT_NEAR(trace.at(steps - 1, n), 0.0, 0.05);
}

TEST(Transient, RejectsBadArguments) {
  Netlist net;
  const NodeId n = net.add_node();
  net.add_resistor(n, kGround, 1e3);
  EXPECT_THROW(TransientSimulator(std::move(net), 0.0), InvalidArgument);

  Netlist net2;
  const NodeId m = net2.add_node();
  net2.add_resistor(m, kGround, 1e3);
  TransientSimulator sim(std::move(net2), 1e-12);
  EXPECT_THROW(sim.run(0.0), InvalidArgument);
}

TEST(Transient, TwoCapacitorChargeSharing) {
  // 1 pF at 1 V dumped onto an uncharged 1 pF: both settle at 0.5 V.
  Netlist net;
  const NodeId a = net.add_node();
  const NodeId b = net.add_node();
  net.add_capacitor(a, kGround, 1e-12, 1.0);
  net.add_capacitor(b, kGround, 1e-12, 0.0);
  net.add_resistor(a, b, 1e3);
  TransientSimulator sim(std::move(net), 1e-11);
  const TransientTrace trace = sim.run(20e-9);
  const std::size_t last = trace.steps() - 1;
  EXPECT_NEAR(trace.at(last, a), 0.5, 1e-2);
  EXPECT_NEAR(trace.at(last, b), 0.5, 1e-2);
}

}  // namespace
}  // namespace spinsim
