#include <gtest/gtest.h>

#include "circuit/mna.hpp"
#include "circuit/netlist.hpp"
#include "core/units.hpp"

namespace spinsim {
namespace {

TEST(Netlist, NodeAllocation) {
  Netlist net;
  EXPECT_EQ(net.node_count(), 1u);  // ground
  const NodeId a = net.add_node("a");
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(net.node_label(a), "a");
  EXPECT_EQ(net.node_label(kGround), "gnd");
}

TEST(Netlist, RejectsBadElements) {
  Netlist net;
  const NodeId a = net.add_node();
  EXPECT_THROW(net.add_resistor(a, a, 1.0), InvalidArgument);
  EXPECT_THROW(net.add_resistor(a, kGround, 0.0), InvalidArgument);
  EXPECT_THROW(net.add_resistor(a, 99, 1.0), InvalidArgument);
  EXPECT_THROW(net.add_capacitor(a, kGround, -1e-15), InvalidArgument);
}

TEST(Mna, VoltageDivider) {
  Netlist net;
  const NodeId top = net.add_node("top");
  const NodeId mid = net.add_node("mid");
  net.add_voltage_source(top, kGround, 1.0);
  net.add_resistor(top, mid, 1e3);
  net.add_resistor(mid, kGround, 3e3);
  const DcSolution sol = solve_dc(net);
  EXPECT_NEAR(sol.voltage(mid), 0.75, 1e-12);
}

TEST(Mna, CurrentSourceIntoResistor) {
  Netlist net;
  const NodeId n = net.add_node();
  net.add_current_source(kGround, n, 2e-3);  // 2 mA into n
  net.add_resistor(n, kGround, 500.0);
  const DcSolution sol = solve_dc(net);
  EXPECT_NEAR(sol.voltage(n), 1.0, 1e-12);
}

TEST(Mna, VoltageSourceCurrentReadback) {
  Netlist net;
  const NodeId a = net.add_node();
  const std::size_t src = net.add_voltage_source(a, kGround, 2.0);
  net.add_resistor(a, kGround, 1e3);
  const DcSolution sol = solve_dc(net);
  // MNA convention: the branch current flows p -> n inside the unknown
  // vector; the source delivers 2 mA into the resistor.
  EXPECT_NEAR(std::abs(sol.source_current(src)), 2e-3, 1e-12);
}

TEST(Mna, SuperpositionOfSources) {
  Netlist net;
  const NodeId n = net.add_node();
  net.add_resistor(n, kGround, 1e3);
  net.add_current_source(kGround, n, 1e-3);
  net.add_current_source(kGround, n, 2e-3);
  const DcSolution sol = solve_dc(net);
  EXPECT_NEAR(sol.voltage(n), 3.0, 1e-12);
}

TEST(Mna, WheatstoneBridgeBalanced) {
  Netlist net;
  const NodeId top = net.add_node();
  const NodeId left = net.add_node();
  const NodeId right = net.add_node();
  net.add_voltage_source(top, kGround, 1.0);
  net.add_resistor(top, left, 1e3);
  net.add_resistor(top, right, 1e3);
  net.add_resistor(left, kGround, 2e3);
  net.add_resistor(right, kGround, 2e3);
  net.add_resistor(left, right, 5e3);  // bridge carries no current
  const DcSolution sol = solve_dc(net);
  EXPECT_NEAR(sol.voltage(left), sol.voltage(right), 1e-12);
  const Resistor bridge = net.resistors().back();
  EXPECT_NEAR(sol.resistor_current(bridge), 0.0, 1e-15);
}

TEST(Mna, ResistorLadderMatchesAnalytic) {
  // 5-section R-2R style ladder driven by 1 V.
  Netlist net;
  std::vector<NodeId> nodes;
  const NodeId in = net.add_node();
  net.add_voltage_source(in, kGround, 1.0);
  NodeId prev = in;
  for (int i = 0; i < 5; ++i) {
    const NodeId n = net.add_node();
    net.add_resistor(prev, n, 1e3);
    net.add_resistor(n, kGround, 2e3);
    nodes.push_back(n);
    prev = n;
  }
  const DcSolution sol = solve_dc(net);
  // Voltages must decay monotonically along the ladder.
  double last = 1.0;
  for (const NodeId n : nodes) {
    EXPECT_LT(sol.voltage(n), last);
    EXPECT_GT(sol.voltage(n), 0.0);
    last = sol.voltage(n);
  }
}

TEST(Mna, VccsImplementsTransconductance) {
  Netlist net;
  const NodeId ctrl = net.add_node();
  const NodeId out = net.add_node();
  net.add_voltage_source(ctrl, kGround, 0.5);
  net.add_vccs(out, kGround, ctrl, kGround, 1e-3);  // i = gm * v_ctrl out of `out`
  net.add_resistor(out, kGround, 1e3);
  const DcSolution sol = solve_dc(net);
  // i(out -> gnd through VCCS) = 1e-3 * 0.5 = 0.5 mA leaves node `out`,
  // so the resistor pulls the node to -0.5 V.
  EXPECT_NEAR(sol.voltage(out), -0.5, 1e-12);
}

TEST(Mna, FloatingNodeIsSingular) {
  Netlist net;
  (void)net.add_node();  // no element touches it
  const NodeId driven = net.add_node();
  net.add_resistor(driven, kGround, 1e3);
  net.add_current_source(kGround, driven, 1e-3);
  EXPECT_THROW(solve_dc(net), NumericalError);
}

TEST(Mna, TwoVoltageSourcesInSeries) {
  Netlist net;
  const NodeId a = net.add_node();
  const NodeId b = net.add_node();
  net.add_voltage_source(a, kGround, 1.0);
  net.add_voltage_source(b, a, 0.5);
  net.add_resistor(b, kGround, 1e3);
  const DcSolution sol = solve_dc(net);
  EXPECT_NEAR(sol.voltage(b), 1.5, 1e-12);
}

TEST(Mna, GroundedSourceConvention) {
  // Current source from a to b pushes current through the source a -> b.
  Netlist net;
  const NodeId a = net.add_node();
  net.add_resistor(a, kGround, 1e3);
  net.add_current_source(a, kGround, 1e-3);  // pulls current *out of* a
  const DcSolution sol = solve_dc(net);
  EXPECT_NEAR(sol.voltage(a), -1.0, 1e-12);
}

TEST(Mna, ParallelResistors) {
  Netlist net;
  const NodeId n = net.add_node();
  net.add_current_source(kGround, n, 1e-3);
  net.add_resistor(n, kGround, 2e3);
  net.add_resistor(n, kGround, 2e3);
  const DcSolution sol = solve_dc(net);
  EXPECT_NEAR(sol.voltage(n), 1.0, 1e-12);
}

TEST(Mna, CapacitorIsOpenInDc) {
  Netlist net;
  const NodeId a = net.add_node();
  const NodeId b = net.add_node();
  net.add_voltage_source(a, kGround, 1.0);
  net.add_resistor(a, b, 1e3);
  net.add_capacitor(b, kGround, 1e-12);
  net.add_resistor(b, kGround, 1e3);
  const DcSolution sol = solve_dc(net);
  EXPECT_NEAR(sol.voltage(b), 0.5, 1e-12);  // divider unaffected by C
}

}  // namespace
}  // namespace spinsim
