// Positive control for the compile-fail harness: well-formed Quantity
// code using the same constructs the negative cases abuse. If this stops
// compiling, the harness setup (include path, standard) is broken and
// the negative verdicts below it prove nothing.
#include "core/units.hpp"

int main() {
  using namespace spinsim;
  const Power p = 65e-6 * units::W;
  const Time cycle = 1.0 / (100e6 * units::Hz);
  const Energy e = p * cycle;                    // Power * Time -> Energy
  const EnergyPerQuery epq = e / units::query;   // Energy / Queries
  const Energy back = epq * (3.0 * units::query);
  return (e + back).in(units::pJ) > 0.0 ? 0 : 1;
}
