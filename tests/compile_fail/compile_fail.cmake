# Negative compile tests for the Quantity dimensional-analysis layer.
#
# Each case_fail_*.cpp encodes one violation the type system must reject
# (adding mismatched dimensions, assigning across dimensions, passing a
# raw double where a typed quantity is required). try_compile runs at
# configure time: a case that unexpectedly *builds* aborts the configure,
# so a regression that weakens the type system can never reach the test
# or CI stage looking green.

set(_cf_dir ${CMAKE_CURRENT_SOURCE_DIR}/tests/compile_fail)

# Positive control first: proves the harness compiles well-formed code,
# so the failures below mean "rejected by the type system", not "broken
# include path".
try_compile(_cf_control ${CMAKE_BINARY_DIR}/compile_fail
            ${_cf_dir}/control_ok.cpp
            CMAKE_FLAGS "-DINCLUDE_DIRECTORIES=${CMAKE_CURRENT_SOURCE_DIR}/src"
            CXX_STANDARD 17 CXX_STANDARD_REQUIRED ON)
if(NOT _cf_control)
  message(FATAL_ERROR
          "compile_fail: the positive control failed to compile — the "
          "harness itself is broken, negative results would be meaningless")
endif()

file(GLOB _cf_cases ${_cf_dir}/case_fail_*.cpp)
foreach(_case ${_cf_cases})
  get_filename_component(_name ${_case} NAME_WE)
  try_compile(_cf_built ${CMAKE_BINARY_DIR}/compile_fail
              ${_case}
              CMAKE_FLAGS "-DINCLUDE_DIRECTORIES=${CMAKE_CURRENT_SOURCE_DIR}/src"
              CXX_STANDARD 17 CXX_STANDARD_REQUIRED ON)
  if(_cf_built)
    message(FATAL_ERROR
            "compile_fail: ${_name} compiled but must not — the Quantity "
            "layer no longer rejects this dimensional-analysis violation")
  endif()
  message(STATUS "compile_fail: ${_name} rejected as required")
endforeach()
message(STATUS "compile_fail: control compiled, all negative cases rejected")
