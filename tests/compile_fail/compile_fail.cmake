# Negative compile tests, two families:
#
#   case_fail_*.cpp     — Quantity dimensional-analysis violations the
#                         type system must reject on every compiler
#                         (adding mismatched dimensions, assigning across
#                         dimensions, passing a raw double where a typed
#                         quantity is required).
#   case_tsa_fail_*.cpp — locking-discipline violations clang's Thread
#                         Safety Analysis must reject under
#                         -Wthread-safety -Wthread-safety-beta -Werror
#                         (unlocked GUARDED_BY access, double acquire,
#                         REQUIRES helper called without the lock). Only
#                         exercised when the compiler is clang — the
#                         attributes are no-ops on GCC, so these cases
#                         would (correctly) build there.
#
# try_compile runs at configure time: a case that unexpectedly *builds*
# aborts the configure, so a regression that weakens either checker can
# never reach the test or CI stage looking green.

set(_cf_dir ${CMAKE_CURRENT_SOURCE_DIR}/tests/compile_fail)

# Positive control first: proves the harness compiles well-formed code,
# so the failures below mean "rejected by the type system", not "broken
# include path".
try_compile(_cf_control ${CMAKE_BINARY_DIR}/compile_fail
            ${_cf_dir}/control_ok.cpp
            CMAKE_FLAGS "-DINCLUDE_DIRECTORIES=${CMAKE_CURRENT_SOURCE_DIR}/src"
            CXX_STANDARD 17 CXX_STANDARD_REQUIRED ON)
if(NOT _cf_control)
  message(FATAL_ERROR
          "compile_fail: the positive control failed to compile — the "
          "harness itself is broken, negative results would be meaningless")
endif()

file(GLOB _cf_cases ${_cf_dir}/case_fail_*.cpp)
foreach(_case ${_cf_cases})
  get_filename_component(_name ${_case} NAME_WE)
  try_compile(_cf_built ${CMAKE_BINARY_DIR}/compile_fail
              ${_case}
              CMAKE_FLAGS "-DINCLUDE_DIRECTORIES=${CMAKE_CURRENT_SOURCE_DIR}/src"
              CXX_STANDARD 17 CXX_STANDARD_REQUIRED ON)
  if(_cf_built)
    message(FATAL_ERROR
            "compile_fail: ${_name} compiled but must not — the Quantity "
            "layer no longer rejects this dimensional-analysis violation")
  endif()
  message(STATUS "compile_fail: ${_name} rejected as required")
endforeach()

# --- Thread Safety Analysis cases (clang only) --------------------------
# The TSA cases instantiate spinsim::Mutex and friends, so they link
# src/core/sync.cpp alongside the case file. The positive control proves
# correctly-annotated code survives -Werror before we trust any rejection.
if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
  set(_tsa_flags "-Wthread-safety -Wthread-safety-beta -Werror")
  try_compile(_cf_tsa_control ${CMAKE_BINARY_DIR}/compile_fail
              SOURCES ${_cf_dir}/tsa_control_ok.cpp
                      ${CMAKE_CURRENT_SOURCE_DIR}/src/core/sync.cpp
              CMAKE_FLAGS "-DINCLUDE_DIRECTORIES=${CMAKE_CURRENT_SOURCE_DIR}/src"
                          "-DCMAKE_CXX_FLAGS=${_tsa_flags}"
              CXX_STANDARD 17 CXX_STANDARD_REQUIRED ON)
  if(NOT _cf_tsa_control)
    message(FATAL_ERROR
            "compile_fail: the thread-safety positive control failed under "
            "-Wthread-safety -Werror — the sync.hpp annotations themselves "
            "are inconsistent, negative results would be meaningless")
  endif()

  file(GLOB _cf_tsa_cases ${_cf_dir}/case_tsa_fail_*.cpp)
  foreach(_case ${_cf_tsa_cases})
    get_filename_component(_name ${_case} NAME_WE)
    try_compile(_cf_tsa_built ${CMAKE_BINARY_DIR}/compile_fail
                SOURCES ${_case}
                        ${CMAKE_CURRENT_SOURCE_DIR}/src/core/sync.cpp
                CMAKE_FLAGS "-DINCLUDE_DIRECTORIES=${CMAKE_CURRENT_SOURCE_DIR}/src"
                            "-DCMAKE_CXX_FLAGS=${_tsa_flags}"
                CXX_STANDARD 17 CXX_STANDARD_REQUIRED ON)
    if(_cf_tsa_built)
      message(FATAL_ERROR
              "compile_fail: ${_name} compiled but must not — clang's "
              "Thread Safety Analysis no longer rejects this locking "
              "violation (annotations weakened in core/sync.hpp?)")
    endif()
    message(STATUS "compile_fail: ${_name} rejected as required")
  endforeach()
  message(STATUS "compile_fail: thread-safety control compiled, "
                 "all TSA negative cases rejected")
else()
  message(STATUS
          "compile_fail: skipping case_tsa_fail_* (thread-safety attributes "
          "are no-ops on ${CMAKE_CXX_COMPILER_ID}; the CI static-analysis "
          "job runs them under clang)")
endif()

message(STATUS "compile_fail: control compiled, all negative cases rejected")
