// Thread-safety negative case: calling a SPINSIM_REQUIRES helper
// without holding the capability it names. Clang must reject this under
// -Wthread-safety -Werror ("calling function 'bump_locked' requires
// holding mutex 'mutex_'"). This is the pattern the service layer leans
// on (e.g. RecognitionService::reset_stats_locked), so a regression here
// would silently strip the lock contract off every *_locked helper.

#include "core/sync.hpp"

namespace {

class Counter {
 public:
  // The bug under test: the REQUIRES contract is ignored at the call
  // site — no lock held.
  void bump_forgetting_the_lock() { bump_locked(); }

 private:
  void bump_locked() SPINSIM_REQUIRES(mutex_) { value_ += 1; }

  spinsim::Mutex mutex_{spinsim::LockRank::kServiceStats};
  int value_ SPINSIM_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.bump_forgetting_the_lock();
  return 0;
}
