// MUST NOT COMPILE: a Power value is not an Energy value; the assignment
// requires an explicit physical relation (multiply by a Time).
#include "core/units.hpp"

int main() {
  using namespace spinsim;
  const Power p = 65e-6 * units::W;
  const Energy e = p;  // cross-dimension assignment
  return e.si() > 0.0 ? 0 : 1;
}
