// MUST NOT COMPILE: a bare double never silently becomes a typed
// quantity. Quantity's double constructor is explicit, so an energy API
// taking Energy rejects an unlabelled 1e-12 — the caller has to write
// the unit (1e-12 * units::J) or name the conversion (Energy{1e-12}).
#include "core/units.hpp"

namespace {
double charge_write(spinsim::Energy per_device) { return per_device.si(); }
}  // namespace

int main() {
  return charge_write(1e-12) > 0.0 ? 0 : 1;  // raw double into an Energy API
}
