// Thread-safety negative case: writing a SPINSIM_GUARDED_BY field
// without holding its mutex. Clang must reject this under
// -Wthread-safety -Werror ("writing variable 'value_' requires holding
// mutex 'mutex_'"). Only compiled by the clang leg of the compile_fail
// harness — GCC ignores the attributes entirely.

#include "core/sync.hpp"

namespace {

class Counter {
 public:
  // The bug under test: no lock taken before touching value_.
  void bump_without_lock() { value_ += 1; }

 private:
  spinsim::Mutex mutex_{spinsim::LockRank::kServiceStats};
  int value_ SPINSIM_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.bump_without_lock();
  return 0;
}
