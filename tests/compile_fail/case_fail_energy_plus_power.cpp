// MUST NOT COMPILE: adding an Energy to a Power mixes dimensions.
// operator+ is defined only between Quantities of the same Dimension.
#include "core/units.hpp"

int main() {
  using namespace spinsim;
  const Energy e = 1.0 * units::pJ;
  const Power p = 1.0 * units::uW;
  const auto bad = e + p;  // dimension mismatch: J + W
  return bad.si() > 0.0 ? 0 : 1;
}
