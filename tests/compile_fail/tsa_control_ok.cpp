// Positive control for the thread-safety negative cases: the same
// annotation vocabulary the case_tsa_fail_*.cpp files violate, used
// correctly. Must compile warning-free under
// -Wthread-safety -Wthread-safety-beta -Werror (clang only; the
// static-analysis CI job drives this).

#include "core/sync.hpp"

namespace {

class Counter {
 public:
  void bump() {
    spinsim::LockGuard lock(mutex_);
    value_ += 1;
  }

  int read() {
    spinsim::LockGuard lock(mutex_);
    return value_;
  }

  void bump_many(int n) {
    spinsim::LockGuard lock(mutex_);
    for (int i = 0; i < n; ++i) {
      bump_locked();
    }
  }

  void wait_for_positive() {
    spinsim::UniqueLock lock(mutex_);
    cv_.wait(lock, [this]() SPINSIM_NO_TSA { return value_ > 0; });
    value_ -= 1;
  }

  void signal() {
    {
      spinsim::LockGuard lock(mutex_);
      value_ += 1;
    }
    cv_.notify_one();
  }

 private:
  void bump_locked() SPINSIM_REQUIRES(mutex_) { value_ += 1; }

  spinsim::Mutex mutex_{spinsim::LockRank::kServiceStats};
  spinsim::CondVar cv_;
  int value_ SPINSIM_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.bump();
  counter.bump_many(3);
  counter.signal();
  counter.wait_for_positive();
  return counter.read() == 4 ? 0 : 1;
}
