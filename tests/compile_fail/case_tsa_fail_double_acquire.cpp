// Thread-safety negative case: acquiring the same mutex twice in one
// scope — a self-deadlock on std::mutex. Clang must reject this under
// -Wthread-safety -Werror ("acquiring mutex 'mutex_' that is already
// held"). The runtime lock-rank registry catches the ordering cousin of
// this bug (two *different* same-rank mutexes) in tests/core/
// test_sync.cpp; this case proves the compile-time side.

#include "core/sync.hpp"

namespace {

class Doubler {
 public:
  void lock_twice() {
    spinsim::LockGuard first(mutex_);
    spinsim::LockGuard second(mutex_);  // the bug under test
    value_ += 1;
  }

 private:
  spinsim::Mutex mutex_{spinsim::LockRank::kShard};
  int value_ SPINSIM_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Doubler doubler;
  doubler.lock_twice();
  return 0;
}
