/// \file random_weights.hpp
/// Shared generator for random crossbar weight matrices in tests.

#pragma once

#include <cstdint>
#include <vector>

#include "core/random.hpp"

namespace spinsim::testing {

/// `cols` columns of `rows` uniform weights in [0, 1); columns[j] is the
/// weight vector programmed into crossbar column j.
inline std::vector<std::vector<double>> random_columns(std::size_t rows, std::size_t cols,
                                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> w(cols, std::vector<double>(rows));
  for (auto& col : w) {
    for (auto& v : col) {
      v = rng.uniform(0.0, 1.0);
    }
  }
  return w;
}

}  // namespace spinsim::testing
