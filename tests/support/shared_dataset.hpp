/// \file shared_dataset.hpp
/// Lazily built datasets shared across test binaries to keep suite
/// runtime down. Each accessor builds its dataset once per process.

#pragma once

#include "vision/dataset.hpp"

namespace spinsim::testing {

/// The paper's full 40 x 10 dataset at 128 x 96.
inline const FaceDataset& paper_dataset() {
  static const FaceDataset dataset = FaceDataset::paper_dataset();
  return dataset;
}

/// A small, fast dataset (10 individuals x 4 variants, 64 x 48) for
/// end-to-end tests that exercise the pipeline rather than accuracy.
inline const FaceDataset& small_dataset() {
  static const FaceDataset dataset = [] {
    FaceGeneratorConfig config;
    config.image_height = 64;
    config.image_width = 48;
    config.seed = 424242;
    return FaceDataset(10, 4, config);
  }();
  return dataset;
}

}  // namespace spinsim::testing
