#include "crossbar/rcm.hpp"

#include <gtest/gtest.h>

#include "core/random.hpp"
#include "core/units.hpp"

namespace spinsim {
namespace {

/// Small clean config: no write noise so programmed values hit the grid.
RcmConfig clean_config(std::size_t rows = 8, std::size_t cols = 4) {
  RcmConfig c;
  c.rows = rows;
  c.cols = cols;
  c.memristor.write_sigma = 0.0;
  return c;
}

/// Weights for `cols` columns of `rows` entries from a seeded RNG.
std::vector<std::vector<double>> random_weights(std::size_t rows, std::size_t cols,
                                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> w(cols, std::vector<double>(rows));
  for (auto& col : w) {
    for (auto& v : col) {
      v = rng.uniform(0.0, 1.0);
    }
  }
  return w;
}

TEST(RcmArray, ProgramsToLevelGrid) {
  RcmArray rcm(clean_config(4, 2), Rng(1));
  rcm.program({{0.0, 1.0, 0.5, 0.25}, {1.0, 0.0, 0.75, 0.5}});
  const MemristorSpec& spec = clean_config().memristor;
  EXPECT_DOUBLE_EQ(rcm.conductance(0, 0), spec.g_min());
  EXPECT_DOUBLE_EQ(rcm.conductance(1, 0), spec.g_max());
  EXPECT_DOUBLE_EQ(rcm.conductance(0, 1), spec.g_max());
}

TEST(RcmArray, DummyEqualisesRowConductance) {
  RcmArray rcm(clean_config(8, 4), Rng(2));
  rcm.program(random_weights(8, 4, 3));
  const double g0 = rcm.row_conductance(0);
  for (std::size_t r = 1; r < 8; ++r) {
    EXPECT_NEAR(rcm.row_conductance(r), g0, g0 * 1e-12);
  }
}

TEST(RcmArray, IdealCurrentsMatchClosedForm) {
  RcmArray rcm(clean_config(4, 3), Rng(4));
  const auto weights = random_weights(4, 3, 5);
  rcm.program(weights);

  std::vector<double> inputs{1e-6, 2e-6, 3e-6, 4e-6};
  const auto currents = rcm.column_currents_ideal(inputs);

  for (std::size_t j = 0; j < 3; ++j) {
    double expected = 0.0;
    for (std::size_t i = 0; i < 4; ++i) {
      expected += inputs[i] * rcm.conductance(i, j) / rcm.row_conductance(i);
    }
    EXPECT_NEAR(currents[j], expected, 1e-18);
  }
}

TEST(RcmArray, CurrentConservationInIdealMode) {
  // Column currents + dummy current = total injected current.
  RcmArray rcm(clean_config(8, 4), Rng(6));
  rcm.program(random_weights(8, 4, 7));
  std::vector<double> inputs(8, 5e-6);
  const auto currents = rcm.column_currents_ideal(inputs);
  double collected = 0.0;
  for (double i : currents) {
    collected += i;
  }
  EXPECT_LT(collected, 40e-6);  // dummy absorbs the remainder
  EXPECT_GT(collected, 0.0);
}

TEST(RcmArray, HigherCorrelationGivesHigherCurrent) {
  // Column 0 = input pattern, column 1 = anti-pattern.
  RcmConfig c = clean_config(8, 2);
  RcmArray rcm(c, Rng(8));
  std::vector<double> pattern{1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0};
  std::vector<double> anti(8);
  for (std::size_t i = 0; i < 8; ++i) {
    anti[i] = 1.0 - pattern[i];
  }
  rcm.program({pattern, anti});
  std::vector<double> inputs(8);
  for (std::size_t i = 0; i < 8; ++i) {
    inputs[i] = pattern[i] * 10e-6;
  }
  const auto currents = rcm.column_currents_ideal(inputs);
  EXPECT_GT(currents[0], 2.0 * currents[1]);
}

TEST(RcmArray, ParasiticApproachesIdealForNegligibleWireResistance) {
  RcmConfig c = clean_config(8, 4);
  c.wire_res_per_um = 1e-6;  // essentially perfect bars
  RcmArray rcm(c, Rng(9));
  rcm.program(random_weights(8, 4, 10));
  std::vector<double> inputs(8);
  Rng rng(11);
  for (auto& i : inputs) {
    i = rng.uniform(0.0, 10e-6);
  }
  const auto ideal = rcm.column_currents_ideal(inputs);
  const auto parasitic = rcm.column_currents_parasitic(inputs);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(parasitic[j], ideal[j], ideal[j] * 1e-3 + 1e-12);
  }
}

TEST(RcmArray, WireResistanceDegradesBestColumn) {
  // With strong wire resistance the winning column's collected current
  // drops relative to the ideal evaluation.
  RcmConfig c = clean_config(16, 4);
  c.wire_res_per_um = 200.0;  // deliberately brutal
  RcmArray rcm(c, Rng(12));
  const auto weights = random_weights(16, 4, 13);
  rcm.program(weights);
  std::vector<double> inputs(16, 8e-6);
  const auto ideal = rcm.column_currents_ideal(inputs);
  const auto parasitic = rcm.column_currents_parasitic(inputs);
  const std::size_t best = static_cast<std::size_t>(
      std::max_element(ideal.begin(), ideal.end()) - ideal.begin());
  EXPECT_LT(parasitic[best], ideal[best]);
}

TEST(RcmArray, ParasiticConservesCurrentOrder) {
  // Moderate parasitics must not reorder a strongly separated pair.
  RcmConfig c = clean_config(16, 3);
  RcmArray rcm(c, Rng(14));
  std::vector<std::vector<double>> w(3, std::vector<double>(16, 0.1));
  w[1] = std::vector<double>(16, 0.9);  // dominant column
  rcm.program(w);
  std::vector<double> inputs(16, 8e-6);
  const auto parasitic = rcm.column_currents_parasitic(inputs);
  EXPECT_GT(parasitic[1], parasitic[0]);
  EXPECT_GT(parasitic[1], parasitic[2]);
}

TEST(RcmArray, VBiasShiftsAbsoluteVoltagesNotCurrents) {
  RcmConfig c = clean_config(8, 4);
  RcmArray rcm(c, Rng(15));
  rcm.program(random_weights(8, 4, 16));
  std::vector<double> inputs(8, 5e-6);
  const auto at_zero = rcm.column_currents_parasitic(inputs, 0.0);
  const auto at_half = rcm.column_currents_parasitic(inputs, 0.5);
  for (std::size_t j = 0; j < 4; ++j) {
    // Tolerance is bounded by the CG residual against the 0.5 V Dirichlet
    // right-hand side, not by machine precision.
    EXPECT_NEAR(at_zero[j], at_half[j], std::abs(at_zero[j]) * 1e-4 + 1e-12);
  }
}

TEST(RcmArray, WriteNoiseChangesRealisedConductance) {
  RcmConfig noisy = clean_config(8, 2);
  noisy.memristor.write_sigma = 0.03;
  RcmArray a(noisy, Rng(17));
  RcmArray b(noisy, Rng(18));
  const auto w = random_weights(8, 2, 19);
  a.program(w);
  b.program(w);
  bool any_difference = false;
  for (std::size_t i = 0; i < 8; ++i) {
    if (a.conductance(i, 0) != b.conductance(i, 0)) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(RcmArray, PaperSizeParasiticSolves) {
  // Full 128x40 array: the real experiment's workload.
  RcmConfig c;
  c.rows = 128;
  c.cols = 40;
  RcmArray rcm(c, Rng(20));
  rcm.program(random_weights(128, 40, 21));
  std::vector<double> inputs(128, 5e-6);
  const auto currents = rcm.column_currents_parasitic(inputs);
  EXPECT_EQ(currents.size(), 40u);
  for (double i : currents) {
    EXPECT_GT(i, 0.0);
    EXPECT_LT(i, 128 * 5e-6);
  }
}

TEST(RcmArray, ProgramValidatesShape) {
  RcmArray rcm(clean_config(4, 2), Rng(22));
  EXPECT_THROW(rcm.program({{1.0, 0.0}}), InvalidArgument);  // wrong col count
  EXPECT_THROW(rcm.program_column(0, {1.0}), InvalidArgument);  // wrong rows
  EXPECT_THROW(rcm.program_column(5, std::vector<double>(4, 0.5)), InvalidArgument);
}

TEST(RcmConfig, SegmentResistanceFromPaperNumbers) {
  RcmConfig c;
  // Table 2: 1 Ohm/um, at the 0.1 um high-density pitch.
  EXPECT_DOUBLE_EQ(c.segment_resistance(), 0.1);
}

}  // namespace
}  // namespace spinsim
