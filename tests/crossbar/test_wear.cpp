#include "crossbar/wear.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/error.hpp"
#include "core/random.hpp"
#include "crossbar/rcm.hpp"

namespace spinsim {
namespace {

RcmConfig small_config(std::size_t rows, std::size_t cols) {
  RcmConfig config;
  config.rows = rows;
  config.cols = cols;
  return config;
}

std::vector<std::vector<double>> ramp_weights(std::size_t rows, std::size_t cols,
                                              double salt = 0.0) {
  std::vector<std::vector<double>> columns(cols, std::vector<double>(rows));
  for (std::size_t j = 0; j < cols; ++j) {
    for (std::size_t r = 0; r < rows; ++r) {
      double w = (static_cast<double>(r + j * rows) / (rows * cols)) + salt;
      columns[j][r] = w - static_cast<long>(w);  // wrap into [0, 1)
    }
  }
  return columns;
}

std::vector<std::size_t> identity_map(std::size_t cols) {
  std::vector<std::size_t> map(cols);
  for (std::size_t j = 0; j < cols; ++j) map[j] = j;
  return map;
}

TEST(CrossbarSubstrate, DeltaSkipsAnIdenticalReprogram) {
  const RcmConfig config = small_config(8, 4);
  auto substrate = std::make_shared<CrossbarSubstrate>(config.memristor, config.rows,
                                                       config.cols, 101, 202);
  const auto weights = ramp_weights(config.rows, config.cols);

  RcmArray first(config, Rng(1));
  first.attach_substrate(substrate, identity_map(config.cols), /*delta_writes=*/true);
  first.program(weights);
  EXPECT_EQ(first.device_writes(), config.rows * config.cols);
  EXPECT_EQ(first.device_write_skips(), 0u);
  EXPECT_EQ(first.columns_touched(), config.cols);

  // A fresh model of the same physical slot, same targets: every device
  // is delta-skipped and restores the recorded conductance exactly.
  RcmArray second(config, Rng(999));  // different model rng must not matter
  second.attach_substrate(substrate, identity_map(config.cols), /*delta_writes=*/true);
  second.program(weights);
  EXPECT_EQ(second.device_writes(), 0u);
  EXPECT_EQ(second.device_write_skips(), config.rows * config.cols);
  EXPECT_EQ(second.columns_touched(), 0u);
  for (std::size_t r = 0; r < config.rows; ++r) {
    for (std::size_t j = 0; j < config.cols; ++j) {
      EXPECT_DOUBLE_EQ(second.conductance(r, j), first.conductance(r, j));
    }
  }
  for (std::size_t r = 0; r < config.rows; ++r) {
    EXPECT_DOUBLE_EQ(second.row_conductance(r), first.row_conductance(r));
  }
}

TEST(CrossbarSubstrate, DeltaRewritesOnlyTheChangedColumn) {
  const RcmConfig config = small_config(6, 4);
  auto substrate = std::make_shared<CrossbarSubstrate>(config.memristor, config.rows,
                                                       config.cols, 11, 22);
  auto weights = ramp_weights(config.rows, config.cols);

  RcmArray array(config, Rng(1));
  array.attach_substrate(substrate, identity_map(config.cols), /*delta_writes=*/true);
  array.program(weights);
  const std::uint64_t writes_after_load = array.device_writes();

  // Move every weight of column 2 by ~3 quantisation levels; other
  // columns keep their quantised targets.
  for (std::size_t r = 0; r < config.rows; ++r) {
    weights[2][r] += 0.1;
  }
  array.program(weights);
  EXPECT_EQ(array.device_writes() - writes_after_load, config.rows);
  EXPECT_EQ(array.device_write_skips(), config.rows * (config.cols - 1));
  EXPECT_EQ(array.columns_touched(), config.cols + 1);
}

TEST(CrossbarSubstrate, KeyedNoiseIsIndependentOfProgrammingOrder) {
  const RcmConfig config = small_config(8, 3);
  const auto weights = ramp_weights(config.rows, config.cols);

  auto forward = std::make_shared<CrossbarSubstrate>(config.memristor, config.rows,
                                                     config.cols, 7, 8);
  RcmArray a(config, Rng(1));
  a.attach_substrate(forward, identity_map(config.cols), false);
  for (std::size_t j = 0; j < config.cols; ++j) a.program_column(j, weights[j]);
  a.equalize_rows();

  auto backward = std::make_shared<CrossbarSubstrate>(config.memristor, config.rows,
                                                      config.cols, 7, 8);
  RcmArray b(config, Rng(2));
  b.attach_substrate(backward, identity_map(config.cols), false);
  for (std::size_t j = config.cols; j-- > 0;) b.program_column(j, weights[j]);
  b.equalize_rows();

  // Realised conductance is a property of (device, level), not of the
  // order the writes were issued in.
  for (std::size_t r = 0; r < config.rows; ++r) {
    for (std::size_t j = 0; j < config.cols; ++j) {
      EXPECT_DOUBLE_EQ(a.conductance(r, j), b.conductance(r, j));
    }
  }
}

TEST(CrossbarSubstrate, WearAccumulatesAcrossModelRecreations) {
  RcmConfig config = small_config(5, 3);
  config.memristor.endurance_cycles = 1e6;
  config.memristor.endurance_sigma = 0.0;
  auto substrate = std::make_shared<CrossbarSubstrate>(config.memristor, config.rows,
                                                       config.cols, 31, 32);
  const auto a_weights = ramp_weights(config.rows, config.cols, 0.0);
  const auto b_weights = ramp_weights(config.rows, config.cols, 0.37);

  for (int generation = 0; generation < 3; ++generation) {
    RcmArray array(config, Rng(generation));
    array.attach_substrate(substrate, identity_map(config.cols), false);
    array.program(generation % 2 == 0 ? a_weights : b_weights);
  }
  EXPECT_EQ(substrate->total_write_cycles(), 3u * config.rows * config.cols);
  EXPECT_EQ(substrate->max_device_write_cycles(), 3u);
  EXPECT_EQ(substrate->worn_out_devices(), 0u);
  EXPECT_EQ(substrate->device(0, 0).wear.write_cycles, 3u);
}

TEST(CrossbarSubstrate, WornOutDeviceFailsInTheFieldAndStaysFailed) {
  RcmConfig config = small_config(4, 2);
  config.memristor.endurance_cycles = 2.0;
  config.memristor.endurance_sigma = 0.0;  // every device dies on write 3
  config.memristor.wear_fail_open = 1.0;
  auto substrate = std::make_shared<CrossbarSubstrate>(config.memristor, config.rows,
                                                       config.cols, 41, 42);
  const auto a_weights = ramp_weights(config.rows, config.cols, 0.0);
  const auto b_weights = ramp_weights(config.rows, config.cols, 0.37);

  for (int generation = 0; generation < 3; ++generation) {
    RcmArray array(config, Rng(generation));
    array.attach_substrate(substrate, identity_map(config.cols), false);
    array.program(generation % 2 == 0 ? a_weights : b_weights);
  }
  EXPECT_EQ(substrate->worn_out_devices(), config.rows * config.cols);

  RcmArray survivor(config, Rng(9));
  survivor.attach_substrate(substrate, identity_map(config.cols), false);
  survivor.program(a_weights);
  for (std::size_t r = 0; r < config.rows; ++r) {
    for (std::size_t j = 0; j < config.cols; ++j) {
      EXPECT_DOUBLE_EQ(survivor.conductance(r, j),
                       config.memristor.stuck_open_conductance());
    }
  }
}

TEST(CrossbarSubstrate, InjectedFaultPersistsThroughReload) {
  const RcmConfig config = small_config(6, 3);
  auto substrate = std::make_shared<CrossbarSubstrate>(config.memristor, config.rows,
                                                       config.cols, 51, 52);
  const auto weights = ramp_weights(config.rows, config.cols);

  RcmArray first(config, Rng(1));
  first.attach_substrate(substrate, identity_map(config.cols), true);
  first.program(weights);
  first.inject_fault(2, 1, RcmArray::StuckFault::kShort);
  EXPECT_EQ(substrate->device(2, 1).wear.health, MemristorHealth::kStuckShort);

  // Field damage survives a model re-creation and a reprogram attempt.
  RcmArray second(config, Rng(2));
  second.attach_substrate(substrate, identity_map(config.cols), true);
  second.program(weights);
  EXPECT_DOUBLE_EQ(second.conductance(2, 1), config.memristor.stuck_short_conductance());
  EXPECT_EQ(substrate->device(2, 1).wear.health, MemristorHealth::kStuckShort);
}

TEST(CrossbarSubstrate, ColumnMapAddressesPhysicalColumns) {
  const RcmConfig config = small_config(5, 2);
  // Substrate holds 4 physical columns; the array uses the last two.
  auto substrate =
      std::make_shared<CrossbarSubstrate>(config.memristor, config.rows, 4, 61, 62);
  const auto weights = ramp_weights(config.rows, config.cols);

  RcmArray array(config, Rng(1));
  array.attach_substrate(substrate, {2, 3}, false);
  array.program(weights);
  EXPECT_TRUE(substrate->device(0, 2).programmed);
  EXPECT_TRUE(substrate->device(0, 3).programmed);
  EXPECT_FALSE(substrate->device(0, 0).programmed);
  EXPECT_FALSE(substrate->device(0, 1).programmed);
}

TEST(CrossbarSubstrate, RetirementShapesColumnAllocation) {
  const MemristorSpec spec;
  CrossbarSubstrate substrate(spec, 4, 6, 71, 72);
  EXPECT_EQ(substrate.healthy_columns(), 6u);
  EXPECT_EQ(substrate.allocate_columns(4), (std::vector<std::size_t>{0, 1, 2, 3}));

  substrate.retire_column(1);
  EXPECT_TRUE(substrate.column_retired(1));
  EXPECT_EQ(substrate.retired_columns(), 1u);
  EXPECT_EQ(substrate.healthy_columns(), 5u);
  EXPECT_EQ(substrate.allocate_columns(4), (std::vector<std::size_t>{0, 2, 3, 4}));

  // Spare budget exhausted: retired columns top the allocation back up,
  // which the caller accounts as unrepairable.
  substrate.retire_column(3);
  substrate.retire_column(4);
  EXPECT_EQ(substrate.allocate_columns(5), (std::vector<std::size_t>{0, 2, 5, 1, 3}));

  EXPECT_THROW(substrate.allocate_columns(7), InvalidArgument);
}

TEST(CrossbarSubstrate, AttachValidatesItsArguments) {
  const RcmConfig config = small_config(4, 3);
  const auto weights = ramp_weights(config.rows, config.cols);

  {  // row mismatch
    auto substrate =
        std::make_shared<CrossbarSubstrate>(config.memristor, 5, config.cols, 1, 2);
    RcmArray array(config, Rng(1));
    EXPECT_THROW(array.attach_substrate(substrate, identity_map(config.cols), false),
                 InvalidArgument);
  }
  {  // column map out of range / duplicated / wrong size
    auto substrate = std::make_shared<CrossbarSubstrate>(config.memristor, config.rows,
                                                         config.cols, 1, 2);
    RcmArray array(config, Rng(1));
    EXPECT_THROW(array.attach_substrate(substrate, {0, 1, 3}, false), InvalidArgument);
    EXPECT_THROW(array.attach_substrate(substrate, {0, 1, 1}, false), InvalidArgument);
    EXPECT_THROW(array.attach_substrate(substrate, {0, 1}, false), InvalidArgument);
  }
  {  // attach after programming
    auto substrate = std::make_shared<CrossbarSubstrate>(config.memristor, config.rows,
                                                         config.cols, 1, 2);
    RcmArray array(config, Rng(1));
    array.program(weights);
    EXPECT_THROW(array.attach_substrate(substrate, identity_map(config.cols), false),
                 InvalidArgument);
  }
}

}  // namespace
}  // namespace spinsim
