#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "amm/evaluation.hpp"
#include "amm/spin_amm.hpp"
#include "crossbar/rcm.hpp"
#include "support/shared_dataset.hpp"

namespace spinsim {
namespace {

RcmConfig clean_config() {
  RcmConfig c;
  c.rows = 8;
  c.cols = 4;
  c.memristor.write_sigma = 0.0;
  return c;
}

std::vector<std::vector<double>> mid_weights(std::size_t rows, std::size_t cols) {
  return std::vector<std::vector<double>>(cols, std::vector<double>(rows, 0.5));
}

TEST(RcmFaults, OpenFaultCollapsesConductance) {
  RcmArray rcm(clean_config(), Rng(1));
  rcm.program(mid_weights(8, 4));
  const double before = rcm.conductance(2, 1);
  rcm.inject_fault(2, 1, RcmArray::StuckFault::kOpen);
  EXPECT_LT(rcm.conductance(2, 1), before / 50.0);
}

TEST(RcmFaults, ShortFaultExceedsProgrammableWindow) {
  RcmArray rcm(clean_config(), Rng(2));
  rcm.program(mid_weights(8, 4));
  rcm.inject_fault(3, 0, RcmArray::StuckFault::kShort);
  EXPECT_GT(rcm.conductance(3, 0), clean_config().memristor.g_max() * 1.5);
}

TEST(RcmFaults, FaultOnlyTouchesOneCell) {
  RcmArray rcm(clean_config(), Rng(3));
  rcm.program(mid_weights(8, 4));
  const double neighbour = rcm.conductance(2, 2);
  rcm.inject_fault(2, 1, RcmArray::StuckFault::kOpen);
  EXPECT_DOUBLE_EQ(rcm.conductance(2, 2), neighbour);
}

TEST(RcmFaults, ShortFaultStealsRowCurrent) {
  RcmArray rcm(clean_config(), Rng(4));
  rcm.program(mid_weights(8, 4));
  std::vector<double> inputs(8, 4e-6);
  const auto before = rcm.column_currents_ideal(inputs);
  rcm.inject_fault(0, 3, RcmArray::StuckFault::kShort);
  const auto after = rcm.column_currents_ideal(inputs);
  // The shorted column grabs more of row 0's current; the other columns
  // lose their share of that row.
  EXPECT_GT(after[3], before[3]);
  EXPECT_LT(after[0], before[0]);
}

TEST(RcmFaults, OutOfRangeRejected) {
  RcmArray rcm(clean_config(), Rng(5));
  EXPECT_THROW(rcm.inject_fault(99, 0, RcmArray::StuckFault::kOpen), InvalidArgument);
}

TEST(RcmFaults, RecognitionSurvivesAFewOpenFaults) {
  // Yield property: the distributed dot product tolerates sparse dead
  // cells — a handful of opens in a 48x10 array costs a few points, not
  // a collapse.
  const FaceDataset& ds = testing::small_dataset();
  FeatureSpec spec;
  spec.height = 8;
  spec.width = 6;
  SpinAmmConfig c;
  c.features = spec;
  c.templates = 10;
  c.dwn = DwnParams::from_barrier(20.0);
  c.seed = 6;
  SpinAmm amm(c);
  const auto templates = build_templates(ds, spec);
  amm.store_templates(templates);

  const auto accuracy = [&](SpinAmm& machine) {
    const AccuracyResult r = evaluate_classifier(ds, spec, [&](const FeatureVector& f) {
      return machine.recognize(f).winner;
    });
    return r.accuracy();
  };
  const double healthy = accuracy(amm);

  // Damage 5 random cells (~1 % of the array).
  Rng rng(7);
  RcmArray& rcm = amm.mutable_crossbar();
  for (int k = 0; k < 5; ++k) {
    const auto row = static_cast<std::size_t>(rng.uniform_int(0, 47));
    const auto col = static_cast<std::size_t>(rng.uniform_int(0, 9));
    rcm.inject_fault(row, col, RcmArray::StuckFault::kOpen);
  }
  const double damaged = accuracy(amm);
  EXPECT_GT(damaged, healthy - 0.15);
}

// S3 regressions: both stuck-fault polarities driven through a full
// SpinAmm recognition, pinning the failure signature the self-repair
// layer (LeafCacheEngine::verify_and_repair) exists to catch.

SpinAmm fault_machine(std::vector<FeatureVector>* templates_out) {
  FeatureSpec spec;
  spec.height = 8;
  spec.width = 6;
  SpinAmmConfig c;
  c.features = spec;
  c.templates = 10;
  c.dwn = DwnParams::from_barrier(20.0);
  c.seed = 6;
  SpinAmm amm(c);
  *templates_out = build_templates(testing::small_dataset(), spec);
  amm.store_templates(*templates_out);
  return amm;
}

TEST(RcmFaults, OpenFaultsStarveTheWinningColumn) {
  std::vector<FeatureVector> templates;
  SpinAmm amm = fault_machine(&templates);

  // Query with a stored template: it wins with a healthy margin.
  const FeatureVector probe = templates[3];
  const Recognition healthy = amm.recognize(probe);
  ASSERT_EQ(healthy.winner, 3u);
  ASSERT_GT(healthy.margin, 0.05);

  // Kill the winning column's strongest junctions: its dot product can
  // only fall, so the analog margin shrinks (or the winner is lost
  // outright). The quantised DOM saturates for any strong match, so the
  // margin is the observable that moves first.
  RcmArray& rcm = amm.mutable_crossbar();
  std::vector<std::size_t> rows(48);
  for (std::size_t r = 0; r < rows.size(); ++r) rows[r] = r;
  std::sort(rows.begin(), rows.end(), [&](std::size_t a, std::size_t b) {
    return rcm.conductance(a, 3) > rcm.conductance(b, 3);
  });
  for (std::size_t k = 0; k < 12; ++k) {
    rcm.inject_fault(rows[k], 3, RcmArray::StuckFault::kOpen);
  }
  const Recognition damaged = amm.recognize(probe);
  if (damaged.winner == 3u) {
    EXPECT_LT(damaged.margin, healthy.margin);
  } else {
    EXPECT_NE(damaged.winner, 3u);  // the template is no longer recognised
  }
}

TEST(RcmFaults, ShortFaultsLetARivalHijackTheWinner) {
  std::vector<FeatureVector> templates;
  SpinAmm amm = fault_machine(&templates);

  const FeatureVector probe = templates[3];
  ASSERT_EQ(amm.recognize(probe).winner, 3u);

  // Over-formed devices on a rival column inflate its collected current
  // on every query; enough of them and the rival outscores the true
  // match. This is the polarity repair must catch fastest: one short
  // corrupts *other* templates' answers, not just its own.
  RcmArray& rcm = amm.mutable_crossbar();
  for (std::size_t row = 0; row < 48; row += 4) {
    rcm.inject_fault(row, 7, RcmArray::StuckFault::kShort);
  }
  const Recognition hijacked = amm.recognize(probe);
  EXPECT_EQ(hijacked.winner, 7u);
}

}  // namespace
}  // namespace spinsim
