#include <gtest/gtest.h>

#include "amm/evaluation.hpp"
#include "amm/spin_amm.hpp"
#include "crossbar/rcm.hpp"
#include "support/shared_dataset.hpp"

namespace spinsim {
namespace {

RcmConfig clean_config() {
  RcmConfig c;
  c.rows = 8;
  c.cols = 4;
  c.memristor.write_sigma = 0.0;
  return c;
}

std::vector<std::vector<double>> mid_weights(std::size_t rows, std::size_t cols) {
  return std::vector<std::vector<double>>(cols, std::vector<double>(rows, 0.5));
}

TEST(RcmFaults, OpenFaultCollapsesConductance) {
  RcmArray rcm(clean_config(), Rng(1));
  rcm.program(mid_weights(8, 4));
  const double before = rcm.conductance(2, 1);
  rcm.inject_fault(2, 1, RcmArray::StuckFault::kOpen);
  EXPECT_LT(rcm.conductance(2, 1), before / 50.0);
}

TEST(RcmFaults, ShortFaultExceedsProgrammableWindow) {
  RcmArray rcm(clean_config(), Rng(2));
  rcm.program(mid_weights(8, 4));
  rcm.inject_fault(3, 0, RcmArray::StuckFault::kShort);
  EXPECT_GT(rcm.conductance(3, 0), clean_config().memristor.g_max() * 1.5);
}

TEST(RcmFaults, FaultOnlyTouchesOneCell) {
  RcmArray rcm(clean_config(), Rng(3));
  rcm.program(mid_weights(8, 4));
  const double neighbour = rcm.conductance(2, 2);
  rcm.inject_fault(2, 1, RcmArray::StuckFault::kOpen);
  EXPECT_DOUBLE_EQ(rcm.conductance(2, 2), neighbour);
}

TEST(RcmFaults, ShortFaultStealsRowCurrent) {
  RcmArray rcm(clean_config(), Rng(4));
  rcm.program(mid_weights(8, 4));
  std::vector<double> inputs(8, 4e-6);
  const auto before = rcm.column_currents_ideal(inputs);
  rcm.inject_fault(0, 3, RcmArray::StuckFault::kShort);
  const auto after = rcm.column_currents_ideal(inputs);
  // The shorted column grabs more of row 0's current; the other columns
  // lose their share of that row.
  EXPECT_GT(after[3], before[3]);
  EXPECT_LT(after[0], before[0]);
}

TEST(RcmFaults, OutOfRangeRejected) {
  RcmArray rcm(clean_config(), Rng(5));
  EXPECT_THROW(rcm.inject_fault(99, 0, RcmArray::StuckFault::kOpen), InvalidArgument);
}

TEST(RcmFaults, RecognitionSurvivesAFewOpenFaults) {
  // Yield property: the distributed dot product tolerates sparse dead
  // cells — a handful of opens in a 48x10 array costs a few points, not
  // a collapse.
  const FaceDataset& ds = testing::small_dataset();
  FeatureSpec spec;
  spec.height = 8;
  spec.width = 6;
  SpinAmmConfig c;
  c.features = spec;
  c.templates = 10;
  c.dwn = DwnParams::from_barrier(20.0);
  c.seed = 6;
  SpinAmm amm(c);
  const auto templates = build_templates(ds, spec);
  amm.store_templates(templates);

  const auto accuracy = [&](SpinAmm& machine) {
    const AccuracyResult r = evaluate_classifier(ds, spec, [&](const FeatureVector& f) {
      return machine.recognize(f).winner;
    });
    return r.accuracy();
  };
  const double healthy = accuracy(amm);

  // Damage 5 random cells (~1 % of the array).
  Rng rng(7);
  RcmArray& rcm = amm.mutable_crossbar();
  for (int k = 0; k < 5; ++k) {
    const auto row = static_cast<std::size_t>(rng.uniform_int(0, 47));
    const auto col = static_cast<std::size_t>(rng.uniform_int(0, 9));
    rcm.inject_fault(row, col, RcmArray::StuckFault::kOpen);
  }
  const double damaged = accuracy(amm);
  EXPECT_GT(damaged, healthy - 0.15);
}

}  // namespace
}  // namespace spinsim
