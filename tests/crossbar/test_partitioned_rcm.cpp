#include "crossbar/partitioned_rcm.hpp"

#include <gtest/gtest.h>

#include "core/random.hpp"
#include "support/random_weights.hpp"

namespace spinsim {
namespace {

using testing::random_columns;

PartitionedRcmConfig clean_config(std::size_t rows = 32, std::size_t cols = 4,
                                  std::size_t blocks = 4) {
  PartitionedRcmConfig c;
  c.rows = rows;
  c.cols = cols;
  c.blocks = blocks;
  c.memristor.write_sigma = 0.0;
  return c;
}

TEST(PartitionedRcm, RejectsNonDividingBlocks) {
  PartitionedRcmConfig c = clean_config(30, 4, 4);  // 30 % 4 != 0
  EXPECT_THROW(PartitionedRcm p(c, Rng(1)), InvalidArgument);
}

TEST(PartitionedRcm, BlockCountAndGeometry) {
  PartitionedRcm p(clean_config(32, 4, 4), Rng(2));
  EXPECT_EQ(p.blocks(), 4u);
  EXPECT_EQ(p.block(0).rows(), 8u);
  EXPECT_EQ(p.block(0).cols(), 4u);
  EXPECT_THROW(p.block(4), InvalidArgument);
}

TEST(PartitionedRcm, EvaluateBeforeProgramThrows) {
  PartitionedRcm p(clean_config(), Rng(3));
  EXPECT_THROW(p.column_currents_ideal(std::vector<double>(32, 1e-6)), InvalidArgument);
}

TEST(PartitionedRcm, IdealCurrentsMatchPerBlockClosedForm) {
  const auto config = clean_config(16, 3, 2);
  PartitionedRcm p(config, Rng(4));
  const auto w = random_columns(16, 3, 5);
  p.program(w);

  std::vector<double> inputs(16);
  Rng rng(6);
  for (auto& v : inputs) {
    v = rng.uniform(1e-6, 8e-6);
  }
  const auto totals = p.column_currents_ideal(inputs);

  for (std::size_t j = 0; j < 3; ++j) {
    double expected = 0.0;
    for (std::size_t b = 0; b < 2; ++b) {
      for (std::size_t r = 0; r < 8; ++r) {
        const std::size_t global = b * 8 + r;
        expected += inputs[global] * p.block(b).conductance(r, j) /
                    p.block(b).row_conductance(r);
      }
    }
    EXPECT_NEAR(totals[j], expected, 1e-18);
  }
}

TEST(PartitionedRcm, RowConductanceMapsThroughBlocks) {
  const auto config = clean_config(16, 3, 2);
  PartitionedRcm p(config, Rng(7));
  p.program(random_columns(16, 3, 8));
  EXPECT_DOUBLE_EQ(p.row_conductance(0), p.block(0).row_conductance(0));
  EXPECT_DOUBLE_EQ(p.row_conductance(8), p.block(1).row_conductance(0));
  EXPECT_THROW(p.row_conductance(16), InvalidArgument);
}

TEST(PartitionedRcm, MatchesMonolithicIdealEvaluation) {
  // With per-block dummy equalisation the ideal dot products differ
  // slightly from a monolithic array's, but correlate extremely well.
  const std::size_t rows = 64;
  const std::size_t cols = 6;
  const auto w = random_columns(rows, cols, 9);

  RcmConfig mono_config;
  mono_config.rows = rows;
  mono_config.cols = cols;
  mono_config.memristor.write_sigma = 0.0;
  RcmArray mono(mono_config, Rng(10));
  mono.program(w);

  PartitionedRcm part(clean_config(rows, cols, 4), Rng(11));
  part.program(w);

  std::vector<double> inputs(rows, 5e-6);
  const auto mono_currents = mono.column_currents_ideal(inputs);
  const auto part_currents = part.column_currents_ideal(inputs);
  // Ranking must agree on a well-separated input.
  const auto rank = [](const std::vector<double>& v) {
    return static_cast<std::size_t>(std::max_element(v.begin(), v.end()) - v.begin());
  };
  EXPECT_EQ(rank(mono_currents), rank(part_currents));
  for (std::size_t j = 0; j < cols; ++j) {
    EXPECT_NEAR(part_currents[j], mono_currents[j], 0.15 * mono_currents[j]);
  }
}

TEST(PartitionedRcm, ShorterBarsReduceParasiticError) {
  // The Section-5 claim this class exists to quantify: partitioning a
  // tall array into blocks cuts the cumulative column IR drop, pulling
  // the parasitic evaluation toward the ideal one.
  const std::size_t rows = 128;
  const std::size_t cols = 6;
  const auto w = random_columns(rows, cols, 12);

  RcmConfig mono_config;
  mono_config.rows = rows;
  mono_config.cols = cols;
  mono_config.memristor.write_sigma = 0.0;
  mono_config.cell_pitch_um = 0.5;  // exaggerate wire length
  RcmArray mono(mono_config, Rng(13));
  mono.program(w);

  PartitionedRcmConfig part_config = clean_config(rows, cols, 8);
  part_config.cell_pitch_um = 0.5;
  PartitionedRcm part(part_config, Rng(13));
  part.program(w);

  std::vector<double> inputs(rows, 5e-6);
  const auto mono_ideal = mono.column_currents_ideal(inputs);
  const auto mono_para = mono.column_currents_parasitic(inputs);
  const auto part_ideal = part.column_currents_ideal(inputs);
  const auto part_para = part.column_currents_parasitic(inputs);

  double mono_err = 0.0;
  double part_err = 0.0;
  for (std::size_t j = 0; j < cols; ++j) {
    mono_err += std::abs(mono_para[j] - mono_ideal[j]) / mono_ideal[j];
    part_err += std::abs(part_para[j] - part_ideal[j]) / part_ideal[j];
  }
  EXPECT_LT(part_err, mono_err);
}

TEST(PartitionedRcm, SingleBlockDegeneratesToMonolithic) {
  const std::size_t rows = 16;
  const std::size_t cols = 3;
  const auto w = random_columns(rows, cols, 14);

  PartitionedRcm part(clean_config(rows, cols, 1), Rng(15));
  part.program(w);
  RcmConfig mono_config;
  mono_config.rows = rows;
  mono_config.cols = cols;
  mono_config.memristor.write_sigma = 0.0;
  RcmArray mono(mono_config, Rng(15));
  // Note: the partition forks its block RNG once; conductances match the
  // ideal grid exactly because write noise is off.
  mono.program(w);

  std::vector<double> inputs(rows, 3e-6);
  const auto a = part.column_currents_ideal(inputs);
  const auto b = mono.column_currents_ideal(inputs);
  for (std::size_t j = 0; j < cols; ++j) {
    EXPECT_NEAR(a[j], b[j], 1e-15);
  }
}

TEST(PartitionedRcm, ProgramValidatesShapes) {
  PartitionedRcm p(clean_config(16, 3, 2), Rng(16));
  EXPECT_THROW(p.program(random_columns(16, 2, 17)), InvalidArgument);  // wrong cols
  EXPECT_THROW(p.program(random_columns(8, 3, 18)), InvalidArgument);   // wrong rows
}

}  // namespace
}  // namespace spinsim
