#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/random.hpp"
#include "crossbar/rcm.hpp"
#include "support/random_weights.hpp"

namespace spinsim {
namespace {

using testing::random_columns;

std::vector<double> random_inputs(std::size_t rows, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> in(rows);
  for (auto& v : in) {
    v = rng.uniform(0.0, 10e-6);
  }
  return in;
}

/// Max per-column deviation relative to the largest reference current.
double relative_error(const std::vector<double>& test, const std::vector<double>& ref) {
  double scale = 0.0;
  for (const double v : ref) {
    scale = std::max(scale, std::abs(v));
  }
  double worst = 0.0;
  for (std::size_t j = 0; j < ref.size(); ++j) {
    worst = std::max(worst, std::abs(test[j] - ref[j]));
  }
  return scale > 0.0 ? worst / scale : worst;
}

/// Reference currents via tight-tolerance CG on an identically-programmed
/// array (identical seed => identical realised conductances).
void expect_paths_agree(const RcmConfig& config, std::uint64_t seed, double v_bias,
                        bool inject_faults, double cg_tolerance = 1e-8) {
  RcmArray reference(config, Rng(seed));
  RcmArray direct(config, Rng(seed));
  const auto columns = random_columns(config.rows, config.cols, seed + 1);
  reference.program(columns);
  direct.program(columns);
  if (inject_faults) {
    reference.inject_fault(1, 2, RcmArray::StuckFault::kOpen);
    direct.inject_fault(1, 2, RcmArray::StuckFault::kOpen);
    reference.inject_fault(config.rows - 1, config.cols - 1, RcmArray::StuckFault::kShort);
    direct.inject_fault(config.rows - 1, config.cols - 1, RcmArray::StuckFault::kShort);
  }

  const std::vector<double> inputs = random_inputs(config.rows, seed + 2);
  reference.set_parasitic_solver(CrossbarSolver::kCg);
  const std::vector<double> i_cg = reference.column_currents_parasitic(inputs, v_bias);

  direct.set_parasitic_solver(CrossbarSolver::kFactored);
  const std::vector<double> i_factored = direct.column_currents_parasitic(inputs, v_bias);
  EXPECT_LT(relative_error(i_factored, i_cg), cg_tolerance);

  direct.set_parasitic_solver(CrossbarSolver::kTransfer);
  const std::vector<double> i_transfer = direct.column_currents_parasitic(inputs, v_bias);
  EXPECT_LT(relative_error(i_transfer, i_cg), cg_tolerance);

  // Factored and transfer are both exact (up to roundoff): they must
  // agree with each other much tighter than either agrees with CG.
  EXPECT_LT(relative_error(i_transfer, i_factored), 1e-10);
}

TEST(CrossbarSolverPaths, Fig03ConfigurationAgrees) {
  // fig03 runs the default 128x40 paper array.
  RcmConfig config;
  expect_paths_agree(config, 11, 0.0, /*inject_faults=*/false);
}

TEST(CrossbarSolverPaths, Fig09ResistanceSweepAgrees) {
  // fig09a scales the memristor range; the extremes change the wire-to-
  // device conductance ratio (and the system conditioning) the most.
  for (const double s : {0.25, 1.0, 8.0}) {
    RcmConfig config;
    config.rows = 64;
    config.cols = 20;
    config.memristor.r_min = 1e3 * s;
    config.memristor.r_max = 32e3 * s;
    expect_paths_agree(config, 13 + static_cast<std::uint64_t>(s * 4), 0.0,
                       /*inject_faults=*/false);
  }
}

TEST(CrossbarSolverPaths, NonZeroBiasAgrees) {
  // With a nonzero bias the Dirichlet terms dominate the RHS, so the CG
  // reference's relative-residual stop (1e-10 of ||b||) leaves absolute
  // errors that are large against the uA-scale signal currents — the
  // looser bound measures CG's error, not the direct solver's (the two
  // exact paths still agree to 1e-10 against each other above).
  RcmConfig config;
  config.rows = 32;
  config.cols = 12;
  expect_paths_agree(config, 17, 30e-3, /*inject_faults=*/false, /*cg_tolerance=*/1e-5);
}

TEST(CrossbarSolverPaths, NoDummyColumnAgrees) {
  RcmConfig config;
  config.rows = 48;
  config.cols = 16;
  config.dummy_column = false;
  expect_paths_agree(config, 19, 0.0, /*inject_faults=*/false);
}

TEST(CrossbarSolverPaths, FaultedCrossbarAgrees) {
  RcmConfig config;
  config.rows = 64;
  config.cols = 20;
  expect_paths_agree(config, 23, 0.0, /*inject_faults=*/true);
}

TEST(CrossbarSolverPaths, TransferCacheInvalidatedByFault) {
  RcmConfig config;
  config.rows = 16;
  config.cols = 8;
  RcmArray rcm(config, Rng(29));
  rcm.program(random_columns(config.rows, config.cols, 30));
  const std::vector<double> inputs = random_inputs(config.rows, 31);
  const std::vector<double> before = rcm.column_currents_parasitic(inputs);
  ASSERT_TRUE(rcm.transfer_ready());

  rcm.inject_fault(3, 4, RcmArray::StuckFault::kOpen);
  EXPECT_FALSE(rcm.transfer_ready());
  const std::vector<double> after = rcm.column_currents_parasitic(inputs);
  // The open device must actually change the picture (column 4 loses
  // current), proving the operator was rebuilt rather than reused.
  EXPECT_NE(before[4], after[4]);
}

TEST(CrossbarSolverPaths, TransferCacheInvalidatedByBiasChange) {
  RcmConfig config;
  config.rows = 16;
  config.cols = 8;
  RcmArray rcm(config, Rng(37));
  rcm.program(random_columns(config.rows, config.cols, 38));
  const std::vector<double> inputs = random_inputs(config.rows, 39);
  (void)rcm.column_currents_parasitic(inputs, 0.0);
  ASSERT_TRUE(rcm.transfer_ready(0.0));
  EXPECT_FALSE(rcm.transfer_ready(10e-3));

  rcm.set_parasitic_solver(CrossbarSolver::kCg);
  RcmArray twin(config, Rng(37));
  twin.program(random_columns(config.rows, config.cols, 38));
  const std::vector<double> i_cg = rcm.column_currents_parasitic(inputs, 10e-3);
  const std::vector<double> i_tr = twin.column_currents_parasitic(inputs, 10e-3);
  // Loose bound for the same reason as NonZeroBiasAgrees: the CG
  // reference carries the bias-scaled residual error.
  EXPECT_LT(relative_error(i_tr, i_cg), 1e-5);
}

TEST(CrossbarSolverPaths, TransferBeforePrepareThrows) {
  RcmConfig config;
  config.rows = 8;
  config.cols = 4;
  RcmArray rcm(config, Rng(41));
  rcm.program(random_columns(config.rows, config.cols, 42));
  const std::vector<double> inputs = random_inputs(config.rows, 43);
  EXPECT_THROW(rcm.column_currents_transfer(inputs), InvalidArgument);
  rcm.prepare_parasitic();
  EXPECT_NO_THROW(rcm.column_currents_transfer(inputs));
}

TEST(CrossbarSolverPaths, EqualizeRowsStillUniform) {
  // The single-pass equalize_rows must keep every row's total conductance
  // identical (the dummy pad's whole purpose).
  RcmConfig config;
  config.rows = 24;
  config.cols = 10;
  RcmArray rcm(config, Rng(47));
  rcm.program(random_columns(config.rows, config.cols, 48));
  const double g0 = rcm.row_conductance(0);
  for (std::size_t r = 1; r < config.rows; ++r) {
    EXPECT_NEAR(rcm.row_conductance(r), g0, 1e-12 * g0);
  }
}

}  // namespace
}  // namespace spinsim
