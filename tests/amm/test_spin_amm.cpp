#include "amm/spin_amm.hpp"

#include <gtest/gtest.h>

#include "amm/evaluation.hpp"
#include "support/shared_dataset.hpp"

namespace spinsim {
namespace {

/// Fast config bound to the small test dataset (10 people, 8x6 features).
SpinAmmConfig small_config() {
  SpinAmmConfig c;
  c.features.height = 8;
  c.features.width = 6;
  c.features.bits = 5;
  c.templates = 10;
  c.dwn = DwnParams::from_barrier(20.0);
  c.seed = 77;
  return c;
}

std::vector<FeatureVector> small_templates(const SpinAmmConfig& c) {
  return build_templates(testing::small_dataset(), c.features);
}

TEST(SpinAmm, RecognisesTrainingImages) {
  const SpinAmmConfig c = small_config();
  SpinAmm amm(c);
  amm.store_templates(small_templates(c));

  const FaceDataset& ds = testing::small_dataset();
  int correct = 0;
  int total = 0;
  for (const auto& sample : ds.all()) {
    const auto r = amm.recognize(extract_features(sample.image, c.features));
    if (r.winner == sample.individual) {
      ++correct;
    }
    ++total;
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.85);
}

TEST(SpinAmm, WinnerAgreesWithIdealClassifierOnMostInputs) {
  const SpinAmmConfig c = small_config();
  SpinAmm amm(c);
  const auto templates = small_templates(c);
  amm.store_templates(templates);

  const FaceDataset& ds = testing::small_dataset();
  int agree = 0;
  int total = 0;
  for (const auto& sample : ds.all()) {
    const FeatureVector f = extract_features(sample.image, c.features);
    if (amm.recognize(f).winner == classify_ideal(f, templates)) {
      ++agree;
    }
    ++total;
  }
  EXPECT_GT(static_cast<double>(agree) / total, 0.8);
}

TEST(SpinAmm, DomAndMarginArePlausible) {
  const SpinAmmConfig c = small_config();
  SpinAmm amm(c);
  amm.store_templates(small_templates(c));
  const auto f = extract_features(testing::small_dataset().image(4, 0), c.features);
  const auto r = amm.recognize(f);
  EXPECT_GT(r.dom, 0u);
  EXPECT_LE(r.dom, 31u);
  EXPECT_GT(r.margin, -1.0);
  EXPECT_LT(r.margin, 1.0);
  ASSERT_NE(r.spin(), nullptr);
  EXPECT_EQ(r.spin()->column_currents.size(), c.templates);
}

TEST(SpinAmm, ColumnCurrentsBoundedByFullScale) {
  const SpinAmmConfig c = small_config();
  SpinAmm amm(c);
  amm.store_templates(small_templates(c));
  const auto f = extract_features(testing::small_dataset().image(0, 0), c.features);
  for (double i : amm.column_currents(f)) {
    EXPECT_GE(i, 0.0);
    EXPECT_LT(i, 1.5 * c.full_scale_current());
  }
}

TEST(SpinAmm, AcceptThresholdRejectsWeakMatches) {
  SpinAmmConfig c = small_config();
  c.accept_threshold = 31;  // nearly impossible DOM
  SpinAmm amm(c);
  amm.store_templates(small_templates(c));
  const auto f = extract_features(testing::small_dataset().image(0, 0), c.features);
  const auto r = amm.recognize(f);
  EXPECT_EQ(r.accepted, r.dom >= 31u);
}

TEST(SpinAmm, ParasiticModelStillRecognises) {
  SpinAmmConfig c = small_config();
  c.model = CrossbarModel::kParasitic;
  SpinAmm amm(c);
  amm.store_templates(small_templates(c));
  const FaceDataset& ds = testing::small_dataset();
  int correct = 0;
  for (std::size_t p = 0; p < ds.individuals(); ++p) {
    const auto f = extract_features(ds.image(p, 0), c.features);
    if (amm.recognize(f).winner == p) {
      ++correct;
    }
  }
  EXPECT_GE(correct, 8);
}

TEST(SpinAmm, ParasiticCurrentsCloseToIdealAtPaperWiring) {
  SpinAmmConfig ideal_c = small_config();
  SpinAmmConfig para_c = small_config();
  para_c.model = CrossbarModel::kParasitic;
  SpinAmm ideal_amm(ideal_c);
  SpinAmm para_amm(para_c);
  ideal_amm.store_templates(small_templates(ideal_c));
  para_amm.store_templates(small_templates(para_c));

  const auto f = extract_features(testing::small_dataset().image(2, 1), ideal_c.features);
  const auto ii = ideal_amm.column_currents(f);
  const auto pp = para_amm.column_currents(f);
  for (std::size_t j = 0; j < ii.size(); ++j) {
    EXPECT_NEAR(pp[j], ii[j], 0.1 * ii[j] + 1e-9);
  }
}

TEST(SpinAmm, DeterministicForFixedSeed) {
  const SpinAmmConfig c = small_config();
  SpinAmm a(c);
  SpinAmm b(c);
  a.store_templates(small_templates(c));
  b.store_templates(small_templates(c));
  const auto f = extract_features(testing::small_dataset().image(3, 2), c.features);
  const auto ra = a.recognize(f);
  const auto rb = b.recognize(f);
  EXPECT_EQ(ra.winner, rb.winner);
  EXPECT_EQ(ra.dom, rb.dom);
}

TEST(SpinAmm, PowerReportMatchesStandaloneModel) {
  const SpinAmmConfig c = small_config();
  SpinAmm amm(c);
  const PowerReport r = amm.power();
  const PowerReport ref = spin_amm_power(amm.power_design());
  EXPECT_DOUBLE_EQ(r.total().in(units::W), ref.total().in(units::W));
  EXPECT_GT(r.total(), Power{});
}

TEST(SpinAmm, RecognizeBeforeStoreThrows) {
  SpinAmm amm(small_config());
  FeatureVector f;
  f.spec = small_config().features;
  f.analog.assign(48, 0.5);
  f.digital.assign(48, 16);
  EXPECT_THROW(amm.recognize(f), InvalidArgument);
}

TEST(SpinAmm, TemplateShapeValidated) {
  const SpinAmmConfig c = small_config();
  SpinAmm amm(c);
  std::vector<FeatureVector> bad(c.templates);
  for (auto& t : bad) {
    t.analog.assign(5, 0.5);  // wrong dimension
    t.digital.assign(5, 10);
  }
  EXPECT_THROW(amm.store_templates(bad), InvalidArgument);
}

TEST(SpinAmm, PaperScalePipelineRuns) {
  // Full 128x40 configuration on a handful of images.
  SpinAmmConfig c;
  c.dwn = DwnParams::from_barrier(20.0);
  SpinAmm amm(c);
  const FaceDataset& ds = testing::paper_dataset();
  amm.store_templates(build_templates(ds, c.features));
  int correct = 0;
  for (std::size_t p = 0; p < 10; ++p) {
    const auto f = extract_features(ds.image(p * 4, 0), c.features);
    if (amm.recognize(f).winner == p * 4) {
      ++correct;
    }
  }
  EXPECT_GE(correct, 8);
}

}  // namespace
}  // namespace spinsim
