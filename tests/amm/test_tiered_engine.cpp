/// TieredEngine: escalation policy, conformance against the flat
/// authoritative engine, counters, and the tier-mix energy estimate.

#include "amm/tiered_engine.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "amm/digital_amm.hpp"
#include "amm/hierarchical_amm.hpp"
#include "amm/spin_amm.hpp"
#include "support/shared_dataset.hpp"

namespace spinsim {
namespace {

FeatureSpec small_spec() {
  FeatureSpec s;
  s.height = 8;
  s.width = 6;
  s.bits = 5;
  return s;
}

std::vector<FeatureVector> all_inputs() {
  std::vector<FeatureVector> inputs;
  for (const auto& sample : testing::small_dataset().all()) {
    inputs.push_back(extract_features(sample.image, small_spec()));
  }
  return inputs;
}

/// Deterministic flat spin tier-1 (no thermal noise; mismatch is sampled
/// from the fixed seed, so two engines with this config are identical).
SpinAmmConfig tier1_config(std::size_t columns) {
  SpinAmmConfig c;
  c.features = small_spec();
  c.templates = columns;
  c.dwn = DwnParams::from_barrier(20.0);
  c.seed = 33;
  return c;
}

HierarchicalAmmConfig tier0_config() {
  HierarchicalAmmConfig c;
  c.features = small_spec();
  c.clusters = 3;
  c.dwn = DwnParams::from_barrier(20.0);
  c.seed = 5;
  return c;
}

std::unique_ptr<TieredEngine> make_tiered(const TieredEngineConfig& policy,
                                          std::size_t templates) {
  return std::make_unique<TieredEngine>(std::make_unique<HierarchicalAmm>(tier0_config()),
                                        std::make_unique<SpinAmm>(tier1_config(templates)),
                                        policy);
}

TEST(TieredEngine, RejectsNullTiers) {
  EXPECT_THROW(TieredEngine(nullptr, std::make_unique<DigitalAmm>(DigitalAmmConfig{}), {}),
               InvalidArgument);
}

TEST(TieredEngine, ForcedEscalationMatchesFlatTier1) {
  // escalation_margin above any reachable margin escalates every query,
  // so the tiered engine must answer winner-for-winner like a flat
  // instance of its tier-1 configuration — the conformance contract the
  // service-level test repeats through RecognitionService.
  const auto templates = build_templates(testing::small_dataset(), small_spec());
  const auto inputs = all_inputs();

  SpinAmm flat(tier1_config(templates.size()));
  flat.store_templates(templates);

  TieredEngineConfig policy;
  policy.escalation_margin = 2.0;
  auto tiered = make_tiered(policy, templates.size());
  tiered->store_templates(templates);

  const std::vector<Recognition> got = tiered->recognize_batch(inputs);
  ASSERT_EQ(got.size(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const Recognition expected = flat.recognize(inputs[i]);
    EXPECT_EQ(got[i].winner, expected.winner) << "input " << i;
    EXPECT_EQ(got[i].dom, expected.dom) << "input " << i;
    ASSERT_NE(got[i].tiered(), nullptr);
    EXPECT_EQ(got[i].tiered()->tier, 1u);
  }
  const TieredCounters counters = tiered->counters();
  EXPECT_EQ(counters.queries, inputs.size());
  EXPECT_EQ(counters.escalated, inputs.size());
  EXPECT_DOUBLE_EQ(counters.escalation_rate(), 1.0);
}

TEST(TieredEngine, NeverEscalatingMatchesTier0) {
  const auto templates = build_templates(testing::small_dataset(), small_spec());
  const auto inputs = all_inputs();

  HierarchicalAmm reference(tier0_config());
  reference.store_templates(templates);

  TieredEngineConfig policy;
  policy.escalation_margin = 0.0;  // margin >= 0 always, strict < never fires
  policy.escalate_rejected = false;
  policy.escalate_ties = false;
  auto tiered = make_tiered(policy, templates.size());
  tiered->store_templates(templates);

  const std::vector<Recognition> expected = reference.recognize_batch(inputs);
  const std::vector<Recognition> got = tiered->recognize_batch(inputs);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].winner, expected[i].winner) << "input " << i;
    EXPECT_DOUBLE_EQ(got[i].margin, expected[i].margin) << "input " << i;
    ASSERT_NE(got[i].tiered(), nullptr);
    EXPECT_EQ(got[i].tiered()->tier, 0u);
    EXPECT_DOUBLE_EQ(got[i].tiered()->tier0_margin, expected[i].margin) << "input " << i;
  }
  EXPECT_EQ(tiered->counters().escalated, 0u);
}

TEST(TieredEngine, BatchMatchesSequentialRecognize) {
  const auto templates = build_templates(testing::small_dataset(), small_spec());
  const auto inputs = all_inputs();

  TieredEngineConfig policy;
  policy.escalation_margin = 0.05;
  auto batched = make_tiered(policy, templates.size());
  batched->store_templates(templates);
  auto sequential = make_tiered(policy, templates.size());
  sequential->store_templates(templates);

  const std::vector<Recognition> got = batched->recognize_batch(inputs, /*threads=*/2);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const Recognition expected = sequential->recognize(inputs[i]);
    EXPECT_EQ(got[i].winner, expected.winner) << "input " << i;
    ASSERT_NE(got[i].tiered(), nullptr);
    ASSERT_NE(expected.tiered(), nullptr);
    EXPECT_EQ(got[i].tiered()->tier, expected.tiered()->tier) << "input " << i;
  }
  EXPECT_EQ(batched->counters().queries, sequential->counters().queries);
  EXPECT_EQ(batched->counters().escalated, sequential->counters().escalated);
}

TEST(TieredEngine, CountersTrackTierDetails) {
  const auto templates = build_templates(testing::small_dataset(), small_spec());
  const auto inputs = all_inputs();

  TieredEngineConfig policy;
  policy.escalation_margin = 0.05;
  auto tiered = make_tiered(policy, templates.size());
  tiered->store_templates(templates);

  const std::vector<Recognition> got = tiered->recognize_batch(inputs);
  std::size_t escalated = 0;
  std::size_t rejected = 0;
  for (const auto& r : got) {
    ASSERT_NE(r.tiered(), nullptr);
    escalated += r.tiered()->tier == 1 ? 1 : 0;
    rejected += r.accepted ? 0 : 1;
  }
  const TieredCounters counters = tiered->counters();
  EXPECT_EQ(counters.queries, got.size());
  EXPECT_EQ(counters.escalated, escalated);
  EXPECT_EQ(counters.rejected, rejected);
}

TEST(TieredEngine, EnergyEstimateFollowsObservedTierMix) {
  const auto templates = build_templates(testing::small_dataset(), small_spec());
  const auto inputs = all_inputs();

  TieredEngineConfig policy;
  policy.escalation_margin = 0.0;
  policy.escalate_rejected = false;
  policy.escalate_ties = false;
  auto tiered = make_tiered(policy, templates.size());
  tiered->store_templates(templates);

  const EnergyPerQuery joule_per_query = units::J / units::query;
  const double e0 = tiered->tier0().energy_per_query().in(joule_per_query);
  const double e1 = tiered->tier1().energy_per_query().in(joule_per_query);
  ASSERT_GT(e0, 0.0);
  ASSERT_GT(e1, 0.0);

  // No traffic yet: the estimate assumes full escalation (upper bound).
  EXPECT_NEAR(tiered->energy_per_query().in(joule_per_query), e0 + e1, 1e-12 * (e0 + e1));

  // All of this policy's traffic terminates in tier 0.
  (void)tiered->recognize_batch(inputs);
  EXPECT_NEAR(tiered->energy_per_query().in(joule_per_query), e0, 1e-12 * e0);

  // The tiered active path must undercut the flat authoritative engine
  // when nothing escalates — the Section-5 energy argument, routed.
  EXPECT_LT(tiered->energy_per_query().in(joule_per_query), e1);
}

TEST(TieredEngine, PowerReportCoversBothTiers) {
  const auto templates = build_templates(testing::small_dataset(), small_spec());
  auto tiered = make_tiered({}, templates.size());
  tiered->store_templates(templates);
  const PowerReport report = tiered->power();
  bool saw_tier0 = false;
  bool saw_tier1 = false;
  for (const auto& item : report.items()) {
    saw_tier0 = saw_tier0 || item.name.rfind("tier0: ", 0) == 0;
    saw_tier1 = saw_tier1 || item.name.rfind("tier1: ", 0) == 0;
  }
  EXPECT_TRUE(saw_tier0);
  EXPECT_TRUE(saw_tier1);
  EXPECT_GT(report.total(), Power{});
}

}  // namespace
}  // namespace spinsim
