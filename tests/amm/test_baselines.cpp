#include <gtest/gtest.h>

#include "amm/digital_amm.hpp"
#include "amm/mscmos_amm.hpp"
#include "support/shared_dataset.hpp"

namespace spinsim {
namespace {

FeatureSpec small_spec() {
  FeatureSpec s;
  s.height = 8;
  s.width = 6;
  return s;
}

TEST(DigitalAmm, MatchesIdealClassifierExactly) {
  // The digital MAC design is bit-exact: it must agree with the software
  // integer classifier on every input.
  DigitalAmmConfig c;
  c.features = small_spec();
  c.templates = 10;
  DigitalAmm amm(c);
  const auto templates = build_templates(testing::small_dataset(), c.features);
  amm.store_templates(templates);

  for (const auto& sample : testing::small_dataset().all()) {
    const FeatureVector f = extract_features(sample.image, c.features);
    const auto r = amm.recognize(f);
    // Compute the reference integer argmax directly.
    std::uint64_t best = 0;
    std::size_t best_j = 0;
    for (std::size_t j = 0; j < templates.size(); ++j) {
      std::uint64_t acc = 0;
      for (std::size_t i = 0; i < f.digital.size(); ++i) {
        acc += static_cast<std::uint64_t>(f.digital[i]) * templates[j].digital[i];
      }
      if (acc > best) {
        best = acc;
        best_j = j;
      }
    }
    EXPECT_EQ(r.winner, best_j);
    ASSERT_NE(r.digital(), nullptr);
    EXPECT_EQ(r.digital()->score, best);
    EXPECT_EQ(r.score, static_cast<double>(best));
  }
}

TEST(DigitalAmm, ScoresVectorComplete) {
  DigitalAmmConfig c;
  c.features = small_spec();
  c.templates = 10;
  DigitalAmm amm(c);
  amm.store_templates(build_templates(testing::small_dataset(), c.features));
  const auto f = extract_features(testing::small_dataset().image(0, 0), c.features);
  const auto r = amm.recognize(f);
  ASSERT_NE(r.digital(), nullptr);
  EXPECT_EQ(r.digital()->scores.size(), 10u);
}

TEST(DigitalAmm, RecognizeBatchMatchesSequential) {
  DigitalAmmConfig c;
  c.features = small_spec();
  c.templates = 10;
  DigitalAmm amm(c);
  amm.store_templates(build_templates(testing::small_dataset(), c.features));
  std::vector<FeatureVector> inputs;
  for (const auto& sample : testing::small_dataset().all()) {
    inputs.push_back(extract_features(sample.image, c.features));
  }
  const auto batched = amm.recognize_batch(inputs, 4);
  ASSERT_EQ(batched.size(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const auto r = amm.recognize(inputs[i]);
    EXPECT_EQ(batched[i].winner, r.winner) << "input " << i;
    EXPECT_EQ(batched[i].unique, r.unique) << "input " << i;
    ASSERT_NE(batched[i].digital(), nullptr);
    EXPECT_EQ(batched[i].digital()->score, r.digital()->score) << "input " << i;
  }
}

TEST(MsCmosAmm, RecognizeBatchMatchesSequential) {
  MsCmosAmmConfig c;
  c.features = small_spec();
  c.templates = 10;
  MsCmosAmm amm(c);
  amm.store_templates(build_templates(testing::small_dataset(), c.features));
  std::vector<FeatureVector> inputs;
  for (const auto& sample : testing::small_dataset().all()) {
    inputs.push_back(extract_features(sample.image, c.features));
  }
  const auto batched = amm.recognize_batch(inputs, 4);
  ASSERT_EQ(batched.size(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const auto r = amm.recognize(inputs[i]);
    EXPECT_EQ(batched[i].winner, r.winner) << "input " << i;
    EXPECT_DOUBLE_EQ(batched[i].score, r.score) << "input " << i;
    EXPECT_DOUBLE_EQ(batched[i].margin, r.margin) << "input " << i;
  }
}

TEST(DigitalAmm, EvaluationRatesFollowClock) {
  DigitalAmmConfig c;
  c.features = small_spec();
  c.templates = 10;
  c.clock = 50e6;
  DigitalAmm amm(c);
  EXPECT_NEAR(amm.evaluation().recognition_rate.in(units::Hz), 5e6, 1.0);
}

TEST(MsCmosAmm, NearIdealAccuracyAtCleanProcess) {
  MsCmosAmmConfig c;
  c.features = small_spec();
  c.templates = 10;
  c.sigma_vt_min_size = 5e-3;
  MsCmosAmm amm(c);
  amm.store_templates(build_templates(testing::small_dataset(), c.features));

  const FaceDataset& ds = testing::small_dataset();
  int correct = 0;
  int total = 0;
  for (const auto& sample : ds.all()) {
    const auto f = extract_features(sample.image, c.features);
    if (amm.recognize(f).winner == sample.individual) {
      ++correct;
    }
    ++total;
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.8);
}

TEST(MsCmosAmm, SizingMeetsResolutionAtCleanProcess) {
  MsCmosAmmConfig c;
  c.features = small_spec();
  c.templates = 10;
  MsCmosAmm amm(c);
  EXPECT_TRUE(amm.evaluation().meets_resolution);
}

TEST(MsCmosAmm, MarginReportedBeforeDetection) {
  MsCmosAmmConfig c;
  c.features = small_spec();
  c.templates = 10;
  MsCmosAmm amm(c);
  amm.store_templates(build_templates(testing::small_dataset(), c.features));
  const auto f = extract_features(testing::small_dataset().image(1, 1), c.features);
  const auto r = amm.recognize(f);
  EXPECT_GT(r.margin, -1.0);
  EXPECT_LT(r.margin, 1.0);
}

TEST(MsCmosAmm, RecognizeBeforeStoreThrows) {
  MsCmosAmmConfig c;
  c.features = small_spec();
  c.templates = 10;
  MsCmosAmm amm(c);
  FeatureVector f;
  f.analog.assign(48, 0.5);
  f.digital.assign(48, 16);
  EXPECT_THROW(amm.recognize(f), InvalidArgument);
}

TEST(Baselines, TopologiesProduceDifferentPower) {
  MsCmosAmmConfig bt;
  bt.features = small_spec();
  bt.templates = 10;
  bt.topology = MsCmosTopology::kStandardBt;
  MsCmosAmmConfig mm = bt;
  mm.topology = MsCmosTopology::kAsyncMinMax;
  EXPECT_GT(MsCmosAmm(bt).evaluation().power.total(),
            MsCmosAmm(mm).evaluation().power.total());
}

}  // namespace
}  // namespace spinsim
