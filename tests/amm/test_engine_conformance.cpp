/// Cross-backend conformance of the unified AssociativeEngine API.
///
/// On noise-free / mismatch-free configurations every backend implements
/// the same mathematical function — correlation argmax — so its winners
/// must agree with DigitalAmm's bit-exact integer argmax (the ground
/// truth the analog designs approximate). The hierarchical backend adds
/// a routing approximation, so it is held to a high agreement fraction
/// rather than exactness. Independently, recognize_batch must equal a
/// sequential loop of recognize() for every backend, including the
/// parallel-WTA path.
///
/// The EngineConformanceRandomized suite below is the property harness
/// every engine — present and future — inherits: seeded trials over
/// randomized template sets and queries assert the invariants the
/// service relies on (batch == sequential winner-for-winner, margin
/// never negative and zero for non-positive winners, accepted implies
/// unique, positive energy_per_query) across all six backends.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "amm/digital_amm.hpp"
#include "amm/engine.hpp"
#include "amm/hierarchical_amm.hpp"
#include "amm/leaf_cache_engine.hpp"
#include "amm/mscmos_amm.hpp"
#include "amm/spin_amm.hpp"
#include "amm/tiered_engine.hpp"
#include "core/random.hpp"
#include "support/shared_dataset.hpp"

namespace spinsim {
namespace {

FeatureSpec small_spec() {
  FeatureSpec s;
  s.height = 8;
  s.width = 6;
  s.bits = 5;
  return s;
}

/// Memristor with deterministic programming (no write or d2d noise).
MemristorSpec clean_memristor() {
  MemristorSpec m;
  m.write_sigma = 0.0;
  m.d2d_sigma = 0.0;
  return m;
}

SpinAmmConfig clean_spin_config() {
  SpinAmmConfig c;
  c.features = small_spec();
  c.templates = 10;
  c.memristor = clean_memristor();
  c.dwn = DwnParams::from_barrier(20.0);
  c.sample_mismatch = false;
  c.thermal_noise = false;
  c.seed = 7;
  return c;
}

std::vector<FeatureVector> all_inputs(const FeatureSpec& spec) {
  std::vector<FeatureVector> inputs;
  for (const auto& sample : testing::small_dataset().all()) {
    inputs.push_back(extract_features(sample.image, spec));
  }
  return inputs;
}

std::vector<std::size_t> digital_ground_truth(const std::vector<FeatureVector>& inputs) {
  DigitalAmmConfig c;
  c.features = small_spec();
  c.templates = 10;
  DigitalAmm digital(c);
  digital.store_templates(build_templates(testing::small_dataset(), c.features));
  std::vector<std::size_t> winners;
  winners.reserve(inputs.size());
  for (const auto& input : inputs) {
    winners.push_back(digital.recognize(input).winner);
  }
  return winners;
}

double agreement_with_ground_truth(AssociativeEngine& engine,
                                   const std::vector<FeatureVector>& inputs,
                                   const std::vector<std::size_t>& truth) {
  std::size_t agree = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (engine.recognize(inputs[i]).winner == truth[i]) {
      ++agree;
    }
  }
  return static_cast<double>(agree) / static_cast<double>(inputs.size());
}

TEST(EngineConformance, SpinAgreesWithDigitalArgmaxNoiseFree) {
  SpinAmm spin(clean_spin_config());
  spin.store_templates(build_templates(testing::small_dataset(), small_spec()));
  const auto inputs = all_inputs(small_spec());
  const auto truth = digital_ground_truth(inputs);
  // Even noise-free, the analog path legitimately diverges from the
  // integer argmax on close calls: the DTCS input DAC compresses large
  // codes (Fig. 8b) and the 5-bit DOM quantisation ties near-equal
  // columns. So: high aggregate agreement, and *exact* agreement
  // whenever the analog margin clears two LSB of full scale.
  std::size_t agree = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const Recognition r = spin.recognize(inputs[i]);
    agree += r.winner == truth[i] ? 1 : 0;
    if (r.margin > 2.0 / 32.0) {
      EXPECT_EQ(r.winner, truth[i]) << "clear-margin input " << i;
    }
  }
  EXPECT_GE(static_cast<double>(agree) / static_cast<double>(inputs.size()), 0.8);
}

TEST(EngineConformance, MsCmosAgreesWithDigitalArgmaxCleanProcess) {
  MsCmosAmmConfig c;
  c.features = small_spec();
  c.templates = 10;
  c.memristor = clean_memristor();
  c.sigma_vt_min_size = 1e-9;  // vanishing process mismatch
  MsCmosAmm mscmos(c);
  mscmos.store_templates(build_templates(testing::small_dataset(), c.features));
  const auto inputs = all_inputs(small_spec());
  const auto truth = digital_ground_truth(inputs);
  EXPECT_GE(agreement_with_ground_truth(mscmos, inputs, truth), 0.95);
}

TEST(EngineConformance, HierarchicalAgreesWithDigitalArgmaxMostly) {
  HierarchicalAmmConfig c;
  c.features = small_spec();
  c.clusters = 3;
  c.memristor = clean_memristor();
  c.dwn = DwnParams::from_barrier(20.0);
  c.sample_mismatch = false;
  c.seed = 9;
  HierarchicalAmm hier(c);
  hier.store_templates(build_templates(testing::small_dataset(), c.features));
  const auto inputs = all_inputs(small_spec());
  const auto truth = digital_ground_truth(inputs);
  // Routing adds a genuine failure mode (right template, wrong cluster)
  // on top of the flat analog path's close-call divergences, so the bar
  // sits below the flat designs' (chance is 0.1).
  EXPECT_GE(agreement_with_ground_truth(hier, inputs, truth), 0.7);
}

/// recognize_batch == per-query recognize, through the unified interface.
void expect_batch_matches_sequential(AssociativeEngine& sequential, AssociativeEngine& batched,
                                     const std::vector<FeatureVector>& inputs,
                                     std::size_t threads) {
  std::vector<Recognition> expected;
  expected.reserve(inputs.size());
  for (const auto& input : inputs) {
    expected.push_back(sequential.recognize(input));
  }
  const std::vector<Recognition> got = batched.recognize_batch(inputs, threads);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].winner, expected[i].winner) << "input " << i;
    EXPECT_EQ(got[i].unique, expected[i].unique) << "input " << i;
    EXPECT_EQ(got[i].dom, expected[i].dom) << "input " << i;
    EXPECT_DOUBLE_EQ(got[i].score, expected[i].score) << "input " << i;
    EXPECT_EQ(got[i].accepted, expected[i].accepted) << "input " << i;
  }
}

TEST(EngineConformance, BatchMatchesSequentialAllBackends) {
  const auto templates = build_templates(testing::small_dataset(), small_spec());
  const auto inputs = all_inputs(small_spec());

  // Spin, with thermal noise on so the parallel WTA's counter-based
  // streams are exercised, not just the deterministic path.
  SpinAmmConfig sc = clean_spin_config();
  sc.thermal_noise = true;
  sc.sample_mismatch = true;
  sc.memristor = MemristorSpec{};
  SpinAmm spin_seq(sc);
  SpinAmm spin_batch(sc);
  spin_seq.store_templates(templates);
  spin_batch.store_templates(templates);
  expect_batch_matches_sequential(spin_seq, spin_batch, inputs, 4);

  DigitalAmmConfig dc;
  dc.features = small_spec();
  dc.templates = 10;
  DigitalAmm dig_seq(dc);
  DigitalAmm dig_batch(dc);
  dig_seq.store_templates(templates);
  dig_batch.store_templates(templates);
  expect_batch_matches_sequential(dig_seq, dig_batch, inputs, 4);

  MsCmosAmmConfig mc;
  mc.features = small_spec();
  mc.templates = 10;
  MsCmosAmm ms_seq(mc);
  MsCmosAmm ms_batch(mc);
  ms_seq.store_templates(templates);
  ms_batch.store_templates(templates);
  expect_batch_matches_sequential(ms_seq, ms_batch, inputs, 4);

  HierarchicalAmmConfig hc;
  hc.features = small_spec();
  hc.clusters = 3;
  hc.dwn = DwnParams::from_barrier(20.0);
  hc.seed = 21;
  HierarchicalAmm hier_seq(hc);
  HierarchicalAmm hier_batch(hc);
  hier_seq.store_templates(templates);
  hier_batch.store_templates(templates);
  expect_batch_matches_sequential(hier_seq, hier_batch, inputs, 4);
}

// ---------------------------------------------------------------------------
// Randomized property suite: the contract every engine inherits for free.
// ---------------------------------------------------------------------------

/// Builds one engine sized for `templates` columns; `seed` varies per
/// trial so device noise, mismatch and clustering all get re-rolled.
using MakeEngine =
    std::function<std::unique_ptr<AssociativeEngine>(std::size_t templates, std::uint64_t seed)>;

FeatureVector random_feature_vector(const FeatureSpec& spec, Rng& rng) {
  FeatureVector f;
  f.spec = spec;
  const double top = static_cast<double>(spec.levels() - 1);
  f.analog.resize(spec.dimension());
  f.digital.resize(spec.dimension());
  for (std::size_t i = 0; i < spec.dimension(); ++i) {
    const auto level = static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(spec.levels()) - 1));
    f.digital[i] = level;
    f.analog[i] = static_cast<double>(level) / top;
  }
  return f;
}

FeatureVector zero_feature_vector(const FeatureSpec& spec) {
  FeatureVector f;
  f.spec = spec;
  f.analog.assign(spec.dimension(), 0.0);
  f.digital.assign(spec.dimension(), 0);
  return f;
}

/// One seeded trial: random templates, a query mix of random vectors,
/// near-template probes and the all-zero vector (the non-positive-winner
/// edge), checked sequentially and as one batch on twin engine instances.
void run_randomized_trial(const std::string& label, const MakeEngine& make, std::uint64_t seed) {
  const FeatureSpec spec = small_spec();
  Rng rng(seed);
  const std::size_t templates = static_cast<std::size_t>(rng.uniform_int(6, 16));

  std::vector<FeatureVector> stored;
  stored.reserve(templates);
  for (std::size_t j = 0; j < templates; ++j) {
    stored.push_back(random_feature_vector(spec, rng));
  }

  std::vector<FeatureVector> queries;
  for (std::size_t q = 0; q < 6; ++q) {
    queries.push_back(random_feature_vector(spec, rng));
  }
  for (std::size_t q = 0; q < 3; ++q) {
    // Near-template probes keep the trial from living only in the
    // low-correlation regime random vectors produce.
    FeatureVector probe =
        stored[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(templates) - 1))];
    const std::size_t flip = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(spec.dimension()) - 1));
    probe.digital[flip] = spec.levels() - 1 - probe.digital[flip];
    probe.analog[flip] = static_cast<double>(probe.digital[flip]) /
                         static_cast<double>(spec.levels() - 1);
    queries.push_back(probe);
  }
  queries.push_back(zero_feature_vector(spec));

  std::unique_ptr<AssociativeEngine> sequential = make(templates, seed);
  std::unique_ptr<AssociativeEngine> batched = make(templates, seed);
  sequential->store_templates(stored);
  batched->store_templates(stored);

  EXPECT_GT(sequential->energy_per_query(), EnergyPerQuery{}) << label << " seed " << seed;

  std::vector<Recognition> expected;
  expected.reserve(queries.size());
  for (const auto& query : queries) {
    expected.push_back(sequential->recognize(query));
  }
  const std::vector<Recognition> got = batched->recognize_batch(queries, 3);
  ASSERT_EQ(got.size(), expected.size()) << label << " seed " << seed;

  for (std::size_t i = 0; i < got.size(); ++i) {
    const std::string where = label + " seed " + std::to_string(seed) + " query " +
                              std::to_string(i);
    // recognize_batch is winner-for-winner the sequential schedule.
    EXPECT_EQ(got[i].winner, expected[i].winner) << where;
    EXPECT_EQ(got[i].unique, expected[i].unique) << where;
    EXPECT_EQ(got[i].dom, expected[i].dom) << where;
    EXPECT_DOUBLE_EQ(got[i].score, expected[i].score) << where;
    EXPECT_EQ(got[i].accepted, expected[i].accepted) << where;
    const Recognition* const views[] = {&got[i], &expected[i]};
    for (const Recognition* r : views) {
      EXPECT_LT(r->winner, templates) << where;
      // Margin is never negative and carries no confidence for a
      // non-positive winner.
      EXPECT_GE(r->margin, 0.0) << where;
      if (r->score <= 0.0) {
        EXPECT_DOUBLE_EQ(r->margin, 0.0) << where;
      }
      // A tied winner is never an acceptable match.
      if (r->accepted) {
        EXPECT_TRUE(r->unique) << where;
      }
    }
  }
  EXPECT_GT(sequential->energy_per_query(), EnergyPerQuery{})
      << label << " (post-traffic) seed " << seed;
}

constexpr std::uint64_t kRandomizedTrials = 20;

void run_randomized_suite(const std::string& label, const MakeEngine& make) {
  for (std::uint64_t trial = 0; trial < kRandomizedTrials; ++trial) {
    run_randomized_trial(label, make, 0xC0FFEE + 7919 * trial);
  }
}

TEST(EngineConformanceRandomized, Spin) {
  run_randomized_suite("spin", [](std::size_t templates, std::uint64_t seed) {
    SpinAmmConfig c;
    c.features = small_spec();
    c.templates = templates;
    c.dwn = DwnParams::from_barrier(20.0);
    c.thermal_noise = true;  // exercise the counter-based parallel WTA
    c.seed = seed;
    return std::make_unique<SpinAmm>(c);
  });
}

TEST(EngineConformanceRandomized, Digital) {
  run_randomized_suite("digital", [](std::size_t templates, std::uint64_t) {
    DigitalAmmConfig c;
    c.features = small_spec();
    c.templates = templates;
    return std::make_unique<DigitalAmm>(c);
  });
}

TEST(EngineConformanceRandomized, MsCmos) {
  run_randomized_suite("mscmos", [](std::size_t templates, std::uint64_t seed) {
    MsCmosAmmConfig c;
    c.features = small_spec();
    c.templates = templates;
    c.seed = seed;
    return std::make_unique<MsCmosAmm>(c);
  });
}

HierarchicalAmmConfig randomized_hierarchy_config(std::uint64_t seed) {
  HierarchicalAmmConfig c;
  c.features = small_spec();
  c.clusters = 3;
  c.dwn = DwnParams::from_barrier(20.0);
  c.seed = seed;
  return c;
}

TEST(EngineConformanceRandomized, Hierarchical) {
  run_randomized_suite("hierarchical", [](std::size_t, std::uint64_t seed) {
    return std::make_unique<HierarchicalAmm>(randomized_hierarchy_config(seed));
  });
}

TEST(EngineConformanceRandomized, Tiered) {
  // Deterministic tier engines (no thermal noise): batch == sequential
  // holds for TieredEngine only when the escalated subset is slot-free.
  run_randomized_suite("tiered", [](std::size_t templates, std::uint64_t seed) {
    SpinAmmConfig flat;
    flat.features = small_spec();
    flat.templates = templates;
    flat.dwn = DwnParams::from_barrier(20.0);
    flat.seed = seed ^ 0xF1A7;
    TieredEngineConfig policy;
    policy.escalation_margin = 0.05;
    return std::make_unique<TieredEngine>(
        std::make_unique<HierarchicalAmm>(randomized_hierarchy_config(seed)),
        std::make_unique<SpinAmm>(flat), policy);
  });
}

TEST(EngineConformanceRandomized, LeafCache) {
  // Two slots against three clusters, so the trials continuously evict
  // and reprogram — the invariants must survive the cache churn.
  run_randomized_suite("leaf-cache", [](std::size_t, std::uint64_t seed) {
    LeafCacheEngineConfig c;
    c.hierarchy = randomized_hierarchy_config(seed);
    c.leaf_slots = 2;
    return std::make_unique<LeafCacheEngine>(c);
  });
}

TEST(EngineConformance, PolymorphicUseThroughBasePointer) {
  const auto templates = build_templates(testing::small_dataset(), small_spec());
  const auto inputs = all_inputs(small_spec());

  std::vector<std::unique_ptr<AssociativeEngine>> engines;
  engines.push_back(std::make_unique<SpinAmm>(clean_spin_config()));
  {
    DigitalAmmConfig dc;
    dc.features = small_spec();
    dc.templates = 10;
    engines.push_back(std::make_unique<DigitalAmm>(dc));
  }
  {
    MsCmosAmmConfig mc;
    mc.features = small_spec();
    mc.templates = 10;
    engines.push_back(std::make_unique<MsCmosAmm>(mc));
  }

  for (auto& engine : engines) {
    engine->store_templates(templates);
    EXPECT_EQ(engine->template_count(), 10u) << engine->name();
    EXPECT_GT(engine->power().total(), Power{}) << engine->name();
    const Recognition r = engine->recognize(inputs[0]);
    EXPECT_LT(r.winner, 10u) << engine->name();
    const auto batch = engine->recognize_batch(inputs, 2);
    EXPECT_EQ(batch.size(), inputs.size()) << engine->name();
  }
}

}  // namespace
}  // namespace spinsim
