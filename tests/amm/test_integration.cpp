/// Cross-module integration tests: the experiment *shapes* the benches
/// reproduce at full scale, exercised here at reduced scale so the suite
/// stays fast.

#include <gtest/gtest.h>

#include "amm/digital_amm.hpp"
#include "amm/evaluation.hpp"
#include "amm/spin_amm.hpp"
#include "support/shared_dataset.hpp"
#include "wta/ideal_wta.hpp"

namespace spinsim {
namespace {

TEST(Integration, AccuracyDropsWithAggressiveDownsizing) {
  // Fig. 3a's shape on the small dataset: 8x6 beats 2x2.
  const FaceDataset& ds = testing::small_dataset();

  const auto accuracy_at = [&](std::size_t h, std::size_t w) {
    FeatureSpec spec;
    spec.height = h;
    spec.width = w;
    const auto templates = build_templates(ds, spec);
    const auto result = evaluate_classifier(
        ds, spec, [&](const FeatureVector& f) { return classify_ideal(f, templates); });
    return result.accuracy();
  };

  const double acc_big = accuracy_at(8, 6);
  const double acc_tiny = accuracy_at(2, 2);
  EXPECT_GT(acc_big, acc_tiny);
  EXPECT_GT(acc_big, 0.9);
}

TEST(Integration, AccuracyDropsWithWtaResolution) {
  // Fig. 3b's shape: 5-bit WTA ~ ideal; 1-bit WTA collapses.
  const FaceDataset& ds = testing::small_dataset();
  FeatureSpec spec;
  spec.height = 8;
  spec.width = 6;
  const auto templates = build_templates(ds, spec);

  SpinAmmConfig c;
  c.features = spec;
  c.templates = 10;
  c.dwn = DwnParams::from_barrier(20.0);
  SpinAmm amm(c);
  amm.store_templates(templates);
  const double full_scale = c.full_scale_current();

  const auto accuracy_at_bits = [&](unsigned bits) {
    const auto result = evaluate_classifier(ds, spec, [&](const FeatureVector& f) {
      return ideal_wta(amm.column_currents(f), bits, full_scale).winner;
    });
    return result.accuracy();
  };

  const double acc5 = accuracy_at_bits(5);
  const double acc1 = accuracy_at_bits(1);
  EXPECT_GT(acc5, acc1);
  EXPECT_GT(acc5, 0.85);
}

TEST(Integration, SpinAndDigitalAgreeOnClearInputs) {
  const FaceDataset& ds = testing::small_dataset();
  FeatureSpec spec;
  spec.height = 8;
  spec.width = 6;
  const auto templates = build_templates(ds, spec);

  SpinAmmConfig sc;
  sc.features = spec;
  sc.templates = 10;
  sc.dwn = DwnParams::from_barrier(20.0);
  SpinAmm spin(sc);
  spin.store_templates(templates);

  DigitalAmmConfig dc;
  dc.features = spec;
  dc.templates = 10;
  DigitalAmm digital(dc);
  digital.store_templates(templates);

  int agree = 0;
  int total = 0;
  for (const auto& sample : ds.all()) {
    const auto f = extract_features(sample.image, spec);
    if (spin.recognize(f).winner == digital.recognize(f).winner) {
      ++agree;
    }
    ++total;
  }
  EXPECT_GT(static_cast<double>(agree) / total, 0.75);
}

TEST(Integration, MarginStatisticsArePositiveOnAverage) {
  const FaceDataset& ds = testing::small_dataset();
  FeatureSpec spec;
  spec.height = 8;
  spec.width = 6;
  SpinAmmConfig c;
  c.features = spec;
  c.templates = 10;
  c.dwn = DwnParams::from_barrier(20.0);
  SpinAmm amm(c);
  amm.store_templates(build_templates(ds, spec));

  const RunningStats stats = margin_statistics(
      ds, spec, [&](const FeatureVector& f) { return amm.column_currents(f); },
      c.full_scale_current(), 20);
  EXPECT_GT(stats.mean(), 0.0);
  EXPECT_EQ(stats.count(), 20u);
}

TEST(Integration, DetectionMarginHelper) {
  EXPECT_NEAR(detection_margin({10e-6, 6e-6, 2e-6}, 32e-6), 0.125, 1e-12);
  EXPECT_THROW(detection_margin({1e-6}, 32e-6), InvalidArgument);
}

TEST(Integration, LowerDeltaVDegradesParasiticMargin) {
  // Fig. 9b's mechanism at small scale: with wire parasitics fixed, a
  // smaller dV (i.e. smaller input currents relative to IR drops) cannot
  // *improve* the relative margin. We emulate dV reduction by scaling
  // input currents: compare margins at two input scales under strong
  // wire resistance.
  RcmConfig rc;
  rc.rows = 24;
  rc.cols = 6;
  rc.wire_res_per_um = 50.0;
  rc.memristor.write_sigma = 0.0;
  RcmArray rcm(rc, Rng(31));
  Rng rng(32);
  std::vector<std::vector<double>> w(6, std::vector<double>(24));
  for (auto& col : w) {
    for (auto& v : col) {
      v = rng.uniform(0.0, 1.0);
    }
  }
  rcm.program(w);

  std::vector<double> inputs(24);
  for (auto& v : inputs) {
    v = rng.uniform(2e-6, 10e-6);
  }
  const auto strong = rcm.column_currents_parasitic(inputs);
  // Margins are relative, so pure current scaling preserves them; the
  // physical dV effect enters through the DAC non-linearity, checked in
  // the DAC tests. Here we verify the parasitic solver's linearity.
  std::vector<double> weak_inputs = inputs;
  for (auto& v : weak_inputs) {
    v *= 0.1;
  }
  const auto weak = rcm.column_currents_parasitic(weak_inputs);
  for (std::size_t j = 0; j < strong.size(); ++j) {
    EXPECT_NEAR(weak[j] * 10.0, strong[j], std::abs(strong[j]) * 1e-6);
  }
}

}  // namespace
}  // namespace spinsim
