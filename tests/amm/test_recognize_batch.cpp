#include <gtest/gtest.h>

#include <vector>

#include "amm/hierarchical_amm.hpp"
#include "amm/spin_amm.hpp"
#include "support/shared_dataset.hpp"

namespace spinsim {
namespace {

SpinAmmConfig batch_config() {
  SpinAmmConfig c;
  c.features.height = 8;
  c.features.width = 6;
  c.features.bits = 5;
  c.templates = 10;
  c.dwn = DwnParams::from_barrier(20.0);
  c.seed = 123;
  return c;
}

std::vector<FeatureVector> all_inputs(const SpinAmmConfig& c) {
  std::vector<FeatureVector> inputs;
  for (const auto& sample : testing::small_dataset().all()) {
    inputs.push_back(extract_features(sample.image, c.features));
  }
  return inputs;
}

/// Batch results must be winner-for-winner identical to sequential
/// recognize() calls on a twin AMM (same seed => same mismatch samples).
void expect_batch_matches_sequential(SpinAmmConfig config, std::size_t threads) {
  const std::vector<FeatureVector> inputs = all_inputs(config);
  SpinAmm sequential(config);
  SpinAmm batched(config);
  const auto templates = build_templates(testing::small_dataset(), config.features);
  sequential.store_templates(templates);
  batched.store_templates(templates);

  std::vector<Recognition> expected;
  expected.reserve(inputs.size());
  for (const auto& input : inputs) {
    expected.push_back(sequential.recognize(input));
  }
  const std::vector<Recognition> got = batched.recognize_batch(inputs, threads);

  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].winner, expected[i].winner) << "input " << i;
    EXPECT_EQ(got[i].unique, expected[i].unique) << "input " << i;
    EXPECT_EQ(got[i].dom, expected[i].dom) << "input " << i;
    EXPECT_EQ(got[i].accepted, expected[i].accepted) << "input " << i;
    ASSERT_NE(got[i].spin(), nullptr);
    ASSERT_NE(expected[i].spin(), nullptr);
    const auto& got_currents = got[i].spin()->column_currents;
    const auto& exp_currents = expected[i].spin()->column_currents;
    ASSERT_EQ(got_currents.size(), exp_currents.size());
    for (std::size_t j = 0; j < got_currents.size(); ++j) {
      EXPECT_DOUBLE_EQ(got_currents[j], exp_currents[j]) << "input " << i << " column " << j;
    }
  }
}

TEST(RecognizeBatch, MatchesSequentialIdeal) {
  expect_batch_matches_sequential(batch_config(), 1);
}

TEST(RecognizeBatch, MatchesSequentialIdealThreaded) {
  expect_batch_matches_sequential(batch_config(), 4);
}

TEST(RecognizeBatch, MatchesSequentialParasiticTransfer) {
  SpinAmmConfig c = batch_config();
  c.model = CrossbarModel::kParasitic;
  c.parasitic_solver = CrossbarSolver::kTransfer;
  expect_batch_matches_sequential(c, 4);
}

TEST(RecognizeBatch, MatchesSequentialParasiticFactored) {
  SpinAmmConfig c = batch_config();
  c.model = CrossbarModel::kParasitic;
  c.parasitic_solver = CrossbarSolver::kFactored;
  expect_batch_matches_sequential(c, 4);  // falls back to serial front end
}

TEST(RecognizeBatch, MatchesSequentialParasiticCg) {
  SpinAmmConfig c = batch_config();
  c.model = CrossbarModel::kParasitic;
  c.parasitic_solver = CrossbarSolver::kCg;
  expect_batch_matches_sequential(c, 2);
}

TEST(RecognizeBatch, MatchesSequentialWithThermalNoise) {
  // With thermal noise on, the WTA consumes rng draws per query; the
  // batch path must replay them in input order.
  SpinAmmConfig c = batch_config();
  c.thermal_noise = true;
  expect_batch_matches_sequential(c, 4);
}

TEST(RecognizeBatch, EmptyBatch) {
  const SpinAmmConfig c = batch_config();
  SpinAmm amm(c);
  amm.store_templates(build_templates(testing::small_dataset(), c.features));
  EXPECT_TRUE(amm.recognize_batch({}).empty());
}

TEST(RecognizeBatch, RejectsDimensionMismatch) {
  const SpinAmmConfig c = batch_config();
  SpinAmm amm(c);
  amm.store_templates(build_templates(testing::small_dataset(), c.features));
  FeatureVector bad;
  bad.digital.assign(3, 0);
  bad.analog.assign(3, 0.0);
  EXPECT_THROW(amm.recognize_batch({bad}), InvalidArgument);
}

TEST(RecognizeBatch, RequiresStoredTemplates) {
  SpinAmm amm(batch_config());
  EXPECT_THROW(amm.recognize_batch({}), InvalidArgument);
}

TEST(RecognizeBatch, HierarchicalMatchesSequential) {
  HierarchicalAmmConfig c;
  c.features.height = 8;
  c.features.width = 6;
  c.clusters = 3;
  c.dwn = DwnParams::from_barrier(20.0);
  c.seed = 321;
  const auto templates = build_templates(testing::small_dataset(), c.features);
  const std::vector<FeatureVector> inputs = [] {
    SpinAmmConfig sc = batch_config();
    return all_inputs(sc);
  }();

  HierarchicalAmm sequential(c);
  HierarchicalAmm batched(c);
  sequential.store_templates(templates);
  batched.store_templates(templates);

  std::vector<Recognition> expected;
  for (const auto& input : inputs) {
    expected.push_back(sequential.recognize(input));
  }
  const std::vector<Recognition> got = batched.recognize_batch(inputs, 2);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].winner, expected[i].winner) << "input " << i;
    ASSERT_NE(got[i].hierarchical(), nullptr);
    ASSERT_NE(expected[i].hierarchical(), nullptr);
    EXPECT_EQ(got[i].hierarchical()->cluster, expected[i].hierarchical()->cluster) << "input " << i;
    EXPECT_EQ(got[i].hierarchical()->router_dom, expected[i].hierarchical()->router_dom)
        << "input " << i;
    EXPECT_EQ(got[i].dom, expected[i].dom) << "input " << i;
    EXPECT_EQ(got[i].unique, expected[i].unique) << "input " << i;
  }
}

}  // namespace
}  // namespace spinsim
