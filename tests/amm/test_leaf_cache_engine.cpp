/// LeafCacheEngine: cache-policy accounting (hit/evict/pin), equivalence
/// with a fully resident HierarchicalAmm under any pool size (including
/// the forced-capacity-1 thrash case), batch miss-cost sharing, and the
/// determinism of the cluster-reordered batch path under parallel_for.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "amm/hierarchical_amm.hpp"
#include "amm/leaf_cache_engine.hpp"
#include "support/shared_dataset.hpp"

namespace spinsim {
namespace {

FeatureSpec small_spec() {
  FeatureSpec s;
  s.height = 8;
  s.width = 6;
  s.bits = 5;
  return s;
}

HierarchicalAmmConfig hierarchy_config(std::size_t clusters, std::uint64_t seed = 17) {
  HierarchicalAmmConfig c;
  c.features = small_spec();
  c.clusters = clusters;
  c.dwn = DwnParams::from_barrier(20.0);
  c.seed = seed;
  return c;
}

std::vector<FeatureVector> all_inputs() {
  std::vector<FeatureVector> inputs;
  for (const auto& sample : testing::small_dataset().all()) {
    inputs.push_back(extract_features(sample.image, small_spec()));
  }
  return inputs;
}

void expect_same_recognition(const Recognition& got, const Recognition& expected,
                             const char* what, std::size_t index) {
  EXPECT_EQ(got.winner, expected.winner) << what << " input " << index;
  EXPECT_EQ(got.unique, expected.unique) << what << " input " << index;
  EXPECT_EQ(got.dom, expected.dom) << what << " input " << index;
  EXPECT_DOUBLE_EQ(got.score, expected.score) << what << " input " << index;
  EXPECT_DOUBLE_EQ(got.margin, expected.margin) << what << " input " << index;
  EXPECT_EQ(got.accepted, expected.accepted) << what << " input " << index;
  ASSERT_NE(got.hierarchical(), nullptr) << what << " input " << index;
  ASSERT_NE(expected.hierarchical(), nullptr) << what << " input " << index;
  EXPECT_EQ(got.hierarchical()->cluster, expected.hierarchical()->cluster)
      << what << " input " << index;
  EXPECT_EQ(got.hierarchical()->router_dom, expected.hierarchical()->router_dom)
      << what << " input " << index;
}

TEST(LeafCacheEngine, PoolCoveringAllClustersIsBitIdenticalToHierarchical) {
  const auto templates = build_templates(testing::small_dataset(), small_spec());
  const auto inputs = all_inputs();

  HierarchicalAmm flat(hierarchy_config(3));
  flat.store_templates(templates);

  LeafCacheEngineConfig config;
  config.hierarchy = hierarchy_config(3);
  config.leaf_slots = 3;  // pool >= clusters: nothing is ever evicted
  LeafCacheEngine cached(config);
  cached.store_templates(templates);

  for (std::size_t i = 0; i < inputs.size(); ++i) {
    expect_same_recognition(cached.recognize(inputs[i]), flat.recognize(inputs[i]),
                            "full pool", i);
  }
  const LeafCacheCounters counters = cached.counters();
  EXPECT_EQ(counters.evictions, 0u);
  EXPECT_EQ(counters.queries, inputs.size());
  // Each non-singleton cluster is programmed at most once.
  EXPECT_LE(counters.misses, cached.cluster_count());
  EXPECT_EQ(counters.reprograms, counters.misses);
}

TEST(LeafCacheEngine, CapacityOneThrashStillMatchesHierarchical) {
  // The adversarial case: a single slot serving three clusters thrashes
  // on nearly every cluster switch — yet every answer must stay
  // winner-for-winner (indeed field-for-field) identical to the fully
  // resident hierarchy, because a reprogrammed leaf realises the same
  // device noise as the one it displaced.
  const auto templates = build_templates(testing::small_dataset(), small_spec());
  const auto inputs = all_inputs();

  HierarchicalAmm flat(hierarchy_config(3));
  flat.store_templates(templates);

  LeafCacheEngineConfig config;
  config.hierarchy = hierarchy_config(3);
  config.leaf_slots = 1;
  LeafCacheEngine cached(config);
  cached.store_templates(templates);

  for (std::size_t i = 0; i < inputs.size(); ++i) {
    expect_same_recognition(cached.recognize(inputs[i]), flat.recognize(inputs[i]),
                            "capacity 1", i);
  }
  const LeafCacheCounters counters = cached.counters();
  EXPECT_GT(counters.misses, 1u);
  EXPECT_GT(counters.evictions, 0u);
  EXPECT_GT(counters.reprogram_energy, Energy{});
  EXPECT_GT(counters.reprogram_latency, Time{});
}

TEST(LeafCacheEngine, HitEvictPinAccounting) {
  const auto templates = build_templates(testing::small_dataset(), small_spec());
  const auto inputs = all_inputs();

  LeafCacheEngineConfig config;
  // Seed 19 clusters the 10-identity set into three non-singleton
  // leaves (6/2/2), which the pin/evict choreography below needs.
  config.hierarchy = hierarchy_config(3, 19);
  config.leaf_slots = 2;
  LeafCacheEngine cached(config);
  cached.store_templates(templates);

  // Find one representative query per non-singleton cluster by asking
  // the engine itself where it routes.
  std::vector<std::ptrdiff_t> probe_of_cluster(cached.cluster_count(), -1);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const Recognition r = cached.recognize(inputs[i]);
    const std::size_t c = r.hierarchical()->cluster;
    if (probe_of_cluster[c] < 0 && cached.leaf_members(c).size() >= 2) {
      probe_of_cluster[c] = static_cast<std::ptrdiff_t>(i);
    }
  }
  std::vector<std::size_t> leaf_clusters;
  for (std::size_t c = 0; c < cached.cluster_count(); ++c) {
    if (probe_of_cluster[c] >= 0) {
      leaf_clusters.push_back(c);
    }
  }
  ASSERT_GE(leaf_clusters.size(), 3u) << "dataset no longer spreads over three leaf clusters";

  const auto probe = [&](std::size_t cluster) {
    (void)cached.recognize(inputs[static_cast<std::size_t>(probe_of_cluster[cluster])]);
  };

  // Revisiting a resident cluster is a pure hit.
  const LeafCacheCounters before = cached.counters();
  ASSERT_TRUE(cached.resident(leaf_clusters[2]) || cached.resident(leaf_clusters[1]));
  const std::size_t resident_cluster =
      cached.resident(leaf_clusters[2]) ? leaf_clusters[2] : leaf_clusters[1];
  probe(resident_cluster);
  LeafCacheCounters after = cached.counters();
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(after.misses, before.misses);

  // Pin cluster A, then sweep the others through the two slots: A must
  // survive the pressure, the victim is always the unpinned LRU slot.
  const std::size_t pinned = leaf_clusters[0];
  probe(pinned);
  ASSERT_TRUE(cached.resident(pinned));
  cached.pin(pinned);
  EXPECT_TRUE(cached.pinned(pinned));
  for (int round = 0; round < 3; ++round) {
    probe(leaf_clusters[1]);
    probe(leaf_clusters[2]);
  }
  EXPECT_TRUE(cached.resident(pinned)) << "pinned cluster was evicted";
  after = cached.counters();
  EXPECT_GT(after.evictions, before.evictions);

  // Unpinning makes it evictable again.
  cached.unpin(pinned);
  EXPECT_FALSE(cached.pinned(pinned));
  probe(leaf_clusters[1]);
  probe(leaf_clusters[2]);
  EXPECT_FALSE(cached.resident(pinned));
}

TEST(LeafCacheEngine, PinKeepsOneSlotServiceable) {
  const auto templates = build_templates(testing::small_dataset(), small_spec());

  LeafCacheEngineConfig config;
  // Seed 19: three non-singleton clusters (6/2/2), so both pins below
  // target clusters that actually occupy slots.
  config.hierarchy = hierarchy_config(3, 19);
  config.leaf_slots = 2;
  LeafCacheEngine cached(config);
  cached.store_templates(templates);

  cached.pin(0);
  // A second pin would leave no unpinned slot for misses.
  EXPECT_THROW(cached.pin(1), InvalidArgument);
}

TEST(LeafCacheEngine, PinningASingletonClusterIsANoOp) {
  const auto templates = build_templates(testing::small_dataset(), small_spec());
  const auto inputs = all_inputs();

  LeafCacheEngineConfig config;
  // Seed 17 clusters the set 7/1/2: cluster 1 is a singleton, answered
  // by the router without ever occupying a slot.
  config.hierarchy = hierarchy_config(3, 17);
  config.leaf_slots = 2;
  LeafCacheEngine cached(config);
  cached.store_templates(templates);
  ASSERT_EQ(cached.leaf_members(1).size(), 1u)
      << "seed 17 no longer produces a singleton cluster";

  // The singleton pin neither sticks nor eats the pin budget.
  cached.pin(1);
  EXPECT_FALSE(cached.pinned(1));
  // Both slot-eligible clusters fit the 2-slot pool at once, so pinning
  // them both is safe: no miss can ever need an eviction. The budget
  // counts slot-eligible clusters, not the singleton.
  cached.pin(0);
  EXPECT_TRUE(cached.pinned(0));
  cached.pin(2);
  EXPECT_TRUE(cached.pinned(2));
  // Traffic over the whole set still serves: every leaf lands in its own
  // (pinned) slot and the singleton rides the router.
  for (const auto& input : inputs) {
    (void)cached.recognize(input);
  }
  EXPECT_EQ(cached.counters().evictions, 0u);
}

TEST(LeafCacheEngine, BatchSharesMissCostAcrossClusterGroups) {
  // An alternating cluster sequence thrashes a capacity-1 pool when
  // served sequentially, but recognize_batch regroups by cluster so each
  // cluster is programmed at most once per batch.
  const auto templates = build_templates(testing::small_dataset(), small_spec());
  const auto inputs = all_inputs();

  LeafCacheEngineConfig config;
  config.hierarchy = hierarchy_config(3);
  config.leaf_slots = 1;

  LeafCacheEngine sequential(config);
  sequential.store_templates(templates);
  for (const auto& input : inputs) {
    (void)sequential.recognize(input);
  }
  const LeafCacheCounters seq = sequential.counters();

  LeafCacheEngine batched(config);
  batched.store_templates(templates);
  (void)batched.recognize_batch(inputs, 2);
  const LeafCacheCounters bat = batched.counters();

  EXPECT_EQ(bat.queries, seq.queries);
  EXPECT_EQ(bat.hits + bat.misses, seq.hits + seq.misses);
  // Miss-cost sharing: at most one reprogram per (non-singleton) cluster
  // for the whole batch, against a sequential schedule that thrashes.
  EXPECT_LE(bat.misses, batched.cluster_count());
  EXPECT_GT(seq.misses, bat.misses);
  EXPECT_LT(bat.reprogram_energy, seq.reprogram_energy);
}

TEST(LeafCacheEngine, BatchDeterministicUnderThreadsAndMatchesSequential) {
  const auto templates = build_templates(testing::small_dataset(), small_spec());
  const auto inputs = all_inputs();

  LeafCacheEngineConfig config;
  config.hierarchy = hierarchy_config(3);
  config.leaf_slots = 2;

  LeafCacheEngine sequential(config);
  sequential.store_templates(templates);
  std::vector<Recognition> expected;
  expected.reserve(inputs.size());
  for (const auto& input : inputs) {
    expected.push_back(sequential.recognize(input));
  }

  // Two identically configured engines, different thread counts: the
  // cluster-reordered batch must be deterministic and winner-for-winner
  // equal to the sequential schedule either way.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    LeafCacheEngine batched(config);
    batched.store_templates(templates);
    const std::vector<Recognition> got = batched.recognize_batch(inputs, threads);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      expect_same_recognition(got[i], expected[i], "threads", i);
    }
  }
}

TEST(LeafCacheEngine, RestoreResetsCountersAndPool) {
  // Re-storing serves a new template set: the hit/energy accounting must
  // start fresh instead of amortizing new write charges over old traffic.
  const auto templates = build_templates(testing::small_dataset(), small_spec());
  const auto inputs = all_inputs();

  LeafCacheEngineConfig config;
  config.hierarchy = hierarchy_config(3);
  config.leaf_slots = 2;
  LeafCacheEngine cached(config);
  cached.store_templates(templates);
  (void)cached.recognize_batch(inputs);
  ASSERT_GT(cached.counters().queries, 0u);

  cached.store_templates(templates);
  const LeafCacheCounters fresh = cached.counters();
  EXPECT_EQ(fresh.queries, 0u);
  EXPECT_EQ(fresh.hits, 0u);
  EXPECT_EQ(fresh.misses, 0u);
  EXPECT_EQ(fresh.evictions, 0u);
  EXPECT_DOUBLE_EQ(fresh.reprogram_energy.in(units::J), 0.0);
  for (std::size_t c = 0; c < cached.cluster_count(); ++c) {
    EXPECT_FALSE(cached.resident(c)) << "cluster " << c;
    EXPECT_FALSE(cached.pinned(c)) << "cluster " << c;
  }
}

TEST(LeafCacheEngine, EnergyChargesReprogramPath) {
  const auto templates = build_templates(testing::small_dataset(), small_spec());
  const auto inputs = all_inputs();

  LeafCacheEngineConfig config;
  config.hierarchy = hierarchy_config(3);
  config.leaf_slots = 1;  // thrash: high miss rate
  LeafCacheEngine thrashing(config);
  thrashing.store_templates(templates);

  config.leaf_slots = 3;  // resident: compulsory misses only
  LeafCacheEngine resident(config);
  resident.store_templates(templates);

  // Before traffic both report the conservative every-query-misses bound.
  EXPECT_GT(thrashing.energy_per_query(), EnergyPerQuery{});
  const EnergyPerQuery upfront = resident.energy_per_query();

  for (const auto& input : inputs) {
    (void)thrashing.recognize(input);
    (void)resident.recognize(input);
  }
  // Observed mixes: the thrashing pool pays more write energy per query
  // than the fully resident pool, and warm traffic beats the upfront
  // assumption.
  EXPECT_GT(thrashing.energy_per_query(), resident.energy_per_query());
  EXPECT_LT(resident.energy_per_query(), upfront);
  // The write item shows up in the power breakdown.
  bool has_write_item = false;
  const PowerReport report = thrashing.power();
  for (const auto& item : report.items()) {
    if (item.name.rfind("write:", 0) == 0) {
      has_write_item = true;
      EXPECT_GT(item.power, Power{});
    }
  }
  EXPECT_TRUE(has_write_item);
}

TEST(LeafCacheEngine, CountersExposeThePerSlotWriteHistogram) {
  const auto templates = build_templates(testing::small_dataset(), small_spec());
  const auto inputs = all_inputs();

  LeafCacheEngineConfig config;
  config.hierarchy = hierarchy_config(3);
  config.leaf_slots = 2;
  LeafCacheEngine cached(config);
  cached.store_templates(templates);
  for (const auto& input : inputs) {
    (void)cached.recognize(input);
  }
  const LeafCacheCounters counters = cached.counters();
  ASSERT_EQ(counters.slot_write_cycles.size(), config.leaf_slots);
  std::uint64_t histogram_sum = 0;
  for (const std::uint64_t w : counters.slot_write_cycles) {
    histogram_sum += w;
  }
  // Every charged device write lands in exactly one slot's bucket.
  EXPECT_EQ(histogram_sum, counters.device_writes);
  EXPECT_GT(counters.device_writes, 0u);
  EXPECT_EQ(counters.device_writes_saved, 0u);  // no delta mode
  EXPECT_EQ(counters.max_slot_write_cycles(),
            *std::max_element(counters.slot_write_cycles.begin(),
                              counters.slot_write_cycles.end()));
}

TEST(LeafCacheEngine, DeltaReprogrammingSavesDeviceWrites) {
  // Same thrash traffic, same miss schedule: delta mode must serve the
  // identical demand with strictly fewer physical writes, the difference
  // showing up as saved writes and cheaper reprogram energy.
  const auto templates = build_templates(testing::small_dataset(), small_spec());
  const auto inputs = all_inputs();

  LeafCacheEngineConfig config;
  config.hierarchy = hierarchy_config(3);
  config.leaf_slots = 1;  // every cluster switch reprograms the one slot

  LeafCacheEngine plain(config);
  plain.store_templates(templates);
  for (const auto& input : inputs) {
    (void)plain.recognize(input);
  }
  const LeafCacheCounters p = plain.counters();

  config.endurance.delta_writes = true;
  LeafCacheEngine delta(config);
  delta.store_templates(templates);
  for (const auto& input : inputs) {
    (void)delta.recognize(input);
  }
  const LeafCacheCounters d = delta.counters();

  // The router is identical in both modes, so the miss schedule is too.
  EXPECT_EQ(d.misses, p.misses);
  EXPECT_EQ(d.hits, p.hits);
  // Delta splits the same programming demand into writes + skips.
  EXPECT_EQ(d.device_writes + d.device_writes_saved, p.device_writes);
  EXPECT_GT(d.device_writes_saved, 0u);
  EXPECT_LT(d.device_writes, p.device_writes);
  EXPECT_LT(d.reprogram_energy, p.reprogram_energy);
}

TEST(LeafCacheEngine, DeltaModeKeepsBatchAndSequentialAgreement) {
  // Substrate-keyed write noise makes the conductance a device realises a
  // function of (device, level), not of the programming schedule — so the
  // reordered batch path must agree field-for-field with a sequential
  // loop even though delta mode skips most writes.
  const auto templates = build_templates(testing::small_dataset(), small_spec());
  const auto inputs = all_inputs();

  LeafCacheEngineConfig config;
  config.hierarchy = hierarchy_config(3);
  config.leaf_slots = 1;
  config.endurance.delta_writes = true;

  LeafCacheEngine sequential(config);
  sequential.store_templates(templates);
  std::vector<Recognition> expected;
  expected.reserve(inputs.size());
  for (const auto& input : inputs) {
    expected.push_back(sequential.recognize(input));
  }

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    LeafCacheEngine batched(config);
    batched.store_templates(templates);
    const std::vector<Recognition> got = batched.recognize_batch(inputs, threads);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      expect_same_recognition(got[i], expected[i], "delta threads", i);
    }
  }
}

TEST(LeafCacheEngine, EnergyPerQueryAmortizesAtTheObservedRate) {
  // S2 regression: before traffic the estimate is the conservative
  // every-query-misses bound; once traffic exists it must amortize the
  // *observed* write energy over the *observed* query count, i.e.
  // energy_per_query - reprogram_energy / queries is the constant search
  // cost, whatever the traffic mix so far.
  const auto templates = build_templates(testing::small_dataset(), small_spec());
  const auto inputs = all_inputs();

  LeafCacheEngineConfig config;
  config.hierarchy = hierarchy_config(3);
  config.leaf_slots = 3;  // fully resident after warmup
  LeafCacheEngine cached(config);
  cached.store_templates(templates);

  const EnergyPerQuery joule_per_query = units::J / units::query;
  const double upfront = cached.energy_per_query().in(joule_per_query);

  for (const auto& input : inputs) {
    (void)cached.recognize(input);
  }
  const LeafCacheCounters c1 = cached.counters();
  const double e1 = cached.energy_per_query().in(joule_per_query);
  ASSERT_GT(c1.queries, 0u);
  EXPECT_LT(e1, upfront);

  // A second, all-hit pass: write energy is unchanged, queries double, so
  // the amortized share halves while the search term stays put.
  for (const auto& input : inputs) {
    (void)cached.recognize(input);
  }
  const LeafCacheCounters c2 = cached.counters();
  const double e2 = cached.energy_per_query().in(joule_per_query);
  ASSERT_EQ(c2.misses, c1.misses);
  EXPECT_LT(e2, e1);

  const double search1 =
      e1 - c1.reprogram_energy.in(units::J) / static_cast<double>(c1.queries);
  const double search2 =
      e2 - c2.reprogram_energy.in(units::J) / static_cast<double>(c2.queries);
  EXPECT_NEAR(search1, search2, 1e-15 + 1e-9 * search1);
}

}  // namespace
}  // namespace spinsim
