#include "amm/hierarchical_amm.hpp"

#include <gtest/gtest.h>

#include <set>

#include "support/shared_dataset.hpp"

namespace spinsim {
namespace {

HierarchicalAmmConfig small_config(std::size_t clusters = 3) {
  HierarchicalAmmConfig c;
  c.features.height = 8;
  c.features.width = 6;
  c.clusters = clusters;
  c.dwn = DwnParams::from_barrier(20.0);
  c.seed = 5;
  return c;
}

TEST(HierarchicalAmm, RejectsDegenerateConfigs) {
  HierarchicalAmmConfig c = small_config();
  c.clusters = 1;
  EXPECT_THROW(HierarchicalAmm amm(c), InvalidArgument);
}

TEST(HierarchicalAmm, StoreRequiresEnoughTemplates) {
  HierarchicalAmm amm(small_config(5));
  const auto templates = build_templates(testing::small_dataset(), small_config().features);
  std::vector<FeatureVector> too_few(templates.begin(), templates.begin() + 3);
  EXPECT_THROW(amm.store_templates(too_few), InvalidArgument);
}

TEST(HierarchicalAmm, RecognizeBeforeStoreThrows) {
  HierarchicalAmm amm(small_config());
  FeatureVector f;
  f.analog.assign(48, 0.5);
  f.digital.assign(48, 16);
  EXPECT_THROW(amm.recognize(f), InvalidArgument);
}

TEST(HierarchicalAmm, EveryTemplateLandsInExactlyOneLeaf) {
  const HierarchicalAmmConfig c = small_config();
  HierarchicalAmm amm(c);
  amm.store_templates(build_templates(testing::small_dataset(), c.features));
  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (std::size_t k = 0; k < amm.leaf_count(); ++k) {
    for (std::size_t global : amm.leaf_members(k)) {
      EXPECT_TRUE(seen.insert(global).second) << "template in two leaves";
      ++total;
    }
  }
  EXPECT_EQ(total, 10u);
}

TEST(HierarchicalAmm, RoutedRecognitionMostlyCorrect) {
  const HierarchicalAmmConfig c = small_config();
  HierarchicalAmm amm(c);
  amm.store_templates(build_templates(testing::small_dataset(), c.features));

  const FaceDataset& ds = testing::small_dataset();
  int correct = 0;
  int total = 0;
  for (const auto& sample : ds.all()) {
    const FeatureVector f = extract_features(sample.image, c.features);
    const Recognition r = amm.recognize(f);
    correct += r.winner == sample.individual ? 1 : 0;
    ++total;
  }
  // Routing adds a failure mode (wrong cluster), so the bar sits below
  // the flat AMM's but must stay far above chance (10 %).
  EXPECT_GT(static_cast<double>(correct) / total, 0.6);
}

TEST(HierarchicalAmm, WinnerBelongsToReportedCluster) {
  const HierarchicalAmmConfig c = small_config();
  HierarchicalAmm amm(c);
  amm.store_templates(build_templates(testing::small_dataset(), c.features));
  const FeatureVector f =
      extract_features(testing::small_dataset().image(4, 1), c.features);
  const Recognition r = amm.recognize(f);
  ASSERT_NE(r.hierarchical(), nullptr);
  const auto& members = amm.leaf_members(r.hierarchical()->cluster);
  EXPECT_NE(std::find(members.begin(), members.end(), r.winner), members.end());
}

TEST(HierarchicalAmm, ActivePathPowerBelowFlatForLargeBanks) {
  // The energy argument of Section 5: router (k columns) + one leaf
  // (~N/k columns) burns less than a flat N-column AMM once N >> k.
  HierarchicalAmmConfig c = small_config(4);
  HierarchicalAmm amm(c);

  // Synthetic bank of 64 templates: reuse the paper dataset's templates.
  FeatureSpec spec = c.features;
  const auto base = build_templates(testing::paper_dataset(), spec);
  std::vector<FeatureVector> bank;
  for (std::size_t i = 0; i < 40; ++i) {
    bank.push_back(base[i]);
  }
  amm.store_templates(bank);

  const Power active = amm.active_path_power().total();
  const Power flat = amm.flat_equivalent_power().total();
  EXPECT_LT(active, flat);
}

TEST(HierarchicalAmm, DeterministicForFixedSeed) {
  const HierarchicalAmmConfig c = small_config();
  HierarchicalAmm a(c);
  HierarchicalAmm b(c);
  const auto templates = build_templates(testing::small_dataset(), c.features);
  a.store_templates(templates);
  b.store_templates(templates);
  const FeatureVector f =
      extract_features(testing::small_dataset().image(7, 2), c.features);
  const auto ra = a.recognize(f);
  const auto rb = b.recognize(f);
  EXPECT_EQ(ra.winner, rb.winner);
  ASSERT_NE(ra.hierarchical(), nullptr);
  ASSERT_NE(rb.hierarchical(), nullptr);
  EXPECT_EQ(ra.hierarchical()->cluster, rb.hierarchical()->cluster);
}

TEST(HierarchicalAmm, RouterDomReported) {
  const HierarchicalAmmConfig c = small_config();
  HierarchicalAmm amm(c);
  amm.store_templates(build_templates(testing::small_dataset(), c.features));
  const FeatureVector f =
      extract_features(testing::small_dataset().image(0, 0), c.features);
  const auto r = amm.recognize(f);
  ASSERT_NE(r.hierarchical(), nullptr);
  EXPECT_LE(r.hierarchical()->router_dom, 31u);
  EXPECT_LE(r.dom, 31u);
}

TEST(HierarchicalAmm, MarginCappedByRouterScoreGap) {
  // Regression: the leaf-local margin only measures the winning cluster's
  // runner-up, but the global runner-up may live in another cluster. The
  // reported margin must never exceed the router's relative score gap
  // (the same cap rule RecognitionService::merge applies across shards).
  const HierarchicalAmmConfig c = small_config();
  HierarchicalAmm amm(c);
  amm.store_templates(build_templates(testing::small_dataset(), c.features));

  bool saw_binding_cap = false;
  for (const auto& sample : testing::small_dataset().all()) {
    const FeatureVector f = extract_features(sample.image, c.features);
    const Recognition r = amm.recognize(f);
    ASSERT_NE(r.hierarchical(), nullptr);
    const auto& d = *r.hierarchical();
    EXPECT_LE(d.router_runner_up_dom, d.router_dom);
    if (d.router_dom == 0) {
      EXPECT_DOUBLE_EQ(r.margin, 0.0);
      continue;
    }
    const double router_gap = static_cast<double>(d.router_dom - d.router_runner_up_dom) /
                              static_cast<double>(d.router_dom);
    EXPECT_LE(r.margin, router_gap + 1e-12);
    // On a clustered face workload some queries must route through a
    // genuinely contested router decision — that is exactly the case the
    // old code overstated, so make sure the cap actually binds somewhere.
    saw_binding_cap = saw_binding_cap || router_gap < 0.2;
  }
  EXPECT_TRUE(saw_binding_cap) << "dataset never exercised a contested routing decision";
}

TEST(HierarchicalAmm, BatchMarginsMatchSequential) {
  // The cap must apply identically on the batched path.
  const HierarchicalAmmConfig c = small_config();
  HierarchicalAmm batched(c);
  HierarchicalAmm sequential(c);
  const auto templates = build_templates(testing::small_dataset(), c.features);
  batched.store_templates(templates);
  sequential.store_templates(templates);

  std::vector<FeatureVector> inputs;
  for (const auto& sample : testing::small_dataset().all()) {
    inputs.push_back(extract_features(sample.image, c.features));
  }
  const std::vector<Recognition> got = batched.recognize_batch(inputs, /*threads=*/2);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const Recognition expected = sequential.recognize(inputs[i]);
    EXPECT_EQ(got[i].winner, expected.winner) << "input " << i;
    EXPECT_DOUBLE_EQ(got[i].margin, expected.margin) << "input " << i;
  }
}

TEST(HierarchicalAmm, SingletonClusterMarginUsesRouterGap) {
  // With nearly as many clusters as templates, k-means produces singleton
  // clusters; their path ends at the router, and the reported margin must
  // obey the same router-gap cap instead of echoing the centroid-current
  // margin unchecked.
  HierarchicalAmmConfig c = small_config(9);
  HierarchicalAmm amm(c);
  amm.store_templates(build_templates(testing::small_dataset(), c.features));

  std::size_t singleton_queries = 0;
  for (const auto& sample : testing::small_dataset().all()) {
    const FeatureVector f = extract_features(sample.image, c.features);
    const Recognition r = amm.recognize(f);
    ASSERT_NE(r.hierarchical(), nullptr);
    const auto& d = *r.hierarchical();
    if (amm.leaf_members(d.cluster).size() != 1) {
      continue;
    }
    ++singleton_queries;
    if (d.router_dom == 0) {
      EXPECT_DOUBLE_EQ(r.margin, 0.0);
      continue;
    }
    const double router_gap = static_cast<double>(d.router_dom - d.router_runner_up_dom) /
                              static_cast<double>(d.router_dom);
    EXPECT_LE(r.margin, router_gap + 1e-12);
  }
  EXPECT_GT(singleton_queries, 0u) << "no singleton cluster was ever routed to";
}

TEST(HierarchicalAmm, AcceptThresholdMatchesSpinAmmSemantics) {
  // accept_threshold judges the DOM that ends the active path, exactly
  // like SpinAmmConfig::accept_threshold judges a flat module's DOM —
  // and, like every backend, a tied winner is never accepted.
  HierarchicalAmmConfig c = small_config();
  c.accept_threshold = 31;  // nearly impossible DOM
  HierarchicalAmm strict(c);
  strict.store_templates(build_templates(testing::small_dataset(), c.features));
  c.accept_threshold = 0;
  HierarchicalAmm lax(c);
  lax.store_templates(build_templates(testing::small_dataset(), c.features));

  const FaceDataset& ds = testing::small_dataset();
  for (std::size_t p = 0; p < ds.individuals(); ++p) {
    const FeatureVector f = extract_features(ds.image(p, 0), c.features);
    const Recognition rs = strict.recognize(f);
    const Recognition rl = lax.recognize(f);
    EXPECT_EQ(rs.accepted, rs.unique && rs.dom >= 31u) << "person " << p;
    EXPECT_EQ(rl.accepted, rl.unique) << "person " << p;
    // The threshold must not change the decision itself.
    EXPECT_EQ(rs.winner, rl.winner) << "person " << p;
  }
}

}  // namespace
}  // namespace spinsim
