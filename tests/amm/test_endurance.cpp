/// Endurance, wear-leveling and self-repair: the fault-injection proof
/// harness of the robustness layer. A self-repairing leaf cache must hold
/// recognition accuracy near the fault-free baseline under injected stuck
/// faults while an identically damaged repair-disabled control degrades;
/// wear-leveling must cap the hottest slot's device wear vs. LRU; and
/// devices worn out by finite endurance must be detected and remapped.

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "amm/evaluation.hpp"
#include "amm/hierarchical_amm.hpp"
#include "amm/leaf_cache_engine.hpp"
#include "support/shared_dataset.hpp"

namespace spinsim {
namespace {

FeatureSpec small_spec() {
  FeatureSpec s;
  s.height = 8;
  s.width = 6;
  s.bits = 5;
  return s;
}

HierarchicalAmmConfig hierarchy_config(std::size_t clusters, std::uint64_t seed = 17) {
  HierarchicalAmmConfig c;
  c.features = small_spec();
  c.clusters = clusters;
  c.dwn = DwnParams::from_barrier(20.0);
  c.seed = seed;
  return c;
}

std::vector<FeatureVector> all_inputs() {
  std::vector<FeatureVector> inputs;
  for (const auto& sample : testing::small_dataset().all()) {
    inputs.push_back(extract_features(sample.image, small_spec()));
  }
  return inputs;
}

double accuracy_pass(LeafCacheEngine& engine) {
  const AccuracyResult r =
      evaluate_classifier(testing::small_dataset(), small_spec(),
                          [&](const FeatureVector& f) { return engine.recognize(f).winner; });
  return r.accuracy();
}

TEST(Endurance, WearLevelingCapsTheHottestSlot) {
  // Hot/cold traffic over a 2-slot pool: cluster A is touched between
  // every B/C switch, so LRU parks A in one slot forever and funnels
  // every reprogram into the other — classic flash hot-spotting. The
  // wear-leveled policy must spread those writes across the pool.
  const auto templates = build_templates(testing::small_dataset(), small_spec());
  const auto inputs = all_inputs();

  // Classify the inputs by target cluster with a resident hierarchy (the
  // router is identical in every engine built from this config).
  HierarchicalAmm router_probe(hierarchy_config(3, 19));
  router_probe.store_templates(templates);
  std::vector<std::ptrdiff_t> probe_of_cluster(3, -1);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const Recognition r = router_probe.recognize(inputs[i]);
    const std::size_t c = r.hierarchical()->cluster;
    if (probe_of_cluster[c] < 0 && router_probe.recognize(inputs[i]).hierarchical() != nullptr) {
      probe_of_cluster[c] = static_cast<std::ptrdiff_t>(i);
    }
  }
  ASSERT_TRUE(probe_of_cluster[0] >= 0 && probe_of_cluster[1] >= 0 && probe_of_cluster[2] >= 0)
      << "seed 19 no longer spreads the dataset over three clusters";

  // A B A C per round: A is always the most recently *and* second most
  // recently used of the three.
  std::vector<FeatureVector> traffic;
  for (int round = 0; round < 120; ++round) {
    traffic.push_back(inputs[static_cast<std::size_t>(probe_of_cluster[0])]);
    traffic.push_back(inputs[static_cast<std::size_t>(probe_of_cluster[1])]);
    traffic.push_back(inputs[static_cast<std::size_t>(probe_of_cluster[0])]);
    traffic.push_back(inputs[static_cast<std::size_t>(probe_of_cluster[2])]);
  }

  const auto run = [&](LeafSlotPolicy policy) {
    LeafCacheEngineConfig config;
    config.hierarchy = hierarchy_config(3, 19);
    config.leaf_slots = 2;
    config.endurance.policy = policy;
    config.endurance.wear_delta = 600;
    LeafCacheEngine engine(config);
    engine.store_templates(templates);
    for (const auto& input : traffic) {
      (void)engine.recognize(input);
    }
    return engine.counters();
  };

  const LeafCacheCounters lru = run(LeafSlotPolicy::kLru);
  const LeafCacheCounters leveled = run(LeafSlotPolicy::kWearLeveled);

  // Same traffic, similar service level...
  EXPECT_NEAR(leveled.hit_rate(), lru.hit_rate(), 0.15);
  // ...but the hottest slot's cumulative device wear drops sharply.
  EXPECT_LT(leveled.max_slot_write_cycles(),
            static_cast<std::uint64_t>(0.7 * static_cast<double>(lru.max_slot_write_cycles())));
  // LRU concentrates: nearly all writes land on one slot.
  ASSERT_EQ(lru.slot_write_cycles.size(), 2u);
  EXPECT_GT(lru.max_slot_write_cycles() * 2, lru.device_writes);
}

TEST(Endurance, SelfRepairHoldsAccuracyWhileControlDegrades) {
  // The tentpole proof: identical stuck-short damage on both arms; the
  // repairing engine detects the faults on its verify scans, retires the
  // damaged physical columns to spares and reloads — the detect-only
  // control keeps serving hijacked answers.
  const auto templates = build_templates(testing::small_dataset(), small_spec());

  LeafCacheEngineConfig config;
  config.hierarchy = hierarchy_config(3, 19);
  config.leaf_slots = 2;
  config.endurance.delta_writes = true;
  config.endurance.spare_columns = 3;
  config.endurance.verify_interval = 30;
  config.endurance.repair = true;

  LeafCacheEngine healthy(config);
  healthy.store_templates(templates);
  const double baseline = accuracy_pass(healthy);
  ASSERT_GT(baseline, 0.5) << "dataset no longer recognisable at all";

  LeafCacheEngine repaired(config);
  repaired.store_templates(templates);
  config.endurance.repair = false;
  LeafCacheEngine control(config);
  control.store_templates(templates);

  // Identical warmup: both arms answer exactly like the fault-free
  // baseline (same seeds, same traffic, same substrates).
  ASSERT_DOUBLE_EQ(accuracy_pass(repaired), baseline);
  ASSERT_DOUBLE_EQ(accuracy_pass(control), baseline);

  // Identical damage: stuck-shorts across 12 rows of the first two
  // physical columns of both slots. A shorted device inflates its
  // column's collected current on *every* query, hijacking the winner —
  // the polarity repair must catch fastest.
  for (LeafCacheEngine* arm : {&repaired, &control}) {
    for (std::size_t slot = 0; slot < 2; ++slot) {
      for (std::size_t column = 0; column < 2; ++column) {
        for (std::size_t row = 0; row < 48; row += 4) {
          arm->inject_slot_fault(slot, row, column, RcmArray::StuckFault::kShort);
        }
      }
    }
  }

  // Let the repair arm's periodic scans do their work, then measure.
  (void)accuracy_pass(repaired);
  (void)accuracy_pass(control);
  const double repaired_accuracy = accuracy_pass(repaired);
  const double control_accuracy = accuracy_pass(control);

  // Acceptance bound: repaired accuracy within ~2 points of the
  // fault-free baseline (one sample of the 48 = 2.1 points)...
  EXPECT_GE(repaired_accuracy, baseline - 0.021);
  // ...while the unrepaired control measurably degrades.
  EXPECT_LT(control_accuracy, baseline - 0.05);
  EXPECT_LT(control_accuracy, repaired_accuracy);

  const LeafCacheCounters r = repaired.counters();
  EXPECT_GT(r.verify_scans, 0u);
  EXPECT_GT(r.faults_detected, 0u);
  EXPECT_GE(r.columns_remapped, 4u);  // two columns retired per slot
  EXPECT_GT(r.repair_reloads, 0u);
  EXPECT_EQ(r.unrepairable, 0u);  // the spare budget covered the damage

  const LeafCacheCounters c = control.counters();
  EXPECT_GT(c.faults_detected, 0u);  // the control *sees* the faults...
  EXPECT_EQ(c.devices_rewritten, 0u);  // ...but never acts on them
  EXPECT_EQ(c.columns_remapped, 0u);
  EXPECT_EQ(c.repair_reloads, 0u);
}

TEST(Endurance, WornOutDevicesAreDetectedAndRemapped) {
  // Finite endurance + capacity-1 thrash: reprogramming traffic wears
  // the one slot's devices out in the field. The verify scans must spot
  // the stuck devices, fail to rewrite them (they are dead), and spend
  // the spare columns remapping around them.
  const auto templates = build_templates(testing::small_dataset(), small_spec());
  const auto inputs = all_inputs();

  LeafCacheEngineConfig config;
  config.hierarchy = hierarchy_config(3, 17);
  config.leaf_slots = 1;
  config.hierarchy.memristor.endurance_cycles = 25.0;
  config.hierarchy.memristor.endurance_sigma = 0.2;
  config.endurance.spare_columns = 2;
  config.endurance.verify_interval = 20;
  config.endurance.repair = true;
  LeafCacheEngine engine(config);
  engine.store_templates(templates);

  for (int pass = 0; pass < 8; ++pass) {
    for (const auto& input : inputs) {
      (void)engine.recognize(input);  // must keep serving throughout
    }
  }

  const LeafCacheCounters counters = engine.counters();
  EXPECT_GT(counters.worn_out_devices, 0u);
  EXPECT_GT(counters.faults_detected, 0u);
  EXPECT_GT(counters.columns_remapped, 0u);
  EXPECT_GT(counters.verify_scans, 0u);
  // The wear histogram recorded the traffic that killed the devices.
  EXPECT_GT(counters.max_slot_write_cycles(), 25u * 48u);
}

}  // namespace
}  // namespace spinsim
