/// Failure-path conformance: every backend propagates store_templates /
/// recognize / recognize_batch errors as clean C++ exceptions (no
/// aborts, no corrupted state — the engine still answers valid queries
/// afterwards), which is the contract the RecognitionService shard
/// workers rely on when they catch and route engine errors to client
/// futures. Plus the FaultInjectingEngine unit suite: the seeded chaos
/// decorator the service-edge fault-tolerance tests script against.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "amm/digital_amm.hpp"
#include "amm/engine.hpp"
#include "amm/fault_injection.hpp"
#include "amm/hierarchical_amm.hpp"
#include "amm/leaf_cache_engine.hpp"
#include "amm/mscmos_amm.hpp"
#include "amm/spin_amm.hpp"
#include "amm/tiered_engine.hpp"
#include "core/error.hpp"
#include "support/shared_dataset.hpp"

namespace spinsim {
namespace {

FeatureSpec small_spec() {
  FeatureSpec s;
  s.height = 8;
  s.width = 6;
  s.bits = 5;
  return s;
}

/// An input whose dimension disagrees with every engine's FeatureSpec —
/// the canonical caller mistake each backend must reject cleanly.
FeatureVector wrong_dimension_input() {
  FeatureVector f;
  f.analog.assign(3, 0.5);
  f.digital.assign(3, 10);
  return f;
}

FeatureVector valid_input() {
  const auto& sample = testing::small_dataset().all().front();
  return extract_features(sample.image, small_spec());
}

HierarchicalAmmConfig small_hierarchy_config(std::uint64_t seed) {
  HierarchicalAmmConfig c;
  c.features = small_spec();
  c.clusters = 3;
  c.dwn = DwnParams::from_barrier(20.0);
  c.seed = seed;
  return c;
}

/// Engine factories sized for the shared 10-template dataset.
struct NamedFactory {
  std::string label;
  std::function<std::unique_ptr<AssociativeEngine>()> make;
};

std::vector<NamedFactory> all_backends() {
  std::vector<NamedFactory> backends;
  backends.push_back({"spin", [] {
                        SpinAmmConfig c;
                        c.features = small_spec();
                        c.templates = 10;
                        c.dwn = DwnParams::from_barrier(20.0);
                        c.seed = 5;
                        return std::unique_ptr<AssociativeEngine>(std::make_unique<SpinAmm>(c));
                      }});
  backends.push_back({"digital", [] {
                        DigitalAmmConfig c;
                        c.features = small_spec();
                        c.templates = 10;
                        return std::unique_ptr<AssociativeEngine>(std::make_unique<DigitalAmm>(c));
                      }});
  backends.push_back({"mscmos", [] {
                        MsCmosAmmConfig c;
                        c.features = small_spec();
                        c.templates = 10;
                        return std::unique_ptr<AssociativeEngine>(std::make_unique<MsCmosAmm>(c));
                      }});
  backends.push_back({"hierarchical", [] {
                        return std::unique_ptr<AssociativeEngine>(
                            std::make_unique<HierarchicalAmm>(small_hierarchy_config(9)));
                      }});
  backends.push_back({"tiered", [] {
                        SpinAmmConfig flat;
                        flat.features = small_spec();
                        flat.templates = 10;
                        flat.dwn = DwnParams::from_barrier(20.0);
                        flat.seed = 11;
                        return std::unique_ptr<AssociativeEngine>(std::make_unique<TieredEngine>(
                            std::make_unique<HierarchicalAmm>(small_hierarchy_config(9)),
                            std::make_unique<SpinAmm>(flat)));
                      }});
  backends.push_back({"leaf-cache", [] {
                        LeafCacheEngineConfig c;
                        c.hierarchy = small_hierarchy_config(9);
                        c.leaf_slots = 2;
                        return std::unique_ptr<AssociativeEngine>(
                            std::make_unique<LeafCacheEngine>(c));
                      }});
  return backends;
}

TEST(FailureConformance, RecognizeErrorsPropagateCleanlyAllBackends) {
  const auto templates = build_templates(testing::small_dataset(), small_spec());
  const FeatureVector good = valid_input();
  const FeatureVector bad = wrong_dimension_input();
  for (const NamedFactory& backend : all_backends()) {
    auto engine = backend.make();
    engine->store_templates(templates);

    // Both serving entry points reject the malformed input with a clean
    // C++ exception (never an abort or a silent wrong answer)...
    EXPECT_THROW(engine->recognize(bad), std::exception) << backend.label;
    EXPECT_THROW(engine->recognize_batch({good, bad}, 2), std::exception) << backend.label;

    // ...and the failure is non-destructive: the engine still answers
    // valid queries afterwards — the property that lets a service shard
    // survive a poisoned batch.
    const Recognition after = engine->recognize(good);
    EXPECT_LT(after.winner, templates.size()) << backend.label;
    const auto batch = engine->recognize_batch({good, good}, 2);
    EXPECT_EQ(batch.size(), 2u) << backend.label;
  }
}

TEST(FailureConformance, StoreTemplateErrorsPropagateCleanlyAllBackends) {
  const auto templates = build_templates(testing::small_dataset(), small_spec());
  std::vector<FeatureVector> malformed(templates.size(), wrong_dimension_input());
  for (const NamedFactory& backend : all_backends()) {
    auto engine = backend.make();
    EXPECT_THROW(engine->store_templates(malformed), std::exception) << backend.label;
    // A failed programming pass does not brick the module: a clean
    // store afterwards still succeeds and serves.
    auto fresh = backend.make();
    EXPECT_THROW(fresh->store_templates(malformed), std::exception) << backend.label;
    fresh->store_templates(templates);
    EXPECT_LT(fresh->recognize(valid_input()).winner, templates.size()) << backend.label;
  }
}

// ---------------------------------------------------------------------------
// FaultInjectingEngine: the seeded chaos decorator.
// ---------------------------------------------------------------------------

std::unique_ptr<DigitalAmm> small_digital() {
  DigitalAmmConfig c;
  c.features = small_spec();
  c.templates = 10;
  return std::make_unique<DigitalAmm>(c);
}

TEST(FaultInjectingEngine, ZeroRatesPassThroughExactly) {
  const auto templates = build_templates(testing::small_dataset(), small_spec());
  const FeatureVector input = valid_input();

  auto reference = small_digital();
  reference->store_templates(templates);

  FaultInjectingEngine faulty(small_digital(), FaultInjectionConfig{});
  faulty.store_templates(templates);

  EXPECT_EQ(faulty.name(), "faulty(digital)");
  EXPECT_EQ(faulty.template_count(), 10u);
  EXPECT_EQ(faulty.energy_per_query(), reference->energy_per_query());

  const Recognition expected = reference->recognize(input);
  const Recognition got = faulty.recognize(input);
  EXPECT_EQ(got.winner, expected.winner);
  EXPECT_DOUBLE_EQ(got.score, expected.score);

  const auto batch = faulty.recognize_batch({input, input}, 2);
  EXPECT_EQ(batch.size(), 2u);
  const FaultInjectionCounters counters = faulty.counters();
  EXPECT_EQ(counters.calls, 2u);  // one recognize + one recognize_batch
  EXPECT_EQ(counters.throws, 0u);
  EXPECT_EQ(counters.spikes, 0u);
  EXPECT_EQ(counters.stuck_waits, 0u);
}

TEST(FaultInjectingEngine, ThrowScheduleIsSeedDeterministic) {
  const auto templates = build_templates(testing::small_dataset(), small_spec());
  const FeatureVector input = valid_input();
  FaultInjectionConfig config;
  config.throw_rate = 0.4;
  config.seed = 0xBEEF;

  const auto schedule_of = [&](FaultInjectingEngine& engine) {
    std::vector<bool> threw;
    for (int i = 0; i < 64; ++i) {
      try {
        engine.recognize(input);
        threw.push_back(false);
      } catch (const ModelError&) {
        threw.push_back(true);
      }
    }
    return threw;
  };

  FaultInjectingEngine a(small_digital(), config);
  FaultInjectingEngine b(small_digital(), config);
  a.store_templates(templates);
  b.store_templates(templates);
  const std::vector<bool> schedule_a = schedule_of(a);
  const std::vector<bool> schedule_b = schedule_of(b);
  EXPECT_EQ(schedule_a, schedule_b);

  // The rate is honoured in aggregate and the counters agree with the
  // observed schedule.
  const auto throws = static_cast<std::size_t>(
      std::count(schedule_a.begin(), schedule_a.end(), true));
  EXPECT_GT(throws, 0u);
  EXPECT_LT(throws, 64u);
  EXPECT_EQ(a.counters().throws, throws);

  // A different seed yields a different schedule (overwhelmingly).
  config.seed = 0xBEEF + 1;
  FaultInjectingEngine c(small_digital(), config);
  c.store_templates(templates);
  EXPECT_NE(schedule_of(c), schedule_a);
}

TEST(FaultInjectingEngine, SwitchForcesThrowsUntilCleared) {
  const auto templates = build_templates(testing::small_dataset(), small_spec());
  const FeatureVector input = valid_input();
  auto control = std::make_shared<FaultSwitch>();
  FaultInjectingEngine faulty(small_digital(), FaultInjectionConfig{}, control);

  // store_templates is the programming path: it passes through even
  // while the switch forces serving-path throws.
  control->set_throwing(true);
  faulty.store_templates(templates);
  EXPECT_THROW(faulty.recognize(input), ModelError);
  EXPECT_THROW(faulty.recognize_batch({input}, 1), ModelError);
  control->set_throwing(false);
  EXPECT_EQ(faulty.recognize(input).winner, faulty.recognize(input).winner);
  EXPECT_EQ(faulty.counters().throws, 2u);
}

TEST(FaultInjectingEngine, StickBlocksCallsUntilRelease) {
  const auto templates = build_templates(testing::small_dataset(), small_spec());
  const FeatureVector input = valid_input();
  auto control = std::make_shared<FaultSwitch>();
  FaultInjectingEngine faulty(small_digital(), FaultInjectionConfig{}, control);
  faulty.store_templates(templates);

  control->stick();
  bool answered = false;
  std::thread caller([&] {
    faulty.recognize(input);
    answered = true;
  });
  // The call parks inside the engine (cv wait, no spinning): visible via
  // the switch's stuck counter, and guaranteed not answered yet.
  while (control->stuck_calls() == 0) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(answered);
  control->release();
  caller.join();
  EXPECT_TRUE(answered);
  EXPECT_EQ(faulty.counters().stuck_waits, 1u);
}

TEST(FaultInjectingEngine, RejectsOutOfRangeRates) {
  FaultInjectionConfig config;
  config.throw_rate = 1.5;
  EXPECT_THROW(FaultInjectingEngine(small_digital(), config), InvalidArgument);
  config.throw_rate = 0.0;
  config.spike_rate = -0.1;
  EXPECT_THROW(FaultInjectingEngine(small_digital(), config), InvalidArgument);
  EXPECT_THROW(FaultInjectingEngine(nullptr, FaultInjectionConfig{}), InvalidArgument);
}

}  // namespace
}  // namespace spinsim
