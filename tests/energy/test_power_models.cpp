#include <gtest/gtest.h>

#include "core/units.hpp"
#include "energy/digital_asic.hpp"
#include "energy/mscmos_power.hpp"
#include "energy/power_report.hpp"
#include "energy/spin_power.hpp"
#include "energy/write_cost.hpp"

namespace spinsim {
namespace {

TEST(PowerReport, Accounting) {
  PowerReport r;
  r.add("a", PowerKind::kStatic, 1e-6 * units::W);
  r.add("b", PowerKind::kDynamic, 2e-6 * units::W);
  r.add("c", PowerKind::kStatic, 3e-6 * units::W);
  EXPECT_NEAR(r.static_total().in(units::W), 4e-6, 1e-18);
  EXPECT_NEAR(r.dynamic_total().in(units::W), 2e-6, 1e-18);
  EXPECT_NEAR(r.total().in(units::W), 6e-6, 1e-18);
  EXPECT_NEAR(r.energy_per_op(1e6 * units::Hz).in(units::J), 6e-12, 1e-20);
  EXPECT_THROW(r.add("bad", PowerKind::kStatic, -1.0 * units::W), InvalidArgument);
}

// --- proposed design (paper Table 1: 65 uW at 5-bit / 1 uA / 100 MHz) ---

TEST(SpinPower, PaperDesignPointLandsNearTable1) {
  const SpinAmmDesign d;  // defaults are the paper's point
  const PowerReport r = spin_amm_power(d);
  EXPECT_GT(r.total().in(units::W), 40e-6);
  EXPECT_LT(r.total().in(units::W), 90e-6);
}

TEST(SpinPower, MaxInputCurrentNearTenMicroamp) {
  const SpinAmmDesign d;
  EXPECT_NEAR(d.max_input_current(), 10e-6, 0.5e-6);  // paper Section 4A
  EXPECT_NEAR(d.full_scale_current(), 32e-6, 1e-12);
}

TEST(SpinPower, StaticScalesWithThreshold) {
  SpinAmmDesign lo;
  lo.dwn_threshold = 0.25e-6;
  SpinAmmDesign hi;
  hi.dwn_threshold = 4e-6;
  const PowerReport r_lo = spin_amm_power(lo);
  const PowerReport r_hi = spin_amm_power(hi);
  EXPECT_NEAR(r_hi.static_total() / r_lo.static_total(), 16.0, 0.1);
  // Dynamic power is threshold-independent (Fig. 13a flattening).
  EXPECT_NEAR(r_hi.dynamic_total().in(units::W), r_lo.dynamic_total().in(units::W), 1e-12);
}

TEST(SpinPower, DynamicDominatesAtLowThreshold) {
  SpinAmmDesign d;
  d.dwn_threshold = 0.1e-6;
  const PowerReport r = spin_amm_power(d);
  EXPECT_GT(r.dynamic_total(), r.static_total());
}

TEST(SpinPower, StaticDominatesAtHighThreshold) {
  SpinAmmDesign d;
  d.dwn_threshold = 4e-6;
  const PowerReport r = spin_amm_power(d);
  EXPECT_GT(r.static_total(), r.dynamic_total());
}

TEST(SpinPower, PowerFallsWithResolution) {
  SpinAmmDesign b5;
  SpinAmmDesign b4 = b5;
  b4.resolution_bits = 4;
  SpinAmmDesign b3 = b5;
  b3.resolution_bits = 3;
  const double p5 = spin_amm_power(b5).total().in(units::W);
  const double p4 = spin_amm_power(b4).total().in(units::W);
  const double p3 = spin_amm_power(b3).total().in(units::W);
  EXPECT_GT(p5, p4);
  EXPECT_GT(p4, p3);
}

TEST(SpinPower, ScalesWithDeltaV) {
  SpinAmmDesign d;
  SpinAmmDesign d2 = d;
  d2.delta_v = 60e-3;
  EXPECT_NEAR(spin_amm_power(d2).static_total() / spin_amm_power(d).static_total(), 2.0, 1e-9);
}

// --- MS-CMOS baselines (paper Table 1: 5.5-8 mW at 5-bit, 50 MHz) ---

TEST(MsCmosPower, FiveBitDesignsLandInTable1Band) {
  MsCmosDesign d17;
  d17.topology = MsCmosTopology::kStandardBt;
  const double p17 = mscmos_wta_power(d17).power.total().in(units::W);
  EXPECT_GT(p17, 3e-3);
  EXPECT_LT(p17, 20e-3);

  MsCmosDesign d18;
  d18.topology = MsCmosTopology::kAsyncMinMax;
  const double p18 = mscmos_wta_power(d18).power.total().in(units::W);
  EXPECT_GT(p18, 2e-3);
  EXPECT_LT(p18, 15e-3);
  EXPECT_LT(p18, p17);  // [18] is the lower-power design
}

TEST(MsCmosPower, MeetsResolutionAtNearIdealSigma) {
  MsCmosDesign d;
  d.sigma_vt_min_size = 5e-3;
  const MsCmosEvaluation e = mscmos_wta_power(d);
  EXPECT_TRUE(e.meets_resolution);
  EXPECT_LE(e.path_rel_sigma, 0.5 / 32.0 * 1.001);
}

TEST(MsCmosPower, PowerFallsWithResolution) {
  MsCmosDesign b5;
  MsCmosDesign b4 = b5;
  b4.resolution_bits = 4;
  MsCmosDesign b3 = b5;
  b3.resolution_bits = 3;
  const double p5 = mscmos_wta_power(b5).power.total().in(units::W);
  const double p4 = mscmos_wta_power(b4).power.total().in(units::W);
  const double p3 = mscmos_wta_power(b3).power.total().in(units::W);
  EXPECT_GT(p5, p4);
  EXPECT_GT(p4, p3);
}

TEST(MsCmosPower, AreaGrowsWithSigmaVt) {
  MsCmosDesign clean;
  clean.sigma_vt_min_size = 5e-3;
  MsCmosDesign dirty = clean;
  dirty.sigma_vt_min_size = 30e-3;
  EXPECT_GT(mscmos_wta_power(dirty).mirror_area, mscmos_wta_power(clean).mirror_area);
}

TEST(MsCmosPower, PowerGrowsWithSigmaVt) {
  MsCmosDesign clean;
  clean.sigma_vt_min_size = 5e-3;
  MsCmosDesign dirty = clean;
  dirty.sigma_vt_min_size = 30e-3;
  EXPECT_GT(mscmos_wta_power(dirty).power.total(), mscmos_wta_power(clean).power.total());
}

TEST(MsCmosPower, HundredXGapVersusSpin) {
  // The headline claim: spin PE ~100x lower power than MS-CMOS.
  const double p_spin = spin_amm_power(SpinAmmDesign{}).total().in(units::W);
  const double p_ms = mscmos_wta_power(MsCmosDesign{}).power.total().in(units::W);
  EXPECT_GT(p_ms / p_spin, 30.0);
  EXPECT_LT(p_ms / p_spin, 500.0);
}

// --- digital ASIC (paper Table 1: 4 mW / 2.5 MHz at 5-bit) ---

TEST(DigitalPower, PaperDesignPoint) {
  const DigitalAsicDesign d;  // 128 x 40, 5-bit, 100 MHz
  const DigitalAsicEvaluation e = digital_asic_power(d);
  EXPECT_NEAR(e.recognition_rate.in(units::Hz), 2.5e6, 1.0);  // clock / templates
  EXPECT_GT(e.power.total().in(units::W), 1e-3);
  EXPECT_LT(e.power.total().in(units::W), 10e-3);
}

TEST(DigitalPower, EnergyFallsWithPrecision) {
  DigitalAsicDesign b5;
  DigitalAsicDesign b3 = b5;
  b3.bits = 3;
  EXPECT_GT(digital_asic_power(b5).energy_per_recognition,
            digital_asic_power(b3).energy_per_recognition);
}

TEST(DigitalPower, ThousandXEnergyGapVersusSpin) {
  // Table 1's headline: ~2460x at 5-bit (energy per recognition).
  const SpinAmmDesign spin;
  const double e_spin = spin_amm_power(spin).energy_per_op(spin.clock * units::Hz).in(units::J);
  const DigitalAsicEvaluation digital = digital_asic_power(DigitalAsicDesign{});
  const double e_dig = digital.energy_per_recognition.in(units::J);
  EXPECT_GT(e_dig / e_spin, 800.0);
  EXPECT_LT(e_dig / e_spin, 8000.0);
}

TEST(DigitalPower, MemoryReadAddsEnergy) {
  DigitalAsicDesign with;
  with.include_memory_read = true;
  DigitalAsicDesign without;
  EXPECT_GT(digital_asic_power(with).energy_per_recognition,
            digital_asic_power(without).energy_per_recognition);
}

TEST(DigitalPower, MsCmosBarely10xBetterThanDigital) {
  // Paper Section 5: MS-CMOS in RCM performs only ~10x better than the
  // digital implementation (energy per op).
  MsCmosDesign ms;
  const MsCmosEvaluation ems = mscmos_wta_power(ms);
  const double e_ms = ems.power.total().in(units::W) / ms.target_clock;
  const DigitalAsicEvaluation dig = digital_asic_power(DigitalAsicDesign{});
  const double ratio = dig.energy_per_recognition.in(units::J) / e_ms;
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 60.0);
}

TEST(DigitalPower, RejectsBadDesign) {
  DigitalAsicDesign d;
  d.bits = 0;
  EXPECT_THROW(digital_asic_power(d), InvalidArgument);
}

TEST(WriteCost, DeviceEnergyIsResistivePlusDriver) {
  CrossbarWriteCost cost;
  MemristorSpec spec;
  const double g_mid = 0.5 * (spec.g_min() + spec.g_max());
  const double expected =
      cost.verify_pulses * (cost.write_voltage * cost.write_voltage * g_mid *
                                cost.pulse_duration +
                            cost.driver_energy_per_pulse.in(units::J));
  EXPECT_NEAR(cost.device_write_energy(spec).in(units::J), expected, 1e-24);
  EXPECT_GT(cost.device_write_energy(spec).in(units::J), 0.0);
}

TEST(WriteCost, ArrayCostsScaleWithGeometry) {
  CrossbarWriteCost cost;
  MemristorSpec spec;
  const double one = cost.array_write_energy(spec, 1, 1).in(units::J);
  EXPECT_NEAR(cost.array_write_energy(spec, 128, 40).in(units::J), 128.0 * 40.0 * one, 1e-18);
  // Column-serial write: latency scales with columns, not rows.
  EXPECT_NEAR(cost.array_write_latency(40).in(units::second),
              40.0 * cost.array_write_latency(1).in(units::second), 1e-15);
}

TEST(WriteCost, WriteDwarfsRead) {
  // The premise of the leaf cache's miss accounting: reprogramming an
  // array costs orders of magnitude more than one ~30 mV read search,
  // so the cache must amortize misses across batches.
  CrossbarWriteCost cost;
  MemristorSpec spec;
  SpinAmmDesign design;  // the paper's 128x40 point
  const Energy search_energy =
      spin_amm_power(design).total() * design.resolution_bits / (design.clock * units::Hz);
  EXPECT_GT(cost.array_write_energy(spec, design.dimension, design.templates),
            100.0 * search_energy);
}

}  // namespace
}  // namespace spinsim
