#include "device/variation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"

namespace spinsim {
namespace {

TEST(Variation, SaturationMismatchFormula) {
  EXPECT_NEAR(saturation_current_mismatch(0.2, 5e-3), 0.05, 1e-12);
}

TEST(Variation, TriodeMismatchIsHalfSaturation) {
  const double vov = 0.15;
  const double sigma = 4e-3;
  EXPECT_NEAR(saturation_current_mismatch(vov, sigma),
              2.0 * triode_conductance_mismatch(vov, sigma), 1e-12);
}

TEST(Variation, RejectsBadArgs) {
  EXPECT_THROW(saturation_current_mismatch(0.0, 1e-3), InvalidArgument);
  EXPECT_THROW(triode_conductance_mismatch(0.1, -1e-3), InvalidArgument);
}

TEST(MismatchBudget, QuadratureSum) {
  MismatchBudget b;
  b.add(0.03);
  b.add(0.04);
  EXPECT_NEAR(b.total(), 0.05, 1e-12);
  EXPECT_EQ(b.count(), 2u);
}

TEST(MismatchBudget, IdenticalStages) {
  MismatchBudget b;
  b.add_stages(0.01, 16);
  EXPECT_NEAR(b.total(), 0.04, 1e-12);  // sqrt(16) * 0.01
}

TEST(MismatchBudget, EmptyIsZero) {
  MismatchBudget b;
  EXPECT_DOUBLE_EQ(b.total(), 0.0);
}

TEST(MismatchBudget, RejectsNegative) {
  MismatchBudget b;
  EXPECT_THROW(b.add(-0.01), InvalidArgument);
}

TEST(Variation, MinAreaForMirrorAccuracy) {
  const Tech45& t = Tech45::nominal();
  const double area = min_area_for_mirror_accuracy(0.2, 0.01, t);
  // Check the defining relation: 2 * A_VT / sqrt(area) / vov == target.
  EXPECT_NEAR(2.0 * t.a_vt / std::sqrt(area) / 0.2, 0.01, 1e-9);
}

TEST(Variation, TighterTargetNeedsMoreArea) {
  const Tech45& t = Tech45::nominal();
  EXPECT_GT(min_area_for_mirror_accuracy(0.2, 0.005, t),
            min_area_for_mirror_accuracy(0.2, 0.01, t));
}

}  // namespace
}  // namespace spinsim
