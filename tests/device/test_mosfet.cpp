#include "device/mosfet.hpp"

#include <gtest/gtest.h>

#include "core/statistics.hpp"

namespace spinsim {
namespace {

MosGeometry pmos_1u() {
  MosGeometry g;
  g.type = MosType::kPmos;
  g.w = 1e-6;
  g.l = 90e-9;
  return g;
}

TEST(Mosfet, CutoffBelowThreshold) {
  const Mosfet m(pmos_1u());
  EXPECT_DOUBLE_EQ(m.drain_current(0.2, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(m.triode_conductance(0.2), 0.0);
}

TEST(Mosfet, TriodeCurrentFormula) {
  const Mosfet m(pmos_1u());
  const Tech45& t = Tech45::nominal();
  const double vgs = 0.8;
  const double vds = 0.05;
  const double vov = vgs - t.vt_p;
  const double expected = t.kp_p * (1e-6 / 90e-9) * (vov * vds - 0.5 * vds * vds);
  EXPECT_NEAR(m.drain_current(vgs, vds), expected, 1e-12);
}

TEST(Mosfet, SaturationCurrentFormula) {
  const Mosfet m(pmos_1u());
  const Tech45& t = Tech45::nominal();
  const double vgs = 0.8;
  const double vov = vgs - t.vt_p;
  const double vds = vov;  // at the edge: no lambda contribution
  const double expected = 0.5 * t.kp_p * (1e-6 / 90e-9) * vov * vov;
  EXPECT_NEAR(m.drain_current(vgs, vds), expected, expected * 1e-9);
}

TEST(Mosfet, ContinuousAtSaturationEdge) {
  const Mosfet m(pmos_1u());
  const double vgs = 0.7;
  const double vov = vgs - m.vt();
  const double below = m.drain_current(vgs, vov - 1e-9);
  const double above = m.drain_current(vgs, vov + 1e-9);
  EXPECT_NEAR(below, above, below * 1e-6);
}

TEST(Mosfet, ChannelLengthModulationIncreasesCurrent) {
  const Mosfet m(pmos_1u());
  const double vgs = 0.7;
  const double vov = vgs - m.vt();
  EXPECT_GT(m.drain_current(vgs, vov + 0.3), m.drain_current(vgs, vov + 0.01));
}

TEST(Mosfet, LongerChannelWeakensLambda) {
  MosGeometry short_l = pmos_1u();
  MosGeometry long_l = pmos_1u();
  long_l.l = 4 * short_l.l;
  long_l.w = 4 * short_l.w;  // same W/L
  const Mosfet ms(short_l);
  const Mosfet ml(long_l);
  const double vgs = 0.7;
  const double vds = 0.6;
  const double gds_short = ms.output_conductance(vgs, vds);
  const double gds_long = ml.output_conductance(vgs, vds);
  EXPECT_GT(gds_short, gds_long);
}

TEST(Mosfet, TriodeConductanceLinearInCode) {
  const Mosfet m(pmos_1u());
  const double g1 = m.triode_conductance(0.6);
  const double g2 = m.triode_conductance(0.85);
  // g = k(W/L)(vgs - vt): linear in overdrive.
  EXPECT_NEAR((g2 - g1) / (0.85 - 0.6), Tech45::nominal().kp_p * (1e-6 / 90e-9), 1e-9);
}

TEST(Mosfet, MonotoneInVds) {
  const Mosfet m(pmos_1u());
  double last = 0.0;
  for (double vds = 0.01; vds < 1.0; vds += 0.01) {
    const double i = m.drain_current(0.8, vds);
    EXPECT_GE(i, last);
    last = i;
  }
}

TEST(Mosfet, MismatchSamplingStats) {
  Rng rng(77);
  const Tech45& t = Tech45::nominal();
  RunningStats vt_stats;
  const MosGeometry g = pmos_1u();
  for (int i = 0; i < 3000; ++i) {
    const Mosfet m(g, rng);
    vt_stats.add(m.vt());
  }
  EXPECT_NEAR(vt_stats.mean(), t.vt_p, 6e-4);
  EXPECT_NEAR(vt_stats.stddev(), t.sigma_vt(g.w, g.l), 6e-4);
}

TEST(Mosfet, SigmaOverrideScalesWithArea) {
  Rng rng(78);
  const Tech45& t = Tech45::nominal();
  // A device 100x the min area should show 10x less sigma than min size.
  MosGeometry big = pmos_1u();
  big.w = t.w_min * 100;
  big.l = t.l_min;
  RunningStats s;
  for (int i = 0; i < 4000; ++i) {
    const Mosfet m(big, rng, t, /*sigma_vt_override=*/10e-3);
    s.add(m.vt());
  }
  EXPECT_NEAR(s.stddev(), 1e-3, 2e-4);
}

TEST(Mosfet, GateCapScalesWithArea) {
  MosGeometry small = pmos_1u();
  MosGeometry big = pmos_1u();
  big.w *= 4;
  EXPECT_GT(Mosfet(big).gate_cap(), 3.0 * Mosfet(small).gate_cap());
}

TEST(Mosfet, RejectsNegativeVoltages) {
  const Mosfet m(pmos_1u());
  EXPECT_THROW(m.drain_current(-0.1, 0.1), InvalidArgument);
  EXPECT_THROW(m.drain_current(0.5, -0.1), InvalidArgument);
}

TEST(Tech45, PelgromSigma) {
  const Tech45& t = Tech45::nominal();
  const double s1 = t.sigma_vt(1e-6, 1e-6);
  const double s2 = t.sigma_vt(4e-6, 1e-6);
  EXPECT_NEAR(s1, t.a_vt / 1e-6, 1e-9);
  EXPECT_NEAR(s1 / s2, 2.0, 1e-9);
}

}  // namespace
}  // namespace spinsim
