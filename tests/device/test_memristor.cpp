#include "device/memristor.hpp"

#include <gtest/gtest.h>

#include "core/statistics.hpp"

namespace spinsim {
namespace {

TEST(MemristorSpec, PaperRange) {
  const MemristorSpec spec;
  EXPECT_DOUBLE_EQ(spec.g_min(), 1.0 / 32e3);
  EXPECT_DOUBLE_EQ(spec.g_max(), 1.0 / 1e3);
  EXPECT_EQ(spec.levels, 32u);
}

TEST(MemristorSpec, LevelGridEndpoints) {
  const MemristorSpec spec;
  EXPECT_DOUBLE_EQ(spec.level_conductance(0), spec.g_min());
  EXPECT_DOUBLE_EQ(spec.level_conductance(31), spec.g_max());
}

TEST(MemristorSpec, LevelGridIsUniform) {
  const MemristorSpec spec;
  const double step = spec.level_conductance(1) - spec.level_conductance(0);
  for (std::size_t k = 1; k < 31; ++k) {
    EXPECT_NEAR(spec.level_conductance(k + 1) - spec.level_conductance(k), step, 1e-15);
  }
}

TEST(MemristorSpec, LevelOutOfRangeThrows) {
  const MemristorSpec spec;
  EXPECT_THROW(spec.level_conductance(32), InvalidArgument);
}

TEST(MemristorSpec, WeightToLevelMapping) {
  const MemristorSpec spec;
  EXPECT_EQ(spec.weight_to_level(0.0), 0u);
  EXPECT_EQ(spec.weight_to_level(1.0), 31u);
  EXPECT_EQ(spec.weight_to_level(0.5), 16u);  // round(15.5) = 16
  EXPECT_EQ(spec.weight_to_level(-3.0), 0u);  // clamped
  EXPECT_EQ(spec.weight_to_level(9.0), 31u);  // clamped
}

TEST(Memristor, StartsAtHighResistance) {
  const MemristorSpec spec;
  const Memristor m(spec);
  EXPECT_DOUBLE_EQ(m.conductance(), spec.g_min());
}

TEST(Memristor, IdealProgramHitsGrid) {
  const MemristorSpec spec;
  Memristor m(spec);
  m.program_ideal(17);
  EXPECT_DOUBLE_EQ(m.conductance(), spec.level_conductance(17));
  EXPECT_EQ(m.level(), 17u);
  EXPECT_DOUBLE_EQ(m.resistance(), 1.0 / spec.level_conductance(17));
}

TEST(Memristor, WriteNoiseHasPaperSigma) {
  MemristorSpec spec;  // 3 % write accuracy
  Rng rng(123);
  RunningStats stats;
  const double target = spec.level_conductance(20);
  for (int i = 0; i < 5000; ++i) {
    Memristor m(spec);
    m.program(20, rng);
    stats.add(m.conductance() / target);
  }
  EXPECT_NEAR(stats.mean(), 1.0, 0.01);
  EXPECT_NEAR(stats.stddev(), 0.03, 0.005);
}

TEST(Memristor, ZeroWriteSigmaIsExact) {
  MemristorSpec spec;
  spec.write_sigma = 0.0;
  Rng rng(1);
  Memristor m(spec);
  m.program(5, rng);
  EXPECT_DOUBLE_EQ(m.conductance(), spec.level_conductance(5));
}

TEST(Memristor, ProgramWeightQuantises) {
  MemristorSpec spec;
  spec.write_sigma = 0.0;
  Rng rng(2);
  Memristor m(spec);
  m.program_weight(0.4839, rng);  // 0.4839 * 31 = 15.0009 -> level 15
  EXPECT_EQ(m.level(), 15u);
}

TEST(Memristor, DeviceToDeviceVariation) {
  MemristorSpec spec;
  spec.write_sigma = 0.0;
  spec.d2d_sigma = 0.10;
  Rng rng(3);
  RunningStats stats;
  for (int i = 0; i < 3000; ++i) {
    Memristor m(spec, rng);
    m.program_ideal(31);
    stats.add(m.conductance() / spec.g_max());
  }
  EXPECT_NEAR(stats.stddev(), 0.10, 0.02);
}

TEST(Memristor, BadRangeRejected) {
  MemristorSpec spec;
  spec.r_min = 10e3;
  spec.r_max = 1e3;  // inverted
  EXPECT_THROW(Memristor m(spec), InvalidArgument);
}

TEST(Memristor, WriteClampStaysInsidePhysicalWindow) {
  MemristorSpec spec;
  spec.write_sigma = 2.0;  // absurd write noise
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    Memristor m(spec);
    m.program(31, rng);
    EXPECT_GE(m.conductance(), 0.25 * spec.g_min());
    EXPECT_LE(m.conductance(), 4.0 * spec.g_max());
  }
}

}  // namespace
}  // namespace spinsim
