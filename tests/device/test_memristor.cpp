#include "device/memristor.hpp"

#include <gtest/gtest.h>

#include "core/statistics.hpp"

namespace spinsim {
namespace {

TEST(MemristorSpec, PaperRange) {
  const MemristorSpec spec;
  EXPECT_DOUBLE_EQ(spec.g_min(), 1.0 / 32e3);
  EXPECT_DOUBLE_EQ(spec.g_max(), 1.0 / 1e3);
  EXPECT_EQ(spec.levels, 32u);
}

TEST(MemristorSpec, LevelGridEndpoints) {
  const MemristorSpec spec;
  EXPECT_DOUBLE_EQ(spec.level_conductance(0), spec.g_min());
  EXPECT_DOUBLE_EQ(spec.level_conductance(31), spec.g_max());
}

TEST(MemristorSpec, LevelGridIsUniform) {
  const MemristorSpec spec;
  const double step = spec.level_conductance(1) - spec.level_conductance(0);
  for (std::size_t k = 1; k < 31; ++k) {
    EXPECT_NEAR(spec.level_conductance(k + 1) - spec.level_conductance(k), step, 1e-15);
  }
}

TEST(MemristorSpec, LevelOutOfRangeThrows) {
  const MemristorSpec spec;
  EXPECT_THROW(spec.level_conductance(32), InvalidArgument);
}

TEST(MemristorSpec, WeightToLevelMapping) {
  const MemristorSpec spec;
  EXPECT_EQ(spec.weight_to_level(0.0), 0u);
  EXPECT_EQ(spec.weight_to_level(1.0), 31u);
  EXPECT_EQ(spec.weight_to_level(0.5), 16u);  // round(15.5) = 16
  EXPECT_EQ(spec.weight_to_level(-3.0), 0u);  // clamped
  EXPECT_EQ(spec.weight_to_level(9.0), 31u);  // clamped
}

TEST(Memristor, StartsAtHighResistance) {
  const MemristorSpec spec;
  const Memristor m(spec);
  EXPECT_DOUBLE_EQ(m.conductance(), spec.g_min());
}

TEST(Memristor, IdealProgramHitsGrid) {
  const MemristorSpec spec;
  Memristor m(spec);
  m.program_ideal(17);
  EXPECT_DOUBLE_EQ(m.conductance(), spec.level_conductance(17));
  EXPECT_EQ(m.level(), 17u);
  EXPECT_DOUBLE_EQ(m.resistance(), 1.0 / spec.level_conductance(17));
}

TEST(Memristor, WriteNoiseHasPaperSigma) {
  MemristorSpec spec;  // 3 % write accuracy
  Rng rng(123);
  RunningStats stats;
  const double target = spec.level_conductance(20);
  for (int i = 0; i < 5000; ++i) {
    Memristor m(spec);
    m.program(20, rng);
    stats.add(m.conductance() / target);
  }
  EXPECT_NEAR(stats.mean(), 1.0, 0.01);
  EXPECT_NEAR(stats.stddev(), 0.03, 0.005);
}

TEST(Memristor, ZeroWriteSigmaIsExact) {
  MemristorSpec spec;
  spec.write_sigma = 0.0;
  Rng rng(1);
  Memristor m(spec);
  m.program(5, rng);
  EXPECT_DOUBLE_EQ(m.conductance(), spec.level_conductance(5));
}

TEST(Memristor, ProgramWeightQuantises) {
  MemristorSpec spec;
  spec.write_sigma = 0.0;
  Rng rng(2);
  Memristor m(spec);
  m.program_weight(0.4839, rng);  // 0.4839 * 31 = 15.0009 -> level 15
  EXPECT_EQ(m.level(), 15u);
}

TEST(Memristor, DeviceToDeviceVariation) {
  MemristorSpec spec;
  spec.write_sigma = 0.0;
  spec.d2d_sigma = 0.10;
  Rng rng(3);
  RunningStats stats;
  for (int i = 0; i < 3000; ++i) {
    Memristor m(spec, rng);
    m.program_ideal(31);
    stats.add(m.conductance() / spec.g_max());
  }
  EXPECT_NEAR(stats.stddev(), 0.10, 0.02);
}

TEST(Memristor, BadRangeRejected) {
  MemristorSpec spec;
  spec.r_min = 10e3;
  spec.r_max = 1e3;  // inverted
  EXPECT_THROW(Memristor m(spec), InvalidArgument);
}

TEST(Memristor, WriteClampStaysInsidePhysicalWindow) {
  MemristorSpec spec;
  spec.write_sigma = 2.0;  // absurd write noise
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    Memristor m(spec);
    m.program(31, rng);
    EXPECT_GE(m.conductance(), 0.25 * spec.g_min());
    EXPECT_LE(m.conductance(), 4.0 * spec.g_max());
  }
}

TEST(MemristorWearModel, DisabledWearOnlyCountsCycles) {
  MemristorSpec spec;  // endurance_cycles == 0: wear model off
  Rng rng(5);
  Memristor m(spec);
  for (int i = 0; i < 5; ++i) {
    m.program(20, rng);
  }
  EXPECT_EQ(m.write_cycles(), 5u);
  EXPECT_DOUBLE_EQ(m.wear_fraction(), 0.0);
  EXPECT_EQ(m.health(), MemristorHealth::kHealthy);
  EXPECT_FALSE(m.worn_out());
}

TEST(MemristorWearModel, WearOutSticksOpenAndIgnoresFurtherWrites) {
  MemristorSpec spec;
  spec.endurance_cycles = 10.0;
  spec.endurance_sigma = 0.0;  // deterministic limit
  spec.wear_fail_open = 1.0;   // force the stuck-open failure mode
  Rng rng(6);
  Memristor m(spec);
  for (int i = 0; i < 10; ++i) {
    m.program(31, rng);
    EXPECT_FALSE(m.worn_out()) << "write " << i;
  }
  m.program(31, rng);  // write 11 exceeds the endurance limit
  EXPECT_TRUE(m.worn_out());
  EXPECT_EQ(m.health(), MemristorHealth::kStuckOpen);
  EXPECT_DOUBLE_EQ(m.conductance(), spec.stuck_open_conductance());
  m.program(0, rng);
  m.program_ideal(15);
  EXPECT_DOUBLE_EQ(m.conductance(), spec.stuck_open_conductance());
  EXPECT_EQ(m.write_cycles(), 13u);  // pulses still spent on a dead device
}

TEST(MemristorWearModel, WearOutCanStickShort) {
  MemristorSpec spec;
  spec.endurance_cycles = 3.0;
  spec.endurance_sigma = 0.0;
  spec.wear_fail_open = 0.0;  // force the over-formed failure mode
  Rng rng(7);
  Memristor m(spec);
  for (int i = 0; i < 4; ++i) {
    m.program(5, rng);
  }
  EXPECT_EQ(m.health(), MemristorHealth::kStuckShort);
  EXPECT_DOUBLE_EQ(m.conductance(), spec.stuck_short_conductance());
}

TEST(MemristorWearModel, StuckSignaturesMatchInjectedFaultWindows) {
  // Wear-out must land in the same conductance windows
  // RcmArray::inject_fault realises, so one set of verify windows
  // detects field faults and worn-out devices alike.
  const MemristorSpec spec;
  EXPECT_DOUBLE_EQ(spec.stuck_open_conductance(), 0.01 * spec.g_min());
  EXPECT_DOUBLE_EQ(spec.stuck_short_conductance(), 4.0 * spec.g_max());
}

TEST(MemristorWearModel, DriftPullsRealisedTargetTowardMid) {
  MemristorSpec spec;
  spec.write_sigma = 0.0;  // isolate the deterministic drift term
  spec.endurance_cycles = 1000.0;
  spec.endurance_sigma = 0.0;
  spec.wear_drift = 0.5;
  spec.wear_sigma_growth = 0.0;
  Rng rng(8);
  Memristor m(spec);
  const double fresh_target = spec.level_conductance(31);
  const double g_mid = 0.5 * (spec.g_min() + spec.g_max());
  double previous = fresh_target + 1.0;
  for (int i = 0; i < 500; ++i) {
    m.program(31, rng);
    EXPECT_LT(m.conductance(), previous);  // monotone drift toward mid
    previous = m.conductance();
  }
  // At wear fraction 0.5 the realised target sits halfway along
  // wear_drift * w of the way from the fresh target to mid-conductance.
  const double expected = fresh_target + 0.5 * 0.5 * (g_mid - fresh_target);
  EXPECT_NEAR(m.conductance(), expected, 1e-9);
}

TEST(MemristorWearModel, WriteNoiseGrowsWithWear) {
  MemristorSpec spec;
  spec.endurance_cycles = 1000.0;
  spec.endurance_sigma = 0.0;
  spec.wear_drift = 0.0;  // isolate the noise-growth term
  spec.wear_sigma_growth = 2.0;
  Rng rng(9);
  RunningStats stats;
  MemristorWear aged;
  aged.write_cycles = 999;  // next write lands at wear fraction ~1
  aged.endurance_limit = 1000.0;
  for (int i = 0; i < 3000; ++i) {
    Memristor m(spec);
    m.set_wear(aged);
    m.program(20, rng);
    stats.add(m.conductance() / spec.level_conductance(20));
  }
  // Effective sigma = write_sigma * (1 + growth * wear) = 0.03 * 3.
  EXPECT_NEAR(stats.stddev(), 0.09, 0.01);
}

TEST(MemristorWearModel, WearSnapshotRoundTrips) {
  MemristorSpec spec;
  spec.endurance_cycles = 100.0;
  spec.endurance_sigma = 0.0;
  Rng rng(10);
  Memristor first(spec);
  for (int i = 0; i < 7; ++i) {
    first.program(12, rng);
  }
  const MemristorWear snapshot = first.wear();
  EXPECT_EQ(snapshot.write_cycles, 7u);

  // A fresh model cell continues the physical device's life.
  Memristor second(spec);
  second.set_wear(snapshot);
  EXPECT_EQ(second.write_cycles(), 7u);
  second.program(12, rng);
  EXPECT_EQ(second.write_cycles(), 8u);

  // A failed snapshot pins the stuck signature immediately.
  MemristorWear dead = snapshot;
  dead.health = MemristorHealth::kStuckShort;
  Memristor third(spec);
  third.set_wear(dead);
  EXPECT_TRUE(third.worn_out());
  EXPECT_DOUBLE_EQ(third.conductance(), spec.stuck_short_conductance());
}

TEST(MemristorWearModel, RestoreIsNotAPhysicalWrite) {
  MemristorSpec spec;
  Rng rng(11);
  Memristor m(spec);
  m.program(9, rng);
  const double realised = m.conductance();
  Memristor copy(spec);
  copy.restore(9, realised);
  EXPECT_EQ(copy.write_cycles(), 0u);  // no cycle charged
  EXPECT_DOUBLE_EQ(copy.conductance(), realised);
  EXPECT_EQ(copy.level(), 9u);
}

TEST(MemristorWearModel, EnduranceLimitSamplesPerDevice) {
  MemristorSpec spec;
  spec.endurance_cycles = 1000.0;
  spec.endurance_sigma = 0.3;
  Rng rng(12);
  RunningStats stats;
  for (int i = 0; i < 3000; ++i) {
    const Memristor m(spec, rng);
    stats.add(m.wear().endurance_limit / spec.endurance_cycles);
  }
  EXPECT_NEAR(stats.mean(), 1.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 0.3, 0.05);
}

}  // namespace
}  // namespace spinsim
