#include "device/llg.hpp"

#include <gtest/gtest.h>

#include "core/units.hpp"

namespace spinsim {
namespace {

TEST(DwmParams, PaperDeviceGeometry) {
  const DwmParams p = DwmParams::paper_device();
  EXPECT_DOUBLE_EQ(p.thickness, 3e-9);
  EXPECT_DOUBLE_EQ(p.width, 20e-9);
  EXPECT_DOUBLE_EQ(p.length, 60e-9);
  EXPECT_DOUBLE_EQ(p.ms, 8e5);  // 800 emu/cm^3
}

TEST(DwmParams, DriftVelocityLinearInCurrent) {
  const DwmParams p = DwmParams::paper_device();
  const double u1 = p.drift_velocity(1e-6);
  const double u2 = p.drift_velocity(2e-6);
  EXPECT_NEAR(u2 / u1, 2.0, 1e-12);
}

TEST(DwmParams, CalibrationHitsAnalyticTargets) {
  DwmParams p;
  p.calibrate(1.0 * units::uA, 1.5 * units::ns);
  EXPECT_NEAR(p.analytic_critical_current(), 1.0 * units::uA, 0.02 * units::uA);
}

TEST(DwmParams, BelowWalkerAtOperatingPoint) {
  const DwmParams p = DwmParams::paper_device();
  // Steady viscous motion requires u(2 Ic) below the Walker velocity.
  EXPECT_LT(p.drift_velocity(2e-6), p.walker_velocity());
}

TEST(DwmStripe, NoMotionWithoutCurrent) {
  DwmStripe stripe(DwmParams::paper_device());
  stripe.reset(10e-9);
  for (int i = 0; i < 1000; ++i) {
    stripe.step(0.0, 1e-12);
  }
  EXPECT_NEAR(stripe.position(), 10e-9, 2e-9);  // relaxes inside a pinning well
}

TEST(DwmStripe, SubThresholdCurrentDoesNotSwitch) {
  // The paper device is numerically calibrated to I_c ~ 1 uA; well below
  // that the wall must stay pinned.
  DwmStripe stripe(DwmParams::paper_device());
  EXPECT_FALSE(stripe.run_until_switched(0.4 * units::uA, 20e-9).has_value());
}

TEST(DwmStripe, SuperThresholdCurrentSwitches) {
  DwmStripe stripe(DwmParams::paper_device());
  const double ic = stripe.params().analytic_critical_current();
  const auto t = stripe.run_until_switched(2.0 * ic, 20e-9);
  ASSERT_TRUE(t.has_value());
  EXPECT_GT(*t, 0.0);
}

TEST(DwmStripe, SwitchingTimeNearPaperTarget) {
  DwmStripe stripe(DwmParams::paper_device());
  const auto t = stripe.run_until_switched(2.0e-6, 30e-9);
  ASSERT_TRUE(t.has_value());
  // Table 2: ~1.5 ns. The periodic pinning makes the transit non-uniform
  // and the numeric threshold recalibration shifts the drive margin;
  // accept a factor-of-~3 band around the paper value.
  EXPECT_GT(*t, 0.5 * units::ns);
  EXPECT_LT(*t, 5.0 * units::ns);
}

TEST(DwmStripe, NumericThresholdHitsPaperTarget) {
  // calibrate_numeric targets I_c = 1 uA (Table 2).
  DwmStripe stripe(DwmParams::paper_device());
  const double ic_numeric = stripe.critical_current(5e-6, 60e-9, 0.02e-6);
  EXPECT_NEAR(ic_numeric, 1.0 * units::uA, 0.2 * units::uA);
}

TEST(DwmStripe, StaticEstimateBoundsNumericThreshold) {
  // Kinetic depinning puts the simulated threshold below the quasi-static
  // force-balance estimate, but within a small factor of it.
  DwmStripe stripe(DwmParams::paper_device());
  const double ic_numeric = stripe.critical_current(8e-6, 60e-9, 0.02e-6);
  const double ic_static = stripe.params().analytic_critical_current();
  EXPECT_LT(ic_numeric, ic_static);
  EXPECT_GT(ic_numeric, 0.2 * ic_static);
}

TEST(DwmStripe, NegativeCurrentDrivesWallBack) {
  DwmStripe stripe(DwmParams::paper_device());
  stripe.reset(stripe.params().length);  // wall at the far end
  const double ic = stripe.params().analytic_critical_current();
  for (int i = 0; i < 5000; ++i) {
    stripe.step(-2.0 * ic, 1e-12);
  }
  EXPECT_LT(stripe.position(), 5e-9);
}

TEST(DwmStripe, HigherDriveSwitchesFaster) {
  DwmStripe stripe(DwmParams::paper_device());
  const auto t2 = stripe.run_until_switched(2e-6, 30e-9);
  stripe.reset(0.0);
  const auto t4 = stripe.run_until_switched(4e-6, 30e-9);
  ASSERT_TRUE(t2.has_value());
  ASSERT_TRUE(t4.has_value());
  EXPECT_LT(*t4, *t2);
}

/// Property (paper Fig. 5b): the critical current falls as the strip's
/// cross-section scales down.
class DwmCrossSectionScaling : public ::testing::TestWithParam<double> {};

TEST_P(DwmCrossSectionScaling, CriticalCurrentScalesWithArea) {
  const double scale = GetParam();
  DwmParams base = DwmParams::paper_device();
  DwmParams scaled = base;
  scaled.thickness *= scale;
  scaled.width *= scale;
  // Same drift velocity needs area-proportional current:
  EXPECT_NEAR(scaled.analytic_critical_current() / base.analytic_critical_current(),
              scale * scale, 1e-9);
  // And the ODE agrees: scaled device switches at scale^2 * 2 Ic.
  DwmStripe stripe(scaled);
  const double drive = 2.0 * base.analytic_critical_current() * scale * scale;
  EXPECT_TRUE(stripe.run_until_switched(drive, 40e-9).has_value());
}

INSTANTIATE_TEST_SUITE_P(Scales, DwmCrossSectionScaling, ::testing::Values(0.5, 0.8, 1.25, 1.5));

/// Property (paper Fig. 5c): shorter strips switch faster at a fixed
/// super-threshold current.
TEST(DwmStripe, ShorterStripSwitchesFaster) {
  DwmParams long_strip = DwmParams::paper_device();
  DwmParams short_strip = long_strip;
  short_strip.length = 30e-9;
  const auto t_long = DwmStripe(long_strip).run_until_switched(2e-6, 40e-9);
  const auto t_short = DwmStripe(short_strip).run_until_switched(2e-6, 40e-9);
  ASSERT_TRUE(t_long.has_value());
  ASSERT_TRUE(t_short.has_value());
  EXPECT_LT(*t_short, *t_long);
}

TEST(DwmStripe, ThermalFieldPerturbsTrajectory) {
  DwmParams p = DwmParams::paper_device();
  p.temperature = 300.0;
  DwmStripe a(p);
  DwmStripe b(p);
  Rng rng_a(1);
  Rng rng_b(2);
  for (int i = 0; i < 2000; ++i) {
    a.step(0.8e-6, 1e-12, &rng_a);
    b.step(0.8e-6, 1e-12, &rng_b);
  }
  EXPECT_NE(a.position(), b.position());
}

TEST(DwmStripe, ResetValidatesPosition) {
  DwmStripe stripe(DwmParams::paper_device());
  EXPECT_THROW(stripe.reset(-1e-9), InvalidArgument);
  EXPECT_THROW(stripe.reset(100e-9), InvalidArgument);
}

TEST(DwmStripe, CriticalCurrentThrowsWhenNoSwitchPossible) {
  DwmStripe stripe(DwmParams::paper_device());
  EXPECT_THROW(stripe.critical_current(1e-9, 5e-9), NumericalError);
}

}  // namespace
}  // namespace spinsim
