#include "device/dwn.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/units.hpp"

namespace spinsim {
namespace {

TEST(DwnParams, FromBarrierAnchorsPaperPoint) {
  const DwnParams p = DwnParams::from_barrier(20.0);
  EXPECT_NEAR(p.i_threshold, 1.0 * units::uA, 1e-12);
}

TEST(DwnParams, ThresholdScalesLinearlyWithBarrier) {
  EXPECT_NEAR(DwnParams::from_barrier(10.0).i_threshold, 0.5 * units::uA, 1e-12);
  EXPECT_NEAR(DwnParams::from_barrier(40.0).i_threshold, 2.0 * units::uA, 1e-12);
}

TEST(DwnParams, SwitchingDelayAtTwiceThreshold) {
  const DwnParams p = DwnParams::from_barrier(20.0);
  EXPECT_NEAR(p.switching_delay(2.0 * p.i_threshold), p.t_switch_ref, 1e-15);
}

TEST(DwnParams, SwitchingDelayDivergesNearThreshold) {
  const DwnParams p = DwnParams::from_barrier(20.0);
  EXPECT_GT(p.switching_delay(1.01 * p.i_threshold), 10.0 * p.t_switch_ref);
  EXPECT_THROW(p.switching_delay(0.5 * p.i_threshold), InvalidArgument);
}

TEST(DwnParams, ThermalRateAtZeroDrive) {
  const DwnParams p = DwnParams::from_barrier(20.0);
  // Neel-Brown: f0 * exp(-20) ~ 2 Hz at f0 = 1 GHz.
  EXPECT_NEAR(p.thermal_flip_rate(0.0), 1e9 * std::exp(-20.0), 1.0);
}

TEST(DwnParams, ThermalRateGrowsWithDrive) {
  const DwnParams p = DwnParams::from_barrier(20.0);
  EXPECT_GT(p.thermal_flip_rate(0.9 * p.i_threshold), p.thermal_flip_rate(0.1 * p.i_threshold));
  // At threshold the barrier collapses entirely.
  EXPECT_NEAR(p.thermal_flip_rate(p.i_threshold), p.attempt_rate, 1.0);
}

TEST(Dwn, QuasistaticThresholdBehaviour) {
  DomainWallNeuron dwn(DwnParams::from_barrier(20.0));
  dwn.reset(false);
  EXPECT_FALSE(dwn.evaluate(0.9e-6));   // below threshold: holds 0
  EXPECT_TRUE(dwn.evaluate(1.1e-6));    // above: switches to 1
  EXPECT_TRUE(dwn.evaluate(-0.9e-6));   // hysteresis: holds 1
  EXPECT_FALSE(dwn.evaluate(-1.1e-6));  // switches back
}

TEST(Dwn, HysteresisLoopWidth) {
  // Sweep up then down (paper Fig. 7a): transitions at +/- I_c.
  DomainWallNeuron dwn(DwnParams::from_barrier(20.0));
  dwn.reset(false);
  double up_switch = 0.0;
  for (double i = -3e-6; i <= 3e-6; i += 0.01e-6) {
    const bool before = dwn.state();
    if (dwn.evaluate(i) && !before) {
      up_switch = i;
    }
  }
  double down_switch = 0.0;
  for (double i = 3e-6; i >= -3e-6; i -= 0.01e-6) {
    const bool before = dwn.state();
    if (!dwn.evaluate(i) && before) {
      down_switch = i;
    }
  }
  EXPECT_NEAR(up_switch, 1e-6, 0.02e-6);
  EXPECT_NEAR(down_switch, -1e-6, 0.02e-6);
  EXPECT_NEAR(up_switch - down_switch, 2e-6, 0.04e-6);  // loop width 2 I_c
}

TEST(Dwn, ApplyCurrentCompletesAfterDelay) {
  const DwnParams p = DwnParams::from_barrier(20.0);
  DomainWallNeuron dwn(p);
  dwn.reset(false);
  const double i = 2.0 * p.i_threshold;  // delay = t_switch_ref
  // Half the delay: not switched yet.
  dwn.apply_current(i, 0.5 * p.t_switch_ref);
  EXPECT_FALSE(dwn.state());
  // The rest completes the transit.
  dwn.apply_current(i, 0.6 * p.t_switch_ref);
  EXPECT_TRUE(dwn.state());
}

TEST(Dwn, ReinforcingDriveResetsPartialTransit) {
  const DwnParams p = DwnParams::from_barrier(20.0);
  DomainWallNeuron dwn(p);
  dwn.reset(false);
  const double i = 2.0 * p.i_threshold;
  dwn.apply_current(i, 0.9 * p.t_switch_ref);  // almost switched
  EXPECT_GT(dwn.transit_fraction(), 0.5);
  dwn.apply_current(-i, 0.1e-9);  // opposite (reinforces state 0)
  EXPECT_DOUBLE_EQ(dwn.transit_fraction(), 0.0);
}

TEST(Dwn, SubThresholdHoldsWithoutRng) {
  const DwnParams p = DwnParams::from_barrier(20.0);
  DomainWallNeuron dwn(p);
  dwn.reset(true);
  for (int k = 0; k < 100; ++k) {
    dwn.apply_current(-0.5 * p.i_threshold, 1e-9);
  }
  EXPECT_TRUE(dwn.state());
}

TEST(Dwn, ThermalFlipsAreRareAtFullBarrier) {
  const DwnParams p = DwnParams::from_barrier(20.0);
  DomainWallNeuron dwn(p);
  Rng rng(5);
  dwn.reset(true);
  int flips = 0;
  for (int k = 0; k < 100000; ++k) {
    const bool before = dwn.state();
    dwn.apply_current(0.0, 1e-9, &rng);
    if (dwn.state() != before) {
      ++flips;
    }
  }
  // Rate ~ 2 Hz for 100 us of simulated time -> ~0 flips expected.
  EXPECT_LE(flips, 1);
}

TEST(Dwn, ThermalFlipsFrequentAtLowBarrier) {
  const DwnParams p = DwnParams::from_barrier(2.0);  // weak device
  DomainWallNeuron dwn(p);
  Rng rng(6);
  dwn.reset(true);
  int flips = 0;
  for (int k = 0; k < 10000; ++k) {
    const bool before = dwn.state();
    dwn.apply_current(0.0, 1e-9, &rng);
    if (dwn.state() != before) {
      ++flips;
    }
  }
  // Rate f0 exp(-2) ~ 1.4e8 Hz over 10 us -> hundreds of flips.
  EXPECT_GT(flips, 100);
}

TEST(Dwn, MtjResistanceTracksState) {
  const DwnParams p = DwnParams::from_barrier(20.0);
  DomainWallNeuron dwn(p);
  dwn.reset(true);
  EXPECT_DOUBLE_EQ(dwn.mtj_resistance(), p.mtj.r_parallel);
  dwn.reset(false);
  EXPECT_DOUBLE_EQ(dwn.mtj_resistance(), p.mtj.r_antiparallel);
}

TEST(Mtj, ReferenceIsMidway) {
  const MtjSpec spec;
  EXPECT_DOUBLE_EQ(spec.reference_resistance(), 10e3);
  EXPECT_DOUBLE_EQ(spec.tmr(), 2.0);
}

TEST(Mtj, ReadMarginSymmetric) {
  const Mtj mtj{MtjSpec{}};
  EXPECT_NEAR(mtj.read_margin(true), 0.5, 1e-12);
  EXPECT_NEAR(mtj.read_margin(false), 0.5, 1e-12);
}

TEST(Mtj, VariationSampling) {
  MtjSpec spec;
  spec.resistance_sigma = 0.05;
  Rng rng(9);
  const Mtj a(spec, rng);
  const Mtj b(spec, rng);
  EXPECT_NE(a.resistance(true), b.resistance(true));
}

TEST(Mtj, RejectsInvertedResistances) {
  MtjSpec spec;
  spec.r_parallel = 20e3;
  spec.r_antiparallel = 10e3;
  EXPECT_THROW(Mtj m(spec), InvalidArgument);
}

}  // namespace
}  // namespace spinsim
