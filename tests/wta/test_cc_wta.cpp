#include <gtest/gtest.h>

#include "core/matrix.hpp"
#include "wta/analog_wta.hpp"

namespace spinsim {
namespace {

TEST(AnalogCcWta, ZeroMismatchIsExactArgmax) {
  AnalogWtaConfig c;
  c.inputs = 40;
  c.stage_rel_sigma = 0.0;
  const AnalogCcWta wta(c);
  Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> currents(40);
    for (auto& i : currents) {
      i = rng.uniform(0.0, 32e-6);
    }
    EXPECT_EQ(wta.select(currents).winner, argmax(currents));
  }
}

TEST(AnalogCcWta, LargeMarginSurvivesMismatch) {
  AnalogWtaConfig c;
  c.inputs = 40;
  c.stage_rel_sigma = 0.02;
  const AnalogCcWta wta(c);
  std::vector<double> currents(40, 5e-6);
  currents[11] = 25e-6;
  EXPECT_EQ(wta.select(currents).winner, 11u);
}

TEST(AnalogCcWta, SubFloorMarginUnreliable) {
  int failures = 0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    AnalogWtaConfig c;
    c.inputs = 40;
    c.stage_rel_sigma = 0.05;
    c.seed = seed;
    const AnalogCcWta wta(c);
    std::vector<double> currents(40, 10e-6);
    currents[7] = 10.02e-6;  // 0.2 % margin << 5 % mismatch
    failures += wta.select(currents).winner != 7u ? 1 : 0;
  }
  EXPECT_GT(failures, 10);
}

TEST(AnalogCcWta, DiscriminationFloorGrowsWithFanIn) {
  AnalogWtaConfig small;
  small.inputs = 4;
  small.stage_rel_sigma = 0.01;
  AnalogWtaConfig big = small;
  big.inputs = 64;
  EXPECT_GT(AnalogCcWta(big).discrimination_floor(),
            AnalogCcWta(small).discrimination_floor());
}

TEST(AnalogCcWta, SingleMismatchStageBeatsTreeAccumulation) {
  // The CC topology corrupts each input once; the BT tree corrupts the
  // winner along log2(N) levels. For the same per-stage sigma, the CC
  // die's worst pairwise skew must be statistically smaller.
  double cc_spread = 0.0;
  double bt_spread = 0.0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    AnalogWtaConfig c;
    c.inputs = 32;
    c.stage_rel_sigma = 0.03;
    c.seed = seed;
    const AnalogCcWta cc(c);
    const AnalogBtWta bt(c);
    // Probe with a uniform input: the corrupted winner current reveals
    // the accumulated gain of the winning path.
    const std::vector<double> uniform(32, 10e-6);
    cc_spread += std::abs(cc.select(uniform).winning_current - 10e-6);
    bt_spread += std::abs(bt.select(uniform).winning_current - 10e-6);
  }
  EXPECT_LT(cc_spread, bt_spread);
}

TEST(AnalogCcWta, RejectsDegenerateConfigs) {
  AnalogWtaConfig c;
  c.inputs = 1;
  EXPECT_THROW(AnalogCcWta wta(c), InvalidArgument);
  c.inputs = 4;
  c.stage_rel_sigma = -1.0;
  EXPECT_THROW(AnalogCcWta wta(c), InvalidArgument);
}

TEST(AnalogCcWta, InputCountMismatchThrows) {
  AnalogWtaConfig c;
  c.inputs = 8;
  const AnalogCcWta wta(c);
  EXPECT_THROW(wta.select(std::vector<double>(9, 1.0)), InvalidArgument);
}

}  // namespace
}  // namespace spinsim
