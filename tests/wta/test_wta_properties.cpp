/// Exhaustive/brute-force property checks on the spin SAR WTA: for small
/// configurations we can enumerate the entire input space and compare
/// against a reference model of the comparator's quantiser.

#include <gtest/gtest.h>

#include "wta/spin_sar_wta.hpp"

namespace spinsim {
namespace {

SpinWtaConfig clean_config(std::size_t columns, unsigned bits) {
  SpinWtaConfig c;
  c.columns = columns;
  c.bits = bits;
  c.dwn = DwnParams::from_barrier(20.0);
  c.sample_mismatch = false;
  c.thermal_noise = false;
  return c;
}

/// Reference quantiser of the clean spin PE: the DWN decision for code c
/// is `current > c * I_th + deadzone`, with the dead zone set by the
/// threshold plus the switching-delay budget of one cycle.
std::uint32_t reference_code(double current, const SpinWtaConfig& c) {
  const double ith = c.dwn.i_threshold;
  const double deadzone = ith * (1.0 + c.dwn.t_switch_ref / c.cycle_time);
  std::uint32_t code = 0;
  for (int bit = static_cast<int>(c.bits) - 1; bit >= 0; --bit) {
    const std::uint32_t trial = code | (1u << bit);
    if (current - static_cast<double>(trial) * ith > deadzone) {
      code = trial;
    }
  }
  return code;
}

TEST(SpinWtaProperties, ExhaustiveThreeBitCodesMatchReference) {
  // Every 3-bit input level on a 2-column bank, enumerated exhaustively.
  const SpinWtaConfig c = clean_config(2, 3);
  SpinSarWta wta(c);
  const double ith = c.dwn.i_threshold;
  for (int a = 0; a <= 8; ++a) {
    for (int b = 0; b <= 8; ++b) {
      const std::vector<double> currents = {(a + 0.5) * ith, (b + 0.5) * ith};
      const auto out = wta.run(currents);
      EXPECT_EQ(out.dom_codes[0], reference_code(currents[0], c))
          << "a=" << a << " b=" << b;
      EXPECT_EQ(out.dom_codes[1], reference_code(currents[1], c))
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(SpinWtaProperties, ExhaustiveWinnerIsMaxCode) {
  const SpinWtaConfig c = clean_config(3, 3);
  SpinSarWta wta(c);
  const double ith = c.dwn.i_threshold;
  for (int a = 0; a <= 8; a += 2) {
    for (int b = 0; b <= 8; b += 2) {
      for (int d = 0; d <= 8; d += 2) {
        const std::vector<double> currents = {(a + 0.4) * ith, (b + 0.4) * ith,
                                              (d + 0.4) * ith};
        const auto out = wta.run(currents);
        std::uint32_t best = 0;
        for (auto code : out.dom_codes) {
          best = std::max(best, code);
        }
        EXPECT_EQ(out.dom_codes[out.winner], best);
        // Every surviving tracker must hold the max code.
        for (std::size_t j = 0; j < 3; ++j) {
          EXPECT_EQ(out.tracking[j], out.dom_codes[j] == best);
        }
      }
    }
  }
}

/// Monotonicity: raising one column's current never lowers its code.
TEST(SpinWtaProperties, CodesMonotoneInCurrent) {
  const SpinWtaConfig c = clean_config(2, 5);
  SpinSarWta wta(c);
  std::uint32_t last = 0;
  for (double i = 0.0; i <= 33e-6; i += 0.37e-6) {
    const auto out = wta.run({i, 5e-6});
    EXPECT_GE(out.dom_codes[0], last) << "at I = " << i;
    last = out.dom_codes[0];
  }
}

/// Permutation equivariance: shuffling the columns shuffles the winner.
TEST(SpinWtaProperties, PermutationEquivariant) {
  const SpinWtaConfig c = clean_config(4, 5);
  SpinSarWta wta(c);
  const std::vector<double> base = {3e-6, 27e-6, 9e-6, 14e-6};
  const auto ref = wta.run(base);
  const std::vector<std::size_t> perm = {2, 0, 3, 1};
  std::vector<double> shuffled(4);
  for (std::size_t j = 0; j < 4; ++j) {
    shuffled[perm[j]] = base[j];
  }
  const auto out = wta.run(shuffled);
  EXPECT_EQ(out.winner, perm[ref.winner]);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_EQ(out.dom_codes[perm[j]], ref.dom_codes[j]);
  }
}

/// Scale families: a bank built from a barrier-scaled device quantises
/// with an LSB proportional to its threshold.
class SpinWtaBarrierSweep : public ::testing::TestWithParam<double> {};

TEST_P(SpinWtaBarrierSweep, LsbTracksThreshold) {
  const double barrier = GetParam();
  SpinWtaConfig c = clean_config(2, 4);
  c.dwn = DwnParams::from_barrier(barrier);
  SpinSarWta wta(c);
  const double ith = c.dwn.i_threshold;
  // An input of k * I_th (plus a hair) must land near code k - 1.
  for (std::uint32_t k = 3; k <= 12; k += 3) {
    const auto out = wta.run({(k + 0.5) * ith, 0.0});
    EXPECT_NEAR(static_cast<double>(out.dom_codes[0]), static_cast<double>(k) - 1.0, 1.01)
        << "k=" << k << " barrier=" << barrier;
  }
}

INSTANTIATE_TEST_SUITE_P(Barriers, SpinWtaBarrierSweep, ::testing::Values(10.0, 20.0, 40.0));

}  // namespace
}  // namespace spinsim
