#include "wta/spin_sar_wta.hpp"

#include <gtest/gtest.h>

#include "core/random.hpp"
#include "core/units.hpp"
#include "wta/ideal_wta.hpp"

namespace spinsim {
namespace {

SpinWtaConfig clean_config(std::size_t columns = 8, unsigned bits = 5) {
  SpinWtaConfig c;
  c.columns = columns;
  c.bits = bits;
  c.dwn = DwnParams::from_barrier(20.0);
  c.sample_mismatch = false;  // exact components unless a test wants noise
  c.thermal_noise = false;
  return c;
}

TEST(SpinWtaConfig, FullScale) {
  const SpinWtaConfig c = clean_config();
  EXPECT_NEAR(c.full_scale_current(), 32 * units::uA, 1e-12);
}

TEST(SpinSarWta, FindsObviousWinner) {
  SpinSarWta wta(clean_config(4));
  const auto out = wta.run({5e-6, 20e-6, 9e-6, 1e-6});
  EXPECT_EQ(out.winner, 1u);
  EXPECT_TRUE(out.unique);
}

TEST(SpinSarWta, DomMatchesIdealQuantisation) {
  const SpinWtaConfig c = clean_config(4);
  SpinSarWta wta(c);
  const std::vector<double> currents{5e-6, 20e-6, 9e-6, 1e-6};
  const auto out = wta.run(currents);
  const auto ref = ideal_wta(currents, c.bits, c.full_scale_current());
  for (std::size_t j = 0; j < currents.size(); ++j) {
    // The spin comparator only resolves differences above its threshold
    // (one LSB) and needs ~0.15 LSB extra to finish switching within the
    // cycle, so codes sit up to 2 LSB below the ideal quantisation.
    const int diff = static_cast<int>(ref.codes[j]) - static_cast<int>(out.dom_codes[j]);
    EXPECT_GE(diff, 0) << "column " << j;
    EXPECT_LE(diff, 2) << "column " << j;
  }
}

TEST(SpinSarWta, RunsExactlyMBitCycles) {
  SpinSarWta wta(clean_config(4, 3));
  const auto out = wta.run({5e-6, 2e-6, 3e-6, 1e-6});
  EXPECT_EQ(out.cycles, 3u);
  EXPECT_EQ(out.latch_decisions, 4u * 3u);
}

/// Property: with clean components, the WTA finds the argmax whenever the
/// margin exceeds one LSB.
class SpinWtaRandomCurrents : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpinWtaRandomCurrents, WinnerIsArgmaxWhenMarginAboveLsb) {
  const SpinWtaConfig c = clean_config(16);
  SpinSarWta wta(c);
  Rng rng(GetParam());
  const double lsb = c.full_scale_current() / 32.0;

  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> currents(16);
    for (auto& i : currents) {
      i = rng.uniform(0.0, 26e-6);
    }
    // Force a clear winner: boost a random column 3.5 LSB above the rest
    // (the spin quantiser's dead zone spans ~2 LSB).
    const auto boosted = static_cast<std::size_t>(rng.uniform_int(0, 15));
    double best_other = 0.0;
    for (std::size_t j = 0; j < currents.size(); ++j) {
      if (j != boosted) {
        best_other = std::max(best_other, currents[j]);
      }
    }
    currents[boosted] = best_other + 3.5 * lsb;

    const auto out = wta.run(currents);
    EXPECT_EQ(out.winner, boosted);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpinWtaRandomCurrents, ::testing::Values(1, 2, 3, 4, 5));

TEST(SpinSarWta, SubLsbMarginMayTie) {
  const SpinWtaConfig c = clean_config(4);
  SpinSarWta wta(c);
  // Two inputs inside the same quantiser bucket (the spin comparator's
  // decision levels sit at c * I_th + ~1.15 I_th).
  const auto out = wta.run({20.35e-6, 20.45e-6, 1e-6, 2e-6});
  EXPECT_EQ(out.dom_codes[0], out.dom_codes[1]);
  EXPECT_FALSE(out.unique);
}

TEST(SpinSarWta, TrackingSurvivorsAllHoldMaxCode) {
  const SpinWtaConfig c = clean_config(8);
  SpinSarWta wta(c);
  std::vector<double> currents{3e-6, 15.2e-6, 15.4e-6, 7e-6, 1e-6, 9e-6, 15.3e-6, 0.5e-6};
  const auto out = wta.run(currents);
  std::uint32_t best = 0;
  for (auto code : out.dom_codes) {
    best = std::max(best, code);
  }
  for (std::size_t j = 0; j < currents.size(); ++j) {
    EXPECT_EQ(out.tracking[j], out.dom_codes[j] == best) << "column " << j;
  }
}

TEST(SpinSarWta, AllZeroInputs) {
  SpinSarWta wta(clean_config(4));
  const auto out = wta.run({0.0, 0.0, 0.0, 0.0});
  EXPECT_FALSE(out.unique);  // nobody above threshold
  for (auto code : out.dom_codes) {
    EXPECT_EQ(code, 0u);
  }
}

TEST(SpinSarWta, ThermalNoiseKeepsClearWinners) {
  SpinWtaConfig c = clean_config(8);
  c.thermal_noise = true;  // Eb = 20 kT: flips are astronomically rare
  SpinSarWta wta(c);
  for (int trial = 0; trial < 10; ++trial) {
    const auto out = wta.run({2e-6, 4e-6, 28e-6, 1e-6, 3e-6, 5e-6, 6e-6, 7e-6});
    EXPECT_EQ(out.winner, 2u);
  }
}

TEST(SpinSarWta, MismatchShiftsCodesSlightly) {
  SpinWtaConfig noisy = clean_config(8);
  noisy.sample_mismatch = true;
  SpinSarWta wta_noisy(noisy);
  SpinSarWta wta_clean(clean_config(8));
  const std::vector<double> currents{2e-6, 4e-6, 18e-6, 1e-6, 3e-6, 5e-6, 6e-6, 7e-6};
  const auto a = wta_noisy.run(currents);
  const auto b = wta_clean.run(currents);
  EXPECT_EQ(a.winner, b.winner);  // 12-LSB margin survives mismatch
  for (std::size_t j = 0; j < currents.size(); ++j) {
    const int diff = static_cast<int>(a.dom_codes[j]) - static_cast<int>(b.dom_codes[j]);
    EXPECT_LE(std::abs(diff), 2);
  }
}

TEST(SpinSarWta, ActivityCountersPlausible) {
  SpinSarWta wta(clean_config(8));
  const auto out = wta.run({2e-6, 4e-6, 28e-6, 1e-6, 3e-6, 5e-6, 6e-6, 7e-6});
  EXPECT_EQ(out.latch_decisions, 8u * 5u);
  EXPECT_GE(out.dl_discharges, 1u);
  EXPECT_LE(out.dl_discharges, 4u);
  EXPECT_GE(out.tr_writes, 1u);
}

TEST(SpinSarWta, InputCountMismatchThrows) {
  SpinSarWta wta(clean_config(4));
  EXPECT_THROW(wta.run({1e-6, 2e-6}), InvalidArgument);
}

TEST(SpinSarWta, LowerThresholdDeviceScalesFullScale) {
  SpinWtaConfig c = clean_config(4);
  c.dwn = DwnParams::from_barrier(10.0);  // I_th = 0.5 uA
  EXPECT_NEAR(c.full_scale_current(), 16e-6, 1e-12);
  SpinSarWta wta(c);
  const auto out = wta.run({1e-6, 14e-6, 3e-6, 2e-6});
  EXPECT_EQ(out.winner, 1u);
}

// ---------------------------------------------------------------------------
// Counter-based per-query noise stream (the "true batched WTA" mechanism)
// ---------------------------------------------------------------------------

std::vector<std::vector<double>> random_batch(std::size_t queries, std::size_t columns,
                                              std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> batch(queries, std::vector<double>(columns));
  for (auto& currents : batch) {
    for (auto& i : currents) {
      i = rng.uniform(0.0, 30e-6);
    }
  }
  return batch;
}

void expect_outcomes_equal(const SpinWtaOutcome& a, const SpinWtaOutcome& b, std::size_t i) {
  EXPECT_EQ(a.winner, b.winner) << "query " << i;
  EXPECT_EQ(a.unique, b.unique) << "query " << i;
  EXPECT_EQ(a.winner_dom, b.winner_dom) << "query " << i;
  EXPECT_EQ(a.dom_codes, b.dom_codes) << "query " << i;
  EXPECT_EQ(a.tracking, b.tracking) << "query " << i;
}

TEST(SpinSarWta, RunBatchMatchesSequentialWithThermalNoise) {
  // The whole point of the counter-based stream: a parallel batch must be
  // bit-identical to a sequential loop of run() on a twin instance, even
  // with thermal flips being sampled (lowered barrier so flips happen).
  SpinWtaConfig c = clean_config(8);
  c.thermal_noise = true;
  c.sample_mismatch = true;
  c.dwn = DwnParams::from_barrier(2.0);  // flips actually occur
  SpinSarWta sequential(c);
  SpinSarWta batched(c);

  auto batch = random_batch(24, c.columns, 77);
  for (auto& currents : batch) {
    for (auto& i : currents) {
      i *= c.full_scale_current() / 30e-6;  // marginal drives: flips occur
    }
  }
  std::vector<SpinWtaOutcome> expected;
  expected.reserve(batch.size());
  for (const auto& currents : batch) {
    expected.push_back(sequential.run(currents));
  }
  const auto got = batched.run_batch(batch, 4);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    expect_outcomes_equal(got[i], expected[i], i);
  }
  EXPECT_EQ(batched.queries_issued(), sequential.queries_issued());
}

TEST(SpinSarWta, RunQueryIsPureFunctionOfSlot) {
  SpinWtaConfig c = clean_config(8);
  c.thermal_noise = true;
  c.dwn = DwnParams::from_barrier(2.0);  // I_th = 0.1 uA, full scale 3.2 uA
  SpinSarWta wta(c);
  // Marginal currents (inside the full scale) so thermal flips actually
  // move codes; far-over-threshold drives switch deterministically.
  std::vector<double> currents = random_batch(1, c.columns, 3).front();
  for (auto& i : currents) {
    i *= c.full_scale_current() / 30e-6;
  }

  const auto first = wta.run_query(currents, 5);
  // Interleave unrelated work; slot 5 must not care.
  (void)wta.run_query(currents, 0);
  (void)wta.run_query(currents, 11);
  const auto again = wta.run_query(currents, 5);
  expect_outcomes_equal(first, again, 5);

  // Distinct slots draw from independent streams: over many slots with a
  // marginal input, at least one outcome must differ from slot 5's.
  bool any_different = false;
  for (std::uint64_t q = 100; q < 140 && !any_different; ++q) {
    const auto other = wta.run_query(currents, q);
    any_different = other.dom_codes != first.dom_codes;
  }
  EXPECT_TRUE(any_different);
}

TEST(SpinSarWta, RunAdvancesQueryCounter) {
  SpinSarWta wta(clean_config(4));
  EXPECT_EQ(wta.queries_issued(), 0u);
  (void)wta.run({1e-6, 2e-6, 3e-6, 4e-6});
  EXPECT_EQ(wta.queries_issued(), 1u);
  (void)wta.run_batch(random_batch(6, 4, 1), 2);
  EXPECT_EQ(wta.queries_issued(), 7u);
}

TEST(SpinSarWta, RunBatchValidatesBeforeFanout) {
  SpinSarWta wta(clean_config(4));
  std::vector<std::vector<double>> bad{{1e-6, 2e-6}};
  EXPECT_THROW(wta.run_batch(bad, 4), InvalidArgument);
}

TEST(SpinSarWta, RunQuerySpanMatchesRunQueryNoiseless) {
  // run_query_span is the zero-copy entry of the GEMM'd batch path, and
  // with thermal noise off it takes the precomputed-latch fast path —
  // which must stay bit-identical to the vector overload's outcome.
  SpinWtaConfig c = clean_config(8);
  c.sample_mismatch = true;  // realistic spread, deterministic per seed
  SpinSarWta wta(c);
  const auto batch = random_batch(16, c.columns, 42);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto by_vector = wta.run_query(batch[i], i);
    const auto by_span = wta.run_query_span(batch[i].data(), i);
    expect_outcomes_equal(by_span, by_vector, i);
  }
}

TEST(SpinSarWta, RunQuerySpanMatchesRunQueryWithThermalNoise) {
  // With flips actually occurring, the span entry must consume the same
  // counter-based substream as the vector overload for the same slot.
  SpinWtaConfig c = clean_config(8);
  c.thermal_noise = true;
  c.sample_mismatch = true;
  c.dwn = DwnParams::from_barrier(2.0);  // flips actually occur
  SpinSarWta wta(c);
  auto batch = random_batch(16, c.columns, 43);
  for (auto& currents : batch) {
    for (auto& i : currents) {
      i *= c.full_scale_current() / 30e-6;  // marginal drives
    }
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto by_vector = wta.run_query(batch[i], i);
    const auto by_span = wta.run_query_span(batch[i].data(), i);
    expect_outcomes_equal(by_span, by_vector, i);
  }
}

}  // namespace
}  // namespace spinsim
