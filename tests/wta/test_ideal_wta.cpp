#include "wta/ideal_wta.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace spinsim {
namespace {

TEST(IdealWta, PicksLargest) {
  const auto r = ideal_wta({1e-6, 5e-6, 3e-6}, 5, 32e-6);
  EXPECT_EQ(r.winner, 1u);
  EXPECT_TRUE(r.unique);
}

TEST(IdealWta, QuantisationCodes) {
  // LSB = 32 uA / 32 = 1 uA.
  const auto r = ideal_wta({0.5e-6, 1.5e-6, 31.9e-6}, 5, 32e-6);
  EXPECT_EQ(r.codes[0], 0u);
  EXPECT_EQ(r.codes[1], 1u);
  EXPECT_EQ(r.codes[2], 31u);
}

TEST(IdealWta, SubLsbMarginTies) {
  // Two currents within one LSB quantise to the same code.
  const auto r = ideal_wta({10.2e-6, 10.7e-6}, 5, 32e-6);
  EXPECT_EQ(r.codes[0], r.codes[1]);
  EXPECT_FALSE(r.unique);
}

TEST(IdealWta, HigherResolutionSeparatesCloseInputs) {
  const std::vector<double> currents{10.2e-6, 10.7e-6};
  EXPECT_FALSE(ideal_wta(currents, 5, 32e-6).unique);
  EXPECT_TRUE(ideal_wta(currents, 8, 32e-6).unique);
}

TEST(IdealWta, ClipsAboveFullScale) {
  const auto r = ideal_wta({100e-6, 1e-6}, 5, 32e-6);
  EXPECT_EQ(r.codes[0], 31u);
  EXPECT_EQ(r.winner, 0u);
}

TEST(IdealWta, NegativeCurrentsClampToZero) {
  const auto r = ideal_wta({-5e-6, 2e-6}, 5, 32e-6);
  EXPECT_EQ(r.codes[0], 0u);
  EXPECT_EQ(r.winner, 1u);
}

TEST(IdealWta, FirstIndexWinsOnTie) {
  const auto r = ideal_wta({7e-6, 7e-6, 1e-6}, 5, 32e-6);
  EXPECT_EQ(r.winner, 0u);
  EXPECT_FALSE(r.unique);
}

TEST(IdealWta, WinnerCodeIsDom) {
  const auto r = ideal_wta({3.2e-6, 17.4e-6}, 5, 32e-6);
  EXPECT_EQ(r.winner_code, 17u);
}

TEST(IdealWta, RejectsBadArgs) {
  EXPECT_THROW(ideal_wta({}, 5, 1e-6), InvalidArgument);
  EXPECT_THROW(ideal_wta({1e-6}, 0, 1e-6), InvalidArgument);
  EXPECT_THROW(ideal_wta({1e-6}, 5, 0.0), InvalidArgument);
}

TEST(ExactWinner, MatchesArgmax) {
  EXPECT_EQ(exact_winner({0.1, 0.9, 0.5}), 1u);
}

}  // namespace
}  // namespace spinsim
