#include "wta/analog_wta.hpp"

#include <gtest/gtest.h>

#include "core/matrix.hpp"
#include "core/random.hpp"

namespace spinsim {
namespace {

TEST(AnalogBtWta, ZeroMismatchIsExactArgmax) {
  AnalogWtaConfig c;
  c.inputs = 40;
  c.stage_rel_sigma = 0.0;
  const AnalogBtWta wta(c);
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> currents(40);
    for (auto& i : currents) {
      i = rng.uniform(0.0, 32e-6);
    }
    EXPECT_EQ(wta.select(currents).winner, argmax(currents));
  }
}

TEST(AnalogBtWta, NonPowerOfTwoInputs) {
  AnalogWtaConfig c;
  c.inputs = 11;
  c.stage_rel_sigma = 0.0;
  const AnalogBtWta wta(c);
  std::vector<double> currents(11, 1e-6);
  currents[10] = 5e-6;  // winner in the padded tail region
  EXPECT_EQ(wta.select(currents).winner, 10u);
}

TEST(AnalogBtWta, LargeMarginSurvivesMismatch) {
  AnalogWtaConfig c;
  c.inputs = 40;
  c.stage_rel_sigma = 0.02;
  const AnalogBtWta wta(c);
  std::vector<double> currents(40, 5e-6);
  currents[17] = 30e-6;  // 6x margin
  EXPECT_EQ(wta.select(currents).winner, 17u);
}

TEST(AnalogBtWta, TinyMarginLostUnderHeavyMismatch) {
  // With 5 % stage mismatch a 0.1 % margin is hopeless on most dies.
  int failures = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    AnalogWtaConfig c;
    c.inputs = 40;
    c.stage_rel_sigma = 0.05;
    c.seed = seed;
    const AnalogBtWta wta(c);
    std::vector<double> currents(40, 10e-6);
    currents[3] = 10.01e-6;
    if (wta.select(currents).winner != 3u) {
      ++failures;
    }
  }
  EXPECT_GT(failures, 5);
}

TEST(AnalogBtWta, WinningCurrentNearMax) {
  AnalogWtaConfig c;
  c.inputs = 16;
  c.stage_rel_sigma = 0.01;
  const AnalogBtWta wta(c);
  std::vector<double> currents(16, 1e-6);
  currents[5] = 20e-6;
  const auto r = wta.select(currents);
  EXPECT_NEAR(r.winning_current, 20e-6, 2e-6);  // few mirror copies of 1 %
}

TEST(AnalogBtWta, EffectiveResolutionDecreasesWithSigma) {
  AnalogWtaConfig fine;
  fine.inputs = 40;
  fine.stage_rel_sigma = 0.002;
  AnalogWtaConfig coarse = fine;
  coarse.stage_rel_sigma = 0.05;
  EXPECT_GT(AnalogBtWta(fine).effective_resolution_bits(),
            AnalogBtWta(coarse).effective_resolution_bits());
}

TEST(AnalogBtWta, ZeroSigmaResolutionIsMax) {
  AnalogWtaConfig c;
  c.inputs = 8;
  c.stage_rel_sigma = 0.0;
  EXPECT_DOUBLE_EQ(AnalogBtWta(c).effective_resolution_bits(), 16.0);
}

TEST(AnalogBtWta, DifferentSeedsDifferentDies) {
  AnalogWtaConfig a;
  a.inputs = 40;
  a.stage_rel_sigma = 0.05;
  a.seed = 1;
  AnalogWtaConfig b = a;
  b.seed = 2;
  // A uniform input exposes each die's sampled gain table: the corrupted
  // root currents must differ between dies.
  const std::vector<double> currents(40, 10e-6);
  const double ia = AnalogBtWta(a).select(currents).winning_current;
  const double ib = AnalogBtWta(b).select(currents).winning_current;
  EXPECT_NE(ia, ib);
}

TEST(AnalogBtWta, InputCountMismatchThrows) {
  AnalogWtaConfig c;
  c.inputs = 8;
  const AnalogBtWta wta(c);
  EXPECT_THROW(wta.select(std::vector<double>(7, 1.0)), InvalidArgument);
}

TEST(AnalogBtWta, RejectsDegenerateConfig) {
  AnalogWtaConfig c;
  c.inputs = 1;
  EXPECT_THROW(AnalogBtWta wta(c), InvalidArgument);
  c.inputs = 4;
  c.stage_rel_sigma = -0.1;
  EXPECT_THROW(AnalogBtWta wta(c), InvalidArgument);
}

}  // namespace
}  // namespace spinsim
